GO ?= go

.PHONY: build test race test-race chaos soak-metrics soak-disk crashpoint vet

build:
	$(GO) build ./...

test:
	$(GO) vet ./... && $(GO) test ./...

# Race-detector pass over the request-lifecycle and fault-tolerance
# packages (the chaos soak runs its short script under -race).
race:
	$(GO) vet ./... && $(GO) test -race -short ./internal/erpc/... ./internal/twopc/... ./internal/chaos/...

# Race-detector pass over the observability layer and everything that
# feeds it (metrics registry, RPC, 2PC, chaos invariants), plus the
# filesystem fault layer and crash-point harness.
test-race:
	$(GO) test -race -short ./internal/obs/... ./internal/erpc/... ./internal/twopc/... ./internal/chaos/... ./internal/vfs/...

# Full 20-round chaos soak with per-round logging.
chaos:
	$(GO) test -v -run TestChaosSoak ./internal/chaos/

# Full chaos soak with metric conservation laws checked every round and
# the final cluster metrics snapshot printed (verbose logs carry it).
soak-metrics:
	$(GO) test -v -run 'TestChaosSoak|TestMetricLawViolationDetected' ./internal/chaos/

# Full 12-round disk-adversity soak: slow device, ENOSPC, fsync failures
# (fsyncgate), read-side bit rot, and boot-from-corruption refusal.
soak-disk:
	$(GO) test -v -run TestChaosSoakDisk ./internal/chaos/

# Crash-point harness: power-cut after every durable write site
# (WAL/SSTable/MANIFEST/counter/Clog) at all three security levels,
# reboot each image, and check the recovery invariants.
crashpoint:
	$(GO) test -v -run TestCrashPoint ./internal/vfs/crashtest/

vet:
	$(GO) vet ./...
