GO ?= go

.PHONY: build test race test-race chaos soak-metrics soak-disk soak-adversary soak-reshard soak-failover crashpoint fuzz vet bench-baseline bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) vet ./... && $(GO) test ./...

# Race-detector pass over the request-lifecycle and fault-tolerance
# packages (the chaos soak runs its short script under -race).
race:
	$(GO) vet ./... && $(GO) test -race -short ./internal/erpc/... ./internal/twopc/... ./internal/chaos/...

# Race-detector pass over the observability layer and everything that
# feeds it (metrics registry, RPC, 2PC, chaos invariants), plus the
# filesystem fault layer, crash-point harness, and the storage engine
# with its block cache (concurrent Get/compaction/invalidation hammer).
test-race:
	$(GO) test -race -short ./internal/obs/... ./internal/erpc/... ./internal/twopc/... ./internal/chaos/... ./internal/vfs/... ./internal/audit/... ./internal/lsm/...

# Full 20-round chaos soak with per-round logging.
chaos:
	$(GO) test -v -run TestChaosSoak ./internal/chaos/

# Full chaos soak with metric conservation laws checked every round and
# the final cluster metrics snapshot printed (verbose logs carry it).
soak-metrics:
	$(GO) test -v -run 'TestChaosSoak|TestMetricLawViolationDetected' ./internal/chaos/

# Full 12-round disk-adversity soak: slow device, ENOSPC, fsync failures
# (fsyncgate), read-side bit rot, and boot-from-corruption refusal.
soak-disk:
	$(GO) test -v -run TestChaosSoakDisk ./internal/chaos/

# Full 18-round network-adversary soak: delay, duplication,
# capture-and-replay, partitions, and payload corruption against live
# 2PC traffic, with the committed history checked for serializability.
# Set TREATY_SEED to replay a failing run deterministically.
soak-adversary:
	$(GO) test -v -run TestChaosSoakAdversary ./internal/chaos/

# Full 16-round migration soak: online slot migrations — including
# rounds that kill the source node mid-stream and retry after restart —
# under live audited bank-transfer traffic interleaved with packet loss
# and delay+duplication, run under -race. The soak asserts slots moved,
# sources died, live transactions hit the fence, every node converged on
# the final epoch, and the full history stayed serializable across every
# epoch boundary.
soak-reshard:
	$(GO) test -race -v -run TestChaosSoakReshard ./internal/chaos/

# Failover soak: audited bank traffic runs while the primary is killed
# for good and its attested backup is promoted through the CAS
# certificate path, with packet loss and delay+duplication on both sides
# of the takeover, under -race. The soak asserts a promotion actually
# happened, a rolled-back promotion request was refused mid-takeover,
# the successor's mirror was non-empty, and the full history stayed
# serializable across the failover boundary.
soak-failover:
	$(GO) test -race -v -run TestChaosSoakFailover ./internal/chaos/

# Coverage-guided fuzzing of every externally-reachable decoder: erpc
# frames (plaintext + sealed), the replay cache, the counter-service
# request codec, the full 2PC protocol handler stack, and the shard-map
# decode/verify path. Go allows one -fuzz target per invocation, so each
# runs separately for FUZZTIME.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME) ./internal/erpc/
	$(GO) test -run '^$$' -fuzz FuzzReplayCache -fuzztime $(FUZZTIME) ./internal/erpc/
	$(GO) test -run '^$$' -fuzz FuzzDecodeReq -fuzztime $(FUZZTIME) ./internal/counter/
	$(GO) test -run '^$$' -fuzz FuzzProtocolMessages -fuzztime $(FUZZTIME) ./internal/twopc/
	$(GO) test -run '^$$' -fuzz FuzzShardMapDecode -fuzztime $(FUZZTIME) ./internal/shardmap/
	$(GO) test -run '^$$' -fuzz FuzzReplStreamDecode -fuzztime $(FUZZTIME) ./internal/repl/

# Crash-point harness: power-cut after every durable write site
# (WAL/SSTable/MANIFEST/counter/Clog) at all three security levels,
# reboot each image, and check the recovery invariants. The repl sweep
# power-cuts both sides of the replication pipeline and checks that
# stabilized counters never outrun the backup's synced mirror.
crashpoint:
	$(GO) test -v -run 'TestCrashPoint|TestReplCrashPoint' ./internal/vfs/crashtest/

vet:
	$(GO) vet ./...

# Capture the committed performance baseline (Fig. 4, Fig. 5 YCSB panels
# incl. a no-cache reference arm, block-cache ablation, and the 3→5→9
# node scaling sweep) into BENCH_baseline.json. See EXPERIMENTS.md for
# the comparison workflow.
bench-baseline:
	$(GO) run ./cmd/treaty-bench -exp baseline -baseline-out BENCH_baseline.json

# One-iteration benchmark smoke: the read panel must be non-vacuous (it
# b.Fatals on zero cache hits), the write-heavy panel must show the
# Clog group-commit pipeline actually batching (it b.Fatals when the
# group-size p95 degrades to per-append forces), and the replication
# panel must actually ship groups to a backup (it b.Fatals on zero
# acked ships or any degrade).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation_BlockCache|BenchmarkAblation_WritePathGroupCommit|BenchmarkAblation_Replication' -benchtime=1x .
