GO ?= go

.PHONY: build test race chaos vet

build:
	$(GO) build ./...

test:
	$(GO) vet ./... && $(GO) test ./...

# Race-detector pass over the request-lifecycle and fault-tolerance
# packages (the chaos soak runs its short script under -race).
race:
	$(GO) vet ./... && $(GO) test -race -short ./internal/erpc/... ./internal/twopc/... ./internal/chaos/...

# Full 20-round chaos soak with per-round logging.
chaos:
	$(GO) test -v -run TestChaosSoak ./internal/chaos/

vet:
	$(GO) vet ./...
