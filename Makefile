GO ?= go

.PHONY: build test race test-race chaos soak-metrics vet

build:
	$(GO) build ./...

test:
	$(GO) vet ./... && $(GO) test ./...

# Race-detector pass over the request-lifecycle and fault-tolerance
# packages (the chaos soak runs its short script under -race).
race:
	$(GO) vet ./... && $(GO) test -race -short ./internal/erpc/... ./internal/twopc/... ./internal/chaos/...

# Race-detector pass over the observability layer and everything that
# feeds it (metrics registry, RPC, 2PC, chaos invariants).
test-race:
	$(GO) test -race -short ./internal/obs/... ./internal/erpc/... ./internal/twopc/... ./internal/chaos/...

# Full 20-round chaos soak with per-round logging.
chaos:
	$(GO) test -v -run TestChaosSoak ./internal/chaos/

# Full chaos soak with metric conservation laws checked every round and
# the final cluster metrics snapshot printed (verbose logs carry it).
soak-metrics:
	$(GO) test -v -run 'TestChaosSoak|TestMetricLawViolationDetected' ./internal/chaos/

vet:
	$(GO) vet ./...
