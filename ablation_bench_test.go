package treaty

// Ablation benchmarks for the design choices DESIGN.md calls out: group
// commit, lock-table sharding, stabilization batching, and host-memory vs
// enclave-resident buffers (EPC pressure). Each compares configurations
// of the same module so the effect of one mechanism is isolated.
//
//	go test -bench=BenchmarkAblation -benchtime=1x

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"treaty/internal/bench"
	"treaty/internal/core"
	"treaty/internal/enclave"
	"treaty/internal/lsm"
	"treaty/internal/seal"
	"treaty/internal/txn"
	"treaty/internal/workload"
)

// BenchmarkAblation_GroupCommit compares commits with the group-commit
// leader (§VII-B) against one-WAL-sync-per-transaction.
func BenchmarkAblation_GroupCommit(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "grouped"
		if disable {
			name = "per-txn-sync"
		}
		b.Run(name, func(b *testing.B) {
			key, err := seal.NewRandomKey()
			if err != nil {
				b.Fatal(err)
			}
			db, err := lsm.Open(lsm.Options{
				Dir: b.TempDir(), Level: seal.LevelEncrypted, Key: key,
				DisableGroupCommit: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			mgr := txn.NewManager(txn.Config{DB: db, LockTimeout: 2 * time.Second})

			gen := workload.NewYCSB(workload.YCSBConfig{ReadRatio: 0, OpsPerTxn: 5, ValueSize: 200, Keys: 5000}, 1)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				local := workload.NewYCSB(workload.YCSBConfig{ReadRatio: 0, OpsPerTxn: 5, ValueSize: 200, Keys: 5000}, 2)
				for pb.Next() {
					t := mgr.BeginPessimistic(nil)
					for _, op := range local.NextTxn() {
						if err := t.Put(op.Key, op.Value); err != nil {
							t.Rollback()
							break
						}
					}
					_ = t.Commit()
				}
			})
			_ = gen
		})
	}
}

// BenchmarkAblation_LockShards sweeps the lock-table shard count (§V-B:
// "TREATY runs with a big number of shards to avoid locking
// bottlenecks").
func BenchmarkAblation_LockShards(b *testing.B) {
	for _, shards := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			lt := txn.NewLockTable(shards, time.Second)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					key := fmt.Sprintf("key-%d", i%1000)
					if err := lt.Acquire(uint64(i+1), key, txn.LockExclusive, nil); err == nil {
						lt.Release(uint64(i+1), key)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkAblation_StabilizationBatching compares per-commit counter
// waits against the asynchronous batched interface: N commits that each
// wait individually vs N commits that share stabilization rounds.
func BenchmarkAblation_StabilizationBatching(b *testing.B) {
	const commits = 64
	const latency = 500 * time.Microsecond
	b.Run("batched-async", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr := newSlowCounter(latency)
			// All commits stabilize through one handle; the pump batches.
			done := make(chan error, commits)
			for c := 0; c < commits; c++ {
				v := uint64(c + 1)
				ctr.Stabilize(v)
				go func() { done <- ctr.WaitStable(v) }()
			}
			for c := 0; c < commits; c++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			ctr.close()
		}
	})
	b.Run("per-commit-round", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Every commit pays a full protocol round.
			for c := 0; c < commits; c++ {
				time.Sleep(latency)
			}
		}
	})
}

// BenchmarkAblation_HostVsEnclaveBuffers measures the EPC paging penalty
// of keeping large buffers in enclave memory instead of (encrypted) host
// memory — the reason message buffers and values live outside (§VII-D).
func BenchmarkAblation_HostVsEnclaveBuffers(b *testing.B) {
	const bufSize = 1 << 20
	for _, host := range []bool{true, false} {
		name := "host-memory"
		if !host {
			name = "enclave-memory"
		}
		b.Run(name, func(b *testing.B) {
			rt := enclave.NewRuntime(enclave.RuntimeConfig{
				Mode:      enclave.ModeScone,
				EPCBudget: 8 << 20, // small EPC: pressure shows quickly
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if host {
					rt.AllocHost(bufSize)
					rt.FreeHost(bufSize)
				} else {
					rt.AllocEnclave(bufSize)
					rt.TouchEnclave(bufSize)
					rt.FreeEnclave(bufSize)
				}
			}
			b.ReportMetric(float64(rt.Stats().PageFaults)/float64(b.N), "pagefaults/op")
		})
	}
}

// BenchmarkAblation_BlockCache compares the engine read path at the
// SCONE + encryption level with and without the authenticated block
// cache (read-heavy YCSB): a hit skips the host read, the integrity
// check, and the AES-GCM block decryption.
func BenchmarkAblation_BlockCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunBlockCacheAblation(bench.BlockCacheConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Hits == 0 {
			b.Fatalf("vacuous run: cache-on arm recorded zero hits (%d lookups)", r.Lookups)
		}
		b.Log(bench.PrintBlockCache(r))
		b.ReportMetric(r.OnTps, "tps-cache-on")
		b.ReportMetric(r.OffTps, "tps-cache-off")
		b.ReportMetric(r.Speedup, "speedup")
		b.ReportMetric(r.HitRate*100, "hit-%")
	}
}

// BenchmarkAblation_WritePathGroupCommit is the write-heavy bench-smoke
// panel: a short distributed YCSB 20%R run at full security, asserting
// the Clog group-commit pipeline is non-vacuous — coordinator records
// must actually flow through commit groups — and reporting the group
// size, fsync amortization, and counter rounds per committed transaction
// so write-path regressions are visible pre-merge.
func BenchmarkAblation_WritePathGroupCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunWritePathSmoke(bench.DistConfig{Clients: 192, Duration: 4 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if r.GroupCount == 0 || r.ClogAppends == 0 {
			b.Fatalf("vacuous run: no clog commit groups observed (appends=%d syncs=%d)", r.ClogAppends, r.ClogSyncs)
		}
		if r.GroupP95 <= 1 {
			b.Fatalf("group commit degraded to per-append forces: group-size p95 = %.0f (max %.0f over %d groups)",
				r.GroupP95, r.GroupMax, r.GroupCount)
		}
		b.Log(bench.PrintWritePath(r))
		b.ReportMetric(r.Tps, "tps")
		b.ReportMetric(r.GroupP95, "group-p95")
		b.ReportMetric(float64(r.ClogAppends)/float64(r.ClogSyncs), "appends/fsync")
		b.ReportMetric(r.CounterRoundsPerTxn, "ctr-rounds/txn")
	}
}

// BenchmarkAblation_Replication measures the throughput price of
// per-shard attested backups: the same write-heavy distributed YCSB run
// at full security with and without commit-group shipping. The run is
// vacuous unless the replicated arm actually shipped and acked groups,
// and a degraded stream (any ship_failed) invalidates the overhead
// number, so both fail the benchmark loudly.
func BenchmarkAblation_Replication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunReplicationAblation(bench.DistConfig{Clients: 96, Duration: 3 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if r.ShipAcked == 0 {
			b.Fatalf("vacuous run: replicated arm acked zero commit groups (shipped=%d)", r.ShipGroups)
		}
		if r.ShipFailed > 0 {
			b.Fatalf("degraded run: %d ship failures latched a stream unpromotable mid-measurement", r.ShipFailed)
		}
		b.Log(bench.PrintReplication(r))
		b.ReportMetric(r.Off.Tps, "tps-repl-off")
		b.ReportMetric(r.On.Tps, "tps-repl-on")
		b.ReportMetric(r.Overhead, "overhead")
		b.ReportMetric(float64(r.ShipAcked), "groups-shipped")
	}
}

// BenchmarkAblation_SecurityLevels isolates the storage-engine cost of
// each security level with no concurrency: one writer, sequential
// commits.
func BenchmarkAblation_SecurityLevels(b *testing.B) {
	for _, mode := range []core.SecurityMode{core.ModeRocksDB, core.ModeNativeTreaty, core.ModeNativeTreatyEnc} {
		b.Run(mode.String(), func(b *testing.B) {
			key, err := seal.NewRandomKey()
			if err != nil {
				b.Fatal(err)
			}
			db, err := lsm.Open(lsm.Options{Dir: b.TempDir(), Level: mode.StorageLevel(), Key: key})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			value := make([]byte, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := lsm.NewBatch()
				batch.Put(fmt.Appendf(nil, "key-%08d", i), value)
				if _, _, err := db.Apply(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_NetworkSecurity isolates the RPC-layer cost of
// sealing: echo round trips with and without the secure message format.
func BenchmarkAblation_NetworkSecurity(b *testing.B) {
	for _, fig := range []bench.Fig4Version{
		{Label: "plain", Scone: false, Enc: false},
		{Label: "sealed", Scone: false, Enc: true},
	} {
		b.Run(fig.Label, func(b *testing.B) {
			ms, err := bench.RunFig4(bench.Fig4Config{Clients: 8, Duration: 300 * time.Millisecond, OpsPerTxn: 4})
			if err != nil {
				b.Fatal(err)
			}
			idx := 0
			if fig.Enc {
				idx = 1
			}
			b.ReportMetric(ms[idx].Tps, "tps")
		})
	}
}

// slowCounter stabilizes values after a latency, batching all pending
// values into one "round" — a miniature of the counter client's pump.
type slowCounter struct {
	latency time.Duration
	done    chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond
	pending uint64
	stable  uint64
}

func newSlowCounter(latency time.Duration) *slowCounter {
	c := &slowCounter{latency: latency, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	go c.pump()
	return c
}

func (c *slowCounter) pump() {
	for {
		c.mu.Lock()
		for c.pending <= c.stable {
			select {
			case <-c.done:
				c.mu.Unlock()
				return
			default:
			}
			c.cond.Wait()
		}
		target := c.pending
		c.mu.Unlock()
		time.Sleep(c.latency) // one protocol round covers the whole batch
		c.mu.Lock()
		if target > c.stable {
			c.stable = target
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

func (c *slowCounter) Stabilize(v uint64) {
	c.mu.Lock()
	if v > c.pending {
		c.pending = v
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *slowCounter) WaitStable(v uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.stable < v {
		c.cond.Wait()
	}
	return nil
}

func (c *slowCounter) close() {
	close(c.done)
	c.cond.Broadcast()
}
