package treaty

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§VIII). Each benchmark runs the corresponding experiment
// harness and logs the paper-style table; throughput is also exposed as
// benchmark metrics. Run all of them with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// or regenerate a single figure, e.g.:
//
//	go test -bench=BenchmarkFig5 -benchtime=1x
//
// The same experiments at larger scale are available via
// cmd/treaty-bench.

import (
	"testing"
	"time"

	"treaty/internal/bench"
)

// reportVersions exposes each version's throughput as a metric.
func reportVersions(b *testing.B, ms []bench.Measurement) {
	b.Helper()
	if len(ms) == 0 {
		return
	}
	base := ms[0]
	for _, m := range ms {
		b.ReportMetric(m.Tps, "tps:"+sanitize(m.Label))
		b.ReportMetric(m.Slowdown(base), "slowdown:"+sanitize(m.Label))
	}
}

// sanitize makes a label metric-safe.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig4_TwoPCProtocol reproduces Figure 4: the 2PC protocol with
// no storage underneath, four versions, YCSB 50R/50W.
func BenchmarkFig4_TwoPCProtocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunFig4(bench.Fig4Config{Clients: 32, Duration: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig4(ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig5_DistributedYCSB_WriteHeavy reproduces the 20%R panel of
// Figure 5.
func BenchmarkFig5_DistributedYCSB_WriteHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunFig5(bench.DistConfig{Clients: 32, Duration: 2 * time.Second}, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig5(0.2, ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig5_DistributedYCSB_ReadHeavy reproduces the 80%R panel of
// Figure 5.
func BenchmarkFig5_DistributedYCSB_ReadHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunFig5(bench.DistConfig{Clients: 32, Duration: 2 * time.Second}, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig5(0.8, ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig3_DistributedTPCC_10W reproduces the left panel of
// Figure 3 (TPC-C, 10 warehouses: heavy write-write conflicts).
func BenchmarkFig3_DistributedTPCC_10W(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunFig3(bench.DistConfig{Clients: 16, Duration: 2 * time.Second}, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig3(10, ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig3_DistributedTPCC_100W reproduces the right panel of
// Figure 3 (TPC-C, 100 warehouses: fewer conflicts, lower overheads).
func BenchmarkFig3_DistributedTPCC_100W(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunFig3(bench.DistConfig{Clients: 32, Duration: 2 * time.Second}, 100)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig3(100, ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig6_SingleNodePessimistic_TPCC reproduces the TPC-C panel of
// Figure 6 (six versions, pessimistic transactions).
func BenchmarkFig6_SingleNodePessimistic_TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunSingleTPCC(bench.SingleConfig{Clients: 16, Duration: time.Second}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig6("TPC-C (10W)", ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig6_SingleNodePessimistic_YCSB reproduces the YCSB panels of
// Figure 6 (20%R and 80%R).
func BenchmarkFig6_SingleNodePessimistic_YCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ratio := range []float64{0.2, 0.8} {
			ms, err := bench.RunSingleYCSB(bench.SingleConfig{Clients: 16, Duration: time.Second}, ratio, false)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + bench.PrintFig6(ycsbName(ratio), ms))
			reportVersions(b, ms)
		}
	}
}

// BenchmarkFig7_SingleNodeOptimistic_TPCC reproduces the TPC-C panel of
// Figure 7 (optimistic transactions).
func BenchmarkFig7_SingleNodeOptimistic_TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunSingleTPCC(bench.SingleConfig{Clients: 16, Duration: time.Second}, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig7("TPC-C (10W)", ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig7_SingleNodeOptimistic_YCSB reproduces the YCSB panel of
// Figure 7 (the paper evaluates the read-heavy workload for OCC).
func BenchmarkFig7_SingleNodeOptimistic_YCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := bench.RunSingleYCSB(bench.SingleConfig{Clients: 16, Duration: time.Second}, 0.8, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig7(ycsbName(0.8), ms))
		reportVersions(b, ms)
	}
}

// BenchmarkFig8_NetworkLibrary reproduces Figure 8: seven network stacks
// across message sizes 64 B–4 KiB.
func BenchmarkFig8_NetworkLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.RunFig8(100 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintFig8(series))
		for _, sys := range bench.Fig8Systems() {
			vals := series[sys.Label]
			// Report the 1 KiB point as the summary metric.
			b.ReportMetric(vals[2], "Gbps:"+sanitize(sys.Label))
		}
	}
}

// BenchmarkTableI_Recovery reproduces Table I: recovery time of the
// three log security levels (the paper's full scale is 800 k entries;
// pass -short for a quick run).
func BenchmarkTableI_Recovery(b *testing.B) {
	entries := 200000
	if testing.Short() {
		entries = 20000
	}
	for i := 0; i < b.N; i++ {
		rs, err := bench.RunTableI(bench.RecoveryConfig{Entries: entries})
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + bench.PrintTableI(rs))
		base := rs[0].Duration
		for _, r := range rs {
			b.ReportMetric(float64(r.Duration)/float64(base), "slowdown:"+sanitize(r.Label))
		}
	}
}

// ycsbName labels a YCSB ratio panel.
func ycsbName(ratio float64) string {
	if ratio < 0.5 {
		return "YCSB W-heavy (20%R)"
	}
	return "YCSB R-heavy (80%R)"
}
