// Command treaty-bench regenerates the paper's evaluation (§VIII): every
// figure and table, printed in the paper's structure. By default it runs
// everything; -exp selects one experiment.
//
// Usage:
//
//	treaty-bench [-exp all|fig3|fig4|fig5|fig6|fig7|fig8|table1|scaling|baseline]
//	             [-duration 2s] [-clients 32] [-entries 200000]
//	             [-metrics out.json] [-baseline-out BENCH_baseline.json]
//
// -exp scaling runs the horizontal-scaling sweep: the same read-heavy
// offered load against 3, 5, and 9 node clusters.
//
// -exp baseline captures the committed performance baseline: Fig. 4, the
// Fig. 5 YCSB panels (with a no-cache reference arm), the block-cache
// ablation, and the scaling sweep, written as JSON to -baseline-out (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"treaty/internal/bench"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment: all, fig3, fig4, fig5, fig6, fig7, fig8, table1, scaling, baseline")
	duration := flag.Duration("duration", 2*time.Second, "measurement duration per version")
	clients := flag.Int("clients", 32, "concurrent clients")
	entries := flag.Int("entries", 200000, "log entries for the recovery experiment (paper: 800000)")
	metricsOut := flag.String("metrics", "", "write machine-readable per-run metrics reports (JSON) to this file")
	baselineOut := flag.String("baseline-out", "BENCH_baseline.json", "output file for -exp baseline")
	flag.Parse()

	// The baseline capture is its own mode: it runs panels with extra
	// arms (no-cache reference) and writes one JSON snapshot, not the
	// printed figures.
	if *exp == "baseline" {
		host, _ := os.Hostname()
		b, err := bench.RunBaseline(bench.BaselineConfig{
			Clients:    *clients,
			Duration:   *duration,
			CapturedAt: time.Now(),
			Host:       host,
		})
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		js, err := b.JSON()
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		if err := os.WriteFile(*baselineOut, append(js, '\n'), 0o644); err != nil {
			log.Fatalf("baseline: %v", err)
		}
		fmt.Printf("wrote baseline to %s\n", *baselineOut)
		fmt.Print(bench.PrintBlockCache(b.BlockCache))
		return
	}

	var allMetrics []bench.Measurement
	captureMetrics := func(ms []bench.Measurement) {
		if *metricsOut != "" {
			allMetrics = append(allMetrics, ms...)
		}
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("Treaty evaluation harness — reproducing DSN'22 Figures 3-8 and Table I")
	fmt.Println("(absolute numbers are from the in-process simulated testbed; compare shapes)")
	fmt.Println()

	run("fig4", func() error {
		ms, err := bench.RunFig4(bench.Fig4Config{Clients: *clients, Duration: *duration})
		if err != nil {
			return err
		}
		fmt.Print(bench.PrintFig4(ms))
		return nil
	})

	run("fig5", func() error {
		for _, ratio := range []float64{0.2, 0.8} {
			ms, err := bench.RunFig5(bench.DistConfig{Clients: *clients, Duration: *duration}, ratio)
			if err != nil {
				return err
			}
			fmt.Print(bench.PrintFig5(ratio, ms))
			captureMetrics(ms)
		}
		return nil
	})

	run("fig3", func() error {
		for _, w := range []int{10, 100} {
			ms, err := bench.RunFig3(bench.DistConfig{Clients: *clients, Duration: *duration}, w)
			if err != nil {
				return err
			}
			fmt.Print(bench.PrintFig3(w, ms))
			captureMetrics(ms)
		}
		return nil
	})

	run("fig6", func() error {
		ms, err := bench.RunSingleTPCC(bench.SingleConfig{Clients: *clients / 2, Duration: *duration}, false)
		if err != nil {
			return err
		}
		fmt.Print(bench.PrintFig6("TPC-C (10W)", ms))
		for _, ratio := range []float64{0.2, 0.8} {
			ms, err := bench.RunSingleYCSB(bench.SingleConfig{Clients: *clients / 2, Duration: *duration}, ratio, false)
			if err != nil {
				return err
			}
			fmt.Print(bench.PrintFig6(fmt.Sprintf("YCSB %.0f%%R", ratio*100), ms))
		}
		return nil
	})

	run("fig7", func() error {
		ms, err := bench.RunSingleTPCC(bench.SingleConfig{Clients: *clients / 2, Duration: *duration}, true)
		if err != nil {
			return err
		}
		fmt.Print(bench.PrintFig7("TPC-C (10W)", ms))
		ms, err = bench.RunSingleYCSB(bench.SingleConfig{Clients: *clients / 2, Duration: *duration}, 0.8, true)
		if err != nil {
			return err
		}
		fmt.Print(bench.PrintFig7("YCSB 80%R", ms))
		return nil
	})

	run("fig8", func() error {
		series, err := bench.RunFig8(*duration / 10)
		if err != nil {
			return err
		}
		fmt.Print(bench.PrintFig8(series))
		return nil
	})

	run("table1", func() error {
		rs, err := bench.RunTableI(bench.RecoveryConfig{Entries: *entries})
		if err != nil {
			return err
		}
		fmt.Print(bench.PrintTableI(rs))
		return nil
	})

	run("scaling", func() error {
		cfg := bench.ScalingConfig{Duration: *duration}
		ms, err := bench.RunScaling(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.PrintScaling(cfg, ms))
		captureMetrics(ms)
		return nil
	})

	if *exp != "all" {
		switch *exp {
		case "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table1", "scaling":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}

	if *metricsOut != "" {
		js, err := bench.ReportJSON(allMetrics)
		if err != nil {
			log.Fatalf("metrics report: %v", err)
		}
		if err := os.WriteFile(*metricsOut, js, 0o644); err != nil {
			log.Fatalf("metrics report: %v", err)
		}
		fmt.Printf("wrote metrics reports to %s\n", *metricsOut)
	}
}
