// Command treaty-cli is an interactive client for treaty-server: a small
// REPL speaking the server's line protocol.
//
//	treaty-cli [-addr 127.0.0.1:7654]
//	> BEGIN
//	OK
//	> PUT user:1 alice
//	OK
//	> COMMIT
//	OK committed
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7654", "treaty-server address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *addr, err)
	}
	defer conn.Close()
	fmt.Printf("connected to %s — commands: BEGIN, GET k, PUT k v, DEL k, COMMIT, ROLLBACK, QUIT\n", *addr)

	server := bufio.NewScanner(conn)
	server.Buffer(make([]byte, 1<<20), 1<<20)
	stdin := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !stdin.Scan() {
			fmt.Fprintln(conn, "QUIT")
			return
		}
		line := strings.TrimSpace(stdin.Text())
		if line == "" {
			continue
		}
		if _, err := fmt.Fprintln(conn, line); err != nil {
			log.Fatalf("send: %v", err)
		}
		if !server.Scan() {
			log.Fatal("server closed the connection")
		}
		fmt.Println(server.Text())
		if strings.EqualFold(line, "QUIT") {
			return
		}
	}
}
