// Command treaty-server runs a Treaty cluster in one process and exposes
// a simple line-oriented TCP front end for interactive clients
// (cmd/treaty-cli). The cluster — nodes, CAS, counter group, fabric — is
// the same in-process deployment the benchmarks use; the TCP front end
// plays the role of the paper's client machines.
//
// Protocol (one command per line):
//
//	BEGIN                   start a transaction on this connection
//	GET <key>               read
//	PUT <key> <value>       write
//	DEL <key>               delete
//	COMMIT                  two-phase commit (+ stabilization)
//	ROLLBACK                abort
//	QUIT                    close the connection
//
// Responses: "OK", "OK <value>", "NOTFOUND", or "ERR <message>".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"treaty"
)

func main() {
	log.SetFlags(0)
	nodes := flag.Int("nodes", 3, "cluster size")
	modeName := flag.String("mode", "stab", "security mode: rocksdb, native, native-enc, scone, scone-enc, stab")
	listen := flag.String("listen", "127.0.0.1:7654", "client listen address")
	dir := flag.String("dir", "", "storage directory (default: temp)")
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("booting %d-node cluster in mode %q...", *nodes, mode)
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes:   *nodes,
		Mode:    mode,
		BaseDir: *dir,
	})
	if err != nil {
		log.Fatalf("booting cluster: %v", err)
	}
	defer cluster.Stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	log.Printf("serving clients on %s (protocol: BEGIN/GET/PUT/DEL/COMMIT/ROLLBACK)", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go serve(cluster, conn)
	}
}

// parseMode maps the flag to a security mode.
func parseMode(s string) (treaty.SecurityMode, error) {
	switch strings.ToLower(s) {
	case "rocksdb":
		return treaty.ModeRocksDB, nil
	case "native":
		return treaty.ModeNativeTreaty, nil
	case "native-enc":
		return treaty.ModeNativeTreatyEnc, nil
	case "scone":
		return treaty.ModeSconeNoEnc, nil
	case "scone-enc":
		return treaty.ModeSconeEnc, nil
	case "stab":
		return treaty.ModeSconeEncStab, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// serve handles one client connection.
func serve(cluster *treaty.Cluster, conn net.Conn) {
	defer conn.Close()
	client, err := cluster.NewClient()
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	defer client.Close()

	var tx *treaty.ClientTxn
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	reply := func(format string, args ...any) {
		fmt.Fprintf(conn, format+"\n", args...)
	}
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		switch cmd {
		case "QUIT":
			if tx != nil {
				_ = tx.TxnRollback()
			}
			reply("OK bye")
			return
		case "BEGIN":
			if tx != nil {
				reply("ERR transaction already open")
				continue
			}
			t, err := client.BeginTxn()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			tx = t
			reply("OK")
		case "GET", "PUT", "DEL", "COMMIT", "ROLLBACK":
			if tx == nil {
				reply("ERR no transaction (BEGIN first)")
				continue
			}
			switch cmd {
			case "GET":
				if len(fields) != 2 {
					reply("ERR usage: GET <key>")
					continue
				}
				v, found, err := tx.TxnGet([]byte(fields[1]))
				switch {
				case err != nil:
					reply("ERR %v", err)
				case !found:
					reply("NOTFOUND")
				default:
					reply("OK %s", v)
				}
			case "PUT":
				if len(fields) < 3 {
					reply("ERR usage: PUT <key> <value>")
					continue
				}
				value := strings.Join(fields[2:], " ")
				if err := tx.TxnPut([]byte(fields[1]), []byte(value)); err != nil {
					reply("ERR %v", err)
					continue
				}
				reply("OK")
			case "DEL":
				if len(fields) != 2 {
					reply("ERR usage: DEL <key>")
					continue
				}
				if err := tx.TxnDelete([]byte(fields[1])); err != nil {
					reply("ERR %v", err)
					continue
				}
				reply("OK")
			case "COMMIT":
				err := tx.TxnCommit()
				tx = nil
				if err != nil {
					reply("ERR %v", err)
					continue
				}
				reply("OK committed")
			case "ROLLBACK":
				err := tx.TxnRollback()
				tx = nil
				if err != nil {
					reply("ERR %v", err)
					continue
				}
				reply("OK rolled back")
			}
		default:
			reply("ERR unknown command %s", cmd)
		}
	}
}
