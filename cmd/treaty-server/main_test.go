package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"treaty"
)

// dialServer boots a cluster + listener and returns a connected client.
func dialServer(t *testing.T) (*bufio.Scanner, net.Conn) {
	t.Helper()
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes:   3,
		Mode:    treaty.ModeSconeEnc,
		BaseDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Stop() })

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(cluster, conn)
		}
	}()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	return sc, conn
}

// roundTrip sends one command and returns the reply line.
func roundTrip(t *testing.T, sc *bufio.Scanner, conn net.Conn, cmd string) string {
	t.Helper()
	if _, err := fmt.Fprintln(conn, cmd); err != nil {
		t.Fatalf("send %q: %v", cmd, err)
	}
	if !sc.Scan() {
		t.Fatalf("no reply to %q", cmd)
	}
	return sc.Text()
}

func TestServerProtocol(t *testing.T) {
	sc, conn := dialServer(t)

	steps := []struct {
		cmd  string
		want string
	}{
		{"GET x", "ERR no transaction (BEGIN first)"},
		{"BEGIN", "OK"},
		{"BEGIN", "ERR transaction already open"},
		{"PUT user:1 alice in wonderland", "OK"},
		{"GET user:1", "OK alice in wonderland"},
		{"GET nothere", "NOTFOUND"},
		{"DEL user:1", "OK"},
		{"GET user:1", "NOTFOUND"},
		{"PUT user:2 bob", "OK"},
		{"COMMIT", "OK committed"},
		{"BEGIN", "OK"},
		{"GET user:2", "OK bob"},
		{"GET user:1", "NOTFOUND"},
		{"ROLLBACK", "OK rolled back"},
		{"BOGUS", "ERR unknown command BOGUS"},
		{"QUIT", "OK bye"},
	}
	for _, s := range steps {
		got := roundTrip(t, sc, conn, s.cmd)
		if got != s.want {
			t.Fatalf("%q -> %q, want %q", s.cmd, got, s.want)
		}
	}
}

func TestServerRollbackOnDisconnect(t *testing.T) {
	sc, conn := dialServer(t)
	if got := roundTrip(t, sc, conn, "BEGIN"); got != "OK" {
		t.Fatal(got)
	}
	if got := roundTrip(t, sc, conn, "PUT ghost value"); got != "OK" {
		t.Fatal(got)
	}
	conn.Close() // abrupt disconnect: the open transaction is abandoned

	// A new connection must not see the uncommitted write once the
	// abandoned transaction is reclaimed; immediately it may still hold
	// locks, so retry briefly.
	sc2, conn2 := dialServer(t)
	if got := roundTrip(t, sc2, conn2, "BEGIN"); got != "OK" {
		t.Fatal(got)
	}
	if got := roundTrip(t, sc2, conn2, "GET ghost"); !strings.HasPrefix(got, "NOTFOUND") && !strings.HasPrefix(got, "ERR") {
		t.Fatalf("uncommitted write visible: %q", got)
	}
	roundTrip(t, sc2, conn2, "ROLLBACK")
}

func TestParseMode(t *testing.T) {
	cases := map[string]treaty.SecurityMode{
		"rocksdb":    treaty.ModeRocksDB,
		"native":     treaty.ModeNativeTreaty,
		"native-enc": treaty.ModeNativeTreatyEnc,
		"scone":      treaty.ModeSconeNoEnc,
		"scone-enc":  treaty.ModeSconeEnc,
		"STAB":       treaty.ModeSconeEncStab,
	}
	for in, want := range cases {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = %v/%v, want %v", in, got, err, want)
		}
	}
	if _, err := parseMode("nonsense"); err == nil {
		t.Error("unknown mode must error")
	}
}
