// Command treatystat boots a small in-process Treaty cluster, drives a
// short mixed workload through it, and dumps the cluster's full metrics
// snapshot as JSON — a smoke-viewer for the observability layer: every
// counter, gauge and 2PC stage-latency histogram a node exports.
//
// Usage:
//
//	treatystat [-nodes 3] [-txns 200] [-mode enc|stab] [-digest] [-shardmap]
//
// -digest prints the condensed per-node report (the same digest the
// benchmark harness attaches to distributed measurements) instead of the
// raw snapshot.
//
// -shardmap prints the attested routing state instead: the CAS map's
// epoch and trusted-counter binding, per-slot ownership, and the epoch
// each node's verified view is at.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"treaty/internal/bench"
	"treaty/internal/core"
	"treaty/internal/shardmap"
)

// shardMapDump is the -shardmap output: the cluster's routing truth in
// one readable object.
type shardMapDump struct {
	Epoch   uint64            `json:"epoch"`
	Counter uint64            `json:"counter"`
	Members []shardmap.Member `json:"members"`
	// Slots maps each hash slot to its owning node id.
	Slots [shardmap.NumSlots]uint64 `json:"slots"`
	// SlotsByNode inverts Slots: node id -> owned slot numbers.
	SlotsByNode map[uint64][]int `json:"slots_by_node"`
	// NodeEpochs is each live node's verified view epoch; a node lagging
	// the CAS epoch has not refreshed yet.
	NodeEpochs map[string]uint64 `json:"node_epochs"`
}

func main() {
	log.SetFlags(0)
	nodes := flag.Int("nodes", 3, "cluster size")
	txns := flag.Int("txns", 200, "transactions to run before snapshotting")
	mode := flag.String("mode", "enc", "security mode: enc (encrypted, immediate counters) or stab (counter-service stabilization)")
	digest := flag.Bool("digest", false, "print the condensed per-node digest instead of the raw snapshot")
	shardMap := flag.Bool("shardmap", false, "print the attested shard map (epoch, per-slot ownership, per-node view epochs)")
	flag.Parse()

	secMode := core.ModeNativeTreatyEnc
	switch *mode {
	case "enc":
	case "stab":
		secMode = core.ModeSconeEncStab
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cluster, err := core.NewCluster(core.ClusterOptions{Nodes: *nodes, Mode: secMode, Seed: 7})
	if err != nil {
		log.Fatalf("treatystat: booting cluster: %v", err)
	}
	defer cluster.Stop()

	// A short mixed workload: writes spanning all shards, reads, and a
	// rollback every 10th transaction so abort metrics are populated too.
	for i := 0; i < *txns; i++ {
		tx := cluster.Node(i % *nodes).Begin(nil)
		key := fmt.Sprintf("stat/%04d", i)
		if err := tx.Put([]byte(key), []byte("v")); err != nil {
			_ = tx.Rollback()
			continue
		}
		if i > 0 {
			if _, _, err := tx.Get([]byte(fmt.Sprintf("stat/%04d", i-1))); err != nil {
				_ = tx.Rollback()
				continue
			}
		}
		if i%10 == 9 {
			_ = tx.Rollback()
			continue
		}
		if err := tx.Commit(); err != nil {
			log.Printf("treatystat: txn %d: %v", i, err)
		}
	}

	var out []byte
	switch {
	case *shardMap:
		m := cluster.CAS().ShardMap()
		dump := shardMapDump{
			Epoch:       m.Epoch,
			Counter:     m.Counter,
			Members:     m.Members,
			Slots:       m.Slots,
			SlotsByNode: make(map[uint64][]int),
			NodeEpochs:  make(map[string]uint64),
		}
		for slot, owner := range m.Slots {
			dump.SlotsByNode[owner] = append(dump.SlotsByNode[owner], slot)
		}
		for i := 0; i < cluster.Nodes(); i++ {
			if n := cluster.Node(i); n != nil {
				dump.NodeEpochs[n.Addr()] = n.ShardEpoch()
			}
		}
		out, err = json.MarshalIndent(dump, "", "  ")
	case *digest:
		out, err = json.MarshalIndent(bench.CaptureMetrics("treatystat", cluster), "", "  ")
	default:
		out, err = cluster.SnapshotJSON()
	}
	if err != nil {
		log.Fatalf("treatystat: rendering snapshot: %v", err)
	}
	fmt.Println(string(out))
}
