// Command treatystat boots a small in-process Treaty cluster, drives a
// short mixed workload through it, and dumps the cluster's full metrics
// snapshot as JSON — a smoke-viewer for the observability layer: every
// counter, gauge and 2PC stage-latency histogram a node exports.
//
// Usage:
//
//	treatystat [-nodes 3] [-txns 200] [-mode enc|stab] [-digest]
//
// -digest prints the condensed per-node report (the same digest the
// benchmark harness attaches to distributed measurements) instead of the
// raw snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"treaty/internal/bench"
	"treaty/internal/core"
)

func main() {
	log.SetFlags(0)
	nodes := flag.Int("nodes", 3, "cluster size")
	txns := flag.Int("txns", 200, "transactions to run before snapshotting")
	mode := flag.String("mode", "enc", "security mode: enc (encrypted, immediate counters) or stab (counter-service stabilization)")
	digest := flag.Bool("digest", false, "print the condensed per-node digest instead of the raw snapshot")
	flag.Parse()

	secMode := core.ModeNativeTreatyEnc
	switch *mode {
	case "enc":
	case "stab":
		secMode = core.ModeSconeEncStab
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cluster, err := core.NewCluster(core.ClusterOptions{Nodes: *nodes, Mode: secMode, Seed: 7})
	if err != nil {
		log.Fatalf("treatystat: booting cluster: %v", err)
	}
	defer cluster.Stop()

	// A short mixed workload: writes spanning all shards, reads, and a
	// rollback every 10th transaction so abort metrics are populated too.
	for i := 0; i < *txns; i++ {
		tx := cluster.Node(i % *nodes).Begin(nil)
		key := fmt.Sprintf("stat/%04d", i)
		if err := tx.Put([]byte(key), []byte("v")); err != nil {
			_ = tx.Rollback()
			continue
		}
		if i > 0 {
			if _, _, err := tx.Get([]byte(fmt.Sprintf("stat/%04d", i-1))); err != nil {
				_ = tx.Rollback()
				continue
			}
		}
		if i%10 == 9 {
			_ = tx.Rollback()
			continue
		}
		if err := tx.Commit(); err != nil {
			log.Printf("treatystat: txn %d: %v", i, err)
		}
	}

	var out []byte
	if *digest {
		out, err = json.MarshalIndent(bench.CaptureMetrics("treatystat", cluster), "", "  ")
	} else {
		out, err = cluster.SnapshotJSON()
	}
	if err != nil {
		log.Fatalf("treatystat: rendering snapshot: %v", err)
	}
	fmt.Println(string(out))
}
