package treaty_test

import (
	"fmt"
	"log"

	"treaty"
)

// Example boots a full-security cluster, runs one distributed
// transaction through an authenticated client, and reads it back.
func Example() {
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes: 3,
		Mode:  treaty.ModeSconeEncStab,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	tx, err := client.BeginTxn()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.TxnPut([]byte("greeting"), []byte("hello, enclave")); err != nil {
		log.Fatal(err)
	}
	if err := tx.TxnCommit(); err != nil {
		log.Fatal(err)
	}

	tx2, err := client.BeginTxn()
	if err != nil {
		log.Fatal(err)
	}
	v, found, err := tx2.TxnGet([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(found, string(v))
	_ = tx2.TxnRollback()
	// Output: true hello, enclave
}

// ExampleCluster_NewClient shows client authentication: credentials are
// registered with the CAS, which releases the network key only after a
// successful key exchange.
func ExampleCluster_NewClient() {
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{Nodes: 3, Mode: treaty.ModeSconeEnc})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Println("authenticated")
	// Output: authenticated
}
