// Command adversary mounts the attacks from Treaty's threat model (§III)
// against a running cluster and shows each one being *detected*:
//
//  1. Network tampering: an interposer corrupts 2PC traffic; the sealed
//     message format rejects it and the transaction times out instead of
//     committing corrupted data.
//  2. Replay/duplication: captured operation messages are re-injected;
//     at-most-once metadata ((node, tx, op) tuples) prevents double
//     execution.
//  3. Storage tampering: a WAL byte is flipped on disk; recovery fails
//     the hash chain.
//  4. Rollback attack: the adversary restores an older (but internally
//     consistent) WAL and restarts the node; the trusted counter exposes
//     the missing suffix and recovery refuses to serve stale state.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"treaty"
	"treaty/internal/lsm"
	"treaty/internal/simnet"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "treaty-adversary-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	fmt.Println("Booting a full-security cluster (the adversary owns the network and disks)...")
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes:       3,
		Mode:        treaty.ModeSconeEncStab,
		BaseDir:     base,
		LockTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Commit some baseline data.
	tx := cluster.Node(0).Begin(nil)
	for i := 0; i < 5; i++ {
		if err := tx.Put([]byte(fmt.Sprintf("asset:%d", i)), []byte("genuine")); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Println("  baseline data committed")

	// --- Attack 1: corrupt all 2PC traffic. ---
	fmt.Println("\n[attack 1] corrupting network traffic between nodes...")
	cluster.Net().SetAdversary(simnet.NewCorrupter(1.0, 99))
	tx2 := cluster.Node(0).Begin(nil)
	err = tx2.Put([]byte("asset:tampered"), []byte("evil"))
	if err == nil {
		err = tx2.Commit()
	} else {
		tx2.Rollback()
	}
	cluster.Net().SetAdversary(nil)
	if err == nil {
		return errors.New("tampered transaction committed — DETECTION FAILED")
	}
	fmt.Printf("  detected: transaction failed cleanly (%v)\n", trim(err))

	// --- Attack 2: record and replay. ---
	fmt.Println("\n[attack 2] recording a transaction and replaying its packets...")
	rec := &simnet.Recorder{}
	cluster.Net().SetAdversary(rec)
	tx3 := cluster.Node(0).Begin(nil)
	if err := tx3.Put([]byte("counter:pay-once"), []byte("1-payment")); err != nil {
		return err
	}
	if err := tx3.Commit(); err != nil {
		return err
	}
	cluster.Net().SetAdversary(nil)
	before := cluster.Net().Stats().Delivered
	if err := rec.Replay(cluster.Net()); err != nil {
		return err
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("  replayed %d captured packets (delivered count %d -> %d)\n",
		len(rec.Captured()), before, cluster.Net().Stats().Delivered)
	check := cluster.Node(1).Begin(nil)
	v, _, err := check.Get([]byte("counter:pay-once"))
	check.Rollback()
	if err != nil {
		return err
	}
	fmt.Printf("  detected: replayed operations were deduplicated, value still %q\n", v)

	// --- Attack 3: tamper with the WAL on disk. ---
	fmt.Println("\n[attack 3] flipping a byte in node-1's WAL on disk...")
	cluster.CrashNode(1)
	walPath, err := newestWAL(filepath.Join(base, "node-1"))
	if err != nil {
		return err
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return errors.New("empty WAL")
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		return err
	}
	_, err = cluster.RestartNode(1)
	if err == nil {
		return errors.New("tampered WAL accepted — DETECTION FAILED")
	}
	fmt.Printf("  detected: recovery refused (%v)\n", trim(err))
	// Repair: restore the byte so the next attack can run.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		return err
	}
	if _, err := cluster.RestartNode(1); err != nil {
		return fmt.Errorf("restart after repair: %w", err)
	}
	fmt.Println("  (WAL restored; node recovered normally)")

	// --- Attack 4: rollback to a stale-but-consistent state. ---
	fmt.Println("\n[attack 4] snapshotting node-2's WAL, committing more data, then rolling the file back...")
	wal2, err := newestWAL(filepath.Join(base, "node-2"))
	if err != nil {
		return err
	}
	stale, err := os.ReadFile(wal2)
	if err != nil {
		return err
	}
	tx4 := cluster.Node(2).Begin(nil)
	for i := 0; i < 6; i++ {
		if err := tx4.Put([]byte(fmt.Sprintf("post-snapshot:%d", i)), []byte("newer")); err != nil {
			return err
		}
	}
	if err := tx4.Commit(); err != nil {
		return err
	}
	cluster.CrashNode(2)
	if err := os.WriteFile(wal2, stale, 0o644); err != nil {
		return err
	}
	_, err = cluster.RestartNode(2)
	if err == nil {
		return errors.New("rollback accepted — DETECTION FAILED")
	}
	if !errors.Is(err, lsm.ErrRollbackDetected) {
		fmt.Printf("  detected (as %v)\n", trim(err))
	} else {
		fmt.Printf("  detected: %v\n", trim(err))
	}

	fmt.Println("\nAll four attacks detected. The adversary can deny service, never corrupt it.")
	return nil
}

// newestWAL returns the highest-numbered WAL in dir.
func newestWAL(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		return "", fmt.Errorf("no WAL found in %s: %v", dir, err)
	}
	return matches[len(matches)-1], nil
}

// trim shortens long error chains for display.
func trim(err error) string {
	s := err.Error()
	if len(s) > 120 {
		s = s[:117] + "..."
	}
	return s
}
