// Command bank demonstrates distributed atomicity and isolation: a set
// of accounts sharded across 3 nodes, hammered by concurrent transfer
// transactions. Because every transfer debits one shard and credits
// another inside a single serializable 2PC transaction, the total amount
// of money is invariant — the example verifies it continuously.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"treaty"
)

const (
	accounts       = 50
	initialBalance = 1000
	workers        = 8
	transfersPer   = 40
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func acctKey(i int) []byte { return []byte(fmt.Sprintf("acct:%04d", i)) }

func encBalance(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}

func decBalance(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func run() error {
	fmt.Printf("Booting cluster; creating %d accounts with %d each (total %d)...\n",
		accounts, initialBalance, accounts*initialBalance)
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes: 3,
		Mode:  treaty.ModeSconeEnc,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Seed accounts in one transaction.
	seed := cluster.Node(0).Begin(nil)
	for i := 0; i < accounts; i++ {
		if err := seed.Put(acctKey(i), encBalance(initialBalance)); err != nil {
			return err
		}
	}
	if err := seed.Commit(); err != nil {
		return err
	}

	var committed, aborted atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := cluster.Node(w % cluster.Nodes())
			for i := 0; i < transfersPer; i++ {
				from := (w*7 + i*3) % accounts
				to := (from + 1 + i%11) % accounts
				amount := uint64(1 + i%17)
				if transfer(node, from, to, amount) {
					committed.Add(1)
				} else {
					aborted.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("Ran %d transfers: %d committed, %d aborted (lock conflicts)\n",
		workers*transfersPer, committed.Load(), aborted.Load())

	// Verify the invariant.
	check := cluster.Node(1).Begin(nil)
	var total uint64
	for i := 0; i < accounts; i++ {
		v, found, err := check.Get(acctKey(i))
		if err != nil || !found {
			return fmt.Errorf("account %d missing: %v", i, err)
		}
		total += decBalance(v)
	}
	check.Rollback()
	fmt.Printf("Total after transfers: %d\n", total)
	if total != accounts*initialBalance {
		return fmt.Errorf("INVARIANT VIOLATED: total %d != %d — money was created or destroyed",
			total, accounts*initialBalance)
	}
	fmt.Println("Invariant holds: serializable distributed transactions preserved the total.")
	return nil
}

// transfer moves amount between two (usually remote) accounts in one
// distributed transaction; it reports whether the transaction committed.
func transfer(node *treaty.Node, from, to int, amount uint64) bool {
	tx := node.Begin(nil)
	fv, found, err := tx.Get(acctKey(from))
	if err != nil || !found {
		tx.Rollback()
		return false
	}
	tv, found, err := tx.Get(acctKey(to))
	if err != nil || !found {
		tx.Rollback()
		return false
	}
	fb, tb := decBalance(fv), decBalance(tv)
	if fb < amount {
		tx.Rollback()
		return false
	}
	if err := tx.Put(acctKey(from), encBalance(fb-amount)); err != nil {
		tx.Rollback()
		return false
	}
	if err := tx.Put(acctKey(to), encBalance(tb+amount)); err != nil {
		tx.Rollback()
		return false
	}
	return tx.Commit() == nil
}
