// Command crashrestart demonstrates crash-fail durability in the native
// encrypted mode: commit data, crash-stop every node in turn (no
// graceful shutdown — memory is dropped, only files survive), restart
// it, and show that every acknowledged commit is still readable. This
// exercises the persistent instant-stability counters: without them,
// secure-level recovery would discard the whole WAL as an unstabilized
// tail and silently lose the data.
package main

import (
	"fmt"
	"log"
	"os"

	"treaty"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "treaty-crashrestart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	fmt.Println("Booting a 3-node cluster in native encrypted mode...")
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes: 3, Mode: treaty.ModeNativeTreatyEnc, BaseDir: base,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	tx := cluster.Node(0).Begin(nil)
	for i := 0; i < 30; i++ {
		if err := tx.Put([]byte(fmt.Sprintf("k:%02d", i)), []byte("v")); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Println("  committed 30 keys across the 3 shards")

	for n := 0; n < 3; n++ {
		cluster.CrashNode(n)
		if _, err := cluster.RestartNode(n); err != nil {
			return fmt.Errorf("restart node %d: %w", n, err)
		}
		fmt.Printf("  node %d crash-stopped and restarted (recovery ran)\n", n)
	}

	check := cluster.Node(1).Begin(nil)
	missing := 0
	for i := 0; i < 30; i++ {
		if _, ok, err := check.Get([]byte(fmt.Sprintf("k:%02d", i))); err != nil || !ok {
			missing++
			fmt.Printf("  LOST k:%02d (found=%v err=%v)\n", i, ok, err)
		}
	}
	_ = check.Rollback()
	if missing > 0 {
		return fmt.Errorf("durability violation: %d/30 committed keys lost", missing)
	}
	fmt.Println("\nAll 30 committed keys survived a crash-restart of every node.")
	return nil
}
