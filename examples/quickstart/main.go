// Command quickstart boots a 3-node Treaty cluster in full security mode
// (enclaves + encryption + distributed rollback protection), connects an
// authenticated client, and runs a couple of interactive transactions —
// the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"treaty"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Booting a 3-node Treaty cluster (full security: enclave + encryption + stabilization)...")
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes: 3,
		Mode:  treaty.ModeSconeEncStab,
	})
	if err != nil {
		return fmt.Errorf("booting cluster: %w", err)
	}
	defer cluster.Stop()
	fmt.Println("  cluster up: nodes attested to the CAS, keys provisioned, counter group running")

	client, err := cluster.NewClient()
	if err != nil {
		return fmt.Errorf("connecting client: %w", err)
	}
	defer client.Close()
	fmt.Println("  client authenticated via CAS (network key received over attested channel)")

	// Transaction 1: write a few keys atomically across shards.
	tx, err := client.BeginTxn()
	if err != nil {
		return err
	}
	users := map[string]string{
		"user:1001": "alice",
		"user:1002": "bob",
		"user:1003": "carol",
	}
	for k, v := range users {
		if err := tx.TxnPut([]byte(k), []byte(v)); err != nil {
			return err
		}
	}
	if err := tx.TxnCommit(); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	fmt.Println("  committed 3 keys in one distributed transaction (2PC + stabilization)")

	// Transaction 2: read them back.
	tx2, err := client.BeginTxn()
	if err != nil {
		return err
	}
	for k, want := range users {
		v, found, err := tx2.TxnGet([]byte(k))
		if err != nil {
			return err
		}
		if !found || string(v) != want {
			return fmt.Errorf("read %s: got %q/%v, want %q", k, v, found, want)
		}
		fmt.Printf("  %s = %s\n", k, v)
	}
	if err := tx2.TxnRollback(); err != nil {
		return err
	}

	// Transaction 3: rollback discards writes.
	tx3, err := client.BeginTxn()
	if err != nil {
		return err
	}
	if err := tx3.TxnPut([]byte("user:9999"), []byte("eve")); err != nil {
		return err
	}
	if err := tx3.TxnRollback(); err != nil {
		return err
	}
	tx4, err := client.BeginTxn()
	if err != nil {
		return err
	}
	if _, found, err := tx4.TxnGet([]byte("user:9999")); err != nil {
		return err
	} else if found {
		return fmt.Errorf("rolled-back write is visible")
	}
	tx4.TxnRollback()
	fmt.Println("  rollback verified: aborted writes are invisible")
	fmt.Println("Done. Every committed transaction is serializable, encrypted at rest and in flight, and rollback-protected.")
	return nil
}
