// Command tpcc runs a miniature TPC-C mix against a secure 3-node Treaty
// cluster — the workload the paper's distributed evaluation uses. New
// orders and payments touch remote warehouses with the spec's
// probabilities, so a fraction of transactions are genuinely distributed
// (multi-shard 2PC).
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"treaty"
	"treaty/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := workload.TPCCConfig{
		Warehouses:            4,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  30,
		Items:                 200,
	}
	fmt.Printf("Booting secure cluster; loading TPC-C (%d warehouses)...\n", cfg.Warehouses)
	cluster, err := treaty.NewCluster(treaty.ClusterOptions{
		Nodes:       3,
		Mode:        treaty.ModeSconeEnc,
		LockTimeout: 2 * time.Second,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	begin := func(node *treaty.Node) workload.Begin {
		return func() workload.Txn { return node.Begin(nil) }
	}
	loader := workload.NewTPCC(cfg, 7)
	start := time.Now()
	if err := loader.Load(begin(cluster.Node(0)), 500); err != nil {
		return fmt.Errorf("loading: %w", err)
	}
	fmt.Printf("  loaded in %v (every row encrypted, every batch a distributed txn)\n",
		time.Since(start).Round(time.Millisecond))

	const clients, perClient = 6, 50
	var mu sync.Mutex
	counts := map[workload.TPCCTxnType]int{}
	rollbacks, conflicts := 0, 0

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			driver := workload.NewTPCC(cfg, int64(100+c))
			node := cluster.Node(c % cluster.Nodes())
			home := 1 + c%cfg.Warehouses
			for i := 0; i < perClient; i++ {
				typ := driver.NextType()
				err := driver.Run(begin(node), typ, home)
				mu.Lock()
				switch {
				case err == nil:
					counts[typ]++
				case errors.Is(err, workload.ErrAbortedByUser):
					rollbacks++
				default:
					conflicts++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	fmt.Println("Transaction mix executed:")
	total := 0
	for _, typ := range []workload.TPCCTxnType{
		workload.TxnNewOrder, workload.TxnPayment, workload.TxnOrderStatus,
		workload.TxnDelivery, workload.TxnStockLevel,
	} {
		fmt.Printf("  %-12s %4d committed\n", typ, counts[typ])
		total += counts[typ]
	}
	fmt.Printf("  %-12s %4d (spec-mandated 1%% new-order rollbacks)\n", "user-aborts", rollbacks)
	fmt.Printf("  %-12s %4d (lock conflicts, retried in production drivers)\n", "aborts", conflicts)
	fmt.Printf("Committed %d/%d transactions across %d clients.\n", total, clients*perClient, clients)
	return nil
}
