module treaty

go 1.22
