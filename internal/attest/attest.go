// Package attest implements Treaty's distributed trust establishment
// (§VI): a simulated Intel Attestation Service (IAS) root of trust, the
// Configuration and Attestation Service (CAS) hosted inside the data
// center, and the per-node Local Attestation Service (LAS) that replaces
// the SGX Quoting Enclave.
//
// Bootstrap flow, exactly as the paper describes:
//
//  1. The service provider verifies the CAS over IAS and deploys it.
//  2. A LAS is deployed on every node, verified by the CAS over IAS; it
//     collects and signs quotes for all Treaty instances on that node.
//  3. Each Treaty enclave attests to the CAS (quote binding an ephemeral
//     X25519 public key). On success the CAS provisions the instance with
//     the cluster configuration — network key, storage key, peer
//     addresses — encrypted to the attested key, so only the genuine
//     enclave can read it.
//  4. Clients authenticate to the CAS with pre-registered credentials
//     and receive the keys needed to talk to the cluster.
//
// Avoiding per-restart round trips to the (high-latency, external) IAS is
// the point of hosting the CAS in the data center: node recovery
// re-attests against the local CAS only.
package attest

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"treaty/internal/enclave"
	"treaty/internal/seal"
	"treaty/internal/shardmap"
)

// Errors returned by this package.
var (
	// ErrUnknownPlatform indicates a quote from a platform the IAS has
	// no endorsement for.
	ErrUnknownPlatform = errors.New("attest: unknown platform")
	// ErrQuoteRejected indicates quote verification failed.
	ErrQuoteRejected = errors.New("attest: quote rejected")
	// ErrWrongMeasurement indicates the attested code is not the
	// expected Treaty build.
	ErrWrongMeasurement = errors.New("attest: unexpected enclave measurement")
	// ErrBadCredentials indicates a client failed authentication.
	ErrBadCredentials = errors.New("attest: bad client credentials")
)

// IAS simulates the manufacturer attestation service: the only party that
// can verify platform signatures. It is consulted once per platform (CAS
// and LAS deployment), not on node restarts.
type IAS struct {
	mu        sync.RWMutex
	platforms map[string]seal.Key // platform name -> root key endorsement
}

// NewIAS creates an empty registry.
func NewIAS() *IAS {
	return &IAS{platforms: make(map[string]seal.Key)}
}

// RegisterPlatform records a platform endorsement (the manufacturer
// knows each CPU's root key).
func (s *IAS) RegisterPlatform(p *enclave.Platform) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platforms[p.Name] = p.RootKey()
}

// Verify checks a quote against the platform endorsement.
func (s *IAS) Verify(q *enclave.Quote) error {
	s.mu.RLock()
	key, ok := s.platforms[q.Platform]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPlatform, q.Platform)
	}
	if err := enclave.VerifyQuote(key, q); err != nil {
		return fmt.Errorf("%w: %v", ErrQuoteRejected, err)
	}
	return nil
}

// ClusterConfig is what the CAS provisions to attested instances: "the
// necessary configuration, e.g., network key, nodes' IPs, etc.".
type ClusterConfig struct {
	// NetworkKey protects all inter-node RPC traffic.
	NetworkKey seal.Key
	// StorageKey is the master key for the node's persistent structures.
	StorageKey seal.Key
	// Nodes lists the cluster members' RPC addresses, indexed by node id.
	Nodes []string
	// CounterReplicas lists the trusted counter protection group.
	CounterReplicas []string
}

// encodeConfig serializes a ClusterConfig.
func encodeConfig(c *ClusterConfig) []byte {
	var b []byte
	b = append(b, c.NetworkKey[:]...)
	b = append(b, c.StorageKey[:]...)
	b = appendStringList(b, c.Nodes)
	b = appendStringList(b, c.CounterReplicas)
	return b
}

// decodeConfig deserializes a ClusterConfig.
func decodeConfig(data []byte) (*ClusterConfig, error) {
	if len(data) < 2*seal.KeySize {
		return nil, errors.New("attest: short config")
	}
	var c ClusterConfig
	copy(c.NetworkKey[:], data)
	copy(c.StorageKey[:], data[seal.KeySize:])
	rest := data[2*seal.KeySize:]
	var err error
	c.Nodes, rest, err = readStringList(rest)
	if err != nil {
		return nil, err
	}
	c.CounterReplicas, _, err = readStringList(rest)
	if err != nil {
		return nil, err
	}
	return &c, nil
}

func appendStringList(b []byte, list []string) []byte {
	b = append(b, byte(len(list)))
	for _, s := range list {
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	return b
}

func readStringList(b []byte) ([]string, []byte, error) {
	if len(b) < 1 {
		return nil, nil, errors.New("attest: short list")
	}
	n := int(b[0])
	b = b[1:]
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, nil, errors.New("attest: short list")
		}
		l := int(b[0])
		b = b[1:]
		if len(b) < l {
			return nil, nil, errors.New("attest: short list")
		}
		out = append(out, string(b[:l]))
		b = b[l:]
	}
	return out, b, nil
}

// CAS is the Configuration and Attestation Service. One instance runs in
// the data center; the service provider verified it over IAS at
// deployment.
type CAS struct {
	ias      *IAS
	expected enclave.Measurement

	mu      sync.Mutex
	config  ClusterConfig
	lass    map[string]bool   // platforms with a verified LAS
	clients map[string][]byte // client id -> credential secret

	// Shard-map authority: the CAS signs every shard-map epoch under a
	// key derived from the network key and binds the epoch to shardCtr,
	// a trusted monotonic counter (simulated here exactly like the
	// nodes' trusted counters — it only ever ratchets forward). The
	// counter's stable value is the freshness floor every verifier
	// holds: a replayed older epoch fails verification against it.
	shardKey seal.Key
	shard    *shardmap.Map
	shardCtr uint64

	// Replication witness state (promotion.go): per (primary, stream),
	// the last group sequence replicated before stabilization and the
	// prefix digest at it.
	repl map[witnessKey]*StreamWitness
}

// NewCAS deploys a CAS trusting enclaves with the expected measurement
// and distributing config. The epoch-1 shard map (slots dealt uniformly
// across config.Nodes) is signed and counter-bound immediately.
func NewCAS(ias *IAS, expected enclave.Measurement, config ClusterConfig) *CAS {
	c := &CAS{
		ias:      ias,
		expected: expected,
		config:   config,
		lass:     make(map[string]bool),
		clients:  make(map[string][]byte),
		shardKey: shardmap.KeyFor(config.NetworkKey),
	}
	members := make([]shardmap.Member, len(config.Nodes))
	for i, addr := range config.Nodes {
		members[i] = shardmap.Member{ID: uint64(i), Addr: addr}
	}
	if len(members) > 0 {
		m := shardmap.Uniform(members)
		m.Sign(c.shardKey)
		c.shard = m
		c.shardCtr = m.Epoch
	}
	return c
}

// ShardMap returns the current signed shard map (a copy; maps are
// immutable once signed).
func (c *CAS) ShardMap() *shardmap.Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shard == nil {
		return nil
	}
	return c.shard.Clone()
}

// ShardMapStable returns the shard-map trusted counter's stable value:
// the minimum epoch any verifier should accept.
func (c *CAS) ShardMapStable() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shardCtr
}

// InstallShardMap publishes the next shard-map epoch: it must advance
// the epoch by exactly one from the current map and reference only
// known members. The CAS signs it and stabilizes the trusted counter
// to the new epoch BEFORE releasing the map — the ordering that makes
// rollback detection sound (no verifier can ever have seen an epoch
// above the counter).
func (c *CAS) InstallShardMap(next *shardmap.Map) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shard == nil {
		return errors.New("attest: no shard map deployed")
	}
	if next.Epoch != c.shard.Epoch+1 {
		return fmt.Errorf("attest: shard map epoch must advance by one (%d -> %d)", c.shard.Epoch, next.Epoch)
	}
	m := next.Clone()
	m.Counter = m.Epoch
	m.Sign(c.shardKey)
	if err := m.Verify(c.shardKey, c.shardCtr); err != nil {
		return fmt.Errorf("attest: refusing to install shard map: %w", err)
	}
	// Stabilize the counter first, then swap: the map is only reachable
	// once its epoch is the counter's floor.
	c.shardCtr = m.Epoch
	c.shard = m
	return nil
}

// AddNode extends the cluster with a new member: the address joins the
// provisioned node list (so the new node's attestation sees itself),
// and a new shard-map epoch adds the member owning zero slots — slots
// move to it only through explicit migration. Returns the new map.
func (c *CAS) AddNode(addr string) (*shardmap.Map, error) {
	c.mu.Lock()
	if c.shard == nil {
		c.mu.Unlock()
		return nil, errors.New("attest: no shard map deployed")
	}
	id := uint64(len(c.config.Nodes))
	c.config.Nodes = append(c.config.Nodes, addr)
	next := c.shard.Clone()
	next.Epoch++
	next.Members = append(next.Members, shardmap.Member{ID: id, Addr: addr})
	c.mu.Unlock()
	if err := c.InstallShardMap(next); err != nil {
		return nil, err
	}
	return c.ShardMap(), nil
}

// DeployLAS verifies (over IAS) and registers a LAS for a platform. Until
// a platform has a LAS, its instances cannot attest.
func (c *CAS) DeployLAS(las *LAS) error {
	if err := c.ias.Verify(&las.quote); err != nil {
		return fmt.Errorf("attest: LAS verification: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lass[las.platform.Name] = true
	return nil
}

// RegisterClient stores a client credential for later authentication.
func (c *CAS) RegisterClient(id string, secret []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clients[id] = append([]byte(nil), secret...)
}

// AttestationRequest is what an instance sends: its quote (signed by the
// node's LAS), with the instance's ephemeral X25519 public key bound into
// the report data.
type AttestationRequest struct {
	// Quote attests the instance.
	Quote enclave.Quote
	// PublicKey is the instance's ephemeral X25519 key (also bound in
	// Quote.ReportData — the binding is what defeats relay attacks).
	PublicKey []byte
}

// AttestationResponse carries the config sealed to the attested key.
type AttestationResponse struct {
	// CASPublicKey is the CAS's ephemeral X25519 key for this exchange.
	CASPublicKey []byte
	// SealedConfig is the ClusterConfig encrypted under the ECDH-derived
	// session key.
	SealedConfig []byte
}

// Attest verifies an instance and, on success, provisions the cluster
// configuration encrypted to its attested key.
func (c *CAS) Attest(req *AttestationRequest) (*AttestationResponse, error) {
	c.mu.Lock()
	hasLAS := c.lass[req.Quote.Platform]
	cfg := c.config
	cfg.Nodes = append([]string(nil), c.config.Nodes...)
	c.mu.Unlock()
	if !hasLAS {
		return nil, fmt.Errorf("%w: no LAS on %s", ErrQuoteRejected, req.Quote.Platform)
	}
	// The LAS signs with the platform key (it replaced the QE), so the
	// IAS endorsement verifies node-local quotes without contacting IAS.
	if err := c.ias.Verify(&req.Quote); err != nil {
		return nil, err
	}
	if req.Quote.Measurement != c.expected {
		return nil, ErrWrongMeasurement
	}
	// The quote must bind the offered public key.
	if len(req.PublicKey) == 0 || !bytes.HasPrefix(req.Quote.ReportData[:], req.PublicKey) {
		return nil, fmt.Errorf("%w: public key not bound in quote", ErrQuoteRejected)
	}

	sessionKey, casPub, err := deriveSessionKey(req.PublicKey)
	if err != nil {
		return nil, err
	}
	ciph, err := seal.NewCipher(sessionKey)
	if err != nil {
		return nil, err
	}
	return &AttestationResponse{
		CASPublicKey: casPub,
		SealedConfig: ciph.Seal(encodeConfig(&cfg), req.PublicKey),
	}, nil
}

// AuthenticateClient verifies a client credential and returns the
// network key sealed to the client's ephemeral key.
func (c *CAS) AuthenticateClient(id string, secret, clientPub []byte) (*AttestationResponse, error) {
	c.mu.Lock()
	want, ok := c.clients[id]
	cfg := ClusterConfig{NetworkKey: c.config.NetworkKey, Nodes: append([]string(nil), c.config.Nodes...)}
	c.mu.Unlock()
	if !ok || !bytes.Equal(want, secret) {
		return nil, ErrBadCredentials
	}
	sessionKey, casPub, err := deriveSessionKey(clientPub)
	if err != nil {
		return nil, err
	}
	ciph, err := seal.NewCipher(sessionKey)
	if err != nil {
		return nil, err
	}
	return &AttestationResponse{
		CASPublicKey: casPub,
		SealedConfig: ciph.Seal(encodeConfig(&cfg), clientPub),
	}, nil
}

// deriveSessionKey performs the CAS side of the X25519 exchange.
func deriveSessionKey(peerPub []byte) (seal.Key, []byte, error) {
	curve := ecdh.X25519()
	peer, err := curve.NewPublicKey(peerPub)
	if err != nil {
		return seal.Key{}, nil, fmt.Errorf("attest: peer key: %w", err)
	}
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return seal.Key{}, nil, fmt.Errorf("attest: keygen: %w", err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return seal.Key{}, nil, fmt.Errorf("attest: ecdh: %w", err)
	}
	key, err := seal.KeyFromBytes(shared)
	if err != nil {
		return seal.Key{}, nil, err
	}
	return seal.DeriveKey(key, "attest/session"), priv.PublicKey().Bytes(), nil
}

// LAS is the Local Attestation Service for one platform: it replaces the
// Quoting Enclave, collecting and signing quotes for all Treaty instances
// on the node. Its own identity was verified by the CAS over IAS at
// deployment.
type LAS struct {
	platform *enclave.Platform
	quote    enclave.Quote
}

// NewLAS launches a LAS on the platform.
func NewLAS(p *enclave.Platform) (*LAS, error) {
	encl, err := p.Launch("treaty-las", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		return nil, fmt.Errorf("attest: launching LAS: %w", err)
	}
	return &LAS{platform: p, quote: encl.Quote(nil)}, nil
}

// QuoteFor produces a signed quote for a local instance. (On this
// simulated hardware the platform key signs directly; the LAS is the
// component authorized to use it, as the QE is on SGX.)
func (l *LAS) QuoteFor(instance *enclave.Enclave, reportData []byte) enclave.Quote {
	return instance.Quote(reportData)
}

// Instance is the node-side attestation helper: it generates the
// ephemeral key, obtains a quote via the LAS, and opens the CAS response.
type Instance struct {
	encl *enclave.Enclave
	las  *LAS
	priv *ecdh.PrivateKey
}

// NewInstance prepares an instance attestation for encl via las.
func NewInstance(encl *enclave.Enclave, las *LAS) (*Instance, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: keygen: %w", err)
	}
	return &Instance{encl: encl, las: las, priv: priv}, nil
}

// Request builds the attestation request (quote binds the public key).
func (i *Instance) Request() *AttestationRequest {
	pub := i.priv.PublicKey().Bytes()
	return &AttestationRequest{
		Quote:     i.las.QuoteFor(i.encl, pub),
		PublicKey: pub,
	}
}

// OpenResponse decrypts the provisioned configuration.
func (i *Instance) OpenResponse(resp *AttestationResponse) (*ClusterConfig, error) {
	curve := ecdh.X25519()
	casPub, err := curve.NewPublicKey(resp.CASPublicKey)
	if err != nil {
		return nil, fmt.Errorf("attest: cas key: %w", err)
	}
	shared, err := i.priv.ECDH(casPub)
	if err != nil {
		return nil, fmt.Errorf("attest: ecdh: %w", err)
	}
	key, err := seal.KeyFromBytes(shared)
	if err != nil {
		return nil, err
	}
	ciph, err := seal.NewCipher(seal.DeriveKey(key, "attest/session"))
	if err != nil {
		return nil, err
	}
	plain, err := ciph.Open(resp.SealedConfig, i.priv.PublicKey().Bytes())
	if err != nil {
		return nil, fmt.Errorf("attest: opening config: %w", err)
	}
	return decodeConfig(plain)
}

// ClientSession is the client-side counterpart for CAS authentication.
type ClientSession struct {
	priv *ecdh.PrivateKey
}

// NewClientSession creates a client key exchange session.
func NewClientSession() (*ClientSession, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: keygen: %w", err)
	}
	return &ClientSession{priv: priv}, nil
}

// PublicKey returns the session public key to send to the CAS.
func (s *ClientSession) PublicKey() []byte { return s.priv.PublicKey().Bytes() }

// OpenResponse decrypts the CAS's client-auth response.
func (s *ClientSession) OpenResponse(resp *AttestationResponse) (*ClusterConfig, error) {
	i := Instance{priv: s.priv}
	return i.OpenResponse(resp)
}
