package attest

import (
	"errors"
	"testing"

	"treaty/internal/enclave"
	"treaty/internal/seal"
	"treaty/internal/shardmap"
)

// testbed wires an IAS, a CAS, and one node platform with a LAS.
type testbed struct {
	ias    *IAS
	cas    *CAS
	plat   *enclave.Platform
	las    *LAS
	config ClusterConfig
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	ias := NewIAS()
	plat, err := enclave.NewPlatform("node-1")
	if err != nil {
		t.Fatal(err)
	}
	ias.RegisterPlatform(plat)

	netKey, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	storKey, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClusterConfig{
		NetworkKey:      netKey,
		StorageKey:      storKey,
		Nodes:           []string{"node-1:9000", "node-2:9000", "node-3:9000"},
		CounterReplicas: []string{"ctr-1", "ctr-2", "ctr-3"},
	}
	cas := NewCAS(ias, enclave.MeasureCode("treaty-node"), cfg)

	las, err := NewLAS(plat)
	if err != nil {
		t.Fatal(err)
	}
	if err := cas.DeployLAS(las); err != nil {
		t.Fatal(err)
	}
	return &testbed{ias: ias, cas: cas, plat: plat, las: las, config: cfg}
}

func launchInstance(t *testing.T, tb *testbed, identity string) *Instance {
	t.Helper()
	encl, err := tb.plat.Launch(identity, enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(encl, tb.las)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFullAttestationFlow(t *testing.T) {
	tb := newTestbed(t)
	inst := launchInstance(t, tb, "treaty-node")

	resp, err := tb.cas.Attest(inst.Request())
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	got, err := inst.OpenResponse(resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	if got.NetworkKey != tb.config.NetworkKey || got.StorageKey != tb.config.StorageKey {
		t.Error("provisioned keys do not match")
	}
	if len(got.Nodes) != 3 || got.Nodes[1] != "node-2:9000" {
		t.Errorf("nodes = %v", got.Nodes)
	}
	if len(got.CounterReplicas) != 3 {
		t.Errorf("counter replicas = %v", got.CounterReplicas)
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	tb := newTestbed(t)
	malware := launchInstance(t, tb, "treaty-node-evil")
	if _, err := tb.cas.Attest(malware.Request()); !errors.Is(err, ErrWrongMeasurement) {
		t.Errorf("got %v, want ErrWrongMeasurement", err)
	}
}

func TestUnknownPlatformRejected(t *testing.T) {
	tb := newTestbed(t)
	rogue, err := enclave.NewPlatform("rogue-host")
	if err != nil {
		t.Fatal(err)
	}
	// Rogue platform never registered with IAS; even with a local LAS
	// object it must fail.
	rogueLAS, err := NewLAS(rogue)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.cas.DeployLAS(rogueLAS); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("rogue LAS deploy: got %v, want ErrUnknownPlatform", err)
	}
	encl, err := rogue.Launch("treaty-node", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(encl, rogueLAS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.cas.Attest(inst.Request()); !errors.Is(err, ErrQuoteRejected) {
		t.Errorf("rogue attest: got %v, want ErrQuoteRejected", err)
	}
}

func TestNoLASRejected(t *testing.T) {
	ias := NewIAS()
	plat, err := enclave.NewPlatform("node-x")
	if err != nil {
		t.Fatal(err)
	}
	ias.RegisterPlatform(plat)
	cas := NewCAS(ias, enclave.MeasureCode("treaty-node"), ClusterConfig{})
	las, err := NewLAS(plat)
	if err != nil {
		t.Fatal(err)
	}
	// LAS never deployed to the CAS.
	encl, err := plat.Launch("treaty-node", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(encl, las)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cas.Attest(inst.Request()); !errors.Is(err, ErrQuoteRejected) {
		t.Errorf("got %v, want ErrQuoteRejected (no LAS)", err)
	}
}

func TestStolenQuoteCannotRedirectKeys(t *testing.T) {
	// An attacker relaying a genuine quote but substituting their own
	// public key must fail: the quote binds the original key.
	tb := newTestbed(t)
	inst := launchInstance(t, tb, "treaty-node")
	req := inst.Request()

	attacker, err := NewClientSession()
	if err != nil {
		t.Fatal(err)
	}
	forged := &AttestationRequest{Quote: req.Quote, PublicKey: attacker.PublicKey()}
	if _, err := tb.cas.Attest(forged); !errors.Is(err, ErrQuoteRejected) {
		t.Errorf("got %v, want ErrQuoteRejected", err)
	}
}

func TestProvisionedConfigConfidential(t *testing.T) {
	tb := newTestbed(t)
	inst := launchInstance(t, tb, "treaty-node")
	resp, err := tb.cas.Attest(inst.Request())
	if err != nil {
		t.Fatal(err)
	}
	// The sealed config must not leak the network key in plaintext.
	for i := 0; i+seal.KeySize <= len(resp.SealedConfig); i++ {
		if seal.Key(resp.SealedConfig[i:i+seal.KeySize]) == tb.config.NetworkKey {
			t.Fatal("network key leaked in sealed config")
		}
	}
	// A different instance (different key) cannot open this response.
	other := launchInstance(t, tb, "treaty-node")
	if _, err := other.OpenResponse(resp); err == nil {
		t.Error("response must be bound to the requesting instance")
	}
}

func TestClientAuthentication(t *testing.T) {
	tb := newTestbed(t)
	tb.cas.RegisterClient("client-7", []byte("s3cret"))

	sess, err := NewClientSession()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tb.cas.AuthenticateClient("client-7", []byte("s3cret"), sess.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sess.OpenResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NetworkKey != tb.config.NetworkKey {
		t.Error("client must receive the network key")
	}
	if cfg.StorageKey == tb.config.StorageKey {
		t.Error("clients must NOT receive the storage key")
	}
}

func TestClientBadCredentials(t *testing.T) {
	tb := newTestbed(t)
	tb.cas.RegisterClient("client-7", []byte("s3cret"))
	sess, err := NewClientSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.cas.AuthenticateClient("client-7", []byte("wrong"), sess.PublicKey()); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("got %v, want ErrBadCredentials", err)
	}
	if _, err := tb.cas.AuthenticateClient("nobody", []byte("s3cret"), sess.PublicKey()); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("got %v, want ErrBadCredentials", err)
	}
}

func TestConfigCodecRoundTrip(t *testing.T) {
	in := ClusterConfig{
		Nodes:           []string{"a:1", "bb:22", ""},
		CounterReplicas: []string{"x"},
	}
	in.NetworkKey[0] = 0xAA
	in.StorageKey[31] = 0xBB
	out, err := decodeConfig(encodeConfig(&in))
	if err != nil {
		t.Fatal(err)
	}
	if out.NetworkKey != in.NetworkKey || out.StorageKey != in.StorageKey {
		t.Error("keys mismatch")
	}
	if len(out.Nodes) != 3 || out.Nodes[1] != "bb:22" || out.Nodes[2] != "" {
		t.Errorf("nodes = %v", out.Nodes)
	}
	if len(out.CounterReplicas) != 1 || out.CounterReplicas[0] != "x" {
		t.Errorf("replicas = %v", out.CounterReplicas)
	}
}

func TestCASShardMapAuthority(t *testing.T) {
	tb := newTestbed(t)
	key := shardmap.KeyFor(tb.config.NetworkKey)

	m := tb.cas.ShardMap()
	if m == nil || m.Epoch != 1 {
		t.Fatalf("boot shard map: %+v", m)
	}
	if err := m.Verify(key, tb.cas.ShardMapStable()); err != nil {
		t.Fatalf("boot map verification: %v", err)
	}
	if len(m.Members) != 3 {
		t.Fatalf("boot map has %d members", len(m.Members))
	}

	// Install epoch 2: migrate slot 0 to member 1.
	next := m.Clone()
	next.Epoch++
	next.Slots[0] = 1
	if err := tb.cas.InstallShardMap(next); err != nil {
		t.Fatalf("install: %v", err)
	}
	if got := tb.cas.ShardMapStable(); got != 2 {
		t.Fatalf("counter not stabilized: %d", got)
	}
	cur := tb.cas.ShardMap()
	if cur.Epoch != 2 || cur.SlotOwner(0) != 1 {
		t.Fatalf("epoch 2 not live: %+v", cur)
	}
	if err := cur.Verify(key, tb.cas.ShardMapStable()); err != nil {
		t.Fatalf("epoch 2 verification: %v", err)
	}

	// The replayed epoch-1 map now fails against the counter floor.
	if err := m.Verify(key, tb.cas.ShardMapStable()); !errors.Is(err, shardmap.ErrStaleEpoch) {
		t.Fatalf("replayed epoch 1: want ErrStaleEpoch, got %v", err)
	}

	// Epoch skips are refused.
	skip := cur.Clone()
	skip.Epoch += 2
	if err := tb.cas.InstallShardMap(skip); err == nil {
		t.Fatal("epoch skip accepted")
	}
}

func TestCASAddNode(t *testing.T) {
	tb := newTestbed(t)
	m, err := tb.cas.AddNode("node-4:9000")
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || len(m.Members) != 4 {
		t.Fatalf("AddNode map: epoch=%d members=%d", m.Epoch, len(m.Members))
	}
	if a, ok := m.Addr(3); !ok || a != "node-4:9000" {
		t.Fatalf("new member addr: %q %v", a, ok)
	}
	// The new member owns nothing until a migration moves slots to it.
	for s := 0; s < shardmap.NumSlots; s++ {
		if m.SlotOwner(s) == 3 {
			t.Fatalf("slot %d assigned to fresh member without migration", s)
		}
	}
	// A client authenticating now sees the grown node list.
	sess, err := NewClientSession()
	if err != nil {
		t.Fatal(err)
	}
	tb.cas.RegisterClient("c", []byte("s"))
	resp, err := tb.cas.AuthenticateClient("c", []byte("s"), sess.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sess.OpenResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 4 {
		t.Fatalf("client config has %d nodes, want 4", len(cfg.Nodes))
	}
}
