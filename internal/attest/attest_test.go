package attest

import (
	"errors"
	"testing"

	"treaty/internal/enclave"
	"treaty/internal/seal"
)

// testbed wires an IAS, a CAS, and one node platform with a LAS.
type testbed struct {
	ias    *IAS
	cas    *CAS
	plat   *enclave.Platform
	las    *LAS
	config ClusterConfig
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	ias := NewIAS()
	plat, err := enclave.NewPlatform("node-1")
	if err != nil {
		t.Fatal(err)
	}
	ias.RegisterPlatform(plat)

	netKey, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	storKey, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClusterConfig{
		NetworkKey:      netKey,
		StorageKey:      storKey,
		Nodes:           []string{"node-1:9000", "node-2:9000", "node-3:9000"},
		CounterReplicas: []string{"ctr-1", "ctr-2", "ctr-3"},
	}
	cas := NewCAS(ias, enclave.MeasureCode("treaty-node"), cfg)

	las, err := NewLAS(plat)
	if err != nil {
		t.Fatal(err)
	}
	if err := cas.DeployLAS(las); err != nil {
		t.Fatal(err)
	}
	return &testbed{ias: ias, cas: cas, plat: plat, las: las, config: cfg}
}

func launchInstance(t *testing.T, tb *testbed, identity string) *Instance {
	t.Helper()
	encl, err := tb.plat.Launch(identity, enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(encl, tb.las)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFullAttestationFlow(t *testing.T) {
	tb := newTestbed(t)
	inst := launchInstance(t, tb, "treaty-node")

	resp, err := tb.cas.Attest(inst.Request())
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	got, err := inst.OpenResponse(resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	if got.NetworkKey != tb.config.NetworkKey || got.StorageKey != tb.config.StorageKey {
		t.Error("provisioned keys do not match")
	}
	if len(got.Nodes) != 3 || got.Nodes[1] != "node-2:9000" {
		t.Errorf("nodes = %v", got.Nodes)
	}
	if len(got.CounterReplicas) != 3 {
		t.Errorf("counter replicas = %v", got.CounterReplicas)
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	tb := newTestbed(t)
	malware := launchInstance(t, tb, "treaty-node-evil")
	if _, err := tb.cas.Attest(malware.Request()); !errors.Is(err, ErrWrongMeasurement) {
		t.Errorf("got %v, want ErrWrongMeasurement", err)
	}
}

func TestUnknownPlatformRejected(t *testing.T) {
	tb := newTestbed(t)
	rogue, err := enclave.NewPlatform("rogue-host")
	if err != nil {
		t.Fatal(err)
	}
	// Rogue platform never registered with IAS; even with a local LAS
	// object it must fail.
	rogueLAS, err := NewLAS(rogue)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.cas.DeployLAS(rogueLAS); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("rogue LAS deploy: got %v, want ErrUnknownPlatform", err)
	}
	encl, err := rogue.Launch("treaty-node", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(encl, rogueLAS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.cas.Attest(inst.Request()); !errors.Is(err, ErrQuoteRejected) {
		t.Errorf("rogue attest: got %v, want ErrQuoteRejected", err)
	}
}

func TestNoLASRejected(t *testing.T) {
	ias := NewIAS()
	plat, err := enclave.NewPlatform("node-x")
	if err != nil {
		t.Fatal(err)
	}
	ias.RegisterPlatform(plat)
	cas := NewCAS(ias, enclave.MeasureCode("treaty-node"), ClusterConfig{})
	las, err := NewLAS(plat)
	if err != nil {
		t.Fatal(err)
	}
	// LAS never deployed to the CAS.
	encl, err := plat.Launch("treaty-node", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(encl, las)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cas.Attest(inst.Request()); !errors.Is(err, ErrQuoteRejected) {
		t.Errorf("got %v, want ErrQuoteRejected (no LAS)", err)
	}
}

func TestStolenQuoteCannotRedirectKeys(t *testing.T) {
	// An attacker relaying a genuine quote but substituting their own
	// public key must fail: the quote binds the original key.
	tb := newTestbed(t)
	inst := launchInstance(t, tb, "treaty-node")
	req := inst.Request()

	attacker, err := NewClientSession()
	if err != nil {
		t.Fatal(err)
	}
	forged := &AttestationRequest{Quote: req.Quote, PublicKey: attacker.PublicKey()}
	if _, err := tb.cas.Attest(forged); !errors.Is(err, ErrQuoteRejected) {
		t.Errorf("got %v, want ErrQuoteRejected", err)
	}
}

func TestProvisionedConfigConfidential(t *testing.T) {
	tb := newTestbed(t)
	inst := launchInstance(t, tb, "treaty-node")
	resp, err := tb.cas.Attest(inst.Request())
	if err != nil {
		t.Fatal(err)
	}
	// The sealed config must not leak the network key in plaintext.
	for i := 0; i+seal.KeySize <= len(resp.SealedConfig); i++ {
		if seal.Key(resp.SealedConfig[i:i+seal.KeySize]) == tb.config.NetworkKey {
			t.Fatal("network key leaked in sealed config")
		}
	}
	// A different instance (different key) cannot open this response.
	other := launchInstance(t, tb, "treaty-node")
	if _, err := other.OpenResponse(resp); err == nil {
		t.Error("response must be bound to the requesting instance")
	}
}

func TestClientAuthentication(t *testing.T) {
	tb := newTestbed(t)
	tb.cas.RegisterClient("client-7", []byte("s3cret"))

	sess, err := NewClientSession()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tb.cas.AuthenticateClient("client-7", []byte("s3cret"), sess.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sess.OpenResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NetworkKey != tb.config.NetworkKey {
		t.Error("client must receive the network key")
	}
	if cfg.StorageKey == tb.config.StorageKey {
		t.Error("clients must NOT receive the storage key")
	}
}

func TestClientBadCredentials(t *testing.T) {
	tb := newTestbed(t)
	tb.cas.RegisterClient("client-7", []byte("s3cret"))
	sess, err := NewClientSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.cas.AuthenticateClient("client-7", []byte("wrong"), sess.PublicKey()); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("got %v, want ErrBadCredentials", err)
	}
	if _, err := tb.cas.AuthenticateClient("nobody", []byte("s3cret"), sess.PublicKey()); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("got %v, want ErrBadCredentials", err)
	}
}

func TestConfigCodecRoundTrip(t *testing.T) {
	in := ClusterConfig{
		Nodes:           []string{"a:1", "bb:22", ""},
		CounterReplicas: []string{"x"},
	}
	in.NetworkKey[0] = 0xAA
	in.StorageKey[31] = 0xBB
	out, err := decodeConfig(encodeConfig(&in))
	if err != nil {
		t.Fatal(err)
	}
	if out.NetworkKey != in.NetworkKey || out.StorageKey != in.StorageKey {
		t.Error("keys mismatch")
	}
	if len(out.Nodes) != 3 || out.Nodes[1] != "bb:22" || out.Nodes[2] != "" {
		t.Errorf("nodes = %v", out.Nodes)
	}
	if len(out.CounterReplicas) != 1 || out.CounterReplicas[0] != "x" {
		t.Errorf("replicas = %v", out.CounterReplicas)
	}
}
