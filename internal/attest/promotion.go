package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"treaty/internal/seal"
	"treaty/internal/shardmap"
)

// Promotion authority: the CAS decides whether a replication backup may
// take over a dead primary's slots. The decision is rollback-resistant
// the same way the shard map is — it is gated on trusted state only the
// CAS holds:
//
//   - Each primary's shipper reports ("witnesses") every replicated
//     commit group to the CAS *before* the group's trusted counter
//     stabilizes, so the CAS always knows the highest group any
//     stabilized counter value can cover, and the digest of the stream
//     prefix up to it.
//   - A backup asking for promotion presents, per stream, how far its
//     mirror reaches and the digest its mirror computes at the
//     witnessed position. A mirror that is shorter than the witness is
//     a rolled-back replica; a mirror whose digest at the witnessed
//     position differs is a forked replica. Both are rejected with
//     distinct errors, exactly like a stale shard map.
//   - A granted promotion is a signed certificate bound to the next
//     shard-map epoch; installing it bumps the epoch, so replaying an
//     old certificate fails the epoch check like any stale map.
var (
	// ErrReplicaRolledBack rejects promotion of a backup whose
	// replicated prefix is shorter than a witnessed (stabilizable)
	// position — promoting it would lose acknowledged commits.
	ErrReplicaRolledBack = errors.New("attest: replica rolled back (replicated prefix behind witnessed stable position)")
	// ErrReplicaForked rejects promotion of a backup whose stream
	// digest diverges from the witnessed prefix — it replicated
	// different history than the primary stabilized.
	ErrReplicaForked = errors.New("attest: replica forked (stream digest mismatch at witnessed position)")
	// ErrPromotionReplayed rejects installation of a promotion
	// certificate that is not bound to the next epoch — a replayed
	// (or raced) certificate.
	ErrPromotionReplayed = errors.New("attest: promotion certificate replayed (epoch mismatch)")
)

// PromotionKeyFor derives the promotion-certificate signing key from
// the cluster network key.
func PromotionKeyFor(networkKey seal.Key) seal.Key {
	return seal.DeriveKey(networkKey, "treaty/promotion")
}

// StreamWitness is the CAS's view of one replication stream of one
// primary: the last group sequence a shipper reported before letting
// its counter stabilize, and the running digest of the stream prefix
// up to it. Degraded marks a stream whose primary stabilized groups it
// could NOT replicate (ship failure): no backup of that stream is
// promotable until resynced.
type StreamWitness struct {
	Stream   uint8
	Seq      uint64
	Digest   [seal.HashSize]byte
	Degraded bool
}

type witnessKey struct {
	primary uint64
	stream  uint8
}

// ReplWitness records that a primary's shipper replicated group seq
// with prefix digest d, before the group stabilizes. Witnesses only
// ratchet forward.
func (c *CAS) ReplWitness(primary uint64, stream uint8, seq uint64, digest [seal.HashSize]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.repl == nil {
		c.repl = make(map[witnessKey]*StreamWitness)
	}
	k := witnessKey{primary, stream}
	w := c.repl[k]
	if w == nil {
		w = &StreamWitness{Stream: stream}
		c.repl[k] = w
	}
	if seq > w.Seq {
		w.Seq = seq
		w.Digest = digest
	}
}

// ReplDegrade durably marks a primary's stream as degraded: the shipper
// is about to stabilize a group it could not replicate, so the backup's
// mirror no longer covers the stable prefix. Sticky until resync (out
// of scope here): promotion of this stream is refused outright.
func (c *CAS) ReplDegrade(primary uint64, stream uint8) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.repl == nil {
		c.repl = make(map[witnessKey]*StreamWitness)
	}
	k := witnessKey{primary, stream}
	w := c.repl[k]
	if w == nil {
		w = &StreamWitness{Stream: stream}
		c.repl[k] = w
	}
	w.Degraded = true
}

// ReplWitnesses returns the witnessed replication state for a primary
// (one entry per stream that ever reported), ordered by stream id.
func (c *CAS) ReplWitnesses(primary uint64) []StreamWitness {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []StreamWitness
	for k, w := range c.repl {
		if k.primary == primary {
			out = append(out, *w)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Stream < out[j-1].Stream; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// StreamClaim is a backup's evidence about one mirrored stream: how far
// the mirror reaches (Seq), and the mirror's running digest at the
// CAS-witnessed position (DigestAtWitness; HaveBoundary is false when
// the mirror has no group boundary at that position — a fork symptom,
// since the primary shipped a group boundary there).
type StreamClaim struct {
	Stream          uint8
	Seq             uint64
	DigestAtWitness [seal.HashSize]byte
	HaveBoundary    bool
}

// PromotionRequest asks the CAS to certify Backup as the successor of
// Primary, with per-stream mirror evidence.
type PromotionRequest struct {
	Primary uint64
	Backup  uint64
	Streams []StreamClaim
}

// PromotionCert is the CAS's counter-bound grant: Backup may take over
// Primary's slots at exactly Epoch (the next shard-map epoch at issue
// time). Installing it advances the epoch, so a certificate can be
// consumed once; replays fail the epoch check.
type PromotionCert struct {
	Primary uint64
	Backup  uint64
	Epoch   uint64
	Streams []StreamClaim
	Sig     [seal.HashSize]byte
}

// encodeBody serializes everything covered by the signature.
func (p *PromotionCert) encodeBody() []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint64(b, p.Primary)
	b = binary.LittleEndian.AppendUint64(b, p.Backup)
	b = binary.LittleEndian.AppendUint64(b, p.Epoch)
	b = append(b, byte(len(p.Streams)))
	for _, s := range p.Streams {
		b = append(b, s.Stream)
		b = binary.LittleEndian.AppendUint64(b, s.Seq)
		b = append(b, s.DigestAtWitness[:]...)
		if s.HaveBoundary {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// Sign signs the certificate under the promotion key.
func (p *PromotionCert) Sign(key seal.Key) {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(p.encodeBody())
	copy(p.Sig[:], mac.Sum(nil))
}

// VerifySig checks the certificate signature.
func (p *PromotionCert) VerifySig(key seal.Key) bool {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(p.encodeBody())
	return hmac.Equal(mac.Sum(nil), p.Sig[:])
}

// IssuePromotionCert validates a backup's mirror evidence against the
// witnessed replication state and, if every stream's replicated prefix
// covers every position a stabilized counter value can reference,
// returns a signed certificate bound to the next shard-map epoch.
func (c *CAS) IssuePromotionCert(req *PromotionRequest) (*PromotionCert, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shard == nil {
		return nil, errors.New("attest: no shard map deployed")
	}
	if _, ok := c.shard.Addr(req.Backup); !ok {
		return nil, fmt.Errorf("attest: promotion backup %d is not a member", req.Backup)
	}
	// The successor must be the backup the signed epoch records for the
	// primary's slots — promotion eligibility is trust state, not a
	// caller claim.
	owns, recorded := false, false
	for s := 0; s < shardmap.NumSlots; s++ {
		if c.shard.Slots[s] != req.Primary {
			continue
		}
		owns = true
		if c.shard.Backups[s] == req.Backup {
			recorded = true
			break
		}
	}
	if !owns {
		return nil, fmt.Errorf("attest: promotion primary %d owns no slots", req.Primary)
	}
	if !recorded {
		return nil, fmt.Errorf("attest: node %d is not the recorded backup of primary %d", req.Backup, req.Primary)
	}
	claims := make(map[uint8]StreamClaim, len(req.Streams))
	for _, s := range req.Streams {
		claims[s.Stream] = s
	}
	for k, w := range c.repl {
		if k.primary != req.Primary {
			continue
		}
		if w.Degraded {
			return nil, fmt.Errorf("%w: primary %d stream %d stabilized unreplicated groups", ErrReplicaRolledBack, req.Primary, w.Stream)
		}
		if w.Seq == 0 {
			continue // nothing witnessed: any mirror state covers it
		}
		cl, ok := claims[w.Stream]
		if !ok || cl.Seq < w.Seq {
			return nil, fmt.Errorf("%w: primary %d stream %d mirrored to %d, witnessed %d", ErrReplicaRolledBack, req.Primary, w.Stream, cl.Seq, w.Seq)
		}
		if !cl.HaveBoundary || cl.DigestAtWitness != w.Digest {
			return nil, fmt.Errorf("%w: primary %d stream %d", ErrReplicaForked, req.Primary, w.Stream)
		}
	}
	cert := &PromotionCert{
		Primary: req.Primary,
		Backup:  req.Backup,
		Epoch:   c.shard.Epoch + 1,
		Streams: append([]StreamClaim(nil), req.Streams...),
	}
	cert.Sign(PromotionKeyFor(c.config.NetworkKey))
	return cert, nil
}

// InstallPromotion consumes a promotion certificate: it builds and
// installs the successor epoch in which the backup owns every slot the
// primary owned, and the primary's member entry is aliased to the
// backup's address (so in-flight transaction-status probes addressed to
// the dead primary resolve to the live successor). The certificate is
// valid for exactly one epoch transition; any other current epoch means
// it was already consumed (or raced) and is rejected as a replay.
func (c *CAS) InstallPromotion(cert *PromotionCert) (*shardmap.Map, error) {
	c.mu.Lock()
	if c.shard == nil {
		c.mu.Unlock()
		return nil, errors.New("attest: no shard map deployed")
	}
	if !cert.VerifySig(PromotionKeyFor(c.config.NetworkKey)) {
		c.mu.Unlock()
		return nil, errors.New("attest: bad promotion certificate signature")
	}
	if cert.Epoch != c.shard.Epoch+1 {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: cert epoch %d, current %d", ErrPromotionReplayed, cert.Epoch, c.shard.Epoch)
	}
	backupAddr, ok := c.shard.Addr(cert.Backup)
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("attest: promotion backup %d is not a member", cert.Backup)
	}
	next := c.shard.Clone()
	next.Epoch++
	for s := 0; s < shardmap.NumSlots; s++ {
		if next.Slots[s] == cert.Primary {
			next.Slots[s] = cert.Backup
			next.Backups[s] = shardmap.NoBackup
		}
		if next.Backups[s] == cert.Primary {
			next.Backups[s] = shardmap.NoBackup
		}
	}
	for i := range next.Members {
		if next.Members[i].ID == cert.Primary {
			next.Members[i].Addr = backupAddr
		}
	}
	// The promoted primary's witness state is consumed with the cert:
	// the successor starts unreplicated (its slots carry NoBackup).
	for k := range c.repl {
		if k.primary == cert.Primary {
			delete(c.repl, k)
		}
	}
	c.mu.Unlock()
	if err := c.InstallShardMap(next); err != nil {
		return nil, err
	}
	return c.ShardMap(), nil
}
