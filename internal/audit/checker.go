package audit

import (
	"fmt"
	"sort"
	"strings"
)

// Violation is one serializability defect found in a history.
type Violation struct {
	// Kind is the anomaly class: "G1a" (aborted read), "G1b"
	// (intermediate read), "G1c" (dependency cycle of wr/ww edges),
	// "G2" (cycle including an anti-dependency edge), "lost-key"
	// (committed read missed a key committed in an earlier epoch),
	// "internal" (a transaction failed to read its own write), or
	// "recorder" (the history itself is malformed — duplicate unique
	// values or reads of values nobody wrote).
	Kind string
	// Desc is a human-readable account naming the transactions involved;
	// for cycles it is a minimal violating cycle with edge labels.
	Desc string
}

// Report is the checker's verdict plus accounting that lets tests assert
// the check was non-vacuous.
type Report struct {
	Violations []Violation

	// Txns is the history size; Committed counts transactions treated as
	// committed (including Promoted indeterminate ones whose writes were
	// observed), Aborted the definite aborts, and Excluded the
	// indeterminate transactions whose writes were never observed.
	Txns, Committed, Aborted, Promoted, Excluded int
	// Keys is the number of distinct keys written; Edges the dependency
	// edge count among committed transactions.
	Keys, Edges int
}

// Clean reports whether the history passed.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean history, or an error naming up to three
// violations.
func (r *Report) Err() error {
	if r.Clean() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s):", len(r.Violations))
	for i, v := range r.Violations {
		if i == 3 {
			fmt.Fprintf(&b, " … and %d more", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, " [%s] %s;", v.Kind, v.Desc)
	}
	return fmt.Errorf("%s", strings.TrimSuffix(b.String(), ";"))
}

// String summarizes the report for logs.
func (r *Report) String() string {
	return fmt.Sprintf("audit: %d txns (%d committed, %d aborted, %d promoted, %d excluded), %d keys, %d edges, %d violations",
		r.Txns, r.Committed, r.Aborted, r.Promoted, r.Excluded, r.Keys, r.Edges, len(r.Violations))
}

func (r *Report) add(kind, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Kind: kind, Desc: fmt.Sprintf(format, args...)})
}

type txStatus uint8

const (
	stExcluded txStatus = iota // indeterminate, writes never observed
	stCommitted
	stAborted
)

// wref locates one write in the history.
type wref struct {
	txn   int // history index
	key   string
	op    int  // op index within the txn
	final bool // last write of this txn to this key (the installed version)
}

// Check runs the serialization-graph test on a finished history.
//
// Rules:
//   - Indeterminate transactions are committed iff any of their writes
//     was observed by an (effectively) committed transaction — an
//     observed value proves the write installed. Unobserved ones are
//     excluded entirely; this is sound because an uninstalled write
//     cannot affect any other transaction.
//   - G1a: a committed transaction read a value written by a definitely
//     aborted transaction.
//   - G1b: a committed transaction read a writer's non-final write to a
//     key (an intermediate state).
//   - lost-key: a committed transaction read key-not-found although a
//     committed transaction from an earlier recorder epoch installed a
//     version of that key (epochs are real-time fences, so "the key did
//     not exist yet" is impossible).
//   - Version order per key is inferred from read-modify-write
//     parentage: an installed write's parent is the first value of that
//     key the writer observed from another transaction. Edges: wr
//     (writer → reader of its value), ww (parent writer → child writer),
//     rw (reader of parent → child writer). Any cycle among committed
//     transactions is reported as G1c (only wr/ww) or G2 (contains rw),
//     with a minimal cycle.
func Check(hist []Txn) *Report {
	rep := &Report{Txns: len(hist)}

	// Index every write by its (globally unique) value.
	writers := make(map[string]wref)
	for i, t := range hist {
		lastW := make(map[string]int, 4)
		for j, op := range t.Ops {
			if op.Kind == OpWrite {
				lastW[op.Key] = j
			}
		}
		for j, op := range t.Ops {
			if op.Kind != OpWrite {
				continue
			}
			if prev, dup := writers[op.Value]; dup {
				rep.add("recorder", "value %q written twice: T%d and T%d", op.Value, hist[prev.txn].ID, t.ID)
				continue
			}
			writers[op.Value] = wref{txn: i, key: op.Key, op: j, final: lastW[op.Key] == j}
		}
	}

	// Status resolution: definite outcomes first, then promote
	// indeterminate transactions whose writes were observed by an
	// effectively committed transaction, to a fixpoint.
	status := make([]txStatus, len(hist))
	var queue []int
	for i, t := range hist {
		switch t.Outcome {
		case OutcomeCommitted:
			status[i] = stCommitted
			queue = append(queue, i)
		case OutcomeAborted:
			status[i] = stAborted
		default:
			status[i] = stExcluded
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, op := range hist[i].Ops {
			if op.Kind != OpRead || !op.Found {
				continue
			}
			w, ok := writers[op.Value]
			if !ok || w.txn == i {
				continue
			}
			if status[w.txn] == stExcluded {
				status[w.txn] = stCommitted
				rep.Promoted++
				queue = append(queue, w.txn)
			}
		}
	}
	for i := range hist {
		switch status[i] {
		case stCommitted:
			rep.Committed++
		case stAborted:
			rep.Aborted++
		default:
			rep.Excluded++
		}
	}

	// Per-key: the minimum epoch in which a committed transaction
	// installed a version (for the lost-key rule).
	minEpoch := make(map[string]uint64)
	for _, w := range writers {
		if status[w.txn] != stCommitted || !w.final {
			continue
		}
		e := hist[w.txn].Epoch
		if cur, ok := minEpoch[w.key]; !ok || e < cur {
			minEpoch[w.key] = e
		}
	}

	// Committed-transaction scan: own-write visibility, G1a, G1b,
	// lost-key; collect external readers per observed value.
	readersOf := make(map[string][]int)
	for i := range hist {
		if status[i] != stCommitted {
			continue
		}
		t := &hist[i]
		myLast := make(map[string]string, 4)
		for _, op := range t.Ops {
			switch op.Kind {
			case OpWrite:
				myLast[op.Key] = op.Value
			case OpRead:
				if mine, ok := myLast[op.Key]; ok {
					// Read after own write: must observe it.
					if !op.Found || op.Value != mine {
						rep.add("internal", "T%d read %q=%q (found=%v) after writing %q",
							t.ID, op.Key, op.Value, op.Found, mine)
					}
					continue
				}
				if !op.Found {
					if e, ok := minEpoch[op.Key]; ok && e < t.Epoch {
						rep.add("lost-key", "T%d (epoch %d) read %q as missing, but a committed epoch-%d transaction installed it",
							t.ID, t.Epoch, op.Key, e)
					}
					continue
				}
				w, ok := writers[op.Value]
				if !ok {
					rep.add("recorder", "T%d read %q=%q, a value no recorded transaction wrote",
						t.ID, op.Key, op.Value)
					continue
				}
				if w.txn == i {
					continue
				}
				if w.key != op.Key {
					rep.add("recorder", "T%d read %q=%q, but T%d wrote that value to %q",
						t.ID, op.Key, op.Value, hist[w.txn].ID, w.key)
					continue
				}
				switch {
				case status[w.txn] == stAborted:
					rep.add("G1a", "T%d read %q=%q written by aborted T%d",
						t.ID, op.Key, op.Value, hist[w.txn].ID)
				case !w.final:
					rep.add("G1b", "T%d read intermediate value %q=%q of T%d",
						t.ID, op.Key, op.Value, hist[w.txn].ID)
				default:
					readersOf[op.Value] = append(readersOf[op.Value], i)
				}
			}
		}
	}

	// Dependency graph over committed transactions.
	adj := make(map[int]map[int]depEdge)
	addEdge := func(from, to int, label string) {
		if from == to {
			return
		}
		m, ok := adj[from]
		if !ok {
			m = make(map[int]depEdge)
			adj[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = depEdge{label: label}
			rep.Edges++
		}
	}

	// wr edges: writer → committed reader of its installed value.
	for v, readers := range readersOf {
		w := writers[v]
		for _, r := range readers {
			addEdge(w.txn, r, "wr["+w.key+"]")
		}
	}

	// Installed versions and their parents; ww and rw edges.
	keys := make(map[string]struct{})
	for i := range hist {
		if status[i] != stCommitted {
			continue
		}
		t := &hist[i]
		// Keys this txn installs (final writes).
		finals := make(map[string]struct{}, 4)
		for _, op := range t.Ops {
			if op.Kind == OpWrite {
				finals[op.Key] = struct{}{}
				keys[op.Key] = struct{}{}
			}
		}
		for k := range finals {
			// Parent: first read of k observing another txn's value.
			parent := ""
			for _, op := range t.Ops {
				if op.Kind != OpRead || op.Key != k || !op.Found {
					continue
				}
				if w, ok := writers[op.Value]; ok && w.txn != i {
					parent = op.Value
				}
				break
			}
			if parent == "" {
				continue // blind write: a version-chain root
			}
			pw, ok := writers[parent]
			if !ok || status[pw.txn] != stCommitted {
				continue // already reported as recorder/G1a violation
			}
			addEdge(pw.txn, i, "ww["+k+"]")
			for _, r := range readersOf[parent] {
				addEdge(r, i, "rw["+k+"]")
			}
		}
	}
	rep.Keys = len(keys)

	// Cycle detection: any SCC with more than one node is a violation
	// (self-edges are impossible). Report a minimal cycle per SCC.
	for _, scc := range stronglyConnected(adj) {
		if len(scc) < 2 {
			continue
		}
		cycle := shortestCycle(adj, scc)
		kind := "G1c"
		var b strings.Builder
		for i, n := range cycle {
			next := cycle[(i+1)%len(cycle)]
			lbl := adj[n][next].label
			if strings.HasPrefix(lbl, "rw") {
				kind = "G2"
			}
			fmt.Fprintf(&b, "T%d(c%d) -%s-> ", hist[n].ID, hist[n].Client, lbl)
		}
		fmt.Fprintf(&b, "T%d", hist[cycle[0]].ID)
		rep.add(kind, "dependency cycle: %s", b.String())
	}

	sort.SliceStable(rep.Violations, func(i, j int) bool {
		return rep.Violations[i].Kind < rep.Violations[j].Kind
	})
	return rep
}

// depEdge labels one dependency edge ("wr[key]", "ww[key]", "rw[key]").
type depEdge struct{ label string }

// stronglyConnected returns the SCCs of adj (iterative Tarjan — soak
// histories reach tens of thousands of nodes, too deep for recursion).
func stronglyConnected(adj map[int]map[int]depEdge) [][]int {
	index := make(map[int]int)
	low := make(map[int]int)
	onStack := make(map[int]bool)
	var stack []int
	var sccs [][]int
	next := 0

	type frame struct {
		node  int
		succs []int
		i     int
	}
	succsOf := func(n int) []int {
		out := make([]int, 0, len(adj[n]))
		for m := range adj[n] {
			out = append(out, m)
		}
		sort.Ints(out) // deterministic reports
		return out
	}

	nodes := make([]int, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root, succs: succsOf(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.succs) {
				m := f.succs[f.i]
				f.i++
				if _, seen := index[m]; !seen {
					index[m], low[m] = next, next
					next++
					stack = append(stack, m)
					onStack[m] = true
					work = append(work, frame{node: m, succs: succsOf(m)})
				} else if onStack[m] && index[m] < low[f.node] {
					low[f.node] = index[m]
				}
				continue
			}
			// Pop frame.
			n := f.node
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].node
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var scc []int
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// shortestCycle finds a minimal cycle inside one SCC by BFS from each
// member (SCCs in violating histories are small; the scan is bounded).
func shortestCycle(adj map[int]map[int]depEdge, scc []int) []int {
	in := make(map[int]bool, len(scc))
	for _, n := range scc {
		in[n] = true
	}
	sort.Ints(scc)
	var best []int
	starts := scc
	if len(starts) > 64 {
		starts = starts[:64]
	}
	for _, src := range starts {
		// BFS restricted to the SCC.
		parent := map[int]int{src: src}
		queue := []int{src}
		var found []int
		for len(queue) > 0 && found == nil {
			u := queue[0]
			queue = queue[1:]
			succs := make([]int, 0, len(adj[u]))
			for v := range adj[u] {
				succs = append(succs, v)
			}
			sort.Ints(succs)
			for _, v := range succs {
				if !in[v] {
					continue
				}
				if v == src {
					// Reconstruct src → … → u, cycle closes u → src.
					var path []int
					for x := u; ; x = parent[x] {
						path = append(path, x)
						if x == src {
							break
						}
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					found = path
					break
				}
				if _, seen := parent[v]; !seen {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if found != nil && (best == nil || len(found) < len(best)) {
			best = found
			if len(best) == 2 {
				return best
			}
		}
	}
	return best
}
