package audit

import (
	"strings"
	"testing"
)

// Hand-written histories the checker MUST flag (non-vacuity: a checker
// that passes the soaks is only meaningful if it catches every seeded
// anomaly class) plus known-good histories it must pass.

func read(k, v string) Op  { return Op{Kind: OpRead, Key: k, Value: v, Found: true} }
func miss(k string) Op     { return Op{Kind: OpRead, Key: k, Found: false} }
func write(k, v string) Op { return Op{Kind: OpWrite, Key: k, Value: v} }

func tx(id uint64, outcome Outcome, ops ...Op) Txn {
	return Txn{ID: id, Client: int(id), Ops: ops, Outcome: outcome}
}

// wantKinds asserts the report contains at least one violation of each
// kind and no violation of any other kind.
func wantKinds(t *testing.T, rep *Report, kinds ...string) {
	t.Helper()
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = false
	}
	for _, v := range rep.Violations {
		if _, ok := want[v.Kind]; !ok {
			t.Errorf("unexpected violation [%s] %s", v.Kind, v.Desc)
			continue
		}
		want[v.Kind] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("checker missed a seeded %s violation: %v", k, rep.Violations)
		}
	}
}

func TestG1aAbortedRead(t *testing.T) {
	rep := Check([]Txn{
		tx(1, OutcomeAborted, write("x", "v#a1.1")),
		tx(2, OutcomeCommitted, read("x", "v#a1.1")),
	})
	wantKinds(t, rep, "G1a")
}

func TestG1bIntermediateRead(t *testing.T) {
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "a#a1.1"), write("x", "b#a1.2")),
		tx(2, OutcomeCommitted, read("x", "a#a1.1")),
	})
	wantKinds(t, rep, "G1b")
}

func TestLostUpdate(t *testing.T) {
	// T1 and T2 both RMW the same version of x: the version chain forks,
	// one update is lost, and the fork shows up as a mutual rw cycle.
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "100#a1.1")),
		tx(2, OutcomeCommitted, read("x", "100#a1.1"), write("x", "90#a2.1")),
		tx(3, OutcomeCommitted, read("x", "100#a1.1"), write("x", "95#a3.1")),
	})
	wantKinds(t, rep, "G2")
	if len(rep.Violations) == 0 || !strings.Contains(rep.Violations[0].Desc, "rw[") {
		t.Errorf("lost-update cycle should carry an rw edge: %v", rep.Violations)
	}
}

func TestWriteSkew(t *testing.T) {
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "x0#a1.1"), write("y", "y0#a1.2")),
		tx(2, OutcomeCommitted, read("x", "x0#a1.1"), read("y", "y0#a1.2"), write("x", "x1#a2.1")),
		tx(3, OutcomeCommitted, read("x", "x0#a1.1"), read("y", "y0#a1.2"), write("y", "y1#a3.1")),
	})
	wantKinds(t, rep, "G2")
}

func TestStaleRead(t *testing.T) {
	// T3 observes T2's write to y but a pre-T2 version of x: a fractured
	// read that cannot be placed anywhere in a serial order.
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "v0#a1.1"), write("y", "w0#a1.2")),
		tx(2, OutcomeCommitted,
			read("x", "v0#a1.1"), read("y", "w0#a1.2"),
			write("x", "v1#a2.1"), write("y", "w1#a2.2")),
		tx(3, OutcomeCommitted, read("x", "v0#a1.1"), read("y", "w1#a2.2")),
	})
	wantKinds(t, rep, "G2")
}

func TestG1cCircularInformationFlow(t *testing.T) {
	// T1 reads T2's write and T2 reads T1's write: a wr/wr cycle with no
	// anti-dependency edge — pure G1c.
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, read("y", "b#a2.1"), write("x", "a#a1.1")),
		tx(2, OutcomeCommitted, read("x", "a#a1.1"), write("y", "b#a2.1")),
	})
	wantKinds(t, rep, "G1c")
}

func TestLostKey(t *testing.T) {
	rep := Check([]Txn{
		{ID: 1, Epoch: 0, Outcome: OutcomeCommitted, Ops: []Op{write("x", "v0#a1.1")}},
		{ID: 2, Epoch: 1, Outcome: OutcomeCommitted, Ops: []Op{miss("x")}},
	})
	wantKinds(t, rep, "lost-key")

	// Within one epoch there is no real-time order, so a miss is legal
	// (the reader may serialize before the writer).
	rep = Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "v0#a1.1")),
		tx(2, OutcomeCommitted, miss("x")),
	})
	if !rep.Clean() {
		t.Errorf("same-epoch missing read flagged: %v", rep.Violations)
	}
}

func TestInternalOwnWriteVisibility(t *testing.T) {
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "old#a1.1")),
		tx(2, OutcomeCommitted, write("x", "new#a2.1"), read("x", "old#a1.1")),
	})
	wantKinds(t, rep, "internal")
}

func TestRecorderMalformedHistories(t *testing.T) {
	// Duplicate unique value.
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "v#a1.1")),
		tx(2, OutcomeCommitted, write("x", "v#a1.1")),
	})
	wantKinds(t, rep, "recorder")

	// Read of a value nobody wrote.
	rep = Check([]Txn{
		tx(1, OutcomeCommitted, read("x", "ghost#a9.1")),
	})
	wantKinds(t, rep, "recorder")
}

func TestIndeterminatePromotion(t *testing.T) {
	// T2's commit outcome was unknown to the client, but T3 observed its
	// write — so it must have committed, and the history is serializable.
	// T4's write was never observed: excluded, not a violation.
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "v0#a1.1")),
		tx(2, OutcomeIndeterminate, read("x", "v0#a1.1"), write("x", "v1#a2.1")),
		tx(3, OutcomeCommitted, read("x", "v1#a2.1"), write("x", "v2#a3.1")),
		tx(4, OutcomeIndeterminate, write("y", "z#a4.1")),
	})
	if !rep.Clean() {
		t.Fatalf("promotion history flagged: %v", rep.Violations)
	}
	if rep.Promoted != 1 || rep.Excluded != 1 || rep.Committed != 3 {
		t.Errorf("promoted=%d excluded=%d committed=%d, want 1/1/3",
			rep.Promoted, rep.Excluded, rep.Committed)
	}
}

func TestCleanSerialHistory(t *testing.T) {
	// A linear RMW chain plus a read-only observer and disjoint-key
	// traffic: serializable, and the graph is non-trivially populated.
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, write("x", "100#a1.1"), write("y", "7#a1.2")),
		tx(2, OutcomeCommitted, read("x", "100#a1.1"), write("x", "90#a2.1")),
		tx(3, OutcomeCommitted, read("x", "90#a2.1"), write("x", "80#a3.1")),
		tx(4, OutcomeCommitted, read("x", "80#a3.1"), read("y", "7#a1.2")),
		tx(5, OutcomeCommitted, write("z", "1#a5.1")),
		tx(6, OutcomeAborted, read("x", "90#a2.1"), write("x", "0#a6.1")),
	})
	if !rep.Clean() {
		t.Fatalf("clean history flagged: %v", rep.Violations)
	}
	if rep.Edges == 0 || rep.Keys != 3 {
		t.Errorf("graph vacuous: edges=%d keys=%d", rep.Edges, rep.Keys)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("Err() on clean report: %v", err)
	}
}

func TestCycleReportIsMinimal(t *testing.T) {
	// A 2-cycle embedded alongside extra acyclic txns: the reported cycle
	// names exactly the two members.
	rep := Check([]Txn{
		tx(1, OutcomeCommitted, read("y", "b#a2.1"), write("x", "a#a1.1")),
		tx(2, OutcomeCommitted, read("x", "a#a1.1"), write("y", "b#a2.1")),
		tx(3, OutcomeCommitted, read("x", "a#a1.1"), write("z", "c#a3.1")),
		tx(4, OutcomeCommitted, read("z", "c#a3.1")),
	})
	if len(rep.Violations) != 1 {
		t.Fatalf("want exactly one cycle violation, got %v", rep.Violations)
	}
	d := rep.Violations[0].Desc
	if strings.Contains(d, "T3") || strings.Contains(d, "T4") {
		t.Errorf("cycle not minimal: %s", d)
	}
	if !strings.Contains(d, "T1") || !strings.Contains(d, "T2") {
		t.Errorf("cycle missing members: %s", d)
	}
}

func TestEmptyHistory(t *testing.T) {
	rep := Check(nil)
	if !rep.Clean() || rep.Txns != 0 {
		t.Fatalf("empty history: %+v", rep)
	}
}
