// Package audit records client-observed transaction histories and
// checks them for serializability violations with a serialization-graph
// test (SGT). The recorder captures, per client operation, what the
// client asked for and what it observed (reads with the value seen,
// writes with a uniquely tagged value, and the final commit/abort/
// unknown outcome). Because every written value is unique per
// (transaction, write), the checker can reconstruct which transaction
// produced every observed version, infer per-key version orders from
// read-modify-write parentage, and reject histories that exhibit
// aborted reads (G1a), intermediate reads (G1b), or dependency cycles
// (G1c/G2) — the anomalies the balance-conservation sum alone cannot
// see.
package audit

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Outcome is the client-observed fate of a transaction. Classification
// must be *sound* with respect to recovery: a commit attempt that
// returned an error may still land later (the coordinator's prepare
// record can survive a crash and RecoverPending re-drives the decision),
// so only transactions that never reached prepare may claim a definite
// abort.
type Outcome uint8

const (
	// OutcomeCommitted means the client saw Commit succeed.
	OutcomeCommitted Outcome = iota + 1
	// OutcomeAborted means the transaction definitely did not and can
	// never commit (it was rolled back before a prepare record existed).
	OutcomeAborted
	// OutcomeIndeterminate means a commit was attempted and the client
	// saw an error: the transaction may or may not have committed, and
	// recovery may still commit it after the fact. The checker treats
	// such transactions as committed iff their writes were observed.
	OutcomeIndeterminate
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	case OutcomeIndeterminate:
		return "indeterminate"
	}
	return "unknown"
}

// OpKind discriminates history operations.
type OpKind uint8

const (
	// OpRead is a point read; Found records whether the key existed.
	OpRead OpKind = iota + 1
	// OpWrite is a point write of a uniquely tagged value.
	OpWrite
)

// Op is one client-observed operation inside a transaction.
type Op struct {
	Kind  OpKind
	Key   string
	Value string
	// Found is meaningful for reads only.
	Found bool
}

// Txn is one finished transaction as the client observed it.
type Txn struct {
	// ID is unique across the recorder's lifetime and embedded in every
	// value the transaction writes.
	ID uint64
	// Client identifies the submitting worker (-1 for harness txns).
	Client int
	// Epoch is the recorder fence epoch the transaction began in. The
	// checker may assume real-time order across epochs: everything in
	// epoch e committed or aborted before anything in epoch e+1 began.
	Epoch uint64
	Ops   []Op
	Outcome Outcome
}

// Recorder accumulates finished transactions. It is race-clean and
// cheap: each in-flight transaction buffers its ops privately (one
// goroutine per client transaction) and takes one mutex acquisition at
// End. A nil *Recorder is valid and records nothing, so workloads can
// leave auditing off without branching.
type Recorder struct {
	nextID atomic.Uint64
	epoch  atomic.Uint64
	open   atomic.Int64

	mu   sync.Mutex
	txns []Txn
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin starts recording one transaction for the given client. Safe on
// a nil receiver (returns a nil TxnRec whose methods no-op and whose
// Write returns the base value untagged).
func (r *Recorder) Begin(client int) *TxnRec {
	if r == nil {
		return nil
	}
	r.open.Add(1)
	return &TxnRec{r: r, t: Txn{ID: r.nextID.Add(1), Client: client, Epoch: r.epoch.Load()}}
}

// Fence starts a new epoch: the caller asserts every transaction begun
// so far has ended. Later transactions may be assumed (by the checker's
// lost-key rule) to serialize after all committed writes from earlier
// epochs.
func (r *Recorder) Fence() {
	if r != nil {
		r.epoch.Add(1)
	}
}

// History snapshots the finished transactions. Call it at quiescence;
// transactions still open are not included (see Open).
func (r *Recorder) History() []Txn {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Txn, len(r.txns))
	copy(out, r.txns)
	return out
}

// Len returns the number of finished transactions recorded so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.txns)
}

// Open returns the number of transactions begun but not yet ended; a
// checker run is only complete when it is zero.
func (r *Recorder) Open() int64 {
	if r == nil {
		return 0
	}
	return r.open.Load()
}

// TxnRec records one in-flight transaction. Methods are not safe for
// concurrent use with each other (one client goroutine drives one
// transaction) but distinct TxnRecs are independent.
type TxnRec struct {
	r      *Recorder
	t      Txn
	writes int
	done   bool
}

// ID returns the audit id embedded in this transaction's written values
// (0 for a nil rec).
func (tr *TxnRec) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.t.ID
}

// Read records a client-observed read.
func (tr *TxnRec) Read(key []byte, value []byte, found bool) {
	if tr == nil {
		return
	}
	tr.t.Ops = append(tr.t.Ops, Op{Kind: OpRead, Key: string(key), Value: string(value), Found: found})
}

// Write records a write of base and returns the uniquely tagged value
// the client must actually store: "base#a<txnid>.<n>". The base must
// not contain '#'. On a nil rec the base is returned untouched.
func (tr *TxnRec) Write(key []byte, base string) []byte {
	if tr == nil {
		return []byte(base)
	}
	tr.writes++
	v := base + "#a" + strconv.FormatUint(tr.t.ID, 10) + "." + strconv.Itoa(tr.writes)
	tr.t.Ops = append(tr.t.Ops, Op{Kind: OpWrite, Key: string(key), Value: v})
	return []byte(v)
}

// End finishes the transaction with the given outcome and publishes it
// to the recorder. Idempotent; later calls are ignored.
func (tr *TxnRec) End(o Outcome) {
	if tr == nil || tr.done {
		return
	}
	tr.done = true
	tr.t.Outcome = o
	tr.r.open.Add(-1)
	tr.r.mu.Lock()
	tr.r.txns = append(tr.r.txns, tr.t)
	tr.r.mu.Unlock()
}

// Base strips the audit uniqueness tag from a stored value, returning
// what the workload originally wrote. Values that never passed through
// a recorder are returned unchanged.
func Base(v string) string {
	if i := strings.LastIndex(v, "#a"); i >= 0 {
		return v[:i]
	}
	return v
}
