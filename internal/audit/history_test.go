package audit

import (
	"fmt"
	"sync"
	"testing"
)

func TestRecorderTagsAndBase(t *testing.T) {
	r := NewRecorder()
	t1 := r.Begin(0)
	v1 := t1.Write([]byte("x"), "100")
	t1.End(OutcomeCommitted)
	t2 := r.Begin(1)
	v2 := t2.Write([]byte("x"), "100")
	t2.End(OutcomeCommitted)

	if string(v1) == string(v2) {
		t.Fatalf("two txns writing the same base produced identical values: %q", v1)
	}
	if Base(string(v1)) != "100" || Base(string(v2)) != "100" {
		t.Fatalf("Base() did not strip the tag: %q %q", v1, v2)
	}
	if Base("plain") != "plain" {
		t.Fatalf("Base() mangled an untagged value")
	}
	if r.Len() != 2 || r.Open() != 0 {
		t.Fatalf("len=%d open=%d, want 2/0", r.Len(), r.Open())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	tr := r.Begin(0)
	if tr != nil {
		t.Fatal("nil recorder must hand out nil recs")
	}
	if got := tr.Write([]byte("k"), "val"); string(got) != "val" {
		t.Fatalf("nil rec Write = %q, want untouched base", got)
	}
	tr.Read([]byte("k"), []byte("v"), true)
	tr.End(OutcomeCommitted)
	r.Fence()
	if r.History() != nil || r.Len() != 0 || r.Open() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRecorderEndIdempotent(t *testing.T) {
	r := NewRecorder()
	tr := r.Begin(0)
	tr.Write([]byte("k"), "v")
	tr.End(OutcomeAborted)
	tr.End(OutcomeCommitted) // ignored
	h := r.History()
	if len(h) != 1 || h[0].Outcome != OutcomeAborted {
		t.Fatalf("history = %+v, want one aborted txn", h)
	}
	if r.Open() != 0 {
		t.Fatalf("open = %d after double End", r.Open())
	}
}

func TestRecorderFenceEpochs(t *testing.T) {
	r := NewRecorder()
	a := r.Begin(0)
	a.End(OutcomeCommitted)
	r.Fence()
	b := r.Begin(0)
	b.End(OutcomeCommitted)
	h := r.History()
	if h[0].Epoch != 0 || h[1].Epoch != 1 {
		t.Fatalf("epochs = %d,%d, want 0,1", h[0].Epoch, h[1].Epoch)
	}
}

// TestRecorderConcurrent hammers the recorder from many goroutines (the
// soak's worker pattern) — run under -race this is the race-cleanliness
// proof — and then checks the resulting history is audit-clean.
func TestRecorderConcurrent(t *testing.T) {
	const workers, txnsPer = 8, 50
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("k/%d", w))
			last := ""
			lastFound := false
			for i := 0; i < txnsPer; i++ {
				tr := r.Begin(w)
				tr.Read(key, []byte(last), lastFound)
				v := tr.Write(key, fmt.Sprintf("%d", i))
				tr.End(OutcomeCommitted)
				last, lastFound = string(v), true
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*txnsPer {
		t.Fatalf("recorded %d txns, want %d", r.Len(), workers*txnsPer)
	}
	rep := Check(r.History())
	if !rep.Clean() {
		t.Fatalf("per-key serial RMW history flagged: %v", rep.Violations)
	}
	if rep.Edges == 0 {
		t.Fatal("no dependency edges inferred from an RMW history")
	}
}

// TestRecorderCheckerIntegration drives a lost update through the real
// recorder API and asserts the checker catches it end to end.
func TestRecorderCheckerIntegration(t *testing.T) {
	r := NewRecorder()
	init := r.Begin(-1)
	v0 := init.Write([]byte("acct"), "100")
	init.End(OutcomeCommitted)

	t1 := r.Begin(0)
	t1.Read([]byte("acct"), v0, true)
	t1.Write([]byte("acct"), "90")
	t1.End(OutcomeCommitted)

	t2 := r.Begin(1)
	t2.Read([]byte("acct"), v0, true) // should have seen t1's write
	t2.Write([]byte("acct"), "95")
	t2.End(OutcomeCommitted)

	rep := Check(r.History())
	if rep.Clean() {
		t.Fatal("checker passed a recorder-produced lost update")
	}
	if rep.Violations[0].Kind != "G2" {
		t.Fatalf("want G2, got %v", rep.Violations)
	}
}
