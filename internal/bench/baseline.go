package bench

import (
	"encoding/json"
	"time"
)

// Baseline capture: one machine-readable snapshot of the benchmark
// suite's key panels, committed alongside the code so later PRs can
// compare against it (see EXPERIMENTS.md). The capture covers the
// protocol-only panel (Fig. 4), the distributed read-heavy and
// write-heavy YCSB panels (Fig. 5) with per-node digests including
// cache hit rates, a no-cache reference arm of the read-heavy panel,
// the block-cache ablation, and the horizontal-scaling sweep.

// BaselineSchemaVersion identifies the JSON layout; bump on
// incompatible changes so comparisons fail loudly instead of silently
// misreading fields. v2 added the scaling panel; v3 the replicated
// write-path panel.
const BaselineSchemaVersion = 3

// BaselinePanel is one measured panel.
type BaselinePanel struct {
	Measurements []Measurement `json:"measurements"`
}

// Baseline is the committed snapshot.
type Baseline struct {
	SchemaVersion int    `json:"schema_version"`
	CapturedAt    string `json:"captured_at"`
	// Host hints at comparability: baselines from different machines
	// compare shapes, not absolute numbers.
	Host string `json:"host,omitempty"`

	Fig4                 BaselinePanel    `json:"fig4_2pc_protocol"`
	Fig5ReadHeavy        BaselinePanel    `json:"fig5_ycsb_80r"`
	Fig5WriteHeavy       BaselinePanel    `json:"fig5_ycsb_20r"`
	Fig5ReadHeavyNoCache BaselinePanel    `json:"fig5_ycsb_80r_no_cache"`
	BlockCache           BlockCacheResult `json:"block_cache_ablation"`
	// Scaling is the 3→5→9 node throughput sweep under fixed offered
	// load; its throughput column must increase down the rows.
	Scaling BaselinePanel `json:"scaling_read_heavy"`
	// Fig4Replicated is the write-heavy full-security panel with and
	// without per-shard attested backups (the replication ablation):
	// the cost of rollback-resistant failover on top of the stabilized
	// write path.
	Fig4Replicated BaselinePanel `json:"fig4_replicated"`
}

// BaselineConfig tunes the capture.
type BaselineConfig struct {
	// Clients and Duration apply to every panel (defaults 32 and 2s).
	Clients  int
	Duration time.Duration
	// CapturedAt stamps the snapshot (the caller supplies the clock).
	CapturedAt time.Time
	// Host labels the capture machine (optional).
	Host string
}

// RunBaseline measures every panel and returns the snapshot.
func RunBaseline(cfg BaselineConfig) (*Baseline, error) {
	if cfg.Clients == 0 {
		cfg.Clients = 32
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	b := &Baseline{
		SchemaVersion: BaselineSchemaVersion,
		CapturedAt:    cfg.CapturedAt.UTC().Format(time.RFC3339),
		Host:          cfg.Host,
	}

	fig4, err := RunFig4(Fig4Config{Clients: cfg.Clients, Duration: cfg.Duration})
	if err != nil {
		return nil, err
	}
	b.Fig4.Measurements = fig4

	dist := DistConfig{Clients: cfg.Clients, Duration: cfg.Duration}
	readHeavy, err := RunFig5(dist, 0.8)
	if err != nil {
		return nil, err
	}
	b.Fig5ReadHeavy.Measurements = readHeavy

	writeHeavy, err := RunFig5(dist, 0.2)
	if err != nil {
		return nil, err
	}
	b.Fig5WriteHeavy.Measurements = writeHeavy

	noCache := dist
	noCache.BlockCacheBytes = -1
	readHeavyNoCache, err := RunFig5(noCache, 0.8)
	if err != nil {
		return nil, err
	}
	b.Fig5ReadHeavyNoCache.Measurements = readHeavyNoCache

	abl, err := RunBlockCacheAblation(BlockCacheConfig{})
	if err != nil {
		return nil, err
	}
	b.BlockCache = abl

	// The scaling sweep keeps its own fabric and client count: its point
	// is the capacity curve, not comparability with the figure panels.
	scaling, err := RunScaling(ScalingConfig{})
	if err != nil {
		return nil, err
	}
	b.Scaling.Measurements = scaling

	repl, err := RunReplicationAblation(dist)
	if err != nil {
		return nil, err
	}
	b.Fig4Replicated.Measurements = []Measurement{repl.Off, repl.On}
	return b, nil
}

// JSON renders the baseline, indented for a readable committed file.
func (b *Baseline) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}
