package bench

import (
	"strings"
	"testing"
	"time"
)

// The experiment smoke tests run each harness at miniature scale and
// assert structural properties (right versions, sane numbers) plus the
// most robust shape properties (native faster than SCONE, UDP zero over
// MTU). Full-scale runs live in the repository-root benchmarks.

func TestFig4Shape(t *testing.T) {
	ms, err := RunFig4(Fig4Config{Clients: 8, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("versions = %d, want 4", len(ms))
	}
	if ms[0].Label != "Native 2PC" || ms[3].Label != "Secure w/ Enc" {
		t.Errorf("labels = %v, %v", ms[0].Label, ms[3].Label)
	}
	for _, m := range ms {
		if m.Tps <= 0 {
			t.Errorf("%s: zero throughput", m.Label)
		}
	}
	// SCONE versions must be slower than native.
	if ms[2].Tps >= ms[0].Tps {
		t.Errorf("Secure w/o Enc (%.0f tps) should be slower than Native (%.0f tps)", ms[2].Tps, ms[0].Tps)
	}
	out := PrintFig4(ms)
	if !strings.Contains(out, "Figure 4") {
		t.Error("printout missing title")
	}
}

func TestFig5Shape(t *testing.T) {
	ms, err := RunFig5(DistConfig{Clients: 6, Duration: 400 * time.Millisecond}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("versions = %d, want 4", len(ms))
	}
	if ms[0].Label != "DS-RocksDB" {
		t.Errorf("baseline label = %s", ms[0].Label)
	}
	for _, m := range ms {
		if m.Committed == 0 {
			t.Errorf("%s committed no transactions", m.Label)
		}
	}
	// Treaty w/ Enc must be slower than DS-RocksDB.
	if ms[2].Tps >= ms[0].Tps {
		t.Errorf("Treaty w/ Enc (%.0f) should be slower than DS-RocksDB (%.0f)", ms[2].Tps, ms[0].Tps)
	}
	t.Log("\n" + PrintFig5(0.8, ms))

	// Every distributed measurement carries a metrics report whose node
	// digests account for the committed transactions: the sum of per-node
	// coordinator commits equals the measured commit count.
	for _, m := range ms {
		if m.Metrics == nil || len(m.Metrics.Nodes) == 0 {
			t.Fatalf("%s: no metrics report captured", m.Label)
		}
		var committed uint64
		for _, d := range m.Metrics.Nodes {
			committed += d.TxCommitted
		}
		if committed < m.Committed {
			t.Errorf("%s: digest commits %d < measured commits %d", m.Label, committed, m.Committed)
		}
		if _, ok := m.Metrics.Nodes["node-0"].Stages["commit"]; !ok {
			t.Errorf("%s: node-0 digest missing commit-stage latency", m.Label)
		}
	}
	js, err := ReportJSON(ms)
	if err != nil || len(js) == 0 {
		t.Fatalf("ReportJSON: %v (%d bytes)", err, len(js))
	}
}

func TestFig3Shape(t *testing.T) {
	ms, err := RunFig3(DistConfig{Clients: 4, Duration: 400 * time.Millisecond}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("versions = %d, want 4", len(ms))
	}
	for _, m := range ms {
		if m.Committed == 0 {
			t.Errorf("%s committed no TPC-C transactions", m.Label)
		}
	}
	t.Log("\n" + PrintFig3(2, ms))
}

func TestFig6And7Shape(t *testing.T) {
	for _, optimistic := range []bool{false, true} {
		ms, err := RunSingleYCSB(SingleConfig{Clients: 4, Duration: 400 * time.Millisecond}, 0.8, optimistic)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 6 {
			t.Fatalf("versions = %d, want 6", len(ms))
		}
		if ms[0].Label != "RocksDB" || ms[5].Label != "Treaty w/ Enc w/ Stab" {
			t.Errorf("labels: %s ... %s", ms[0].Label, ms[5].Label)
		}
		for _, m := range ms {
			if m.Committed == 0 {
				t.Errorf("optimistic=%v %s committed nothing", optimistic, m.Label)
			}
		}
		// The stabilized version waits real counter latency per commit;
		// it must be decisively slower than the native baseline even in
		// a short, noisy run. (The intermediate versions' ordering is
		// asserted statistically by the full-length benchmarks.)
		if ms[5].Tps >= ms[0].Tps {
			t.Errorf("optimistic=%v: Treaty w/ Enc w/ Stab (%.0f) should be slower than RocksDB (%.0f)",
				optimistic, ms[5].Tps, ms[0].Tps)
		}
	}
}

func TestSingleTPCCShape(t *testing.T) {
	ms, err := RunSingleTPCC(SingleConfig{Clients: 4, Duration: 300 * time.Millisecond}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("versions = %d, want 6", len(ms))
	}
	for _, m := range ms {
		if m.Committed == 0 {
			t.Errorf("%s committed nothing", m.Label)
		}
	}
	t.Log("\n" + PrintFig6("TPC-C", ms))
}

func TestFig8Shape(t *testing.T) {
	series, err := RunFig8(80 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 7 {
		t.Fatalf("systems = %d, want 7", len(series))
	}
	sizes := Fig8Sizes()
	udp := series["iPerf UDP"]
	for i, size := range sizes {
		if size > 1460 && udp[i] != 0 {
			t.Errorf("UDP at %dB = %.2f Gb/s, want 0 (over MTU)", size, udp[i])
		}
	}
	// The shape assertions use the 4 KiB point, where the modelled gaps
	// are widest (per-segment and per-copy costs scale with size); the
	// mid-size points are too close to assert reliably in short windows.
	last := len(sizes) - 1
	// SCONE TCP slower than native TCP.
	tcp, tcpScone := series["iPerf TCP"], series["iPerf TCP (Scone)"]
	if tcpScone[last] >= tcp[last] {
		t.Errorf("TCP scone (%.2f) should be slower than native (%.2f)", tcpScone[last], tcp[last])
	}
	// eRPC in SCONE faster than TCP in SCONE (fewer copies, no syscalls).
	erpcScone := series["eRPC (Scone)"]
	if erpcScone[last] <= tcpScone[last] {
		t.Errorf("eRPC scone (%.2f) should beat TCP scone (%.2f)", erpcScone[last], tcpScone[last])
	}
	t.Log("\n" + PrintFig8(series))
}

func TestTableIShape(t *testing.T) {
	rs, err := RunTableI(RecoveryConfig{Entries: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("versions = %d, want 3", len(rs))
	}
	if rs[0].Label != "Native recovery" {
		t.Errorf("baseline = %s", rs[0].Label)
	}
	// Encrypted recovery must be slower than native.
	if rs[2].Duration <= rs[0].Duration {
		t.Errorf("encrypted recovery (%v) should exceed native (%v)", rs[2].Duration, rs[0].Duration)
	}
	// Encrypted logs are bigger than plaintext logs.
	if rs[2].LogBytes <= rs[0].LogBytes {
		t.Errorf("encrypted logs (%d) should exceed native (%d)", rs[2].LogBytes, rs[0].LogBytes)
	}
	t.Log("\n" + PrintTableI(rs))
}

func TestMeasurementSlowdown(t *testing.T) {
	base := Measurement{Tps: 100}
	m := Measurement{Tps: 25}
	if got := m.Slowdown(base); got != 4 {
		t.Errorf("slowdown = %v, want 4", got)
	}
	if got := (Measurement{}).Slowdown(base); got != 0 {
		t.Errorf("zero tps slowdown = %v", got)
	}
}

func TestDriveCountsOutcomes(t *testing.T) {
	n := 0
	m := drive(2, 50*time.Millisecond, func(int) error {
		n++
		if n%3 == 0 {
			return errTest
		}
		return nil
	})
	if m.Committed == 0 || m.Aborted == 0 {
		t.Errorf("measurement = %+v", m)
	}
	if m.Tps <= 0 {
		t.Error("tps must be positive")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
