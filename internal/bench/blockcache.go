package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/lsm"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/workload"
)

// Block-cache ablation: the engine's read path at the paper's most
// expensive storage level (SCONE + encryption) with and without the
// authenticated block cache. A cache hit skips the host read, the
// integrity check, and the AES-GCM block decryption — the ablation
// isolates exactly that saving under a read-heavy YCSB mix.

// BlockCacheConfig tunes the ablation.
type BlockCacheConfig struct {
	// Keys is the preloaded key-space size (default 20000).
	Keys int
	// ValueSize is the stored value size (default 256).
	ValueSize int
	// Ops is the measured operation count per arm (default 30000).
	Ops int
	// ReadRatio is the fraction of Gets (default 0.8, the paper's
	// read-heavy YCSB point).
	ReadRatio float64
	// CacheBytes sizes the cache-on arm (0 = engine default).
	CacheBytes int64
}

// withDefaults fills zero fields.
func (c BlockCacheConfig) withDefaults() BlockCacheConfig {
	if c.Keys == 0 {
		c.Keys = 20000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 256
	}
	if c.Ops == 0 {
		c.Ops = 30000
	}
	if c.ReadRatio == 0 {
		c.ReadRatio = 0.8
	}
	return c
}

// BlockCacheResult reports both arms of the ablation.
type BlockCacheResult struct {
	OnTps   float64 `json:"on_tps"`
	OffTps  float64 `json:"off_tps"`
	Speedup float64 `json:"speedup"`
	// HitRate and Lookups come from the cache-on arm; Lookups > 0 is the
	// non-vacuity check (a zero-lookup run measured nothing).
	HitRate float64 `json:"hit_rate"`
	Lookups uint64  `json:"lookups"`
	Hits    uint64  `json:"hits"`
}

// RunBlockCacheAblation measures the read path with the cache enabled
// and disabled and returns both throughputs.
func RunBlockCacheAblation(cfg BlockCacheConfig) (BlockCacheResult, error) {
	cfg = cfg.withDefaults()
	var res BlockCacheResult
	for _, on := range []bool{true, false} {
		tps, reg, err := runBlockCacheArm(cfg, on)
		if err != nil {
			return BlockCacheResult{}, err
		}
		if on {
			s := reg.Snapshot()
			res.OnTps = tps
			res.Lookups = s.Counter("lsm.cache.lookups")
			res.Hits = s.Counter("lsm.cache.hits")
			if res.Lookups > 0 {
				res.HitRate = float64(res.Hits) / float64(res.Lookups)
			}
		} else {
			res.OffTps = tps
		}
	}
	if res.OffTps > 0 {
		res.Speedup = res.OnTps / res.OffTps
	}
	return res, nil
}

// runBlockCacheArm measures one arm: preload, flush so reads hit
// SSTables, then a fixed op count of the read-heavy mix.
func runBlockCacheArm(cfg BlockCacheConfig, cacheOn bool) (tps float64, reg *obs.Registry, err error) {
	dir, err := os.MkdirTemp("", "treaty-bcache-")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(dir)
	key, err := seal.NewRandomKey()
	if err != nil {
		return 0, nil, err
	}
	reg = obs.NewRegistry()
	cacheBytes := cfg.CacheBytes
	if !cacheOn {
		cacheBytes = -1
	}
	db, err := lsm.Open(lsm.Options{
		Dir:             dir,
		Level:           seal.LevelEncrypted,
		Key:             key,
		Runtime:         enclave.NewSconeRuntime(),
		BlockCacheBytes: cacheBytes,
		Metrics:         reg,
		// One big memtable: the preload flushes once, so both arms read
		// the same SSTable shape instead of racing compaction.
		MemTableSize: 64 << 20,
	})
	if err != nil {
		return 0, nil, err
	}
	defer db.Close()

	gen := workload.NewYCSB(workload.YCSBConfig{ReadRatio: cfg.ReadRatio, ValueSize: cfg.ValueSize, Keys: cfg.Keys}, 1)
	keys, val := gen.LoadKeys()
	b := lsm.NewBatch()
	for i, k := range keys {
		b.Put(k, val)
		if i%2000 == 1999 {
			if _, _, aerr := db.Apply(b); aerr != nil {
				return 0, nil, aerr
			}
			b = lsm.NewBatch()
		}
	}
	if _, _, err := db.Apply(b); err != nil {
		return 0, nil, err
	}
	// Push the population into SSTables: a memtable-resident key space
	// never touches the block path at all.
	if err := db.Flush(); err != nil {
		return 0, nil, err
	}

	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for op := 0; op < cfg.Ops; op++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Float64() < cfg.ReadRatio {
			if _, _, _, gerr := db.Get(k, db.LatestSeq()); gerr != nil {
				return 0, nil, gerr
			}
		} else {
			wb := lsm.NewBatch()
			wb.Put(k, val)
			if _, _, aerr := db.Apply(wb); aerr != nil {
				return 0, nil, aerr
			}
		}
	}
	elapsed := time.Since(start)
	return float64(cfg.Ops) / elapsed.Seconds(), reg, nil
}

// PrintBlockCache renders the ablation result.
func PrintBlockCache(r BlockCacheResult) string {
	return fmt.Sprintf(
		"Ablation: authenticated block cache (YCSB read-heavy, SCONE w/ Enc)\n"+
			"  cache on : %10.0f tps  (hit rate %.1f%%, %d lookups)\n"+
			"  cache off: %10.0f tps\n"+
			"  speedup  : %.2fx\n",
		r.OnTps, r.HitRate*100, r.Lookups, r.OffTps, r.Speedup)
}
