package bench

import (
	"fmt"
	"time"

	"treaty/internal/core"
	"treaty/internal/lsm"
	"treaty/internal/simnet"
	"treaty/internal/workload"
)

// Distributed-transaction experiments (Fig. 5: YCSB 20%R and 80%R;
// Fig. 3: TPC-C with 10 and 100 warehouses) over a 3-node cluster. Four
// versions, as in the paper: DS-RocksDB (native), Treaty w/o Enc, Treaty
// w/ Enc, and Treaty w/ Enc w/ Stab. Throughput is reported as slowdown
// w.r.t. DS-RocksDB; latency panels come from the same runs.

// DistVersions lists the four distributed configurations in figure order.
func DistVersions() []core.SecurityMode {
	return []core.SecurityMode{
		core.ModeRocksDB,
		core.ModeSconeNoEnc,
		core.ModeSconeEnc,
		core.ModeSconeEncStab,
	}
}

// distVersionLabel renames the native baseline for the distributed plots.
func distVersionLabel(m core.SecurityMode) string {
	if m == core.ModeRocksDB {
		return "DS-RocksDB"
	}
	return m.String()
}

// DistConfig tunes the distributed experiments.
type DistConfig struct {
	// Clients is the number of concurrent drivers (default 32; the paper
	// saturates at 96 across 3 machines).
	Clients int
	// Duration per version (default 3s).
	Duration time.Duration
	// Nodes is the cluster size (default 3).
	Nodes int
	// BlockCacheBytes sizes each node's authenticated block cache
	// (0 = engine default, negative disables — the no-cache reference
	// arm the baseline captures).
	BlockCacheBytes int64
	// Replicate assigns every shard slot an attested backup and ships
	// commit groups to it before the trusted counter stabilizes them
	// (the replication ablation arm; off in the figure panels).
	Replicate bool
}

// withDefaults fills zero fields.
func (c DistConfig) withDefaults() DistConfig {
	if c.Clients == 0 {
		c.Clients = 32
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	return c
}

// newBenchCluster boots a cluster for one measurement. Link latency is
// left at zero: goroutine handoffs on the measurement host already
// exceed the paper's switch latency, and OS timers cannot model tens of
// microseconds faithfully.
func newBenchCluster(mode core.SecurityMode, nodes int, blockCacheBytes int64, replicate bool) (*core.Cluster, error) {
	return core.NewCluster(core.ClusterOptions{
		Nodes:     nodes,
		Mode:      mode,
		Replicate: replicate,
		Link:      simnet.LinkConfig{BandwidthBps: 5 << 30},
		// Short lock timeout: TPC-C's hot warehouse/district rows rely
		// on timeouts for deadlock resolution; long timeouts turn
		// contention into multi-second stalls.
		LockTimeout:     250 * time.Millisecond,
		Workers:         8,
		Seed:            21,
		BlockCacheBytes: blockCacheBytes,
	})
}

// RunFig5 measures distributed YCSB at the given read ratio (0.2 or 0.8).
func RunFig5(cfg DistConfig, readRatio float64) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	out := make([]Measurement, 0, 4)
	for _, mode := range DistVersions() {
		c, err := newBenchCluster(mode, cfg.Nodes, cfg.BlockCacheBytes, cfg.Replicate)
		if err != nil {
			return nil, err
		}
		m, err := runDistYCSB(c, cfg, readRatio)
		m.Label = distVersionLabel(mode)
		m.Metrics = CaptureMetrics(m.Label, c)
		c.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// runDistYCSB preloads the key space and drives client transactions
// through per-node coordinators.
func runDistYCSB(c *core.Cluster, cfg DistConfig, readRatio float64) (Measurement, error) {
	gen := workload.NewYCSB(workload.YCSBConfig{ReadRatio: readRatio}, 1)
	keys, val := gen.LoadKeys()
	if err := loadDirect(c, func(put func(k, v []byte)) {
		for _, k := range keys {
			put(k, val)
		}
	}); err != nil {
		return Measurement{}, err
	}

	gens := make([]*workload.YCSB, cfg.Clients)
	for i := range gens {
		gens[i] = workload.NewYCSB(workload.YCSBConfig{ReadRatio: readRatio}, int64(100+i))
	}
	m := drive(cfg.Clients, cfg.Duration, func(w int) error {
		node := c.Node(w % c.Nodes())
		tx := node.Begin(nil)
		for _, op := range gens[w].NextTxn() {
			if op.Read {
				if _, _, err := tx.Get(op.Key); err != nil {
					tx.Rollback()
					return err
				}
			} else if err := tx.Put(op.Key, op.Value); err != nil {
				tx.Rollback()
				return err
			}
		}
		return tx.Commit()
	})
	return m, nil
}

// loadDirect bulk-loads data through each node's engine directly (the
// benchmark loader, not the measured path): keys are routed exactly as
// the cluster's shard map routes them.
func loadDirect(c *core.Cluster, fill func(put func(k, v []byte))) error {
	byAddr := make(map[string]*lsm.Batch, c.Nodes())
	for i := 0; i < c.Nodes(); i++ {
		byAddr[c.Node(i).Addr()] = lsm.NewBatch()
	}
	// Route exactly as the live cluster routes: through the shard map the
	// nodes enforce. A loader with its own hash would place keys on nodes
	// the participants refuse to serve.
	view := c.Node(0).Shard().View()
	flush := func() error {
		for addr, b := range byAddr {
			if b.Count() == 0 {
				continue
			}
			for i := 0; i < c.Nodes(); i++ {
				if c.Node(i).Addr() != addr {
					continue
				}
				if _, _, err := c.Node(i).DB().Apply(b); err != nil {
					return err
				}
			}
			byAddr[addr] = lsm.NewBatch()
		}
		return nil
	}
	count := 0
	var ferr error
	fill(func(k, v []byte) {
		if ferr != nil {
			return
		}
		byAddr[view.Owner(k)].Put(k, v)
		count++
		if count%2000 == 0 {
			ferr = flush()
		}
	})
	if ferr != nil {
		return ferr
	}
	if err := flush(); err != nil {
		return err
	}
	// Push the preload into SSTables: a memtable-resident key space would
	// serve every measured read without touching the block path (or the
	// cache), making the read-heavy panels storage-blind.
	for i := 0; i < c.Nodes(); i++ {
		if err := c.Node(i).DB().Flush(); err != nil {
			return err
		}
	}
	return nil
}

// TPCCScale is the scaled-down-population TPC-C used by the harness: the
// warehouse/district structure (and therefore the contention profile and
// the remote-transaction probabilities) matches the paper; row
// populations are reduced so loading fits a benchmark run.
func TPCCScale(warehouses int) workload.TPCCConfig {
	return workload.TPCCConfig{
		Warehouses:            warehouses,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  60,
		Items:                 1000,
	}
}

// RunFig3 measures distributed TPC-C at the given warehouse count (10 or
// 100 in the paper). Client count is capped at ~1.6× the warehouse count:
// the paper observes the 10-warehouse configuration saturating at 10-16
// clients (W-W conflicts), so piling on more only thrashes the lock
// tables.
func RunFig3(cfg DistConfig, warehouses int) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	if maxClients := warehouses + warehouses/2 + 1; cfg.Clients > maxClients {
		cfg.Clients = maxClients
	}
	out := make([]Measurement, 0, 4)
	for _, mode := range DistVersions() {
		c, err := newBenchCluster(mode, cfg.Nodes, cfg.BlockCacheBytes, cfg.Replicate)
		if err != nil {
			return nil, err
		}
		m, err := runDistTPCC(c, cfg, warehouses)
		m.Label = distVersionLabel(mode)
		m.Metrics = CaptureMetrics(m.Label, c)
		c.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// distBegin adapts a node coordinator to the workload interface.
func distBegin(n *core.Node) workload.Begin {
	return func() workload.Txn { return n.Begin(nil) }
}

// runDistTPCC loads the scaled TPC-C population and drives the standard
// mix through per-node coordinators.
func runDistTPCC(c *core.Cluster, cfg DistConfig, warehouses int) (Measurement, error) {
	loader := workload.NewTPCC(TPCCScale(warehouses), 3)
	// Bulk-load through the direct path (loading through 2PC at full
	// population would dominate the run).
	if err := loadTPCCDirect(c, loader); err != nil {
		return Measurement{}, err
	}

	drivers := make([]*workload.TPCC, cfg.Clients)
	for i := range drivers {
		drivers[i] = workload.NewTPCC(TPCCScale(warehouses), int64(200+i))
	}
	m := drive(cfg.Clients, cfg.Duration, func(w int) error {
		node := c.Node(w % c.Nodes())
		d := drivers[w]
		home := 1 + (w % warehouses)
		err := d.Run(distBegin(node), d.NextType(), home)
		if err == workload.ErrAbortedByUser {
			return nil // spec-mandated rollback still counts as success
		}
		return err
	})
	return m, nil
}

// loadTPCCDirect runs the TPC-C loader against the direct bulk path.
func loadTPCCDirect(c *core.Cluster, loader *workload.TPCC) error {
	view := c.Node(0).Shard().View()
	nodeFor := make(map[string]*core.Node, c.Nodes())
	for i := 0; i < c.Nodes(); i++ {
		nodeFor[c.Node(i).Addr()] = c.Node(i)
	}
	begin := func() workload.Txn {
		return &directTxn{route: view.Owner, nodes: nodeFor, batches: map[string]*lsm.Batch{}}
	}
	if err := loader.Load(begin, 2000); err != nil {
		return err
	}
	// As in loadDirect: measured reads should go through the block path.
	for i := 0; i < c.Nodes(); i++ {
		if err := c.Node(i).DB().Flush(); err != nil {
			return err
		}
	}
	return nil
}

// directTxn is the loader's pseudo-transaction: puts are routed into
// per-node batches applied at commit. It is write-only.
type directTxn struct {
	route   func(key []byte) string
	nodes   map[string]*core.Node
	batches map[string]*lsm.Batch
}

// Get implements workload.Txn (the loader never reads).
func (t *directTxn) Get([]byte) ([]byte, bool, error) { return nil, false, nil }

// Put implements workload.Txn.
func (t *directTxn) Put(key, value []byte) error {
	addr := t.route(key)
	b, ok := t.batches[addr]
	if !ok {
		b = lsm.NewBatch()
		t.batches[addr] = b
	}
	b.Put(key, value)
	return nil
}

// Commit implements workload.Txn.
func (t *directTxn) Commit() error {
	for addr, b := range t.batches {
		if _, _, err := t.nodes[addr].DB().Apply(b); err != nil {
			return err
		}
	}
	t.batches = map[string]*lsm.Batch{}
	return nil
}

// Rollback implements workload.Txn.
func (t *directTxn) Rollback() error {
	t.batches = map[string]*lsm.Batch{}
	return nil
}

// PrintFig5 renders the YCSB panel.
func PrintFig5(readRatio float64, ms []Measurement) string {
	return Table(fmt.Sprintf("Figure 5: distributed txns, YCSB %.0f%%R (slowdown w.r.t. DS-RocksDB)", readRatio*100), ms)
}

// PrintFig3 renders a TPC-C panel.
func PrintFig3(warehouses int, ms []Measurement) string {
	return Table(fmt.Sprintf("Figure 3: distributed txns, TPC-C %dW (slowdown w.r.t. DS-RocksDB)", warehouses), ms)
}
