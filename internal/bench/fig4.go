package bench

import (
	"fmt"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/erpc"
	"treaty/internal/seal"
	"treaty/internal/simnet"
)

// Figure 4: Treaty's 2PC protocol in isolation — no storage underneath —
// under YCSB 50R/50W (10 ops/txn, 1000 B values). Four versions: Native
// 2PC, Native w/ Enc, Secure (SCONE) w/o Enc, Secure w/ Enc. The paper
// measures ~1.05× for native encryption, ~1.8× for SCONE without
// encryption, and ~2× for SCONE with encryption, all normalized to the
// native run.
//
// The protocol skeleton replays Fig. 2's message flow exactly: ten
// operation request/responses, a prepare round, and a commit round per
// transaction, between a coordinator and a participant endpoint over the
// kernel-bypass transport. SCONE's cost is the enclave↔host message
// buffer copy charged per message (message buffers live in untrusted
// host memory, §VII-D); encryption cost is real AES-GCM.

// Fig4Version is one evaluated configuration.
type Fig4Version struct {
	// Label is the figure's legend entry.
	Label string
	// Scone charges enclave copy costs per message.
	Scone bool
	// Enc seals all protocol messages.
	Enc bool
}

// Fig4Versions lists the four configurations in figure order.
func Fig4Versions() []Fig4Version {
	return []Fig4Version{
		{Label: "Native 2PC", Scone: false, Enc: false},
		{Label: "Native w/ Enc", Scone: false, Enc: true},
		{Label: "Secure w/o Enc", Scone: true, Enc: false},
		{Label: "Secure w/ Enc", Scone: true, Enc: true},
	}
}

// Fig4Config tunes the run.
type Fig4Config struct {
	// Clients is the number of concurrent drivers (default 32).
	Clients int
	// Duration per version (default 2s).
	Duration time.Duration
	// OpsPerTxn and ValueSize are the YCSB parameters (defaults 10 and
	// 1000, the paper's).
	OpsPerTxn int
	ValueSize int
}

// fig4Protocol request types.
const (
	fig4Op      uint8 = 0x40
	fig4Prepare uint8 = 0x41
	fig4Commit  uint8 = 0x42
)

// Per-message CPU costs, charged per side (send and receive). The base
// cost models the native kernel-bypass NIC path (driver + eRPC framing,
// ~2.5 µs — the paper's testbed pays this in every version, which is why
// encryption alone barely moves the needle there). SCONE adds the
// enclave-boundary overhead plus the enclave↔host buffer copy per KiB.
const (
	fig4BaseMsgCost   = 2500 * time.Nanosecond
	fig4SconeMsgCost  = 1700 * time.Nanosecond
	fig4SconeCopyPerK = 650 * time.Nanosecond
)

// fig4Cost returns the per-side CPU cost of one message of n bytes.
func fig4Cost(v Fig4Version, n int) time.Duration {
	cost := fig4BaseMsgCost
	if v.Scone {
		kb := time.Duration((n + 1023) / 1024)
		cost += fig4SconeMsgCost + kb*fig4SconeCopyPerK
	}
	return cost
}

// RunFig4 measures all four versions and returns them in order.
func RunFig4(cfg Fig4Config) ([]Measurement, error) {
	if cfg.Clients == 0 {
		cfg.Clients = 32
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.OpsPerTxn == 0 {
		cfg.OpsPerTxn = 10
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 1000
	}
	out := make([]Measurement, 0, 4)
	for _, v := range Fig4Versions() {
		m, err := runFig4Version(cfg, v)
		if err != nil {
			return nil, err
		}
		m.Label = v.Label
		out = append(out, m)
	}
	return out, nil
}

// runFig4Version measures one configuration.
func runFig4Version(cfg Fig4Config, v Fig4Version) (Measurement, error) {
	net := simnet.New(simnet.LinkConfig{Latency: 5 * time.Microsecond}, 4)
	defer net.Close()
	key, err := seal.NewRandomKey()
	if err != nil {
		return Measurement{}, err
	}

	mk := func(addr string, id uint64) (*erpc.Endpoint, error) {
		nep, lerr := net.Listen(addr)
		if lerr != nil {
			return nil, lerr
		}
		return erpc.NewEndpoint(erpc.Config{
			NodeID:     id,
			Transport:  erpc.NewSimTransport(nep, nil, erpc.KindDPDK),
			NetworkKey: key,
			Secure:     v.Enc,
			RxBurst:    64,
		})
	}
	coord, err := mk("fig4-coord", 1)
	if err != nil {
		return Measurement{}, err
	}
	part, err := mk("fig4-part", 2)
	if err != nil {
		return Measurement{}, err
	}
	// Participant: execute the operation (no storage), charging the
	// per-message network cost on receive and reply. Reads (empty
	// request body) return the value, so read responses cost what write
	// requests cost — on the wire and in the cipher.
	value := make([]byte, cfg.ValueSize)
	opHandler := func(req *erpc.Request) {
		resp := []byte(nil)
		if len(req.Payload) == 0 {
			resp = value
		}
		enclave.Spin(fig4Cost(v, len(req.Payload)+seal.MsgOverhead) +
			fig4Cost(v, len(resp)+seal.MsgOverhead))
		req.Reply(resp)
	}
	ctlHandler := func(req *erpc.Request) {
		enclave.Spin(2 * fig4Cost(v, seal.MsgOverhead))
		req.Reply(nil)
	}
	part.Register(fig4Op, opHandler)
	part.Register(fig4Prepare, ctlHandler)
	part.Register(fig4Commit, ctlHandler)
	p1, p2 := erpc.StartPoller(coord), erpc.StartPoller(part)
	defer p1.Stop()
	defer p2.Stop()

	payload := make([]byte, cfg.ValueSize)
	var txSeq, opSeq atomicCounter
	call := func(reqType uint8, tx uint64, body []byte) error {
		md := seal.MsgMetadata{TxID: tx, OpID: opSeq.next(), OpType: uint32(reqType)}
		// Send + (later) receive cost on the coordinator side.
		enclave.Spin(2 * fig4Cost(v, len(body)+seal.MsgOverhead))
		_, cerr := erpc.Call(coord, "fig4-part", reqType, md, body, 5*time.Second, nil)
		return cerr
	}

	m := drive(cfg.Clients, cfg.Duration, func(int) error {
		tx := txSeq.next()
		// Half the operations are writes carrying the value; half reads.
		for op := 0; op < cfg.OpsPerTxn; op++ {
			body := payload
			if op%2 == 0 {
				body = nil // read request
			}
			if err := call(fig4Op, tx, body); err != nil {
				return err
			}
		}
		if err := call(fig4Prepare, tx, nil); err != nil {
			return err
		}
		return call(fig4Commit, tx, nil)
	})
	return m, nil
}

// atomicCounter is a tiny helper for unique ids in benchmarks.
type atomicCounter struct{ v uint64 }

func (c *atomicCounter) next() uint64 {
	return atomicAdd(&c.v)
}

// PrintFig4 renders the figure's output.
func PrintFig4(ms []Measurement) string {
	return Table(fmt.Sprintf("Figure 4: 2PC protocol slowdown w.r.t. %s (YCSB 50R/50W, no storage)", ms[0].Label), ms)
}
