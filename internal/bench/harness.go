// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§VIII). Each experiment spins up
// the system under test in-process (the simulated testbed), drives it
// with the paper's workload at the paper's parameters, and reports
// throughput and latency in the same structure as the paper — absolute
// numbers differ (simulator vs the authors' SGX cluster), the *shape*
// (who wins, by what factor) is the reproduction target.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Measurement is one experiment cell: throughput and latency for one
// system version under one workload.
type Measurement struct {
	// Label names the system version (e.g. "Treaty w/ Enc").
	Label string
	// Tps is committed transactions per second.
	Tps float64
	// AvgLatencyMs and P99LatencyMs summarize commit latency.
	AvgLatencyMs float64
	P99LatencyMs float64
	// Committed and Aborted count transaction outcomes.
	Committed uint64
	Aborted   uint64
	// Metrics is the per-node observability digest captured before the
	// run's cluster was torn down (distributed experiments only).
	Metrics *MetricsReport `json:",omitempty"`
}

// Slowdown returns base.Tps / m.Tps (the paper's "slowdown w.r.t. X").
func (m Measurement) Slowdown(base Measurement) float64 {
	if m.Tps == 0 {
		return 0
	}
	return base.Tps / m.Tps
}

// drive runs nClients concurrent workers for duration; each worker calls
// work(workerID) repeatedly — one call is one transaction attempt
// returning (committed, error). Latency is measured per attempt.
func drive(nClients int, duration time.Duration, work func(worker int) error) Measurement {
	var mu sync.Mutex
	var lats []time.Duration
	var committed, aborted uint64

	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var localLat []time.Duration
			var localC, localA uint64
			for time.Now().Before(stop) {
				t0 := time.Now()
				err := work(w)
				lat := time.Since(t0)
				if err != nil {
					localA++
					continue
				}
				localC++
				localLat = append(localLat, lat)
			}
			mu.Lock()
			lats = append(lats, localLat...)
			committed += localC
			aborted += localA
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	m := Measurement{Committed: committed, Aborted: aborted}
	m.Tps = float64(committed) / duration.Seconds()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		m.AvgLatencyMs = float64(sum.Milliseconds()) / float64(len(lats))
		if m.AvgLatencyMs == 0 {
			m.AvgLatencyMs = float64(sum.Microseconds()) / float64(len(lats)) / 1000
		}
		m.P99LatencyMs = float64(lats[len(lats)*99/100].Microseconds()) / 1000
	}
	return m
}

// Table renders measurements as the paper-style rows: label, slowdown
// w.r.t. the first row, throughput, latency.
func Table(title string, ms []Measurement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-28s %10s %12s %12s %12s\n", "version", "slowdown", "tps", "avg-lat(ms)", "p99-lat(ms)")
	if len(ms) == 0 {
		return b.String()
	}
	base := ms[0]
	for _, m := range ms {
		fmt.Fprintf(&b, "  %-28s %9.2fx %12.0f %12.2f %12.2f\n",
			m.Label, m.Slowdown(base), m.Tps, m.AvgLatencyMs, m.P99LatencyMs)
	}
	return b.String()
}

// SeriesTable renders an X-vs-multiple-series table (Fig. 8 style).
func SeriesTable(title, xName string, xs []string, series map[string][]float64, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-22s", xName)
	for _, x := range xs {
		fmt.Fprintf(&b, " %9s", x)
	}
	b.WriteByte('\n')
	for _, name := range order {
		fmt.Fprintf(&b, "  %-22s", name)
		for _, v := range series[name] {
			fmt.Fprintf(&b, " %9.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
