package bench

import (
	"encoding/json"

	"treaty/internal/core"
	"treaty/internal/obs"
)

// Machine-readable metrics capture for benchmark runs: every distributed
// measurement can carry a per-node digest of the observability snapshot
// taken right before its cluster is torn down, so a run's throughput
// numbers come with the 2PC stage latencies, WAL traffic and enclave
// costs that explain them.

// StageLat is one 2PC stage's latency summary in milliseconds.
type StageLat struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// NodeDigest condenses one node's snapshot to the numbers the paper's
// evaluation discusses.
type NodeDigest struct {
	TxBegun     uint64 `json:"tx_begun"`
	TxCommitted uint64 `json:"tx_committed"`
	TxAborted   uint64 `json:"tx_aborted"`

	// Stages maps stage name ("prepare", "commit", ...) to its latency
	// histogram summary.
	Stages map[string]StageLat `json:"stages,omitempty"`

	StabilizeWaitP99Ms float64 `json:"stabilize_wait_p99_ms"`

	WALAppends uint64 `json:"wal_appends"`
	WALSyncs   uint64 `json:"wal_syncs"`

	// Write-path group commit (the Clog leader): appended coordinator
	// records, groups forced, and the per-group size distribution. A
	// ClogGroupP95 above 1 shows cross-transaction batching actually
	// engaged under the measured load.
	ClogAppends  uint64  `json:"clog_appends,omitempty"`
	ClogSyncs    uint64  `json:"clog_syncs,omitempty"`
	ClogGroupP50 float64 `json:"clog_group_p50,omitempty"`
	ClogGroupP95 float64 `json:"clog_group_p95,omitempty"`
	ClogGroupMax float64 `json:"clog_group_max,omitempty"`

	// Trusted-counter amortization: protocol rounds run, the per-round
	// batch-size distribution, and rounds per committed transaction
	// (below 1 means one ROTE round covered several commits, §VI).
	CounterRounds       uint64  `json:"counter_rounds,omitempty"`
	CounterBatchP95     float64 `json:"counter_batch_p95,omitempty"`
	CounterRoundsPerTxn float64 `json:"counter_rounds_per_txn,omitempty"`
	// BloomFilterRate is the fraction of filtered point reads (bloom
	// negatives / bloom checks), 0 when no SSTable was consulted.
	BloomFilterRate float64 `json:"bloom_filter_rate"`
	// CacheHitRate is the block cache hit fraction (hits / lookups), 0
	// when the cache was disabled or never consulted; CacheLookups
	// disambiguates those two cases.
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheLookups uint64  `json:"cache_lookups"`

	RPCRetries    uint64 `json:"rpc_retries"`
	WorldSwitches uint64 `json:"world_switches"`
	AsyncSyscalls uint64 `json:"async_syscalls"`

	// Replication shipping (the attested backup mirror), present only on
	// runs with replication enabled. ShipFailed above 0 means a stream
	// durably degraded during the measurement — the run's overhead number
	// no longer reflects the replicated write path and should be redone.
	ReplShipGroups  uint64 `json:"repl_ship_groups,omitempty"`
	ReplShipAcked   uint64 `json:"repl_ship_acked,omitempty"`
	ReplShipFailed  uint64 `json:"repl_ship_failed,omitempty"`
	ReplShipSkipped uint64 `json:"repl_ship_skipped,omitempty"`
	ReplRecvAcked   uint64 `json:"repl_recv_acked,omitempty"`
}

// MetricsReport is the per-version report: one digest per node address.
type MetricsReport struct {
	Label string                `json:"label"`
	Nodes map[string]NodeDigest `json:"nodes"`
}

// twopcStages are the stage-histogram suffixes digested into NodeDigest.
var twopcStages = []string{
	"begin", "execute", "prepare", "log-force",
	"counter-stabilize", "commit", "abort", "reclaim",
}

// DigestSnapshot condenses a node snapshot into a NodeDigest.
func DigestSnapshot(s obs.Snapshot) NodeDigest {
	d := NodeDigest{
		TxBegun:       s.Counter("twopc.tx.begun"),
		TxCommitted:   s.Counter("twopc.tx.committed"),
		TxAborted:     s.Counter("twopc.tx.aborted"),
		WALAppends:    s.Counter("lsm.wal.appends"),
		WALSyncs:      s.Counter("lsm.wal.syncs"),
		RPCRetries:    s.Counter("erpc.req.retries"),
		WorldSwitches: s.Counter("enclave.world_switches"),
		AsyncSyscalls: s.Counter("enclave.async_syscalls"),
		Stages:        make(map[string]StageLat),
	}
	const ms = 1e6 // histogram samples are nanoseconds
	for _, st := range twopcStages {
		h, ok := s.Histograms["twopc.stage."+st]
		if !ok || h.Count == 0 {
			continue
		}
		d.Stages[st] = StageLat{
			Count: h.Count,
			P50Ms: float64(h.P50) / ms, P95Ms: float64(h.P95) / ms, P99Ms: float64(h.P99) / ms,
		}
	}
	d.StabilizeWaitP99Ms = float64(s.Histograms["twopc.stabilize.wait_ns"].P99) / ms
	d.ClogAppends = s.Counter("twopc.clog.appends")
	d.ClogSyncs = s.Counter("twopc.clog.syncs")
	if h, ok := s.Histograms["twopc.clog.group_size"]; ok && h.Count > 0 {
		d.ClogGroupP50 = float64(h.P50)
		d.ClogGroupP95 = float64(h.P95)
		d.ClogGroupMax = float64(h.Max)
	}
	d.CounterRounds = s.Counter("counter.rounds")
	if h, ok := s.Histograms["counter.batch.size"]; ok && h.Count > 0 {
		d.CounterBatchP95 = float64(h.P95)
	}
	if d.TxCommitted > 0 {
		d.CounterRoundsPerTxn = float64(d.CounterRounds) / float64(d.TxCommitted)
	}
	if checks := s.Counter("lsm.bloom.checks"); checks > 0 {
		d.BloomFilterRate = float64(s.Counter("lsm.bloom.negatives")) / float64(checks)
	}
	if lookups := s.Counter("lsm.cache.lookups"); lookups > 0 {
		d.CacheLookups = lookups
		d.CacheHitRate = float64(s.Counter("lsm.cache.hits")) / float64(lookups)
	}
	d.ReplShipGroups = s.Counter("repl.ship_groups")
	d.ReplShipAcked = s.Counter("repl.ship_acked")
	d.ReplShipFailed = s.Counter("repl.ship_failed")
	d.ReplShipSkipped = s.Counter("repl.ship_skipped")
	d.ReplRecvAcked = s.Counter("repl.recv_acked")
	return d
}

// CaptureMetrics digests every live node of a cluster.
func CaptureMetrics(label string, c *core.Cluster) *MetricsReport {
	r := &MetricsReport{Label: label, Nodes: make(map[string]NodeDigest)}
	for addr, s := range c.Snapshot() {
		r.Nodes[addr] = DigestSnapshot(s)
	}
	return r
}

// ReportJSON renders measurement metrics reports as indented JSON.
func ReportJSON(ms []Measurement) ([]byte, error) {
	reports := make([]*MetricsReport, 0, len(ms))
	for _, m := range ms {
		if m.Metrics != nil {
			reports = append(reports, m.Metrics)
		}
	}
	return json.MarshalIndent(reports, "", "  ")
}
