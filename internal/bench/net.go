package bench

import (
	"strconv"
	"time"

	"treaty/internal/workload"
)

// Figure 8: network bandwidth of seven stacks across message sizes. The
// paper's message sizes are 64 B to 4 KiB; the seven systems are the
// native and SCONE builds of iPerf-UDP, iPerf-TCP, and eRPC, plus
// Treaty's fully secured networking.

// Fig8Sizes are the paper's message sizes in bytes.
func Fig8Sizes() []int { return []int{64, 256, 1024, 1460, 2048, 4096} }

// Fig8System is one plotted line.
type Fig8System struct {
	// Label matches the figure legend.
	Label string
	// Stack and Scone select the configuration.
	Stack workload.NetStack
	Scone bool
}

// Fig8Systems lists the seven lines in legend order.
func Fig8Systems() []Fig8System {
	return []Fig8System{
		{Label: "iPerf UDP", Stack: workload.StackUDP},
		{Label: "iPerf UDP (Scone)", Stack: workload.StackUDP, Scone: true},
		{Label: "iPerf TCP", Stack: workload.StackTCP},
		{Label: "iPerf TCP (Scone)", Stack: workload.StackTCP, Scone: true},
		{Label: "eRPC", Stack: workload.StackERPC},
		{Label: "eRPC (Scone)", Stack: workload.StackERPC, Scone: true},
		{Label: "Treaty networking", Stack: workload.StackTreaty, Scone: true},
	}
}

// RunFig8 measures throughput (Gb/s) for every system at every message
// size. Result: map system label -> one value per Fig8Sizes entry.
func RunFig8(perPoint time.Duration) (map[string][]float64, error) {
	if perPoint == 0 {
		perPoint = 150 * time.Millisecond
	}
	out := make(map[string][]float64, 7)
	for _, sys := range Fig8Systems() {
		var series []float64
		for _, size := range Fig8Sizes() {
			res, err := workload.RunIperf(workload.IperfConfig{
				Stack:    sys.Stack,
				Scone:    sys.Scone,
				MsgSize:  size,
				Duration: perPoint,
			})
			if err != nil {
				return nil, err
			}
			series = append(series, res.Gbps)
		}
		out[sys.Label] = series
	}
	return out, nil
}

// PrintFig8 renders the figure's series table.
func PrintFig8(series map[string][]float64) string {
	xs := make([]string, 0, len(Fig8Sizes()))
	for _, s := range Fig8Sizes() {
		xs = append(xs, strconv.Itoa(s)+"B")
	}
	order := make([]string, 0, 7)
	for _, sys := range Fig8Systems() {
		order = append(order, sys.Label)
	}
	return SeriesTable("Figure 8: network throughput (Gb/s) by message size", "message size", xs, series, order)
}
