package bench

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/lsm"
	"treaty/internal/seal"
)

// Table I: recovery overheads. The paper constructs logs of 800 k small
// (~100 B) entries — 69 MiB plaintext / 91 MiB encrypted — and measures
// recovery time of Treaty w/o Enc (~1.5×) and Treaty w/ Enc (~2.0×)
// against native recovery. Small entries are the worst case: more
// syscalls and more decryption calls per byte.

// RecoveryConfig tunes the experiment.
type RecoveryConfig struct {
	// Entries is the log entry count (default 100_000; the paper uses
	// 800_000 — pass that for the full-scale run).
	Entries int
	// EntrySize is the approximate payload size (default 100 B).
	EntrySize int
}

// RecoveryResult is one measured version.
type RecoveryResult struct {
	// Label names the version.
	Label string
	// Duration is the time to re-open (replay + verify) the database.
	Duration time.Duration
	// LogBytes is the on-disk size of the replayed logs.
	LogBytes int64
}

// RunTableI builds identical workloads at the three log security levels
// and measures recovery time for each.
func RunTableI(cfg RecoveryConfig) ([]RecoveryResult, error) {
	if cfg.Entries == 0 {
		cfg.Entries = 100000
	}
	if cfg.EntrySize == 0 {
		cfg.EntrySize = 100
	}
	versions := []struct {
		label string
		level seal.SecurityLevel
	}{
		{"Native recovery", seal.LevelNone},
		{"Treaty w/o Enc", seal.LevelIntegrity},
		{"Treaty w/ Enc", seal.LevelEncrypted},
	}
	out := make([]RecoveryResult, 0, len(versions))
	for _, v := range versions {
		r, err := runRecovery(cfg, v.level)
		if err != nil {
			return nil, err
		}
		r.Label = v.label
		out = append(out, r)
	}
	return out, nil
}

// runRecovery writes the log and measures a cold re-open.
func runRecovery(cfg RecoveryConfig, level seal.SecurityLevel) (RecoveryResult, error) {
	dir, err := os.MkdirTemp("", "treaty-recovery-")
	if err != nil {
		return RecoveryResult{}, err
	}
	defer os.RemoveAll(dir)

	key, err := seal.NewRandomKey()
	if err != nil {
		return RecoveryResult{}, err
	}
	counters := newSharedCounters()
	// Treaty versions recover inside the enclave (boundary costs per
	// entry); the native baseline does not. Replay issues its per-entry
	// syscalls through SCONE's batched async interface, which amortizes
	// the cost below the interactive-path figure.
	var rt *enclave.Runtime
	if level >= seal.LevelIntegrity {
		costs := enclave.DefaultCosts()
		costs.AsyncSyscall = 700 * time.Nanosecond
		rt = enclave.NewRuntime(enclave.RuntimeConfig{Mode: enclave.ModeScone, Costs: costs})
	}
	// A huge memtable keeps every entry in the WAL (recovery replays the
	// log, which is the measured path).
	opt := lsm.Options{
		Dir: dir, Level: level, Key: key,
		MemTableSize: 1 << 40,
		SyncWAL:      false,
		Counters:     counters.factory,
		Runtime:      rt,
	}
	db, err := lsm.Open(opt)
	if err != nil {
		return RecoveryResult{}, err
	}
	payload := []byte(strings.Repeat("x", cfg.EntrySize-16))
	for i := 0; i < cfg.Entries; i++ {
		b := lsm.NewBatch()
		b.Put(fmt.Appendf(nil, "k%010d", i), payload)
		if _, _, err := db.Apply(b); err != nil {
			db.Close()
			return RecoveryResult{}, err
		}
	}
	if err := db.Close(); err != nil {
		return RecoveryResult{}, err
	}

	var logBytes int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return RecoveryResult{}, err
	}
	for _, de := range entries {
		if info, ierr := de.Info(); ierr == nil {
			logBytes += info.Size()
		}
	}

	start := time.Now()
	db2, err := lsm.Open(opt)
	if err != nil {
		return RecoveryResult{}, err
	}
	elapsed := time.Since(start)
	// Verify the recovery actually restored the data.
	if _, _, found, gerr := db2.Get(fmt.Appendf(nil, "k%010d", cfg.Entries-1), db2.LatestSeq()); gerr != nil || !found {
		db2.Close()
		return RecoveryResult{}, fmt.Errorf("bench: recovery lost data: found=%v err=%v", found, gerr)
	}
	db2.Close()
	return RecoveryResult{Duration: elapsed, LogBytes: logBytes}, nil
}

// sharedCounters is an immediate counter registry shared across the
// write and recovery opens (playing the trusted counter service role).
type sharedCounters struct {
	mu sync.Mutex
	m  map[string]lsm.TrustedCounter
}

func newSharedCounters() *sharedCounters {
	return &sharedCounters{m: make(map[string]lsm.TrustedCounter)}
}

func (s *sharedCounters) factory(name string) lsm.TrustedCounter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.m[name]; ok {
		return c
	}
	c := lsm.NewImmediateCounter()
	s.m[name] = c
	return c
}

// PrintTableI renders the table.
func PrintTableI(rs []RecoveryResult) string {
	var b strings.Builder
	b.WriteString("Table I: recovery overheads w.r.t. native recovery\n")
	fmt.Fprintf(&b, "  %-20s %12s %12s %10s\n", "version", "time", "log size", "slowdown")
	if len(rs) == 0 {
		return b.String()
	}
	base := rs[0].Duration
	for _, r := range rs {
		slow := float64(r.Duration) / float64(base)
		fmt.Fprintf(&b, "  %-20s %12s %9.1fMiB %9.2fx\n",
			r.Label, r.Duration.Round(time.Millisecond), float64(r.LogBytes)/(1<<20), slow)
	}
	return b.String()
}
