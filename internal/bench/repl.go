package bench

import (
	"fmt"

	"treaty/internal/core"
)

// Replication ablation: the same write-heavy (YCSB 20%R, fig5-shaped)
// distributed run at the full security mode, once without and once with
// per-shard attested backups. The delta is the price of shipping every
// commit group to its mirror inside the group-commit critical section
// (ship + ack between the fsync and the trusted-counter stabilization) —
// the cost of rollback-resistant failover on top of Treaty w/ Enc w/
// Stab.

// ReplicationResult summarizes the two-arm ablation.
type ReplicationResult struct {
	// Off and On are the measured arms ("Treaty w/ Enc w/ Stab" and
	// "+ repl"); both carry full per-node metric digests.
	Off Measurement
	On  Measurement

	// Overhead is Off.Tps / On.Tps (>= 1 when replication costs
	// throughput; the paper-style slowdown factor).
	Overhead float64

	// Cluster-wide shipping totals from the replicated arm. ShipAcked of
	// zero or ShipFailed above zero means the arm is vacuous or degraded
	// and the Overhead number is not evidence of anything.
	ShipGroups uint64
	ShipAcked  uint64
	ShipFailed uint64
	RecvAcked  uint64
}

// RunReplicationAblation measures the write path with replication off and
// on, under identical load.
func RunReplicationAblation(cfg DistConfig) (ReplicationResult, error) {
	cfg = cfg.withDefaults()
	var r ReplicationResult
	for _, replicate := range []bool{false, true} {
		cfg.Replicate = replicate
		c, err := newBenchCluster(core.ModeSconeEncStab, cfg.Nodes, cfg.BlockCacheBytes, replicate)
		if err != nil {
			return r, err
		}
		m, err := runDistYCSB(c, cfg, 0.2)
		if replicate {
			m.Label = "+ repl"
		} else {
			m.Label = "Treaty w/ Enc w/ Stab"
		}
		m.Metrics = CaptureMetrics(m.Label, c)
		c.Stop()
		if err != nil {
			return r, err
		}
		if replicate {
			r.On = m
		} else {
			r.Off = m
		}
	}
	for _, d := range r.On.Metrics.Nodes {
		r.ShipGroups += d.ReplShipGroups
		r.ShipAcked += d.ReplShipAcked
		r.ShipFailed += d.ReplShipFailed
		r.RecvAcked += d.ReplRecvAcked
	}
	if r.On.Tps > 0 {
		r.Overhead = r.Off.Tps / r.On.Tps
	}
	return r, nil
}

// PrintReplication renders the ablation result.
func PrintReplication(r ReplicationResult) string {
	return fmt.Sprintf(
		"Replication: %.1f -> %.1f tps (%.2fx overhead), shipped groups=%d acked=%d failed=%d recv-acked=%d",
		r.Off.Tps, r.On.Tps, r.Overhead, r.ShipGroups, r.ShipAcked, r.ShipFailed, r.RecvAcked)
}
