package bench

import (
	"fmt"
	"time"

	"treaty/internal/core"
	"treaty/internal/simnet"
	"treaty/internal/workload"
)

// Horizontal-scaling experiment (beyond the paper's figures): the same
// read-heavy YCSB offered load driven against growing cluster sizes.
// Treaty partitions the key space by hash slot, so every node added
// brings its own network link and storage engine; with per-machine
// bandwidth as the binding resource — the paper's testbed gives each
// machine one 40 GbE port — aggregate throughput must grow with the
// node count. A scale-out curve that flattens or inverts means routing
// or 2PC serializes where it should partition.
//
// The sweep holds the offered load fixed (same client count, same
// value size, same mix) and scales only the cluster, so the curve
// isolates server-side capacity. The fabric is scaled down to match
// the measurement host the same way the TEE cost model scales down
// CPU: per-link bandwidth is set low enough that the smallest cluster
// saturates its links well below the host's (single-core) compute
// ceiling, leaving the larger clusters visible headroom. Values are
// 2 KiB so transfer time, not per-message overhead, dominates the
// wire cost, and link transit is virtual time in the simulated
// network — deterministic arithmetic, not scheduler noise.

// ScalingNodeCounts is the default cluster-size sweep.
func ScalingNodeCounts() []int { return []int{3, 5, 9} }

// Scaling fabric and workload shape (see the package comment above for
// why these differ from the zero-latency figure-replication fabric).
const (
	// scalingBandwidthBps is the per-link bandwidth of the scaled-down
	// fabric.
	scalingBandwidthBps = 150 << 10
	// scalingLatency is the per-hop propagation delay.
	scalingLatency = 200 * time.Microsecond
	// scalingValueSize makes transfer time dominate per-message cost.
	scalingValueSize = 2048
	// scalingOpsPerTxn keeps transactions multi-shard at every swept
	// cluster size.
	scalingOpsPerTxn = 8
	// scalingWorkers keeps the per-node idle-scheduler tax low on a
	// single-core measurement host.
	scalingWorkers = 2
)

// ScalingConfig tunes the scaling sweep.
type ScalingConfig struct {
	// Clients is the total number of concurrent drivers, spread across
	// all coordinators (0 = 48; held constant across cluster sizes so
	// the sweep isolates server-side capacity).
	Clients int
	// Duration per cluster size (0 = 3s).
	Duration time.Duration
	// ReadRatio is the YCSB read fraction (0 = 0.9, read-heavy).
	ReadRatio float64
	// Mode is the security mode under test (0 = Treaty w/ Enc on native
	// hardware: the SCONE cost model burns real CPU on this host's
	// single core, which would cap every cluster size at the same
	// compute ceiling and hide the capacity curve).
	Mode core.SecurityMode
	// NodeCounts overrides the sweep (nil = ScalingNodeCounts()).
	NodeCounts []int
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.Clients == 0 {
		c.Clients = 48
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.ReadRatio == 0 {
		c.ReadRatio = 0.9
	}
	if c.Mode == 0 {
		c.Mode = core.ModeNativeTreatyEnc
	}
	if c.NodeCounts == nil {
		c.NodeCounts = ScalingNodeCounts()
	}
	return c
}

// newScalingCluster boots one cluster on the scaled-down fabric.
func newScalingCluster(mode core.SecurityMode, nodes int) (*core.Cluster, error) {
	return core.NewCluster(core.ClusterOptions{
		Nodes:       nodes,
		Mode:        mode,
		Link:        simnet.LinkConfig{Latency: scalingLatency, BandwidthBps: scalingBandwidthBps},
		LockTimeout: 250 * time.Millisecond,
		Workers:     scalingWorkers,
		Seed:        21,
	})
}

// RunScaling measures the sweep; one Measurement per cluster size.
func RunScaling(cfg ScalingConfig) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	out := make([]Measurement, 0, len(cfg.NodeCounts))
	for _, n := range cfg.NodeCounts {
		c, err := newScalingCluster(cfg.Mode, n)
		if err != nil {
			return nil, err
		}
		m, err := runScalingYCSB(c, cfg, n)
		m.Label = fmt.Sprintf("%d nodes", n)
		m.Metrics = CaptureMetrics(m.Label, c)
		c.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// runScalingYCSB preloads the key space and drives the fixed offered
// load through per-node coordinators.
func runScalingYCSB(c *core.Cluster, cfg ScalingConfig, nodes int) (Measurement, error) {
	ycfg := workload.YCSBConfig{
		ReadRatio: cfg.ReadRatio,
		ValueSize: scalingValueSize,
		OpsPerTxn: scalingOpsPerTxn,
	}
	gen := workload.NewYCSB(ycfg, 1)
	keys, val := gen.LoadKeys()
	if err := loadDirect(c, func(put func(k, v []byte)) {
		for _, k := range keys {
			put(k, val)
		}
	}); err != nil {
		return Measurement{}, err
	}

	gens := make([]*workload.YCSB, cfg.Clients)
	for i := range gens {
		gens[i] = workload.NewYCSB(ycfg, int64(100+i))
	}
	return drive(cfg.Clients, cfg.Duration, func(w int) error {
		node := c.Node(w % nodes)
		tx := node.Begin(nil)
		for _, op := range gens[w].NextTxn() {
			if op.Read {
				if _, _, err := tx.Get(op.Key); err != nil {
					tx.Rollback()
					return err
				}
			} else if err := tx.Put(op.Key, op.Value); err != nil {
				tx.Rollback()
				return err
			}
		}
		return tx.Commit()
	}), nil
}

// PrintScaling renders the sweep. The slowdown column reads as relative
// capacity: rows below 1.00x are faster than the smallest cluster.
func PrintScaling(cfg ScalingConfig, ms []Measurement) string {
	cfg = cfg.withDefaults()
	return Table(fmt.Sprintf("Scaling: YCSB %.0f%%R, %s, %d clients (vs smallest cluster)",
		cfg.ReadRatio*100, cfg.Mode, cfg.Clients), ms)
}
