package bench

import (
	"strings"
	"testing"
	"time"
)

// TestScalingShape runs the scaling harness at miniature scale (2 and 3
// node clusters, sub-second window) and asserts structure: one labelled
// measurement per cluster size, transactions committed at each, and a
// metrics report per row. The monotone capacity curve itself is asserted
// on the committed full-scale baseline, not in a short noisy run.
func TestScalingShape(t *testing.T) {
	cfg := ScalingConfig{
		Clients:    12,
		Duration:   500 * time.Millisecond,
		NodeCounts: []int{2, 3},
	}
	ms, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("rows = %d, want 2", len(ms))
	}
	if ms[0].Label != "2 nodes" || ms[1].Label != "3 nodes" {
		t.Errorf("labels = %q, %q", ms[0].Label, ms[1].Label)
	}
	for _, m := range ms {
		if m.Committed == 0 {
			t.Errorf("%s committed no transactions", m.Label)
		}
		if m.Metrics == nil || len(m.Metrics.Nodes) == 0 {
			t.Errorf("%s: no metrics report captured", m.Label)
		}
	}
	out := PrintScaling(cfg, ms)
	if !strings.Contains(out, "Scaling") || !strings.Contains(out, "3 nodes") {
		t.Errorf("printout missing rows:\n%s", out)
	}
	t.Log("\n" + out)
}
