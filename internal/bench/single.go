package bench

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"treaty/internal/core"
	"treaty/internal/enclave"
	"treaty/internal/lsm"
	"treaty/internal/seal"
	"treaty/internal/txn"
	"treaty/internal/workload"
)

// Single-node transaction experiments (Fig. 6: pessimistic, Fig. 7:
// optimistic) across the six system versions: RocksDB, Native Treaty,
// Native Treaty w/ Enc, Treaty w/o Enc (SCONE), Treaty w/ Enc (SCONE),
// Treaty w/ Enc w/ Stab. Workloads: TPC-C (10 warehouses) and YCSB
// (10 ops/txn, 1000 B values, uniform over 10 k keys) at 20%R and 80%R.

// SingleConfig tunes the single-node experiments.
type SingleConfig struct {
	// Clients is the number of concurrent drivers (default 16).
	Clients int
	// Duration per version (default 2s).
	Duration time.Duration
}

// withDefaults fills zero fields.
func (c SingleConfig) withDefaults() SingleConfig {
	if c.Clients == 0 {
		c.Clients = 16
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	return c
}

// singleNode is a standalone engine + manager in one security mode.
type singleNode struct {
	mode core.SecurityMode
	rt   *enclave.Runtime
	db   *lsm.DB
	mgr  *txn.Manager
	dir  string
}

// newSingleNode builds the system under test for one mode.
func newSingleNode(mode core.SecurityMode) (*singleNode, error) {
	dir, err := os.MkdirTemp("", "treaty-single-")
	if err != nil {
		return nil, err
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		return nil, err
	}
	var rt *enclave.Runtime
	switch mode.EnclaveMode() {
	case enclave.ModeScone:
		rt = enclave.NewSconeRuntime()
	default:
		rt = enclave.NewNativeRuntime()
	}
	// Stabilization for single-node benches uses a latency-modelled
	// counter (the ROTE group's ~2 ms round) rather than a live group,
	// isolating the engine path.
	var counters lsm.CounterFactory
	if mode == core.ModeSconeEncStab {
		counters = func(string) lsm.TrustedCounter { return newLatencyCounter(2 * time.Millisecond) }
	}
	db, err := lsm.Open(lsm.Options{
		Dir:      dir,
		Level:    mode.StorageLevel(),
		Key:      key,
		Runtime:  rt,
		Counters: counters,
		// A larger memtable keeps the flush count per measurement window
		// small and equal across versions; with the default 4 MiB the
		// flush/compaction lottery dominates short windows.
		MemTableSize: 32 << 20,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	mgr := txn.NewManager(txn.Config{
		DB:          db,
		LockTimeout: 2 * time.Second,
		WaitStable:  mode == core.ModeSconeEncStab,
	})
	return &singleNode{mode: mode, rt: rt, db: db, mgr: mgr, dir: dir}, nil
}

// close releases the node.
func (n *singleNode) close() {
	n.db.Close()
	os.RemoveAll(n.dir)
}

// latencyCounter stabilizes after a fixed delay, modelling the counter
// service round-trip without running replicas.
type latencyCounter struct {
	d time.Duration
}

// newLatencyCounter builds one.
func newLatencyCounter(d time.Duration) lsm.TrustedCounter {
	return &latencyCounter{d: d}
}

// Stabilize implements lsm.TrustedCounter.
func (c *latencyCounter) Stabilize(uint64) {}

// WaitStable implements lsm.TrustedCounter: the protocol's two rounds.
func (c *latencyCounter) WaitStable(uint64) error {
	time.Sleep(c.d)
	return nil
}

// StableValue implements lsm.TrustedCounter.
func (c *latencyCounter) StableValue() uint64 { return ^uint64(0) >> 1 }

// singleBegin adapts the manager for the workload, selecting concurrency
// control.
func singleBegin(mgr *txn.Manager, optimistic bool) workload.Begin {
	if optimistic {
		return func() workload.Txn { return mgr.BeginOptimistic(nil) }
	}
	return func() workload.Txn { return mgr.BeginPessimistic(nil) }
}

// RunSingleYCSB measures all six versions under YCSB at readRatio.
// Versions are measured in interleaved rounds and the median round is
// reported, so machine noise (CPU steal on shared hosts) hits every
// version equally instead of corrupting whichever one drew the bad
// window.
func RunSingleYCSB(cfg SingleConfig, readRatio float64, optimistic bool) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	return runInterleaved(cfg, func(n *singleNode, roundCfg SingleConfig) (Measurement, error) {
		return runSingleYCSB(n, roundCfg, readRatio, optimistic)
	}, func(n *singleNode) error {
		return preloadYCSB(n, readRatio)
	})
}

// rounds is the number of interleaved measurement rounds per version.
const rounds = 3

// runInterleaved builds all six versions, preloads each once, then
// measures them round-robin, reporting each version's median round.
func runInterleaved(cfg SingleConfig, run func(*singleNode, SingleConfig) (Measurement, error), preload func(*singleNode) error) ([]Measurement, error) {
	modes := core.AllModes()
	nodes := make([]*singleNode, len(modes))
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.close()
			}
		}
	}()
	for i, mode := range modes {
		n, err := newSingleNode(mode)
		if err != nil {
			return nil, err
		}
		nodes[i] = n
		if err := preload(n); err != nil {
			return nil, err
		}
	}
	roundCfg := cfg
	roundCfg.Duration = cfg.Duration / rounds
	if roundCfg.Duration < 300*time.Millisecond {
		roundCfg.Duration = 300 * time.Millisecond
	}
	samples := make([][]Measurement, len(modes))
	for r := 0; r < rounds; r++ {
		for i := range modes {
			// Settle accumulated LSM debt (flush + let compactions run)
			// so every version starts its round from comparable state.
			if err := nodes[i].db.Flush(); err != nil {
				return nil, err
			}
			time.Sleep(50 * time.Millisecond)
			m, err := run(nodes[i], roundCfg)
			if err != nil {
				return nil, err
			}
			samples[i] = append(samples[i], m)
		}
	}
	out := make([]Measurement, len(modes))
	for i, mode := range modes {
		m := medianByTps(samples[i])
		m.Label = mode.String()
		out[i] = m
	}
	return out, nil
}

// medianByTps picks the sample with the median throughput.
func medianByTps(ms []Measurement) Measurement {
	sorted := append([]Measurement(nil), ms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Tps < sorted[j].Tps })
	return sorted[len(sorted)/2]
}

// preloadYCSB loads the key space into one node.
func preloadYCSB(n *singleNode, readRatio float64) error {
	gen := workload.NewYCSB(workload.YCSBConfig{ReadRatio: readRatio}, 1)
	keys, val := gen.LoadKeys()
	b := lsm.NewBatch()
	for i, k := range keys {
		b.Put(k, val)
		if i%2000 == 1999 {
			if _, _, err := n.db.Apply(b); err != nil {
				return err
			}
			b = lsm.NewBatch()
		}
	}
	_, _, err := n.db.Apply(b)
	return err
}

// runSingleYCSB drives one version for one round.
func runSingleYCSB(n *singleNode, cfg SingleConfig, readRatio float64, optimistic bool) (Measurement, error) {
	gens := make([]*workload.YCSB, cfg.Clients)
	for i := range gens {
		gens[i] = workload.NewYCSB(workload.YCSBConfig{ReadRatio: readRatio}, int64(50+i))
	}
	begin := singleBegin(n.mgr, optimistic)
	m := drive(cfg.Clients, cfg.Duration, func(w int) error {
		tx := begin()
		for _, op := range gens[w].NextTxn() {
			if op.Read {
				if _, _, err := tx.Get(op.Key); err != nil {
					tx.Rollback()
					return err
				}
			} else if err := tx.Put(op.Key, op.Value); err != nil {
				tx.Rollback()
				return err
			}
		}
		return tx.Commit()
	})
	return m, nil
}

// RunSingleTPCC measures all six versions under TPC-C (10 warehouses),
// interleaved rounds with median selection (see RunSingleYCSB).
func RunSingleTPCC(cfg SingleConfig, optimistic bool) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	return runInterleaved(cfg, func(n *singleNode, roundCfg SingleConfig) (Measurement, error) {
		return runSingleTPCC(n, roundCfg, optimistic)
	}, preloadTPCC)
}

// preloadTPCC bulk-loads the scaled TPC-C population into one node.
func preloadTPCC(n *singleNode) error {
	loader := workload.NewTPCC(TPCCScale(10), 3)
	b := lsm.NewBatch()
	count := 0
	loadTx := &batchLoaderTxn{db: n.db, b: b, count: &count}
	return loader.Load(func() workload.Txn { return loadTx }, 4000)
}

// runSingleTPCC drives one version for one round.
func runSingleTPCC(n *singleNode, cfg SingleConfig, optimistic bool) (Measurement, error) {
	scale := TPCCScale(10)
	drivers := make([]*workload.TPCC, cfg.Clients)
	for i := range drivers {
		drivers[i] = workload.NewTPCC(scale, int64(400+i))
	}
	begin := singleBegin(n.mgr, optimistic)
	m := drive(cfg.Clients, cfg.Duration, func(w int) error {
		d := drivers[w]
		home := 1 + (w % scale.Warehouses)
		err := d.Run(begin, d.NextType(), home)
		if errors.Is(err, workload.ErrAbortedByUser) {
			return nil
		}
		if errors.Is(err, txn.ErrLockTimeout) || errors.Is(err, txn.ErrConflict) {
			return err // counted as aborts
		}
		return err
	})
	return m, nil
}

// batchLoaderTxn adapts the engine's direct batch path to workload.Txn
// for loading.
type batchLoaderTxn struct {
	db    *lsm.DB
	b     *lsm.Batch
	count *int
}

// Get implements workload.Txn (loader never reads).
func (t *batchLoaderTxn) Get([]byte) ([]byte, bool, error) { return nil, false, nil }

// Put implements workload.Txn.
func (t *batchLoaderTxn) Put(key, value []byte) error {
	t.b.Put(key, value)
	*t.count++
	if *t.count%4000 == 0 {
		if _, _, err := t.db.Apply(t.b); err != nil {
			return err
		}
		t.b.Reset()
	}
	return nil
}

// Commit implements workload.Txn.
func (t *batchLoaderTxn) Commit() error {
	if t.b.Count() == 0 {
		return nil
	}
	_, _, err := t.db.Apply(t.b)
	t.b.Reset()
	return err
}

// Rollback implements workload.Txn.
func (t *batchLoaderTxn) Rollback() error {
	t.b.Reset()
	return nil
}

// PrintFig6 renders a pessimistic panel.
func PrintFig6(workloadName string, ms []Measurement) string {
	return Table(fmt.Sprintf("Figure 6: single-node pessimistic txns, %s", workloadName), ms)
}

// PrintFig7 renders an optimistic panel.
func PrintFig7(workloadName string, ms []Measurement) string {
	return Table(fmt.Sprintf("Figure 7: single-node optimistic txns, %s", workloadName), ms)
}
