package bench

import "sync/atomic"

// atomicAdd increments *v atomically and returns the new value.
func atomicAdd(v *uint64) uint64 { return atomic.AddUint64(v, 1) }
