package bench

import (
	"fmt"

	"treaty/internal/core"
)

// Write-path group-commit smoke: a short write-heavy (YCSB 20%R,
// fig5-shaped) distributed run at the full security mode, reporting the
// group-commit and counter-amortization evidence alongside throughput.
// CI runs this as the bench-smoke write panel so write-path regressions
// (group commit silently degrading to per-append forces, or counter
// rounds climbing back to one-per-commit) are visible pre-merge.

// WritePathResult summarizes one write-path smoke run.
type WritePathResult struct {
	// Tps is committed transactions per second.
	Tps float64
	// GroupCount is the number of Clog commit groups observed across the
	// cluster; zero means the run was vacuous (no coordinator records
	// were group-committed at all).
	GroupCount uint64
	// GroupP95 and GroupMax summarize the per-group size distribution
	// (cluster-wide worst node). P95 > 1 shows cross-transaction
	// batching engaged.
	GroupP95 float64
	GroupMax float64
	// ClogAppends and ClogSyncs are cluster totals; their ratio is the
	// amortization factor of the leader's one-fsync-per-group.
	ClogAppends uint64
	ClogSyncs   uint64
	// CounterRoundsPerTxn is trusted-counter protocol rounds divided by
	// committed transactions, cluster-wide (< 1 means one ROTE round
	// covered several commits, §VI).
	CounterRoundsPerTxn float64
}

// RunWritePathSmoke boots a full-security cluster, drives the write-heavy
// distributed YCSB panel, and digests the write-path metrics.
func RunWritePathSmoke(cfg DistConfig) (WritePathResult, error) {
	cfg = cfg.withDefaults()
	c, err := newBenchCluster(core.ModeSconeEncStab, cfg.Nodes, cfg.BlockCacheBytes, cfg.Replicate)
	if err != nil {
		return WritePathResult{}, err
	}
	m, err := runDistYCSB(c, cfg, 0.2)
	rep := CaptureMetrics("write-path", c)
	c.Stop()
	if err != nil {
		return WritePathResult{}, err
	}

	r := WritePathResult{Tps: m.Tps}
	var committed, rounds uint64
	for _, d := range rep.Nodes {
		committed += d.TxCommitted
		rounds += d.CounterRounds
		r.ClogAppends += d.ClogAppends
		r.ClogSyncs += d.ClogSyncs
		if d.ClogSyncs > 0 {
			r.GroupCount += d.ClogSyncs
		}
		if d.ClogGroupP95 > r.GroupP95 {
			r.GroupP95 = d.ClogGroupP95
		}
		if d.ClogGroupMax > r.GroupMax {
			r.GroupMax = d.ClogGroupMax
		}
	}
	if committed > 0 {
		r.CounterRoundsPerTxn = float64(rounds) / float64(committed)
	}
	return r, nil
}

// PrintWritePath renders the smoke result.
func PrintWritePath(r WritePathResult) string {
	return fmt.Sprintf(
		"Write path: %.1f tps, clog groups=%d (p95=%.0f max=%.0f), appends/syncs=%d/%d, counter rounds/txn=%.3f",
		r.Tps, r.GroupCount, r.GroupP95, r.GroupMax, r.ClogAppends, r.ClogSyncs, r.CounterRoundsPerTxn)
}
