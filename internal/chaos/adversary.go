package chaos

import (
	"fmt"
	"time"

	"treaty/internal/simnet"
)

// Network-adversary faults: rounds that drive the simnet adversary
// building blocks (Delayer, duplication, Recorder replay, Corrupter,
// partitions) against live 2PC traffic. Unlike the knob-based
// chaosAdversary faults, these install real simnet adversaries into the
// harness's Holder slot, exercising the exact attack surface the sealed
// channel (AEAD + per-op replay cache) is supposed to neutralize. The
// audited soak then proves neutralization end to end: whatever the
// adversary did, the committed history stayed serializable.

// advDelayFault holds every packet for a fixed delay — long enough to
// push calls into their timeout/retry paths without dropping anything.
type advDelayFault struct{ delay time.Duration }

func (f advDelayFault) Name() string { return fmt.Sprintf("adv-delay-%v", f.delay) }
func (f advDelayFault) Inject(h *Harness) {
	h.hold.Set(&simnet.Delayer{Delay: f.delay})
}
func (f advDelayFault) Lift(h *Harness) error {
	h.hold.Set(nil)
	return nil
}

// advDupFault delivers every packet three times (original + 2): the
// (node, tx, op) replay cache must dedup every duplicate request and
// the response path must tolerate stale responses.
type advDupFault struct{}

func (advDupFault) Name() string      { return "adv-duplicate" }
func (advDupFault) Inject(h *Harness) { h.adv.set(0, 0, 2) }
func (advDupFault) Lift(h *Harness) error {
	h.adv.reset()
	return nil
}

// advReplayFault records the round's traffic and replays the entire
// capture — requests and responses, impersonating the original senders
// — after the round's traffic stops. Replayed requests must hit the
// dedup cache (or execute as garbage transactions the janitor
// reclaims); replayed responses must land as stale. The subsequent
// drain/verify/audit proves none of it perturbed committed state.
type advReplayFault struct{ rec *simnet.Recorder }

func (f *advReplayFault) Name() string { return "adv-replay" }
func (f *advReplayFault) Inject(h *Harness) {
	f.rec = &simnet.Recorder{Limit: 4096}
	h.hold.Set(f.rec)
}
func (f *advReplayFault) Lift(h *Harness) error {
	h.hold.Set(nil)
	if err := f.rec.Replay(h.cluster.Net()); err != nil {
		return fmt.Errorf("chaos: replaying %d captured packets: %w", len(f.rec.Captured()), err)
	}
	h.cfg.Logf("chaos: replayed %d captured packets", len(f.rec.Captured()))
	return nil
}

// advCorruptFault flips a byte in a fraction of packets. Every corrupted
// sealed message must fail authentication (erpc.msg.auth_dropped) —
// never decode into a different request.
type advCorruptFault struct{ seed int64 }

func (f advCorruptFault) Name() string { return "adv-corrupt" }
func (f advCorruptFault) Inject(h *Harness) {
	h.hold.Set(simnet.NewCorrupter(0.20, f.seed))
}
func (f advCorruptFault) Lift(h *Harness) error {
	h.hold.Set(nil)
	return nil
}

// AdversaryScript builds the network-adversary round mix: delay,
// duplication, capture-and-replay, a partition, payload corruption, and
// the combined delay+dup+loss round — cycled across nodes. seed keys
// the corrupter so runs replay deterministically.
func AdversaryScript(rounds, nodes int, seed int64) []Fault {
	if nodes < 2 {
		nodes = 2
	}
	script := make([]Fault, 0, rounds)
	for i := 0; len(script) < rounds; i++ {
		cycle := []Fault{
			advDelayFault{delay: 3 * time.Millisecond},
			advDupFault{},
			&advReplayFault{},
			partitionFault{node: i % nodes},
			advCorruptFault{seed: seed + int64(i)},
			delayDupFault{},
		}
		for _, f := range cycle {
			if len(script) == rounds {
				break
			}
			script = append(script, f)
		}
	}
	return script
}
