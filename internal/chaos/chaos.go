// Package chaos is an end-to-end fault-injection soak harness for the
// Treaty cluster: scripted rounds of network adversity (loss, delay,
// duplication, partitions) and node crash-restarts run against a live
// cluster while workers execute a bank-transfer workload whose global
// invariant — the sum of all balances never changes — catches lost or
// partial writes. After every round the harness forces recovery, waits
// for the cluster to quiesce, and asserts that no request-lifecycle
// state leaked: zero pending RPCs, zero active participant transactions,
// zero undecided coordinator entries.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"treaty/internal/audit"
	"treaty/internal/core"
	"treaty/internal/obs"
	"treaty/internal/simnet"
	"treaty/internal/twopc"
	"treaty/internal/vfs"
	"treaty/internal/workload"
)

// Config tunes a soak run. The zero value of every field selects a
// default sized for an in-process 3-node cluster.
type Config struct {
	// Nodes is the cluster size (0 = 3).
	Nodes int
	// Accounts is the number of bank accounts (0 = 32).
	Accounts int
	// InitialBalance funds each account (0 = 1000).
	InitialBalance int64
	// Workers is the number of concurrent transfer loops (0 = 4).
	Workers int
	// Rounds is the number of fault rounds to run (0 = 20).
	Rounds int
	// RoundDuration is how long workers run under each fault (0 = 400ms).
	RoundDuration time.Duration
	// TxnTimeout bounds 2PC round-trips (0 = 250ms) — short, so calls
	// into faulted nodes abort quickly instead of stalling the round.
	TxnTimeout time.Duration
	// LockTimeout bounds lock waits (0 = 150ms).
	LockTimeout time.Duration
	// IdleTimeout is the participant janitor reclaim age (0 = 1s).
	IdleTimeout time.Duration
	// DrainTimeout bounds post-round quiescence (0 = 15s); it must cover
	// a janitor sweep (IdleTimeout plus a tick).
	DrainTimeout time.Duration
	// Mode is the cluster security mode (0 = ModeNativeTreatyEnc: secure
	// RPC and encrypted storage without TEE overhead or an external
	// counter service, the fastest full-protocol configuration).
	Mode core.SecurityMode
	// Seed makes the run reproducible (0 = 1).
	Seed int64
	// Logf receives progress lines (nil = discard).
	Logf func(format string, args ...any)
	// DiskFaults interposes a fault-injecting filesystem under every
	// node's durable writes so DiskFaultScript rounds (slow disk, ENOSPC,
	// fsync failure, bit rot) can drive it. The injector survives node
	// restarts, so its cumulative fault counters span incarnations.
	DiskFaults bool
	// MemTableSize overrides the flush threshold; disk-fault runs set it
	// small so rounds actually reach the SSTable read/write paths.
	MemTableSize int64
	// ClogSync enables per-append Clog fsync (the crash-model soak needs
	// acknowledged coordinator records to be power-cut durable).
	ClogSync bool
	// Audit records every client-observed operation into an
	// audit.Recorder and runs the serialization-graph checker at the end
	// of the soak: stale reads, lost updates, write skew, and dependency
	// cycles become hard failures instead of silently passing the
	// balance sum.
	Audit bool
	// Replicate assigns every slot a backup and ships commit groups to
	// it before the primary's counters stabilize, so failover faults can
	// promote a backup instead of restarting the dead node.
	Replicate bool
}

// SeedFromEnv returns the soak seed: the TREATY_SEED environment
// variable when set (so a failure's printed seed replays exactly), else
// def. Invalid values fall back to def.
func SeedFromEnv(def int64) int64 {
	if s := os.Getenv("TREATY_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v != 0 {
			return v
		}
	}
	return def
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Accounts == 0 {
		c.Accounts = 32
	}
	if c.InitialBalance == 0 {
		c.InitialBalance = 1000
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 20
	}
	if c.RoundDuration == 0 {
		c.RoundDuration = 400 * time.Millisecond
	}
	if c.TxnTimeout == 0 {
		c.TxnTimeout = 250 * time.Millisecond
	}
	if c.LockTimeout == 0 {
		c.LockTimeout = 150 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.Mode == 0 {
		c.Mode = core.ModeNativeTreatyEnc
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// RoundStats summarizes one fault round.
type RoundStats struct {
	// Fault names the injected fault.
	Fault string
	// Commits and Aborts count worker transaction outcomes.
	Commits, Aborts uint64
	// DrainTime is how long quiescence took after the fault lifted.
	DrainTime time.Duration
}

// Harness owns the cluster, the fault adversary, and the workload.
type Harness struct {
	cfg     Config
	cluster *core.Cluster
	adv     *chaosAdversary
	// hold is a second, swappable adversary slot chained after adv:
	// adversary-script rounds install simnet building blocks (Recorder,
	// Corrupter, Delayer) here without disturbing the knob adversary.
	hold *simnet.Holder
	// rec captures the client-observed history when Config.Audit is set
	// (nil otherwise; the recorder API is nil-safe).
	rec *audit.Recorder
	// fsByNode holds each node's disk-fault injector (nil without
	// Config.DiskFaults). Indexed by node id; shared across restarts.
	fsByNode []*vfs.FaultFS

	// nodesMu guards live-node access: workers take the read side to
	// pick a coordinator; crash/restart take the write side.
	nodesMu sync.RWMutex
	// failedOver marks nodes replaced by a promoted backup: they stay
	// down for the rest of the soak by design, so quiescence checks must
	// not wait for them to come back.
	failedOver map[int]bool

	// committed[i] counts worker i's observed successful commits; the
	// database's per-worker commit counter must never fall below it.
	committed []uint64
	aborted   []uint64
}

// New boots a cluster and seeds the accounts.
func New(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	var fsByNode []*vfs.FaultFS
	var nodeFS func(i int) vfs.FS
	if cfg.DiskFaults {
		fsByNode = make([]*vfs.FaultFS, cfg.Nodes)
		for i := range fsByNode {
			fsByNode[i] = vfs.NewFaultFS(vfs.OS{})
			fsByNode[i].Seed(cfg.Seed + int64(i))
		}
		nodeFS = func(i int) vfs.FS { return fsByNode[i] }
	}
	cluster, err := core.NewCluster(core.ClusterOptions{
		Nodes:        cfg.Nodes,
		Mode:         cfg.Mode,
		LockTimeout:  cfg.LockTimeout,
		TxnTimeout:   cfg.TxnTimeout,
		IdleTimeout:  cfg.IdleTimeout,
		MemTableSize: cfg.MemTableSize,
		Seed:         cfg.Seed,
		NodeFS:       nodeFS,
		ClogSync:     cfg.ClogSync,
		Replicate:    cfg.Replicate,
	})
	if err != nil {
		return nil, err
	}
	h := &Harness{
		cfg:        cfg,
		cluster:    cluster,
		adv:        newChaosAdversary(cfg.Seed),
		hold:       &simnet.Holder{},
		committed:  make([]uint64, cfg.Workers),
		aborted:    make([]uint64, cfg.Workers),
		fsByNode:   fsByNode,
		failedOver: make(map[int]bool),
	}
	if cfg.Audit {
		h.rec = audit.NewRecorder()
	}
	cluster.Net().SetAdversary(simnet.Chain{h.adv, h.hold})
	cfg.Logf("chaos: seed=%d audit=%v (set TREATY_SEED=%d to replay)", cfg.Seed, cfg.Audit, cfg.Seed)
	if err := h.seedAccounts(); err != nil {
		_ = cluster.Stop()
		return nil, err
	}
	// Everything after this fence may assume the seed writes are durable
	// and visible: a later read missing a seeded key is a violation.
	h.rec.Fence()
	return h, nil
}

// Close tears the cluster down.
func (h *Harness) Close() error { return h.cluster.Stop() }

// Cluster exposes the underlying cluster (faults manipulate it).
func (h *Harness) Cluster() *core.Cluster { return h.cluster }

// NodeFS returns node i's disk-fault injector (nil without DiskFaults).
func (h *Harness) NodeFS(i int) *vfs.FaultFS {
	if h.fsByNode == nil {
		return nil
	}
	return h.fsByNode[i]
}

func accountKey(i int) []byte { return workload.BankAccountKey(i) }
func workerKey(i int) []byte  { return workload.BankWorkerKey(i) }

// outcomeOf maps a finished distributed transaction to its audit
// classification. err is what the client saw from Commit (nil = ok);
// the mapping leans on twopc's soundness guarantee: only definite
// aborts (rollback before prepare) may claim OutcomeAborted.
func outcomeOf(txn *twopc.DistTxn, err error) audit.Outcome {
	if err == nil {
		return audit.OutcomeCommitted
	}
	switch txn.Outcome() {
	case twopc.TxnAborted:
		return audit.OutcomeAborted
	case twopc.TxnCommitted:
		return audit.OutcomeCommitted
	default:
		return audit.OutcomeIndeterminate
	}
}

// seedAccounts funds every account and zeroes every worker counter in
// one transaction (a single transaction spanning all accounts is fine
// on an unfaulted cluster). The seed writes anchor every audited
// version chain.
func (h *Harness) seedAccounts() error {
	for attempt := 0; attempt < 5; attempt++ {
		rec := h.rec.Begin(-1)
		txn := h.cluster.Node(0).Begin(nil)
		ok := true
		for i := 0; i < h.cfg.Accounts && ok; i++ {
			v := rec.Write(accountKey(i), strconv.FormatInt(h.cfg.InitialBalance, 10))
			ok = txn.Put(accountKey(i), v) == nil
		}
		for w := 0; w < h.cfg.Workers && ok; w++ {
			v := rec.Write(workerKey(w), "0")
			ok = txn.Put(workerKey(w), v) == nil
		}
		if ok {
			err := txn.Commit()
			rec.End(outcomeOf(txn, err))
			if err == nil {
				return nil
			}
		} else {
			_ = txn.Rollback()
			rec.End(audit.OutcomeAborted)
		}
	}
	return fmt.Errorf("chaos: seeding accounts failed")
}

// pickNode returns a live node to coordinate a transaction, or nil when
// every node is down (the worker then just retries later). start seeds
// the rotation so workers spread across coordinators.
func (h *Harness) pickNode(start int) *core.Node {
	h.nodesMu.RLock()
	defer h.nodesMu.RUnlock()
	for k := 0; k < h.cluster.Nodes(); k++ {
		if n := h.cluster.Node((start + k) % h.cluster.Nodes()); n != nil {
			return n
		}
	}
	return nil
}

// crashNode crash-stops node i under the write lock so no worker holds a
// stale pointer mid-pick.
func (h *Harness) crashNode(i int) {
	h.nodesMu.Lock()
	h.cluster.CrashNode(i)
	h.nodesMu.Unlock()
}

// restartNode reboots node i and runs recovery; retried because recovery
// needs the rest of the cluster responsive.
func (h *Harness) restartNode(i int) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		h.nodesMu.Lock()
		_, err := h.cluster.RestartNode(i)
		h.nodesMu.Unlock()
		if err == nil {
			return nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("chaos: restarting node %d: %w", i, lastErr)
}

// transfer runs one bank transfer plus the worker's commit-counter
// read-modify-write inside a single distributed transaction. Every
// operation is recorded into the audit history (when enabled), and
// every write is an RMW of what the transaction just read — that
// parentage is what lets the checker reconstruct version orders.
func (h *Harness) transfer(worker int, tr workload.BankTransfer, start int) error {
	n := h.pickNode(start)
	if n == nil {
		return fmt.Errorf("chaos: no live node")
	}
	rec := h.rec.Begin(worker)
	txn := n.Begin(nil)
	abort := func(err error) error {
		_ = txn.Rollback()
		rec.End(audit.OutcomeAborted)
		return err
	}
	src, err := readBalance(txn, rec, tr.From)
	if err != nil {
		return abort(err)
	}
	dst, err := readBalance(txn, rec, tr.To)
	if err != nil {
		return abort(err)
	}
	if err := txn.Put(accountKey(tr.From), rec.Write(accountKey(tr.From), strconv.FormatInt(src-tr.Amount, 10))); err != nil {
		return abort(err)
	}
	if err := txn.Put(accountKey(tr.To), rec.Write(accountKey(tr.To), strconv.FormatInt(dst+tr.Amount, 10))); err != nil {
		return abort(err)
	}
	// The commit counter rides in the same transaction: if the commit is
	// durable, this write must be durable too (the "no committed write
	// lost" probe). An RMW of the stored counter, which may be AHEAD of
	// the worker's observed count (recovery can land commits the client
	// saw as failed) but never behind.
	cnt, err := readCounter(txn, rec, worker)
	if err != nil {
		return abort(err)
	}
	if err := txn.Put(workerKey(worker), rec.Write(workerKey(worker), strconv.FormatUint(cnt+1, 10))); err != nil {
		return abort(err)
	}
	err = txn.Commit()
	rec.End(outcomeOf(txn, err))
	return err
}

// readBalance reads one account inside txn, recording the observation.
func readBalance(txn *twopc.DistTxn, rec *audit.TxnRec, acct int) (int64, error) {
	v, found, err := txn.Get(accountKey(acct))
	if err != nil {
		return 0, err
	}
	rec.Read(accountKey(acct), v, found)
	if !found {
		return 0, fmt.Errorf("chaos: account %d missing", acct)
	}
	return strconv.ParseInt(audit.Base(string(v)), 10, 64)
}

// readCounter reads one worker's commit counter, recording the
// observation. A missing counter reads as zero (pre-audit histories
// started it lazily), though seedAccounts now always writes it.
func readCounter(txn *twopc.DistTxn, rec *audit.TxnRec, worker int) (uint64, error) {
	v, found, err := txn.Get(workerKey(worker))
	if err != nil {
		return 0, err
	}
	rec.Read(workerKey(worker), v, found)
	if !found {
		return 0, nil
	}
	return strconv.ParseUint(audit.Base(string(v)), 10, 64)
}

// runTraffic runs the worker pool for d, returning aggregate outcomes.
func (h *Harness) runTraffic(d time.Duration) (commits, aborts uint64) {
	var wg sync.WaitGroup
	stop := time.Now().Add(d)
	results := make([]struct{ c, a uint64 }, h.cfg.Workers)
	for w := 0; w < h.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bank := workload.NewBank(
				workload.BankConfig{Accounts: h.cfg.Accounts},
				h.cfg.Seed+int64(w)*7919+int64(h.committed[w]))
			for time.Now().Before(stop) {
				if err := h.transfer(w, bank.Next(), bank.Intn(h.cfg.Nodes)); err != nil {
					h.aborted[w]++
					results[w].a++
					continue
				}
				h.committed[w]++
				results[w].c++
			}
		}(w)
	}
	wg.Wait()
	for _, r := range results {
		commits += r.c
		aborts += r.a
	}
	return commits, aborts
}

// recoverAll re-drives coordinator recovery and participant resolution on
// every live node; errors are tolerated (the drain loop retries).
func (h *Harness) recoverAll() {
	h.nodesMu.RLock()
	live := h.cluster.LiveNodes()
	h.nodesMu.RUnlock()
	for _, n := range live {
		if err := n.Recover(); err != nil {
			h.cfg.Logf("chaos: recover node %d: %v", n.ID(), err)
		}
	}
}

// leaks reports request-lifecycle state that should be empty at
// quiescence, or "" when everything drained.
func (h *Harness) leaks() string {
	h.nodesMu.RLock()
	defer h.nodesMu.RUnlock()
	for i := 0; i < h.cluster.Nodes(); i++ {
		n := h.cluster.Node(i)
		if n == nil {
			if h.failedOver[i] {
				continue // replaced by its promoted backup, never returns
			}
			return fmt.Sprintf("node %d still down", i)
		}
		if p := n.Endpoint().PendingCount(); p != 0 {
			return fmt.Sprintf("node %d: %d pending RPCs", i, p)
		}
		if a := n.Participant().ActiveCount(); a != 0 {
			return fmt.Sprintf("node %d: %d active participant txns", i, a)
		}
		if pr := n.Coordinator().PreparedCount(); pr != 0 {
			return fmt.Sprintf("node %d: %d undecided coordinator txns", i, pr)
		}
	}
	return ""
}

// drain forces recovery until the cluster quiesces: no pending RPCs, no
// active participant transactions (the janitor reclaims abandoned ones),
// no undecided coordinator entries.
func (h *Harness) drain() (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(h.cfg.DrainTimeout)
	h.recoverAll()
	for {
		why := h.leaks()
		if why == "" {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return time.Since(start), fmt.Errorf("chaos: cluster did not quiesce: %s", why)
		}
		time.Sleep(100 * time.Millisecond)
		h.recoverAll()
	}
}

// verify checks the global invariants on a quiesced cluster: the balance
// sum is conserved, and no worker's observed commit was lost. The
// verification reads are themselves recorded as a read-only audited
// transaction — a stale post-round state becomes an anti-dependency
// cycle the checker reports, not just a wrong sum.
func (h *Harness) verify() error {
	var txn *twopc.DistTxn
	var sum int64
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		rec := h.rec.Begin(-2)
		coord := h.pickNode(attempt)
		if coord == nil {
			return fmt.Errorf("chaos: no live node to verify from")
		}
		txn = coord.Begin(nil)
		sum = 0
		ok := true
		for i := 0; i < h.cfg.Accounts; i++ {
			bal, err := readBalance(txn, rec, i)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			sum += bal
		}
		if !ok {
			_ = txn.Rollback()
			rec.End(audit.OutcomeAborted)
			time.Sleep(50 * time.Millisecond)
			continue
		}

		counters := make([]uint64, h.cfg.Workers)
		for w := 0; w < h.cfg.Workers; w++ {
			counters[w], lastErr = readCounter(txn, rec, w)
			if lastErr != nil {
				ok = false
				break
			}
		}
		if !ok {
			_ = txn.Rollback()
			rec.End(audit.OutcomeAborted)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		err := txn.Commit()
		rec.End(outcomeOf(txn, err))
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}

		if want := int64(h.cfg.Accounts) * h.cfg.InitialBalance; sum != want {
			return fmt.Errorf("chaos: balance invariant violated: sum=%d want=%d", sum, want)
		}
		for w := 0; w < h.cfg.Workers; w++ {
			// The database may be AHEAD of the worker (a commit the worker
			// saw as failed can still land via recovery) but never behind:
			// behind means a committed write was lost.
			if counters[w] < h.committed[w] {
				return fmt.Errorf("chaos: lost committed write: worker %d counter=%d observed commits=%d",
					w, counters[w], h.committed[w])
			}
		}
		return nil
	}
	return fmt.Errorf("chaos: verification transaction kept aborting: %w", lastErr)
}

// nodeMetricLaws checks the metric conservation laws on one node's
// snapshot, or returns "" when they all hold:
//
//   - 2PC: tx.begun == tx.committed + tx.aborted + tx.inflight — every
//     coordinated transaction is accounted for exactly once (recovery
//     replays are deliberately outside the law, see twopc.recover.*).
//   - eRPC: req.enqueued == req.delivered + req.cancelled + req.orphaned
//   - req.pending, for the node endpoint and (in stab mode) the
//     counter-service endpoint.
//   - WAL: the appended LSN never trails the stabilized counter — the
//     counter only advances after a durable append.
func nodeMetricLaws(addr string, s obs.Snapshot) string {
	begun := s.Counter("twopc.tx.begun")
	committed := s.Counter("twopc.tx.committed")
	aborted := s.Counter("twopc.tx.aborted")
	inflight := s.Gauge("twopc.tx.inflight")
	if inflight < 0 || begun != committed+aborted+uint64(inflight) {
		return fmt.Sprintf("%s: 2PC law violated: begun=%d committed=%d aborted=%d inflight=%d",
			addr, begun, committed, aborted, inflight)
	}
	for _, pfx := range []string{"erpc", "erpc.ctr"} {
		enq := s.Counter(pfx + ".req.enqueued")
		resolved := s.Counter(pfx+".req.delivered") + s.Counter(pfx+".req.cancelled") +
			s.Counter(pfx+".req.orphaned")
		pending := s.Gauge(pfx + ".req.pending")
		if pending < 0 || enq != resolved+uint64(pending) {
			return fmt.Sprintf("%s: %s request law violated: enqueued=%d resolved=%d pending=%d",
				addr, pfx, enq, resolved, pending)
		}
	}
	if app, stable := s.Gauge("lsm.wal.appended_lsn"), s.Gauge("lsm.wal.stable_lsn"); app < stable {
		return fmt.Sprintf("%s: WAL law violated: appended_lsn=%d < stable_lsn=%d", addr, app, stable)
	}
	// Replication: every shipped commit group resolves to exactly one of
	// acked, failed (degrade), or skipped (no backup bound yet), and
	// every group a backup received was either acked or rejected. Both
	// hold trivially at zero when replication is off.
	shipped := s.Counter("repl.ship_groups")
	shipRes := s.Counter("repl.ship_acked") + s.Counter("repl.ship_failed") + s.Counter("repl.ship_skipped")
	if shipped != shipRes {
		return fmt.Sprintf("%s: repl ship law violated: groups=%d acked+failed+skipped=%d",
			addr, shipped, shipRes)
	}
	recv := s.Counter("repl.recv_groups")
	recvRes := s.Counter("repl.recv_acked") + s.Counter("repl.recv_rejected")
	if recv != recvRes {
		return fmt.Sprintf("%s: repl recv law violated: groups=%d acked+rejected=%d",
			addr, recv, recvRes)
	}
	// Block cache (only when enabled: capacity gauge is 0 otherwise):
	// every lookup resolves to exactly one of hit or miss, resident bytes
	// stay within capacity, and every quarantined table purged its cached
	// blocks before the corruption error propagated.
	if capacity := s.Gauge("lsm.cache.capacity_bytes"); capacity > 0 {
		lookups := s.Counter("lsm.cache.lookups")
		hits := s.Counter("lsm.cache.hits")
		misses := s.Counter("lsm.cache.misses")
		if hits+misses != lookups {
			return fmt.Sprintf("%s: cache law violated: hits=%d + misses=%d != lookups=%d",
				addr, hits, misses, lookups)
		}
		if bytes := s.Gauge("lsm.cache.bytes"); bytes < 0 || bytes > capacity {
			return fmt.Sprintf("%s: cache law violated: bytes=%d outside [0, capacity=%d]",
				addr, bytes, capacity)
		}
		if q, p := s.Counter("lsm.quarantine.tables"), s.Counter("lsm.cache.quarantine_purges"); p != q {
			return fmt.Sprintf("%s: cache law violated: quarantine_purges=%d != quarantined tables=%d",
				addr, p, q)
		}
	}
	return ""
}

// checkMetricLaws asserts the conservation laws on every live node. A
// snapshot is not one atomic cut across a node's atomics, so a transient
// imbalance right after quiescence is legal; the check retries briefly
// and only a persistent violation is fatal.
func (h *Harness) checkMetricLaws() error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		why := ""
		h.nodesMu.RLock()
		for i := 0; i < h.cluster.Nodes() && why == ""; i++ {
			if n := h.cluster.Node(i); n != nil {
				why = nodeMetricLaws(n.Addr(), n.Snapshot())
			}
		}
		h.nodesMu.RUnlock()
		if why == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %s", why)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Auditor exposes the history recorder (nil when Config.Audit is off);
// tests drive extra audited traffic through it.
func (h *Harness) Auditor() *audit.Recorder { return h.rec }

// AuditReport runs the serializability checker over the history so far
// (nil when auditing is off). Call at quiescence.
func (h *Harness) AuditReport() *audit.Report {
	if h.rec == nil {
		return nil
	}
	return audit.Check(h.rec.History())
}

// AuditCheck runs the checker and converts violations into an error
// carrying the reproduction seed.
func (h *Harness) AuditCheck() error {
	rep := h.AuditReport()
	if rep == nil {
		return nil
	}
	if open := h.rec.Open(); open != 0 {
		return fmt.Errorf("chaos: audit ran with %d transactions still open (TREATY_SEED=%d)", open, h.cfg.Seed)
	}
	h.cfg.Logf("chaos: %s", rep)
	if err := rep.Err(); err != nil {
		return fmt.Errorf("chaos: serializability violated (replay with TREATY_SEED=%d): %w", h.cfg.Seed, err)
	}
	return nil
}

// Run executes the scripted soak: for each fault, inject, run traffic,
// lift, drain, verify. It returns per-round stats and the first fatal
// invariant violation; with Config.Audit set the whole history must
// also pass the serializability checker. Any error names the seed that
// replays the run.
func (h *Harness) Run(script []Fault) ([]RoundStats, error) {
	stats, err := h.run(script)
	if err != nil {
		return stats, fmt.Errorf("%w [replay with TREATY_SEED=%d]", err, h.cfg.Seed)
	}
	if err := h.AuditCheck(); err != nil {
		return stats, err
	}
	return stats, nil
}

func (h *Harness) run(script []Fault) ([]RoundStats, error) {
	stats := make([]RoundStats, 0, len(script))
	for round, fault := range script {
		h.cfg.Logf("chaos: round %d/%d: %s", round+1, len(script), fault.Name())
		fault.Inject(h)
		commits, aborts := h.runTraffic(h.cfg.RoundDuration)
		if err := fault.Lift(h); err != nil {
			return stats, fmt.Errorf("chaos: round %d (%s): lifting fault: %w", round+1, fault.Name(), err)
		}
		drainTime, err := h.drain()
		if err != nil {
			return stats, fmt.Errorf("chaos: round %d (%s): %w", round+1, fault.Name(), err)
		}
		if err := h.verify(); err != nil {
			return stats, fmt.Errorf("chaos: round %d (%s): %w", round+1, fault.Name(), err)
		}
		if err := h.checkMetricLaws(); err != nil {
			return stats, fmt.Errorf("chaos: round %d (%s): %w", round+1, fault.Name(), err)
		}
		rs := RoundStats{Fault: fault.Name(), Commits: commits, Aborts: aborts, DrainTime: drainTime}
		stats = append(stats, rs)
		h.cfg.Logf("chaos: round %d/%d: %s: %d commits, %d aborts, drained in %v",
			round+1, len(script), fault.Name(), commits, aborts, drainTime)
	}
	if js, err := h.cluster.SnapshotJSON(); err == nil {
		h.cfg.Logf("chaos: final metrics snapshot:\n%s", js)
	}
	return stats, nil
}
