package chaos

import (
	"testing"

	"treaty/internal/audit"
)

// TestChaosSoak runs the scripted fault soak against a live 3-node
// cluster: every round injects one fault (30% loss, a partition, a
// coordinator or participant crash-restart, delay+duplication), runs the
// bank-transfer workload, lifts the fault, forces recovery, and asserts
// quiescence plus the balance and durability invariants. Short mode runs
// one full cycle of the fault mix.
func TestChaosSoak(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	h, err := New(Config{
		Rounds: rounds,
		Audit:  true,
		Seed:   SeedFromEnv(1),
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	stats, err := h.Run(DefaultScript(rounds, h.Cluster().Nodes()))
	if err != nil {
		t.Fatalf("soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatalf("workload never committed — the soak exercised nothing")
	}
	t.Logf("soak: %d rounds, %d total commits", len(stats), commits)

	// Run already failed on any serializability violation; make sure the
	// audit itself was non-vacuous: history captured, graph populated.
	rep := h.AuditReport()
	if rep == nil || rep.Committed == 0 || rep.Edges == 0 {
		t.Fatalf("audit vacuous: %v", rep)
	}
	t.Logf("%s", rep)

	// The post-soak cluster snapshot is non-empty and carries per-stage
	// 2PC latency histograms with real samples: at least one live node
	// coordinated committed transactions through the full stage machine.
	snap := h.Cluster().Snapshot()
	if len(snap) == 0 {
		t.Fatal("cluster snapshot empty after soak")
	}
	js, err := h.Cluster().SnapshotJSON()
	if err != nil || len(js) == 0 {
		t.Fatalf("snapshot JSON: %v (%d bytes)", err, len(js))
	}
	stageSamples := uint64(0)
	for addr, s := range snap {
		if law := nodeMetricLaws(addr, s); law != "" {
			t.Errorf("post-soak %s", law)
		}
		for _, stage := range []string{
			"twopc.stage.prepare", "twopc.stage.log-force",
			"twopc.stage.counter-stabilize", "twopc.stage.commit",
		} {
			stageSamples += snap[addr].Histograms[stage].Count
		}
	}
	if stageSamples == 0 {
		t.Error("no 2PC stage latency samples recorded across the cluster")
	}
}

// TestChaosSoakDisk runs the disk-adversity soak: slow devices, ENOSPC,
// fsync failures (fsyncgate semantics: the unsynced tail is dropped),
// read-side bit rot, and a boot-from-corrupted-storage refusal — each
// against live traffic, with the same conservation and no-lost-commit
// invariants as the network soak. `make soak-disk` runs it verbosely.
func TestChaosSoakDisk(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 6
	}
	h, err := New(Config{
		Rounds:     rounds,
		Audit:      true,
		Seed:       SeedFromEnv(2),
		DiskFaults: true,
		// Small memtables so rounds reach the SSTable write AND read
		// paths (bit rot is only observable on real block reads).
		MemTableSize: 16 << 10,
		ClogSync:     true,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	stats, err := h.Run(DiskFaultScript(rounds, h.Cluster().Nodes()))
	if err != nil {
		t.Fatalf("disk soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatal("workload never committed — the disk soak exercised nothing")
	}

	// The injectors must have actually fired: a soak whose fault counters
	// are all zero silently tested a healthy disk.
	var syncsFailed, rotted uint64
	for i := 0; i < h.Cluster().Nodes(); i++ {
		fs := h.NodeFS(i)
		syncsFailed += fs.SyncsFailed()
		rotted += fs.ReadsRotted()
	}
	if syncsFailed == 0 {
		t.Error("no fsync failures were injected across the whole soak")
	}
	if rotted == 0 {
		t.Error("no reads were bit-rotted across the whole soak")
	}
	t.Logf("disk soak: %d rounds, %d commits, %d failed syncs, %d rotted reads",
		len(stats), commits, syncsFailed, rotted)
	if rep := h.AuditReport(); rep == nil || rep.Committed == 0 {
		t.Fatalf("audit vacuous: %v", rep)
	}
}

// TestChaosSoakAdversary is the network-adversary soak: the simnet
// adversary building blocks (delay, duplication, capture-and-replay,
// partition, payload corruption) run against live 2PC traffic, and the
// full client-observed history must stay serializable. This is the
// end-to-end proof that the sealed channel (AEAD + per-op replay cache)
// neutralizes the adversary, not merely survives it.
func TestChaosSoakAdversary(t *testing.T) {
	rounds := 18
	if testing.Short() {
		rounds = 6 // one full cycle: every adversary fires at least once
	}
	seed := SeedFromEnv(3)
	h, err := New(Config{
		Rounds: rounds,
		Audit:  true,
		Seed:   seed,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	stats, err := h.Run(AdversaryScript(rounds, h.Cluster().Nodes(), seed))
	if err != nil {
		t.Fatalf("adversary soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatal("workload never committed — the adversary soak exercised nothing")
	}

	// Non-vacuity: the adversary must actually have hit the defenses.
	// No node crashed during this script, so the per-incarnation
	// counters span the whole soak.
	var replayHits, authDropped uint64
	for _, s := range h.Cluster().Snapshot() {
		replayHits += s.Counter("erpc.replay.hits")
		authDropped += s.Counter("erpc.msg.auth_dropped")
	}
	if replayHits == 0 {
		t.Error("no duplicate/replayed request was ever deduped — the replay adversary tested nothing")
	}
	if authDropped == 0 {
		t.Error("no corrupted message was ever rejected — the corrupter tested nothing")
	}
	rep := h.AuditReport()
	if rep == nil || rep.Committed == 0 || rep.Edges == 0 {
		t.Fatalf("audit vacuous: %v", rep)
	}
	t.Logf("adversary soak: %d rounds, %d commits, %d replay hits, %d auth drops; %s",
		len(stats), commits, replayHits, authDropped, rep)
}

// TestSeedFromEnv covers the deterministic-repro plumbing.
func TestSeedFromEnv(t *testing.T) {
	t.Setenv("TREATY_SEED", "")
	if got := SeedFromEnv(7); got != 7 {
		t.Fatalf("default seed = %d, want 7", got)
	}
	t.Setenv("TREATY_SEED", "12345")
	if got := SeedFromEnv(7); got != 12345 {
		t.Fatalf("env seed = %d, want 12345", got)
	}
	t.Setenv("TREATY_SEED", "not-a-number")
	if got := SeedFromEnv(7); got != 7 {
		t.Fatalf("invalid env seed = %d, want fallback 7", got)
	}
}

// TestMetricLawViolationDetected checks that the conservation checker
// actually fails on an imbalanced snapshot (the soak passing must mean
// the laws hold, not that the checker is vacuous).
func TestMetricLawViolationDetected(t *testing.T) {
	h, err := New(Config{Rounds: 1})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer h.Close()
	// A committed transaction makes begun == committed; bumping begun
	// behind the coordinator's back must trip the 2PC law.
	txn := h.Cluster().Node(0).Begin(nil)
	if err := txn.Put([]byte("law-probe"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if why := nodeMetricLaws("node-0", h.Cluster().Node(0).Snapshot()); why != "" {
		t.Fatalf("law violated on clean cluster: %s", why)
	}
	h.Cluster().Node(0).Metrics().Counter("twopc.tx.begun").Inc()
	if why := nodeMetricLaws("node-0", h.Cluster().Node(0).Snapshot()); why == "" {
		t.Fatal("checker missed a forced 2PC law violation")
	}
}

// TestDefaultScript checks script construction edge cases.
func TestDefaultScript(t *testing.T) {
	if got := len(DefaultScript(7, 3)); got != 7 {
		t.Fatalf("script length = %d, want 7", got)
	}
	if got := len(DefaultScript(0, 3)); got != 0 {
		t.Fatalf("script length = %d, want 0", got)
	}
	if got := len(AdversaryScript(7, 3, 1)); got != 7 {
		t.Fatalf("adversary script length = %d, want 7", got)
	}
	if got := len(AdversaryScript(0, 3, 1)); got != 0 {
		t.Fatalf("adversary script length = %d, want 0", got)
	}
}

// TestAuditViolationDetected proves the soak-side wiring is non-vacuous
// the same way TestMetricLawViolationDetected does for the metric laws:
// inject a lost update behind the harness's back and the audit check
// must fail.
func TestAuditViolationDetected(t *testing.T) {
	h, err := New(Config{Rounds: 1, Audit: true})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer h.Close()
	if err := h.AuditCheck(); err != nil {
		t.Fatalf("clean seeded cluster flagged: %v", err)
	}

	// Two clients both RMW the seed version of account 0: a fork in the
	// version chain (lost update) that balance conservation alone would
	// also catch, and — crucially — the audit must catch even though we
	// never run verify().
	rec := h.Auditor()
	seedVal := func() []byte {
		txn := h.Cluster().Node(0).Begin(nil)
		defer txn.Rollback()
		v, _, err := txn.Get(accountKey(0))
		if err != nil {
			t.Fatalf("read seed value: %v", err)
		}
		return v
	}()
	for i := 0; i < 2; i++ {
		tr := rec.Begin(i)
		tr.Read(accountKey(0), seedVal, true)
		tr.Write(accountKey(0), "999")
		tr.End(audit.OutcomeCommitted)
	}
	if err := h.AuditCheck(); err == nil {
		t.Fatal("audit checker missed a forced lost update")
	} else {
		t.Logf("caught as expected: %v", err)
	}
}
