package chaos

import (
	"testing"
)

// TestChaosSoak runs the scripted fault soak against a live 3-node
// cluster: every round injects one fault (30% loss, a partition, a
// coordinator or participant crash-restart, delay+duplication), runs the
// bank-transfer workload, lifts the fault, forces recovery, and asserts
// quiescence plus the balance and durability invariants. Short mode runs
// one full cycle of the fault mix.
func TestChaosSoak(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	h, err := New(Config{
		Rounds: rounds,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	stats, err := h.Run(DefaultScript(rounds, h.Cluster().Nodes()))
	if err != nil {
		t.Fatalf("soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatalf("workload never committed — the soak exercised nothing")
	}
	t.Logf("soak: %d rounds, %d total commits", len(stats), commits)

	// The post-soak cluster snapshot is non-empty and carries per-stage
	// 2PC latency histograms with real samples: at least one live node
	// coordinated committed transactions through the full stage machine.
	snap := h.Cluster().Snapshot()
	if len(snap) == 0 {
		t.Fatal("cluster snapshot empty after soak")
	}
	js, err := h.Cluster().SnapshotJSON()
	if err != nil || len(js) == 0 {
		t.Fatalf("snapshot JSON: %v (%d bytes)", err, len(js))
	}
	stageSamples := uint64(0)
	for addr, s := range snap {
		if law := nodeMetricLaws(addr, s); law != "" {
			t.Errorf("post-soak %s", law)
		}
		for _, stage := range []string{
			"twopc.stage.prepare", "twopc.stage.log-force",
			"twopc.stage.counter-stabilize", "twopc.stage.commit",
		} {
			stageSamples += snap[addr].Histograms[stage].Count
		}
	}
	if stageSamples == 0 {
		t.Error("no 2PC stage latency samples recorded across the cluster")
	}
}

// TestChaosSoakDisk runs the disk-adversity soak: slow devices, ENOSPC,
// fsync failures (fsyncgate semantics: the unsynced tail is dropped),
// read-side bit rot, and a boot-from-corrupted-storage refusal — each
// against live traffic, with the same conservation and no-lost-commit
// invariants as the network soak. `make soak-disk` runs it verbosely.
func TestChaosSoakDisk(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 6
	}
	h, err := New(Config{
		Rounds:     rounds,
		DiskFaults: true,
		// Small memtables so rounds reach the SSTable write AND read
		// paths (bit rot is only observable on real block reads).
		MemTableSize: 16 << 10,
		ClogSync:     true,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	stats, err := h.Run(DiskFaultScript(rounds, h.Cluster().Nodes()))
	if err != nil {
		t.Fatalf("disk soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatal("workload never committed — the disk soak exercised nothing")
	}

	// The injectors must have actually fired: a soak whose fault counters
	// are all zero silently tested a healthy disk.
	var syncsFailed, rotted uint64
	for i := 0; i < h.Cluster().Nodes(); i++ {
		fs := h.NodeFS(i)
		syncsFailed += fs.SyncsFailed()
		rotted += fs.ReadsRotted()
	}
	if syncsFailed == 0 {
		t.Error("no fsync failures were injected across the whole soak")
	}
	if rotted == 0 {
		t.Error("no reads were bit-rotted across the whole soak")
	}
	t.Logf("disk soak: %d rounds, %d commits, %d failed syncs, %d rotted reads",
		len(stats), commits, syncsFailed, rotted)
}

// TestMetricLawViolationDetected checks that the conservation checker
// actually fails on an imbalanced snapshot (the soak passing must mean
// the laws hold, not that the checker is vacuous).
func TestMetricLawViolationDetected(t *testing.T) {
	h, err := New(Config{Rounds: 1})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer h.Close()
	// A committed transaction makes begun == committed; bumping begun
	// behind the coordinator's back must trip the 2PC law.
	txn := h.Cluster().Node(0).Begin(nil)
	if err := txn.Put([]byte("law-probe"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if why := nodeMetricLaws("node-0", h.Cluster().Node(0).Snapshot()); why != "" {
		t.Fatalf("law violated on clean cluster: %s", why)
	}
	h.Cluster().Node(0).Metrics().Counter("twopc.tx.begun").Inc()
	if why := nodeMetricLaws("node-0", h.Cluster().Node(0).Snapshot()); why == "" {
		t.Fatal("checker missed a forced 2PC law violation")
	}
}

// TestDefaultScript checks script construction edge cases.
func TestDefaultScript(t *testing.T) {
	if got := len(DefaultScript(7, 3)); got != 7 {
		t.Fatalf("script length = %d, want 7", got)
	}
	if got := len(DefaultScript(0, 3)); got != 0 {
		t.Fatalf("script length = %d, want 0", got)
	}
}
