package chaos

import (
	"testing"
)

// TestChaosSoak runs the scripted fault soak against a live 3-node
// cluster: every round injects one fault (30% loss, a partition, a
// coordinator or participant crash-restart, delay+duplication), runs the
// bank-transfer workload, lifts the fault, forces recovery, and asserts
// quiescence plus the balance and durability invariants. Short mode runs
// one full cycle of the fault mix.
func TestChaosSoak(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	h, err := New(Config{
		Rounds: rounds,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	stats, err := h.Run(DefaultScript(rounds, h.Cluster().Nodes()))
	if err != nil {
		t.Fatalf("soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatalf("workload never committed — the soak exercised nothing")
	}
	t.Logf("soak: %d rounds, %d total commits", len(stats), commits)
}

// TestDefaultScript checks script construction edge cases.
func TestDefaultScript(t *testing.T) {
	if got := len(DefaultScript(7, 3)); got != 7 {
		t.Fatalf("script length = %d, want 7", got)
	}
	if got := len(DefaultScript(0, 3)); got != 0 {
		t.Fatalf("script length = %d, want 0", got)
	}
}
