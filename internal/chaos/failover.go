package chaos

import (
	"errors"
	"fmt"
	"time"

	"treaty/internal/attest"
	"treaty/internal/shardmap"
	"treaty/internal/workload"
)

// failoverFault kills a primary mid-traffic and promotes its recorded
// backup through the CAS certificate path — the dead node never comes
// back, its slots and address are adopted by the successor, and the
// bank workload keeps running across the ownership flip. Before the
// genuine takeover, the fault also submits a deliberately rolled-back
// promotion request (claims truncated to an empty mirror) and requires
// the CAS to refuse it: a soak where the rollback check never fired
// would prove nothing about rollback resistance.
type failoverFault struct {
	node int

	done chan error

	// Promotions counts completed takeovers; RollbackRejects counts
	// tampered requests the CAS refused. Both are non-vacuity witnesses
	// the soak test asserts on.
	Promotions      int
	RollbackRejects int
	// PreKillCommits counts workload transfers the fault committed on
	// the healed cluster before killing the primary. The takeover must
	// replay committed history from before the kill, and leaving those
	// commits to the surrounding lossy rounds makes the soak flaky — a
	// 20%-loss round regularly commits nothing at all.
	PreKillCommits int
	// Successor is the id of the node that took over (valid after Lift).
	Successor uint64
}

func (f *failoverFault) Name() string {
	return fmt.Sprintf("failover-promote-backup-of-node-%d", f.node)
}

func (f *failoverFault) Inject(h *Harness) {
	f.done = make(chan error, 1)
	// Commit a few audited transfers on the still-healed cluster before
	// anything dies: the round's own traffic starts only after Inject
	// returns, and these are the commits whose survival across the
	// takeover the soak asserts on. They bump the worker-0 observed
	// count, so losing one trips the durability invariant directly.
	bank := workload.NewBank(workload.BankConfig{Accounts: h.cfg.Accounts}, h.cfg.Seed+104729)
	for try := 0; try < 20 && f.PreKillCommits < 2; try++ {
		if err := h.transfer(0, bank.Next(), bank.Intn(h.cfg.Nodes)); err != nil {
			h.aborted[0]++
			continue
		}
		h.committed[0]++
		f.PreKillCommits++
	}
	go func() {
		// Let the round's traffic commit through the doomed primary
		// first, so its mirror — and the CAS witness state — are live.
		time.Sleep(h.cfg.RoundDuration / 4)
		h.crashNode(f.node)
		f.done <- f.promote(h)
	}()
}

// promote runs the takeover while workers hammer the cluster: tampered
// request first (must be refused), then the genuine certificate.
func (f *failoverFault) promote(h *Harness) error {
	dead := uint64(f.node)

	// Find the live node holding the dead primary's mirror: the
	// map-recorded backup of its slots.
	m := h.cluster.CAS().ShardMap()
	backupID := shardmap.NoBackup
	for s := 0; s < shardmap.NumSlots; s++ {
		if m.Slots[s] != dead {
			continue
		}
		if b, ok := m.SlotBackup(s); ok {
			backupID = b
			break
		}
	}
	if backupID == shardmap.NoBackup {
		return fmt.Errorf("chaos: dead node %d has no recorded backup", f.node)
	}
	h.nodesMu.RLock()
	backup := h.cluster.Node(int(backupID))
	h.nodesMu.RUnlock()
	if backup == nil {
		return fmt.Errorf("chaos: recorded backup %d is not live", backupID)
	}

	// Adversary first: claim the mirror holds nothing. The CAS witnessed
	// real groups before the primary's counters stabilized, so this is a
	// rollback and must be refused — with live traffic still running.
	rolled := backup.BuildPromotionRequest(dead)
	if len(rolled.Streams) == 0 {
		return fmt.Errorf("chaos: no witnessed streams for node %d — the failover round is vacuous", f.node)
	}
	for i := range rolled.Streams {
		rolled.Streams[i].Seq = 0
		rolled.Streams[i].HaveBoundary = false
	}
	if _, err := backup.SubmitPromotion(rolled); !errors.Is(err, attest.ErrReplicaRolledBack) {
		return fmt.Errorf("chaos: rolled-back promotion request was not refused: %v", err)
	}
	f.RollbackRejects++

	// The genuine takeover: replay the mirror, flip the map, adopt the
	// dead coordinator's undecided transactions.
	successor, err := h.cluster.Promote(f.node)
	if err != nil {
		return fmt.Errorf("chaos: promoting backup of node %d: %w", f.node, err)
	}
	f.Successor = successor.ID()

	// The dead node is gone for good: quiescence must stop waiting for
	// it.
	h.nodesMu.Lock()
	h.failedOver[f.node] = true
	h.nodesMu.Unlock()
	return nil
}

func (f *failoverFault) Lift(h *Harness) error {
	if err := <-f.done; err != nil {
		return err
	}
	// Convergence: nothing is owned by the dead node any more, and every
	// live node resolves its id to the successor's address.
	m := h.cluster.CAS().ShardMap()
	for s := 0; s < shardmap.NumSlots; s++ {
		if m.Slots[s] == uint64(f.node) {
			return fmt.Errorf("chaos: slot %d still owned by failed-over node %d", s, f.node)
		}
	}
	h.nodesMu.RLock()
	defer h.nodesMu.RUnlock()
	var succAddr string
	for i := 0; i < h.cluster.Nodes(); i++ {
		if n := h.cluster.Node(i); n != nil && n.ID() == f.Successor {
			succAddr = n.Addr()
		}
	}
	if succAddr == "" {
		return fmt.Errorf("chaos: successor %d not live after failover", f.Successor)
	}
	for i := 0; i < h.cluster.Nodes(); i++ {
		n := h.cluster.Node(i)
		if n == nil {
			continue
		}
		if got := n.AddrOfNode(uint64(f.node)); got != succAddr {
			return fmt.Errorf("chaos: node %d resolves dead node %d to %q, want successor %q",
				n.ID(), f.node, got, succAddr)
		}
	}
	f.Promotions++
	return nil
}

// FailoverScript builds the failover soak mix: network adversity
// sandwiching one permanent primary kill and backup promotion. Only one
// failover fires per soak — after it, the successor's slots have no
// recorded backup (its own backup stream to the dead node degrades by
// design), so a second promotion of the same lineage would be refused.
func FailoverScript(rounds, kill int) []Fault {
	script := make([]Fault, 0, rounds)
	for _, f := range []Fault{lossFault{rate: 0.20}, delayDupFault{}, &failoverFault{node: kill}} {
		if len(script) < rounds {
			script = append(script, f)
		}
	}
	tail := []Fault{lossFault{rate: 0.20}, delayDupFault{}}
	for i := 0; len(script) < rounds; i++ {
		script = append(script, tail[i%len(tail)])
	}
	return script
}
