package chaos

import (
	"testing"
)

// TestChaosSoakFailover is the failover chaos soak: audited bank
// traffic runs while the chosen primary is killed for good and its
// attested backup is promoted through the CAS certificate path, with
// packet loss and delay+duplication rounds on both sides of the
// takeover. Every invariant of the plain soak still holds across the
// failover boundary — balance conservation, no lost committed writes,
// quiescence, metric laws, and serializability of the full
// client-observed history. The fault also submits a rolled-back
// promotion request mid-takeover and requires the CAS to refuse it.
// `make soak-failover` runs it verbosely.
func TestChaosSoakFailover(t *testing.T) {
	rounds := 10
	if testing.Short() {
		rounds = 5
	}
	h, err := New(Config{
		Rounds:    rounds,
		Audit:     true,
		Replicate: true,
		Seed:      SeedFromEnv(6),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	script := FailoverScript(rounds, 0)
	stats, err := h.Run(script)
	if err != nil {
		t.Fatalf("failover soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatal("workload never committed — the failover soak exercised nothing")
	}

	// Non-vacuity: the promotion actually happened, and the rollback
	// check actually collided with a tampered request.
	var ff *failoverFault
	for _, f := range script {
		if v, ok := f.(*failoverFault); ok {
			ff = v
		}
	}
	if ff == nil || ff.Promotions == 0 {
		t.Fatal("no backup was ever promoted")
	}
	// The fault commits these itself on the healed cluster, so zero here
	// means the commit path was broken before the kill, not seed luck.
	if ff.PreKillCommits == 0 {
		t.Error("nothing committed before the kill — the takeover replayed no pre-failover history")
	}
	if ff.RollbackRejects == 0 {
		t.Fatal("no rolled-back promotion request was ever refused — rollback resistance went untested")
	}

	// The successor's own counters agree: it installed exactly one
	// promotion and refused exactly one rolled-back request; its mirror
	// actually received groups before the takeover.
	var succ = h.Cluster().Node(int(ff.Successor))
	if succ == nil {
		t.Fatalf("successor %d not live at end of soak", ff.Successor)
	}
	snap := succ.Snapshot()
	if got := snap.Counter("repl.promotions"); got != 1 {
		t.Errorf("successor repl.promotions = %d, want 1", got)
	}
	if got := snap.Counter("repl.rollback_rejected"); got != 1 {
		t.Errorf("successor repl.rollback_rejected = %d, want 1", got)
	}
	if got := snap.Counter("repl.recv_acked"); got == 0 {
		t.Error("successor never acked a shipped group — the mirror was empty all along")
	}

	// The audit crossed the failover boundary: Run already failed on any
	// serializability violation; make sure the history was non-vacuous.
	rep := h.AuditReport()
	if rep == nil || rep.Committed == 0 || rep.Edges == 0 {
		t.Fatalf("audit vacuous: %v", rep)
	}
	t.Logf("failover soak: %d rounds, %d commits (%d before the kill), successor=%d, %d promotion, %d rollback reject; %s",
		len(stats), commits, ff.PreKillCommits, ff.Successor, ff.Promotions, ff.RollbackRejects, rep)
}

// TestFailoverScript covers script construction edge cases.
func TestFailoverScript(t *testing.T) {
	s := FailoverScript(7, 1)
	if len(s) != 7 {
		t.Fatalf("script length = %d, want 7", len(s))
	}
	var failovers int
	for _, f := range s {
		if _, ok := f.(*failoverFault); ok {
			failovers++
		}
	}
	if failovers != 1 {
		t.Fatalf("script has %d failover rounds, want exactly 1", failovers)
	}
	if len(FailoverScript(2, 0)) != 2 {
		t.Fatal("short script truncation broken")
	}
}
