package chaos

import (
	"testing"
	"time"
)

// dupCrashFault crashes a coordinator node while the network duplicates
// every packet, then restarts it (running RecoverPending) with the
// duplication still active: every recovery control message — redo
// prepares, re-pushed commits and aborts, status queries — is delivered
// at least twice. The (node, tx, op) dedup plus idempotent handlers
// must make the duplicates invisible; the audit proves it.
type dupCrashFault struct{ node int }

func (f dupCrashFault) Name() string { return "dup-crash-coordinator" }

func (f dupCrashFault) Inject(h *Harness) {
	h.adv.set(0.05, time.Millisecond, 2)
	crashRestartFault{node: f.node, role: "coordinator"}.Inject(h)
}

func (f dupCrashFault) Lift(h *Harness) error {
	// Restart (and recover) BEFORE resetting the adversary, so recovery
	// itself runs under duplicate delivery.
	err := crashRestartFault{node: f.node, role: "coordinator"}.Lift(h)
	h.adv.reset()
	return err
}

// TestRecoverPendingDuplicatesAndHealing soaks Coordinator.RecoverPending
// under the two adversities the protocol claims to tolerate: duplicate
// delivery of its control messages, and partitions that heal after the
// coordinator restarted. After the scripted rounds the test re-drives
// recovery twice more on every node (duplicate recovery delivery at the
// API level), then asserts quiescence, the balance invariants, and an
// audit-clean recovered history.
func TestRecoverPendingDuplicatesAndHealing(t *testing.T) {
	seed := SeedFromEnv(11)
	h, err := New(Config{
		Rounds:   4,
		Accounts: 16,
		Workers:  3,
		Audit:    true,
		Seed:     seed,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	script := []Fault{
		dupCrashFault{node: 0},
		partitionFault{node: 1}, // heals at lift with in-flight work pending
		dupCrashFault{node: 1},
		delayDupFault{},
	}
	stats, err := h.Run(script)
	if err != nil {
		t.Fatalf("recovery soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatal("workload never committed under the recovery script")
	}

	// Re-deliver recovery itself: RecoverPending and ResolveRecovered
	// must be idempotent against their own duplicates.
	for pass := 0; pass < 2; pass++ {
		for _, n := range h.Cluster().LiveNodes() {
			if err := n.Recover(); err != nil {
				t.Fatalf("recovery pass %d on node %d: %v", pass, n.ID(), err)
			}
		}
	}
	if _, err := h.drain(); err != nil {
		t.Fatalf("after duplicate recovery: %v", err)
	}
	if err := h.verify(); err != nil {
		t.Fatalf("after duplicate recovery: %v", err)
	}
	if err := h.AuditCheck(); err != nil {
		t.Fatalf("recovered history not audit-clean: %v", err)
	}

	// Non-vacuity: the crash rounds must have exercised the recovery
	// paths (redo-prepare / re-pushed decisions), not just rebooted
	// idle nodes. Counters are per-incarnation, so sum what survived.
	var recoveries uint64
	for _, s := range h.Cluster().Snapshot() {
		recoveries += s.Counter("twopc.recover.redo_prepare") +
			s.Counter("twopc.recover.repush_commit") +
			s.Counter("twopc.recover.repush_abort")
	}
	t.Logf("recovery soak: %d commits, %d recovery replays, %s", commits, recoveries, h.AuditReport())
}
