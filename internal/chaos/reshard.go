package chaos

import (
	"fmt"
	"time"

	"treaty/internal/core"
	"treaty/internal/shardmap"
)

// Resharding faults: online slot migrations injected as soak rounds, so
// epoch flips happen underneath live audited 2PC traffic. Two shapes:
//
//   - migrateLiveFault runs a full migration to completion mid-round and
//     asserts the whole cluster converged on the flipped map.
//   - killMigrationSourceFault kills the slot's owner mid-stream, then
//     asserts the crash left the old epoch — and single ownership —
//     intact, restarts the source, and re-runs the migration to
//     completion (the retry's first chunk purges any partial copy the
//     aborted attempt left on the destination).
//
// Both pick a slot that holds seeded bank keys, so the fenced window and
// the epoch flip are guaranteed to sit in the workload's way; the
// rejection counters they accumulate let the soak prove the fence and
// the epoch checks actually fired.

// hotSlot returns a slot holding at least minKeys seeded bank keys whose
// current owner is not dst (-1 if none qualifies).
func (h *Harness) hotSlot(cur *shardmap.Map, dst int, minKeys int) int {
	perSlot := make(map[int]int)
	for i := 0; i < h.cfg.Accounts; i++ {
		perSlot[shardmap.SlotOf(accountKey(i))]++
	}
	for w := 0; w < h.cfg.Workers; w++ {
		perSlot[shardmap.SlotOf(workerKey(w))]++
	}
	best, bestKeys := -1, 0
	for slot, keys := range perSlot {
		if keys >= minKeys && int(cur.SlotOwner(slot)) != dst && keys > bestKeys {
			best, bestKeys = slot, keys
		}
	}
	return best
}

// fenceRejections sums the shard-routing rejection counters on node i's
// current incarnation (0 if the node is down).
func (h *Harness) fenceRejections(i int) uint64 {
	h.nodesMu.RLock()
	n := h.cluster.Node(i)
	h.nodesMu.RUnlock()
	if n == nil {
		return 0
	}
	s := n.Snapshot()
	return s.Counter("shardmap.fence_rejected") + s.Counter("shardmap.stale_epoch_rejected")
}

// migrateLiveFault migrates one hot slot to dst while the round's
// traffic runs. Rejections is the running total of fence/stale-epoch
// rejections its rounds observed at the source.
type migrateLiveFault struct {
	dst int

	// Per-round state.
	slot, src int
	wantEpoch uint64
	base      uint64
	done      chan error

	// Accumulated across rounds (the soak asserts non-vacuity on these).
	Migrated   int
	Rejections uint64
}

func (f *migrateLiveFault) Name() string { return fmt.Sprintf("migrate-slot-to-node-%d", f.dst) }

func (f *migrateLiveFault) Inject(h *Harness) {
	cur := h.cluster.CAS().ShardMap()
	f.slot = h.hotSlot(cur, f.dst, 1)
	f.done = make(chan error, 1)
	if f.slot < 0 {
		f.done <- fmt.Errorf("chaos: no migratable slot away from node %d", f.dst)
		return
	}
	f.src = int(cur.SlotOwner(f.slot))
	f.wantEpoch = cur.Epoch + 1
	f.base = h.fenceRejections(f.src)
	go func() {
		// Let the round's traffic get going before the fence drops, and
		// hold the fence open across several chunk sends so live
		// transactions demonstrably collide with it.
		time.Sleep(h.cfg.RoundDuration / 4)
		f.done <- h.cluster.MigrateSlot(f.slot, f.dst, core.MigrateOptions{
			ChunkSize: 1,
			OnChunk:   func(int) { time.Sleep(10 * time.Millisecond) },
		})
	}()
}

func (f *migrateLiveFault) Lift(h *Harness) error {
	if err := <-f.done; err != nil {
		return err
	}
	f.Rejections += h.fenceRejections(f.src) - f.base
	f.Migrated++
	// The whole cluster — not just the CAS — must have converged on the
	// flipped map.
	if got := h.cluster.CAS().ShardMap(); got.Epoch != f.wantEpoch || int(got.SlotOwner(f.slot)) != f.dst {
		return fmt.Errorf("chaos: CAS map after migration: epoch=%d owner=%d, want epoch=%d owner=%d",
			got.Epoch, got.SlotOwner(f.slot), f.wantEpoch, f.dst)
	}
	h.nodesMu.RLock()
	defer h.nodesMu.RUnlock()
	for i := 0; i < h.cluster.Nodes(); i++ {
		n := h.cluster.Node(i)
		if n == nil {
			continue
		}
		view := n.Shard().View()
		if view.Epoch != f.wantEpoch || int(view.SlotOwner(f.slot)) != f.dst {
			return fmt.Errorf("chaos: node %d view after migration: epoch=%d owner=%d, want epoch=%d owner=%d",
				i, view.Epoch, view.SlotOwner(f.slot), f.wantEpoch, f.dst)
		}
	}
	return nil
}

// killMigrationSourceFault starts a migration and crashes the source
// node from the chunk callback, mid-stream. The epoch must not flip, the
// slot must still have exactly its old owner, and after the source
// restarts a retry must complete cleanly.
type killMigrationSourceFault struct {
	dst int

	slot, src int
	preEpoch  uint64
	done      chan error
	skipped   bool

	// Kills counts rounds that actually crashed a source mid-stream.
	Kills int
}

func (f *killMigrationSourceFault) Name() string {
	return fmt.Sprintf("kill-migration-source-to-node-%d", f.dst)
}

func (f *killMigrationSourceFault) Inject(h *Harness) {
	// Prefer a slot with ≥2 keys so the kill lands between chunks: the
	// destination is left holding a partial copy that the retry's purge
	// must clear. Fall back to killing before the first chunk.
	cur := h.cluster.CAS().ShardMap()
	killAt := 1
	f.slot = h.hotSlot(cur, f.dst, 2)
	if f.slot < 0 {
		killAt = 0
		f.slot = h.hotSlot(cur, f.dst, 1)
	}
	f.done = make(chan error, 1)
	f.skipped = f.slot < 0
	if f.skipped {
		f.done <- nil
		return
	}
	f.src = int(cur.SlotOwner(f.slot))
	f.preEpoch = cur.Epoch
	go func() {
		time.Sleep(h.cfg.RoundDuration / 4)
		f.done <- h.cluster.MigrateSlot(f.slot, f.dst, core.MigrateOptions{
			ChunkSize: 1,
			OnChunk: func(chunk int) {
				if chunk == killAt {
					h.crashNode(f.src)
				}
			},
		})
	}()
}

func (f *killMigrationSourceFault) Lift(h *Harness) error {
	err := <-f.done
	if f.skipped {
		return nil
	}
	if err == nil {
		return fmt.Errorf("chaos: migration of slot %d survived its source being killed mid-stream", f.slot)
	}
	// Crash before the flip: the old map — and single ownership — hold.
	if got := h.cluster.CAS().ShardMap(); got.Epoch != f.preEpoch || int(got.SlotOwner(f.slot)) != f.src {
		return fmt.Errorf("chaos: killed migration moved the map: epoch=%d owner=%d, want epoch=%d owner=%d",
			got.Epoch, got.SlotOwner(f.slot), f.preEpoch, f.src)
	}
	if err := h.restartNode(f.src); err != nil {
		return err
	}
	f.Kills++
	// The retry streams from scratch; its first chunk purges whatever the
	// killed attempt left on the destination.
	if err := h.cluster.MigrateSlot(f.slot, f.dst, core.MigrateOptions{ChunkSize: 1}); err != nil {
		return fmt.Errorf("chaos: retrying migration after source restart: %w", err)
	}
	if got := h.cluster.CAS().ShardMap(); got.Epoch != f.preEpoch+1 || int(got.SlotOwner(f.slot)) != f.dst {
		return fmt.Errorf("chaos: retried migration: epoch=%d owner=%d, want epoch=%d owner=%d",
			got.Epoch, got.SlotOwner(f.slot), f.preEpoch+1, f.dst)
	}
	return nil
}

// ReshardScript builds the migration soak mix: live migrations and
// kill-mid-stream rounds interleaved with network adversity, cycling the
// destination across nodes. The returned faults carry the accumulated
// non-vacuity counters after the run.
func ReshardScript(rounds, nodes int) []Fault {
	if nodes < 2 {
		nodes = 2
	}
	script := make([]Fault, 0, rounds)
	for i := 0; len(script) < rounds; i++ {
		cycle := []Fault{
			&migrateLiveFault{dst: i % nodes},
			lossFault{rate: 0.20},
			&killMigrationSourceFault{dst: (i + 1) % nodes},
			delayDupFault{},
		}
		for _, f := range cycle {
			if len(script) == rounds {
				break
			}
			script = append(script, f)
		}
	}
	return script
}
