package chaos

import (
	"testing"
)

// TestChaosSoakReshard is the migration chaos soak: online slot
// migrations — including rounds that kill the source node mid-stream —
// run underneath live audited bank-transfer traffic, interleaved with
// packet loss and delay+duplication. Every invariant of the plain soak
// still holds (balance conservation, no lost committed writes,
// quiescence, metric laws), and the full client-observed history must
// stay serializable across every epoch boundary the soak crossed.
// `make soak-reshard` runs it verbosely.
func TestChaosSoakReshard(t *testing.T) {
	rounds := 16
	if testing.Short() {
		rounds = 8 // two full cycles: both migration shapes fire twice
	}
	h, err := New(Config{
		Rounds: rounds,
		Audit:  true,
		Seed:   SeedFromEnv(4),
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	startEpoch := h.Cluster().CAS().ShardMap().Epoch
	script := ReshardScript(rounds, h.Cluster().Nodes())
	stats, err := h.Run(script)
	if err != nil {
		t.Fatalf("reshard soak failed after %d clean rounds: %v", len(stats), err)
	}
	var commits uint64
	for _, rs := range stats {
		commits += rs.Commits
	}
	if commits == 0 {
		t.Fatal("workload never committed — the reshard soak exercised nothing")
	}

	// Non-vacuity: slots actually moved, sources actually died
	// mid-stream, and the fence/epoch checks actually collided with live
	// traffic. A soak where any of these is zero proved nothing.
	var migrated, kills int
	var rejections uint64
	for _, f := range script {
		switch mf := f.(type) {
		case *migrateLiveFault:
			migrated += mf.Migrated
			rejections += mf.Rejections
		case *killMigrationSourceFault:
			kills += mf.Kills
		}
	}
	if migrated == 0 {
		t.Error("no slot was ever migrated")
	}
	if kills == 0 {
		t.Error("no migration source was ever killed mid-stream")
	}
	if rejections == 0 {
		t.Error("no live transaction ever hit the fence or a stale epoch — the checks went untested")
	}

	// The cluster ends on a later epoch than it booted with (each clean
	// migration and each killed-then-retried migration flips once), and
	// every node agrees on it.
	endEpoch := h.Cluster().CAS().ShardMap().Epoch
	if want := startEpoch + uint64(migrated+kills); endEpoch != want {
		t.Errorf("final epoch = %d, want %d (%d migrations + %d kill-retries from %d)",
			endEpoch, want, migrated, kills, startEpoch)
	}
	for i := 0; i < h.Cluster().Nodes(); i++ {
		if got := h.Cluster().Node(i).ShardEpoch(); got != endEpoch {
			t.Errorf("node %d epoch = %d, want %d", i, got, endEpoch)
		}
	}

	// The audit crossed every epoch boundary: Run already failed on any
	// serializability violation; make sure the history was non-vacuous.
	rep := h.AuditReport()
	if rep == nil || rep.Committed == 0 || rep.Edges == 0 {
		t.Fatalf("audit vacuous: %v", rep)
	}
	t.Logf("reshard soak: %d rounds, %d commits, %d migrations, %d mid-stream kills, %d fence/epoch rejections, epochs %d→%d; %s",
		len(stats), commits, migrated, kills, rejections, startEpoch, endEpoch, rep)
}

// TestReshardScript covers script construction edge cases.
func TestReshardScript(t *testing.T) {
	if got := len(ReshardScript(9, 3)); got != 9 {
		t.Fatalf("script length = %d, want 9", got)
	}
	if got := len(ReshardScript(0, 3)); got != 0 {
		t.Fatalf("script length = %d, want 0", got)
	}
}
