package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"treaty/internal/simnet"
)

// chaosAdversary is a simnet adversary whose knobs (loss probability,
// added delay, duplication) flip per round. All methods are safe for
// concurrent use: the network delivers packets from many goroutines
// while faults reconfigure it.
type chaosAdversary struct {
	mu    sync.Mutex
	rng   *rand.Rand
	loss  float64
	delay time.Duration
	dup   int
}

func newChaosAdversary(seed int64) *chaosAdversary {
	return &chaosAdversary{rng: rand.New(rand.NewSource(seed ^ 0x5eed))}
}

// set reconfigures the knobs atomically.
func (a *chaosAdversary) set(loss float64, delay time.Duration, dup int) {
	a.mu.Lock()
	a.loss, a.delay, a.dup = loss, delay, dup
	a.mu.Unlock()
}

// reset returns the network to clean behaviour.
func (a *chaosAdversary) reset() { a.set(0, 0, 0) }

// Interpose implements simnet.Adversary.
func (a *chaosAdversary) Interpose(simnet.Packet) simnet.Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := simnet.Verdict{Delay: a.delay}
	if a.loss > 0 && a.rng.Float64() < a.loss {
		v.Drop = true
		return v
	}
	if a.dup > 0 {
		v.Duplicates = a.dup
	}
	return v
}

// Fault is one scripted adversity: Inject starts it before the round's
// traffic, Lift removes it (and repairs anything it broke) afterwards.
type Fault interface {
	Name() string
	Inject(h *Harness)
	Lift(h *Harness) error
}

// lossFault drops a fraction of all packets.
type lossFault struct{ rate float64 }

func (f lossFault) Name() string      { return fmt.Sprintf("loss-%d%%", int(f.rate*100)) }
func (f lossFault) Inject(h *Harness) { h.adv.set(f.rate, 0, 0) }
func (f lossFault) Lift(h *Harness) error {
	h.adv.reset()
	return nil
}

// delayDupFault adds latency, duplicates packets (replay pressure on the
// sealed channel's replay cache), and sprinkles light loss.
type delayDupFault struct{}

func (delayDupFault) Name() string      { return "delay+dup" }
func (delayDupFault) Inject(h *Harness) { h.adv.set(0.05, 2*time.Millisecond, 1) }
func (delayDupFault) Lift(h *Harness) error {
	h.adv.reset()
	return nil
}

// partitionFault isolates one node from the rest of the cluster for the
// round; transactions it coordinates and writes to its shard abort.
type partitionFault struct{ node int }

func (f partitionFault) Name() string { return fmt.Sprintf("partition-node-%d", f.node) }

func (f partitionFault) Inject(h *Harness) {
	addr := h.cluster.NodeAddr(f.node)
	for i := 0; i < h.cluster.Nodes(); i++ {
		if i != f.node {
			h.cluster.Net().Partition(addr, h.cluster.NodeAddr(i))
		}
	}
}

func (f partitionFault) Lift(h *Harness) error {
	addr := h.cluster.NodeAddr(f.node)
	for i := 0; i < h.cluster.Nodes(); i++ {
		if i != f.node {
			h.cluster.Net().Heal(addr, h.cluster.NodeAddr(i))
		}
	}
	return nil
}

// crashRestartFault crash-stops a node mid-round and restarts it (with
// recovery) when the fault lifts. The node is partitioned away first and
// its in-flight work allowed to time out, emulating the crash-fail model
// without letting a half-dead process race its own successor.
type crashRestartFault struct {
	node int
	// role is a label only — every node runs both a coordinator and a
	// participant; scripts alternate the label to document intent.
	role string
}

func (f crashRestartFault) Name() string {
	return fmt.Sprintf("crash-%s-node-%d", f.role, f.node)
}

func (f crashRestartFault) Inject(h *Harness) {
	// Isolate, let in-flight calls involving the node expire, then kill.
	part := partitionFault{node: f.node}
	part.Inject(h)
	settle := h.cfg.TxnTimeout
	if h.cfg.LockTimeout > settle {
		settle = h.cfg.LockTimeout
	}
	time.Sleep(settle + 50*time.Millisecond)
	h.crashNode(f.node)
	_ = part.Lift(h)
}

func (f crashRestartFault) Lift(h *Harness) error {
	return h.restartNode(f.node)
}

// DefaultScript builds a soak script of the canonical round mix: packet
// loss, a partition, a coordinator crash-restart, a participant
// crash-restart, and delay+duplication — cycled for rounds rounds across
// the cluster's nodes.
func DefaultScript(rounds, nodes int) []Fault {
	if nodes < 2 {
		nodes = 2
	}
	script := make([]Fault, 0, rounds)
	for i := 0; len(script) < rounds; i++ {
		cycle := []Fault{
			lossFault{rate: 0.30},
			partitionFault{node: i % nodes},
			crashRestartFault{node: i % nodes, role: "coordinator"},
			crashRestartFault{node: (i + 1) % nodes, role: "participant"},
			delayDupFault{},
		}
		for _, f := range cycle {
			if len(script) == rounds {
				break
			}
			script = append(script, f)
		}
	}
	return script
}
