package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"treaty/internal/simnet"
)

// chaosAdversary is a simnet adversary whose knobs (loss probability,
// added delay, duplication) flip per round. All methods are safe for
// concurrent use: the network delivers packets from many goroutines
// while faults reconfigure it.
type chaosAdversary struct {
	mu    sync.Mutex
	rng   *rand.Rand
	loss  float64
	delay time.Duration
	dup   int
}

func newChaosAdversary(seed int64) *chaosAdversary {
	return &chaosAdversary{rng: rand.New(rand.NewSource(seed ^ 0x5eed))}
}

// set reconfigures the knobs atomically.
func (a *chaosAdversary) set(loss float64, delay time.Duration, dup int) {
	a.mu.Lock()
	a.loss, a.delay, a.dup = loss, delay, dup
	a.mu.Unlock()
}

// reset returns the network to clean behaviour.
func (a *chaosAdversary) reset() { a.set(0, 0, 0) }

// Interpose implements simnet.Adversary.
func (a *chaosAdversary) Interpose(simnet.Packet) simnet.Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := simnet.Verdict{Delay: a.delay}
	if a.loss > 0 && a.rng.Float64() < a.loss {
		v.Drop = true
		return v
	}
	if a.dup > 0 {
		v.Duplicates = a.dup
	}
	return v
}

// Fault is one scripted adversity: Inject starts it before the round's
// traffic, Lift removes it (and repairs anything it broke) afterwards.
type Fault interface {
	Name() string
	Inject(h *Harness)
	Lift(h *Harness) error
}

// lossFault drops a fraction of all packets.
type lossFault struct{ rate float64 }

func (f lossFault) Name() string      { return fmt.Sprintf("loss-%d%%", int(f.rate*100)) }
func (f lossFault) Inject(h *Harness) { h.adv.set(f.rate, 0, 0) }
func (f lossFault) Lift(h *Harness) error {
	h.adv.reset()
	return nil
}

// delayDupFault adds latency, duplicates packets (replay pressure on the
// sealed channel's replay cache), and sprinkles light loss.
type delayDupFault struct{}

func (delayDupFault) Name() string      { return "delay+dup" }
func (delayDupFault) Inject(h *Harness) { h.adv.set(0.05, 2*time.Millisecond, 1) }
func (delayDupFault) Lift(h *Harness) error {
	h.adv.reset()
	return nil
}

// partitionFault isolates one node from the rest of the cluster for the
// round; transactions it coordinates and writes to its shard abort.
type partitionFault struct{ node int }

func (f partitionFault) Name() string { return fmt.Sprintf("partition-node-%d", f.node) }

func (f partitionFault) Inject(h *Harness) {
	addr := h.cluster.NodeAddr(f.node)
	for i := 0; i < h.cluster.Nodes(); i++ {
		if i != f.node {
			h.cluster.Net().Partition(addr, h.cluster.NodeAddr(i))
		}
	}
}

func (f partitionFault) Lift(h *Harness) error {
	addr := h.cluster.NodeAddr(f.node)
	for i := 0; i < h.cluster.Nodes(); i++ {
		if i != f.node {
			h.cluster.Net().Heal(addr, h.cluster.NodeAddr(i))
		}
	}
	return nil
}

// crashRestartFault crash-stops a node mid-round and restarts it (with
// recovery) when the fault lifts. The node is partitioned away first and
// its in-flight work allowed to time out, emulating the crash-fail model
// without letting a half-dead process race its own successor.
type crashRestartFault struct {
	node int
	// role is a label only — every node runs both a coordinator and a
	// participant; scripts alternate the label to document intent.
	role string
}

func (f crashRestartFault) Name() string {
	return fmt.Sprintf("crash-%s-node-%d", f.role, f.node)
}

func (f crashRestartFault) Inject(h *Harness) {
	// Isolate, let in-flight calls involving the node expire, then kill.
	part := partitionFault{node: f.node}
	part.Inject(h)
	settle := h.cfg.TxnTimeout
	if h.cfg.LockTimeout > settle {
		settle = h.cfg.LockTimeout
	}
	time.Sleep(settle + 50*time.Millisecond)
	h.crashNode(f.node)
	_ = part.Lift(h)
}

func (f crashRestartFault) Lift(h *Harness) error {
	return h.restartNode(f.node)
}

// rebootNode crash-stops a node the safe way (isolate, let in-flight
// work expire, kill, heal) and restarts it with recovery. Disk faults
// use it to clear fail-stopped storage state: after a poisoned WAL or a
// quarantined SSTable, a reboot that re-runs recovery is the designed
// continuation.
func rebootNode(h *Harness, node int) error {
	part := partitionFault{node: node}
	part.Inject(h)
	settle := h.cfg.TxnTimeout
	if h.cfg.LockTimeout > settle {
		settle = h.cfg.LockTimeout
	}
	time.Sleep(settle + 50*time.Millisecond)
	h.crashNode(node)
	_ = part.Lift(h)
	return h.restartNode(node)
}

// slowDiskFault adds latency to every filesystem operation on one node,
// modelling a degraded device; commits slow down but nothing may break.
type slowDiskFault struct{ node int }

func (f slowDiskFault) Name() string { return fmt.Sprintf("slow-disk-node-%d", f.node) }
func (f slowDiskFault) Inject(h *Harness) {
	h.NodeFS(f.node).SetOpDelay(1 * time.Millisecond)
}
func (f slowDiskFault) Lift(h *Harness) error {
	h.NodeFS(f.node).SetOpDelay(0)
	return nil
}

// enospcFault exhausts one node's write budget mid-round (ENOSPC with a
// torn final write). The storage layer must fail-stop — no acknowledged
// commit may be lost — and a reboot with space available recovers.
type enospcFault struct{ node int }

func (f enospcFault) Name() string { return fmt.Sprintf("enospc-node-%d", f.node) }
func (f enospcFault) Inject(h *Harness) {
	h.NodeFS(f.node).SetWriteBudget(4096)
}
func (f enospcFault) Lift(h *Harness) error {
	h.NodeFS(f.node).Reset()
	return rebootNode(h, f.node)
}

// syncFailFault makes the next fsyncs on one node fail with fsyncgate
// semantics (the unsynced tail is dropped). The WAL/Clog must poison
// themselves and refuse further acknowledgments until a reboot re-runs
// recovery.
type syncFailFault struct{ node int }

func (f syncFailFault) Name() string { return fmt.Sprintf("sync-fail-node-%d", f.node) }
func (f syncFailFault) Inject(h *Harness) {
	h.NodeFS(f.node).FailNextSyncs(3)
}
func (f syncFailFault) Lift(h *Harness) error {
	h.NodeFS(f.node).Reset()
	return rebootNode(h, f.node)
}

// bitRotFault flips bits on a fraction of one node's block reads. Every
// rotted read that reaches the engine must be *detected* (checksum, hash
// chain, or AEAD failure → quarantine), never served as data; the lift
// asserts detection kept up with injection, then reboots to clear the
// quarantine.
type bitRotFault struct {
	node      int
	rottedAt  uint64
	injecting bool
}

func (f *bitRotFault) Name() string { return fmt.Sprintf("bit-rot-node-%d", f.node) }

func (f *bitRotFault) Inject(h *Harness) {
	fs := h.NodeFS(f.node)
	f.rottedAt = fs.ReadsRotted()
	f.injecting = true
	fs.SetReadRot(0.3, false)
}

func (f *bitRotFault) Lift(h *Harness) error {
	fs := h.NodeFS(f.node)
	fs.Reset()
	rotted := fs.ReadsRotted() - f.rottedAt
	if rotted > 0 {
		// The node is still this incarnation: its corruption counter must
		// show the engine noticed at least one of the rotted reads.
		h.nodesMu.RLock()
		n := h.cluster.Node(f.node)
		h.nodesMu.RUnlock()
		if n != nil {
			s := n.Snapshot()
			if detected := s.Counter("lsm.corruption.detected"); detected == 0 {
				return fmt.Errorf("chaos: node %d served %d bit-rotted reads with zero detected corruptions",
					f.node, rotted)
			}
			// With the block cache enabled, every quarantined table must
			// have purged its cached blocks — a warm cache serving blocks
			// of a quarantined table would mask the corruption.
			if s.Gauge("lsm.cache.capacity_bytes") > 0 {
				if q, p := s.Counter("lsm.quarantine.tables"), s.Counter("lsm.cache.quarantine_purges"); p < q {
					return fmt.Errorf("chaos: node %d quarantined %d tables but purged cached blocks for only %d",
						f.node, q, p)
				}
			}
		}
	}
	return rebootNode(h, f.node)
}

// rotRebootFault corrupts a crashed node's storage (every read rotted,
// including whole-file reads of logs and trusted-counter files) and
// asserts the node REFUSES to boot from it — serving garbage or booting
// from a rolled-back counter would break every durability guarantee.
// The rot is then lifted and a clean restart must succeed.
type rotRebootFault struct{ node int }

func (f rotRebootFault) Name() string { return fmt.Sprintf("rot-detected-at-boot-node-%d", f.node) }

func (f rotRebootFault) Inject(h *Harness) {
	// Same isolate-settle-kill sequence as a crash-restart round; the
	// round's traffic runs with the node down.
	part := partitionFault{node: f.node}
	part.Inject(h)
	settle := h.cfg.TxnTimeout
	if h.cfg.LockTimeout > settle {
		settle = h.cfg.LockTimeout
	}
	time.Sleep(settle + 50*time.Millisecond)
	h.crashNode(f.node)
	_ = part.Lift(h)
}

func (f rotRebootFault) Lift(h *Harness) error {
	fs := h.NodeFS(f.node)
	fs.SetReadRot(1, true)
	h.nodesMu.Lock()
	_, err := h.cluster.RestartNode(f.node)
	h.nodesMu.Unlock()
	if err == nil {
		fs.Reset()
		return fmt.Errorf("chaos: node %d booted from fully bit-rotted storage undetected", f.node)
	}
	h.cfg.Logf("chaos: node %d refused rotted boot: %v", f.node, err)
	fs.Reset()
	return h.restartNode(f.node)
}

// DiskFaultScript builds the disk-adversity round mix: a slow device, an
// ENOSPC fail-stop, fsync failures, read-side bit rot, a boot-from-
// corruption refusal, and a plain network-loss round to keep 2PC
// pressure in the mix — cycled across nodes. Requires Config.DiskFaults.
func DiskFaultScript(rounds, nodes int) []Fault {
	if nodes < 2 {
		nodes = 2
	}
	script := make([]Fault, 0, rounds)
	for i := 0; len(script) < rounds; i++ {
		cycle := []Fault{
			slowDiskFault{node: i % nodes},
			enospcFault{node: (i + 1) % nodes},
			syncFailFault{node: (i + 2) % nodes},
			&bitRotFault{node: i % nodes},
			lossFault{rate: 0.20},
			rotRebootFault{node: (i + 1) % nodes},
		}
		for _, f := range cycle {
			if len(script) == rounds {
				break
			}
			script = append(script, f)
		}
	}
	return script
}

// DefaultScript builds a soak script of the canonical round mix: packet
// loss, a partition, a coordinator crash-restart, a participant
// crash-restart, and delay+duplication — cycled for rounds rounds across
// the cluster's nodes.
func DefaultScript(rounds, nodes int) []Fault {
	if nodes < 2 {
		nodes = 2
	}
	script := make([]Fault, 0, rounds)
	for i := 0; len(script) < rounds; i++ {
		cycle := []Fault{
			lossFault{rate: 0.30},
			partitionFault{node: i % nodes},
			crashRestartFault{node: i % nodes, role: "coordinator"},
			crashRestartFault{node: (i + 1) % nodes, role: "participant"},
			delayDupFault{},
		}
		for _, f := range cycle {
			if len(script) == rounds {
				break
			}
			script = append(script, f)
		}
	}
	return script
}
