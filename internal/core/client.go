package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"treaty/internal/attest"
	"treaty/internal/erpc"
	"treaty/internal/fibers"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/shardmap"
	"treaty/internal/simnet"
	"treaty/internal/twopc"
)

// Client-facing RPC request types ("Clients are registered to TREATY
// nodes and thereafter are able to execute transactions", §V-A). Each
// client operation is forwarded by the coordinator node into the 2PC
// machinery; the coordinator interacts with the client and distributes
// requests to the involved participants.
const (
	reqClientBegin uint8 = 0x30 + iota
	reqClientGet
	reqClientPut
	reqClientDelete
	reqClientCommit
	reqClientRollback
)

// clientTxKey identifies one client transaction at the coordinator.
type clientTxKey struct {
	client uint64
	tx     uint64
}

// clientSessions tracks the server side of client transactions.
type clientSessions struct {
	node *Node
	mu   sync.Mutex
	txns map[clientTxKey]*twopc.DistTxn
}

// newClientSessions registers the client protocol handlers.
func newClientSessions(n *Node) *clientSessions {
	cs := &clientSessions{node: n, txns: make(map[clientTxKey]*twopc.DistTxn)}
	n.ep.Register(reqClientBegin, cs.onFiber(cs.handleBegin))
	n.ep.Register(reqClientGet, cs.onFiber(cs.handleGet))
	n.ep.Register(reqClientPut, cs.onFiber(cs.handlePut))
	n.ep.Register(reqClientDelete, cs.onFiber(cs.handleDelete))
	n.ep.Register(reqClientCommit, cs.onFiber(cs.handleCommit))
	n.ep.Register(reqClientRollback, cs.onFiber(cs.handleRollback))
	return cs
}

// onFiber runs a handler as a fiber: one fiber per client request, on the
// userland scheduler (§VII-C).
func (cs *clientSessions) onFiber(h func(*fibers.Fiber, *erpc.Request)) erpc.Handler {
	return func(req *erpc.Request) {
		if _, err := cs.node.sched.Go(func(f *fibers.Fiber) { h(f, req) }); err != nil {
			req.ReplyError(err.Error())
		}
	}
}

// keyOf builds the session key from request metadata.
func keyOf(req *erpc.Request) clientTxKey {
	return clientTxKey{client: req.Meta.NodeID, tx: req.Meta.TxID}
}

// handleBegin opens a distributed transaction for the client.
func (cs *clientSessions) handleBegin(f *fibers.Fiber, req *erpc.Request) {
	tx := cs.node.coord.Begin(nil)
	cs.mu.Lock()
	cs.txns[keyOf(req)] = tx
	cs.mu.Unlock()
	req.Reply(nil)
}

// lookup finds the client's transaction.
func (cs *clientSessions) lookup(req *erpc.Request) *twopc.DistTxn {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.txns[keyOf(req)]
}

// drop removes a finished transaction.
func (cs *clientSessions) drop(req *erpc.Request) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	delete(cs.txns, keyOf(req))
}

// handleGet forwards a read.
func (cs *clientSessions) handleGet(f *fibers.Fiber, req *erpc.Request) {
	tx := cs.lookup(req)
	if tx == nil {
		req.ReplyError("core: no such transaction")
		return
	}
	tx.SetYield(f.Yield)
	key := req.Payload[:min(int(req.Meta.KeyLen), len(req.Payload))]
	v, found, err := tx.Get(key)
	if err != nil {
		req.ReplyError(err.Error())
		return
	}
	if !found {
		req.Reply([]byte{0})
		return
	}
	req.Reply(append([]byte{1}, v...))
}

// handlePut forwards a write.
func (cs *clientSessions) handlePut(f *fibers.Fiber, req *erpc.Request) {
	tx := cs.lookup(req)
	if tx == nil {
		req.ReplyError("core: no such transaction")
		return
	}
	tx.SetYield(f.Yield)
	kl, vl := int(req.Meta.KeyLen), int(req.Meta.ValueLen)
	if kl+vl > len(req.Payload) {
		req.ReplyError("core: malformed sizes")
		return
	}
	if err := tx.Put(req.Payload[:kl], req.Payload[kl:kl+vl]); err != nil {
		req.ReplyError(err.Error())
		return
	}
	req.Reply(nil)
}

// handleDelete forwards a delete.
func (cs *clientSessions) handleDelete(f *fibers.Fiber, req *erpc.Request) {
	tx := cs.lookup(req)
	if tx == nil {
		req.ReplyError("core: no such transaction")
		return
	}
	tx.SetYield(f.Yield)
	key := req.Payload[:min(int(req.Meta.KeyLen), len(req.Payload))]
	if err := tx.Delete(key); err != nil {
		req.ReplyError(err.Error())
		return
	}
	req.Reply(nil)
}

// handleCommit runs 2PC and acknowledges the client after the decision
// is stabilized.
func (cs *clientSessions) handleCommit(f *fibers.Fiber, req *erpc.Request) {
	tx := cs.lookup(req)
	if tx == nil {
		req.ReplyError("core: no such transaction")
		return
	}
	tx.SetYield(f.Yield)
	cs.drop(req)
	if err := tx.Commit(); err != nil {
		req.ReplyError(err.Error())
		return
	}
	req.Reply(nil)
}

// handleRollback aborts the client's transaction.
func (cs *clientSessions) handleRollback(f *fibers.Fiber, req *erpc.Request) {
	tx := cs.lookup(req)
	if tx == nil {
		req.ReplyError("core: no such transaction")
		return
	}
	tx.SetYield(f.Yield)
	cs.drop(req)
	if err := tx.Rollback(); err != nil {
		req.ReplyError(err.Error())
		return
	}
	req.Reply(nil)
}

// Client is a Treaty client: it authenticates to the CAS, receives the
// network key, and runs interactive transactions against a coordinator
// node over a mutually authenticated channel (§IV-A).
type Client struct {
	id      uint64
	ep      *erpc.Endpoint
	poller  *erpc.Poller
	coord   string
	nodes   []string
	timeout time.Duration
	nextTx  uint64
	nextOp  uint64

	// Shard-map view: clients verify the CAS-signed map like nodes do
	// (signature under the network key, epoch bound to the trusted
	// counter) so a replayed older map cannot redirect their traffic.
	cas      *attest.CAS
	shardKey seal.Key
	shard    *shardmap.Holder
	shardMin uint64
	met      *obs.Registry
}

// ClientOptions configures Connect.
type ClientOptions struct {
	// ID must be unique among clients (it namespaces transactions).
	ID uint64
	// Addr is the client's own network address.
	Addr string
	// Net is the network substrate.
	Net *simnet.Network
	// CAS authenticates the client.
	CAS *attest.CAS
	// Credential is the pre-registered client secret.
	CredentialID string
	// Secret is the credential's secret bytes.
	Secret []byte
	// Coordinator selects the coordinator node (empty: derived from ID).
	Coordinator string
	// Timeout bounds each operation (0 = 5s).
	Timeout time.Duration
	// Secure must match the cluster's RPC security mode.
	Secure bool
	// Metrics, when non-nil, exports client-side shard-map counters
	// (shardmap.stale_epoch_rejected fires when a replayed map is
	// refused).
	Metrics *obs.Registry
}

// Connect authenticates with the CAS and opens a coordinator session.
func Connect(opts ClientOptions) (*Client, error) {
	sess, err := attest.NewClientSession()
	if err != nil {
		return nil, err
	}
	resp, err := opts.CAS.AuthenticateClient(opts.CredentialID, opts.Secret, sess.PublicKey())
	if err != nil {
		return nil, fmt.Errorf("core: client auth: %w", err)
	}
	cfg, err := sess.OpenResponse(resp)
	if err != nil {
		return nil, err
	}
	nep, err := opts.Net.Listen(opts.Addr)
	if err != nil {
		return nil, err
	}
	ep, err := erpc.NewEndpoint(erpc.Config{
		NodeID:     opts.ID,
		Transport:  erpc.NewSimTransport(nep, nil, erpc.KindDPDK),
		NetworkKey: cfg.NetworkKey,
		Secure:     opts.Secure,
	})
	if err != nil {
		return nil, err
	}
	coord := opts.Coordinator
	if coord == "" {
		coord = cfg.Nodes[opts.ID%uint64(len(cfg.Nodes))]
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	c := &Client{
		id:       opts.ID,
		ep:       ep,
		poller:   erpc.StartPoller(ep),
		coord:    coord,
		nodes:    cfg.Nodes,
		timeout:  timeout,
		cas:      opts.CAS,
		shardKey: shardmap.KeyFor(cfg.NetworkKey),
		shard:    shardmap.NewHolder(nil),
		met:      opts.Metrics,
	}
	// Establish the initial verified shard-map view. A client that
	// cannot verify the routing epoch must not connect.
	if m := opts.CAS.ShardMap(); m != nil {
		if err := c.ApplyShardMap(m); err != nil {
			c.poller.Stop()
			_ = c.ep.Close()
			return nil, fmt.Errorf("core: client shard map rejected: %w", err)
		}
	}
	return c, nil
}

// ApplyShardMap verifies a presented shard map against the CAS
// signature, the trusted counter, and the client's highest-seen epoch,
// and adopts it if it advances the view. A replayed older map — even a
// genuinely signed one — fails the counter binding and fires
// shardmap.stale_epoch_rejected on the client's registry.
func (c *Client) ApplyShardMap(m *shardmap.Map) error {
	floor := c.shardMin
	if ctr := c.cas.ShardMapStable(); ctr > floor {
		floor = ctr
	}
	if err := m.Verify(c.shardKey, floor); err != nil {
		if errors.Is(err, shardmap.ErrStaleEpoch) {
			c.met.Counter("shardmap.stale_epoch_rejected").Inc()
		}
		return err
	}
	if m.Epoch > c.shardMin {
		c.shardMin = m.Epoch
	}
	if cur := c.shard.View(); cur == nil || m.Epoch > cur.Epoch {
		c.shard.Store(m.Clone())
	}
	return nil
}

// RefreshShardMap refetches and re-verifies the CAS map (after a
// wrong-epoch rejection).
func (c *Client) RefreshShardMap() error {
	m := c.cas.ShardMap()
	if m == nil {
		return errors.New("core: CAS has no shard map")
	}
	return c.ApplyShardMap(m)
}

// ShardEpoch reports the client's verified shard-map epoch (0 before
// any map was accepted).
func (c *Client) ShardEpoch() uint64 {
	if v := c.shard.View(); v != nil {
		return v.Epoch
	}
	return 0
}

// IsRetriable reports whether a transaction error is a transient
// routing condition — wrong epoch or a migration fence — that a client
// resolves by refreshing its shard map and retrying the transaction.
func IsRetriable(err error) bool {
	return twopc.IsWrongEpoch(err) || twopc.IsSlotFenced(err)
}

// Close releases the client.
func (c *Client) Close() error {
	c.poller.Stop()
	return c.ep.Close()
}

// ClientTxn is one interactive transaction from the client's view.
type ClientTxn struct {
	c    *Client
	tx   uint64
	done bool
}

// ErrTxnDone indicates use of a finished client transaction.
var ErrTxnDone = errors.New("core: transaction already finished")

// call performs one client-protocol request.
func (c *Client) call(reqType uint8, tx uint64, key, value []byte) ([]byte, error) {
	c.nextOp++
	md := seal.MsgMetadata{
		TxID:     tx,
		OpID:     c.nextOp,
		OpType:   uint32(reqType),
		KeyLen:   uint32(len(key)),
		ValueLen: uint32(len(value)),
	}
	payload := make([]byte, 0, len(key)+len(value))
	payload = append(payload, key...)
	payload = append(payload, value...)
	return erpc.Call(c.ep, c.coord, reqType, md, payload, c.timeout, nil)
}

// BeginTxn starts an interactive transaction.
func (c *Client) BeginTxn() (*ClientTxn, error) {
	c.nextTx++
	tx := c.nextTx
	if _, err := c.call(reqClientBegin, tx, nil, nil); err != nil {
		return nil, err
	}
	return &ClientTxn{c: c, tx: tx}, nil
}

// TxnGet reads a key.
func (t *ClientTxn) TxnGet(key []byte) ([]byte, bool, error) {
	if t.done {
		return nil, false, ErrTxnDone
	}
	resp, err := t.c.call(reqClientGet, t.tx, key, nil)
	if err != nil {
		return nil, false, err
	}
	if len(resp) == 0 || resp[0] == 0 {
		return nil, false, nil
	}
	return resp[1:], true, nil
}

// TxnPut writes a key.
func (t *ClientTxn) TxnPut(key, value []byte) error {
	if t.done {
		return ErrTxnDone
	}
	_, err := t.c.call(reqClientPut, t.tx, key, value)
	return err
}

// TxnDelete removes a key.
func (t *ClientTxn) TxnDelete(key []byte) error {
	if t.done {
		return ErrTxnDone
	}
	_, err := t.c.call(reqClientDelete, t.tx, key, nil)
	return err
}

// TxnCommit commits; success means the transaction is durable and
// rollback-protected on every involved node.
func (t *ClientTxn) TxnCommit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	_, err := t.c.call(reqClientCommit, t.tx, nil, nil)
	return err
}

// TxnRollback aborts the transaction.
func (t *ClientTxn) TxnRollback() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	_, err := t.c.call(reqClientRollback, t.tx, nil, nil)
	return err
}
