package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"treaty/internal/attest"
	"treaty/internal/counter"
	"treaty/internal/enclave"
	"treaty/internal/erpc"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/simnet"
	"treaty/internal/vfs"
)

// ClusterOptions configures an in-process cluster.
type ClusterOptions struct {
	// Nodes is the cluster size (0 = 3, the paper's testbed).
	Nodes int
	// Mode selects the security configuration.
	Mode SecurityMode
	// BaseDir hosts per-node storage directories (empty: a temp dir).
	BaseDir string
	// Link models the inter-node fabric (zero value: ideal links; the
	// paper's 40 GbE switch is ~5 GB/s with microsecond latency).
	Link simnet.LinkConfig
	// Workers sizes each node's userland scheduler.
	Workers int
	// LockTimeout bounds lock waits.
	LockTimeout time.Duration
	// TxnTimeout bounds 2PC round-trips and decision stabilization.
	TxnTimeout time.Duration
	// IdleTimeout reclaims participant transactions abandoned by dead
	// coordinators.
	IdleTimeout time.Duration
	// MemTableSize overrides the flush threshold.
	MemTableSize int64
	// DisableGroupCommit is the group-commit ablation.
	DisableGroupCommit bool
	// LockShards overrides the lock-table shard count.
	LockShards int
	// BlockCacheBytes sizes each node's authenticated block cache
	// (0 = engine default, negative disables — the cache ablation).
	BlockCacheBytes int64
	// EPCBudget sizes each node's modelled enclave page cache in bytes
	// (0 = the SGXv1 default, 94 MiB). The scaling experiments shrink it
	// so EPC pressure — the paper's §II-B scale-out motivation — shows
	// up at testbed-sized datasets.
	EPCBudget int64
	// CounterReplicas sizes the trusted counter protection group
	// (0 = 3; only used in stabilization mode).
	CounterReplicas int
	// Seed makes the network's randomness reproducible.
	Seed int64
	// NodeFS, when set, supplies a per-node filesystem for durable
	// writes (disk-fault injection). The same FS instance is reused when
	// the node restarts, so fault state and crash images persist across
	// a node's incarnations.
	NodeFS func(i int) vfs.FS
	// ClogSync enables per-append Clog fsync on every node.
	ClogSync bool
	// Replicate enables per-shard primary-backup replication on every
	// node (see NodeConfig.Replicate).
	Replicate bool
}

// Cluster is an in-process Treaty deployment: N nodes, a CAS, an IAS, a
// trusted-counter protection group, and a simulated network — the whole
// testbed of §VIII-A in one process.
type Cluster struct {
	opts    ClusterOptions
	net     *simnet.Network
	ias     *attest.IAS
	cas     *attest.CAS
	nodes   []*Node
	nodeCfg []NodeConfig
	ctrEPs  []*erpc.Endpoint
	ctrPoll []*erpc.Poller
	baseDir string
	ownsDir bool
	clients int
}

// NewCluster boots a cluster.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 3
	}
	if opts.CounterReplicas == 0 {
		opts.CounterReplicas = 3
	}
	c := &Cluster{
		opts:    opts,
		net:     simnet.New(opts.Link, opts.Seed),
		ias:     attest.NewIAS(),
		baseDir: opts.BaseDir,
	}
	if c.baseDir == "" {
		dir, err := os.MkdirTemp("", "treaty-cluster-")
		if err != nil {
			return nil, fmt.Errorf("core: temp dir: %w", err)
		}
		c.baseDir = dir
		c.ownsDir = true
	}

	netKey, err := seal.NewRandomKey()
	if err != nil {
		return nil, err
	}
	storKey, err := seal.NewRandomKey()
	if err != nil {
		return nil, err
	}

	nodeAddrs := make([]string, opts.Nodes)
	for i := range nodeAddrs {
		nodeAddrs[i] = fmt.Sprintf("node-%d", i)
	}
	var ctrAddrs []string
	if opts.Mode.UsesCounterService() {
		ctrAddrs = make([]string, opts.CounterReplicas)
		for i := range ctrAddrs {
			ctrAddrs[i] = fmt.Sprintf("ctr-%d", i)
		}
	}

	c.cas = attest.NewCAS(c.ias, NodeMeasurement(), attest.ClusterConfig{
		NetworkKey:      netKey,
		StorageKey:      storKey,
		Nodes:           nodeAddrs,
		CounterReplicas: ctrAddrs,
	})

	// Trusted counter protection group (its own platforms).
	for i := 0; i < len(ctrAddrs); i++ {
		if err := c.startCounterReplica(i, ctrAddrs[i], netKey); err != nil {
			c.Stop()
			return nil, err
		}
	}

	// Nodes.
	for i := 0; i < opts.Nodes; i++ {
		cfg, err := c.nodeConfig(uint64(i), nodeAddrs[i])
		if err != nil {
			c.Stop()
			return nil, err
		}
		n, err := StartNode(cfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("core: starting node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, n)
		c.nodeCfg = append(c.nodeCfg, cfg)
	}
	return c, nil
}

// nodeConfig builds the boot configuration for node i (fresh platform +
// LAS, persistent directory).
func (c *Cluster) nodeConfig(id uint64, addr string) (NodeConfig, error) {
	platform, err := enclave.NewPlatform(addr)
	if err != nil {
		return NodeConfig{}, err
	}
	c.ias.RegisterPlatform(platform)
	las, err := attest.NewLAS(platform)
	if err != nil {
		return NodeConfig{}, err
	}
	if err := c.cas.DeployLAS(las); err != nil {
		return NodeConfig{}, err
	}
	dir := filepath.Join(c.baseDir, addr)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return NodeConfig{}, err
	}
	var nfs vfs.FS
	if c.opts.NodeFS != nil {
		nfs = c.opts.NodeFS(int(id))
	}
	return NodeConfig{
		ID:                 id,
		Addr:               addr,
		FS:                 nfs,
		ClogSync:           c.opts.ClogSync,
		Dir:                dir,
		Mode:               c.opts.Mode,
		Net:                c.net,
		Platform:           platform,
		LAS:                las,
		CAS:                c.cas,
		Workers:            c.opts.Workers,
		LockTimeout:        c.opts.LockTimeout,
		TxnTimeout:         c.opts.TxnTimeout,
		IdleTimeout:        c.opts.IdleTimeout,
		MemTableSize:       c.opts.MemTableSize,
		DisableGroupCommit: c.opts.DisableGroupCommit,
		LockShards:         c.opts.LockShards,
		BlockCacheBytes:    c.opts.BlockCacheBytes,
		EPCBudget:          c.opts.EPCBudget,
		Replicate:          c.opts.Replicate,
	}, nil
}

// startCounterReplica boots one protection-group member.
func (c *Cluster) startCounterReplica(i int, addr string, netKey seal.Key) error {
	platform, err := enclave.NewPlatform(addr)
	if err != nil {
		return err
	}
	encl, err := platform.Launch("treaty-counter", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		return err
	}
	nep, err := c.net.Listen(addr)
	if err != nil {
		return err
	}
	ep, err := erpc.NewEndpoint(erpc.Config{
		NodeID:     2000 + uint64(i),
		Transport:  erpc.NewSimTransport(nep, nil, erpc.KindDPDK),
		NetworkKey: netKey,
		Secure:     true,
	})
	if err != nil {
		return err
	}
	dir := filepath.Join(c.baseDir, addr)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := counter.NewReplica(ep, encl, dir); err != nil {
		return err
	}
	c.ctrEPs = append(c.ctrEPs, ep)
	c.ctrPoll = append(c.ctrPoll, erpc.StartPoller(ep))
	return nil
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// LiveNodes returns the currently running nodes (crashed slots are
// skipped). The caller must serialize against CrashNode/RestartNode —
// the chaos harness holds its node lock across both.
func (c *Cluster) LiveNodes() []*Node {
	live := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n != nil {
			live = append(live, n)
		}
	}
	return live
}

// NodeAddr returns node i's RPC address — valid even while the node is
// crashed (it comes from the boot configuration, not the live node).
func (c *Cluster) NodeAddr(i int) string { return c.nodeCfg[i].Addr }

// Net returns the network substrate (adversary injection, partitions).
func (c *Cluster) Net() *simnet.Network { return c.net }

// CAS returns the configuration and attestation service.
func (c *Cluster) CAS() *attest.CAS { return c.cas }

// NewClient registers a credential and connects an authenticated client
// whose coordinator is node (clientID mod N).
func (c *Cluster) NewClient() (*Client, error) {
	c.clients++
	id := uint64(10000 + c.clients)
	cred := fmt.Sprintf("client-%d", id)
	secret := []byte(fmt.Sprintf("secret-%d", id))
	c.cas.RegisterClient(cred, secret)
	return Connect(ClientOptions{
		ID:           id,
		Addr:         fmt.Sprintf("client-%d", id),
		Net:          c.net,
		CAS:          c.cas,
		CredentialID: cred,
		Secret:       secret,
		Secure:       c.opts.Mode.SecureRPC(),
	})
}

// Snapshot returns a point-in-time metrics snapshot for every live node,
// keyed by node address. Crashed nodes are absent; a restarted node
// reports its current incarnation's counters (per-boot, see Node.Metrics).
func (c *Cluster) Snapshot() map[string]obs.Snapshot {
	out := make(map[string]obs.Snapshot)
	for i, n := range c.nodes {
		if n != nil {
			out[c.nodeCfg[i].Addr] = n.Snapshot()
		}
	}
	return out
}

// SnapshotJSON renders the cluster snapshot as indented JSON.
func (c *Cluster) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(c.Snapshot(), "", "  ")
}

// CrashNode crash-stops node i (files survive; memory is lost).
func (c *Cluster) CrashNode(i int) {
	c.nodes[i].Crash()
	c.nodes[i] = nil
}

// RestartNode reboots a crashed node from its directory and runs
// cluster-level recovery.
func (c *Cluster) RestartNode(i int) (*Node, error) {
	cfg := c.nodeCfg[i]
	// A restart re-attests to the CAS via the node's LAS — no IAS round
	// trip (§VI) — and recovers from persistent state.
	n, err := StartNode(cfg)
	if err != nil {
		return nil, err
	}
	c.nodes[i] = n
	if err := n.Recover(); err != nil {
		return nil, err
	}
	return n, nil
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() error {
	var errs []error
	for _, n := range c.nodes {
		if n != nil {
			errs = append(errs, n.Stop())
		}
	}
	c.nodes = nil
	for _, p := range c.ctrPoll {
		p.Stop()
	}
	for _, ep := range c.ctrEPs {
		errs = append(errs, ep.Close())
	}
	c.net.Close()
	if c.ownsDir {
		errs = append(errs, os.RemoveAll(c.baseDir))
	}
	return errors.Join(errs...)
}
