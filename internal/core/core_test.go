package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"treaty/internal/shardmap"
	"treaty/internal/simnet"
)

func newCluster(t *testing.T, mode SecurityMode) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{
		Nodes:       3,
		Mode:        mode,
		BaseDir:     t.TempDir(),
		LockTimeout: 500 * time.Millisecond,
		Workers:     4,
		Seed:        5,
		Link:        simnet.LinkConfig{Latency: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("NewCluster(%v): %v", mode, err)
	}
	t.Cleanup(func() { c.Stop() })
	return c
}

func TestClusterAllModesBasicTxn(t *testing.T) {
	for _, mode := range AllModes() {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, mode)
			tx := c.Node(0).Begin(nil)
			for i := 0; i < 9; i++ {
				if err := tx.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx2 := c.Node(1).Begin(nil)
			for i := 0; i < 9; i++ {
				v, ok, err := tx2.Get([]byte(fmt.Sprintf("k%d", i)))
				if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("k%d = %q/%v/%v", i, v, ok, err)
				}
			}
			tx2.Rollback()
		})
	}
}

func TestClientProtocolEndToEnd(t *testing.T) {
	c := newCluster(t, ModeSconeEnc)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx, err := cl.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.TxnPut([]byte("user:1"), []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := tx.TxnPut([]byte("user:2"), []byte("bob")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tx.TxnGet([]byte("user:1"))
	if err != nil || !found || string(v) != "alice" {
		t.Fatalf("RYOW via client: %q/%v/%v", v, found, err)
	}
	if err := tx.TxnCommit(); err != nil {
		t.Fatal(err)
	}

	// A second client (different coordinator) reads the data.
	cl2, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	tx2, err := cl2.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	v, found, err = tx2.TxnGet([]byte("user:2"))
	if err != nil || !found || string(v) != "bob" {
		t.Fatalf("cross-client read: %q/%v/%v", v, found, err)
	}
	if err := tx2.TxnRollback(); err != nil {
		t.Fatal(err)
	}
}

func TestClientRollbackDiscards(t *testing.T) {
	c := newCluster(t, ModeSconeEnc)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.TxnPut([]byte("ghost"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.TxnRollback(); err != nil {
		t.Fatal(err)
	}
	tx2, err := cl.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tx2.TxnGet([]byte("ghost")); found {
		t.Error("rolled-back write visible")
	}
	tx2.TxnRollback()
}

func TestClusterCrashRestartDurability(t *testing.T) {
	c := newCluster(t, ModeSconeEncStab)
	tx := c.Node(0).Begin(nil)
	for i := 0; i < 9; i++ {
		if err := tx.Put([]byte(fmt.Sprintf("durable-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash and restart node 1; committed data must survive and the
	// restarted node must serve it.
	c.CrashNode(1)
	if _, err := c.RestartNode(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	tx2 := c.Node(1).Begin(nil)
	for i := 0; i < 9; i++ {
		if _, ok, err := tx2.Get([]byte(fmt.Sprintf("durable-%d", i))); err != nil || !ok {
			t.Errorf("durable-%d after restart: %v/%v", i, ok, err)
		}
	}
	tx2.Rollback()
}

func TestClusterCoordinatorCrashRecovery(t *testing.T) {
	c := newCluster(t, ModeSconeEncStab)
	tx := c.Node(0).Begin(nil)
	for i := 0; i < 9; i++ {
		if err := tx.Put([]byte(fmt.Sprintf("cc-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash the coordinator node right after commit; restart must
	// recover the decision from the Clog and keep the data.
	c.CrashNode(0)
	if _, err := c.RestartNode(0); err != nil {
		t.Fatalf("restart coordinator: %v", err)
	}
	tx2 := c.Node(0).Begin(nil)
	for i := 0; i < 9; i++ {
		if _, ok, err := tx2.Get([]byte(fmt.Sprintf("cc-%d", i))); err != nil || !ok {
			t.Errorf("cc-%d after coordinator recovery: %v/%v", i, ok, err)
		}
	}
	tx2.Rollback()
}

func TestRuntimeChargesInSconeModes(t *testing.T) {
	c := newCluster(t, ModeSconeEnc)
	tx := c.Node(0).Begin(nil)
	if err := tx.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	stats := c.Node(0).Runtime().Stats()
	if stats.AsyncSyscalls == 0 {
		t.Error("scone mode must charge async syscalls for I/O")
	}
}

func TestRouterCoversAllNodes(t *testing.T) {
	// Shard-map-driven assignment: the uniform boot map spreads keys
	// over every member, routes each key to exactly one owner, and an
	// epoch flip changes routing only for the migrated slots.
	members := []shardmap.Member{{ID: 0, Addr: "a"}, {ID: 1, Addr: "b"}, {ID: 2, Addr: "c"}}
	m := shardmap.Uniform(members)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		owner := m.Owner(k)
		if owner == "" {
			t.Fatalf("key %s has no owner", k)
		}
		if m.Owner(k) != owner {
			t.Fatal("router must be deterministic")
		}
		seen[owner] = true
	}
	if len(seen) != 3 {
		t.Errorf("router used %d nodes, want 3", len(seen))
	}

	// Successor epoch: only keys in the migrated slot change owners.
	next := m.Clone()
	next.Epoch++
	const moved = 5
	next.Slots[moved] = (m.SlotOwner(moved) + 1) % 3
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("epoch-key-%d", i))
		before, after := m.Owner(k), next.Owner(k)
		if shardmap.SlotOf(k) == moved {
			if before == after {
				t.Fatalf("key %s in migrated slot kept owner %s", k, before)
			}
		} else if before != after {
			t.Fatalf("key %s outside migrated slot moved %s -> %s", k, before, after)
		}
	}
}

func TestSSTableTamperDetectedAtClusterLevel(t *testing.T) {
	base := t.TempDir()
	c, err := NewCluster(ClusterOptions{
		Nodes: 3, Mode: ModeSconeEncStab, BaseDir: base,
		MemTableSize: 16 << 10, // small: force flushes to SSTables
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Write enough data to flush tables on node-0.
	for round := 0; round < 8; round++ {
		tx := c.Node(0).Begin(nil)
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("bulk-%d-%d", round, i)
			val := fmt.Sprintf("%0512d", i)
			if err := tx.Put([]byte(key), []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := c.Node(i).DB().Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// The adversary flips a byte in one of node-0's tables on disk.
	matches, err := filepath.Glob(filepath.Join(base, "node-0", "sst-*.sst"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sstables flushed: %v (%d)", err, len(matches))
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Evict cached readers by restarting the node; reads against the
	// tampered table must fail loudly, never return wrong data.
	c.CrashNode(0)
	_, rerr := c.RestartNode(0)
	if rerr != nil {
		return // recovery already refused the tampered table: detected
	}
	sawError := false
	for round := 0; round < 8 && !sawError; round++ {
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("bulk-%d-%d", round, i)
			v, _, found, gerr := c.Node(0).DB().Get([]byte(key), c.Node(0).DB().LatestSeq())
			if gerr != nil {
				sawError = true
				break
			}
			if found && len(v) == 512 && string(v) != fmt.Sprintf("%0512d", i) {
				t.Fatalf("tampered data returned silently for %s", key)
			}
		}
	}
	if !sawError {
		t.Fatal("no integrity error surfaced for the tampered table")
	}
}

func TestConcurrentClientsManyTxns(t *testing.T) {
	c := newCluster(t, ModeSconeEnc)
	const nClients = 6
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cl, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		go func(cl *Client, i int) {
			for j := 0; j < 5; j++ {
				tx, err := cl.BeginTxn()
				if err != nil {
					errs <- err
					return
				}
				if err := tx.TxnPut([]byte(fmt.Sprintf("c%d-k%d", i, j)), []byte("v")); err != nil {
					tx.TxnRollback()
					errs <- err
					return
				}
				if err := tx.TxnCommit(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(cl, i)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
