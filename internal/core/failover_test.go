package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"treaty/internal/attest"
	"treaty/internal/shardmap"
	"treaty/internal/simnet"
)

func newReplicatedCluster(t *testing.T, mode SecurityMode) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{
		Nodes:       3,
		Mode:        mode,
		BaseDir:     t.TempDir(),
		LockTimeout: 500 * time.Millisecond,
		Workers:     4,
		Seed:        11,
		Link:        simnet.LinkConfig{Latency: 50 * time.Microsecond},
		Replicate:   true,
	})
	if err != nil {
		t.Fatalf("NewCluster(%v): %v", mode, err)
	}
	t.Cleanup(func() { c.Stop() })
	return c
}

// keysOwnedBy returns n distinct keys whose slots the given node owns
// under the current map.
func keysOwnedBy(t *testing.T, c *Cluster, owner uint64, n int) []string {
	t.Helper()
	m := c.CAS().ShardMap()
	var keys []string
	for i := 0; len(keys) < n && i < 100000; i++ {
		k := fmt.Sprintf("fo-%d", i)
		if m.OwnerID([]byte(k)) == owner {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("found only %d keys owned by node %d", len(keys), owner)
	}
	return keys
}

// TestFailoverPromoteBackup is the tentpole end-to-end: commit through
// the doomed primary, crash it, promote its recorded backup via the CAS
// certificate, and keep serving — the acknowledged data in the dead
// node's slots must survive on the successor, and the dead address must
// alias to it.
func TestFailoverPromoteBackup(t *testing.T) {
	for _, mode := range AllModes() {
		t.Run(mode.String(), func(t *testing.T) {
			c := newReplicatedCluster(t, mode)

			keys := keysOwnedBy(t, c, 0, 8)
			want := map[string]string{}
			// Mix coordinators so the doomed node's Clog carries real
			// distributed decisions, not just participant state.
			for i, k := range keys {
				tx := c.Node(i % 3).Begin(nil)
				v := fmt.Sprintf("v-%s", k)
				if err := tx.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatalf("commit %s: %v", k, err)
				}
				want[k] = v
			}

			c.CrashNode(0)
			successor, err := c.Promote(0)
			if err != nil {
				t.Fatalf("Promote(0): %v", err)
			}
			if successor.ID() != 1 {
				t.Fatalf("promoted node %d, want the recorded backup 1", successor.ID())
			}
			if got := successor.Snapshot().Counter("repl.promotions"); got != 1 {
				t.Fatalf("repl.promotions = %d, want 1", got)
			}

			// The dead primary's slots now belong to the successor...
			m := c.CAS().ShardMap()
			for s := 0; s < shardmap.NumSlots; s++ {
				if m.Slots[s] == 0 {
					t.Fatalf("slot %d still owned by the dead node", s)
				}
			}
			// ...and its address aliases to the successor on every
			// live node's view.
			for _, n := range c.LiveNodes() {
				if got := n.AddrOfNode(0); got != successor.Addr() {
					t.Fatalf("node %d resolves dead node to %q, want %q", n.ID(), got, successor.Addr())
				}
			}

			// Every acknowledged write survived the failover.
			check := successor.Begin(nil)
			for k, v := range want {
				got, ok, err := check.Get([]byte(k))
				if err != nil || !ok || string(got) != v {
					t.Fatalf("%s = %q/%v/%v after failover, want %q", k, got, ok, err, v)
				}
			}
			if err := check.Commit(); err != nil {
				t.Fatal(err)
			}

			// And the successor serves new writes on the adopted slots,
			// from both itself and the other survivor.
			for i, k := range keys {
				tx := c.Node(1 + i%2).Begin(nil)
				v := fmt.Sprintf("v2-%s", k)
				if err := tx.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatalf("post-failover commit %s: %v", k, err)
				}
			}
		})
	}
}

// TestFailoverAdversaries drives the three forbidden takeovers — a
// rolled-back mirror, a forked mirror, and a replayed certificate — and
// checks each is rejected with its own error and counter.
func TestFailoverAdversaries(t *testing.T) {
	c := newReplicatedCluster(t, ModeSconeEnc)

	for _, k := range keysOwnedBy(t, c, 0, 4) {
		tx := c.Node(0).Begin(nil)
		if err := tx.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNode(0)
	backup := c.Node(1)

	genuine := backup.BuildPromotionRequest(0)
	if len(genuine.Streams) == 0 {
		t.Fatal("no witnessed streams: the adversary tests would be vacuous")
	}

	// Rolled-back replica: the mirror claims a shorter prefix than the
	// CAS witnessed before the primary's counters stabilized.
	rolled := backup.BuildPromotionRequest(0)
	for i := range rolled.Streams {
		rolled.Streams[i].Seq = 0
		rolled.Streams[i].HaveBoundary = false
	}
	if _, err := backup.SubmitPromotion(rolled); !errors.Is(err, attest.ErrReplicaRolledBack) {
		t.Fatalf("rolled-back promotion: %v, want ErrReplicaRolledBack", err)
	}
	if got := backup.Snapshot().Counter("repl.rollback_rejected"); got != 1 {
		t.Fatalf("repl.rollback_rejected = %d, want 1", got)
	}

	// Forked replica: right length, wrong history — the digest at the
	// witnessed position diverges.
	forked := backup.BuildPromotionRequest(0)
	forked.Streams[0].DigestAtWitness[0] ^= 0xFF
	if _, err := backup.SubmitPromotion(forked); !errors.Is(err, attest.ErrReplicaForked) {
		t.Fatalf("forked promotion: %v, want ErrReplicaForked", err)
	}
	if got := backup.Snapshot().Counter("repl.fork_rejected"); got != 1 {
		t.Fatalf("repl.fork_rejected = %d, want 1", got)
	}

	// An unrelated node holding no mirror cannot be certified even with
	// the genuine claims: it is not the recorded backup.
	hijack := &attest.PromotionRequest{Primary: 0, Backup: 2, Streams: genuine.Streams}
	if _, err := c.CAS().IssuePromotionCert(hijack); err == nil {
		t.Fatal("non-recorded backup obtained a promotion certificate")
	}

	// The genuine takeover succeeds...
	cert, err := backup.SubmitPromotion(genuine)
	if err != nil {
		t.Fatalf("genuine promotion refused: %v", err)
	}
	if err := backup.InstallPromotionCert(cert); err != nil {
		t.Fatalf("genuine install: %v", err)
	}
	// ...and replaying the consumed certificate is rejected like a
	// stale shard map.
	if err := backup.InstallPromotionCert(cert); !errors.Is(err, attest.ErrPromotionReplayed) {
		t.Fatalf("replayed cert: %v, want ErrPromotionReplayed", err)
	}
	if got := backup.Snapshot().Counter("repl.cert_replay_rejected"); got != 1 {
		t.Fatalf("repl.cert_replay_rejected = %d, want 1", got)
	}
}

// TestFailoverBackupBeyondBootList mirrors
// TestAddNodeResolvesBeyondBootList for the replication path: the
// backup assignment points at a member added after the primary booted,
// so shipping only works if the shipper resolves the backup through the
// shard map's membership table — positional boot-list indexing would
// never find it.
func TestFailoverBackupBeyondBootList(t *testing.T) {
	c := newReplicatedCluster(t, ModeSconeEnc)
	n3, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}

	// Reassign node 0's slots to back up onto the newcomer (id 3 —
	// beyond every original node's 3-entry boot list).
	cur := c.CAS().ShardMap()
	next := cur.Clone()
	next.Epoch++
	for s := 0; s < shardmap.NumSlots; s++ {
		if next.Slots[s] == 0 {
			next.Backups[s] = 3
		}
	}
	if err := c.CAS().InstallShardMap(next); err != nil {
		t.Fatal(err)
	}
	c.RefreshShardMaps()

	for _, k := range keysOwnedBy(t, c, 0, 4) {
		tx := c.Node(0).Begin(nil)
		if err := tx.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// The primary replicated to the late-joined backup, not into a
	// degrade: resolution went through the membership table.
	snap := c.Node(0).Snapshot()
	if snap.Counter("repl.ship_acked") == 0 {
		t.Fatal("nothing replicated to the late-joined backup")
	}
	if snap.Counter("repl.ship_failed") != 0 {
		t.Fatal("shipping to the late-joined backup degraded")
	}
	if seq, _, ok := n3.Backup().StreamState(0, 1); !ok || seq == 0 {
		t.Fatalf("newcomer mirrors nothing from node 0 (seq=%d ok=%v)", seq, ok)
	}

	// And the newcomer can take over.
	c.CrashNode(0)
	successor, err := c.Promote(0)
	if err != nil {
		t.Fatalf("Promote(0): %v", err)
	}
	if successor.ID() != 3 {
		t.Fatalf("promoted node %d, want the late-joined backup 3", successor.ID())
	}
}
