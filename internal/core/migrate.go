package core

import (
	"fmt"
	"time"

	"treaty/internal/shardmap"
)

// MigrateOptions tunes MigrateSlot.
type MigrateOptions struct {
	// ChunkSize bounds keys per streamed chunk (0 = 256).
	ChunkSize int
	// DrainTimeout bounds the wait for in-flight transactions on the
	// migrating slot to finish after the fence drops (0 = 5s).
	DrainTimeout time.Duration
	// OnChunk, when non-nil, runs before each chunk is sent — the chaos
	// harness kills the source mid-stream through it.
	OnChunk func(chunk int)
}

// MigrateSlot moves one hash slot from its current owner to dstNode
// under live traffic:
//
//	fence (source) → drain → stream snapshot → install epoch+1 at the
//	CAS → refresh every node → unfence.
//
// The epoch flips only after the destination has durably applied the
// whole slot, so a crash at any earlier point leaves the old map — and
// single ownership — intact; the destination's partial copy is inert
// and is purged by the next attempt's first chunk.
func (c *Cluster) MigrateSlot(slot, dstNode int, opts MigrateOptions) error {
	if slot < 0 || slot >= shardmap.NumSlots {
		return fmt.Errorf("core: slot %d out of range", slot)
	}
	if dstNode < 0 || dstNode >= len(c.nodes) {
		return fmt.Errorf("core: no node %d", dstNode)
	}
	cur := c.cas.ShardMap()
	srcID := cur.SlotOwner(slot)
	if srcID == uint64(dstNode) {
		return nil // already there
	}
	src := c.nodes[srcID]
	dst := c.nodes[dstNode]
	if src == nil || dst == nil {
		return fmt.Errorf("core: migration endpoints down (src node %d, dst node %d)", srcID, dstNode)
	}

	// Fence: new operations on the slot are rejected retriably at the
	// source from here on. Always lift it — on success the slot is no
	// longer ours to serve anyway, on failure service must resume.
	src.part.FreezeSlot(slot)
	defer src.part.UnfreezeSlot(slot)

	// Drain: wait for in-flight transactions that touched the slot.
	drainDeadline := time.Now().Add(opts.DrainTimeout)
	if opts.DrainTimeout == 0 {
		drainDeadline = time.Now().Add(5 * time.Second)
	}
	for src.part.SlotActive(slot) > 0 {
		if time.Now().After(drainDeadline) {
			return fmt.Errorf("core: slot %d drain timed out", slot)
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Stream the slot's key range to the destination (durable there
	// before each chunk is acknowledged).
	if _, err := src.part.StreamSlot(dst.Addr(), slot, opts.ChunkSize, cur.Epoch+1, nil, opts.OnChunk); err != nil {
		return fmt.Errorf("core: streaming slot %d: %w", slot, err)
	}

	// Flip: sign epoch+1 at the CAS (stabilizing the trusted counter),
	// then push the new view to every live node.
	next := cur.Clone()
	next.Epoch++
	next.Slots[slot] = uint64(dstNode)
	if err := c.cas.InstallShardMap(next); err != nil {
		return fmt.Errorf("core: installing epoch %d: %w", next.Epoch, err)
	}
	c.RefreshShardMaps()
	return nil
}

// RefreshShardMaps pushes the CAS's current shard map to every live
// node (each node re-verifies it independently).
func (c *Cluster) RefreshShardMaps() {
	for _, n := range c.nodes {
		if n != nil {
			n.RefreshShardMap()
		}
	}
}

// AddNode grows the cluster by one member: the CAS registers the new
// address and signs an epoch in which the newcomer owns zero slots,
// then the node boots and attests normally. Slots are moved onto it
// with MigrateSlot afterwards.
func (c *Cluster) AddNode() (*Node, error) {
	id := len(c.nodes)
	addr := fmt.Sprintf("node-%d", id)
	if _, err := c.cas.AddNode(addr); err != nil {
		return nil, fmt.Errorf("core: CAS add node: %w", err)
	}
	cfg, err := c.nodeConfig(uint64(id), addr)
	if err != nil {
		return nil, err
	}
	n, err := StartNode(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: starting node %d: %w", id, err)
	}
	c.nodes = append(c.nodes, n)
	c.nodeCfg = append(c.nodeCfg, cfg)
	// Existing nodes learn the grown membership immediately (they would
	// otherwise catch up on the first wrong-epoch rejection).
	c.RefreshShardMaps()
	return n, nil
}
