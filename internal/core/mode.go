// Package core assembles Treaty nodes and clusters: it wires the
// simulated TEE, the storage engine, the transaction layer, the 2PC
// coordinator/participant, the secure RPC endpoint, the trusted counter
// client, and the attestation bootstrap into the system of Figure 1, and
// exposes the transactional client API (BeginTxn / TxnGet / TxnPut /
// TxnCommit / TxnRollback).
package core

import (
	"fmt"

	"treaty/internal/enclave"
	"treaty/internal/seal"
)

// SecurityMode selects one of the system configurations evaluated in the
// paper (§VIII). Each mode fixes the TEE runtime, the storage and
// network security level, and whether commits wait for stabilization.
type SecurityMode int

const (
	// ModeRocksDB is the native, non-secure baseline (DS-RocksDB /
	// RocksDB in the figures): no TEE costs, CRC-only logs, plaintext
	// RPC, no rollback protection.
	ModeRocksDB SecurityMode = iota + 1
	// ModeNativeTreaty runs Treaty's code natively (no TEE costs) with
	// integrity protection but no encryption.
	ModeNativeTreaty
	// ModeNativeTreatyEnc runs natively with full encryption.
	ModeNativeTreatyEnc
	// ModeSconeNoEnc runs inside the (simulated) enclave without
	// encryption — "Treaty w/o Enc".
	ModeSconeNoEnc
	// ModeSconeEnc runs inside the enclave with encryption — "Treaty w/
	// Enc".
	ModeSconeEnc
	// ModeSconeEncStab additionally runs the distributed trusted counter
	// service and gates acknowledgements on stabilization — "Treaty w/
	// Enc w/ Stab", the full system.
	ModeSconeEncStab
)

// String returns the evaluation label for the mode.
func (m SecurityMode) String() string {
	switch m {
	case ModeRocksDB:
		return "RocksDB"
	case ModeNativeTreaty:
		return "Native Treaty"
	case ModeNativeTreatyEnc:
		return "Native Treaty w/ Enc"
	case ModeSconeNoEnc:
		return "Treaty w/o Enc"
	case ModeSconeEnc:
		return "Treaty w/ Enc"
	case ModeSconeEncStab:
		return "Treaty w/ Enc w/ Stab"
	default:
		return fmt.Sprintf("SecurityMode(%d)", int(m))
	}
}

// AllModes lists the six single-node evaluation versions in figure order.
func AllModes() []SecurityMode {
	return []SecurityMode{
		ModeRocksDB, ModeNativeTreaty, ModeNativeTreatyEnc,
		ModeSconeNoEnc, ModeSconeEnc, ModeSconeEncStab,
	}
}

// EnclaveMode returns the TEE runtime mode for m.
func (m SecurityMode) EnclaveMode() enclave.Mode {
	switch m {
	case ModeRocksDB, ModeNativeTreaty, ModeNativeTreatyEnc:
		return enclave.ModeNative
	default:
		return enclave.ModeScone
	}
}

// StorageLevel returns the seal level for persistent structures.
func (m SecurityMode) StorageLevel() seal.SecurityLevel {
	switch m {
	case ModeRocksDB:
		return seal.LevelNone
	case ModeNativeTreaty, ModeSconeNoEnc:
		return seal.LevelIntegrity
	default:
		return seal.LevelEncrypted
	}
}

// SecureRPC reports whether RPC messages are sealed.
func (m SecurityMode) SecureRPC() bool {
	switch m {
	case ModeNativeTreatyEnc, ModeSconeEnc, ModeSconeEncStab:
		return true
	default:
		return false
	}
}

// WaitStable reports whether commits wait for rollback protection.
func (m SecurityMode) WaitStable() bool { return m == ModeSconeEncStab }

// UsesCounterService reports whether the distributed counter group runs.
func (m SecurityMode) UsesCounterService() bool { return m == ModeSconeEncStab }
