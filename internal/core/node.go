package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/attest"
	"treaty/internal/counter"
	"treaty/internal/enclave"
	"treaty/internal/erpc"
	"treaty/internal/fibers"
	"treaty/internal/lsm"
	"treaty/internal/mempool"
	"treaty/internal/obs"
	"treaty/internal/repl"
	"treaty/internal/seal"
	"treaty/internal/shardmap"
	"treaty/internal/simnet"
	"treaty/internal/twopc"
	"treaty/internal/txn"
	"treaty/internal/vfs"
)

// enclaveIdentity is the code identity every genuine Treaty node enclave
// measures to; the CAS only provisions keys to this measurement.
const enclaveIdentity = "treaty-node-v1"

// NodeMeasurement returns the expected enclave measurement of a Treaty
// node (used when deploying the CAS).
func NodeMeasurement() enclave.Measurement {
	return enclave.MeasureCode(enclaveIdentity)
}

// NodeConfig configures one Treaty node.
type NodeConfig struct {
	// ID is the node's cluster id (index into the CAS node list).
	ID uint64
	// Addr is the node's RPC address on the network.
	Addr string
	// Dir is the node's storage directory.
	Dir string
	// Mode selects the security configuration.
	Mode SecurityMode
	// Net is the network substrate.
	Net *simnet.Network
	// Platform is the node's machine.
	Platform *enclave.Platform
	// LAS is the platform's local attestation service.
	LAS *attest.LAS
	// CAS provisions keys after attestation.
	CAS *attest.CAS
	// Workers sizes the userland scheduler (0 = 8, the paper's setup).
	Workers int
	// LockTimeout bounds lock waits (0 = 1s).
	LockTimeout time.Duration
	// TxnTimeout bounds 2PC round-trips and decision stabilization
	// (0 = coordinator default).
	TxnTimeout time.Duration
	// IdleTimeout reclaims participant transactions abandoned by dead
	// coordinators (0 = participant default).
	IdleTimeout time.Duration
	// MemTableSize overrides the flush threshold (0 = engine default).
	MemTableSize int64
	// FS is the filesystem the node's durable writers (LSM, Clog,
	// trusted counter files) go through; nil uses the real OS. The chaos
	// and crash-point harnesses substitute fault-injecting filesystems.
	FS vfs.FS
	// ClogSync is retained for compatibility: the Clog's group-commit
	// leader forces every group before stabilizing it, so acknowledged
	// appends are always power-loss durable and this flag is a no-op
	// (see Clog.EnableSync).
	ClogSync bool
	// DisableGroupCommit is the group-commit ablation (both the storage
	// engine's WAL committer and the Clog leader).
	DisableGroupCommit bool
	// LockShards overrides the lock-table shard count.
	LockShards int
	// BlockCacheBytes sizes the engine's authenticated block cache
	// (0 = engine default, negative disables — the cache ablation).
	BlockCacheBytes int64
	// EPCBudget overrides the modelled enclave page cache size in bytes
	// (0 = the SGXv1 default).
	EPCBudget int64
	// Replicate enables per-shard primary-backup replication: the node
	// ships every fsynced WAL/Clog commit group to the backup the shard
	// map assigns its slots (before the groups' trusted counters
	// stabilize), and accepts mirror streams from peers backing up to
	// it. Failover goes through Promote, gated by a CAS promotion
	// certificate.
	Replicate bool
}

// Node is one running Treaty node (Figure 1): the trusted components —
// transaction layer, lock manager, transactional KV engine — inside the
// enclave; the untrusted network and storage stacks outside.
type Node struct {
	cfg     NodeConfig
	encl    *enclave.Enclave
	rt      *enclave.Runtime
	db      *lsm.DB
	mgr     *txn.Manager
	part    *twopc.Participant
	coord   *twopc.Coordinator
	clog    *twopc.Clog
	ep      *erpc.Endpoint
	poller  *erpc.Poller
	sched   *fibers.Scheduler
	pool    *mempool.Pool
	ctrCli  *counter.Client
	ctrEP   *erpc.Endpoint
	ctrPoll *erpc.Poller
	// trustedCtrs records every trusted counter the node's factory
	// handed out (WAL, Clog) so Crash can poison stabilization — the
	// acknowledgement gate — in one step, whatever the counter backend.
	ctrMu       sync.Mutex
	trustedCtrs []lsm.TrustedCounter
	cluster     *attest.ClusterConfig
	// shard holds the node's verified view of the attested shard map;
	// shardMin is the highest epoch this node has ever verified — the
	// rollback floor a replayed older map is checked against.
	shard    *shardmap.Holder
	shardKey seal.Key
	shardMin atomic.Uint64
	clients  *clientSessions
	reg      *obs.Registry

	// Replication (nil unless NodeConfig.Replicate): the mirror
	// receiver for peers backing up to this node, and this node's own
	// per-stream shippers.
	backup   *repl.Backup
	walShip  *repl.Shipper
	clogShip *repl.Shipper
}

// StartNode boots a node: launch the enclave, attest to the CAS, receive
// the cluster configuration, open (or recover) the storage engine, and
// start serving.
func StartNode(cfg NodeConfig) (*Node, error) {
	rtCfg := enclave.RuntimeConfig{Mode: cfg.Mode.EnclaveMode(), EPCBudget: cfg.EPCBudget}
	encl, err := cfg.Platform.Launch(enclaveIdentity, rtCfg)
	if err != nil {
		return nil, fmt.Errorf("core: launching enclave: %w", err)
	}
	if cfg.FS == nil {
		cfg.FS = vfs.Default
	}
	n := &Node{cfg: cfg, encl: encl, rt: encl.Runtime(), reg: obs.NewRegistry()}
	n.rt.RegisterMetrics(n.reg)
	// A fault-injecting filesystem carries cumulative fault counters;
	// export them alongside this incarnation's detection counters so the
	// soak can assert injected faults are not silently absorbed.
	if mr, ok := cfg.FS.(interface{ RegisterMetrics(*obs.Registry) }); ok {
		mr.RegisterMetrics(n.reg)
	}

	// Trust establishment: attest, receive keys and cluster layout.
	inst, err := attest.NewInstance(encl, cfg.LAS)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.CAS.Attest(inst.Request())
	if err != nil {
		return nil, fmt.Errorf("core: attestation: %w", err)
	}
	clusterCfg, err := inst.OpenResponse(resp)
	if err != nil {
		return nil, fmt.Errorf("core: opening provisioned config: %w", err)
	}
	n.cluster = clusterCfg

	// Shard map: fetch the CAS-signed routing epoch and verify it against
	// the trusted counter before serving anything. A node that cannot
	// establish a verified view must not boot — it would route blind.
	n.shardKey = shardmap.KeyFor(clusterCfg.NetworkKey)
	bootMap := cfg.CAS.ShardMap()
	if err := bootMap.Verify(n.shardKey, cfg.CAS.ShardMapStable()); err != nil {
		return nil, fmt.Errorf("core: boot shard map rejected: %w", err)
	}
	n.shard = shardmap.NewHolder(bootMap)
	n.shardMin.Store(bootMap.Epoch)
	n.reg.GaugeFunc("shardmap.epoch", func() int64 {
		return int64(n.shard.View().Epoch)
	})

	// Memory allocator and userland scheduler.
	n.pool = mempool.New(n.rt, 8)
	n.sched = fibers.New(cfg.Workers, n.rt)

	// RPC endpoint over the kernel-bypass transport.
	nep, err := cfg.Net.Listen(cfg.Addr)
	if err != nil {
		n.sched.Stop()
		return nil, err
	}
	n.ep, err = erpc.NewEndpoint(erpc.Config{
		NodeID:     cfg.ID,
		Transport:  erpc.NewSimTransport(nep, n.rt, erpc.KindDPDK),
		NetworkKey: clusterCfg.NetworkKey,
		Secure:     cfg.Mode.SecureRPC(),
		Runtime:    n.rt,
		Pool:       n.pool,
		Metrics:    n.reg,
	})
	if err != nil {
		nep.Close()
		n.sched.Stop()
		return nil, err
	}

	// Trusted counter client (stab mode) or immediate counters.
	counters, err := n.buildCounters(clusterCfg)
	if err != nil {
		// The endpoint is already listening: a partial shutdown must
		// release the address or a retried boot finds it in use.
		n.shutdownPartial()
		return nil, err
	}
	// Record every counter handed out, whatever the backend, so Crash
	// can poison them (cutting the node's acknowledgement path).
	baseCounters := counters
	counters = func(name string) lsm.TrustedCounter {
		c := baseCounters(name)
		n.ctrMu.Lock()
		n.trustedCtrs = append(n.trustedCtrs, c)
		n.ctrMu.Unlock()
		return c
	}

	// Replication: the backup receiver must exist before the engine
	// opens (peers may ship as soon as the endpoint polls), and the
	// shippers must exist before the engine opens so its commit hook is
	// wired from the first group.
	var walShipHook func([]lsm.ReplEntry)
	var clogShipHook func([]lsm.ReplEntry)
	if cfg.Replicate {
		n.backup, err = repl.NewBackup(repl.BackupConfig{
			Dir:     cfg.Dir,
			FS:      cfg.FS,
			Key:     clusterCfg.NetworkKey,
			Metrics: n.reg,
		})
		if err != nil {
			n.shutdownPartial()
			return nil, err
		}
		// Registered directly, NOT on a worker fiber: a mirror append
		// never touches this node's own commit path, so it stays
		// serviceable while every fiber is parked on a local commit
		// group that is itself waiting on a ship ack from a peer (the
		// mutual-replication cycle that would otherwise deadlock).
		n.ep.Register(twopc.ReqReplShip, n.backup.Handler())
		shipCfg := repl.ShipperConfig{
			Primary:  cfg.ID,
			Endpoint: n.ep,
			BackupOf: n.replBackupID,
			AddrOf: func(id uint64) (string, bool) {
				a := n.AddrOfNode(id)
				return a, a != ""
			},
			Witness: cfg.CAS,
			Key:     clusterCfg.NetworkKey,
			Metrics: n.reg,
		}
		shipCfg.Stream = repl.StreamWAL
		n.walShip = repl.NewShipper(shipCfg)
		walShipHook = n.walShip.Ship
		shipCfg.Stream = repl.StreamClog
		n.clogShip = repl.NewShipper(shipCfg)
		clogShipHook = n.clogShip.Ship
	}

	// Storage engine (recovers from cfg.Dir if state exists).
	n.db, err = lsm.Open(lsm.Options{
		Dir:                cfg.Dir,
		FS:                 cfg.FS,
		Level:              cfg.Mode.StorageLevel(),
		Key:                clusterCfg.StorageKey,
		Runtime:            n.rt,
		Counters:           counters,
		MemTableSize:       cfg.MemTableSize,
		DisableGroupCommit: cfg.DisableGroupCommit,
		BlockCacheBytes:    cfg.BlockCacheBytes,
		Pool:               n.pool,
		Metrics:            n.reg,
		Ship:               walShipHook,
	})
	if err != nil {
		n.shutdownPartial()
		return nil, err
	}

	// Transaction layer.
	n.mgr = txn.NewManager(txn.Config{
		DB:          n.db,
		LockShards:  cfg.LockShards,
		LockTimeout: cfg.LockTimeout,
		Pool:        n.pool,
		WaitStable:  cfg.Mode.WaitStable(),
	})

	// 2PC participant + coordinator.
	n.part = twopc.NewParticipant(twopc.ParticipantConfig{
		Manager:     n.mgr,
		Endpoint:    n.ep,
		Scheduler:   n.sched,
		IdleTimeout: cfg.IdleTimeout,
		NodeID:      cfg.ID,
		Shard:       n.shard,
		Refresh:     n.RefreshShardMap,
		Metrics:     n.reg,
	})
	clogCtr := counters("CLOG-000001")
	maxStable := int64(-1)
	if cfg.Mode.StorageLevel() > 1 { // integrity or encrypted
		maxStable = int64(clogCtr.StableValue())
	}
	clog, recovered, err := twopc.OpenClog(cfg.FS, cfg.Dir, cfg.Mode.StorageLevel(), clusterCfg.StorageKey, n.rt, clogCtr, maxStable)
	if err != nil {
		n.shutdownPartial()
		return nil, err
	}
	if cfg.ClogSync {
		clog.EnableSync() // compat no-op: every commit group is forced
	}
	clog.Configure(twopc.ClogTuning{
		DisableGroupCommit: cfg.DisableGroupCommit,
		Metrics:            n.reg,
		Pool:               n.pool,
		Ship:               clogShipHook,
	})
	if clog.TornTailDropped() {
		n.reg.Counter("storage.clog.torn_dropped").Inc()
	}
	n.clog = clog
	n.coord = twopc.NewCoordinator(twopc.CoordinatorConfig{
		NodeID:    cfg.ID,
		Endpoint:  n.ep,
		Clog:      clog,
		Router:    n.shard,
		Refresh:   n.RefreshShardMap,
		Recovered: recovered,
		Timeout:   cfg.TxnTimeout,
		Metrics:   n.reg,
	})

	// Re-initialize prepared transactions found during recovery; they
	// resolve with their coordinators once the cluster is up (Recover).
	if err := n.part.RestorePrepared(n.db.RecoveredPrepared()); err != nil {
		n.shutdownPartial()
		return nil, err
	}

	n.clients = newClientSessions(n)
	n.poller = erpc.StartPoller(n.ep)
	return n, nil
}

// buildCounters wires the trusted counter factory for the node's mode.
func (n *Node) buildCounters(clusterCfg *attest.ClusterConfig) (lsm.CounterFactory, error) {
	if !n.cfg.Mode.UsesCounterService() || len(clusterCfg.CounterReplicas) == 0 {
		// Instant-stability counters, persisted in the node directory: a
		// purely in-memory counter resets to zero on reboot, and at secure
		// storage levels recovery would then discard the entire WAL as an
		// unstabilized tail — losing acknowledged commits.
		fs := n.cfg.FS
		ctrDir := filepath.Join(n.cfg.Dir, "counters")
		if err := fs.MkdirAll(ctrDir, 0o755); err != nil {
			return nil, fmt.Errorf("core: counter dir: %w", err)
		}
		// Load every persisted counter up front: at secure storage levels
		// an unreadable or corrupt counter file must refuse the boot —
		// recovery running against a zero counter would discard the WAL
		// and silently lose acknowledged commits. Plain level never checks
		// freshness, so it may fall back to a volatile counter.
		secure := n.cfg.Mode.StorageLevel() > seal.LevelNone
		entries, err := fs.ReadDir(ctrDir)
		if err != nil {
			return nil, fmt.Errorf("core: counter dir: %w", err)
		}
		cache := make(map[string]lsm.TrustedCounter)
		for _, e := range entries {
			if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
				continue // .tmp: torn atomic-write leftover; the real file is authoritative
			}
			c, err := lsm.NewFileCounter(fs, filepath.Join(ctrDir, e.Name()))
			if err != nil {
				if secure {
					return nil, fmt.Errorf("core: trusted counter unreadable, refusing to boot (recovery would discard the WAL): %w", err)
				}
				c = lsm.NewImmediateCounter()
			}
			cache[e.Name()] = c
		}
		return func(name string) lsm.TrustedCounter {
			if c, ok := cache[name]; ok {
				return c
			}
			// Not in the cache ⇒ no counter file existed at boot, so there
			// is no pre-crash stable value to lose; a creation failure here
			// only costs durability of stabilizations made after it.
			c, err := lsm.NewFileCounter(fs, filepath.Join(ctrDir, name))
			if err != nil {
				c = lsm.NewImmediateCounter()
			}
			cache[name] = c
			return c
		}, nil
	}
	// Dedicated endpoint for counter traffic so protocol rounds are not
	// queued behind transaction handling. The endpoint identity is fresh
	// per boot: a restarted node must not collide with its pre-crash
	// (node, tx, op) tuples in the replicas' replay caches.
	cep, err := n.cfg.Net.Listen(n.cfg.Addr + "/ctr")
	if err != nil {
		return nil, err
	}
	bootID, err := randomID()
	if err != nil {
		return nil, err
	}
	n.ctrEP, err = erpc.NewEndpoint(erpc.Config{
		NodeID:     bootID,
		Transport:  erpc.NewSimTransport(cep, n.rt, erpc.KindDPDK),
		NetworkKey: clusterCfg.NetworkKey,
		Secure:     true,
		Runtime:    n.rt,
		Metrics:    n.reg,
		// The node endpoint already owns the "erpc." names in this
		// registry; the counter-service endpoint gets its own prefix.
		MetricsPrefix: "erpc.ctr",
	})
	if err != nil {
		return nil, err
	}
	n.ctrPoll = erpc.StartPoller(n.ctrEP)
	n.ctrCli, err = counter.NewClient(counter.ClientConfig{
		Endpoint: n.ctrEP,
		Replicas: clusterCfg.CounterReplicas,
		Metrics:  n.reg,
	})
	if err != nil {
		return nil, err
	}
	cli := n.ctrCli
	nodeID := n.cfg.ID
	return func(name string) lsm.TrustedCounter {
		// Counter names are namespaced per node: every node has its own
		// wal-000001.log, and their counters must be independent.
		full := fmt.Sprintf("node%d/%s", nodeID, name)
		h := cli.Counter(full)
		// Seed the local view from the protection group so recovery
		// freshness checks see the quorum-stable value.
		if v, err := cli.RecoverStable(full); err == nil {
			h.SeedStable(v)
		}
		return h
	}, nil
}

// shutdownPartial tears down whatever StartNode built before failing,
// releasing every network address so a later retry can bind again.
func (n *Node) shutdownPartial() {
	if n.ctrPoll != nil {
		n.ctrPoll.Stop()
	}
	if n.ctrCli != nil {
		n.ctrCli.Close()
	}
	if n.ctrEP != nil {
		_ = n.ctrEP.Close()
	}
	if n.db != nil {
		_ = n.db.Close()
	}
	if n.sched != nil {
		n.sched.Stop()
	}
	if n.ep != nil {
		_ = n.ep.Close()
	}
	if n.backup != nil {
		_ = n.backup.Close()
	}
}

// randomID draws a fresh 63-bit identity.
func randomID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("core: random id: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]) >> 1, nil
}

// RefreshShardMap refetches the CAS-signed shard map and installs it if
// it verifies and advances the node's view. Called after wrong-epoch
// rejections (both directions) and after a migration flips the epoch.
func (n *Node) RefreshShardMap() {
	m := n.cfg.CAS.ShardMap()
	if m == nil {
		return
	}
	if err := n.ApplyShardMap(m); err != nil {
		n.reg.Counter("shardmap.refresh_rejected").Inc()
	}
}

// ApplyShardMap verifies a presented shard map — signature, counter
// binding, and the node's own rollback floor — and installs it if it is
// at least as new as the current view. A replayed older map (even one
// carrying a genuine CAS signature) fails the floor check and fires
// shardmap.stale_epoch_rejected.
func (n *Node) ApplyShardMap(m *shardmap.Map) error {
	floor := n.shardMin.Load()
	if ctr := n.cfg.CAS.ShardMapStable(); ctr > floor {
		// The trusted counter has advanced past our floor: adopt the
		// tighter bound (rollback detection against long-offline nodes).
		floor = ctr
	}
	if err := m.Verify(n.shardKey, floor); err != nil {
		if errors.Is(err, shardmap.ErrStaleEpoch) {
			n.reg.Counter("shardmap.stale_epoch_rejected").Inc()
		}
		return err
	}
	for {
		cur := n.shardMin.Load()
		if m.Epoch <= cur || n.shardMin.CompareAndSwap(cur, m.Epoch) {
			break
		}
	}
	if cur := n.shard.View(); cur == nil || m.Epoch > cur.Epoch {
		n.shard.Store(m.Clone())
	}
	return nil
}

// Shard exposes the node's shard-map holder (routing view).
func (n *Node) Shard() *shardmap.Holder { return n.shard }

// ShardEpoch reports the node's current shard-map epoch.
func (n *Node) ShardEpoch() uint64 { return n.shard.View().Epoch }

// AddrOfNode resolves a member id to its RPC address through the shard
// map's membership table. Resolution is by member ID, never by position
// in the boot-time node list: after cluster growth a node's provisioned
// list may be shorter than the membership, and positional indexing
// would misresolve (or drop) coordinators.
func (n *Node) AddrOfNode(id uint64) string {
	if v := n.shard.View(); v != nil {
		if a, ok := v.Addr(id); ok {
			return a
		}
	}
	// Membership miss: fall back to the provisioned boot list only for
	// ids it actually covers.
	if int(id) < len(n.cluster.Nodes) {
		return n.cluster.Nodes[id]
	}
	return ""
}

// replBackupID resolves the backup node the current shard map assigns
// this node's slots. Replication streams are per node-pair: if the map
// ever assigns different backups to different slots of this node, the
// assignment is ambiguous for a whole-log stream and the shipper treats
// it as unassigned (degrading if it had already bound a mirror).
func (n *Node) replBackupID() (uint64, bool) {
	v := n.shard.View()
	if v == nil {
		return 0, false
	}
	var id uint64
	found := false
	for s := 0; s < shardmap.NumSlots; s++ {
		if v.Slots[s] != n.cfg.ID {
			continue
		}
		b, ok := v.SlotBackup(s)
		if !ok || b == n.cfg.ID {
			continue
		}
		if found && b != id {
			return 0, false
		}
		id, found = b, true
	}
	return id, found
}

// Backup exposes the node's mirror receiver (nil unless replicating).
func (n *Node) Backup() *repl.Backup { return n.backup }

// Begin starts a distributed transaction coordinated by this node.
func (n *Node) Begin(yield func()) *twopc.DistTxn { return n.coord.Begin(yield) }

// Recover finishes crash recovery once the whole cluster is reachable:
// the coordinator re-drives its pending transactions and the participant
// resolves recovered prepared transactions with their coordinators (§VI).
func (n *Node) Recover() error {
	if err := n.coord.RecoverPending(nil); err != nil {
		return err
	}
	return n.part.ResolveRecovered(n.AddrOfNode, 20, nil)
}

// Stop shuts the node down cleanly.
func (n *Node) Stop() error {
	n.stopShippers()
	n.poller.Stop()
	n.part.Close()
	n.sched.Stop()
	if n.ctrPoll != nil {
		n.ctrPoll.Stop()
	}
	if n.ctrCli != nil {
		n.ctrCli.Close()
	}
	var errs []error
	errs = append(errs, n.clog.Close(), n.db.Close(), n.ep.Close())
	if n.ctrEP != nil {
		errs = append(errs, n.ctrEP.Close())
	}
	if n.backup != nil {
		errs = append(errs, n.backup.Close())
	}
	return errors.Join(errs...)
}

// stopShippers makes later Ship hooks silent no-ops (no witness, no
// degrade). Teardown-time commit groups then stabilize unshipped, which
// is sound because their acknowledgements can no longer be delivered
// (the scheduler and poller are dying with them): replication promises
// that *acknowledged* commits survive failover — a client ack is
// delivered only after Ship returned with the backup's ack — and work
// that dies unacknowledged inside the node may be lost, exactly like
// work cut off by the power-loss model. Without this, a crash-time
// in-flight ship would fail against the closing endpoint and durably
// degrade the stream, vetoing the very promotion the crash calls for.
func (n *Node) stopShippers() {
	if n.walShip != nil {
		n.walShip.Stop()
	}
	if n.clogShip != nil {
		n.clogShip.Stop()
	}
}

// errCrashStopped fails stabilization waits caught mid-flight by Crash.
var errCrashStopped = errors.New("core: node crash-stopped")

// Crash kills the node without any graceful shutdown: in-memory state is
// lost, only synced files survive (the crash-fail model, §III).
//
// Ordering matters for a faithful crash: stop ingesting requests first
// (poller), silence the participant's janitor without rolling anything
// back (Abandon — rollback would be graceful shutdown, not a crash),
// then stop the scheduler so mid-yield fibers freeze permanently instead
// of mutating files a restarted instance now owns, and finally release
// the network addresses.
func (n *Node) Crash() {
	// Poison stabilization BEFORE stopping the shippers. Every
	// acknowledgement this node can externalize — a participant's
	// prepare vote, a coordinator's commit return — is gated on a
	// stable-token wait that runs AFTER the group's Ship hook. Poisoning
	// first therefore closes the staged-teardown window: any Ship that
	// observes the stop flag (and silently skips the mirror) is followed
	// by a token wait that observes the poison and fails, so a commit
	// group absent from the mirror can never reach a client or a
	// coordinator as acknowledged. Without this ordering, an in-flight
	// transaction could skip the ship, stabilize, and ack during the
	// milliseconds the rest of the teardown takes — a client-visible
	// commit the promoted backup has never heard of.
	// But first, crash-stop the Clog. Coordinator appends run on client
	// goroutines that nothing below can freeze, and the poison is about
	// to wake every stabilization waiter into its abort path — which
	// appends an abort decision. Abandon makes those appends fail
	// without touching the file and barriers on the in-flight group, so
	// once Crash returns no write can ever reach a file the restarted
	// instance owns (the observed failure was a spliced Clog hash chain
	// mid-file after a crash-restart round).
	n.clog.Abandon()
	if n.ctrCli != nil {
		n.ctrCli.Fail(errCrashStopped)
	}
	// The counter-service client above only covers the stabilization
	// modes; the native modes hand out file counters, which stabilize
	// instantly — poison those too, or their waitToken always succeeds.
	n.ctrMu.Lock()
	ctrs := append([]lsm.TrustedCounter(nil), n.trustedCtrs...)
	n.ctrMu.Unlock()
	for _, c := range ctrs {
		if f, ok := c.(interface{ Fail(error) }); ok {
			f.Fail(errCrashStopped)
		}
	}
	n.stopShippers()
	n.poller.Stop()
	n.part.Abandon()
	n.sched.Stop()
	if n.ctrPoll != nil {
		n.ctrPoll.Stop()
	}
	if n.ctrCli != nil {
		n.ctrCli.Close()
	}
	_ = n.ep.Close()
	if n.ctrEP != nil {
		_ = n.ctrEP.Close()
	}
	// The DB and in-flight transactions are abandoned, not closed.
}

// DB exposes the storage engine (benchmarks, tests).
func (n *Node) DB() *lsm.DB { return n.db }

// Manager exposes the transaction manager (single-node benchmarks).
func (n *Node) Manager() *txn.Manager { return n.mgr }

// Runtime exposes the TEE runtime (stats).
func (n *Node) Runtime() *enclave.Runtime { return n.rt }

// Addr returns the node's RPC address.
func (n *Node) Addr() string { return n.cfg.Addr }

// ID returns the node's cluster id.
func (n *Node) ID() uint64 { return n.cfg.ID }

// Endpoint exposes the RPC endpoint (tests).
func (n *Node) Endpoint() *erpc.Endpoint { return n.ep }

// Participant exposes the 2PC participant (leak checks, tests).
func (n *Node) Participant() *twopc.Participant { return n.part }

// Coordinator exposes the 2PC coordinator (leak checks, tests).
func (n *Node) Coordinator() *twopc.Coordinator { return n.coord }

// Metrics exposes the node's metrics registry. Every subsystem of this
// boot registers into it; a restarted node starts a fresh registry, so
// counters are per-incarnation.
func (n *Node) Metrics() *obs.Registry { return n.reg }

// Snapshot returns a point-in-time view of every metric on the node.
func (n *Node) Snapshot() obs.Snapshot { return n.reg.Snapshot() }
