package core

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"treaty/internal/attest"
	"treaty/internal/lsm"
	"treaty/internal/repl"
	"treaty/internal/twopc"
)

// debugPromote dumps the mirror replay to stderr (TREATY_DEBUG_PROMOTE=1).
var debugPromote = os.Getenv("TREATY_DEBUG_PROMOTE") != ""

func dbgf(format string, args ...any) {
	if debugPromote {
		fmt.Fprintf(os.Stderr, "[promote] "+format+"\n", args...)
	}
}

func dbgBatch(prefix string, b *lsm.Batch) {
	if !debugPromote {
		return
	}
	_ = b.Each(func(kind lsm.RecordKind, key, value []byte) error {
		fmt.Fprintf(os.Stderr, "[promote]   %s %q = %q\n", prefix, key, value)
		return nil
	})
}

// Failover: a backup taking over a dead primary's slots. The takeover is
// gated by a CAS promotion certificate — the trusted-counter-anchored
// proof that this backup's mirror covers every commit group any
// stabilized counter value can reference — and then replays the mirror
// through the same decode paths crash recovery uses:
//
//	phase A (before the epoch flip): WAL mirror → engine state. Committed
//	  batches re-apply; prepares without decisions restore as prepared
//	  transactions for 2PC resolution, exactly as a local reboot would.
//	phase B (after the flip): Clog mirror → coordinator adoption. The
//	  dead primary's undecided transactions re-drive under this node's
//	  coordinator, with participant lists rewritten so entries naming
//	  the dead primary's address now name ours (we ARE that address in
//	  the new epoch — InstallPromotion aliased the membership entry).
//
// A decision absent from the mirror was never stabilized on the primary,
// so it was never acknowledged anywhere — presumed abort stays sound
// across the takeover.

// BuildPromotionRequest assembles this node's mirror evidence for taking
// over primary: one claim per CAS-witnessed stream, carrying how far the
// mirror reaches and its digest at the witnessed position.
func (n *Node) BuildPromotionRequest(primary uint64) *attest.PromotionRequest {
	req := &attest.PromotionRequest{Primary: primary, Backup: n.cfg.ID}
	for _, w := range n.cfg.CAS.ReplWitnesses(primary) {
		cl := attest.StreamClaim{Stream: w.Stream}
		if n.backup != nil {
			if seq, _, ok := n.backup.StreamState(primary, w.Stream); ok {
				cl.Seq = seq
			}
			if d, ok := n.backup.DigestAt(primary, w.Stream, w.Seq); ok {
				cl.DigestAtWitness = d
				cl.HaveBoundary = true
			}
		}
		req.Streams = append(req.Streams, cl)
	}
	return req
}

// notePromotionReject maps a promotion failure to its rejection counter,
// mirroring how stale shard maps fire shardmap.stale_epoch_rejected.
func (n *Node) notePromotionReject(err error) {
	switch {
	case errors.Is(err, attest.ErrReplicaRolledBack):
		n.reg.Counter("repl.rollback_rejected").Inc()
	case errors.Is(err, attest.ErrReplicaForked):
		n.reg.Counter("repl.fork_rejected").Inc()
	case errors.Is(err, attest.ErrPromotionReplayed):
		n.reg.Counter("repl.cert_replay_rejected").Inc()
	}
}

// SubmitPromotion asks the CAS to certify this node as primary's
// successor; rollback/fork rejections fire their counters.
func (n *Node) SubmitPromotion(req *attest.PromotionRequest) (*attest.PromotionCert, error) {
	cert, err := n.cfg.CAS.IssuePromotionCert(req)
	if err != nil {
		n.notePromotionReject(err)
		return nil, err
	}
	return cert, nil
}

// InstallPromotionCert consumes a certificate: the CAS installs the
// successor epoch and this node adopts it. Replayed certificates fire
// repl.cert_replay_rejected.
func (n *Node) InstallPromotionCert(cert *attest.PromotionCert) error {
	m, err := n.cfg.CAS.InstallPromotion(cert)
	if err != nil {
		n.notePromotionReject(err)
		return err
	}
	return n.ApplyShardMap(m)
}

// Promote performs the full takeover of a dead primary: certificate,
// mirror replay, epoch flip, and adoption of the primary's in-flight
// 2PC transactions. The primary must be dead — Treaty's failure model
// (crash-stop, no rejoin under the old identity) is what makes serving
// its slots from here safe.
func (n *Node) Promote(primary uint64) error {
	if n.backup == nil {
		return errors.New("core: node is not replicating")
	}
	req := n.BuildPromotionRequest(primary)
	cert, err := n.SubmitPromotion(req)
	if err != nil {
		return fmt.Errorf("core: promotion refused: %w", err)
	}
	// The dead primary's address, resolved in the pre-flip epoch — after
	// the flip it aliases to us, which is exactly why it must be captured
	// now for the Clog participant rewrite.
	oldAddr := n.AddrOfNode(primary)

	// Phase A: WAL mirror → engine, through recovery's decode semantics.
	pending := make(map[lsm.TxID]*lsm.Batch)
	var order []lsm.TxID
	for _, f := range n.backup.Frames(primary, repl.StreamWAL) {
		switch f.Kind {
		case lsm.WALKindBatch:
			b, err := lsm.DecodeBatch(f.Payload)
			if err != nil {
				return fmt.Errorf("core: promoting %d: WAL batch: %w", primary, err)
			}
			dbgf("walA ctr=%d batch count=%d", f.Counter, b.Count())
			dbgBatch("batch", b)
			if _, _, err := n.db.Apply(b); err != nil {
				return fmt.Errorf("core: promoting %d: applying batch: %w", primary, err)
			}
		case lsm.WALKindPrepare:
			id, b, err := lsm.DecodePreparePayload(f.Payload)
			if err != nil {
				return fmt.Errorf("core: promoting %d: WAL prepare: %w", primary, err)
			}
			dbgf("walA ctr=%d prepare tx=%x count=%d", f.Counter, id, b.Count())
			dbgBatch("prep", b)
			if _, ok := pending[id]; !ok {
				order = append(order, id)
			}
			pending[id] = b
		case lsm.WALKindTxDecision:
			id, commit, err := lsm.DecodeDecisionPayload(f.Payload)
			if err != nil {
				return fmt.Errorf("core: promoting %d: WAL decision: %w", primary, err)
			}
			dbgf("walA ctr=%d decision tx=%x commit=%v", f.Counter, id, commit)
			// A decided transaction needs no restore: a commit's data
			// arrives as its own batch record (CommitPrepared appends
			// both), an abort left no engine state.
			delete(pending, id)
		default:
			return fmt.Errorf("core: promoting %d: unknown WAL record kind %d", primary, f.Kind)
		}
	}
	var undecided []lsm.PreparedTx
	for _, id := range order {
		if b, ok := pending[id]; ok {
			undecided = append(undecided, lsm.PreparedTx{ID: id, Batch: b})
		}
	}
	sort.Slice(undecided, func(i, j int) bool {
		return string(undecided[i].ID[:]) < string(undecided[j].ID[:])
	})
	for _, u := range undecided {
		dbgf("restore prepared tx=%x count=%d", u.ID, u.Batch.Count())
	}
	if err := n.part.RestorePrepared(undecided); err != nil {
		return fmt.Errorf("core: promoting %d: restoring prepared: %w", primary, err)
	}

	// Epoch flip: from here the dead primary's slots — and its address —
	// are ours.
	if err := n.InstallPromotionCert(cert); err != nil {
		return fmt.Errorf("core: promotion install: %w", err)
	}

	// Phase B: Clog mirror → coordinator adoption. Entries naming the
	// dead primary as a participant are rewritten to us.
	var entries []twopc.ClogEntry
	for _, f := range n.backup.Frames(primary, repl.StreamClog) {
		e, err := twopc.DecodeClogRecord(f.Kind, f.Counter, f.Payload)
		if err != nil {
			return fmt.Errorf("core: promoting %d: clog record: %w", primary, err)
		}
		dbgf("clogB tx=%x kind=%d commit=%v parts=%v", e.TxID, e.Kind, e.Commit, e.Participants)
		entries = append(entries, e)
	}
	rewrite := func(a string) string {
		if a == oldAddr {
			return n.cfg.Addr
		}
		return a
	}
	if err := n.coord.AdoptRecovered(entries, rewrite, nil); err != nil {
		return fmt.Errorf("core: promoting %d: adopting clog: %w", primary, err)
	}
	if err := n.part.ResolveRecovered(n.AddrOfNode, 20, nil); err != nil {
		return fmt.Errorf("core: promoting %d: resolving prepared: %w", primary, err)
	}
	n.reg.Counter("repl.promotions").Inc()
	return nil
}

// Promote fails over a dead (crashed) node: its recorded backup builds
// the promotion evidence, obtains the CAS certificate, replays its
// mirror, and takes over the slots; every live node then refreshes to
// the successor epoch. Returns the promoted node.
func (c *Cluster) Promote(dead int) (*Node, error) {
	if c.nodes[dead] != nil {
		return nil, fmt.Errorf("core: node %d is still live; crash it before promoting", dead)
	}
	deadID := c.nodeCfg[dead].ID
	m := c.cas.ShardMap()
	backupID := uint64(0)
	found := false
	for s := 0; s < len(m.Slots); s++ {
		if m.Slots[s] != deadID {
			continue
		}
		if b, ok := m.SlotBackup(s); ok {
			backupID, found = b, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: node %d has no recorded backup", dead)
	}
	var successor *Node
	for _, n := range c.nodes {
		if n != nil && n.ID() == backupID {
			successor = n
			break
		}
	}
	if successor == nil {
		return nil, fmt.Errorf("core: backup node %d is not live", backupID)
	}
	if err := successor.Promote(deadID); err != nil {
		return nil, err
	}
	c.RefreshShardMaps()
	return successor, nil
}
