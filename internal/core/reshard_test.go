package core

import (
	"errors"
	"fmt"
	"testing"

	"treaty/internal/obs"
	"treaty/internal/shardmap"
)

// TestClusterMigrateSlotUnderTraffic moves a slot between live nodes
// and checks that every key — inside and outside the slot — survives
// with the right value, and that every node converged on the new epoch.
func TestClusterMigrateSlotUnderTraffic(t *testing.T) {
	c := newCluster(t, ModeSconeEnc)

	want := map[string]string{}
	tx := c.Node(0).Begin(nil)
	for i := 0; i < 96; i++ {
		k, v := fmt.Sprintf("mig-%d", i), fmt.Sprintf("val-%d", i)
		if err := tx.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Find a slot currently owned by node 1 and move it to node 2.
	cur := c.CAS().ShardMap()
	slot := -1
	for s := 0; s < shardmap.NumSlots; s++ {
		if cur.SlotOwner(s) == 1 {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Fatal("node 1 owns no slots")
	}
	if err := c.MigrateSlot(slot, 2, MigrateOptions{ChunkSize: 4}); err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}

	for i := 0; i < c.Nodes(); i++ {
		if got := c.Node(i).ShardEpoch(); got != 2 {
			t.Errorf("node %d epoch = %d, want 2", i, got)
		}
	}
	check := c.Node(0).Begin(nil)
	for k, v := range want {
		got, ok, err := check.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("%s = %q/%v/%v after migration, want %q", k, got, ok, err, v)
		}
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}

	// Migrating the slot again to the same owner is a no-op.
	if err := c.MigrateSlot(slot, 2, MigrateOptions{}); err != nil {
		t.Fatalf("idempotent migrate: %v", err)
	}
}

// TestStaleShardMapRejected replays a genuinely CAS-signed but
// superseded map to a node and to a client: both must refuse it via the
// counter binding and fire shardmap.stale_epoch_rejected.
func TestStaleShardMapRejected(t *testing.T) {
	c := newCluster(t, ModeSconeEnc)

	// Capture the signed epoch-1 map, then advance the cluster to 2.
	old := c.CAS().ShardMap()
	next := old.Clone()
	next.Epoch++
	if err := c.CAS().InstallShardMap(next); err != nil {
		t.Fatal(err)
	}
	c.RefreshShardMaps()

	// Node side.
	n := c.Node(1)
	if err := n.ApplyShardMap(old); !errors.Is(err, shardmap.ErrStaleEpoch) {
		t.Fatalf("node accepted replayed map: %v", err)
	}
	if got := n.Snapshot().Counter("shardmap.stale_epoch_rejected"); got == 0 {
		t.Error("node shardmap.stale_epoch_rejected did not fire")
	}

	// Client side (own metrics registry).
	reg := obs.NewRegistry()
	c.cas.RegisterClient("replay-victim", []byte("s"))
	cl, err := Connect(ClientOptions{
		ID: 777, Addr: "client-replay", Net: c.net, CAS: c.cas,
		CredentialID: "replay-victim", Secret: []byte("s"),
		Secure: c.opts.Mode.SecureRPC(), Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.ShardEpoch() != 2 {
		t.Fatalf("client connected at epoch %d, want 2", cl.ShardEpoch())
	}
	if err := cl.ApplyShardMap(old); !errors.Is(err, shardmap.ErrStaleEpoch) {
		t.Fatalf("client accepted replayed map: %v", err)
	}
	if got := reg.Snapshot().Counter("shardmap.stale_epoch_rejected"); got == 0 {
		t.Error("client shardmap.stale_epoch_rejected did not fire")
	}

	// A tampered map (re-slotted without re-signing) dies on the MAC.
	forged := c.CAS().ShardMap()
	forged.Slots[0] = (forged.Slots[0] + 1) % 3
	if err := n.ApplyShardMap(forged); !errors.Is(err, shardmap.ErrBadSignature) {
		t.Fatalf("node accepted tampered map: %v", err)
	}
}

// TestAddNodeResolvesBeyondBootList is the addrOf regression test: the
// boot-time provisioned node list on an old node has only the original
// members, so positional indexing cannot resolve a member added later.
// Resolution must go through the shard map's membership table.
func TestAddNodeResolvesBeyondBootList(t *testing.T) {
	c := newCluster(t, ModeSconeEnc)

	n3, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if n3.ID() != 3 || n3.Addr() != "node-3" {
		t.Fatalf("new node = %d/%s", n3.ID(), n3.Addr())
	}

	// node-0 booted with a 3-entry node list; member 3 must still
	// resolve (through the shard map, not the boot list).
	if got := c.Node(0).AddrOfNode(3); got != "node-3" {
		t.Fatalf("AddrOfNode(3) = %q, want node-3 (positional boot-list resolution?)", got)
	}
	// And ids outside any membership resolve to nothing, not a panic.
	if got := c.Node(0).AddrOfNode(99); got != "" {
		t.Fatalf("AddrOfNode(99) = %q, want empty", got)
	}

	// Every old node converged on the grown membership epoch.
	for i := 0; i < 3; i++ {
		if got := c.Node(i).ShardEpoch(); got != 2 {
			t.Errorf("node %d epoch = %d, want 2", i, got)
		}
	}

	// Move a slot onto the newcomer and route traffic through it.
	cur := c.CAS().ShardMap()
	slot := -1
	for s := 0; s < shardmap.NumSlots; s++ {
		if cur.SlotOwner(s) == 0 {
			slot = s
			break
		}
	}
	tx := c.Node(0).Begin(nil)
	var inSlot []string
	for i := 0; len(inSlot) < 3; i++ {
		k := fmt.Sprintf("grow-%d", i)
		if shardmap.SlotOf([]byte(k)) == slot {
			inSlot = append(inSlot, k)
		}
		if err := tx.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.MigrateSlot(slot, 3, MigrateOptions{ChunkSize: 2}); err != nil {
		t.Fatalf("migrate to new node: %v", err)
	}
	if owner := c.Node(0).Shard().View().SlotOwner(slot); owner != 3 {
		t.Fatalf("slot %d owner = %d, want 3", slot, owner)
	}
	check := c.Node(1).Begin(nil)
	for _, k := range inSlot {
		v, ok, err := check.Get([]byte(k))
		if err != nil || !ok || string(v) != "v-"+k {
			t.Fatalf("%s after growth migration = %q/%v/%v", k, v, ok, err)
		}
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
}
