// Package counter implements Treaty's asynchronous distributed trusted
// counter service (§VI), modelled on ROTE: a protection group of counter
// enclaves that make monotonic counter values rollback-protected via an
// echo-broadcast protocol with a confirmation round.
//
// Protocol (per counter update): the sender enclave (SE) broadcasts the
// counter value to all replica enclaves (REs). Each RE stores the value
// in protected memory and returns an echo. Once the SE holds echoes from
// a quorum q it starts the confirmation round; each RE verifies the value
// matches what it stored, replies ACK, and seals its state to persistent
// storage. After q ACKs the value is stable: a majority of enclaves will
// report at least this value after any crash, so a rolled-back log can
// always be detected at recovery.
//
// The client interface is asynchronous (Stabilize enqueues, WaitStable
// blocks), letting Treaty overlap counter latency with other work —
// commits only wait at the stabilization points the protocol requires.
// SGX's own monotonic counters are not used: they take up to ~250 ms per
// increment, wear out, and are per-CPU (§IV-B); this service is the
// paper's answer.
package counter

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/erpc"
	"treaty/internal/obs"
	"treaty/internal/seal"
)

// Request types used by the counter protocol.
const (
	reqUpdate  uint8 = 0xC1 // round 1: echo broadcast
	reqConfirm uint8 = 0xC2 // round 2: confirmation
	reqQuery   uint8 = 0xC3 // recovery: read stable value
)

// ErrNoQuorum indicates the protection group could not reach quorum.
var ErrNoQuorum = errors.New("counter: no quorum")

// wire helpers: name-length-prefixed name ∥ value.
func encodeReq(name string, value uint64) []byte {
	out := make([]byte, 0, 2+len(name)+8)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint64(out, value)
	return out
}

func decodeReq(data []byte) (string, uint64, error) {
	if len(data) < 2 {
		return "", 0, errors.New("counter: short request")
	}
	n := int(binary.LittleEndian.Uint16(data))
	if len(data) < 2+n+8 {
		return "", 0, errors.New("counter: short request")
	}
	name := string(data[2 : 2+n])
	v := binary.LittleEndian.Uint64(data[2+n:])
	return name, v, nil
}

// Client is the sender-enclave side: it drives the two-round protocol
// against a protection group and exposes per-log-file counter handles.
type Client struct {
	ep       *erpc.Endpoint
	replicas []string
	quorum   int
	timeout  time.Duration

	mu      sync.Mutex
	handles map[string]*Handle
	failErr error // sticky client-wide poison (Fail); new handles inherit it

	// Id allocation is atomic, not mutex-guarded: broadcast takes ids on
	// the stabilization hot path, concurrently from every handle pump.
	nextOp atomic.Uint64
	nextTx atomic.Uint64

	// metrics (nil-safe when no registry is configured)
	rounds        *obs.Counter
	roundFailures *obs.Counter
	roundLatency  *obs.Histogram
	batchSize     *obs.Histogram
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Endpoint is the RPC port used to reach the replicas. Its event
	// loop must be driven (e.g. erpc.StartPoller).
	Endpoint *erpc.Endpoint
	// Replicas are the protection group's addresses.
	Replicas []string
	// Quorum defaults to majority.
	Quorum int
	// Timeout bounds each protocol round (default 2s).
	Timeout time.Duration
	// Metrics, when non-nil, records stabilization round counts,
	// failures, latency, and batch sizes under "counter.*".
	Metrics *obs.Registry
}

// NewClient creates a counter client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Endpoint == nil || len(cfg.Replicas) == 0 {
		return nil, errors.New("counter: client needs endpoint and replicas")
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = len(cfg.Replicas)/2 + 1
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	return &Client{
		ep:       cfg.Endpoint,
		replicas: cfg.Replicas,
		quorum:   cfg.Quorum,
		timeout:  cfg.Timeout,
		handles:  make(map[string]*Handle),
		// All nil when Metrics is nil: recording becomes a no-op.
		rounds:        cfg.Metrics.Counter("counter.rounds"),
		roundFailures: cfg.Metrics.Counter("counter.round.failures"),
		roundLatency:  cfg.Metrics.Histogram("counter.round.latency_ns"),
		batchSize:     cfg.Metrics.Histogram("counter.batch.size"),
	}, nil
}

// Counter returns the handle for the named counter (one per log file),
// creating it on first use. initialStable seeds the local view; use
// RecoverStable after restarts instead.
func (c *Client) Counter(name string) *Handle {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.handles[name]; ok {
		return h
	}
	h := &Handle{client: c, name: name}
	h.cond = sync.NewCond(&h.mu)
	if c.failErr != nil {
		h.closed = true
		h.failed.Store(c.failErr)
	}
	c.handles[name] = h
	go h.pump()
	return h
}

// RecoverStable queries the protection group for the named counter's
// quorum-stable value (used at node recovery before replaying logs).
func (c *Client) RecoverStable(name string) (uint64, error) {
	values, err := c.broadcast(reqQuery, name, 0)
	if err != nil {
		return 0, err
	}
	// The stable value is the maximum reported by the quorum: any value
	// that completed round 2 was sealed by at least q replicas, so at
	// least one quorum member reports it.
	var maxV uint64
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	return maxV, nil
}

// broadcast sends one round to all replicas and waits for a quorum of
// replies, returning their reported values.
func (c *Client) broadcast(reqType uint8, name string, value uint64) ([]uint64, error) {
	tx := c.nextTx.Add(1)

	payload := encodeReq(name, value)
	pendings := make([]*erpc.Pending, len(c.replicas))
	for i, addr := range c.replicas {
		op := c.nextOp.Add(1)
		md := seal.MsgMetadata{TxID: tx, OpID: op, OpType: uint32(reqType)}
		pendings[i] = c.ep.Enqueue(addr, reqType, md, payload, nil)
	}
	deadline := time.Now().Add(c.timeout)
	var values []uint64
	replied := make([]bool, len(pendings))
	answered := 0
	for len(values) < c.quorum {
		if time.Now().After(deadline) || answered == len(pendings) {
			return nil, fmt.Errorf("%w: %d/%d replies for %s", ErrNoQuorum, len(values), c.quorum, name)
		}
		progress := false
		for i, p := range pendings {
			if replied[i] || !p.Done() {
				continue
			}
			replied[i] = true
			answered++
			progress = true
			if p.Err() != nil {
				continue
			}
			if resp := p.Response(); len(resp) >= 8 {
				values = append(values, binary.LittleEndian.Uint64(resp))
			}
		}
		if progress {
			continue
		}
		// Block on the first unanswered reply instead of spinning.
		for i, p := range pendings {
			if replied[i] {
				continue
			}
			select {
			case <-p.Ch():
			case <-time.After(time.Until(deadline)):
			}
			break
		}
	}
	return values, nil
}

// Handle is one named counter's client-side state. It satisfies the
// storage engine's TrustedCounter interface.
type Handle struct {
	client *Client
	name   string

	// stable and failed are read lock-free: every stabilization waiter
	// (commit fibers polling StableToken.Ready) consults them once per
	// scheduling round, and taking h.mu there would serialize all fibers
	// against the pump's round-in-progress critical sections. Writes stay
	// under h.mu so cond wakeups are not lost.
	stable atomic.Uint64 // highest value confirmed by quorum
	failed atomic.Value  // sticky error (no quorum after MaxRetries)

	mu      sync.Mutex
	cond    *sync.Cond
	pending uint64 // highest value requested
	closed  bool
}

// failedErr returns the sticky failure without locking.
func (h *Handle) failedErr() error {
	if e := h.failed.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// MaxRoundRetries bounds consecutive failed protocol rounds before a
// handle gives up (each round already has the client timeout). Transient
// partitions and tampering within this budget only delay stabilization —
// "any faults ... can only affect availability" (§VI).
const MaxRoundRetries = 8

// Stabilize asynchronously requests rollback protection up to v.
// Requests batch: stabilizing v implicitly covers all v' < v, so a burst
// of commits costs one protocol round (the paper's asynchronous trusted
// counter interface).
func (h *Handle) Stabilize(v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v > h.pending {
		h.pending = v
		h.cond.Broadcast()
	}
}

// WaitStable blocks until the counter service has made v
// rollback-protected (or the service failed to reach quorum). The whole
// cohort of waiters covered by a round wakes on its single Broadcast —
// stabilizing the round's target implicitly stabilizes every lower value.
func (h *Handle) WaitStable(v uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v > h.pending {
		h.pending = v
		h.cond.Broadcast()
	}
	for h.stable.Load() < v && h.failedErr() == nil {
		h.cond.Wait()
	}
	return h.failedErr()
}

// StableValue returns the highest quorum-stable value observed locally
// (lock-free; safe to poll from every fiber).
func (h *Handle) StableValue() uint64 { return h.stable.Load() }

// raiseStable lifts the stable view to v (CAS-max).
func (h *Handle) raiseStable(v uint64) {
	for {
		cur := h.stable.Load()
		if v <= cur || h.stable.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SeedStable sets the local stable view (from RecoverStable) without
// running the protocol. Call before first use after a restart.
func (h *Handle) SeedStable(v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.raiseStable(v)
	if v > h.pending {
		h.pending = v
	}
}

// pump runs the two-round protocol whenever there is pending work,
// batching all requests that arrived meanwhile into one round. Failed
// rounds (partition, tampering, replica crashes) are retried with
// backoff up to MaxRoundRetries before the handle fails permanently.
func (h *Handle) pump() {
	failures := 0
	for {
		h.mu.Lock()
		for h.pending <= h.stable.Load() && !h.closed {
			h.cond.Wait()
		}
		if h.closed {
			h.mu.Unlock()
			return
		}
		target := h.pending
		batched := target - h.stable.Load() // increments covered by this round
		h.mu.Unlock()

		c := h.client
		c.rounds.Inc()
		c.batchSize.Observe(int64(batched))
		roundStart := time.Now()
		err := h.runRounds(target)
		c.roundLatency.ObserveSince(roundStart)
		if err != nil {
			c.roundFailures.Inc()
		}

		h.mu.Lock()
		if err == nil {
			failures = 0
			h.raiseStable(target)
			// One wakeup for the whole cohort the round covered.
			h.cond.Broadcast()
			h.mu.Unlock()
			continue
		}
		failures++
		if failures >= MaxRoundRetries {
			h.failed.Store(err)
			h.cond.Broadcast()
			h.mu.Unlock()
			return
		}
		h.mu.Unlock()
		// Back off before retrying the round.
		time.Sleep(time.Duration(failures) * 100 * time.Millisecond)
	}
}

// Failed returns the handle's permanent failure, if any (lock-free). The
// storage layer's stable tokens consult this on every readiness poll so
// waiters surface the error instead of spinning.
func (h *Handle) Failed() error { return h.failedErr() }

// runRounds executes echo broadcast + confirmation for value v.
func (h *Handle) runRounds(v uint64) error {
	// Round 1: echo broadcast. REs store the value and echo it back.
	echoes, err := h.client.broadcast(reqUpdate, h.name, v)
	if err != nil {
		return fmt.Errorf("counter: echo round for %s: %w", h.name, err)
	}
	for _, e := range echoes {
		if e < v {
			return fmt.Errorf("counter: replica echoed stale value %d < %d", e, v)
		}
	}
	// Round 2: confirmation. REs verify the stored value and seal.
	if _, err := h.client.broadcast(reqConfirm, h.name, v); err != nil {
		return fmt.Errorf("counter: confirm round for %s: %w", h.name, err)
	}
	return nil
}

// close stops the pump (used by tests).
func (h *Handle) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

// Fail poisons the handle: every present and future stabilization wait
// returns err. See Client.Fail for the crash-teardown rationale.
func (h *Handle) Fail(err error) { h.fail(err) }

// fail poisons the handle: every present and future stabilization wait
// returns err, and the pump starts no further protocol rounds. An
// in-flight round may still raise the stable view, but waiters check the
// failure before trusting it, so nothing waits out to success.
func (h *Handle) fail(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	if h.failedErr() == nil {
		h.failed.Store(err)
	}
	h.cond.Broadcast()
}

// Close stops all handle pumps.
func (c *Client) Close() {
	c.mu.Lock()
	handles := make([]*Handle, 0, len(c.handles))
	for _, h := range c.handles {
		handles = append(handles, h)
	}
	c.mu.Unlock()
	for _, h := range handles {
		h.close()
	}
}

// Fail poisons the client: every present and future stabilization wait —
// on every handle, including handles created after this call — fails
// with err. Crash teardown uses it to cut the acknowledgement path in
// one step: a prepare vote or commit return is externalized only after a
// successful stable-token wait, so once Fail returns, nothing the dying
// node does can be acknowledged to anyone.
func (c *Client) Fail(err error) {
	c.mu.Lock()
	if c.failErr == nil {
		c.failErr = err
	}
	handles := make([]*Handle, 0, len(c.handles))
	for _, h := range c.handles {
		handles = append(handles, h)
	}
	c.mu.Unlock()
	for _, h := range handles {
		h.fail(err)
	}
}
