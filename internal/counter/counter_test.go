package counter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/erpc"
	"treaty/internal/seal"
	"treaty/internal/simnet"
)

// group is a test protection group with one client.
type group struct {
	net      *simnet.Network
	client   *Client
	replicas []*Replica
	addrs    []string
	pollers  []*erpc.Poller
	dir      string
	key      seal.Key
}

func newGroup(t *testing.T, n int, dir string, latency time.Duration) *group {
	t.Helper()
	g := &group{
		net: simnet.New(simnet.LinkConfig{Latency: latency}, 7),
		dir: dir,
	}
	var err error
	g.key, err = seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g.addReplica(t, i)
	}
	cep, err := g.net.Listen("counter-client")
	if err != nil {
		t.Fatal(err)
	}
	clientEP, err := erpc.NewEndpoint(erpc.Config{
		NodeID:    100,
		Transport: erpc.NewSimTransport(cep, nil, erpc.KindDPDK),
		Secure:    true, NetworkKey: g.key,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.pollers = append(g.pollers, erpc.StartPoller(clientEP))
	g.client, err = NewClient(ClientConfig{
		Endpoint: clientEP,
		Replicas: g.addrs,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.client.Close()
		for _, p := range g.pollers {
			p.Stop()
		}
		g.net.Close()
	})
	return g
}

func (g *group) addReplica(t *testing.T, i int) {
	t.Helper()
	addr := fmt.Sprintf("counter-replica-%d", i)
	nep, err := g.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := erpc.NewEndpoint(erpc.Config{
		NodeID:    uint64(i + 1),
		Transport: erpc.NewSimTransport(nep, nil, erpc.KindDPDK),
		Secure:    true, NetworkKey: g.key,
	})
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(addr)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := platform.Launch("counter-replica", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(ep, encl, g.dir)
	if err != nil {
		t.Fatal(err)
	}
	g.replicas = append(g.replicas, r)
	g.addrs = append(g.addrs, addr)
	g.pollers = append(g.pollers, erpc.StartPoller(ep))
}

func TestStabilizeAndWait(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	h := g.client.Counter("wal-000001.log")
	h.Stabilize(5)
	if err := h.WaitStable(5); err != nil {
		t.Fatal(err)
	}
	if got := h.StableValue(); got != 5 {
		t.Errorf("StableValue = %d, want 5", got)
	}
	// All replicas confirmed (3-node group, quorum 2, but echo reaches all).
	count := 0
	for _, r := range g.replicas {
		if r.StableValue("wal-000001.log") == 5 {
			count++
		}
	}
	if count < 2 {
		t.Errorf("only %d replicas stable, want >= quorum", count)
	}
}

func TestBatchingCoversIntermediateValues(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	h := g.client.Counter("clog")
	for v := uint64(1); v <= 100; v++ {
		h.Stabilize(v)
	}
	if err := h.WaitStable(100); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitStable(50); err != nil {
		t.Fatal(err) // covered by the batch
	}
}

func TestWaitImpliesStabilize(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	h := g.client.Counter("manifest")
	// WaitStable without a prior Stabilize must still drive the protocol.
	done := make(chan error, 1)
	go func() { done <- h.WaitStable(7) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitStable hung")
	}
}

func TestIndependentCounters(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	a := g.client.Counter("wal-a")
	b := g.client.Counter("wal-b")
	a.Stabilize(10)
	if err := a.WaitStable(10); err != nil {
		t.Fatal(err)
	}
	if b.StableValue() != 0 {
		t.Error("counters must be independent per log file")
	}
}

func TestQuorumSurvivesMinorityFailure(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	// Partition one replica away: 2/3 still reach quorum.
	g.net.Partition("counter-client", g.addrs[2])
	h := g.client.Counter("wal")
	h.Stabilize(3)
	if err := h.WaitStable(3); err != nil {
		t.Fatalf("quorum with one replica down: %v", err)
	}
}

func TestNoQuorumFails(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	g.net.Partition("counter-client", g.addrs[1])
	g.net.Partition("counter-client", g.addrs[2])
	// Only 1/3 reachable: below quorum. Use a short-timeout client.
	cep, err := g.net.Listen("impatient")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := erpc.NewEndpoint(erpc.Config{
		NodeID: 200, Transport: erpc.NewSimTransport(cep, nil, erpc.KindDPDK),
		Secure: true, NetworkKey: g.key,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := erpc.StartPoller(ep)
	defer p.Stop()
	g.net.Partition("impatient", g.addrs[1])
	g.net.Partition("impatient", g.addrs[2])
	cl, err := NewClient(ClientConfig{Endpoint: ep, Replicas: g.addrs, Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h := cl.Counter("wal")
	h.Stabilize(1)
	if err := h.WaitStable(1); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("got %v, want ErrNoQuorum", err)
	}
}

func TestRecoverStableAfterReplicaRestart(t *testing.T) {
	dir := t.TempDir()
	g := newGroup(t, 3, dir, 0)
	h := g.client.Counter("wal-000001.log")
	h.Stabilize(42)
	if err := h.WaitStable(42); err != nil {
		t.Fatal(err)
	}
	// "Restart" replica 0: new instance loading the sealed state.
	nep, err := g.net.Listen("counter-replica-0-restarted")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := erpc.NewEndpoint(erpc.Config{
		NodeID: 1, Transport: erpc.NewSimTransport(nep, nil, erpc.KindDPDK),
		Secure: true, NetworkKey: g.key,
	})
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform("counter-replica-0")
	if err != nil {
		t.Fatal(err)
	}
	encl, err := platform.Launch("counter-replica", enclave.RuntimeConfig{Mode: enclave.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	_ = encl
	// Reuse the original enclave's platform identity is not possible (a
	// fresh platform has a fresh key), so reuse the original replica's
	// enclave for unsealing semantics via a fresh Replica on the same
	// state file but the original enclave handle.
	r2, err := NewReplica(ep, g.replicas[0].encl, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.StableValue("wal-000001.log"); got != 42 {
		t.Errorf("restarted replica stable = %d, want 42", got)
	}
	// Client-side recovery sees the value too.
	v, err := g.client.RecoverStable("wal-000001.log")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("RecoverStable = %d, want 42", v)
	}
}

func TestSeedStable(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	h := g.client.Counter("wal")
	h.SeedStable(99)
	if h.StableValue() != 99 {
		t.Error("SeedStable must set the local view")
	}
	if err := h.WaitStable(99); err != nil {
		t.Fatal(err) // already covered, no protocol round needed
	}
}

func TestConcurrentStabilizers(t *testing.T) {
	g := newGroup(t, 3, "", 0)
	h := g.client.Counter("wal")
	var wg sync.WaitGroup
	for i := 1; i <= 20; i++ {
		wg.Add(1)
		go func(v uint64) {
			defer wg.Done()
			h.Stabilize(v)
			if err := h.WaitStable(v); err != nil {
				t.Errorf("WaitStable(%d): %v", v, err)
			}
		}(uint64(i))
	}
	wg.Wait()
	if h.StableValue() < 20 {
		t.Errorf("StableValue = %d, want >= 20", h.StableValue())
	}
}

func TestMonotonicityUnderConcurrentUpdates(t *testing.T) {
	// Property: a replica's stable value never decreases, no matter how
	// updates and confirms interleave.
	g := newGroup(t, 3, "", 0)
	h := g.client.Counter("mono")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violation atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := g.replicas[0].StableValue("mono")
			if cur < prev {
				violation.Store(true)
				return
			}
			prev = cur
			time.Sleep(time.Millisecond)
		}
	}()
	for v := uint64(1); v <= 50; v++ {
		h.Stabilize(v)
	}
	if err := h.WaitStable(50); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if violation.Load() {
		t.Fatal("replica stable value decreased")
	}
}

func TestStabilizationLatencyReflectsNetwork(t *testing.T) {
	// With 500µs links, two protocol rounds cost >= 2ms — the paper's
	// reported ROTE latency.
	g := newGroup(t, 3, "", 500*time.Microsecond)
	h := g.client.Counter("wal")
	start := time.Now()
	h.Stabilize(1)
	if err := h.WaitStable(1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("stabilization took %v, want >= 2ms with 500µs links", elapsed)
	}
}
