package counter

import (
	"bytes"
	"testing"
)

// FuzzDecodeReq hammers the counter-service request decoder with
// arbitrary bytes: it must return an error or a value that re-encodes
// canonically — never panic, never mis-slice.
func FuzzDecodeReq(f *testing.F) {
	f.Add(encodeReq("wal-1", uint64(42)))
	f.Add(encodeReq("", uint64(0)))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff})                // name length far past the buffer
	f.Add(append(encodeReq("x", 1), 0xAA))   // trailing garbage
	f.Add(encodeReq(string(make([]byte, 300)), ^uint64(0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, v, err := decodeReq(data)
		if err != nil {
			return
		}
		// Round-trip: what decoded must re-encode into a prefix the
		// decoder reads back identically (trailing bytes are ignored by
		// design).
		re := encodeReq(name, v)
		if len(re) > len(data) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("decode(%x) = (%q, %d) but re-encode %x is not a prefix", data, name, v, re)
		}
		n2, v2, err2 := decodeReq(re)
		if err2 != nil || n2 != name || v2 != v {
			t.Fatalf("re-decode mismatch: (%q,%d,%v) vs (%q,%d)", n2, v2, err2, name, v)
		}
	})
}
