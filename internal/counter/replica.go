package counter

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"treaty/internal/enclave"
	"treaty/internal/erpc"
)

// Replica is one receiver enclave (RE) of the protection group. It keeps
// the counter values in protected (enclave) memory, echoes round-1
// updates, verifies and ACKs round-2 confirmations, and seals its state
// to persistent storage so a crashed replica recovers its view.
type Replica struct {
	ep   *erpc.Endpoint
	encl *enclave.Enclave
	path string

	mu      sync.Mutex
	pending map[string]uint64 // round-1 values awaiting confirmation
	stable  map[string]uint64 // confirmed (sealed) values
}

// NewReplica creates a replica serving on ep, sealing its state with
// encl into dir (empty dir disables persistence — tests). Registration
// happens immediately; drive ep's event loop to serve.
func NewReplica(ep *erpc.Endpoint, encl *enclave.Enclave, dir string) (*Replica, error) {
	r := &Replica{
		ep:      ep,
		encl:    encl,
		pending: make(map[string]uint64),
		stable:  make(map[string]uint64),
	}
	if dir != "" {
		r.path = filepath.Join(dir, fmt.Sprintf("counter-state-%d.sealed", ep.NodeID()))
		if err := r.load(); err != nil {
			return nil, err
		}
	}
	ep.Register(reqUpdate, r.onUpdate)
	ep.Register(reqConfirm, r.onConfirm)
	ep.Register(reqQuery, r.onQuery)
	return r, nil
}

// onUpdate handles round 1: store the value in protected memory and echo.
func (r *Replica) onUpdate(req *erpc.Request) {
	name, v, err := decodeReq(req.Payload)
	if err != nil {
		req.ReplyError(err.Error())
		return
	}
	r.mu.Lock()
	if v > r.pending[name] {
		r.pending[name] = v
	}
	echo := r.pending[name]
	r.mu.Unlock()
	req.Reply(binary.LittleEndian.AppendUint64(nil, echo))
}

// onConfirm handles round 2: verify the received value matches the one
// stored in memory, seal state, and (N)ACK.
func (r *Replica) onConfirm(req *erpc.Request) {
	name, v, err := decodeReq(req.Payload)
	if err != nil {
		req.ReplyError(err.Error())
		return
	}
	r.mu.Lock()
	stored := r.pending[name]
	if stored < v {
		// We never echoed this value: NACK (the SE's quorum must not
		// count us).
		r.mu.Unlock()
		req.ReplyError(fmt.Sprintf("counter: confirm for unseen value %d (have %d)", v, stored))
		return
	}
	if v > r.stable[name] {
		r.stable[name] = v
	}
	ack := r.stable[name]
	snapshot := r.encodeStateLocked()
	r.mu.Unlock()

	// Seal the state together with the counter value to persistent
	// storage before ACKing, so a crashed replica still reports it.
	if err := r.persist(snapshot); err != nil {
		req.ReplyError(err.Error())
		return
	}
	req.Reply(binary.LittleEndian.AppendUint64(nil, ack))
}

// onQuery handles recovery reads.
func (r *Replica) onQuery(req *erpc.Request) {
	name, _, err := decodeReq(req.Payload)
	if err != nil {
		req.ReplyError(err.Error())
		return
	}
	r.mu.Lock()
	v := r.stable[name]
	r.mu.Unlock()
	req.Reply(binary.LittleEndian.AppendUint64(nil, v))
}

// encodeStateLocked serializes the stable map (r.mu held).
func (r *Replica) encodeStateLocked() []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.stable)))
	for name, v := range r.stable {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
		out = append(out, name...)
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	return out
}

// persist seals and writes the state file.
func (r *Replica) persist(snapshot []byte) error {
	if r.path == "" {
		return nil
	}
	sealed := snapshot
	if r.encl != nil {
		sealed = r.encl.Seal(snapshot)
	}
	tmp := r.path + ".tmp"
	if err := os.WriteFile(tmp, sealed, 0o644); err != nil {
		return fmt.Errorf("counter: persisting state: %w", err)
	}
	if err := os.Rename(tmp, r.path); err != nil {
		return fmt.Errorf("counter: persisting state: %w", err)
	}
	return nil
}

// load restores sealed state after a restart.
func (r *Replica) load() error {
	data, err := os.ReadFile(r.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("counter: loading state: %w", err)
	}
	if r.encl != nil {
		plain, uerr := r.encl.Unseal(data)
		if uerr != nil {
			return fmt.Errorf("counter: sealed state: %w", uerr)
		}
		data = plain
	}
	if len(data) < 4 {
		return fmt.Errorf("counter: short state file")
	}
	n := binary.LittleEndian.Uint32(data)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+2 > len(data) {
			return fmt.Errorf("counter: truncated state file")
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+nameLen+8 > len(data) {
			return fmt.Errorf("counter: truncated state file")
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		r.stable[name] = v
		r.pending[name] = v
	}
	return nil
}

// StableValue reports the replica's confirmed value for a counter
// (test/inspection hook).
func (r *Replica) StableValue(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stable[name]
}
