// Package enclave simulates a trusted execution environment (Intel SGX
// under SCONE in the paper). Real SGX hardware is unavailable in this
// reproduction, so the package provides a functional substitute:
//
//   - Platforms with a simulated hardware root key, enclaves with code
//     measurements, sealing (AES-256-GCM under a measurement-bound key),
//     and attestation quotes (HMAC by the platform key, endorsed by the
//     simulated IAS in package attest).
//   - An explicit cost model that charges the TEE overheads the paper's
//     evaluation isolates: world switches for synchronous syscalls, the
//     cheaper SCONE-style asynchronous syscalls, OCALLs, and EPC paging.
//     Costs are applied as calibrated busy-waits so benchmarks measure
//     real elapsed time with the right relative shape (native vs SCONE).
//   - EPC accounting: enclave-resident allocations beyond the EPC budget
//     trigger paging penalties, reproducing why Treaty keeps values and
//     network buffers in host memory (§VII-D).
//
// Protocol logic (attestation, sealing, key release) is identical to the
// hardware flow; only the trust anchor is simulated.
package enclave

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"treaty/internal/seal"
)

// Mode selects how the runtime charges TEE costs.
type Mode int

const (
	// ModeNative runs without any TEE: no costs, no protection. This is
	// the "native" baseline in the paper's evaluation.
	ModeNative Mode = iota + 1
	// ModeScone simulates execution inside an SGX enclave under SCONE:
	// asynchronous syscalls, world switches on blocking operations, and
	// EPC paging penalties.
	ModeScone
)

// String returns the mode's evaluation label.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeScone:
		return "scone"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors returned by this package.
var (
	// ErrSealedTampered indicates sealed data failed authentication.
	ErrSealedTampered = errors.New("enclave: sealed data tampered")
	// ErrQuoteInvalid indicates a quote failed verification.
	ErrQuoteInvalid = errors.New("enclave: quote verification failed")
	// ErrEPCExhausted indicates an enclave allocation exceeded the hard
	// EPC + paging budget.
	ErrEPCExhausted = errors.New("enclave: EPC exhausted")
)

// Measurement identifies the code and initial data of an enclave
// (MRENCLAVE in SGX terms).
type Measurement [seal.HashSize]byte

// MeasureCode produces the measurement for an enclave binary identity.
func MeasureCode(identity string) Measurement {
	return Measurement(seal.Hash([]byte("enclave-code:" + identity)))
}

// Platform models one physical machine with TEE support. It holds the
// simulated hardware root key used for sealing and local quotes. Every
// node in a Treaty cluster runs on its own Platform.
type Platform struct {
	// Name identifies the machine (host name).
	Name string

	rootKey  seal.Key
	mu       sync.Mutex
	enclaves []*Enclave
}

// NewPlatform creates a machine with a fresh simulated hardware key.
func NewPlatform(name string) (*Platform, error) {
	key, err := seal.NewRandomKey()
	if err != nil {
		return nil, fmt.Errorf("enclave: creating platform: %w", err)
	}
	return &Platform{Name: name, rootKey: key}, nil
}

// RootKey exposes the platform key for the simulated IAS registry. On real
// hardware this never leaves the CPU; the attest package plays the role of
// the manufacturer that knows it.
func (p *Platform) RootKey() seal.Key { return p.rootKey }

// Launch creates an enclave on this platform running the code identified
// by identity, with the given runtime configuration.
func (p *Platform) Launch(identity string, cfg RuntimeConfig) (*Enclave, error) {
	sealKey := seal.DeriveKey(p.rootKey, "seal/"+identity)
	cipher, err := seal.NewCipher(sealKey)
	if err != nil {
		return nil, fmt.Errorf("enclave: launching %q: %w", identity, err)
	}
	e := &Enclave{
		platform:    p,
		measurement: MeasureCode(identity),
		identity:    identity,
		sealCipher:  cipher,
		runtime:     NewRuntime(cfg),
	}
	p.mu.Lock()
	p.enclaves = append(p.enclaves, e)
	p.mu.Unlock()
	return e, nil
}

// Enclave is one running enclave instance: an isolated memory region whose
// code identity is captured by a measurement. State kept "inside" the
// enclave (Go heap owned by enclave components) is trusted; everything
// else — files, network, host-memory buffers — is not.
type Enclave struct {
	platform    *Platform
	measurement Measurement
	identity    string
	sealCipher  *seal.Cipher
	runtime     *Runtime
}

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Identity returns the code identity string the enclave was launched with.
func (e *Enclave) Identity() string { return e.identity }

// Runtime returns the enclave's cost-model runtime.
func (e *Enclave) Runtime() *Runtime { return e.runtime }

// Seal encrypts data under the enclave's sealing key (bound to platform
// and measurement), for storage on untrusted media. Matches SGX
// MRENCLAVE-policy sealing.
func (e *Enclave) Seal(data []byte) []byte {
	return e.sealCipher.Seal(data, e.measurement[:])
}

// Unseal authenticates and decrypts sealed data. Data sealed by a
// different enclave identity or platform fails with ErrSealedTampered.
func (e *Enclave) Unseal(sealed []byte) ([]byte, error) {
	plain, err := e.sealCipher.Open(sealed, e.measurement[:])
	if err != nil {
		return nil, ErrSealedTampered
	}
	return plain, nil
}

// Quote produces an attestation quote over reportData: a statement, keyed
// by the platform root key, that an enclave with this measurement is
// running on this platform. The simulated IAS verifies it via the
// platform registry.
func (e *Enclave) Quote(reportData []byte) Quote {
	q := Quote{
		Measurement: e.measurement,
		Platform:    e.platform.Name,
	}
	copy(q.ReportData[:], reportData)
	q.Signature = quoteMAC(e.platform.rootKey, &q)
	return q
}

// Quote is a simulated SGX quote: measurement + user report data, signed
// by the platform hardware key.
type Quote struct {
	// Measurement is the attested enclave's code measurement.
	Measurement Measurement
	// Platform names the machine the quote was produced on.
	Platform string
	// ReportData is 64 bytes of caller data bound into the quote
	// (typically a public key or nonce).
	ReportData [64]byte
	// Signature authenticates the quote under the platform root key.
	Signature [seal.HashSize]byte
}

// quoteMAC computes the quote signature.
func quoteMAC(rootKey seal.Key, q *Quote) [seal.HashSize]byte {
	mac := hmac.New(sha256.New, rootKey[:])
	mac.Write(q.Measurement[:])
	mac.Write([]byte(q.Platform))
	mac.Write(q.ReportData[:])
	var out [seal.HashSize]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// VerifyQuote checks q against the given platform root key. The attest
// package's simulated IAS holds the registry of platform keys.
func VerifyQuote(rootKey seal.Key, q *Quote) error {
	want := quoteMAC(rootKey, q)
	if !hmac.Equal(want[:], q.Signature[:]) {
		return ErrQuoteInvalid
	}
	return nil
}

// Nonce returns 64 bytes of fresh randomness suitable for quote report
// data (challenge-response freshness).
func Nonce() ([64]byte, error) {
	var n [64]byte
	if _, err := rand.Read(n[:]); err != nil {
		return n, fmt.Errorf("enclave: generating nonce: %w", err)
	}
	return n, nil
}

// monotonicTick is a process-wide monotonic source used to replace
// rdtsc()-style timestamps inside the enclave without an OCALL (§VII-A:
// "we eliminate rdtsc() calls ... replacing the call with a monotonic
// counter").
var monotonicTick atomic.Uint64

// Tick returns a process-wide monotonically increasing value.
func Tick() uint64 { return monotonicTick.Add(1) }

// EncodeUint64 is a tiny helper for building report data from integers.
func EncodeUint64(vals ...uint64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}
