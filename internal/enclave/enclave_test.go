package enclave

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func mustPlatform(t *testing.T, name string) *Platform {
	t.Helper()
	p, err := NewPlatform(name)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func mustLaunch(t *testing.T, p *Platform, identity string) *Enclave {
	t.Helper()
	e, err := p.Launch(identity, RuntimeConfig{Mode: ModeScone})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return e
}

func TestMeasurementDeterministic(t *testing.T) {
	if MeasureCode("treaty-v1") != MeasureCode("treaty-v1") {
		t.Error("measurement must be deterministic")
	}
	if MeasureCode("treaty-v1") == MeasureCode("treaty-v2") {
		t.Error("different code must measure differently")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := mustLaunch(t, mustPlatform(t, "node-a"), "treaty")
	data := []byte("counter state: 42")
	sealed := e.Seal(data)
	if bytes.Contains(sealed, data) {
		t.Error("sealed blob leaks plaintext")
	}
	got, err := e.Unseal(sealed)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip mismatch: %q", got)
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	e := mustLaunch(t, mustPlatform(t, "node-a"), "treaty")
	sealed := e.Seal([]byte("state"))
	sealed[len(sealed)/2] ^= 0x01
	if _, err := e.Unseal(sealed); !errors.Is(err, ErrSealedTampered) {
		t.Errorf("got %v, want ErrSealedTampered", err)
	}
}

func TestSealBoundToEnclaveIdentity(t *testing.T) {
	p := mustPlatform(t, "node-a")
	e1 := mustLaunch(t, p, "treaty")
	e2 := mustLaunch(t, p, "malware")
	sealed := e1.Seal([]byte("secret"))
	if _, err := e2.Unseal(sealed); !errors.Is(err, ErrSealedTampered) {
		t.Errorf("different identity must not unseal: %v", err)
	}
	// Same identity on the same platform (restart) can unseal.
	e3 := mustLaunch(t, p, "treaty")
	if _, err := e3.Unseal(sealed); err != nil {
		t.Errorf("restarted enclave must unseal its own state: %v", err)
	}
}

func TestSealBoundToPlatform(t *testing.T) {
	e1 := mustLaunch(t, mustPlatform(t, "node-a"), "treaty")
	e2 := mustLaunch(t, mustPlatform(t, "node-b"), "treaty")
	sealed := e1.Seal([]byte("secret"))
	if _, err := e2.Unseal(sealed); !errors.Is(err, ErrSealedTampered) {
		t.Errorf("other platform must not unseal: %v", err)
	}
}

func TestQuoteVerification(t *testing.T) {
	p := mustPlatform(t, "node-a")
	e := mustLaunch(t, p, "treaty")
	report, err := Nonce()
	if err != nil {
		t.Fatal(err)
	}
	q := e.Quote(report[:])
	if err := VerifyQuote(p.RootKey(), &q); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	if q.Measurement != MeasureCode("treaty") {
		t.Error("quote must carry the code measurement")
	}
	if !bytes.Equal(q.ReportData[:], report[:]) {
		t.Error("quote must bind report data")
	}
}

func TestQuoteForgeryRejected(t *testing.T) {
	pa := mustPlatform(t, "node-a")
	pb := mustPlatform(t, "node-b")
	e := mustLaunch(t, pa, "treaty")
	q := e.Quote(nil)

	// Wrong verification key.
	if err := VerifyQuote(pb.RootKey(), &q); !errors.Is(err, ErrQuoteInvalid) {
		t.Errorf("wrong platform key: got %v", err)
	}
	// Tampered measurement (malware claiming to be treaty).
	forged := q
	forged.Measurement = MeasureCode("malware")
	if err := VerifyQuote(pa.RootKey(), &forged); !errors.Is(err, ErrQuoteInvalid) {
		t.Errorf("forged measurement: got %v", err)
	}
	// Tampered report data.
	forged = q
	forged.ReportData[0] ^= 1
	if err := VerifyQuote(pa.RootKey(), &forged); !errors.Is(err, ErrQuoteInvalid) {
		t.Errorf("forged report data: got %v", err)
	}
}

func TestRuntimeNativeIsFree(t *testing.T) {
	rt := NewNativeRuntime()
	start := time.Now()
	for i := 0; i < 100000; i++ {
		rt.Syscall()
		rt.WorldSwitch()
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("native mode must be near-free, took %v", elapsed)
	}
	s := rt.Stats()
	if s.AsyncSyscalls != 0 || s.WorldSwitches != 0 {
		t.Errorf("native mode must not count TEE events: %+v", s)
	}
}

func TestRuntimeSconeChargesCosts(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{
		Mode:  ModeScone,
		Costs: Costs{AsyncSyscall: 100 * time.Microsecond, WorldSwitch: 200 * time.Microsecond},
	})
	start := time.Now()
	rt.Syscall()
	rt.WorldSwitch()
	elapsed := time.Since(start)
	if elapsed < 300*time.Microsecond {
		t.Errorf("costs not charged: elapsed %v", elapsed)
	}
	s := rt.Stats()
	if s.AsyncSyscalls != 1 || s.WorldSwitches != 1 {
		t.Errorf("stats = %+v, want 1 syscall + 1 world switch", s)
	}
}

func TestRuntimeDefaultsFilled(t *testing.T) {
	rt := NewSconeRuntime()
	if rt.costs != DefaultCosts() {
		t.Error("scone runtime must default costs")
	}
	if rt.epcBudget != DefaultEPCBudget {
		t.Error("EPC budget must default")
	}
	if !rt.Secure() {
		t.Error("scone runtime must report secure")
	}
	if NewNativeRuntime().Secure() {
		t.Error("native runtime must not report secure")
	}
}

func TestEPCPagingChargedBeyondBudget(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{
		Mode:      ModeScone,
		Costs:     Costs{PageFault: time.Microsecond},
		EPCBudget: 1 << 20, // 1 MiB
	})
	rt.AllocEnclave(1 << 20) // fill budget exactly: no paging
	if rt.Stats().PageFaults != 0 {
		t.Fatalf("paging charged within budget: %+v", rt.Stats())
	}
	rt.AllocEnclave(8 * pageSize) // 8 pages beyond
	if got := rt.Stats().PageFaults; got != 8 {
		t.Errorf("PageFaults = %d, want 8", got)
	}
	// Touching memory while over budget also pages.
	rt.TouchEnclave(2 * pageSize)
	if got := rt.Stats().PageFaults; got != 10 {
		t.Errorf("PageFaults after touch = %d, want 10", got)
	}
	// Free down below budget: touches become free.
	rt.FreeEnclave(9 * pageSize)
	rt.TouchEnclave(pageSize)
	if got := rt.Stats().PageFaults; got != 10 {
		t.Errorf("touch under budget must be free, PageFaults = %d", got)
	}
}

func TestHostAllocationsNoEPCPressure(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Mode: ModeScone, EPCBudget: 1 << 20})
	rt.AllocHost(100 << 20)
	if rt.Stats().PageFaults != 0 {
		t.Error("host allocations must not page")
	}
	if rt.Stats().HostBytes != 100<<20 {
		t.Errorf("HostBytes = %d", rt.Stats().HostBytes)
	}
	rt.FreeHost(100 << 20)
	if rt.Stats().HostBytes != 0 {
		t.Errorf("HostBytes after free = %d", rt.Stats().HostBytes)
	}
}

func TestTickMonotonic(t *testing.T) {
	prev := Tick()
	for i := 0; i < 1000; i++ {
		cur := Tick()
		if cur <= prev {
			t.Fatalf("tick not monotonic: %d then %d", prev, cur)
		}
		prev = cur
	}
}

func TestEncodeUint64(t *testing.T) {
	b := EncodeUint64(1, 2)
	if len(b) != 16 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != 1 || b[8] != 2 {
		t.Error("little-endian encoding expected")
	}
}
