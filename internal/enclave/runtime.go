package enclave

import (
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/obs"
)

// RuntimeConfig configures the TEE cost model for one enclave.
type RuntimeConfig struct {
	// Mode selects native (no costs) or SCONE-style enclave execution.
	Mode Mode
	// Costs are the per-event penalties. Zero value means DefaultCosts
	// when Mode is ModeScone.
	Costs Costs
	// EPCBudget is the enclave page cache size in bytes (94 MiB on SGXv1
	// per the paper). Enclave allocations beyond the budget charge
	// paging penalties per 4 KiB page. Zero means DefaultEPCBudget.
	EPCBudget int64
}

// Costs are the calibrated penalties for TEE events, applied as busy-waits
// so measured wall-clock throughput exhibits the paper's native-vs-SCONE
// shape. The defaults follow published SGX/SCONE microbenchmarks: a world
// switch (synchronous enclave transition) costs ~8 µs, a SCONE
// asynchronous syscall ~1.5 µs, and an EPC page fault ~12 µs.
type Costs struct {
	// WorldSwitch is charged for synchronous enclave exits (OCALLs,
	// blocking syscalls without the async path).
	WorldSwitch time.Duration
	// AsyncSyscall is charged per syscall issued through SCONE's
	// exit-less asynchronous syscall interface.
	AsyncSyscall time.Duration
	// PageFault is charged per 4 KiB page of EPC paging traffic.
	PageFault time.Duration
	// CopyPerKB is charged per KiB moved across the enclave boundary
	// (message buffers live encrypted in host memory, §VII-D; every send
	// and receive copies the payload in or out of the enclave).
	CopyPerKB time.Duration
	// MsgOverhead is the fixed enclave-side cost per network message
	// (boundary crossing bookkeeping on the kernel-bypass path).
	MsgOverhead time.Duration
}

// DefaultCosts are the calibrated SCONE penalties.
func DefaultCosts() Costs {
	return Costs{
		WorldSwitch:  8 * time.Microsecond,
		AsyncSyscall: 1500 * time.Nanosecond,
		PageFault:    12 * time.Microsecond,
		CopyPerKB:    650 * time.Nanosecond,
		MsgOverhead:  1700 * time.Nanosecond,
	}
}

// DefaultEPCBudget is the usable EPC size modelled (SGXv1, §II-B).
const DefaultEPCBudget = 94 << 20

// pageSize is the EPC paging granularity.
const pageSize = 4096

// Stats counts TEE events charged so far. Reads are approximate under
// concurrency (fields are read individually).
type Stats struct {
	// WorldSwitches counts synchronous enclave transitions.
	WorldSwitches uint64
	// AsyncSyscalls counts exit-less syscalls.
	AsyncSyscalls uint64
	// PageFaults counts 4 KiB EPC paging events.
	PageFaults uint64
	// EnclaveBytes is the current enclave-resident allocation footprint.
	EnclaveBytes int64
	// HostBytes is the current untrusted host-memory footprint.
	HostBytes int64
}

// Runtime charges TEE costs and tracks EPC pressure for one enclave. It is
// safe for concurrent use; all methods are cheap atomics in native mode.
type Runtime struct {
	mode      Mode
	costs     Costs
	epcBudget int64

	worldSwitches atomic.Uint64
	asyncSyscalls atomic.Uint64
	pageFaults    atomic.Uint64
	enclaveBytes  atomic.Int64
	hostBytes     atomic.Int64
}

// NewRuntime creates a runtime from cfg, filling in defaults.
func NewRuntime(cfg RuntimeConfig) *Runtime {
	rt := &Runtime{mode: cfg.Mode, costs: cfg.Costs, epcBudget: cfg.EPCBudget}
	if rt.mode == 0 {
		rt.mode = ModeNative
	}
	if rt.mode == ModeScone && rt.costs == (Costs{}) {
		rt.costs = DefaultCosts()
	}
	if rt.epcBudget == 0 {
		rt.epcBudget = DefaultEPCBudget
	}
	return rt
}

// NewNativeRuntime returns a zero-cost runtime (the native baseline).
func NewNativeRuntime() *Runtime {
	return NewRuntime(RuntimeConfig{Mode: ModeNative})
}

// NewSconeRuntime returns a runtime with the default SCONE cost model.
func NewSconeRuntime() *Runtime {
	return NewRuntime(RuntimeConfig{Mode: ModeScone})
}

// Mode returns the runtime's execution mode.
func (rt *Runtime) Mode() Mode { return rt.mode }

// EPCBudget returns the modelled enclave page cache size in bytes.
// Enclave-resident allocations past this point pay paging penalties.
func (rt *Runtime) EPCBudget() int64 { return rt.epcBudget }

// Secure reports whether the runtime models enclave execution.
func (rt *Runtime) Secure() bool { return rt.mode == ModeScone }

// spinWait burns CPU for roughly d. Busy-waiting (rather than sleeping)
// matches how enclave transition costs behave — the core is occupied —
// and is accurate at sub-microsecond scales where timers are not. Clock
// reads can cost ~1 µs on virtualized hosts, so the wait spins a
// calibrated number of arithmetic iterations instead of polling the
// clock.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	iters := int(float64(d.Nanoseconds()) * spinItersPerNS())
	sink := spinSink.Load()
	for i := 0; i < iters; i++ {
		sink = sink*2862933555777941757 + 3037000493
	}
	spinSink.Store(sink)
}

// spinSink defeats dead-code elimination of the spin loop. Atomic
// because concurrent spinners share it (its value is meaningless; only
// the data dependency matters).
var spinSink atomic.Uint64

var (
	spinCalOnce sync.Once
	spinPerNS   float64
)

// spinItersPerNS measures the spin loop's speed once.
func spinItersPerNS() float64 {
	spinCalOnce.Do(func() {
		const probe = 2_000_000
		sink := spinSink.Load()
		start := time.Now()
		for i := 0; i < probe; i++ {
			sink = sink*2862933555777941757 + 3037000493
		}
		elapsed := time.Since(start)
		spinSink.Store(sink)
		if elapsed <= 0 {
			elapsed = time.Millisecond
		}
		spinPerNS = probe / float64(elapsed.Nanoseconds())
	})
	return spinPerNS
}

// Spin busy-waits for d, occupying the core. Exposed for components that
// model per-operation CPU costs outside the standard syscall/world-switch
// events (e.g. the network microbenchmark's per-message stack overheads).
func Spin(d time.Duration) { spinWait(d) }

// Syscall charges one asynchronous (exit-less) syscall. Use at every I/O
// call site that goes through SCONE's async syscall interface: file
// read/write/fsync, socket send/recv.
func (rt *Runtime) Syscall() {
	if rt.mode != ModeScone {
		return
	}
	rt.asyncSyscalls.Add(1)
	spinWait(rt.costs.AsyncSyscall)
}

// Syscalls charges n asynchronous syscalls in one batch.
func (rt *Runtime) Syscalls(n int) {
	if rt.mode != ModeScone || n <= 0 {
		return
	}
	rt.asyncSyscalls.Add(uint64(n))
	spinWait(time.Duration(n) * rt.costs.AsyncSyscall)
}

// WorldSwitch charges one synchronous enclave transition (an OCALL or a
// blocking operation that cannot use the async path, e.g. sleeping when
// no fiber is runnable, §VII-C).
func (rt *Runtime) WorldSwitch() {
	if rt.mode != ModeScone {
		return
	}
	rt.worldSwitches.Add(1)
	spinWait(rt.costs.WorldSwitch)
}

// MessageCost charges the enclave-side cost of sending or receiving one
// network message of n bytes: the fixed boundary overhead plus the copy
// between host DMA memory and the enclave.
func (rt *Runtime) MessageCost(n int) {
	if rt.mode != ModeScone {
		return
	}
	kb := time.Duration((n + 1023) / 1024)
	spinWait(rt.costs.MsgOverhead + kb*rt.costs.CopyPerKB)
}

// AllocEnclave records n bytes allocated inside the enclave. Allocations
// that push the footprint past the EPC budget charge paging penalties for
// every 4 KiB page beyond it — this is what makes enclave-resident message
// buffers and values expensive (§VII-D) and why Treaty places them in host
// memory instead.
func (rt *Runtime) AllocEnclave(n int) {
	if n <= 0 {
		return
	}
	newTotal := rt.enclaveBytes.Add(int64(n))
	if rt.mode != ModeScone {
		return
	}
	if over := newTotal - rt.epcBudget; over > 0 {
		pages := int(min64(over, int64(n))+pageSize-1) / pageSize
		rt.pageFaults.Add(uint64(pages))
		spinWait(time.Duration(pages) * rt.costs.PageFault)
	}
}

// FreeEnclave records n bytes released from enclave memory.
func (rt *Runtime) FreeEnclave(n int) {
	if n <= 0 {
		return
	}
	rt.enclaveBytes.Add(int64(-n))
}

// AllocHost records n bytes allocated in untrusted host memory. Host
// allocations are free of EPC pressure (but their contents must be
// encrypted by the caller).
func (rt *Runtime) AllocHost(n int) {
	if n > 0 {
		rt.hostBytes.Add(int64(n))
	}
}

// FreeHost records n bytes released from host memory.
func (rt *Runtime) FreeHost(n int) {
	if n > 0 {
		rt.hostBytes.Add(int64(-n))
	}
}

// TouchEnclave charges EPC paging for re-accessing n bytes while the
// enclave footprint exceeds budget (working-set pressure on reads).
func (rt *Runtime) TouchEnclave(n int) {
	if rt.mode != ModeScone || n <= 0 {
		return
	}
	if rt.enclaveBytes.Load() > rt.epcBudget {
		pages := (n + pageSize - 1) / pageSize
		rt.pageFaults.Add(uint64(pages))
		spinWait(time.Duration(pages) * rt.costs.PageFault)
	}
}

// RegisterMetrics exports the runtime's event counters into reg (nil ok)
// as snapshot-time funcs over the existing atomics — the cost model's
// hot paths are untouched. "enclave.paging_penalty_ns" is the cumulative
// busy-wait charged for EPC paging (pageFaults × Costs.PageFault), the
// quantity the paper's §VII-D memory-placement argument is about.
func (rt *Runtime) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("enclave.world_switches", rt.worldSwitches.Load)
	reg.CounterFunc("enclave.async_syscalls", rt.asyncSyscalls.Load)
	reg.CounterFunc("enclave.page_faults", rt.pageFaults.Load)
	reg.CounterFunc("enclave.paging_penalty_ns", func() uint64 {
		return rt.pageFaults.Load() * uint64(rt.costs.PageFault.Nanoseconds())
	})
	reg.GaugeFunc("enclave.bytes.enclave", rt.enclaveBytes.Load)
	reg.GaugeFunc("enclave.bytes.host", rt.hostBytes.Load)
}

// Stats returns a snapshot of the event counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		WorldSwitches: rt.worldSwitches.Load(),
		AsyncSyscalls: rt.asyncSyscalls.Load(),
		PageFaults:    rt.pageFaults.Load(),
		EnclaveBytes:  rt.enclaveBytes.Load(),
		HostBytes:     rt.hostBytes.Load(),
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
