// Package erpc is Treaty's asynchronous RPC library for transaction
// execution (§VII-A), modelled on eRPC. It provides:
//
//   - eRPC's execution model: requests are *enqueued* (not transmitted),
//     TxBurst flushes them, a polling event loop receives bursts and
//     dispatches; continuations complete pending requests. No blocking
//     receive exists on the data path — with the DPDK-style transport the
//     loop issues no syscalls at all, which is what makes it suitable for
//     enclaves.
//   - Treaty's secure message layer: every message is sealed in the
//     paper's format (12 B IV ∥ pad ∥ encrypted 80 B metadata ∥ data ∥
//     16 B MAC) under the cluster network key, and the (node id, tx id,
//     op id) triple in the metadata gives at-most-once execution: replayed
//     or duplicated packets are detected and not re-executed.
//   - Message buffers allocated from the mempool in *host* memory
//     (encrypted contents), keeping network buffers out of the EPC.
//
// Handlers are asynchronous: a handler receives a *Request and may call
// Reply immediately or hand the request to a fiber and reply later (how
// participants delay their prepare ACK until the log entry stabilizes).
package erpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/mempool"
	"treaty/internal/obs"
	"treaty/internal/seal"
)

// Errors returned by this package.
var (
	// ErrRemote carries an error string returned by a remote handler.
	ErrRemote = errors.New("erpc: remote error")
	// ErrNoHandler indicates an unregistered request type was received.
	ErrNoHandler = errors.New("erpc: no handler for request type")
	// ErrClosed indicates the endpoint has been closed.
	ErrClosed = errors.New("erpc: endpoint closed")
	// ErrAuth indicates a message failed authentication and was dropped.
	ErrAuth = errors.New("erpc: message authentication failed")
)

// wire header: version(1) reqType(1) flags(1) reserved(1) reqID(8).
const (
	wireVersion   = 1
	headerLen     = 12
	flagResponse  = 1 << 0
	flagError     = 1 << 1
	flagPlaintext = 1 << 2
)

// Request is an inbound RPC awaiting a reply. Handlers own the request
// and must eventually call Reply or ReplyError exactly once (from any
// goroutine). Payload and Meta are valid until the reply.
type Request struct {
	// Meta is the authenticated transaction metadata.
	Meta seal.MsgMetadata
	// Payload is the decrypted request body.
	Payload []byte
	// From is the sender's transport address.
	From string

	ep      *Endpoint
	reqType uint8
	reqID   uint64
	replied atomic.Bool
}

// Type returns the request type the sender used.
func (r *Request) Type() uint8 { return r.reqType }

// Reply sends a success response with the given payload.
func (r *Request) Reply(payload []byte) {
	r.reply(payload, 0)
}

// ReplyError sends an error response carrying msg.
func (r *Request) ReplyError(msg string) {
	r.reply([]byte(msg), flagError)
}

func (r *Request) reply(payload []byte, flags uint8) {
	if r.replied.Swap(true) {
		return // exactly-once reply; extra calls are dropped
	}
	md := r.Meta
	md.Flags |= uint32(flags)
	wire := r.ep.encode(r.reqType, flagResponse|flags, r.reqID, &md, payload)
	r.ep.rememberReply(r.Meta, wire)
	r.ep.enqueueWire(r.From, wire)
}

// Handler processes one inbound request. Handlers may reply synchronously
// or asynchronously but must not block the event loop for long periods —
// park long work on a fiber instead.
type Handler func(*Request)

// Pending tracks one outstanding outbound request.
type Pending struct {
	done   atomic.Bool
	ch     chan struct{}
	resp   []byte
	err    error
	onDone func(*Pending)
	reqID  uint64
	start  time.Time
}

// Done reports whether the response (or failure) has arrived.
func (p *Pending) Done() bool { return p.done.Load() }

// Ch returns a channel closed when the response arrives; non-fiber
// callers block on it instead of spinning.
func (p *Pending) Ch() <-chan struct{} { return p.ch }

// Response returns the response payload; valid once Done.
func (p *Pending) Response() []byte { return p.resp }

// Err returns the remote error, if any; valid once Done.
func (p *Pending) Err() error { return p.err }

// complete finishes the pending request and fires its continuation.
func (p *Pending) complete(resp []byte, err error) {
	p.resp, p.err = resp, err
	p.done.Store(true)
	close(p.ch)
	if p.onDone != nil {
		p.onDone(p)
	}
}

// Config configures an endpoint.
type Config struct {
	// NodeID identifies this node in message metadata.
	NodeID uint64
	// Transport carries the wire bytes.
	Transport Transport
	// NetworkKey is the cluster key provisioned by the CAS. Required
	// when Secure.
	NetworkKey seal.Key
	// Secure enables Treaty's sealed message format. When false,
	// messages travel in plaintext with the same framing (the
	// "w/o Enc" evaluation ablation).
	Secure bool
	// Runtime charges TEE costs; nil means native.
	Runtime *enclave.Runtime
	// Pool supplies host-memory message buffers; nil allocates from the
	// Go heap directly.
	Pool *mempool.Pool
	// RxBurst bounds packets processed per event-loop iteration (0 = 16).
	RxBurst int
	// ReplayWindow bounds the at-most-once dedup cache (0 = 65536).
	ReplayWindow int
	// Metrics, when non-nil, exports the endpoint's counters and call
	// latency under MetricsPrefix. Export is via snapshot-time counter
	// funcs over the endpoint's own atomics, so the data path pays
	// nothing beyond the one latency observation per delivered response.
	Metrics *obs.Registry
	// MetricsPrefix namespaces this endpoint's metrics ("" = "erpc";
	// the counter-service endpoint uses "erpc.ctr" so two endpoints on
	// one node do not collide).
	MetricsPrefix string
}

// Endpoint is one node's RPC port: it sends requests, receives responses,
// and dispatches inbound requests to handlers. One event loop (RunOnce)
// must be driven by the owner; Enqueue*/Reply are safe from any goroutine.
type Endpoint struct {
	cfg      Config
	codec    *seal.MsgCodec
	handlers [256]Handler

	// pktTransport is cfg.Transport when it supports release-aware
	// polling; nil otherwise. Cached once at construction so RunOnce does
	// not pay a type assertion per packet.
	pktTransport PacketTransport

	mu      sync.Mutex
	txq     []outMsg
	pending map[uint64]*Pending

	// txNotify wakes a blocked event loop when the transmit queue goes
	// non-empty (capacity 1: level-triggered).
	txNotify chan struct{}

	nextReqID atomic.Uint64
	closed    atomic.Bool

	replay *replayCache

	// stats (all atomic: Stats() and the metrics funcs read them
	// concurrently with the data path)
	sent, received, replayDropped, authDropped, staleResponses atomic.Uint64
	cancelled, txDropped, handlerPanics                        atomic.Uint64
	requests, delivered, orphaned, retries                     atomic.Uint64

	// callLatency records enqueue-to-response time for delivered
	// requests (nil when metrics are not configured; Observe is nil-safe).
	callLatency *obs.Histogram
}

// outMsg is one enqueued wire message. buf, when non-nil, is the pooled
// backing of wire; TxBurst returns it to the pool after the transport
// send (transports copy or transmit synchronously, so the frame is dead
// once Send returns).
type outMsg struct {
	to   string
	wire []byte
	buf  *mempool.Buf
}

// NewEndpoint creates an endpoint from cfg.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.Transport == nil {
		return nil, errors.New("erpc: config needs a transport")
	}
	if cfg.RxBurst <= 0 {
		cfg.RxBurst = 16
	}
	if cfg.ReplayWindow <= 0 {
		cfg.ReplayWindow = 65536
	}
	ep := &Endpoint{
		cfg:      cfg,
		pending:  make(map[uint64]*Pending),
		txNotify: make(chan struct{}, 1),
		replay:   newReplayCache(cfg.ReplayWindow),
	}
	ep.pktTransport, _ = cfg.Transport.(PacketTransport)
	if cfg.Secure {
		codec, err := seal.NewMsgCodec(cfg.NetworkKey)
		if err != nil {
			return nil, fmt.Errorf("erpc: %w", err)
		}
		ep.codec = codec
	}
	ep.registerMetrics()
	return ep, nil
}

// registerMetrics exports the endpoint's atomics into cfg.Metrics under
// cfg.MetricsPrefix. The request-lifecycle counters obey a conservation
// law the chaos soak asserts:
//
//	enqueued == delivered + cancelled + orphaned + pending
//
// (every request leaves the pending map exactly once: response
// delivered, caller abandoned it, or endpoint close orphaned it).
func (ep *Endpoint) registerMetrics() {
	m := ep.cfg.Metrics
	if m == nil {
		return
	}
	pfx := ep.cfg.MetricsPrefix
	if pfx == "" {
		pfx = "erpc"
	}
	ep.callLatency = m.Histogram(pfx + ".call.latency_ns")
	m.CounterFunc(pfx+".req.enqueued", ep.requests.Load)
	m.CounterFunc(pfx+".req.delivered", ep.delivered.Load)
	m.CounterFunc(pfx+".req.cancelled", ep.cancelled.Load)
	m.CounterFunc(pfx+".req.orphaned", ep.orphaned.Load)
	m.CounterFunc(pfx+".req.retries", ep.retries.Load)
	m.CounterFunc(pfx+".msg.sent", ep.sent.Load)
	m.CounterFunc(pfx+".msg.received", ep.received.Load)
	m.CounterFunc(pfx+".msg.tx_dropped", ep.txDropped.Load)
	m.CounterFunc(pfx+".msg.auth_dropped", ep.authDropped.Load)
	m.CounterFunc(pfx+".resp.stale", ep.staleResponses.Load)
	m.CounterFunc(pfx+".replay.hits", ep.replayDropped.Load)
	m.CounterFunc(pfx+".handler.panics", ep.handlerPanics.Load)
	m.GaugeFunc(pfx+".req.pending", func() int64 { return int64(ep.PendingCount()) })
}

// Register installs the handler for a request type. Registration must
// complete before the event loop starts.
func (ep *Endpoint) Register(reqType uint8, h Handler) {
	ep.handlers[reqType] = h
}

// LocalAddr returns the endpoint's transport address.
func (ep *Endpoint) LocalAddr() string { return ep.cfg.Transport.LocalAddr() }

// NodeID returns the endpoint's node id.
func (ep *Endpoint) NodeID() uint64 { return ep.cfg.NodeID }

// Enqueue constructs a request to the remote address and places it on the
// transmit queue — it does not transmit (§V-A step 2: "en-queuing the
// request does not transmit the message"); call TxBurst (or RunOnce) to
// flush. onDone, if non-nil, runs on the event loop when the response
// arrives.
func (ep *Endpoint) Enqueue(to string, reqType uint8, md seal.MsgMetadata, payload []byte, onDone func(*Pending)) *Pending {
	reqID := ep.nextReqID.Add(1)
	p := &Pending{onDone: onDone, reqID: reqID, ch: make(chan struct{}), start: time.Now()}
	md.NodeID = ep.cfg.NodeID
	md.Seq = reqID
	wire, buf := ep.encodeRequest(reqType, 0, reqID, &md, payload)
	ep.requests.Add(1)
	ep.mu.Lock()
	if ep.closed.Load() {
		// A closed endpoint can never deliver a response; fail the call
		// immediately instead of parking it until the caller's timeout.
		// Checked under ep.mu so the insert cannot race Close's drain of
		// the pending map (Close sets closed before taking ep.mu, so once
		// it has drained, any later Enqueue observes closed here).
		ep.mu.Unlock()
		ep.orphaned.Add(1)
		if buf != nil {
			ep.cfg.Pool.Free(buf)
		}
		p.complete(nil, ErrClosed)
		return p
	}
	ep.pending[reqID] = p
	ep.txq = append(ep.txq, outMsg{to: to, wire: wire, buf: buf})
	ep.mu.Unlock()
	ep.wakeTx()
	return p
}

// Abandon cancels an outstanding request whose caller gave up (timeout):
// the pending entry is deregistered — so a response arriving later is
// counted as stale instead of delivered — and the Pending completes with
// ErrTimeout. It reports false if the request already completed (the
// response won the race), in which case the Pending's result is valid.
func (ep *Endpoint) Abandon(p *Pending) bool {
	ep.mu.Lock()
	cur, ok := ep.pending[p.reqID]
	if ok && cur == p {
		delete(ep.pending, p.reqID)
	} else {
		ok = false
	}
	ep.mu.Unlock()
	if !ok {
		return false
	}
	ep.cancelled.Add(1)
	p.complete(nil, ErrTimeout)
	return true
}

// PendingCount reports the number of outstanding requests (used by the
// chaos harness to assert the pending map does not leak).
func (ep *Endpoint) PendingCount() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.pending)
}

// wakeTx signals the event loop that the transmit queue has work.
func (ep *Endpoint) wakeTx() {
	select {
	case ep.txNotify <- struct{}{}:
	default:
	}
}

// TxNotify exposes the transmit-wakeup channel to the event loop.
func (ep *Endpoint) TxNotify() <-chan struct{} { return ep.txNotify }

// HandlePacket feeds one received packet into the endpoint (used by
// event loops that take packets from a ChannelTransport's channel,
// bypassing Poll).
func (ep *Endpoint) HandlePacket(from string, data []byte) {
	ep.dispatch(from, data)
	// Dispatch may have enqueued replies; flush them immediately.
	_ = ep.TxBurst()
}

// enqueueWire places a prebuilt message on the transmit queue.
func (ep *Endpoint) enqueueWire(to string, wire []byte) {
	ep.mu.Lock()
	ep.txq = append(ep.txq, outMsg{to: to, wire: wire})
	ep.mu.Unlock()
	ep.wakeTx()
}

// TxBurst flushes the transmit queue to the transport. A send failure
// drops only that message: the rest of the already-dequeued batch is
// still transmitted (one unreachable peer must not discard traffic to
// every other destination), failures are aggregated into the returned
// error, and each drop is counted in Stats.TxDropped.
func (ep *Endpoint) TxBurst() error {
	ep.mu.Lock()
	batch := ep.txq
	ep.txq = nil
	ep.mu.Unlock()
	var errs []error
	for _, m := range batch {
		err := ep.cfg.Transport.Send(m.to, m.wire)
		if m.buf != nil {
			// Sealed-frame reuse: Send either copied the frame (simnet)
			// or transmitted it synchronously (UDP), so the pooled
			// backing recycles immediately — sent or dropped alike.
			ep.cfg.Pool.Free(m.buf)
		}
		if err != nil {
			ep.txDropped.Add(1)
			errs = append(errs, err)
			continue
		}
		ep.sent.Add(1)
	}
	if len(errs) > 0 {
		return fmt.Errorf("erpc: tx burst: %w", errors.Join(errs...))
	}
	return nil
}

// RunOnce performs one event-loop iteration: transmit pending messages,
// then receive and dispatch up to RxBurst packets. It returns the number
// of packets processed; callers poll in a loop, yielding between calls.
func (ep *Endpoint) RunOnce() int {
	if ep.closed.Load() {
		return 0
	}
	if err := ep.TxBurst(); err != nil && !ep.closed.Load() {
		// Transport failures surface per-pending via timeouts at the
		// protocol layer; the loop keeps running.
		_ = err
	}
	n := 0
	for ; n < ep.cfg.RxBurst; n++ {
		if ep.pktTransport != nil {
			pkt, ok := ep.pktTransport.PollPacket()
			if !ok {
				break
			}
			ep.dispatch(pkt.From, pkt.Data)
			// Secure endpoints never retain the wire buffer: the data
			// path decrypts into fresh memory and every drop branch
			// (decode failure, replay, auth) returns without keeping a
			// reference, so the receive buffer recycles unconditionally.
			// Plaintext endpoints hand payload views of the buffer to
			// handlers and completions — ownership transfers to dispatch
			// and the buffer falls to the GC instead.
			if ep.codec != nil {
				pkt.Release()
			}
			continue
		}
		from, data, ok := ep.cfg.Transport.Poll()
		if !ok {
			break
		}
		ep.dispatch(from, data)
	}
	return n
}

// Close shuts the endpoint down. Outstanding requests complete with
// ErrClosed so blocked callers unwind immediately instead of waiting out
// their timeouts (and nothing leaks in the pending map).
func (ep *Endpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	ep.mu.Lock()
	orphans := ep.pending
	ep.pending = make(map[uint64]*Pending)
	unsent := ep.txq
	ep.txq = nil
	ep.mu.Unlock()
	for _, m := range unsent {
		// Never leak pooled frames parked on the transmit queue.
		if m.buf != nil {
			ep.cfg.Pool.Free(m.buf)
		}
	}
	ep.orphaned.Add(uint64(len(orphans)))
	for _, p := range orphans {
		p.complete(nil, ErrClosed)
	}
	return ep.cfg.Transport.Close()
}

// encode builds the wire representation of a message in a heap buffer
// (reply frames outlive the send — the replay cache retains them — so
// they cannot come from the frame pool). The body is built directly in
// the wire allocation: sealing appends into the exact-capacity slice
// instead of producing an intermediate ciphertext that encode copies.
func (ep *Endpoint) encode(reqType, flags uint8, reqID uint64, md *seal.MsgMetadata, payload []byte) []byte {
	var wire []byte
	if ep.codec != nil {
		wire = make([]byte, headerLen, headerLen+seal.MsgWireLen(len(payload)))
		wire = ep.codec.SealMessageInto(wire, md, payload)
	} else {
		flags |= flagPlaintext
		md.DataLen = uint32(len(payload))
		wire = make([]byte, headerLen+seal.MetadataSize+len(payload))
		md.EncodePlain(wire[headerLen:])
		copy(wire[headerLen+seal.MetadataSize:], payload)
	}
	wire[0] = wireVersion
	wire[1] = reqType
	wire[2] = flags
	binary.LittleEndian.PutUint64(wire[4:], reqID)
	return wire
}

// encodeRequest builds a request's wire representation in a pooled
// host-region buffer when a mempool is configured, sealing directly into
// the frame (no intermediate ciphertext copy). Only *request* frames are
// poolable: the frame is dead once the transport send returns. Reply
// frames go through encode instead — the replay cache retains them for
// idempotent re-replies, so they must stay heap-owned.
func (ep *Endpoint) encodeRequest(reqType, flags uint8, reqID uint64, md *seal.MsgMetadata, payload []byte) ([]byte, *mempool.Buf) {
	if ep.cfg.Pool == nil {
		return ep.encode(reqType, flags, reqID, md, payload), nil
	}
	bodyLen := seal.MetadataSize + len(payload) // plaintext framing
	if ep.codec != nil {
		bodyLen = seal.MsgWireLen(len(payload))
	}
	buf := ep.cfg.Pool.Alloc(headerLen+bodyLen, mempool.RegionHost)
	wire := buf.Full()[:headerLen]
	if ep.codec != nil {
		wire = ep.codec.SealMessageInto(wire, md, payload)
	} else {
		flags |= flagPlaintext
		md.DataLen = uint32(len(payload))
		wire = wire[:headerLen+bodyLen]
		md.EncodePlain(wire[headerLen:])
		copy(wire[headerLen+seal.MetadataSize:], payload)
	}
	wire[0] = wireVersion
	wire[1] = reqType
	wire[2] = flags
	wire[3] = 0
	binary.LittleEndian.PutUint64(wire[4:], reqID)
	return wire, buf
}

// decode parses and (if secure) authenticates a wire message.
func (ep *Endpoint) decode(wire []byte) (reqType, flags uint8, reqID uint64, md seal.MsgMetadata, payload []byte, err error) {
	if len(wire) < headerLen || wire[0] != wireVersion {
		err = seal.ErrMalformedMessage
		return
	}
	reqType, flags = wire[1], wire[2]
	reqID = binary.LittleEndian.Uint64(wire[4:])
	body := wire[headerLen:]
	if ep.codec != nil {
		if flags&flagPlaintext != 0 {
			// A plaintext message on a secure endpoint is an attack
			// (downgrade); reject.
			err = ErrAuth
			return
		}
		md, payload, err = ep.codec.OpenMessage(body)
		if err != nil {
			err = ErrAuth
			return
		}
		// Bind the cleartext reqID to the authenticated metadata: a
		// swapped header cannot redirect a response to another request.
		if md.Seq != reqID {
			err = ErrAuth
			return
		}
		return
	}
	if len(body) < seal.MetadataSize {
		err = seal.ErrMalformedMessage
		return
	}
	if derr := md.DecodePlain(body); derr != nil {
		err = derr
		return
	}
	payload = body[seal.MetadataSize:]
	return
}

// dispatch routes one received packet.
func (ep *Endpoint) dispatch(from string, wire []byte) {
	reqType, flags, reqID, md, payload, err := ep.decode(wire)
	if err != nil {
		// Tampered, malformed, or downgraded message: detected and
		// dropped (the attacker gains nothing but a lost packet).
		ep.authDropped.Add(1)
		return
	}
	ep.received.Add(1)

	if flags&flagResponse != 0 {
		ep.mu.Lock()
		p, ok := ep.pending[reqID]
		if ok {
			delete(ep.pending, reqID)
		}
		ep.mu.Unlock()
		if !ok {
			ep.staleResponses.Add(1)
			return // duplicate or stale response
		}
		ep.delivered.Add(1)
		ep.callLatency.ObserveSince(p.start)
		if flags&flagError != 0 {
			p.complete(nil, fmt.Errorf("%w: %s", ErrRemote, string(payload)))
		} else {
			// The completion owns the payload: on the secure path
			// OpenMessage decrypted into fresh memory, and on the
			// plaintext path the event loop hands the whole receive
			// buffer over instead of recycling it (see RunOnce).
			p.complete(payload, nil)
		}
		return
	}

	// Inbound request: enforce at-most-once execution on the
	// (node, tx, op) triple.
	if cached, dup := ep.replay.check(md); dup {
		ep.replayDropped.Add(1)
		if cached != nil {
			// Idempotent re-reply for a retransmitted request whose
			// response was already computed.
			ep.enqueueWire(from, cached)
		}
		return
	}

	h := ep.handlers[reqType]
	if h == nil {
		md2 := md
		md2.Flags |= flagError
		wireResp := ep.encode(reqType, flagResponse|flagError, reqID, &md2, []byte(ErrNoHandler.Error()))
		ep.enqueueWire(from, wireResp)
		return
	}
	// Same ownership rule as the response path: the handler owns the
	// payload (fresh decryption, or the handed-over receive buffer).
	req := &Request{
		Meta:    md,
		Payload: payload,
		From:    from,
		ep:      ep,
		reqType: reqType,
		reqID:   reqID,
	}
	ep.invoke(h, req)
}

// invoke runs a handler with panic containment: a panicking handler must
// not kill the node's only poller goroutine. The panic is converted into
// an error reply (exactly-once reply semantics drop it if the handler
// already replied before panicking) and counted in Stats.HandlerPanics.
func (ep *Endpoint) invoke(h Handler, req *Request) {
	defer func() {
		if r := recover(); r != nil {
			ep.handlerPanics.Add(1)
			req.ReplyError(fmt.Sprintf("erpc: handler panic: %v", r))
		}
	}()
	h(req)
}

// rememberReply caches the wire response for a request so retransmissions
// re-reply instead of re-executing.
func (ep *Endpoint) rememberReply(md seal.MsgMetadata, wire []byte) {
	ep.replay.storeReply(md, wire)
}

// Stats reports endpoint counters.
type Stats struct {
	// Sent counts transmitted messages.
	Sent uint64
	// Received counts authenticated received messages.
	Received uint64
	// ReplayDropped counts duplicate requests rejected by dedup.
	ReplayDropped uint64
	// AuthDropped counts messages dropped for failing authentication.
	AuthDropped uint64
	// StaleResponses counts responses with no matching pending request.
	StaleResponses uint64
	// Cancelled counts pending requests abandoned by their callers
	// (timeouts); their late responses show up as StaleResponses.
	Cancelled uint64
	// TxDropped counts enqueued messages the transport failed to send.
	TxDropped uint64
	// HandlerPanics counts handler panics contained by the dispatcher.
	HandlerPanics uint64
	// Requests counts outbound requests enqueued. Each obeys
	// Requests == Delivered + Cancelled + Orphaned + PendingCount().
	Requests uint64
	// Delivered counts responses matched to a pending request (remote
	// errors included: the response arrived).
	Delivered uint64
	// Orphaned counts pending requests failed with ErrClosed (enqueued
	// against, or drained by, a closed endpoint).
	Orphaned uint64
	// Retries counts CallRetry re-attempts after a timeout.
	Retries uint64
}

// Stats returns a snapshot of the endpoint counters.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		Sent:           ep.sent.Load(),
		Received:       ep.received.Load(),
		ReplayDropped:  ep.replayDropped.Load(),
		AuthDropped:    ep.authDropped.Load(),
		StaleResponses: ep.staleResponses.Load(),
		Cancelled:      ep.cancelled.Load(),
		TxDropped:      ep.txDropped.Load(),
		HandlerPanics:  ep.handlerPanics.Load(),
		Requests:       ep.requests.Load(),
		Delivered:      ep.delivered.Load(),
		Orphaned:       ep.orphaned.Load(),
		Retries:        ep.retries.Load(),
	}
}
