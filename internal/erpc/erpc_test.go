package erpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"treaty/internal/seal"
	"treaty/internal/simnet"
)

const (
	reqEcho   = 1
	reqFail   = 2
	reqAdd    = 3
	reqNoResp = 4
)

// testCluster is two endpoints (client, server) over a simnet.
type testCluster struct {
	net      *simnet.Network
	client   *Endpoint
	server   *Endpoint
	pollers  []*Poller
	netKey   seal.Key
	executed atomic.Uint64
}

func newTestCluster(t *testing.T, secure bool) *testCluster {
	t.Helper()
	n := simnet.New(simnet.LinkConfig{}, 42)
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{net: n, netKey: key}

	mk := func(addr string, nodeID uint64) *Endpoint {
		nep, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(Config{
			NodeID:     nodeID,
			Transport:  NewSimTransport(nep, nil, KindDPDK),
			NetworkKey: key,
			Secure:     secure,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	tc.client = mk("client", 1)
	tc.server = mk("server", 2)

	tc.server.Register(reqEcho, func(r *Request) {
		tc.executed.Add(1)
		r.Reply(r.Payload)
	})
	tc.server.Register(reqFail, func(r *Request) {
		r.ReplyError("deliberate failure")
	})
	tc.server.Register(reqAdd, func(r *Request) {
		r.Reply([]byte{r.Payload[0] + r.Payload[1]})
	})
	tc.server.Register(reqNoResp, func(r *Request) {
		// Asynchronous handler: reply later from another goroutine.
		go func() {
			time.Sleep(5 * time.Millisecond)
			r.Reply([]byte("late"))
		}()
	})

	tc.pollers = []*Poller{StartPoller(tc.client), StartPoller(tc.server)}
	t.Cleanup(func() {
		for _, p := range tc.pollers {
			p.Stop()
		}
		tc.client.Close()
		tc.server.Close()
		n.Close()
	})
	return tc
}

func testBothModes(t *testing.T, fn func(t *testing.T, secure bool)) {
	t.Run("secure", func(t *testing.T) { fn(t, true) })
	t.Run("plain", func(t *testing.T) { fn(t, false) })
}

func TestEchoRoundTrip(t *testing.T) {
	testBothModes(t, func(t *testing.T, secure bool) {
		tc := newTestCluster(t, secure)
		md := seal.MsgMetadata{TxID: 1, OpID: 1}
		resp, err := Call(tc.client, "server", reqEcho, md, []byte("ping"), time.Second, nil)
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		if string(resp) != "ping" {
			t.Errorf("resp = %q", resp)
		}
	})
}

func TestRemoteError(t *testing.T) {
	tc := newTestCluster(t, true)
	md := seal.MsgMetadata{TxID: 2, OpID: 1}
	_, err := Call(tc.client, "server", reqFail, md, nil, time.Second, nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("got %v, want ErrRemote", err)
	}
	if want := "deliberate failure"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q should carry %q", err, want)
	}
}

func TestNoHandler(t *testing.T) {
	tc := newTestCluster(t, true)
	md := seal.MsgMetadata{TxID: 3, OpID: 1}
	_, err := Call(tc.client, "server", 99, md, nil, time.Second, nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("got %v, want remote no-handler error", err)
	}
}

func TestAsyncHandlerRepliesLater(t *testing.T) {
	tc := newTestCluster(t, true)
	md := seal.MsgMetadata{TxID: 4, OpID: 1}
	resp, err := Call(tc.client, "server", reqNoResp, md, nil, 2*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "late" {
		t.Errorf("resp = %q", resp)
	}
}

func TestEnqueueDoesNotTransmit(t *testing.T) {
	// Without running TxBurst/RunOnce on the client, the request must
	// stay queued (eRPC semantics: enqueue ≠ transmit).
	n := simnet.New(simnet.LinkConfig{}, 1)
	defer n.Close()
	cep, _ := n.Listen("c")
	sep, _ := n.Listen("s")
	key, _ := seal.NewRandomKey()
	client, err := NewEndpoint(Config{NodeID: 1, Transport: NewSimTransport(cep, nil, KindDPDK), NetworkKey: key, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	client.Enqueue("s", reqEcho, seal.MsgMetadata{TxID: 1, OpID: 1}, []byte("x"), nil)
	time.Sleep(10 * time.Millisecond)
	if _, ok := sep.Poll(); ok {
		t.Fatal("message transmitted before TxBurst")
	}
	if err := client.TxBurst(); err != nil {
		t.Fatal(err)
	}
	if _, err := sep.RecvTimeout(time.Second); err != nil {
		t.Fatal("message not transmitted by TxBurst")
	}
}

func TestContinuationRunsOnCompletion(t *testing.T) {
	tc := newTestCluster(t, true)
	var fired atomic.Bool
	md := seal.MsgMetadata{TxID: 5, OpID: 1}
	pend := tc.client.Enqueue("server", reqEcho, md, []byte("x"), func(p *Pending) {
		fired.Store(true)
	})
	deadline := time.Now().Add(time.Second)
	for !pend.Done() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !pend.Done() || !fired.Load() {
		t.Fatal("continuation did not fire")
	}
}

func TestReplayedRequestNotReExecuted(t *testing.T) {
	tc := newTestCluster(t, true)
	rec := &simnet.Recorder{}
	tc.net.SetAdversary(rec)
	md := seal.MsgMetadata{TxID: 10, OpID: 1}
	if _, err := Call(tc.client, "server", reqEcho, md, []byte("once"), time.Second, nil); err != nil {
		t.Fatal(err)
	}
	execBefore := tc.executed.Load()
	tc.net.SetAdversary(nil)
	// Replay every captured packet (including the original request).
	if err := rec.Replay(tc.net); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := tc.executed.Load(); got != execBefore {
		t.Errorf("handler executed %d times after replay, want %d", got, execBefore)
	}
	if tc.server.Stats().ReplayDropped == 0 {
		t.Error("server must count the replay as dropped")
	}
}

func TestDuplicatedPacketsAtMostOnce(t *testing.T) {
	tc := newTestCluster(t, true)
	tc.net.SetAdversary(simnet.FuncAdversary(func(p simnet.Packet) simnet.Verdict {
		if p.To == "server" {
			return simnet.Verdict{Duplicates: 3}
		}
		return simnet.Verdict{}
	}))
	md := seal.MsgMetadata{TxID: 11, OpID: 1}
	if _, err := Call(tc.client, "server", reqEcho, md, []byte("dup"), time.Second, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := tc.executed.Load(); got != 1 {
		t.Errorf("executed %d times under duplication, want exactly 1", got)
	}
}

func TestTamperedMessageDropped(t *testing.T) {
	tc := newTestCluster(t, true)
	tc.net.SetAdversary(simnet.NewCorrupter(1.0, 3))
	md := seal.MsgMetadata{TxID: 12, OpID: 1}
	_, err := Call(tc.client, "server", reqEcho, md, []byte("x"), 100*time.Millisecond, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("corrupted traffic should time out, got %v", err)
	}
	if tc.server.Stats().AuthDropped == 0 && tc.client.Stats().AuthDropped == 0 {
		t.Error("someone must have dropped the tampered message")
	}
	if tc.executed.Load() != 0 {
		t.Error("tampered request must not execute")
	}
}

func TestPlaintextDowngradeRejected(t *testing.T) {
	// An attacker who re-frames a message as plaintext must be rejected
	// by a secure endpoint.
	n := simnet.New(simnet.LinkConfig{}, 1)
	defer n.Close()
	cep, _ := n.Listen("c")
	sep, _ := n.Listen("s")
	key, _ := seal.NewRandomKey()
	// Client speaks plaintext, server requires security.
	client, err := NewEndpoint(Config{NodeID: 1, Transport: NewSimTransport(cep, nil, KindDPDK), Secure: false})
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Bool
	server, err := NewEndpoint(Config{NodeID: 2, Transport: NewSimTransport(sep, nil, KindDPDK), NetworkKey: key, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	server.Register(reqEcho, func(r *Request) { executed.Store(true); r.Reply(nil) })
	ps := StartPoller(server)
	defer ps.Stop()
	client.Enqueue("s", reqEcho, seal.MsgMetadata{TxID: 1, OpID: 1}, []byte("x"), nil)
	if err := client.TxBurst(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if executed.Load() {
		t.Error("plaintext message executed on secure endpoint")
	}
	if server.Stats().AuthDropped == 0 {
		t.Error("downgrade must be counted as auth drop")
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	tc := newTestCluster(t, true)
	const calls = 64
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func(i int) {
			md := seal.MsgMetadata{TxID: 100 + uint64(i), OpID: 1}
			resp, err := Call(tc.client, "server", reqAdd, md, []byte{byte(i), 10}, 2*time.Second, nil)
			if err == nil && resp[0] != byte(i)+10 {
				err = fmt.Errorf("wrong sum for %d: %d", i, resp[0])
			}
			errs <- err
		}(i)
	}
	for i := 0; i < calls; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCallTimeoutOnPartition(t *testing.T) {
	tc := newTestCluster(t, true)
	tc.net.Partition("client", "server")
	md := seal.MsgMetadata{TxID: 200, OpID: 1}
	_, err := Call(tc.client, "server", reqEcho, md, []byte("x"), 50*time.Millisecond, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestDoubleReplyIgnored(t *testing.T) {
	n := simnet.New(simnet.LinkConfig{}, 1)
	defer n.Close()
	cep, _ := n.Listen("c")
	sep, _ := n.Listen("s")
	key, _ := seal.NewRandomKey()
	client, _ := NewEndpoint(Config{NodeID: 1, Transport: NewSimTransport(cep, nil, KindDPDK), NetworkKey: key, Secure: true})
	server, _ := NewEndpoint(Config{NodeID: 2, Transport: NewSimTransport(sep, nil, KindDPDK), NetworkKey: key, Secure: true})
	server.Register(reqEcho, func(r *Request) {
		r.Reply([]byte("first"))
		r.Reply([]byte("second")) // must be dropped
	})
	p1, p2 := StartPoller(client), StartPoller(server)
	defer p1.Stop()
	defer p2.Stop()
	resp, err := Call(client, "s", reqEcho, seal.MsgMetadata{TxID: 1, OpID: 1}, nil, time.Second, nil)
	if err != nil || string(resp) != "first" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	ta, err := NewUDPTransport("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewUDPTransport("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := seal.NewRandomKey()
	a, err := NewEndpoint(Config{NodeID: 1, Transport: ta, NetworkKey: key, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(Config{NodeID: 2, Transport: tb, NetworkKey: key, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Register(reqEcho, func(r *Request) { r.Reply(r.Payload) })
	pa, pb := StartPoller(a), StartPoller(b)
	defer func() {
		pa.Stop()
		pb.Stop()
		a.Close()
		b.Close()
	}()
	resp, err := Call(a, tb.LocalAddr(), reqEcho, seal.MsgMetadata{TxID: 1, OpID: 1}, []byte("over-udp"), 2*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "over-udp" {
		t.Errorf("resp = %q", resp)
	}
}

func TestReplayCacheEviction(t *testing.T) {
	rc := newReplayCache(8)
	for i := uint64(0); i < 100; i++ {
		md := seal.MsgMetadata{NodeID: 1, TxID: i, OpID: 1}
		if _, dup := rc.check(md); dup {
			t.Fatalf("fresh op %d flagged duplicate", i)
		}
	}
	// Recent entries are still remembered.
	md := seal.MsgMetadata{NodeID: 1, TxID: 99, OpID: 1}
	if _, dup := rc.check(md); !dup {
		t.Error("most recent op must still be deduped")
	}
}
