package erpc

import (
	"testing"

	"treaty/internal/seal"
)

// sinkTransport swallows sends; the fuzz harness feeds packets straight
// into dispatch, so nothing needs to come back out.
type sinkTransport struct{ addr string }

func (s *sinkTransport) Send(string, []byte) error         { return nil }
func (s *sinkTransport) Poll() (string, []byte, bool)      { return "", nil, false }
func (s *sinkTransport) LocalAddr() string                 { return s.addr }
func (s *sinkTransport) Close() error                      { return nil }

// FuzzFrameDecode feeds arbitrary wire bytes through the full inbound
// path — header parse, plaintext metadata decode, sealed-message
// authentication, replay-cache check, handler dispatch, reply encode —
// on both a plaintext and a secure endpoint. Malformed or tampered
// frames must be dropped with an error; nothing may panic, and on the
// secure endpoint nothing unauthenticated may reach a handler.
func FuzzFrameDecode(f *testing.F) {
	plain, err := NewEndpoint(Config{NodeID: 1, Transport: &sinkTransport{addr: "plain"}})
	if err != nil {
		f.Fatal(err)
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		f.Fatal(err)
	}
	sec, err := NewEndpoint(Config{
		NodeID: 2, Transport: &sinkTransport{addr: "sec"},
		Secure: true, NetworkKey: key,
	})
	if err != nil {
		f.Fatal(err)
	}
	var handled int
	echo := func(r *Request) { handled++; r.Reply(r.Payload) }
	plain.Register(0x10, echo)
	sec.Register(0x10, echo)

	// Seed corpus: well-formed frames from both codecs, truncations,
	// version/flag mutants, and junk.
	md := seal.MsgMetadata{NodeID: 9, TxID: 7, OpID: 3, KeyLen: 5, DataLen: 5, Seq: 77}
	goodPlain := plain.encode(0x10, 0, 77, &md, []byte("hello"))
	mdSec := md
	goodSec := sec.encode(0x10, 0, 77, &mdSec, []byte("hello"))
	f.Add(goodPlain)
	f.Add(goodSec)
	f.Add(goodPlain[:len(goodPlain)-3])
	f.Add(goodSec[:headerLen+1])
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	mutant := append([]byte(nil), goodSec...)
	mutant[2] |= flagPlaintext // downgrade attack
	f.Add(mutant)
	resp := append([]byte(nil), goodPlain...)
	resp[2] |= flagResponse // stale response path
	f.Add(resp)

	f.Fuzz(func(t *testing.T, data []byte) {
		plain.dispatch("peer", data)
		sec.dispatch("peer", data)
		// Drain reply queues so a long fuzz run cannot accumulate them.
		if err := plain.TxBurst(); err != nil {
			t.Fatalf("plain TxBurst: %v", err)
		}
		if err := sec.TxBurst(); err != nil {
			t.Fatalf("sec TxBurst: %v", err)
		}
	})
}

// FuzzReplayCache drives the generational (node, tx, op) dedup cache
// with fuzzer-chosen triples: it must never panic, must dedup an
// immediate duplicate, and must return the remembered reply for it.
func FuzzReplayCache(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), 4)
	f.Add(uint64(0), uint64(0), uint64(0), 1)
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), 64)
	f.Fuzz(func(t *testing.T, node, tx, op uint64, window int) {
		if window <= 0 || window > 1<<16 {
			window = 16
		}
		rc := newReplayCache(window)
		md := seal.MsgMetadata{NodeID: node, TxID: tx, OpID: op}
		if _, dup := rc.check(md); dup {
			t.Fatal("fresh triple reported as duplicate")
		}
		rc.storeReply(md, []byte("cached"))
		cached, dup := rc.check(md)
		if !dup {
			t.Fatal("immediate duplicate not detected")
		}
		if string(cached) != "cached" {
			t.Fatalf("cached reply = %q", cached)
		}
		// A different op on the same (node, tx) is a distinct request.
		md.OpID = op + 1
		if _, dup := rc.check(md); dup && op+1 != op {
			t.Fatal("distinct op reported as duplicate")
		}
	})
}
