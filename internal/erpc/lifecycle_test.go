package erpc

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treaty/internal/seal"
	"treaty/internal/simnet"
)

// TestTimedOutCallsDoNotLeakPending drives calls into a network dropping
// every packet: each call must time out, deregister its pending entry,
// and count as cancelled — the pending map returns to zero instead of
// growing forever.
func TestTimedOutCallsDoNotLeakPending(t *testing.T) {
	testBothModes(t, func(t *testing.T, secure bool) {
		tc := newTestCluster(t, secure)
		tc.net.SetAdversary(simnet.FuncAdversary(func(simnet.Packet) simnet.Verdict {
			return simnet.Verdict{Drop: true}
		}))
		const calls = 8
		for i := 0; i < calls; i++ {
			md := seal.MsgMetadata{TxID: uint64(100 + i), OpID: 1}
			_, err := Call(tc.client, "server", reqEcho, md, []byte("x"), 20*time.Millisecond, nil)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("call %d: got %v, want ErrTimeout", i, err)
			}
		}
		if n := tc.client.PendingCount(); n != 0 {
			t.Errorf("pending map leaked %d entries after timeouts", n)
		}
		if got := tc.client.Stats().Cancelled; got != calls {
			t.Errorf("Cancelled = %d, want %d", got, calls)
		}
	})
}

// TestLateResponseCountedStale delays responses past the caller's
// timeout: the abandoned request's late response must be counted stale,
// not delivered, and nothing may leak.
func TestLateResponseCountedStale(t *testing.T) {
	tc := newTestCluster(t, true)
	tc.net.SetAdversary(simnet.FuncAdversary(func(pkt simnet.Packet) simnet.Verdict {
		if pkt.From == "server" {
			return simnet.Verdict{Delay: 80 * time.Millisecond}
		}
		return simnet.Verdict{}
	}))
	md := seal.MsgMetadata{TxID: 1, OpID: 1}
	_, err := Call(tc.client, "server", reqEcho, md, []byte("slow"), 15*time.Millisecond, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	// Let the delayed response land on the (now unregistered) request id.
	deadline := time.Now().Add(time.Second)
	for tc.client.Stats().StaleResponses == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := tc.client.Stats()
	if st.StaleResponses == 0 {
		t.Error("late response was not counted stale")
	}
	if st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
	if n := tc.client.PendingCount(); n != 0 {
		t.Errorf("pending map leaked %d entries", n)
	}
}

// flakyTransport fails Send for a chosen set of destinations.
type flakyTransport struct {
	mu   sync.Mutex
	fail map[string]bool
	sent []string
}

func (f *flakyTransport) Send(to string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail[to] {
		return errors.New("link down")
	}
	f.sent = append(f.sent, to)
	return nil
}

func (f *flakyTransport) Poll() (string, []byte, bool) { return "", nil, false }
func (f *flakyTransport) LocalAddr() string            { return "flaky" }
func (f *flakyTransport) Close() error                 { return nil }

// TestTxBurstPartialFailure checks that one dead destination does not
// take down the rest of a transmit batch: the burst keeps sending,
// aggregates the errors, and counts the drops.
func TestTxBurstPartialFailure(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	tr := &flakyTransport{fail: map[string]bool{"dead-1": true, "dead-2": true}}
	ep, err := NewEndpoint(Config{NodeID: 1, Transport: tr, NetworkKey: key, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	for i, to := range []string{"dead-1", "alive-1", "dead-2", "alive-2"} {
		ep.Enqueue(to, reqEcho, seal.MsgMetadata{TxID: uint64(i + 1), OpID: 1}, nil, nil)
	}
	burstErr := ep.TxBurst()
	if burstErr == nil {
		t.Fatal("TxBurst returned nil despite failing sends")
	}
	if got := len(tr.sent); got != 2 {
		t.Errorf("sent %d messages (%v), want the 2 live destinations", got, tr.sent)
	}
	if got := ep.Stats().TxDropped; got != 2 {
		t.Errorf("TxDropped = %d, want 2", got)
	}
}

// TestEnqueueCloseRace races Enqueue against Close: every Pending handed
// out must complete (response or ErrClosed) once Close returns — an
// entry inserted after Close drained the map would otherwise park its
// caller for the full timeout, contradicting Close's contract.
func TestEnqueueCloseRace(t *testing.T) {
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		tr := &flakyTransport{}
		ep, err := NewEndpoint(Config{NodeID: 1, Transport: tr, NetworkKey: key, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		const workers = 4
		pendings := make([][]*Pending, workers)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					p := ep.Enqueue("peer", reqEcho, seal.MsgMetadata{TxID: uint64(i + 1), OpID: 1}, nil, nil)
					pendings[w] = append(pendings[w], p)
				}
			}()
		}
		close(start)
		ep.Close()
		wg.Wait()
		for w := range pendings {
			for i, p := range pendings[w] {
				if !p.Done() {
					t.Fatalf("round %d: pending %d/%d not completed after Close", round, w, i)
				}
			}
		}
		if n := ep.PendingCount(); n != 0 {
			t.Fatalf("round %d: pending map leaked %d entries after Close", round, n)
		}
	}
}

// TestHandlerPanicContained registers a panicking handler: the poller
// must survive, the caller must get an error reply, and later requests
// must still be served.
func TestHandlerPanicContained(t *testing.T) {
	tc := newTestCluster(t, true)
	const reqPanic = 9
	tc.server.Register(reqPanic, func(r *Request) {
		panic("handler exploded")
	})
	_, err := Call(tc.client, "server", reqPanic, seal.MsgMetadata{TxID: 1, OpID: 1}, nil, time.Second, nil)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("got %v, want remote panic error", err)
	}
	if got := tc.server.Stats().HandlerPanics; got != 1 {
		t.Errorf("HandlerPanics = %d, want 1", got)
	}
	// The event loop must still be alive.
	resp, err := Call(tc.client, "server", reqEcho, seal.MsgMetadata{TxID: 2, OpID: 1}, []byte("still here"), time.Second, nil)
	if err != nil || string(resp) != "still here" {
		t.Fatalf("echo after panic: %q, %v", resp, err)
	}
}

// TestCallRetryRecoversFromLoss drops the first attempts' request
// packets: CallRetry must retransmit with fresh operation ids and
// eventually succeed, executing the handler exactly once.
func TestCallRetryRecoversFromLoss(t *testing.T) {
	tc := newTestCluster(t, true)
	var dropped atomic.Int64
	tc.net.SetAdversary(simnet.FuncAdversary(func(pkt simnet.Packet) simnet.Verdict {
		if pkt.From == "client" && dropped.Load() < 2 {
			dropped.Add(1)
			return simnet.Verdict{Drop: true}
		}
		return simnet.Verdict{}
	}))
	var op atomic.Uint64
	op.Store(10)
	resp, err := CallRetry(tc.client, "server", reqEcho, seal.MsgMetadata{TxID: 7}, []byte("retry"),
		30*time.Millisecond, nil, RetryPolicy{Attempts: 4, Base: 5 * time.Millisecond}, func() uint64 { return op.Add(1) })
	if err != nil {
		t.Fatalf("CallRetry: %v", err)
	}
	if string(resp) != "retry" {
		t.Errorf("resp = %q", resp)
	}
	if got := tc.executed.Load(); got != 1 {
		t.Errorf("handler executed %d times, want 1", got)
	}
	if n := tc.client.PendingCount(); n != 0 {
		t.Errorf("pending map leaked %d entries", n)
	}
}
