package erpc

import (
	"sync"
	"testing"
	"time"

	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/simnet"
)

// newMetricsPair boots a client/server endpoint pair with a metrics
// registry attached to the client.
func newMetricsPair(t *testing.T) (client, server *Endpoint, reg *obs.Registry) {
	t.Helper()
	n := simnet.New(simnet.LinkConfig{}, 7)
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	reg = obs.NewRegistry()
	mk := func(addr string, nodeID uint64, m *obs.Registry) *Endpoint {
		nep, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(Config{
			NodeID:     nodeID,
			Transport:  NewSimTransport(nep, nil, KindDPDK),
			NetworkKey: key,
			Secure:     true,
			Metrics:    m,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	client = mk("client", 1, reg)
	server = mk("server", 2, nil)
	server.Register(reqEcho, func(r *Request) { r.Reply(r.Payload) })
	pollers := []*Poller{StartPoller(client), StartPoller(server)}
	t.Cleanup(func() {
		for _, p := range pollers {
			p.Stop()
		}
		client.Close()
		server.Close()
		n.Close()
	})
	return client, server, reg
}

// TestStatsRaceRegression hammers the endpoint's stat-bearing paths
// (Call, Abandon, Stats, metrics snapshots) from many goroutines. Under
// -race this test fails if any endpoint statistic regresses to a plain
// unsynchronized int (the pre-hardening layout): Stats() and the
// registry's CounterFuncs read every field concurrently with the data
// path mutating them.
func TestStatsRaceRegression(t *testing.T) {
	client, _, reg := newMetricsPair(t)
	const workers, per = 8, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Dedicated readers: Stats() and Snapshot() race against writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = client.Stats()
				_ = reg.Snapshot()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	var callWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		callWG.Add(1)
		go func(w int) {
			defer callWG.Done()
			for i := 0; i < per; i++ {
				md := seal.MsgMetadata{TxID: uint64(w + 1), OpID: uint64(i + 1)}
				if i%5 == 4 {
					// Exercise Abandon: a 0-timeout call cancels unless
					// the response wins the race.
					_, _ = Call(client, "server", reqEcho, md, []byte("x"), time.Microsecond, nil)
				} else {
					if _, err := Call(client, "server", reqEcho, md, []byte("x"), 2*time.Second, nil); err != nil {
						t.Errorf("call: %v", err)
						return
					}
				}
			}
		}(w)
	}
	callWG.Wait()
	close(stop)
	wg.Wait()

	// Conservation law with all traffic quiesced:
	// enqueued == delivered + cancelled + orphaned + pending.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := client.Stats()
		pending := uint64(client.PendingCount())
		if s.Requests == s.Delivered+s.Cancelled+s.Orphaned+pending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation violated: enqueued=%d delivered=%d cancelled=%d orphaned=%d pending=%d",
				s.Requests, s.Delivered, s.Cancelled, s.Orphaned, pending)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndpointMetricsExport checks the registry view matches Stats()
// and that call latency histograms fill in.
func TestEndpointMetricsExport(t *testing.T) {
	client, _, reg := newMetricsPair(t)
	for i := 0; i < 20; i++ {
		md := seal.MsgMetadata{TxID: 1, OpID: uint64(i + 1)}
		if _, err := Call(client, "server", reqEcho, md, []byte("ping"), 2*time.Second, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := client.Stats()
	snap := reg.Snapshot()
	if snap.Counter("erpc.req.enqueued") != s.Requests || s.Requests != 20 {
		t.Fatalf("enqueued: registry=%d stats=%d", snap.Counter("erpc.req.enqueued"), s.Requests)
	}
	if snap.Counter("erpc.req.delivered") != s.Delivered || s.Delivered != 20 {
		t.Fatalf("delivered: registry=%d stats=%d", snap.Counter("erpc.req.delivered"), s.Delivered)
	}
	lat := snap.Histograms["erpc.call.latency_ns"]
	if lat.Count != 20 || lat.P50 <= 0 {
		t.Fatalf("latency histogram not recorded: %+v", lat)
	}
	if snap.Gauge("erpc.req.pending") != 0 {
		t.Fatalf("pending gauge = %d, want 0", snap.Gauge("erpc.req.pending"))
	}
}

// TestCloseOrphansCounted: requests in flight when the endpoint closes
// are accounted as orphaned, keeping the conservation law intact.
func TestCloseOrphansCounted(t *testing.T) {
	n := simnet.New(simnet.LinkConfig{}, 9)
	defer n.Close()
	nep, err := n.Listen("lonely")
	if err != nil {
		t.Fatal(err)
	}
	key, _ := seal.NewRandomKey()
	ep, err := NewEndpoint(Config{
		NodeID:     1,
		Transport:  NewSimTransport(nep, nil, KindDPDK),
		NetworkKey: key,
		Secure:     true,
		Metrics:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue requests to a peer that never answers, then close.
	for i := 0; i < 5; i++ {
		ep.Enqueue("void", reqEcho, seal.MsgMetadata{TxID: 1, OpID: uint64(i + 1)}, nil, nil)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	// One more after close: fails immediately, still counted.
	p := ep.Enqueue("void", reqEcho, seal.MsgMetadata{TxID: 1, OpID: 9}, nil, nil)
	if p.Err() == nil {
		t.Fatal("enqueue after close must fail")
	}
	s := ep.Stats()
	if s.Requests != 6 || s.Orphaned != 6 {
		t.Fatalf("requests=%d orphaned=%d, want 6/6", s.Requests, s.Orphaned)
	}
	if got := s.Delivered + s.Cancelled + s.Orphaned + uint64(ep.PendingCount()); got != s.Requests {
		t.Fatalf("conservation violated after close: %+v", s)
	}
}
