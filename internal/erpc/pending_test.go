package erpc

import (
	"testing"
	"time"

	"treaty/internal/seal"
)

func TestPendingChannelClosesOnCompletion(t *testing.T) {
	tc := newTestCluster(t, true)
	md := seal.MsgMetadata{TxID: 500, OpID: 1}
	pend := tc.client.Enqueue("server", reqEcho, md, []byte("x"), nil)
	select {
	case <-pend.Ch():
		if !pend.Done() {
			t.Fatal("channel closed before Done")
		}
		if string(pend.Response()) != "x" {
			t.Errorf("response = %q", pend.Response())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending channel never closed")
	}
}

func TestCallBlockingPathNoYield(t *testing.T) {
	tc := newTestCluster(t, true)
	// nil yield must use the blocking channel path and still succeed.
	start := time.Now()
	resp, err := Call(tc.client, "server", reqEcho, seal.MsgMetadata{TxID: 501, OpID: 1}, []byte("blocking"), 2*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "blocking" {
		t.Errorf("resp = %q", resp)
	}
	if time.Since(start) > time.Second {
		t.Error("blocking call took suspiciously long")
	}
}

func TestCallYieldPathBounded(t *testing.T) {
	tc := newTestCluster(t, true)
	yields := 0
	resp, err := Call(tc.client, "server", reqEcho, seal.MsgMetadata{TxID: 502, OpID: 1}, []byte("y"), 2*time.Second, func() { yields++ })
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "y" {
		t.Errorf("resp = %q", resp)
	}
}
