package erpc

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"treaty/internal/seal"
)

// Poller drives an endpoint's event loop from a dedicated goroutine,
// emulating eRPC's per-thread RPC ownership: all handler execution and
// continuation firing happens on the poller goroutine. Polling spins
// while traffic flows and backs off quickly when the port goes quiet so
// that low-core machines are not monopolized.
type Poller struct {
	ep   *Endpoint
	stop chan struct{}
	wg   sync.WaitGroup
}

// StartPoller begins polling ep.
func StartPoller(ep *Endpoint) *Poller {
	p := &Poller{ep: ep, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p
}

// loop runs the event loop until Stop. With a ChannelTransport the loop
// is event-driven: it spins through bursts while traffic flows and then
// blocks on packet arrival or transmit-queue wakeups — no sleeps, no
// idle latency. Plain transports fall back to adaptive sleep-polling.
func (p *Poller) loop() {
	defer p.wg.Done()
	ct, eventDriven := p.ep.cfg.Transport.(ChannelTransport)
	idle := 0
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		if n := p.ep.RunOnce(); n > 0 {
			idle = 0
			continue
		}
		if eventDriven {
			select {
			case <-p.stop:
				return
			case <-p.ep.TxNotify():
				// Transmit work arrived; next RunOnce flushes it.
			case pkt, ok := <-ct.RecvCh():
				if !ok {
					return
				}
				p.ep.HandlePacket(pkt.From, pkt.Data)
				// Secure dispatch does not retain the wire buffer (see
				// RunOnce); recycle it, decode failures included.
				// Plaintext dispatch takes ownership (payloads alias the
				// buffer), so it falls to the GC.
				if p.ep.codec != nil {
					pkt.Release()
				}
			}
			continue
		}
		idle++
		switch {
		case idle <= 8:
			runtime.Gosched()
		case idle <= 64:
			time.Sleep(5 * time.Microsecond)
		default:
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Stop halts the poller and waits for the loop to exit.
func (p *Poller) Stop() {
	close(p.stop)
	p.wg.Wait()
}

// ErrTimeout indicates a Call did not complete in time.
var ErrTimeout = fmt.Errorf("erpc: request timed out")

// timerPool recycles Call timeout timers. Timers are returned either
// after Stop (un-fired, channel drained if the stop lost the race) or
// after their firing was consumed, so a pooled timer's channel is
// always empty.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		// Fired concurrently with Stop; drain so the next acquire does
		// not observe a stale tick.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// Call enqueues a request and waits until the response arrives or
// timeout passes. With a nil yield the caller blocks on the completion
// channel (no spinning). With a fiber yield, the caller cooperatively
// yields between polls, pausing briefly every so often so tight yield
// loops do not monopolize low-core machines. The endpoint's event loop
// must be running (Poller or an external RunOnce driver).
//
// A timed-out call is abandoned: its pending entry is deregistered so
// the map cannot grow without bound, and a response that arrives later
// is counted as stale rather than delivered.
func Call(ep *Endpoint, to string, reqType uint8, md seal.MsgMetadata, payload []byte, timeout time.Duration, yield func()) ([]byte, error) {
	pend := ep.Enqueue(to, reqType, md, payload, nil)
	if yield == nil {
		// A pooled timer instead of time.After: at RPC rates the garbage
		// timers otherwise stay live for the full timeout (seconds) and
		// dominate the heap.
		timer := acquireTimer(timeout)
		select {
		case <-pend.Ch():
			releaseTimer(timer)
		case <-timer.C:
			timerPool.Put(timer) // fired: drained by the receive above
			if ep.Abandon(pend) {
				return nil, fmt.Errorf("%w: %s type=%d", ErrTimeout, to, reqType)
			}
			// Lost the race: the response completed the request while we
			// were timing out — wait out the (imminent) completion and
			// deliver it.
			<-pend.Ch()
		}
	} else {
		deadline := time.Now().Add(timeout)
		spins := 0
		for !pend.Done() {
			if time.Now().After(deadline) {
				if ep.Abandon(pend) {
					return nil, fmt.Errorf("%w: %s type=%d", ErrTimeout, to, reqType)
				}
				// Response arrived during the final poll; wait out the
				// (imminent) completion and deliver it.
				<-pend.Ch()
				break
			}
			yield()
			if spins++; spins%64 == 0 {
				// Pause the worker briefly: on saturated or low-core
				// machines this lets pollers and handlers run.
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	if err := pend.Err(); err != nil {
		return nil, err
	}
	return pend.Response(), nil
}
