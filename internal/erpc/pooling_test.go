package erpc

import (
	"net"
	"testing"
	"time"

	"treaty/internal/mempool"
	"treaty/internal/seal"
)

// TestUDPPooledRxNoLeak drives echo traffic and garbage datagrams over
// pooled UDP transports and asserts every receive buffer returns to the
// pool: delivered frames, decode-failure drops, and the close-time inbox
// drain alike. A leak on any branch keeps LiveBytes above zero forever.
func TestUDPPooledRxNoLeak(t *testing.T) {
	pool := mempool.New(nil, 2)
	ta, err := NewUDPTransportPool("127.0.0.1:0", nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewUDPTransportPool("127.0.0.1:0", nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewEndpoint(Config{NodeID: 1, Transport: ta, NetworkKey: key, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(Config{NodeID: 2, Transport: tb, NetworkKey: key, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	b.Register(reqEcho, func(r *Request) { r.Reply(r.Payload) })
	pa, pb := StartPoller(a), StartPoller(b)

	for i := 0; i < 32; i++ {
		md := seal.MsgMetadata{TxID: uint64(i + 1), OpID: 1}
		if _, err := Call(a, tb.LocalAddr(), reqEcho, md, []byte("pooled-rx"), 2*time.Second, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	// Exercise the decode-failure branches: a runt frame, a frame with a
	// bogus wire version, and a well-framed message whose body fails
	// authentication. Each must still release its receive buffer.
	conn, err := net.Dial("udp", tb.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	garbage := [][]byte{
		{0xde},
		{0xff, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b},
		append(make([]byte, headerLen), []byte("not a sealed body")...),
	}
	for _, g := range garbage {
		if _, err := conn.Write(g); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()

	// One more round trip after the garbage proves the endpoint survived
	// the bad frames (and flushes them through the dispatch path).
	if _, err := Call(a, tb.LocalAddr(), reqEcho, seal.MsgMetadata{TxID: 1000, OpID: 1}, []byte("after-garbage"), 2*time.Second, nil); err != nil {
		t.Fatalf("call after garbage: %v", err)
	}

	pa.Stop()
	pb.Stop()
	a.Close()
	b.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		st := pool.Stats()
		if st.LiveBytes == 0 {
			if st.Frees == 0 {
				t.Fatal("no frees recorded: pooled receive path never engaged")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled rx buffers leaked: %d live bytes (allocs=%d frees=%d)", st.LiveBytes, st.Allocs, st.Frees)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
