package erpc

import (
	"sync"

	"treaty/internal/seal"
)

// opKey identifies one operation for at-most-once execution: the paper's
// "unique tuple of the node's, Tx and operation ids".
type opKey struct {
	node, tx, op uint64
}

// replayCache enforces at-most-once execution and allows idempotent
// re-replies. It holds a bounded set of executed operation keys and, for
// those that have replied, the cached wire response. Eviction is
// generational (two half-windows) so the common case is lock + two map
// lookups.
type replayCache struct {
	mu       sync.Mutex
	capacity int
	cur      map[opKey][]byte
	prev     map[opKey][]byte
}

// newReplayCache creates a cache bounded to roughly capacity entries.
func newReplayCache(capacity int) *replayCache {
	return &replayCache{
		capacity: capacity,
		cur:      make(map[opKey][]byte),
		prev:     make(map[opKey][]byte),
	}
}

// keyOf builds the dedup key from message metadata.
func keyOf(md seal.MsgMetadata) opKey {
	return opKey{node: md.NodeID, tx: md.TxID, op: md.OpID}
}

// check records the operation and reports whether it was already seen.
// For an operation that was seen *and* has a cached reply, the reply wire
// bytes are returned for retransmission.
func (rc *replayCache) check(md seal.MsgMetadata) (cachedReply []byte, duplicate bool) {
	k := keyOf(md)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if resp, ok := rc.cur[k]; ok {
		return resp, true
	}
	if resp, ok := rc.prev[k]; ok {
		return resp, true
	}
	if len(rc.cur) >= rc.capacity/2 {
		rc.prev = rc.cur
		rc.cur = make(map[opKey][]byte, rc.capacity/2)
	}
	rc.cur[k] = nil
	return nil, false
}

// storeReply caches the wire response for an executed operation.
func (rc *replayCache) storeReply(md seal.MsgMetadata, wire []byte) {
	k := keyOf(md)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.cur[k]; ok {
		rc.cur[k] = wire
		return
	}
	if _, ok := rc.prev[k]; ok {
		rc.prev[k] = wire
	}
}
