package erpc

import (
	"errors"
	"time"

	"treaty/internal/seal"
)

// RetryPolicy bounds retransmission of idempotent requests with
// exponential backoff. The zero value selects the defaults.
type RetryPolicy struct {
	// Attempts is the total number of tries (0 = 4).
	Attempts int
	// Base is the backoff before the second attempt (0 = 25ms).
	Base time.Duration
	// Max caps the backoff growth (0 = 400ms).
	Max time.Duration
}

// withDefaults fills in zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 25 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 400 * time.Millisecond
	}
	return p
}

// CallRetry issues Call up to policy.Attempts times, backing off
// exponentially between attempts. It must only be used for idempotent
// requests (2PC status queries, commit/abort decision pushes): a request
// that timed out may still have executed remotely.
//
// nextOp, when non-nil, supplies a fresh operation id for each attempt.
// Retries need fresh ids because the receiver's replay cache answers a
// repeated (node, tx, op) tuple with the cached wire reply, which carries
// the original request id — an id the sender deregistered when the first
// attempt timed out, so that reply would land as stale.
//
// Only timeouts are retried: a remote error is a definitive answer and
// ErrClosed means the local endpoint is gone.
func CallRetry(ep *Endpoint, to string, reqType uint8, md seal.MsgMetadata, payload []byte, timeout time.Duration, yield func(), policy RetryPolicy, nextOp func() uint64) ([]byte, error) {
	policy = policy.withDefaults()
	backoff := policy.Base
	var lastErr error
	for try := 0; try < policy.Attempts; try++ {
		if try > 0 {
			ep.retries.Add(1)
			SleepYield(backoff, yield)
			if backoff *= 2; backoff > policy.Max {
				backoff = policy.Max
			}
		}
		if nextOp != nil {
			md.OpID = nextOp()
		}
		resp, err := Call(ep, to, reqType, md, payload, timeout, yield)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, err
		}
	}
	return nil, lastErr
}

// SleepYield waits d, cooperating with a fiber yield when one is
// provided (a plain time.Sleep would park the fiber's worker thread).
// The wait is dominated by yields; the worker pauses only every 64th
// iteration (Call's spin pattern) so concurrent backoffs on a small
// worker pool do not stall handler fibers and pollers.
func SleepYield(d time.Duration, yield func()) {
	if yield == nil {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	spins := 0
	for time.Now().Before(deadline) {
		yield()
		if spins++; spins%64 == 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
}
