package erpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/mempool"
	"treaty/internal/simnet"
)

// Transport carries wire bytes between endpoints. Poll must be
// non-blocking (kernel-bypass style); reliability is not required —
// the protocol layers tolerate loss via retries or abort.
type Transport interface {
	// Send transmits data to the named address.
	Send(to string, data []byte) error
	// Poll returns one received packet if immediately available.
	Poll() (from string, data []byte, ok bool)
	// LocalAddr returns this transport's address.
	LocalAddr() string
	// Close releases the transport.
	Close() error
}

// RawPacket is one received datagram, for event-channel transports.
type RawPacket struct {
	// From is the sender address.
	From string
	// Data is the payload.
	Data []byte
	// release returns Data to its transport's buffer pool; nil when the
	// buffer came from the GC heap (or is owned by the sender, as on the
	// in-process sim fabric).
	release func()
	// simBuf is the sim fabric's pooled backing of Data. The fabric hands
	// out the raw pointer rather than a release closure because binding
	// one per packet is itself an allocation on the poller's critical
	// path. At most one of simBuf/release is set.
	simBuf *[]byte
}

// Release recycles the packet's receive buffer. Call it exactly once,
// after Data is no longer referenced — including on every frame-decode
// failure path, or the buffer leaks from its pool. Nil-safe: packets
// without pooled buffers ignore it.
func (p RawPacket) Release() {
	if p.simBuf != nil {
		simnet.RecycleBuf(p.simBuf)
		return
	}
	if p.release != nil {
		p.release()
	}
}

// ChannelTransport is implemented by transports that can deliver receive
// events over a channel, letting the event loop block when idle instead
// of sleep-polling — the adaptive polling DESIGN.md describes. The
// channel closes when the transport closes.
type ChannelTransport interface {
	Transport
	// RecvCh returns the receive event channel. A packet read from the
	// channel must be handed to the endpoint (it bypasses Poll), then
	// Released.
	RecvCh() <-chan RawPacket
}

// PacketTransport is implemented by transports whose poll path hands
// out packets with their release hook attached, so the event loop can
// recycle the receive buffer once the frame has been dispatched (the
// plain Poll interface cannot: its caller keeps the slice).
type PacketTransport interface {
	Transport
	// PollPacket returns one received packet if immediately available.
	// The caller must Release it after dispatch.
	PollPacket() (RawPacket, bool)
}

// TransportKind selects the I/O cost profile of a transport.
type TransportKind int

const (
	// KindDPDK models kernel-bypass userspace I/O: polling, zero
	// syscalls on the data path (eRPC over DPDK, §VII-A).
	KindDPDK TransportKind = iota + 1
	// KindSocket models kernel sockets: every send and receive is a
	// (SCONE async) syscall, the overhead the paper's Fig. 8 isolates.
	KindSocket
)

// SimTransport runs over a simnet endpoint, charging syscall costs
// according to its kind.
type SimTransport struct {
	ep   *simnet.Endpoint
	rt   *enclave.Runtime
	kind TransportKind

	recvOnce sync.Once
	recvCh   chan RawPacket
}

// NewSimTransport wraps a simnet endpoint. rt may be nil (native).
func NewSimTransport(ep *simnet.Endpoint, rt *enclave.Runtime, kind TransportKind) *SimTransport {
	return &SimTransport{ep: ep, rt: rt, kind: kind}
}

var (
	_ ChannelTransport = (*SimTransport)(nil)
	_ PacketTransport  = (*SimTransport)(nil)
)

// RecvCh implements ChannelTransport: a converter goroutine forwards the
// simnet inbox, charging receive costs as packets pass. Each forwarded
// packet carries the fabric's release hook so the event loop recycles
// the send-side payload copy after dispatch.
func (t *SimTransport) RecvCh() <-chan RawPacket {
	t.recvOnce.Do(func() {
		t.recvCh = make(chan RawPacket)
		go func() {
			defer close(t.recvCh)
			for pkt := range t.ep.RecvCh() {
				t.charge(len(pkt.Data))
				t.recvCh <- RawPacket{From: pkt.From, Data: pkt.Data, simBuf: pkt.Buf()}
			}
		}()
	})
	return t.recvCh
}

// Send implements Transport.
func (t *SimTransport) Send(to string, data []byte) error {
	t.charge(len(data))
	return t.ep.Send(to, data)
}

// PollPacket implements PacketTransport: the caller must Release the
// packet after dispatching it, returning the fabric's send-side payload
// copy to its pool.
func (t *SimTransport) PollPacket() (RawPacket, bool) {
	pkt, ok := t.ep.Poll()
	if !ok {
		return RawPacket{}, false
	}
	t.charge(len(pkt.Data))
	return RawPacket{From: pkt.From, Data: pkt.Data, simBuf: pkt.Buf()}, true
}

// Poll implements Transport. DPDK polling issues no syscalls; a socket
// recv costs one syscall only when data is actually drained (we model
// level-triggered epoll batching for the socket path). Plain-Poll
// callers keep the slice, so the pooled backing is not recycled —
// release-aware callers use PollPacket instead.
func (t *SimTransport) Poll() (string, []byte, bool) {
	pkt, ok := t.ep.Poll()
	if !ok {
		return "", nil, false
	}
	t.charge(len(pkt.Data))
	return pkt.From, pkt.Data, true
}

// charge applies the per-operation I/O cost: socket transports pay a
// syscall; in enclave mode both kinds pay the message-boundary cost
// (buffers live in host memory and are copied across, §VII-D).
func (t *SimTransport) charge(n int) {
	if t.rt == nil {
		return
	}
	if t.kind == KindSocket {
		t.rt.Syscall()
	}
	t.rt.MessageCost(n)
}

// LocalAddr implements Transport.
func (t *SimTransport) LocalAddr() string { return t.ep.Addr() }

// Close implements Transport.
func (t *SimTransport) Close() error {
	t.ep.Close()
	return nil
}

// UDPTransport runs over a real UDP socket (loopback or LAN). A reader
// goroutine drains the socket into a bounded channel so Poll stays
// non-blocking. Every datagram costs a syscall (charged to rt).
type UDPTransport struct {
	conn   *net.UDPConn
	rt     *enclave.Runtime
	pool   *mempool.Pool
	inbox  chan RawPacket
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewUDPTransport binds a UDP socket on addr ("127.0.0.1:0" for an
// ephemeral port). rt may be nil.
func NewUDPTransport(addr string, rt *enclave.Runtime) (*UDPTransport, error) {
	return NewUDPTransportPool(addr, rt, nil)
}

// NewUDPTransportPool is NewUDPTransport with receive buffers drawn
// from pool instead of the GC heap (one allocation per inbound frame
// otherwise). Buffers live in the host region — inbound wire bytes are
// ciphertext (or untrusted plaintext) and need no EPC residency. Each
// buffer is returned to the pool by RawPacket.Release once the frame
// has been dispatched or dropped. pool may be nil.
func NewUDPTransportPool(addr string, rt *enclave.Runtime, pool *mempool.Pool) (*UDPTransport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("erpc: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("erpc: binding udp: %w", err)
	}
	t := &UDPTransport{
		conn:  conn,
		rt:    rt,
		pool:  pool,
		inbox: make(chan RawPacket, 4096),
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

var (
	_ ChannelTransport = (*UDPTransport)(nil)
	_ PacketTransport  = (*UDPTransport)(nil)
)

// RecvCh implements ChannelTransport. Receive-side syscall costs are
// charged by the read loop; channel consumers get packets directly.
func (t *UDPTransport) RecvCh() <-chan RawPacket { return t.inbox }

// readLoop drains the socket into the inbox.
func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			if t.closed.Load() {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return
		}
		pkt := RawPacket{From: raddr.String()}
		if t.pool != nil {
			b := t.pool.Alloc(n, mempool.RegionHost)
			copy(b.Data, buf[:n])
			pkt.Data = b.Data
			pkt.release = func() { t.pool.Free(b) }
		} else {
			pkt.Data = make([]byte, n)
			copy(pkt.Data, buf[:n])
		}
		select {
		case t.inbox <- pkt:
		default:
			// Inbox overrun: drop, like a NIC ring overflow. The buffer
			// still goes back to the pool — dropping a frame must not
			// leak its memory.
			pkt.Release()
		}
	}
}

// Send implements Transport.
func (t *UDPTransport) Send(to string, data []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if t.rt != nil {
		t.rt.Syscall()
	}
	raddr, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return fmt.Errorf("erpc: resolving %q: %w", to, err)
	}
	if _, err := t.conn.WriteToUDP(data, raddr); err != nil {
		return fmt.Errorf("erpc: udp send: %w", err)
	}
	return nil
}

// PollPacket implements PacketTransport: the caller must Release the
// packet after dispatching it.
func (t *UDPTransport) PollPacket() (RawPacket, bool) {
	select {
	case pkt := <-t.inbox:
		if t.rt != nil {
			t.rt.Syscall()
		}
		return pkt, true
	default:
		return RawPacket{}, false
	}
}

// Poll implements Transport. Callers of the plain interface keep the
// returned slice indefinitely, so a pooled buffer is detached with a
// copy here; release-aware callers use PollPacket instead.
func (t *UDPTransport) Poll() (string, []byte, bool) {
	pkt, ok := t.PollPacket()
	if !ok {
		return "", nil, false
	}
	if pkt.release != nil {
		data := append([]byte(nil), pkt.Data...)
		pkt.Release()
		return pkt.From, data, true
	}
	return pkt.From, pkt.Data, true
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() string { return t.conn.LocalAddr().String() }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	err := t.conn.Close()
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(t.inbox)
		// Recycle any packets still queued: each is delivered to exactly
		// one receiver (channel semantics), so this drain cannot race a
		// consumer into a double release.
		for pkt := range t.inbox {
			pkt.Release()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
	}
	return err
}
