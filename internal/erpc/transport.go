package erpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/simnet"
)

// Transport carries wire bytes between endpoints. Poll must be
// non-blocking (kernel-bypass style); reliability is not required —
// the protocol layers tolerate loss via retries or abort.
type Transport interface {
	// Send transmits data to the named address.
	Send(to string, data []byte) error
	// Poll returns one received packet if immediately available.
	Poll() (from string, data []byte, ok bool)
	// LocalAddr returns this transport's address.
	LocalAddr() string
	// Close releases the transport.
	Close() error
}

// RawPacket is one received datagram, for event-channel transports.
type RawPacket struct {
	// From is the sender address.
	From string
	// Data is the payload.
	Data []byte
}

// ChannelTransport is implemented by transports that can deliver receive
// events over a channel, letting the event loop block when idle instead
// of sleep-polling — the adaptive polling DESIGN.md describes. The
// channel closes when the transport closes.
type ChannelTransport interface {
	Transport
	// RecvCh returns the receive event channel. A packet read from the
	// channel must be handed to the endpoint (it bypasses Poll).
	RecvCh() <-chan RawPacket
}

// TransportKind selects the I/O cost profile of a transport.
type TransportKind int

const (
	// KindDPDK models kernel-bypass userspace I/O: polling, zero
	// syscalls on the data path (eRPC over DPDK, §VII-A).
	KindDPDK TransportKind = iota + 1
	// KindSocket models kernel sockets: every send and receive is a
	// (SCONE async) syscall, the overhead the paper's Fig. 8 isolates.
	KindSocket
)

// SimTransport runs over a simnet endpoint, charging syscall costs
// according to its kind.
type SimTransport struct {
	ep   *simnet.Endpoint
	rt   *enclave.Runtime
	kind TransportKind

	recvOnce sync.Once
	recvCh   chan RawPacket
}

// NewSimTransport wraps a simnet endpoint. rt may be nil (native).
func NewSimTransport(ep *simnet.Endpoint, rt *enclave.Runtime, kind TransportKind) *SimTransport {
	return &SimTransport{ep: ep, rt: rt, kind: kind}
}

var _ ChannelTransport = (*SimTransport)(nil)

// RecvCh implements ChannelTransport: a converter goroutine forwards the
// simnet inbox, charging receive costs as packets pass.
func (t *SimTransport) RecvCh() <-chan RawPacket {
	t.recvOnce.Do(func() {
		t.recvCh = make(chan RawPacket)
		go func() {
			defer close(t.recvCh)
			for pkt := range t.ep.RecvCh() {
				t.charge(len(pkt.Data))
				t.recvCh <- RawPacket{From: pkt.From, Data: pkt.Data}
			}
		}()
	})
	return t.recvCh
}

// Send implements Transport.
func (t *SimTransport) Send(to string, data []byte) error {
	t.charge(len(data))
	return t.ep.Send(to, data)
}

// Poll implements Transport. DPDK polling issues no syscalls; a socket
// recv costs one syscall only when data is actually drained (we model
// level-triggered epoll batching for the socket path).
func (t *SimTransport) Poll() (string, []byte, bool) {
	pkt, ok := t.ep.Poll()
	if !ok {
		return "", nil, false
	}
	t.charge(len(pkt.Data))
	return pkt.From, pkt.Data, true
}

// charge applies the per-operation I/O cost: socket transports pay a
// syscall; in enclave mode both kinds pay the message-boundary cost
// (buffers live in host memory and are copied across, §VII-D).
func (t *SimTransport) charge(n int) {
	if t.rt == nil {
		return
	}
	if t.kind == KindSocket {
		t.rt.Syscall()
	}
	t.rt.MessageCost(n)
}

// LocalAddr implements Transport.
func (t *SimTransport) LocalAddr() string { return t.ep.Addr() }

// Close implements Transport.
func (t *SimTransport) Close() error {
	t.ep.Close()
	return nil
}

// UDPTransport runs over a real UDP socket (loopback or LAN). A reader
// goroutine drains the socket into a bounded channel so Poll stays
// non-blocking. Every datagram costs a syscall (charged to rt).
type UDPTransport struct {
	conn   *net.UDPConn
	rt     *enclave.Runtime
	inbox  chan RawPacket
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewUDPTransport binds a UDP socket on addr ("127.0.0.1:0" for an
// ephemeral port). rt may be nil.
func NewUDPTransport(addr string, rt *enclave.Runtime) (*UDPTransport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("erpc: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("erpc: binding udp: %w", err)
	}
	t := &UDPTransport{
		conn:  conn,
		rt:    rt,
		inbox: make(chan RawPacket, 4096),
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

var _ ChannelTransport = (*UDPTransport)(nil)

// RecvCh implements ChannelTransport. Receive-side syscall costs are
// charged by the read loop; channel consumers get packets directly.
func (t *UDPTransport) RecvCh() <-chan RawPacket { return t.inbox }

// readLoop drains the socket into the inbox.
func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			if t.closed.Load() {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		select {
		case t.inbox <- RawPacket{From: raddr.String(), Data: data}:
		default:
			// Inbox overrun: drop, like a NIC ring overflow.
		}
	}
}

// Send implements Transport.
func (t *UDPTransport) Send(to string, data []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if t.rt != nil {
		t.rt.Syscall()
	}
	raddr, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return fmt.Errorf("erpc: resolving %q: %w", to, err)
	}
	if _, err := t.conn.WriteToUDP(data, raddr); err != nil {
		return fmt.Errorf("erpc: udp send: %w", err)
	}
	return nil
}

// Poll implements Transport.
func (t *UDPTransport) Poll() (string, []byte, bool) {
	select {
	case pkt := <-t.inbox:
		if t.rt != nil {
			t.rt.Syscall()
		}
		return pkt.From, pkt.Data, true
	default:
		return "", nil, false
	}
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() string { return t.conn.LocalAddr().String() }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	err := t.conn.Close()
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(t.inbox)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
	}
	return err
}
