// Package fibers implements Treaty's userland scheduler (§VII-C): a
// cooperative, round-robin fiber scheduler layered on a small set of
// worker threads. Timer-based (preemptive) scheduling is prohibitively
// expensive inside an enclave — interrupts cause world switches — so the
// engine runs one fiber per connected client and fibers yield explicitly
// at blocking points (lock waits, RPC polls, stabilization waits).
//
// Each worker runs exactly one fiber at a time. When a fiber yields or
// blocks, the worker picks the next runnable fiber from its run queue with
// no syscall or world switch (a channel handoff between goroutines). When
// a worker has no runnable fibers it sleeps — the one place a (charged)
// world switch happens — with exponentially increasing backoff, exactly as
// the paper's scheduler yields to SCONE and "increases the amount of time
// before future yields are triggered".
package fibers

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/enclave"
)

// ErrStopped is returned by Go after the scheduler has been stopped.
var ErrStopped = errors.New("fibers: scheduler stopped")

// Fiber is the handle a running task uses to cooperate with its scheduler.
// Apart from Unblock (safe from any goroutine), a fiber must only call
// methods on its own handle, from its own goroutine.
type Fiber struct {
	id     uint64
	worker *worker
	resume chan struct{}
	done   chan struct{}
}

// ID returns the fiber's unique id.
func (f *Fiber) ID() uint64 { return f.id }

// Yield gives up the worker so the next runnable fiber can execute; the
// calling fiber re-enters the back of the run queue (round-robin).
func (f *Fiber) Yield() {
	f.worker.enqueue(f)
	f.worker.relinquish()
	<-f.resume
}

// Block parks the fiber until another goroutine calls Unblock. Use for
// lock waits, RPC completions, and stabilization waits.
func (f *Fiber) Block() {
	f.worker.blocked.Add(1)
	f.worker.relinquish()
	<-f.resume
}

// Unblock marks f runnable again. Safe to call from any goroutine. Each
// Unblock must pair with exactly one Block.
func (f *Fiber) Unblock() {
	f.worker.blocked.Add(-1)
	f.worker.enqueue(f)
}

// Sleep parks the fiber for at least d, letting other fibers run.
func (f *Fiber) Sleep(d time.Duration) {
	timer := time.AfterFunc(d, f.Unblock)
	defer timer.Stop()
	f.Block()
}

// YieldUntil yields repeatedly until cond returns true or the deadline
// passes; it reports whether cond was met. deadline may be zero for no
// deadline. This is the polling idiom used by the RPC event loop ("poll
// for replies and/or yield").
func (f *Fiber) YieldUntil(cond func() bool, deadline time.Time) bool {
	for !cond() {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false
		}
		f.Yield()
	}
	return true
}

// Scheduler multiplexes fibers over a fixed set of workers.
type Scheduler struct {
	workers []*worker
	rt      *enclave.Runtime
	nextID  atomic.Uint64
	nextW   atomic.Uint64
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// New creates a scheduler with the given number of workers (0 means 8,
// the paper's configuration), charging idle-sleep world switches to rt
// (nil for native runs).
func New(workers int, rt *enclave.Runtime) *Scheduler {
	if workers <= 0 {
		workers = 8
	}
	s := &Scheduler{rt: rt, workers: make([]*worker, workers)}
	for i := range s.workers {
		w := &worker{
			sched:   s,
			runq:    make(chan *Fiber, 4096),
			yielded: make(chan struct{}),
			kickCh:  make(chan struct{}, 1),
		}
		s.workers[i] = w
		s.wg.Add(1)
		go w.loop(&s.wg)
	}
	return s
}

// Go spawns fn as a fiber, placed round-robin on a worker (one fiber per
// client in Treaty). The returned handle can be waited on with Join.
func (s *Scheduler) Go(fn func(*Fiber)) (*Fiber, error) {
	if s.stopped.Load() {
		return nil, ErrStopped
	}
	w := s.workers[s.nextW.Add(1)%uint64(len(s.workers))]
	f := &Fiber{
		id:     s.nextID.Add(1),
		worker: w,
		resume: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go func() {
		<-f.resume // wait to be scheduled the first time
		fn(f)
		close(f.done)
		w.relinquish()
	}()
	w.enqueue(f)
	return f, nil
}

// Join blocks until fiber f has returned.
func (s *Scheduler) Join(f *Fiber) { <-f.done }

// Stop shuts the scheduler down. All fibers must have finished (or be
// permanently blocked and abandoned by their owners) before Stop returns;
// Stop waits only for the worker loops.
func (s *Scheduler) Stop() {
	if s.stopped.Swap(true) {
		return
	}
	for _, w := range s.workers {
		w.kick()
	}
	s.wg.Wait()
}

// Workers returns the number of workers.
func (s *Scheduler) Workers() int { return len(s.workers) }

// worker runs fibers one at a time from its run queue.
type worker struct {
	sched   *Scheduler
	runq    chan *Fiber
	yielded chan struct{}
	kickCh  chan struct{}
	blocked atomic.Int64
}

// enqueue makes f runnable on this worker. Never drops.
func (w *worker) enqueue(f *Fiber) {
	w.runq <- f
}

// relinquish signals the worker loop that the current fiber has stopped
// running (yielded, blocked, or finished).
func (w *worker) relinquish() {
	w.yielded <- struct{}{}
}

// kick wakes the worker loop if it is sleeping idle.
func (w *worker) kick() {
	select {
	case w.kickCh <- struct{}{}:
	default:
	}
}

// loop is the worker's scheduling loop: pick the next runnable fiber,
// resume it, and wait until it relinquishes the worker. With an empty run
// queue the worker sleeps with backoff, charging a world switch (sleeping
// requires a syscall out of the enclave).
func (w *worker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	backoff := 10 * time.Microsecond
	const maxBackoff = 2 * time.Millisecond
	for {
		select {
		case f := <-w.runq:
			backoff = 10 * time.Microsecond
			w.runFiber(f)
		default:
			if w.sched.stopped.Load() {
				return
			}
			if w.sched.rt != nil {
				w.sched.rt.WorldSwitch()
			}
			select {
			case f := <-w.runq:
				backoff = 10 * time.Microsecond
				w.runFiber(f)
			case <-w.kickCh:
			case <-time.After(backoff):
				backoff *= 2
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
		}
	}
}

// runFiber resumes f and waits for it to relinquish the worker. This is
// what makes scheduling cooperative: at most one fiber per worker runs at
// any moment.
func (w *worker) runFiber(f *Fiber) {
	f.resume <- struct{}{}
	<-w.yielded
}

// String implements fmt.Stringer for debugging.
func (w *worker) String() string {
	return fmt.Sprintf("worker{runq=%d blocked=%d}", len(w.runq), w.blocked.Load())
}

var _ fmt.Stringer = (*worker)(nil)
