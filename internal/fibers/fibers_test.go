package fibers

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treaty/internal/enclave"
)

func TestFibersRunToCompletion(t *testing.T) {
	s := New(2, nil)
	defer s.Stop()
	var count atomic.Int64
	var handles []*Fiber
	for i := 0; i < 50; i++ {
		f, err := s.Go(func(*Fiber) { count.Add(1) })
		if err != nil {
			t.Fatalf("Go: %v", err)
		}
		handles = append(handles, f)
	}
	for _, f := range handles {
		s.Join(f)
	}
	if got := count.Load(); got != 50 {
		t.Errorf("ran %d fibers, want 50", got)
	}
}

func TestOneFiberPerWorkerAtATime(t *testing.T) {
	s := New(1, nil) // single worker: strict serialization
	defer s.Stop()
	var running, maxRunning atomic.Int64
	var handles []*Fiber
	for i := 0; i < 10; i++ {
		f, err := s.Go(func(f *Fiber) {
			for j := 0; j < 20; j++ {
				cur := running.Add(1)
				for {
					prev := maxRunning.Load()
					if cur <= prev || maxRunning.CompareAndSwap(prev, cur) {
						break
					}
				}
				running.Add(-1)
				f.Yield()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, f)
	}
	for _, f := range handles {
		s.Join(f)
	}
	if got := maxRunning.Load(); got != 1 {
		t.Errorf("max concurrent fibers on one worker = %d, want 1", got)
	}
}

func TestYieldInterleavesRoundRobin(t *testing.T) {
	s := New(1, nil)
	defer s.Stop()
	var mu sync.Mutex
	var order []int
	var handles []*Fiber
	for i := 0; i < 3; i++ {
		f, err := s.Go(func(f *Fiber) {
			for j := 0; j < 3; j++ {
				mu.Lock()
				order = append(order, 0)
				mu.Unlock()
				f.Yield()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, f)
	}
	for _, f := range handles {
		s.Join(f)
	}
	if len(order) != 9 {
		t.Errorf("total slices = %d, want 9", len(order))
	}
}

func TestBlockUnblock(t *testing.T) {
	s := New(2, nil)
	defer s.Stop()
	ready := make(chan *Fiber, 1)
	var woke atomic.Bool
	f, err := s.Go(func(f *Fiber) {
		ready <- f
		f.Block()
		woke.Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	blocked := <-ready
	time.Sleep(10 * time.Millisecond)
	if woke.Load() {
		t.Fatal("fiber proceeded past Block without Unblock")
	}
	blocked.Unblock()
	s.Join(f)
	if !woke.Load() {
		t.Fatal("fiber did not wake after Unblock")
	}
}

func TestSleepWakes(t *testing.T) {
	s := New(1, nil)
	defer s.Stop()
	start := time.Now()
	f, err := s.Go(func(f *Fiber) { f.Sleep(20 * time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	s.Join(f)
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("woke after %v, want >= 20ms", elapsed)
	}
}

func TestSleepDoesNotBlockOtherFibers(t *testing.T) {
	s := New(1, nil)
	defer s.Stop()
	sleeper, err := s.Go(func(f *Fiber) { f.Sleep(100 * time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	quick, err := s.Go(func(f *Fiber) {
		for i := 0; i < 10; i++ {
			f.Yield()
		}
		close(done)
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(90 * time.Millisecond):
		t.Error("quick fiber starved behind a sleeping fiber")
	}
	s.Join(sleeper)
	s.Join(quick)
}

func TestYieldUntil(t *testing.T) {
	s := New(1, nil)
	defer s.Stop()
	var flag atomic.Bool
	setter, err := s.Go(func(f *Fiber) {
		for i := 0; i < 5; i++ {
			f.Yield()
		}
		flag.Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	var met bool
	waiter, err := s.Go(func(f *Fiber) {
		met = f.YieldUntil(flag.Load, time.Now().Add(time.Second))
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Join(setter)
	s.Join(waiter)
	if !met {
		t.Error("YieldUntil must observe the flag")
	}
}

func TestYieldUntilDeadline(t *testing.T) {
	s := New(1, nil)
	defer s.Stop()
	var met bool
	f, err := s.Go(func(f *Fiber) {
		met = f.YieldUntil(func() bool { return false }, time.Now().Add(10*time.Millisecond))
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Join(f)
	if met {
		t.Error("YieldUntil must time out on an impossible condition")
	}
}

func TestGoAfterStop(t *testing.T) {
	s := New(1, nil)
	s.Stop()
	if _, err := s.Go(func(*Fiber) {}); err != ErrStopped {
		t.Errorf("got %v, want ErrStopped", err)
	}
}

func TestStopIdempotent(t *testing.T) {
	s := New(2, nil)
	s.Stop()
	s.Stop() // must not panic or hang
}

func TestIdleWorkerChargesWorldSwitch(t *testing.T) {
	rt := enclave.NewRuntime(enclave.RuntimeConfig{
		Mode:  enclave.ModeScone,
		Costs: enclave.Costs{WorldSwitch: time.Microsecond},
	})
	s := New(1, rt)
	time.Sleep(20 * time.Millisecond) // idle workers sleep and charge switches
	s.Stop()
	if rt.Stats().WorldSwitches == 0 {
		t.Error("idle worker must charge world switches for its sleeps")
	}
}

func TestManyFibersManyWorkers(t *testing.T) {
	s := New(4, nil)
	defer s.Stop()
	var sum atomic.Int64
	var handles []*Fiber
	for i := 0; i < 200; i++ {
		f, err := s.Go(func(f *Fiber) {
			for j := 0; j < 10; j++ {
				sum.Add(1)
				f.Yield()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, f)
	}
	for _, f := range handles {
		s.Join(f)
	}
	if got := sum.Load(); got != 2000 {
		t.Errorf("sum = %d, want 2000", got)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Property: with N always-runnable fibers on one worker, slice counts
	// stay balanced — no fiber starves or dominates.
	s := New(1, nil)
	defer s.Stop()
	const fibersN, slices = 5, 200
	counts := make([]atomic.Int64, fibersN)
	var handles []*Fiber
	stop := make(chan struct{})
	for i := 0; i < fibersN; i++ {
		f, err := s.Go(func(f *Fiber) {
			idx := int(f.ID()-1) % fibersN
			for {
				select {
				case <-stop:
					return
				default:
				}
				counts[idx].Add(1)
				f.Yield()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, f)
	}
	// Wait until the busiest fiber has many slices.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var max int64
		for i := range counts {
			if c := counts[i].Load(); c > max {
				max = c
			}
		}
		if max >= slices || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	for _, f := range handles {
		s.Join(f)
	}
	var min, max int64 = 1 << 62, 0
	for i := range counts {
		c := counts[i].Load()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatal("a fiber starved completely")
	}
	if max > 3*min {
		t.Errorf("unfair scheduling: max %d vs min %d slices", max, min)
	}
}

func TestFiberIDsUnique(t *testing.T) {
	s := New(2, nil)
	defer s.Stop()
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var handles []*Fiber
	for i := 0; i < 100; i++ {
		f, err := s.Go(func(f *Fiber) {
			mu.Lock()
			defer mu.Unlock()
			if seen[f.ID()] {
				t.Errorf("duplicate fiber id %d", f.ID())
			}
			seen[f.ID()] = true
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, f)
	}
	for _, f := range handles {
		s.Join(f)
	}
}
