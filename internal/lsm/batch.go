package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorruptBatch indicates a write batch that cannot be decoded.
var ErrCorruptBatch = errors.New("lsm: corrupt write batch")

// Batch is an ordered set of writes applied atomically. The encoded form
// is what the WAL logs: count(4) ∥ records, each kind(1) ∥ klen(varint) ∥
// key ∥ [vlen(varint) ∥ value].
type Batch struct {
	buf   []byte
	count uint32
}

// NewBatch creates an empty batch.
func NewBatch() *Batch {
	return &Batch{buf: make([]byte, 4)}
}

// Put appends a set record.
func (b *Batch) Put(key, value []byte) {
	b.buf = append(b.buf, byte(KindSet))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)))
	b.buf = append(b.buf, key...)
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, value...)
	b.count++
}

// Delete appends a tombstone record.
func (b *Batch) Delete(key []byte) {
	b.buf = append(b.buf, byte(KindDelete))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)))
	b.buf = append(b.buf, key...)
	b.count++
}

// Count returns the number of records.
func (b *Batch) Count() int { return int(b.count) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.buf = b.buf[:4]
	b.count = 0
}

// encode finalizes the batch bytes.
func (b *Batch) encode() []byte {
	binary.LittleEndian.PutUint32(b.buf[:4], b.count)
	return b.buf
}

// Each calls fn for every record in the batch, in order. Used by the 2PC
// layer to re-acquire locks for recovered prepared transactions.
func (b *Batch) Each(fn func(kind RecordKind, key, value []byte) error) error {
	recs, err := decodeBatch(b.encode())
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := fn(r.kind, r.key, r.value); err != nil {
			return err
		}
	}
	return nil
}

// batchRecord is one decoded batch record.
type batchRecord struct {
	kind  RecordKind
	key   []byte
	value []byte
}

// decodeBatch parses an encoded batch.
func decodeBatch(data []byte) ([]batchRecord, error) {
	if len(data) < 4 {
		return nil, ErrCorruptBatch
	}
	count := binary.LittleEndian.Uint32(data[:4])
	recs := make([]batchRecord, 0, count)
	off := 4
	for i := uint32(0); i < count; i++ {
		if off >= len(data) {
			return nil, ErrCorruptBatch
		}
		kind := RecordKind(data[off])
		off++
		klen, n := binary.Uvarint(data[off:])
		if n <= 0 || off+n+int(klen) > len(data) {
			return nil, ErrCorruptBatch
		}
		off += n
		key := data[off : off+int(klen)]
		off += int(klen)
		var value []byte
		if kind == KindSet {
			vlen, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(vlen) > len(data) {
				return nil, ErrCorruptBatch
			}
			off += n
			value = data[off : off+int(vlen)]
			off += int(vlen)
		} else if kind != KindDelete {
			return nil, fmt.Errorf("%w: unknown kind %d", ErrCorruptBatch, kind)
		}
		recs = append(recs, batchRecord{kind: kind, key: key, value: value})
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptBatch, len(data)-off)
	}
	return recs, nil
}

// applyToMemTable inserts the batch's records starting at baseSeq.
func applyToMemTable(m *memTable, baseSeq uint64, recs []batchRecord) {
	for i, r := range recs {
		m.add(baseSeq+uint64(i), r.kind, r.key, r.value)
	}
}
