// Package blockcache is the enclave-resident cache of verified,
// decrypted SSTable block plaintext. Every block enters the cache only
// AFTER its integrity check (hash chain or CRC) and decryption have
// succeeded, so a hit skips the simulated async syscall, the
// re-verification, and the re-decryption that an uncached read pays on
// each lookup — the dominant read-path cost at the SCONE+encryption
// level.
//
// Security model: cached plaintext lives in enclave-modelled memory.
// Every insert charges the enclave runtime's EPC accounting
// (Runtime.AllocEnclave), so a cache sized past the EPC budget pays the
// existing paging-penalty cost model — the capacity/performance
// tradeoff stays honest rather than assuming free trusted memory.
//
// Concurrency: the cache is sharded by key hash with one mutex per
// shard. Cached blocks are immutable — callers receive the shared
// slice and must only read it (the SSTable iterators never mutate
// block bytes) — so a hit is a map lookup plus a ref-bit store under
// one short critical section.
//
// Replacement is CLOCK (second chance): each shard keeps its entries
// on a ring with a sweep hand; a hit sets the entry's ref bit, and
// eviction clears ref bits until it finds a cold entry. One full
// sweep degenerates to FIFO, so the sweep always terminates.
package blockcache

import (
	"sync"
	"sync/atomic"

	"treaty/internal/enclave"
)

// defaultShards balances contention against invalidation scan cost.
const defaultShards = 8

// minShardBytes keeps tiny caches from being sliced into shards too
// small to hold even a handful of ~4 KiB blocks.
const minShardBytes = 64 << 10

// ckey identifies one cached block. Table numbers are monotonic and
// never reused (see lsm manifest), so a key uniquely names the block's
// contents forever.
type ckey struct {
	table uint64
	block uint32
}

// entry is one cached block. data is immutable once published.
type entry struct {
	k    ckey
	data []byte
	ref  bool
}

// shard is one lock domain: an index into a CLOCK ring.
type shard struct {
	mu    sync.Mutex
	index map[ckey]int // key → ring position
	ring  []*entry
	hand  int
	bytes int64 // resident payload bytes in this shard
}

// Cache is a sharded CLOCK cache of decrypted SSTable blocks. All
// methods are safe for concurrent use and nil-safe (a nil *Cache
// behaves as an always-miss cache), so callers need no enabled checks
// on the hot path.
type Cache struct {
	rt       *enclave.Runtime
	shards   []shard
	capacity int64
	shardCap int64

	lookups       atomic.Uint64
	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	epcOverflows  atomic.Uint64
	invalidations atomic.Uint64
	bytes         atomic.Int64
}

// New builds a cache holding up to capacity payload bytes, charging
// enclave memory accounting to rt (nil rt: no accounting — tests).
// nshards <= 0 selects a default. Returns nil when capacity <= 0
// (caching disabled).
func New(capacity int64, nshards int, rt *enclave.Runtime) *Cache {
	if capacity <= 0 {
		return nil
	}
	if nshards <= 0 {
		nshards = defaultShards
	}
	for nshards > 1 && capacity/int64(nshards) < minShardBytes {
		nshards /= 2
	}
	c := &Cache{
		rt:       rt,
		shards:   make([]shard, nshards),
		capacity: capacity,
		shardCap: capacity / int64(nshards),
	}
	for i := range c.shards {
		c.shards[i].index = make(map[ckey]int)
	}
	return c
}

// shardFor hashes k onto its shard (fibonacci mix; block index spread
// matters because one hot table's blocks should not share a lock).
func (c *Cache) shardFor(k ckey) *shard {
	h := k.table*0x9E3779B97F4A7C15 + uint64(k.block)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return &c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached plaintext of (table, block) and whether it was
// present. The returned slice is shared and immutable: read-only.
func (c *Cache) Get(table uint64, block int) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.lookups.Add(1)
	k := ckey{table: table, block: uint32(block)}
	s := c.shardFor(k)
	s.mu.Lock()
	i, ok := s.index[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := s.ring[i]
	e.ref = true
	data := e.data
	s.mu.Unlock()
	c.hits.Add(1)
	// Touching enclave-resident data while the footprint is past the
	// EPC budget models working-set paging on the hit path too — an
	// oversized cache is not free just because it hits.
	if c.rt != nil {
		c.rt.TouchEnclave(len(data))
	}
	return data, true
}

// Put inserts the plaintext of (table, block), taking ownership of
// data — the caller must hand in a slice that will never be written
// again (the lsm read path inserts a dedicated copy). Blocks larger
// than a shard's budget are not cached. If the block is already
// present (racing readers), the existing entry wins and data is
// dropped.
func (c *Cache) Put(table uint64, block int, data []byte) {
	if c == nil || len(data) == 0 {
		return
	}
	n := int64(len(data))
	if n > c.shardCap {
		return
	}
	k := ckey{table: table, block: uint32(block)}
	s := c.shardFor(k)

	s.mu.Lock()
	if _, ok := s.index[k]; ok {
		s.mu.Unlock()
		return
	}
	var evictedBytes int64
	var evicted uint64
	for s.bytes-evictedBytes+n > c.shardCap && len(s.ring) > 0 {
		e := s.ring[s.hand]
		if e.ref {
			// Second chance: clear and advance. Each entry's ref bit
			// can be cleared at most once per sweep, so this loop
			// strictly progresses toward an eviction.
			e.ref = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		evictedBytes += int64(len(e.data))
		evicted++
		s.removeAt(s.hand)
	}
	s.bytes -= evictedBytes
	// Insert with the ref bit set: a brand-new block gets one sweep of
	// grace before it is eviction-eligible.
	s.index[k] = len(s.ring)
	s.ring = append(s.ring, &entry{k: k, data: data, ref: true})
	s.bytes += n
	s.mu.Unlock()

	c.bytes.Add(n - evictedBytes)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	// EPC accounting outside the shard lock: AllocEnclave may spin
	// (paging penalty) and must not serialize the shard.
	if c.rt != nil {
		if evictedBytes > 0 {
			c.rt.FreeEnclave(int(evictedBytes))
		}
		c.rt.AllocEnclave(int(n))
		if c.rt.Secure() && c.rt.Stats().EnclaveBytes > c.rt.EPCBudget() {
			c.epcOverflows.Add(1)
		}
	}
}

// removeAt unlinks ring position i (swap-with-last). The caller holds
// s.mu and settles s.bytes itself.
func (s *shard) removeAt(i int) {
	e := s.ring[i]
	delete(s.index, e.k)
	last := len(s.ring) - 1
	if i != last {
		s.ring[i] = s.ring[last]
		s.index[s.ring[i].k] = i
	}
	s.ring[last] = nil
	s.ring = s.ring[:last]
	if s.hand >= len(s.ring) {
		s.hand = 0
	}
}

// InvalidateTable removes every cached block of table and discharges
// its enclave memory. Called when a table is deleted after compaction
// and when it is quarantined on corruption — in the quarantine case
// the purge must complete before the corruption error is returned to
// the caller, so a stale cached block can never serve reads for a
// quarantined table.
func (c *Cache) InvalidateTable(table uint64) {
	if c == nil {
		return
	}
	c.invalidations.Add(1)
	var freed int64
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		for i := 0; i < len(s.ring); {
			if s.ring[i].k.table == table {
				n := int64(len(s.ring[i].data))
				s.removeAt(i) // swaps the last entry into i: re-examine i
				s.bytes -= n
				freed += n
				continue
			}
			i++
		}
		s.mu.Unlock()
	}
	if freed > 0 {
		c.bytes.Add(-freed)
		if c.rt != nil {
			c.rt.FreeEnclave(int(freed))
		}
	}
}

// Purge empties the cache and discharges all enclave memory (DB close).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	var freed int64
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		freed += s.bytes
		s.bytes = 0
		s.ring = nil
		s.hand = 0
		s.index = make(map[ckey]int)
		s.mu.Unlock()
	}
	if freed > 0 {
		c.bytes.Add(-freed)
		if c.rt != nil {
			c.rt.FreeEnclave(int(freed))
		}
	}
}

// The stats accessors are shaped for obs.Registry's CounterFunc /
// GaugeFunc (method values register directly). All are nil-safe.

// Lookups counts Get calls. Invariant: Lookups == Hits + Misses at
// quiescence (the chaos soak asserts this conservation law).
func (c *Cache) Lookups() uint64 {
	if c == nil {
		return 0
	}
	return c.lookups.Load()
}

// Hits counts Gets served from cache.
func (c *Cache) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses counts Gets that fell through to storage.
func (c *Cache) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Evictions counts blocks displaced by capacity pressure.
func (c *Cache) Evictions() uint64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// EPCOverflows counts inserts that left the enclave footprint past the
// EPC budget (each such insert paid paging penalties).
func (c *Cache) EPCOverflows() uint64 {
	if c == nil {
		return 0
	}
	return c.epcOverflows.Load()
}

// Invalidations counts whole-table purges (compaction + quarantine).
func (c *Cache) Invalidations() uint64 {
	if c == nil {
		return 0
	}
	return c.invalidations.Load()
}

// Bytes is the resident payload footprint. Invariant: 0 <= Bytes <=
// Capacity at quiescence.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// Capacity is the configured payload budget (0 for a nil cache).
func (c *Cache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capacity
}
