package blockcache

import (
	"fmt"
	"sync"
	"testing"

	"treaty/internal/enclave"
)

func blk(size int, fill byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1<<20, 4, nil)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	want := blk(100, 0xAB)
	c.Put(1, 0, want)
	got, ok := c.Get(1, 0)
	if !ok {
		t.Fatal("miss after Put")
	}
	if &got[0] != &want[0] {
		t.Fatal("Get did not return the shared cached slice")
	}
	if c.Lookups() != 2 || c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("stats lookups=%d hits=%d misses=%d", c.Lookups(), c.Hits(), c.Misses())
	}
	if c.Bytes() != 100 {
		t.Fatalf("bytes=%d want 100", c.Bytes())
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	c.Put(1, 0, blk(10, 1))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.InvalidateTable(1)
	c.Purge()
	if c.Lookups() != 0 || c.Bytes() != 0 || c.Capacity() != 0 {
		t.Fatal("nil cache stats nonzero")
	}
	if New(0, 0, nil) != nil || New(-1, 0, nil) != nil {
		t.Fatal("New with capacity <= 0 must return nil (disabled)")
	}
}

func TestDuplicatePutKeepsFirst(t *testing.T) {
	c := New(1<<20, 1, nil)
	first := blk(64, 1)
	c.Put(7, 3, first)
	c.Put(7, 3, blk(64, 2))
	got, ok := c.Get(7, 3)
	if !ok || &got[0] != &first[0] {
		t.Fatal("duplicate Put displaced the published entry")
	}
	if c.Bytes() != 64 {
		t.Fatalf("duplicate Put double-charged: bytes=%d", c.Bytes())
	}
}

func TestCapacityEvictionCLOCK(t *testing.T) {
	// One shard, room for 4 × 256-byte blocks.
	c := New(1024, 1, nil)
	for i := 0; i < 4; i++ {
		c.Put(1, i, blk(256, byte(i)))
	}
	if c.Bytes() != 1024 || c.Evictions() != 0 {
		t.Fatalf("warm-up: bytes=%d evictions=%d", c.Bytes(), c.Evictions())
	}
	// Re-reference block 0 so CLOCK's second chance protects it.
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("warm block missing")
	}
	// Insert a fifth block: something must go, bytes stays <= capacity.
	c.Put(1, 4, blk(256, 4))
	if c.Bytes() > 1024 {
		t.Fatalf("bytes=%d exceeds capacity", c.Bytes())
	}
	if c.Evictions() == 0 {
		t.Fatal("no eviction at capacity")
	}
	if _, ok := c.Get(1, 4); !ok {
		t.Fatal("newly inserted block evicted immediately")
	}
}

func TestOversizedBlockNotCached(t *testing.T) {
	c := New(1<<17, 2, nil) // 64 KiB per shard
	c.Put(1, 0, blk(1<<17, 0))
	if c.Bytes() != 0 {
		t.Fatal("block larger than a shard budget was cached")
	}
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("oversized block hit")
	}
}

func TestInvalidateTable(t *testing.T) {
	c := New(1<<20, 4, nil)
	for i := 0; i < 16; i++ {
		c.Put(1, i, blk(128, 1))
		c.Put(2, i, blk(128, 2))
	}
	c.InvalidateTable(1)
	if c.Invalidations() != 1 {
		t.Fatalf("invalidations=%d", c.Invalidations())
	}
	for i := 0; i < 16; i++ {
		if _, ok := c.Get(1, i); ok {
			t.Fatalf("table 1 block %d survived invalidation", i)
		}
		if _, ok := c.Get(2, i); !ok {
			t.Fatalf("table 2 block %d collateral-purged", i)
		}
	}
	if c.Bytes() != 16*128 {
		t.Fatalf("bytes=%d want %d", c.Bytes(), 16*128)
	}
}

func TestPurgeDischargesEnclaveAccounting(t *testing.T) {
	rt := enclave.NewNativeRuntime()
	c := New(1<<20, 2, rt)
	for i := 0; i < 8; i++ {
		c.Put(5, i, blk(512, 0))
	}
	if got := rt.Stats().EnclaveBytes; got != 8*512 {
		t.Fatalf("enclave bytes after inserts = %d, want %d", got, 8*512)
	}
	c.InvalidateTable(5)
	if got := rt.Stats().EnclaveBytes; got != 0 {
		t.Fatalf("enclave bytes after invalidate = %d, want 0", got)
	}
	for i := 0; i < 8; i++ {
		c.Put(6, i, blk(512, 0))
	}
	c.Purge()
	if got := rt.Stats().EnclaveBytes; got != 0 {
		t.Fatalf("enclave bytes after purge = %d, want 0", got)
	}
	if c.Bytes() != 0 {
		t.Fatalf("bytes after purge = %d", c.Bytes())
	}
}

func TestEPCOverflowCounted(t *testing.T) {
	// A tiny EPC budget: the second insert pushes past it.
	rt := enclave.NewRuntime(enclave.RuntimeConfig{
		Mode:      enclave.ModeScone,
		EPCBudget: 4096,
	})
	c := New(1<<20, 1, rt)
	c.Put(1, 0, blk(4096, 0))
	if c.EPCOverflows() != 0 {
		t.Fatal("overflow counted while under budget")
	}
	c.Put(1, 1, blk(4096, 0))
	if c.EPCOverflows() == 0 {
		t.Fatal("insert past EPC budget not counted")
	}
	if rt.Stats().PageFaults == 0 {
		t.Fatal("paging penalty model not triggered past budget")
	}
}

func TestConservationUnderConcurrency(t *testing.T) {
	rt := enclave.NewNativeRuntime()
	c := New(256<<10, 8, rt)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				table := uint64(g%4 + 1)
				block := i % 64
				if _, ok := c.Get(table, block); !ok {
					c.Put(table, block, blk(1024, byte(i)))
				}
				if i%500 == 499 {
					c.InvalidateTable(table)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Hits()+c.Misses() != c.Lookups() {
		t.Fatalf("conservation violated: hits=%d misses=%d lookups=%d",
			c.Hits(), c.Misses(), c.Lookups())
	}
	if b := c.Bytes(); b < 0 || b > c.Capacity() {
		t.Fatalf("bytes=%d outside [0, %d]", b, c.Capacity())
	}
	c.Purge()
	if c.Bytes() != 0 || rt.Stats().EnclaveBytes != 0 {
		t.Fatalf("purge left bytes=%d enclave=%d", c.Bytes(), rt.Stats().EnclaveBytes)
	}
}

func TestShardCountAdaptsToTinyCapacity(t *testing.T) {
	c := New(minShardBytes, 8, nil) // would be 8 KiB shards: collapses
	if len(c.shards) != 1 {
		t.Fatalf("shards=%d want 1", len(c.shards))
	}
	// Still functional.
	c.Put(1, 0, blk(4096, 0))
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("tiny cache broken")
	}
}

func TestManyTablesSpreadShards(t *testing.T) {
	c := New(1<<20, 8, nil)
	seen := map[*shard]bool{}
	for i := 0; i < 256; i++ {
		seen[c.shardFor(ckey{table: uint64(i), block: uint32(i)})] = true
	}
	if len(seen) < len(c.shards) {
		t.Fatalf("hash spread only %d/%d shards", len(seen), len(c.shards))
	}
}

func BenchmarkHit(b *testing.B) {
	c := New(32<<20, 0, nil)
	c.Put(1, 0, blk(4096, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(1, 0); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := New(1<<20, 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(uint64(i%8), i, blk(4096, byte(i)))
	}
	_ = fmt.Sprintf("%d", c.Evictions())
}
