package lsm

import (
	"encoding/binary"
	"hash/fnv"
)

// Bloom filters over user keys, one per SSTable (RocksDB-style, ~10 bits
// per key, double hashing). The filter is stored inside the table's
// index block, so it is covered by the index hash recorded in the
// MANIFEST: a tampered filter fails verification like any other index
// byte. Negative lookups skip the table without touching data blocks —
// the dominant read-amplification saver for L0 and point gets.

// bloomBitsPerKey sizes the filter (~1% false positives with 7 probes).
const (
	bloomBitsPerKey = 10
	bloomProbes     = 7
)

// bloomHash derives the two base hashes for double hashing.
func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// Second hash: mix with a different seed.
	h2 := h1>>33 ^ h1*0x9E3779B97F4A7C15
	if h2 == 0 {
		h2 = 1
	}
	return h1, h2
}

// bloomBuilder accumulates key hashes and renders the bit array.
type bloomBuilder struct {
	hashes [][2]uint64
}

// add records one user key.
func (b *bloomBuilder) add(key []byte) {
	h1, h2 := bloomHash(key)
	b.hashes = append(b.hashes, [2]uint64{h1, h2})
}

// build renders the filter: nbits(4) ∥ bits.
func (b *bloomBuilder) build() []byte {
	n := len(b.hashes)
	if n == 0 {
		return binary.LittleEndian.AppendUint32(nil, 0)
	}
	nbits := uint32(n * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	out := binary.LittleEndian.AppendUint32(nil, nbits)
	bits := make([]byte, (nbits+7)/8)
	for _, hs := range b.hashes {
		h := hs[0]
		for p := 0; p < bloomProbes; p++ {
			bit := h % uint64(nbits)
			bits[bit/8] |= 1 << (bit % 8)
			h += hs[1]
		}
	}
	return append(out, bits...)
}

// bloomMayContain tests membership; a false result is definitive.
func bloomMayContain(filter, key []byte) bool {
	if len(filter) < 4 {
		return true // malformed or absent: fall through to the table
	}
	nbits := binary.LittleEndian.Uint32(filter)
	if nbits == 0 {
		return false // empty table
	}
	bits := filter[4:]
	if uint32(len(bits)*8) < nbits {
		return true
	}
	h1, h2 := bloomHash(key)
	h := h1
	for p := 0; p < bloomProbes; p++ {
		bit := h % uint64(nbits)
		if bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
		h += h2
	}
	return true
}
