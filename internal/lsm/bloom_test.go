package lsm

import (
	"fmt"
	"testing"

	"treaty/internal/enclave"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

func TestBloomBasics(t *testing.T) {
	var b bloomBuilder
	for i := 0; i < 1000; i++ {
		b.add([]byte(fmt.Sprintf("present-%d", i)))
	}
	filter := b.build()
	for i := 0; i < 1000; i++ {
		if !bloomMayContain(filter, []byte(fmt.Sprintf("present-%d", i))) {
			t.Fatalf("false negative for present-%d", i)
		}
	}
	// False-positive rate must be low (~1% at 10 bits/key).
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if bloomMayContain(filter, []byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Errorf("false-positive rate %.3f, want < 0.03", rate)
	}
}

func TestBloomEmptyAndMalformed(t *testing.T) {
	var b bloomBuilder
	filter := b.build()
	if bloomMayContain(filter, []byte("anything")) {
		t.Error("empty table's filter must reject everything")
	}
	if !bloomMayContain(nil, []byte("k")) {
		t.Error("absent filter must fall through to the table")
	}
	if !bloomMayContain([]byte{1, 2}, []byte("k")) {
		t.Error("malformed filter must fall through")
	}
}

func TestSSTBloomSkipsAbsentKeys(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	rt := enclave.NewNativeRuntime()
	w, err := newSSTWriter(vfs.Default, dir, 1, seal.LevelEncrypted, key, rt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := w.add(makeIKey([]byte(fmt.Sprintf("key-%06d", i)), uint64(i+1), KindSet), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := openSST(vfs.Default, dir, 1, seal.LevelEncrypted, key, rt, meta.footerHash)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if r.filter == nil {
		t.Fatal("reader did not load the bloom filter")
	}
	// Present keys found.
	if _, _, _, ok, err := r.get([]byte("key-000123"), MaxSeq); err != nil || !ok {
		t.Fatalf("present key: %v %v", ok, err)
	}
	// Absent lookups: the overwhelming majority must not touch blocks.
	before := rt.Stats().AsyncSyscalls
	misses := 0
	for i := 0; i < 200; i++ {
		_, _, _, ok, err := r.get([]byte(fmt.Sprintf("nope-%06d", i)), MaxSeq)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			misses++
		}
	}
	after := rt.Stats().AsyncSyscalls
	if misses != 200 {
		t.Fatalf("%d phantom hits", 200-misses)
	}
	// Each block read costs a syscall; bloom should have filtered almost
	// all 200 lookups (allow a few false positives).
	if reads := after - before; reads > 20 {
		t.Errorf("%d block reads for 200 absent keys; bloom not effective", reads)
	}
}
