package lsm

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treaty/internal/lsm/blockcache"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// countingFile counts ReadAt calls so tests can pin exactly how many
// block reads a lookup performs.
type countingFile struct {
	vfs.File
	reads atomic.Int64
}

func (c *countingFile) ReadAt(p []byte, off int64) (int, error) {
	c.reads.Add(1)
	return c.File.ReadAt(p, off)
}

// TestGetMissingKeySingleBlockRead pins the sparse-boundary fix: a
// lookup — present, absent-in-range, or at a block boundary — reads at
// most ONE data block. handles[i].lastKey is the exact final record of
// block i, so after sort.Search lands on block i the answer is always
// within it; the old code re-read block i+1 whenever the scan ran off
// the end of block i.
func TestGetMissingKeySingleBlockRead(t *testing.T) {
	for _, level := range levelsUnderTest() {
		t.Run(level.String(), func(t *testing.T) {
			dir := t.TempDir()
			key := testKey(t)
			meta := buildTestSST(t, dir, level, key, 2000) // multiple blocks
			r, err := openSST(vfs.Default, dir, 1, level, key, nil, meta.footerHash)
			if err != nil {
				t.Fatal(err)
			}
			defer r.close()
			if len(r.handles) < 3 {
				t.Fatalf("need a multi-block table, got %d blocks", len(r.handles))
			}
			// Drop the bloom filter: absent keys must reach the block
			// path for this test to pin its read count (the filter would
			// answer most of them with zero I/O).
			r.filter = nil
			cf := &countingFile{File: r.f}
			r.f = cf

			probe := func(name, userKey string, wantFound bool) {
				t.Helper()
				cf.reads.Store(0)
				_, _, _, ok, err := r.get([]byte(userKey), MaxSeq)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if ok != wantFound {
					t.Fatalf("%s: found=%v, want %v", name, ok, wantFound)
				}
				if got := cf.reads.Load(); got != 1 {
					t.Fatalf("%s: %d block reads, want exactly 1", name, got)
				}
			}
			probe("present key", "key-000700", true)
			// A key that sorts between two present keys: absent, but the
			// bloom filter cannot prove it (the lookup reaches a block).
			probe("absent in range", "key-000700a", false)
			// The exact last key of a block: the sparse-boundary case the
			// old code paid a second read for.
			lastUK, _, _ := parseIKey(r.handles[0].lastKey)
			probe("block-boundary key", string(lastUK), true)
			probe("just past a block boundary", string(lastUK)+"0", false)
		})
	}
}

// TestGetSurfacesBlockDecodeError pins the second half of the fix: a
// record that fails to decode inside a checksum-clean block must
// surface ErrSSTCorrupt. The old code recorded the error in the block
// iterator, ignored it, and silently fell through to the next block —
// swallowing the corruption.
func TestGetSurfacesBlockDecodeError(t *testing.T) {
	// Garbage whose first record claims an absurd key length: the CRC is
	// computed over the garbage itself (so verification passes — this
	// models corruption the checksum cannot see, e.g. a buggy writer),
	// and decoding fails immediately.
	garbage := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0x01, 0x02, 0x03}
	fs := vfs.NewMemFS()
	if err := fs.MkdirAll("/t", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("/t/blob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/t/blob")
	if err != nil {
		t.Fatal(err)
	}
	r := &sstReader{
		f:     f,
		level: seal.LevelNone,
		handles: []blockHandle{{
			offset:  0,
			length:  uint64(len(garbage)),
			lastKey: makeIKey([]byte("zzz"), 1, KindSet),
			crc:     crc32.ChecksumIEEE(garbage),
		}},
	}
	_, _, _, ok, gerr := r.get([]byte("aaa"), MaxSeq)
	if ok {
		t.Fatal("found a record in garbage")
	}
	if !errors.Is(gerr, ErrSSTCorrupt) {
		t.Fatalf("decode failure inside a verified block: err=%v, want ErrSSTCorrupt", gerr)
	}
}

// TestCacheHitSkipsIO: a warm lookup is served from the block cache
// with zero storage reads and the correct value.
func TestCacheHitSkipsIO(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	meta := buildTestSST(t, dir, seal.LevelEncrypted, key, 1000)
	r, err := openSST(vfs.Default, dir, 1, seal.LevelEncrypted, key, nil, meta.footerHash)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	r.cache = blockcache.New(1<<20, 1, nil)
	cf := &countingFile{File: r.f}
	r.f = cf

	v1, _, _, ok, err := r.get([]byte("key-000123"), MaxSeq)
	if err != nil || !ok {
		t.Fatalf("cold get: ok=%v err=%v", ok, err)
	}
	cold := cf.reads.Load()
	if cold == 0 {
		t.Fatal("cold get did no I/O")
	}
	v2, _, _, ok, err := r.get([]byte("key-000123"), MaxSeq)
	if err != nil || !ok {
		t.Fatalf("warm get: ok=%v err=%v", ok, err)
	}
	if got := cf.reads.Load(); got != cold {
		t.Fatalf("warm get did %d extra reads, want 0", got-cold)
	}
	if string(v1) != string(v2) || string(v2) != "value-000123" {
		t.Fatalf("warm get value %q, want %q", v2, "value-000123")
	}
	if r.cache.Hits() == 0 {
		t.Fatal("no cache hit recorded")
	}
	// Scans take hits but do not fill: a full iteration must not grow
	// the cache beyond what point lookups inserted.
	before := r.cache.Bytes()
	it := r.newIterator()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("scan saw %d records", n)
	}
	if r.cache.Bytes() != before {
		t.Fatalf("iterator filled the cache: %d -> %d bytes", before, r.cache.Bytes())
	}
}

// TestCacheDBReadHeavyHitRate: at the DB level a read-heavy workload
// over flushed tables must produce a non-vacuous hit rate, and the
// conservation law hits + misses == lookups must hold.
func TestCacheDBReadHeavyHitRate(t *testing.T) {
	fs := vfs.NewMemFS()
	reg := obs.NewRegistry()
	db, err := Open(Options{
		Dir: "/db", FS: fs, SyncWAL: false, Metrics: reg,
		Level: seal.LevelEncrypted, Key: faultTestKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b := NewBatch()
	for i := 0; i < 512; i++ {
		b.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(strings.Repeat("v", 64)))
	}
	if _, _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 512; i++ {
			k := []byte(fmt.Sprintf("key-%04d", i))
			v, _, found, err := db.Get(k, db.LatestSeq())
			if err != nil || !found {
				t.Fatalf("get %s: found=%v err=%v", k, found, err)
			}
			if len(v) != 64 {
				t.Fatalf("get %s: %d bytes", k, len(v))
			}
		}
	}
	s := reg.Snapshot()
	lookups, hits, misses := s.Counter("lsm.cache.lookups"), s.Counter("lsm.cache.hits"), s.Counter("lsm.cache.misses")
	if hits == 0 {
		t.Fatal("read-heavy workload produced zero cache hits")
	}
	if hits+misses != lookups {
		t.Fatalf("conservation violated: %d + %d != %d", hits, misses, lookups)
	}
	if bytes, capacity := s.Gauge("lsm.cache.bytes"), s.Gauge("lsm.cache.capacity_bytes"); bytes <= 0 || bytes > capacity {
		t.Fatalf("cache bytes %d outside (0, %d]", bytes, capacity)
	}
}

// TestCacheDisabled: negative BlockCacheBytes turns caching off — no
// cache metrics movement, reads still correct.
func TestCacheDisabled(t *testing.T) {
	fs := vfs.NewMemFS()
	reg := obs.NewRegistry()
	db, err := Open(Options{Dir: "/db", FS: fs, SyncWAL: false, Metrics: reg, BlockCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b := NewBatch()
	b.Put([]byte("k"), []byte("v"))
	if _, _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, found, err := db.Get([]byte("k"), db.LatestSeq()); err != nil || !found {
			t.Fatalf("get: found=%v err=%v", found, err)
		}
	}
	if got := reg.Snapshot().Counter("lsm.cache.lookups"); got != 0 {
		t.Fatalf("disabled cache recorded %d lookups", got)
	}
}

// TestCacheConcurrentGetCompactionInvalidation is the -race hammer:
// concurrent point reads against a write stream sized to force constant
// flushes and compactions (and therefore constant InvalidateTable calls
// racing Get/Put on the cache). No faults are injected, so every error
// other than not-found is a real bug.
func TestCacheConcurrentGetCompactionInvalidation(t *testing.T) {
	fs := vfs.NewMemFS()
	reg := obs.NewRegistry()
	db, err := Open(Options{
		Dir: "/db", FS: fs, SyncWAL: false, Metrics: reg,
		Level: seal.LevelIntegrity, Key: faultTestKey(),
		MemTableSize: 16 << 10, L0Trigger: 2, BaseLevelBytes: 64 << 10,
		BlockCacheBytes: 128 << 10, // small: eviction + invalidation churn
	})
	if err != nil {
		t.Fatal(err)
	}
	writes, reads := 240, 1500
	if testing.Short() {
		writes, reads = 80, 500
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < writes; j++ {
				b := NewBatch()
				for k := 0; k < 4; k++ {
					id := (j*4 + k) % 256
					b.Put([]byte(fmt.Sprintf("key-%03d", id)),
						[]byte(strings.Repeat(string(rune('a'+w)), 256)))
				}
				if _, _, err := db.Apply(b); err != nil {
					panic(fmt.Sprintf("writer %d: %v", w, err))
				}
			}
		}(w)
	}
	var readErr atomic.Value
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for j := 0; j < reads; j++ {
				k := []byte(fmt.Sprintf("key-%03d", rng.Intn(256)))
				v, _, found, err := db.Get(k, db.LatestSeq())
				if err != nil {
					readErr.Store(fmt.Errorf("get %s: %w", k, err))
					return
				}
				if found && len(v) != 256 {
					readErr.Store(fmt.Errorf("get %s: truncated value (%d bytes)", k, len(v)))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err, _ := readErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := db.BGErr(); err != nil {
		t.Fatalf("background error: %v", err)
	}
	// Compaction is asynchronous: give the background worker a window to
	// drain the L0 backlog the writers produced.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); reg.Snapshot().Counter("lsm.compactions") == 0; {
		if time.Now().After(deadline) {
			t.Fatal("hammer never compacted — workload not exercising invalidation")
		}
		db.scheduleBG()
		time.Sleep(time.Millisecond)
	}
	s := reg.Snapshot()
	if hits, misses, lookups := s.Counter("lsm.cache.hits"), s.Counter("lsm.cache.misses"), s.Counter("lsm.cache.lookups"); hits+misses != lookups {
		t.Fatalf("conservation violated: %d + %d != %d", hits, misses, lookups)
	}
	if b, c := s.Gauge("lsm.cache.bytes"), s.Gauge("lsm.cache.capacity_bytes"); b < 0 || b > c {
		t.Fatalf("cache bytes %d outside [0, %d]", b, c)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauge("lsm.cache.bytes"); got != 0 {
		t.Fatalf("close left %d cached bytes", got)
	}
}
