package lsm

import (
	"bytes"
)

// Compaction policy: leveled, RocksDB-style (§II-A). L0 files may overlap
// (each is one flushed memtable); when their count reaches L0Trigger they
// are merged with every overlapping L1 file into fresh L1 tables. Levels
// ≥ 1 are sorted and non-overlapping; when level n exceeds its size limit
// (BaseLevelBytes × 10^(n-1)) one file is merged into level n+1. If that
// pushes n+1 over its own limit, the next background pass cascades
// further.

// compaction describes one unit of compaction work.
type compaction struct {
	level   int // source level
	inputs  []fileMeta
	overlap []fileMeta // files in level+1 overlapping the inputs
}

// maxBytesForLevel returns the size limit of a level (level >= 1).
func (db *DB) maxBytesForLevel(level int) int64 {
	size := db.opt.BaseLevelBytes
	for l := 1; l < level; l++ {
		size *= 10
	}
	return size
}

// pickCompactionLocked selects compaction work, or nil if none is needed.
// Called with db.mu held.
func (db *DB) pickCompactionLocked() *compaction {
	v := db.current
	// L0 by file count.
	if len(v.files[0]) >= db.opt.L0Trigger {
		c := &compaction{level: 0, inputs: append([]fileMeta(nil), v.files[0]...)}
		smallest, largest := keyRange(c.inputs)
		c.overlap = overlapping(v.files[1], smallest, largest)
		return c
	}
	// Deeper levels by size.
	for lv := 1; lv < numLevels-1; lv++ {
		var total int64
		for _, f := range v.files[lv] {
			total += int64(f.size)
		}
		if total <= db.maxBytesForLevel(lv) {
			continue
		}
		// Compact the first file (round-robin would be nicer; first is
		// deterministic and sufficient here).
		c := &compaction{level: lv, inputs: []fileMeta{v.files[lv][0]}}
		smallest, largest := keyRange(c.inputs)
		c.overlap = overlapping(v.files[lv+1], smallest, largest)
		return c
	}
	return nil
}

// keyRange returns the smallest and largest internal keys across files.
func keyRange(files []fileMeta) (smallest, largest []byte) {
	for _, f := range files {
		if smallest == nil || compareIKeys(f.smallest, smallest) < 0 {
			smallest = f.smallest
		}
		if largest == nil || compareIKeys(f.largest, largest) > 0 {
			largest = f.largest
		}
	}
	return
}

// overlapping returns the files in a sorted, non-overlapping level whose
// ranges intersect [smallest, largest] (by user key).
func overlapping(files []fileMeta, smallest, largest []byte) []fileMeta {
	if smallest == nil {
		return nil
	}
	var out []fileMeta
	us, ul := userKeyOf(smallest), userKeyOf(largest)
	for _, f := range files {
		if bytes.Compare(userKeyOf(f.largest), us) < 0 || bytes.Compare(userKeyOf(f.smallest), ul) > 0 {
			continue
		}
		out = append(out, f)
	}
	return out
}

// targetFileSize is the output table size for compactions.
const targetFileSize = 4 << 20

// runCompaction merges the inputs and overlap into new tables at
// level+1, drops shadowed versions and bottom-level tombstones, logs the
// manifest edit, and schedules the inputs for (stabilization-gated)
// deletion.
func (db *DB) runCompaction(c *compaction) error {
	outLevel := c.level + 1

	// Build the merge source.
	var iters []internalIterator
	all := append(append([]fileMeta(nil), c.inputs...), c.overlap...)
	for _, f := range all {
		r, err := db.reader(f)
		if err != nil {
			return err
		}
		iters = append(iters, r.newIterator())
	}
	merged := newMergeIterator(iters)
	merged.SeekToFirst()

	// isBottom: no data below the output level — tombstones can drop.
	db.mu.Lock()
	isBottom := true
	for lv := outLevel + 1; lv < numLevels; lv++ {
		if len(db.current.files[lv]) > 0 {
			isBottom = false
			break
		}
	}
	db.mu.Unlock()

	var edit versionEdit
	var w *sstWriter
	var lastUser []byte
	finishOutput := func() error {
		if w == nil || w.empty() {
			if w != nil {
				w.abort()
				w = nil
			}
			return nil
		}
		meta, err := w.finish()
		if err != nil {
			return err
		}
		meta.level = outLevel
		edit.addFiles = append(edit.addFiles, meta)
		w = nil
		return nil
	}

	for ; merged.Valid(); merged.Next() {
		ikey := merged.Key()
		uk, _, kind := parseIKey(ikey)
		// Keep only the newest version of each user key. (Snapshot
		// reads against historical sequences are served by the
		// memtables; compaction output retains the latest committed
		// state, matching the engine's use by the transaction layer.)
		if lastUser != nil && bytes.Equal(uk, lastUser) {
			continue
		}
		lastUser = append(lastUser[:0], uk...)
		if kind == KindDelete && isBottom {
			continue // tombstone with nothing underneath: drop
		}
		if w == nil {
			db.mu.Lock()
			num := db.allocFileLocked()
			db.mu.Unlock()
			var err error
			w, err = newSSTWriter(db.fs, db.opt.Dir, num, db.opt.Level, db.opt.Key, db.rt)
			if err != nil {
				return err
			}
		}
		v, err := merged.Value()
		if err != nil {
			if w != nil {
				w.abort()
			}
			return err
		}
		if err := w.add(ikey, v); err != nil {
			w.abort()
			return err
		}
		if w.offset >= targetFileSize {
			if err := finishOutput(); err != nil {
				return err
			}
		}
	}
	if err := finishOutput(); err != nil {
		return err
	}

	for _, f := range c.inputs {
		edit.deleteFiles = append(edit.deleteFiles, struct {
			level  int
			number uint64
		}{c.level, f.number})
	}
	for _, f := range c.overlap {
		edit.deleteFiles = append(edit.deleteFiles, struct {
			level  int
			number uint64
		}{outLevel, f.number})
	}

	db.mu.Lock()
	edit.nextFile = db.nextFile
	ctr, err := db.manifest.append(&edit)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	nv := db.current.clone()
	nv.apply(&edit)
	db.current = nv
	for _, f := range all {
		// Drop the reader from the cache but do not close it: a
		// concurrent Get that captured the previous version may still be
		// reading. The descriptor is reclaimed by the runtime finalizer.
		delete(db.readers, f.number)
		db.obsolete = append(db.obsolete, obsoleteFile{
			path:        sstFileName(db.opt.Dir, f.number),
			manifestCtr: ctr,
		})
	}
	db.compactions.Add(1)
	db.mu.Unlock()
	// Invalidate the replaced tables' cached blocks now that the new
	// version is installed. A concurrent Get holding the previous
	// version may re-fill a block of a deleted table after this purge;
	// that is bounded waste, not staleness — file numbers are never
	// reused, so the entry can only hold that table's true contents,
	// and CLOCK evicts it once the old version's readers drain.
	if db.bcache != nil {
		for _, f := range all {
			db.bcache.InvalidateTable(f.number)
		}
	}
	return nil
}
