package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/lsm/blockcache"
	"treaty/internal/mempool"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// CounterFactory supplies the per-log-file trusted counters (§VI: "For
// each log file, TREATY initializes a unique trusted counter"). name is
// the log file's base name.
type CounterFactory func(name string) TrustedCounter

// Options configures a DB.
type Options struct {
	// Dir is the database directory (created if missing).
	Dir string
	// FS is the filesystem the engine writes through; nil uses the real
	// OS. Tests substitute fault-injecting or in-memory crash-simulating
	// filesystems (package vfs).
	FS vfs.FS
	// Level selects the security level (LevelNone = native RocksDB-like,
	// LevelIntegrity = Treaty w/o Enc, LevelEncrypted = Treaty w/ Enc).
	Level seal.SecurityLevel
	// Key is the storage master key (provisioned by the CAS); required
	// at LevelEncrypted.
	Key seal.Key
	// Runtime charges TEE costs; nil means native.
	Runtime *enclave.Runtime
	// Counters supplies trusted counters per log file; nil uses
	// immediate (no rollback protection — native baselines).
	Counters CounterFactory
	// MemTableSize triggers a flush when exceeded (default 4 MiB).
	MemTableSize int64
	// L0Trigger is the number of L0 files that triggers compaction
	// (default 4).
	L0Trigger int
	// BaseLevelBytes is the L1 size limit; each level below is 10×
	// (default 16 MiB).
	BaseLevelBytes int64
	// SyncWAL fsyncs the WAL on every commit group (default true; can
	// be disabled for benchmarks that isolate CPU costs).
	SyncWAL bool
	// DisableGroupCommit makes every commit write and sync alone (the
	// group-commit ablation).
	DisableGroupCommit bool
	// MaxGroupCommit bounds batches per commit group (default 64).
	MaxGroupCommit int
	// Metrics, when non-nil, exports storage metrics under "lsm.*":
	// WAL appends/syncs and sync latency, commit group sizes, memtable
	// flushes, compactions, bloom filter hit rate, and the WAL
	// appended/stable LSN gauges the soak's rollback-protection
	// invariant reads.
	Metrics *obs.Registry
	// BlockCacheBytes sizes the enclave-resident cache of verified,
	// decrypted SSTable blocks. 0 selects DefaultBlockCacheBytes;
	// negative disables caching. The cache's footprint is charged to
	// Runtime's EPC accounting, so sizing it past the EPC budget pays
	// paging penalties.
	BlockCacheBytes int64
	// Pool, when non-nil, recycles the read path's block staging
	// buffers (host region — they hold only ciphertext / unverified
	// media bytes).
	Pool *mempool.Pool
	// Ship, when non-nil, is called once per commit group after the
	// group's WAL write has been fsynced and before its counters
	// stabilize, with the group's staged records. A replication
	// shipper uses this to make acked commits durable on a backup
	// before the trusted counter pins them; the entries alias the
	// WAL staging buffer and are valid only during the call. Ship runs
	// on the committer goroutine with the DB lock held: it must not
	// call back into this DB.
	Ship func([]ReplEntry)
}

// DefaultBlockCacheBytes is the block cache size when Options leaves it
// zero: large enough for the hot set of the paper's YCSB workloads,
// comfortably inside the 94 MiB EPC budget next to the memtables.
const DefaultBlockCacheBytes = 32 << 20

// withDefaults fills in zero fields.
func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = vfs.Default
	}
	if o.MemTableSize == 0 {
		o.MemTableSize = 4 << 20
	}
	if o.L0Trigger == 0 {
		o.L0Trigger = 4
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 16 << 20
	}
	if o.MaxGroupCommit == 0 {
		o.MaxGroupCommit = 64
	}
	if o.Counters == nil {
		counters := make(map[string]TrustedCounter)
		var mu sync.Mutex
		o.Counters = func(name string) TrustedCounter {
			mu.Lock()
			defer mu.Unlock()
			if c, ok := counters[name]; ok {
				return c
			}
			c := NewImmediateCounter()
			counters[name] = c
			return c
		}
	}
	return o
}

// ErrDBClosed indicates use of a closed DB.
var ErrDBClosed = errors.New("lsm: db closed")

// StableToken identifies a log position whose rollback protection can be
// awaited.
type StableToken struct {
	ctr   TrustedCounter
	value uint64
}

// Wait blocks until the position is rollback-protected.
func (t StableToken) Wait() error {
	if t.ctr == nil {
		return nil
	}
	return t.ctr.WaitStable(t.value)
}

// failableCounter is implemented by trusted counters that can fail
// permanently (the distributed service after exhausting retries).
type failableCounter interface {
	Failed() error
}

// Ready reports (without blocking) whether waiting is over: the position
// is rollback-protected OR the counter service failed permanently (Wait
// then surfaces the error). Fibers poll this and yield instead of
// blocking.
func (t StableToken) Ready() bool {
	if t.ctr == nil {
		return true
	}
	if f, ok := t.ctr.(failableCounter); ok && f.Failed() != nil {
		return true
	}
	return t.ctr.StableValue() >= t.value
}

// Value returns the log position (trusted counter value) the token waits
// on. Tests use it to check write-path ordering invariants (an acked
// position must never exceed the log's synced prefix).
func (t StableToken) Value() uint64 { return t.value }

// NewStableToken builds a token for an externally managed log (the 2PC
// layer's Clog binds its entries to its own trusted counter).
func NewStableToken(ctr TrustedCounter, value uint64) StableToken {
	return StableToken{ctr: ctr, value: value}
}

// TxID identifies a distributed transaction (coordinator node id ∥ tx
// sequence) in prepare/decision records.
type TxID [16]byte

// PreparedTx is a transaction found prepared but undecided during
// recovery; the 2PC layer resolves it with its coordinator (§VI).
type PreparedTx struct {
	// ID is the global transaction id.
	ID TxID
	// Batch is the prepared write set.
	Batch *Batch
}

// DB is the Treaty storage engine instance for one node.
type DB struct {
	opt Options
	rt  *enclave.Runtime
	fs  vfs.FS

	mu       sync.Mutex
	mem      *memTable
	imm      []*memTable // oldest first
	current  *version
	manifest *manifest
	wal      *wal
	walCtr   TrustedCounter
	readers  map[uint64]*sstReader
	// quarantined records tables whose reads failed integrity checks;
	// further reads surface the recorded ErrSSTCorrupt instead of
	// retrying the damaged file.
	quarantined map[uint64]error
	nextFile    uint64

	// bcache caches verified+decrypted block plaintext across the DB's
	// readers (nil = disabled; all its methods are nil-safe).
	bcache *blockcache.Cache
	lastSeq  atomic.Uint64
	closed   atomic.Bool
	bgErr    error

	// commit pipeline
	commitCh chan *commitReq
	commitWG sync.WaitGroup
	closedMu sync.RWMutex
	// commitErr, once set, fails every later commit: the WAL hit a
	// write/sync failure (its unsynced tail may be gone — fsyncgate) or
	// its trusted counter can no longer persist. Fail-stop is the only
	// acknowledgment-safe response; a restart re-runs recovery.
	commitErr error

	// background flush/compaction
	bgWork   chan struct{}
	bgWG     sync.WaitGroup
	bgQuit   chan struct{}
	obsolete []obsoleteFile

	// recovered 2PC state
	prepared []PreparedTx

	memCipher *seal.Cipher

	// stats
	flushes, compactions atomic.Uint64
	// corruptions counts detected storage corruption events: quarantined
	// tables and crash-torn log tails dropped at recovery. The chaos
	// soak compares it against the injected-fault counters to assert
	// detection is not silent.
	corruptions atomic.Uint64
	// quarantines counts quarantined tables; cachePurges counts the
	// cache purges performed for them. With caching enabled the two
	// must agree at quiescence (a quarantined table's cached blocks are
	// purged before the corruption error propagates) — the chaos soak
	// asserts it as a conservation law.
	quarantines atomic.Uint64
	cachePurges atomic.Uint64

	// metrics (all nil-safe no-ops when Options.Metrics is nil)
	walAppends     *obs.Counter
	walSyncs       *obs.Counter
	walSyncLatency *obs.Histogram
	groupSizes     *obs.Histogram
	bloomChecks    *obs.Counter
	bloomNegatives *obs.Counter
}

// obsoleteFile is a file awaiting deletion, gated on a manifest entry's
// stabilization (§VI: old SSTables and logs are deleted only once the
// superseding entries are stabilized).
type obsoleteFile struct {
	path        string
	manifestCtr uint64
}

type commitRes struct {
	token StableToken
	seq   uint64
	err   error
}

type commitReq struct {
	kind     uint8
	batch    *Batch
	txID     TxID
	decision bool
	done     chan commitRes
}

// Open opens (or creates) a database.
func Open(opt Options) (*DB, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: creating dir: %w", err)
	}
	db := &DB{
		opt:         opt,
		rt:          opt.Runtime,
		fs:          opt.FS,
		current:     &version{},
		readers:     make(map[uint64]*sstReader),
		quarantined: make(map[uint64]error),
		commitCh:    make(chan *commitReq, 1024),
		bgWork:      make(chan struct{}, 1),
		bgQuit:      make(chan struct{}),
		nextFile:    1,
	}
	if opt.BlockCacheBytes >= 0 {
		size := opt.BlockCacheBytes
		if size == 0 {
			size = DefaultBlockCacheBytes
		}
		db.bcache = blockcache.New(size, 0, opt.Runtime)
	}
	if opt.Level == seal.LevelEncrypted {
		c, err := seal.NewCipher(seal.DeriveKey(opt.Key, "memtable"))
		if err != nil {
			return nil, err
		}
		db.memCipher = c
	}

	if _, err := db.fs.Stat(manifestName(opt.Dir)); errors.Is(err, os.ErrNotExist) {
		if err := db.create(); err != nil {
			return nil, err
		}
	} else {
		if err := db.recover(); err != nil {
			return nil, err
		}
	}

	db.registerMetrics()

	db.commitWG.Add(1)
	go db.committer()
	db.bgWG.Add(1)
	go db.background()
	return db, nil
}

// registerMetrics exports the storage metrics. The LSN gauges are
// evaluated at snapshot time under db.mu against the *current* WAL and
// its counter (per-file counters restart when the WAL rotates, so a
// captured pointer would go stale); they satisfy the rollback-protection
// invariant appended_lsn >= stable_lsn that the chaos soak asserts.
func (db *DB) registerMetrics() {
	m := db.opt.Metrics
	if m == nil {
		return
	}
	db.walAppends = m.Counter("lsm.wal.appends")
	db.walSyncs = m.Counter("lsm.wal.syncs")
	db.walSyncLatency = m.Histogram("lsm.wal.sync.latency_ns")
	db.groupSizes = m.Histogram("lsm.commit.group_size")
	db.bloomChecks = m.Counter("lsm.bloom.checks")
	db.bloomNegatives = m.Counter("lsm.bloom.negatives")
	m.CounterFunc("lsm.flushes", db.flushes.Load)
	m.CounterFunc("lsm.compactions", db.compactions.Load)
	m.CounterFunc("lsm.corruption.detected", db.corruptions.Load)
	m.CounterFunc("lsm.quarantine.tables", db.quarantines.Load)
	if db.bcache != nil {
		m.CounterFunc("lsm.cache.lookups", db.bcache.Lookups)
		m.CounterFunc("lsm.cache.hits", db.bcache.Hits)
		m.CounterFunc("lsm.cache.misses", db.bcache.Misses)
		m.CounterFunc("lsm.cache.evictions", db.bcache.Evictions)
		m.CounterFunc("lsm.cache.epc_overflow", db.bcache.EPCOverflows)
		m.CounterFunc("lsm.cache.invalidations", db.bcache.Invalidations)
		m.CounterFunc("lsm.cache.quarantine_purges", db.cachePurges.Load)
		m.GaugeFunc("lsm.cache.bytes", db.bcache.Bytes)
		m.GaugeFunc("lsm.cache.capacity_bytes", db.bcache.Capacity)
	}
	m.GaugeFunc("lsm.wal.appended_lsn", func() int64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.wal == nil {
			return 0
		}
		return int64(db.wal.lastCounter())
	})
	m.GaugeFunc("lsm.wal.stable_lsn", func() int64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.walCtr == nil {
			return 0
		}
		return int64(db.walCtr.StableValue())
	})
}

// create initializes a fresh database.
func (db *DB) create() error {
	m, err := createManifest(db.fs, db.opt.Dir, db.opt.Level, db.opt.Key, db.rt, db.opt.Counters("MANIFEST-000001"))
	if err != nil {
		return err
	}
	db.manifest = m
	walNum := db.allocFileLocked()
	if err := db.newWALLocked(walNum); err != nil {
		return err
	}
	if _, err := db.manifest.append(&versionEdit{logNumber: walNum, nextFile: db.nextFile}); err != nil {
		return err
	}
	return nil
}

// allocFileLocked hands out the next file number.
func (db *DB) allocFileLocked() uint64 {
	n := db.nextFile
	db.nextFile++
	return n
}

// newWALLocked rotates in a fresh WAL and memtable for log number num.
func (db *DB) newWALLocked(num uint64) error {
	ctr := db.opt.Counters(filepath.Base(walFileName(db.opt.Dir, num)))
	w, err := createWAL(db.fs, db.opt.Dir, num, db.opt.Level, db.opt.Key, db.rt, ctr)
	if err != nil {
		return err
	}
	db.wal = w
	db.walCtr = ctr
	db.mem = newMemTable(db.opt.Level, db.rt, db.memCipher, num)
	return nil
}

// LatestSeq returns the most recent committed sequence number; use as the
// read snapshot for "read latest".
func (db *DB) LatestSeq() uint64 { return db.lastSeq.Load() }

// Stats reports engine counters.
type DBStats struct {
	// Flushes counts memtable flushes.
	Flushes uint64
	// Compactions counts level compactions.
	Compactions uint64
	// MemEntries is the mutable memtable's entry count.
	MemEntries int64
	// LevelFiles is the file count per level.
	LevelFiles [numLevels]int
}

// Stats returns a snapshot of engine statistics.
func (db *DB) Stats() DBStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := DBStats{
		Flushes:     db.flushes.Load(),
		Compactions: db.compactions.Load(),
	}
	if db.mem != nil {
		s.MemEntries = db.mem.entries()
	}
	for i, fs := range db.current.files {
		s.LevelFiles[i] = len(fs)
	}
	return s
}

// Get returns the newest value of key visible at readSeq. found=false
// with nil error means "no such key"; integrity violations return errors.
func (db *DB) Get(key []byte, readSeq uint64) (value []byte, seq uint64, found bool, err error) {
	db.mu.Lock()
	mem := db.mem
	imms := append([]*memTable(nil), db.imm...)
	ver := db.current
	db.mu.Unlock()

	// Mutable memtable first.
	if v, s, k, ok, gerr := mem.get(key, readSeq); gerr != nil {
		return nil, 0, false, gerr
	} else if ok {
		if k == KindDelete {
			return nil, 0, false, nil
		}
		return v, s, true, nil
	}
	// Immutable memtables, newest first.
	for i := len(imms) - 1; i >= 0; i-- {
		if v, s, k, ok, gerr := imms[i].get(key, readSeq); gerr != nil {
			return nil, 0, false, gerr
		} else if ok {
			if k == KindDelete {
				return nil, 0, false, nil
			}
			return v, s, true, nil
		}
	}
	// L0: files may overlap; search newest (highest number) first.
	l0 := append([]fileMeta(nil), ver.files[0]...)
	sort.Slice(l0, func(i, j int) bool { return l0[i].number > l0[j].number })
	for _, f := range l0 {
		if bytes.Compare(key, userKeyOf(f.smallest)) < 0 || bytes.Compare(key, userKeyOf(f.largest)) > 0 {
			continue
		}
		if v, s, k, ok, gerr := db.sstGet(f, key, readSeq); gerr != nil {
			return nil, 0, false, gerr
		} else if ok {
			if k == KindDelete {
				return nil, 0, false, nil
			}
			return v, s, true, nil
		}
	}
	// L1+: at most one file per level can contain the key.
	for lv := 1; lv < numLevels; lv++ {
		files := ver.files[lv]
		i := sort.Search(len(files), func(i int) bool {
			return bytes.Compare(userKeyOf(files[i].largest), key) >= 0
		})
		if i >= len(files) || bytes.Compare(key, userKeyOf(files[i].smallest)) < 0 {
			continue
		}
		if v, s, k, ok, gerr := db.sstGet(files[i], key, readSeq); gerr != nil {
			return nil, 0, false, gerr
		} else if ok {
			if k == KindDelete {
				return nil, 0, false, nil
			}
			return v, s, true, nil
		}
	}
	return nil, 0, false, nil
}

// reader returns (opening if needed) the cached reader for f, verifying
// the table against the manifest-recorded hash. Tables that previously
// failed an integrity check are quarantined: the recorded corruption
// error is surfaced without touching the file again.
func (db *DB) reader(f fileMeta) (*sstReader, error) {
	db.mu.Lock()
	if qerr, bad := db.quarantined[f.number]; bad {
		db.mu.Unlock()
		return nil, qerr
	}
	r, ok := db.readers[f.number]
	db.mu.Unlock()
	if ok {
		return r, nil
	}
	want := f.footerHash
	if db.opt.Level == seal.LevelNone {
		want = [seal.HashSize]byte{}
	}
	r, err := openSST(db.fs, db.opt.Dir, f.number, db.opt.Level, db.opt.Key, db.rt, want)
	if err != nil {
		db.noteCorruption(f.number, err)
		return nil, err
	}
	r.bloomChecks, r.bloomNegatives = db.bloomChecks, db.bloomNegatives
	r.cache, r.pool = db.bcache, db.opt.Pool
	db.mu.Lock()
	if existing, ok := db.readers[f.number]; ok {
		db.mu.Unlock()
		r.close()
		return existing, nil
	}
	db.readers[f.number] = r
	db.mu.Unlock()
	return r, nil
}

// noteCorruption quarantines table num when err is an integrity failure.
// The cached reader is dropped without closing (concurrent readers may
// still hold it; the handle is reclaimed at Close).
func (db *DB) noteCorruption(num uint64, err error) {
	if !errors.Is(err, ErrSSTCorrupt) {
		return
	}
	db.mu.Lock()
	fresh := false
	if _, already := db.quarantined[num]; !already {
		db.quarantined[num] = err
		db.corruptions.Add(1)
		db.quarantines.Add(1)
		delete(db.readers, num)
		fresh = true
	}
	db.mu.Unlock()
	if fresh && db.bcache != nil {
		// Purge the quarantined table's cached blocks before the error
		// propagates to the caller: once anyone has seen ErrSSTCorrupt
		// for this table, no read may be served from a stale cached
		// block of it. (noteCorruption runs before sstGet/reader return
		// the error, which gives exactly that ordering.)
		db.bcache.InvalidateTable(num)
		db.cachePurges.Add(1)
	}
}

// sstGet reads one key from table f via its cached reader, quarantining
// the table on an integrity failure.
func (db *DB) sstGet(f fileMeta, key []byte, readSeq uint64) (value []byte, seq uint64, kind RecordKind, ok bool, err error) {
	r, rerr := db.reader(f)
	if rerr != nil {
		return nil, 0, 0, false, rerr
	}
	value, seq, kind, ok, err = r.get(key, readSeq)
	if err != nil {
		db.noteCorruption(f.number, err)
	}
	return value, seq, kind, ok, err
}

// submit hands a request to the committer, guarding against Close races.
func (db *DB) submit(req *commitReq) commitRes {
	db.closedMu.RLock()
	if db.closed.Load() {
		db.closedMu.RUnlock()
		return commitRes{err: ErrDBClosed}
	}
	db.commitCh <- req
	db.closedMu.RUnlock()
	return <-req.done
}

// Apply commits a batch: it is logged to the WAL (group-committed),
// applied to the memtable, and its stabilization started. The returned
// token lets callers wait for rollback protection; seq is the batch's
// first sequence number.
func (db *DB) Apply(b *Batch) (StableToken, uint64, error) {
	res := db.submit(&commitReq{kind: walKindBatch, batch: b, done: make(chan commitRes, 1)})
	return res.token, res.seq, res.err
}

// LogPrepare durably records a prepared distributed transaction's write
// set (2PC prepare phase, §V-A). The data is not applied to the memtable;
// it becomes visible only when the decision arrives and the batch is
// Apply'd.
func (db *DB) LogPrepare(id TxID, b *Batch) (StableToken, error) {
	res := db.submit(&commitReq{kind: walKindPrepare, batch: b, txID: id, done: make(chan commitRes, 1)})
	return res.token, res.err
}

// LogDecision durably records the outcome of a prepared transaction so
// recovery stops re-asking the coordinator about it.
func (db *DB) LogDecision(id TxID, commit bool) (StableToken, error) {
	res := db.submit(&commitReq{kind: walKindTxDecision, txID: id, decision: commit, done: make(chan commitRes, 1)})
	return res.token, res.err
}

// RecoveredPrepared returns transactions found prepared-but-undecided at
// recovery; the 2PC layer must resolve them with their coordinators.
func (db *DB) RecoveredPrepared() []PreparedTx {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]PreparedTx, len(db.prepared))
	copy(out, db.prepared)
	return out
}

// committer is the group-commit leader loop (§VII-B): it drains a group
// of pending commits, writes all their WAL entries, performs one sync for
// the whole group, applies the batches to the memtable, and completes the
// waiters.
func (db *DB) committer() {
	defer db.commitWG.Done()
	for req := range db.commitCh {
		group := []*commitReq{req}
		if !db.opt.DisableGroupCommit {
		drain:
			for len(group) < db.opt.MaxGroupCommit {
				select {
				case r2, ok := <-db.commitCh:
					if !ok {
						break drain
					}
					group = append(group, r2)
				default:
					break drain
				}
			}
		}
		db.commitGroup(group)
	}
}

// commitGroup executes one commit group. The commit path is fail-stop:
// once a WAL write/sync failure or counter persist failure is observed,
// every later commit fails fast with the sticky error — acknowledging
// past a durability hole would be a silent-loss bug.
func (db *DB) commitGroup(group []*commitReq) {
	db.groupSizes.Observe(int64(len(group)))
	db.mu.Lock()
	results := make([]commitRes, len(group))
	if db.commitErr != nil {
		err := db.commitErr
		db.mu.Unlock()
		for _, req := range group {
			req.done <- commitRes{err: err}
		}
		return
	}
	// Pooled batch encode: every entry of the group is framed into the
	// WAL's shared staging buffer, then written with a single syscall —
	// one enclave-boundary crossing for the whole group instead of one
	// per transaction.
	var maxCtr uint64
	var shipped []ReplEntry
	for i, req := range group {
		var payload []byte
		switch req.kind {
		case walKindBatch:
			payload = req.batch.encode()
		case walKindPrepare:
			payload = append(req.txID[:], req.batch.encode()...)
		case walKindTxDecision:
			payload = append(req.txID[:], boolByte(req.decision))
		}
		ctr, err := db.wal.stage(req.kind, payload)
		if err != nil {
			results[i] = commitRes{err: err}
			continue
		}
		db.walAppends.Inc()
		maxCtr = ctr
		if db.opt.Ship != nil {
			shipped = append(shipped, ReplEntry{Kind: req.kind, Counter: ctr, Payload: payload})
		}
		results[i] = commitRes{token: StableToken{ctr: db.walCtr, value: ctr}}
	}
	writeFailed := false
	if err := db.wal.flushGroup(); err != nil {
		// One write carried the whole group; its failure is the group's.
		writeFailed = true
		for i := range results {
			if results[i].err == nil {
				results[i] = commitRes{err: err}
			}
		}
	}
	syncFailed := writeFailed
	if db.opt.SyncWAL {
		syncStart := time.Now()
		err := db.wal.sync()
		db.walSyncs.Inc()
		db.walSyncLatency.ObserveSince(syncStart)
		if err != nil {
			syncFailed = true
			db.commitErr = db.wal.poisoned
			for i := range results {
				if results[i].err == nil {
					results[i] = commitRes{err: err}
				}
			}
		}
	}
	if db.wal.poisoned != nil && db.commitErr == nil {
		// An append failed mid-group: the codec chain has a hole, so no
		// later group may append either.
		db.commitErr = db.wal.poisoned
	}
	if maxCtr > 0 && !syncFailed {
		// Replicate before stabilizing: once the trusted counter pins
		// this group, a failover target must already hold it, so the
		// ship (and the backup's ack, or a durable degrade mark) sits
		// between the local fsync and the counter advance.
		if db.opt.Ship != nil && len(shipped) > 0 {
			db.opt.Ship(shipped)
		}
		// Never stabilize entries whose durability is unknown: after a
		// failed fsync the tail may be gone, and advancing the trusted
		// counter past it would turn the loss into a false rollback
		// alarm (or worse, acknowledged loss) at recovery.
		db.wal.stabilize(maxCtr)
		if fc, ok := db.walCtr.(failableCounter); ok {
			if cerr := fc.Failed(); cerr != nil {
				// The counter cannot persist: restart-time freshness
				// checks would discard these entries as an unstabilized
				// tail, so they must not be acknowledged.
				db.commitErr = cerr
				for i := range results {
					if results[i].err == nil {
						results[i] = commitRes{err: cerr}
					}
				}
			}
		}
	}
	if db.commitErr != nil {
		err := db.commitErr
		db.mu.Unlock()
		for i, req := range group {
			if results[i].err == nil {
				results[i] = commitRes{err: err}
			}
			req.done <- results[i]
		}
		return
	}
	// Apply batches to the memtable under the same critical section so
	// sequence order matches log order.
	for i, req := range group {
		if results[i].err != nil || req.kind != walKindBatch {
			continue
		}
		recs, err := decodeBatch(req.batch.encode())
		if err != nil {
			results[i] = commitRes{err: err}
			continue
		}
		base := db.lastSeq.Load() + 1
		applyToMemTable(db.mem, base, recs)
		db.lastSeq.Store(base + uint64(len(recs)) - 1)
		results[i].seq = base
	}
	needFlush := db.mem.approximateSize() >= db.opt.MemTableSize
	if needFlush {
		if err := db.rotateMemTableLocked(); err != nil && db.bgErr == nil {
			db.bgErr = err
		}
	}
	db.mu.Unlock()

	if needFlush {
		db.scheduleBG()
	}
	for i, req := range group {
		req.done <- results[i]
	}
}

// boolByte encodes a bool.
func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// rotateMemTableLocked moves the mutable memtable to the immutable list
// and installs a fresh WAL + memtable.
func (db *DB) rotateMemTableLocked() error {
	if err := db.wal.sync(); err != nil {
		return err
	}
	if err := db.wal.close(); err != nil {
		return err
	}
	db.imm = append(db.imm, db.mem)
	return db.newWALLocked(db.allocFileLocked())
}

// scheduleBG pokes the background worker.
func (db *DB) scheduleBG() {
	select {
	case db.bgWork <- struct{}{}:
	default:
	}
}

// Flush forces the current memtable to disk and waits for it.
func (db *DB) Flush() error {
	db.mu.Lock()
	if db.mem.entries() > 0 {
		if err := db.rotateMemTableLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	db.mu.Unlock()
	for {
		db.mu.Lock()
		pending := len(db.imm)
		err := db.bgErr
		db.mu.Unlock()
		if err != nil {
			return err
		}
		if pending == 0 {
			return nil
		}
		db.scheduleBG()
		time.Sleep(500 * time.Microsecond)
	}
}

// background runs flushes and compactions.
func (db *DB) background() {
	defer db.bgWG.Done()
	for {
		select {
		case <-db.bgQuit:
			return
		case <-db.bgWork:
		}
		for db.doBackgroundWork() {
		}
	}
}

// doBackgroundWork performs one flush or compaction; it reports whether
// more work remains.
func (db *DB) doBackgroundWork() bool {
	db.mu.Lock()
	if len(db.imm) > 0 {
		imm := db.imm[0]
		db.mu.Unlock()
		if err := db.flushMemTable(imm); err != nil {
			db.setBGErr(err)
			return false
		}
		return true
	}
	c := db.pickCompactionLocked()
	db.mu.Unlock()
	if c != nil {
		if err := db.runCompaction(c); err != nil {
			db.setBGErr(err)
			return false
		}
		return true
	}
	db.deleteObsolete()
	return false
}

// setBGErr records a background failure.
func (db *DB) setBGErr(err error) {
	// Corruption detected inside a flush or compaction read counts like a
	// quarantine: the detected-corruption metric must cover every path
	// that can observe damaged media, not just foreground Gets.
	if errors.Is(err, ErrSSTCorrupt) {
		db.corruptions.Add(1)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.bgErr == nil {
		db.bgErr = err
	}
}

// BGErr returns any background flush/compaction error.
func (db *DB) BGErr() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.bgErr
}

// flushMemTable writes imm to a new L0 table, logs the manifest edit,
// and retires the memtable and its WAL.
func (db *DB) flushMemTable(imm *memTable) error {
	db.mu.Lock()
	num := db.allocFileLocked()
	db.mu.Unlock()

	w, err := newSSTWriter(db.fs, db.opt.Dir, num, db.opt.Level, db.opt.Key, db.rt)
	if err != nil {
		return err
	}
	it := imm.newIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		v, verr := it.Value()
		if verr != nil {
			w.abort()
			return verr
		}
		if err := w.add(it.Key(), v); err != nil {
			w.abort()
			return err
		}
	}
	var edit versionEdit
	var meta fileMeta
	if !w.empty() {
		meta, err = w.finish()
		if err != nil {
			return err
		}
		meta.level = 0
		edit.addFiles = []fileMeta{meta}
	} else {
		w.abort()
	}

	db.mu.Lock()
	// The new min live log is the next memtable's (imm[1] or mem).
	minLog := db.mem.logNumber
	if len(db.imm) > 1 {
		minLog = db.imm[1].logNumber
	}
	edit.logNumber = minLog
	edit.nextFile = db.nextFile
	// Checkpoint only what this flush made durable in SSTables; entries
	// in newer (live) WALs are re-derived at replay.
	edit.lastSeq = imm.maxSeq
	edit.deletedLogs = []string{filepath.Base(walFileName(db.opt.Dir, imm.logNumber))}
	ctr, err := db.manifest.append(&edit)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	nv := db.current.clone()
	nv.apply(&edit)
	db.current = nv
	db.imm = db.imm[1:]
	db.obsolete = append(db.obsolete, obsoleteFile{
		path:        walFileName(db.opt.Dir, imm.logNumber),
		manifestCtr: ctr,
	})
	db.flushes.Add(1)
	db.mu.Unlock()
	imm.release()
	return nil
}

// deleteObsolete removes files whose superseding manifest entries have
// stabilized (§VI: defer deletion until rollback-protected).
func (db *DB) deleteObsolete() {
	db.mu.Lock()
	stable := db.manifest.ctr.StableValue()
	var keep []obsoleteFile
	var remove []string
	for _, o := range db.obsolete {
		if o.manifestCtr <= stable {
			remove = append(remove, o.path)
		} else {
			keep = append(keep, o)
		}
	}
	db.obsolete = keep
	db.mu.Unlock()
	for _, p := range remove {
		if db.rt != nil {
			db.rt.Syscall()
		}
		db.fs.Remove(p)
	}
}

// Close flushes state and shuts the DB down.
func (db *DB) Close() error {
	db.closedMu.Lock()
	alreadyClosed := db.closed.Swap(true)
	db.closedMu.Unlock()
	if alreadyClosed {
		return nil
	}
	close(db.commitCh)
	db.commitWG.Wait()
	close(db.bgQuit)
	db.bgWG.Wait()

	db.mu.Lock()
	defer db.mu.Unlock()
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if db.wal != nil {
		record(db.wal.sync())
		record(db.wal.close())
	}
	// Checkpoint the file allocator for the next open. The sequence
	// allocator is NOT checkpointed here: live-WAL replay re-derives it
	// (a close-time lastSeq would double-count unflushed entries).
	if db.manifest != nil {
		_, err := db.manifest.append(&versionEdit{nextFile: db.nextFile})
		record(err)
		record(db.manifest.close())
	}
	for _, r := range db.readers {
		record(r.close())
	}
	// Drop all cached blocks and discharge their enclave accounting —
	// the runtime may outlive this DB (node restarts reuse it).
	db.bcache.Purge()
	record(db.bgErr)
	return firstErr
}
