package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"treaty/internal/seal"
)

// testCounters is a CounterFactory whose counters survive "restarts"
// (shared across Open calls), modelling the external trusted counter
// service.
type testCounters struct {
	mu sync.Mutex
	m  map[string]*immediateCounter
}

func newTestCounters() *testCounters {
	return &testCounters{m: make(map[string]*immediateCounter)}
}

func (tc *testCounters) factory(name string) TrustedCounter {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if c, ok := tc.m[name]; ok {
		return c
	}
	c := &immediateCounter{}
	tc.m[name] = c
	return c
}

// rollbackTo rewinds no counters — but exposes the stable values so tests
// can assert; rollback attacks are simulated by restoring old *files*
// while counters keep their (higher) values.
func (tc *testCounters) stable(name string) uint64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if c, ok := tc.m[name]; ok {
		return c.StableValue()
	}
	return 0
}

func openTestDB(t *testing.T, dir string, level seal.SecurityLevel, key seal.Key, tc *testCounters) *DB {
	t.Helper()
	opt := Options{Dir: dir, Level: level, Key: key, MemTableSize: 64 << 10}
	if tc != nil {
		opt.Counters = tc.factory
	}
	db, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func put(t *testing.T, db *DB, key, value string) {
	t.Helper()
	b := NewBatch()
	b.Put([]byte(key), []byte(value))
	if _, _, err := db.Apply(b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

func get(t *testing.T, db *DB, key string) (string, bool) {
	t.Helper()
	v, _, ok, err := db.Get([]byte(key), db.LatestSeq())
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	return string(v), ok
}

func TestDBPutGetDelete(t *testing.T) {
	for _, level := range levelsUnderTest() {
		t.Run(level.String(), func(t *testing.T) {
			db := openTestDB(t, t.TempDir(), level, testKey(t), nil)
			defer db.Close()

			put(t, db, "alpha", "1")
			put(t, db, "beta", "2")
			if v, ok := get(t, db, "alpha"); !ok || v != "1" {
				t.Errorf("alpha = %q/%v", v, ok)
			}
			// Overwrite.
			put(t, db, "alpha", "updated")
			if v, _ := get(t, db, "alpha"); v != "updated" {
				t.Errorf("alpha after update = %q", v)
			}
			// Delete.
			b := NewBatch()
			b.Delete([]byte("beta"))
			if _, _, err := db.Apply(b); err != nil {
				t.Fatal(err)
			}
			if _, ok := get(t, db, "beta"); ok {
				t.Error("beta must be deleted")
			}
			if _, ok := get(t, db, "never"); ok {
				t.Error("phantom key")
			}
		})
	}
}

func TestDBSnapshotReads(t *testing.T) {
	db := openTestDB(t, t.TempDir(), seal.LevelEncrypted, testKey(t), nil)
	defer db.Close()

	put(t, db, "k", "v1")
	seq1 := db.LatestSeq()
	put(t, db, "k", "v2")

	v, _, ok, err := db.Get([]byte("k"), seq1)
	if err != nil || !ok || string(v) != "v1" {
		t.Errorf("snapshot read = %q/%v/%v, want v1", v, ok, err)
	}
	v, _, ok, _ = db.Get([]byte("k"), db.LatestSeq())
	if !ok || string(v) != "v2" {
		t.Errorf("latest read = %q, want v2", v)
	}
}

func TestDBBatchAtomicSeqs(t *testing.T) {
	db := openTestDB(t, t.TempDir(), seal.LevelEncrypted, testKey(t), nil)
	defer db.Close()

	b := NewBatch()
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	_, base, err := db.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	if base == 0 {
		t.Error("base seq must be assigned")
	}
	for i := 0; i < 10; i++ {
		v, seq, ok, err := db.Get([]byte(fmt.Sprintf("k%d", i)), db.LatestSeq())
		if err != nil || !ok {
			t.Fatalf("k%d: %v %v", i, ok, err)
		}
		if seq != base+uint64(i) {
			t.Errorf("k%d seq = %d, want %d", i, seq, base+uint64(i))
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Errorf("k%d = %q", i, v)
		}
	}
}

func fillKeys(t *testing.T, db *DB, n, valueSize int) {
	t.Helper()
	val := bytes.Repeat([]byte("x"), valueSize)
	for i := 0; i < n; i++ {
		b := NewBatch()
		b.Put([]byte(fmt.Sprintf("key-%06d", i)), append(val, []byte(fmt.Sprint(i))...))
		if _, _, err := db.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDBFlushAndReadBack(t *testing.T) {
	for _, level := range levelsUnderTest() {
		t.Run(level.String(), func(t *testing.T) {
			db := openTestDB(t, t.TempDir(), level, testKey(t), nil)
			defer db.Close()
			fillKeys(t, db, 500, 256) // > memtable size: triggers flushes
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if db.Stats().Flushes == 0 {
				t.Error("expected at least one flush")
			}
			for _, i := range []int{0, 100, 250, 499} {
				v, ok := get(t, db, fmt.Sprintf("key-%06d", i))
				if !ok || !bytes.HasSuffix([]byte(v), []byte(fmt.Sprint(i))) {
					t.Errorf("key-%06d = %q/%v after flush", i, v[min(20, len(v)):], ok)
				}
			}
		})
	}
}

func TestDBCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Dir: dir, Level: seal.LevelEncrypted, Key: testKey(t),
		MemTableSize: 16 << 10, L0Trigger: 2, BaseLevelBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Write enough overlapping data to force L0→L1 compactions.
	for round := 0; round < 6; round++ {
		for i := 0; i < 200; i++ {
			b := NewBatch()
			b.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("r%d-i%d-%s", round, i, bytes.Repeat([]byte("p"), 100))))
			if _, _, err := db.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Give compaction a chance.
	db.scheduleBG()
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().Compactions == 0 && time.Now().Before(deadline) {
		db.scheduleBG()
		time.Sleep(5 * time.Millisecond)
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("no compaction ran")
	}
	// Every key must read its newest round.
	for i := 0; i < 200; i++ {
		v, ok := get(t, db, fmt.Sprintf("key-%04d", i))
		if !ok || !bytes.HasPrefix([]byte(v), []byte("r5-")) {
			t.Fatalf("key-%04d = %.10q/%v after compaction", i, v, ok)
		}
	}
	if err := db.BGErr(); err != nil {
		t.Fatal(err)
	}
}

func TestDBIterator(t *testing.T) {
	db := openTestDB(t, t.TempDir(), seal.LevelEncrypted, testKey(t), nil)
	defer db.Close()

	put(t, db, "a", "1")
	put(t, db, "c", "3")
	put(t, db, "b", "2")
	put(t, db, "b", "2-updated")
	b := NewBatch()
	b.Delete([]byte("c"))
	if _, _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	put(t, db, "d", "4")

	it, err := db.NewIterator(db.LatestSeq())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	want := "[a=1 b=2-updated d=4]"
	if fmt.Sprint(got) != want {
		t.Errorf("scan = %v, want %v", got, want)
	}
}

func TestDBIteratorAcrossFlush(t *testing.T) {
	db := openTestDB(t, t.TempDir(), seal.LevelEncrypted, testKey(t), nil)
	defer db.Close()
	fillKeys(t, db, 300, 256)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// More writes into the fresh memtable so the iterator merges both.
	put(t, db, "key-000100", "overwritten")
	it, err := db.NewIterator(db.LatestSeq())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key()) == "key-000100" && string(it.Value()) != "overwritten" {
			t.Error("iterator must see the newest version")
		}
		count++
	}
	if count != 300 {
		t.Errorf("scanned %d keys, want 300", count)
	}
}

func TestDBRecoveryFromWAL(t *testing.T) {
	for _, level := range levelsUnderTest() {
		t.Run(level.String(), func(t *testing.T) {
			dir := t.TempDir()
			key := testKey(t)
			tc := newTestCounters()
			db := openTestDB(t, dir, level, key, tc)
			put(t, db, "persist-1", "v1")
			put(t, db, "persist-2", "v2")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := openTestDB(t, dir, level, key, tc)
			defer db2.Close()
			for i, want := range []string{"v1", "v2"} {
				if v, ok := get(t, db2, fmt.Sprintf("persist-%d", i+1)); !ok || v != want {
					t.Errorf("persist-%d = %q/%v", i+1, v, ok)
				}
			}
			// Writes continue after recovery.
			put(t, db2, "persist-3", "v3")
			if v, _ := get(t, db2, "persist-3"); v != "v3" {
				t.Error("write after recovery failed")
			}
		})
	}
}

func TestDBRecoveryWithSSTables(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	tc := newTestCounters()
	db := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	fillKeys(t, db, 400, 256)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	put(t, db, "after-flush", "wal-only")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	defer db2.Close()
	if v, ok := get(t, db2, "key-000123"); !ok || !bytes.HasSuffix([]byte(v), []byte("123")) {
		t.Errorf("flushed key after recovery: %v", ok)
	}
	if v, ok := get(t, db2, "after-flush"); !ok || v != "wal-only" {
		t.Errorf("wal key after recovery = %q/%v", v, ok)
	}
}

func TestDBSeqContinuesAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	tc := newTestCounters()
	db := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	put(t, db, "a", "1")
	put(t, db, "b", "2")
	seqBefore := db.LatestSeq()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	defer db2.Close()
	if got := db2.LatestSeq(); got != seqBefore {
		t.Errorf("LatestSeq after recovery = %d, want %d", got, seqBefore)
	}
	put(t, db2, "c", "3")
	if db2.LatestSeq() <= seqBefore {
		t.Error("sequence must advance past recovered point")
	}
}

func TestDBRollbackAttackDetected(t *testing.T) {
	// Run some commits, snapshot the WAL, run more commits (raising the
	// trusted counter), then restore the old WAL — a rollback. Recovery
	// must refuse.
	dir := t.TempDir()
	key := testKey(t)
	tc := newTestCounters()
	db := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	put(t, db, "k", "old")

	// Snapshot the current WAL file (the stale state to roll back to).
	walPath := db.wal.path
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	put(t, db, "k", "newer-1")
	put(t, db, "k", "newer-2")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The adversary restores the stale WAL.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(Options{Dir: dir, Level: seal.LevelEncrypted, Key: key, Counters: tc.factory})
	if !errors.Is(err, ErrRollbackDetected) {
		t.Fatalf("rollback open: got %v, want ErrRollbackDetected", err)
	}
}

func TestDBWALTamperDetected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	tc := newTestCounters()
	db := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	put(t, db, "k", "v")
	walPath := db.wal.path
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Level: seal.LevelEncrypted, Key: key, Counters: tc.factory}); err == nil {
		t.Fatal("tampered WAL must fail recovery")
	}
}

func TestDBManifestTamperDetected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	tc := newTestCounters()
	db := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	fillKeys(t, db, 200, 256)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := manifestName(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Level: seal.LevelEncrypted, Key: key, Counters: tc.factory}); err == nil {
		t.Fatal("tampered MANIFEST must fail recovery")
	}
}

func TestDBDeletedSSTableDetected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	tc := newTestCounters()
	db := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	fillKeys(t, db, 400, 256)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete one sstable the manifest references.
	matches, err := filepath.Glob(filepath.Join(dir, "sst-*.sst"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sstables found: %v", err)
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Level: seal.LevelEncrypted, Key: key, Counters: tc.factory}); !errors.Is(err, ErrRollbackDetected) {
		t.Fatalf("got %v, want ErrRollbackDetected", err)
	}
}

func TestDBPreparedTxRecovery(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	tc := newTestCounters()
	db := openTestDB(t, dir, seal.LevelEncrypted, key, tc)

	// Prepare two transactions; decide one; leave one pending.
	var idA, idB TxID
	copy(idA[:], "tx-A-----------")
	copy(idB[:], "tx-B-----------")
	bA := NewBatch()
	bA.Put([]byte("a-key"), []byte("a-val"))
	if _, err := db.LogPrepare(idA, bA); err != nil {
		t.Fatal(err)
	}
	bB := NewBatch()
	bB.Put([]byte("b-key"), []byte("b-val"))
	if _, err := db.LogPrepare(idB, bB); err != nil {
		t.Fatal(err)
	}
	// Decide A (commit): data applied via the normal path + decision.
	if _, _, err := db.Apply(bA); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LogDecision(idA, true); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, dir, seal.LevelEncrypted, key, tc)
	defer db2.Close()
	pending := db2.RecoveredPrepared()
	if len(pending) != 1 {
		t.Fatalf("recovered %d pending txs, want 1", len(pending))
	}
	if pending[0].ID != idB {
		t.Errorf("pending tx = %q, want tx-B", pending[0].ID[:])
	}
	if pending[0].Batch.Count() != 1 {
		t.Errorf("pending batch count = %d", pending[0].Batch.Count())
	}
	// A's data is there; B's is not (undecided).
	if v, ok := get(t, db2, "a-key"); !ok || v != "a-val" {
		t.Error("decided tx data missing after recovery")
	}
	if _, ok := get(t, db2, "b-key"); ok {
		t.Error("undecided prepared tx must not be visible")
	}
}

func TestDBConcurrentWriters(t *testing.T) {
	db := openTestDB(t, t.TempDir(), seal.LevelEncrypted, testKey(t), nil)
	defer db.Close()
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b := NewBatch()
				b.Put([]byte(fmt.Sprintf("w%d-k%d", w, i)), []byte(fmt.Sprintf("v%d", i)))
				if _, _, err := db.Apply(b); err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		for _, i := range []int{0, per / 2, per - 1} {
			if v, ok := get(t, db, fmt.Sprintf("w%d-k%d", w, i)); !ok || v != fmt.Sprintf("v%d", i) {
				t.Errorf("w%d-k%d = %q/%v", w, i, v, ok)
			}
		}
	}
}

func TestDBCloseIdempotentAndRejectsWrites(t *testing.T) {
	db := openTestDB(t, t.TempDir(), seal.LevelEncrypted, testKey(t), nil)
	put(t, db, "k", "v")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
	b := NewBatch()
	b.Put([]byte("x"), []byte("y"))
	if _, _, err := db.Apply(b); !errors.Is(err, ErrDBClosed) {
		t.Errorf("got %v, want ErrDBClosed", err)
	}
}

func TestBatchEncodeDecodeProperty(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Put([]byte(""), []byte("")) // empty key and value are legal
	recs, err := decodeBatch(b.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].kind != KindSet || recs[1].kind != KindDelete {
		t.Errorf("recs = %+v", recs)
	}
	// Truncated batches fail cleanly.
	enc := b.encode()
	for cut := 5; cut < len(enc); cut += 3 {
		if _, err := decodeBatch(enc[:cut]); err == nil {
			t.Errorf("truncation at %d undetected", cut)
		}
	}
}
