package lsm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// fileCounter is a TrustedCounter that stabilizes instantly but persists
// its value, so a restarted node's recovery freshness checks see the
// pre-crash stable value instead of zero. Without persistence an
// instant-stability counter silently breaks durability at secure storage
// levels: recovery treats the entire WAL as an unstabilized tail and
// discards acknowledged commits. Used by the native (no counter service)
// modes; the stabilization modes use the replicated counter service.
type fileCounter struct {
	mu   sync.Mutex
	path string
	v    atomic.Uint64
}

// NewFileCounter opens (or creates) a persistent instant-stability
// counter backed by the 8-byte file at path.
func NewFileCounter(path string) (TrustedCounter, error) {
	c := &fileCounter{path: path}
	b, err := os.ReadFile(path)
	switch {
	case err == nil && len(b) >= 8:
		c.v.Store(binary.LittleEndian.Uint64(b))
	case err != nil && !os.IsNotExist(err):
		return nil, fmt.Errorf("lsm: reading counter %s: %w", path, err)
	}
	return c, nil
}

// Stabilize implements TrustedCounter: the value is durable before the
// call returns, keeping the persisted stable value in lockstep with the
// log (the log is synced before it stabilizes, so persisted ≤ synced
// always holds and recovery never discards an acknowledged entry).
func (c *fileCounter) Stabilize(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v <= c.v.Load() {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if err := os.WriteFile(c.path, b[:], 0o644); err != nil {
		// A counter that cannot persist must not advance: advancing only
		// in memory would re-open the discard-on-restart hole.
		return
	}
	c.v.Store(v)
}

// WaitStable implements TrustedCounter (stability is immediate).
func (c *fileCounter) WaitStable(uint64) error { return nil }

// StableValue implements TrustedCounter.
func (c *fileCounter) StableValue() uint64 { return c.v.Load() }
