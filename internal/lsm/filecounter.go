package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"treaty/internal/vfs"
)

// fileCounter is a TrustedCounter that stabilizes instantly but persists
// its value, so a restarted node's recovery freshness checks see the
// pre-crash stable value instead of zero. Without persistence an
// instant-stability counter silently breaks durability at secure storage
// levels: recovery treats the entire WAL as an unstabilized tail and
// discards acknowledged commits. Used by the native (no counter service)
// modes; the stabilization modes use the replicated counter service.
type fileCounter struct {
	mu   sync.Mutex
	fs   vfs.FS
	path string
	v    atomic.Uint64
	// failed is read lock-free: stabilization waiters poll Failed on
	// every StableToken.Ready check, and c.mu is held across persist's
	// fsyncs — polling through the mutex would block every waiting fiber
	// behind disk latency.
	failed atomic.Value // sticky error
}

// Counter file format: value (8 bytes LE) ∥ magic (4 bytes) ∥ CRC32 of
// the first 12 bytes. The checksum makes media corruption of a counter
// file detectable: an undetected flip that *lowers* the value would make
// recovery silently discard acknowledged commits as an unstabilized
// tail, and one that raises it would fail recovery as a false rollback.
const (
	counterFileLen   = 16
	counterFileMagic = 0x54435452 // "TCTR"
)

// encodeCounterFile serializes v in the checksummed format.
func encodeCounterFile(v uint64) []byte {
	b := make([]byte, counterFileLen)
	binary.LittleEndian.PutUint64(b[0:], v)
	binary.LittleEndian.PutUint32(b[8:], counterFileMagic)
	binary.LittleEndian.PutUint32(b[12:], crc32.ChecksumIEEE(b[:12]))
	return b
}

// decodeCounterFile parses and verifies a counter file.
func decodeCounterFile(b []byte) (uint64, error) {
	if len(b) == 8 {
		// Legacy pre-checksum format.
		return binary.LittleEndian.Uint64(b), nil
	}
	if len(b) != counterFileLen {
		return 0, fmt.Errorf("%d bytes, want %d", len(b), counterFileLen)
	}
	if binary.LittleEndian.Uint32(b[8:]) != counterFileMagic {
		return 0, fmt.Errorf("bad magic")
	}
	if binary.LittleEndian.Uint32(b[12:]) != crc32.ChecksumIEEE(b[:12]) {
		return 0, fmt.Errorf("checksum mismatch")
	}
	return binary.LittleEndian.Uint64(b), nil
}

// NewFileCounter opens (or creates) a persistent instant-stability
// counter backed by the file at path. A file that exists but fails its
// length or checksum validation is corruption, not an empty counter:
// treating it as value 0 would make recovery discard the WAL as an
// unstabilized tail. Stabilize's atomic rename never leaves a torn
// file, so one can only appear through external damage.
func NewFileCounter(fs vfs.FS, path string) (TrustedCounter, error) {
	if fs == nil {
		fs = vfs.Default
	}
	c := &fileCounter{fs: fs, path: path}
	b, err := fs.ReadFile(path)
	switch {
	case err == nil:
		v, derr := decodeCounterFile(b)
		if derr != nil {
			return nil, fmt.Errorf("lsm: counter %s corrupt: %v", path, derr)
		}
		c.v.Store(v)
	case !os.IsNotExist(err):
		return nil, fmt.Errorf("lsm: reading counter %s: %w", path, err)
	}
	return c, nil
}

// Stabilize implements TrustedCounter: the value is durable before the
// call returns, keeping the persisted stable value in lockstep with the
// log (the log is synced before it stabilizes, so persisted ≤ synced
// always holds and recovery never discards an acknowledged entry).
// Persistence is write-temp + fsync + rename + fsync-dir so a crash at
// any point leaves either the old value or the new one, never a torn or
// truncated file. A counter that cannot persist must not advance —
// advancing only in memory would re-open the discard-on-restart hole —
// so a persist failure fail-stops the counter: Failed/WaitStable report
// the sticky error and the commit path refuses further acknowledgments.
func (c *fileCounter) Stabilize(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Failed() != nil || v <= c.v.Load() {
		return
	}
	if err := c.persist(v); err != nil {
		c.failed.Store(fmt.Errorf("lsm: counter %s persist: %w", c.path, err))
		return
	}
	c.v.Store(v)
}

// persist durably replaces the counter file with v.
func (c *fileCounter) persist(v uint64) error {
	tmp := c.path + ".tmp"
	f, err := c.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(encodeCounterFile(v)); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = c.fs.Rename(tmp, c.path)
	}
	if err != nil {
		c.fs.Remove(tmp)
		return err
	}
	// Sync the directory so the rename itself survives a crash. If this
	// fails the file already holds v — safe, because the log entry for v
	// was synced before Stabilize was called — but the in-memory value
	// must not advance past what is known durable.
	return c.fs.SyncDir(filepath.Dir(c.path))
}

// WaitStable implements TrustedCounter (stability is immediate, unless
// the counter fail-stopped).
func (c *fileCounter) WaitStable(uint64) error { return c.Failed() }

// Fail poisons the counter: every later Failed/WaitStable reports err
// and Stabilize never advances again. Crash teardown uses it to cut the
// acknowledgement path — a commit whose group skipped the replication
// mirror must not be able to stabilize and ack afterwards.
func (c *fileCounter) Fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Failed() == nil {
		// Wrap so the stored concrete type matches Stabilize's persist
		// error (atomic.Value requires consistently typed stores).
		c.failed.Store(fmt.Errorf("lsm: counter %s: %w", c.path, err))
	}
}

// StableValue implements TrustedCounter.
func (c *fileCounter) StableValue() uint64 { return c.v.Load() }

// Failed implements failableCounter: a persist failure is permanent.
// Lock-free so readiness polls never block behind an in-flight persist.
func (c *fileCounter) Failed() error {
	if e := c.failed.Load(); e != nil {
		return e.(error)
	}
	return nil
}
