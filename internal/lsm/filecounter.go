package lsm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// fileCounter is a TrustedCounter that stabilizes instantly but persists
// its value, so a restarted node's recovery freshness checks see the
// pre-crash stable value instead of zero. Without persistence an
// instant-stability counter silently breaks durability at secure storage
// levels: recovery treats the entire WAL as an unstabilized tail and
// discards acknowledged commits. Used by the native (no counter service)
// modes; the stabilization modes use the replicated counter service.
type fileCounter struct {
	mu   sync.Mutex
	path string
	v    atomic.Uint64
}

// NewFileCounter opens (or creates) a persistent instant-stability
// counter backed by the 8-byte file at path. A file that exists but is
// shorter than 8 bytes is corruption, not an empty counter: treating it
// as value 0 would make recovery discard the WAL as an unstabilized
// tail. Stabilize's atomic rename never leaves a short file, so one can
// only appear through external damage.
func NewFileCounter(path string) (TrustedCounter, error) {
	c := &fileCounter{path: path}
	b, err := os.ReadFile(path)
	switch {
	case err == nil && len(b) >= 8:
		c.v.Store(binary.LittleEndian.Uint64(b))
	case err == nil:
		return nil, fmt.Errorf("lsm: counter %s corrupt: %d bytes, want 8", path, len(b))
	case !os.IsNotExist(err):
		return nil, fmt.Errorf("lsm: reading counter %s: %w", path, err)
	}
	return c, nil
}

// Stabilize implements TrustedCounter: the value is durable before the
// call returns, keeping the persisted stable value in lockstep with the
// log (the log is synced before it stabilizes, so persisted ≤ synced
// always holds and recovery never discards an acknowledged entry).
// Persistence is write-temp + fsync + rename + fsync-dir so a crash at
// any point leaves either the old value or the new one, never a torn or
// truncated file.
func (c *fileCounter) Stabilize(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v <= c.v.Load() {
		return
	}
	if err := c.persist(v); err != nil {
		// A counter that cannot persist must not advance: advancing only
		// in memory would re-open the discard-on-restart hole.
		return
	}
	c.v.Store(v)
}

// persist durably replaces the counter file with v.
func (c *fileCounter) persist(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(b[:]); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, c.path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// Sync the directory so the rename itself survives a crash. If this
	// fails the file already holds v — safe, because the log entry for v
	// was synced before Stabilize was called — but the in-memory value
	// must not advance past what is known durable.
	d, err := os.Open(filepath.Dir(c.path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WaitStable implements TrustedCounter (stability is immediate).
func (c *fileCounter) WaitStable(uint64) error { return nil }

// StableValue implements TrustedCounter.
func (c *fileCounter) StableValue() uint64 { return c.v.Load() }
