package lsm

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileCounterPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "WAL-000001")
	c, err := NewFileCounter(nil, path)
	if err != nil {
		t.Fatalf("NewFileCounter: %v", err)
	}
	c.Stabilize(42)
	if got := c.StableValue(); got != 42 {
		t.Fatalf("StableValue = %d, want 42", got)
	}
	// Reopen: the stable value must survive the "restart".
	c2, err := NewFileCounter(nil, path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := c2.StableValue(); got != 42 {
		t.Fatalf("StableValue after reopen = %d, want 42", got)
	}
}

func TestFileCounterNeverRegresses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "WAL-000001")
	c, err := NewFileCounter(nil, path)
	if err != nil {
		t.Fatalf("NewFileCounter: %v", err)
	}
	c.Stabilize(10)
	c.Stabilize(5)
	if got := c.StableValue(); got != 10 {
		t.Fatalf("StableValue = %d, want 10 (regression applied)", got)
	}
}

func TestFileCounterShortFileIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "WAL-000001")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	// A torn/truncated counter file must be reported, not read as 0: a
	// zero counter makes recovery discard the WAL as an unstabilized
	// tail, silently losing acknowledged commits.
	if _, err := NewFileCounter(nil, path); err == nil {
		t.Fatal("NewFileCounter accepted a 3-byte counter file")
	}
}

func TestFileCounterStabilizeLeavesNoTempFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "WAL-000001")
	c, err := NewFileCounter(nil, path)
	if err != nil {
		t.Fatalf("NewFileCounter: %v", err)
	}
	c.Stabilize(7)
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after Stabilize: stat err=%v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || len(b) != counterFileLen {
		t.Fatalf("counter file: %d bytes, err=%v; want %d bytes", len(b), err, counterFileLen)
	}
}
