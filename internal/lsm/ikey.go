// Package lsm is Treaty's persistent storage engine: a from-scratch
// log-structured merge tree in the RocksDB/SPEICHER mould (§II-A, §II-C,
// §V-B, §VII-B). Data flows MemTable → L0 SSTables → leveled compactions;
// durability comes from a write-ahead log; the MANIFEST records every
// state change of the persistent storage.
//
// The security layering follows SPEICHER, extended for transactions:
//
//   - The MemTable separates keys from values: keys (with their version)
//     stay in enclave memory, values live encrypted in untrusted host
//     memory with their hash kept alongside the key (§V-B).
//   - SSTables store encrypted blocks with a footer of per-block hashes;
//     every read is integrity-checked inside the enclave.
//   - WAL and MANIFEST entries are hash-chained and bound to trusted
//     counter values; recovery verifies freshness and state continuity,
//     detecting rollback and splicing attacks (§VI).
//   - Old SSTables and logs are deleted only after the MANIFEST entries
//     describing their replacement are stabilized.
package lsm

import (
	"bytes"
	"encoding/binary"
)

// RecordKind distinguishes value records from tombstones.
type RecordKind uint8

const (
	// KindSet is a put record.
	KindSet RecordKind = iota + 1
	// KindDelete is a tombstone.
	KindDelete
)

// MaxSeq is the largest sequence number (used for "read latest" lookups).
const MaxSeq = (uint64(1) << 56) - 1

// Internal keys order user keys ascending and, within a user key,
// sequence numbers *descending* (newest first), so a scan positioned at
// (key, readSeq) finds the newest visible version first. The encoded form
// is userKey ∥ 8-byte trailer, trailer = (seq << 8) | kind, stored
// big-endian inverted so bytes.Compare gives the desired order.

// encodeTrailer packs seq and kind into the 8-byte inverted trailer.
func encodeTrailer(seq uint64, kind RecordKind) uint64 {
	return ^((seq << 8) | uint64(kind))
}

// decodeTrailer unpacks the trailer.
func decodeTrailer(t uint64) (seq uint64, kind RecordKind) {
	v := ^t
	return v >> 8, RecordKind(v & 0xFF)
}

// makeIKey encodes an internal key.
func makeIKey(userKey []byte, seq uint64, kind RecordKind) []byte {
	ik := make([]byte, len(userKey)+8)
	copy(ik, userKey)
	binary.BigEndian.PutUint64(ik[len(userKey):], encodeTrailer(seq, kind))
	return ik
}

// parseIKey splits an internal key.
func parseIKey(ik []byte) (userKey []byte, seq uint64, kind RecordKind) {
	n := len(ik) - 8
	userKey = ik[:n]
	seq, kind = decodeTrailer(binary.BigEndian.Uint64(ik[n:]))
	return
}

// userKeyOf returns the user-key prefix of an internal key.
func userKeyOf(ik []byte) []byte { return ik[:len(ik)-8] }

// compareIKeys orders internal keys: user key ascending, then trailer
// ascending (which is seq descending because the trailer is inverted).
func compareIKeys(a, b []byte) int {
	ua, ub := userKeyOf(a), userKeyOf(b)
	if c := bytes.Compare(ua, ub); c != 0 {
		return c
	}
	ta := binary.BigEndian.Uint64(a[len(ua):])
	tb := binary.BigEndian.Uint64(b[len(ub):])
	switch {
	case ta < tb:
		return -1
	case ta > tb:
		return 1
	default:
		return 0
	}
}
