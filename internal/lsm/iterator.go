package lsm

import (
	"bytes"
	"container/heap"
)

// internalIterator walks internal-key/value records in internal-key
// order. Implemented by memIterator, sstIterator and mergeIterator.
type internalIterator interface {
	SeekToFirst()
	Seek(ikey []byte)
	Valid() bool
	Next()
	Key() []byte
	Value() ([]byte, error)
}

// mergeIterator merges several internalIterators. Ties on identical
// internal keys cannot happen (sequence numbers are unique), so ordering
// is strict.
type mergeIterator struct {
	iters []internalIterator
	h     iterHeap
	err   error
}

// iterHeap orders live child iterators by current key.
type iterHeap []internalIterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return compareIKeys(h[i].Key(), h[j].Key()) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(internalIterator)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// newMergeIterator builds a merge iterator over children.
func newMergeIterator(iters []internalIterator) *mergeIterator {
	return &mergeIterator{iters: iters}
}

// rebuild re-heapifies after repositioning all children.
func (m *mergeIterator) rebuild() {
	m.h = m.h[:0]
	for _, it := range m.iters {
		if it.Valid() {
			m.h = append(m.h, it)
		}
	}
	heap.Init(&m.h)
}

// SeekToFirst implements internalIterator.
func (m *mergeIterator) SeekToFirst() {
	for _, it := range m.iters {
		it.SeekToFirst()
	}
	m.rebuild()
}

// Seek implements internalIterator.
func (m *mergeIterator) Seek(ikey []byte) {
	for _, it := range m.iters {
		it.Seek(ikey)
	}
	m.rebuild()
}

// Valid implements internalIterator.
func (m *mergeIterator) Valid() bool { return len(m.h) > 0 }

// Next implements internalIterator.
func (m *mergeIterator) Next() {
	if len(m.h) == 0 {
		return
	}
	top := m.h[0]
	top.Next()
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// Key implements internalIterator.
func (m *mergeIterator) Key() []byte { return m.h[0].Key() }

// Value implements internalIterator.
func (m *mergeIterator) Value() ([]byte, error) { return m.h[0].Value() }

// Iterator is the user-facing snapshot iterator: it surfaces the newest
// visible version of each user key at the iterator's read sequence,
// hiding tombstones, shadowed versions, and future writes.
type Iterator struct {
	inner   internalIterator
	readSeq uint64
	key     []byte
	value   []byte
	valid   bool
	err     error
}

// newIterator wraps an internal iterator with snapshot semantics.
func newIterator(inner internalIterator, readSeq uint64) *Iterator {
	return &Iterator{inner: inner, readSeq: readSeq}
}

// SeekToFirst positions at the first visible user key.
func (it *Iterator) SeekToFirst() {
	it.inner.SeekToFirst()
	it.skipToVisible(nil)
}

// Seek positions at the first visible user key >= key.
func (it *Iterator) Seek(key []byte) {
	it.inner.Seek(makeIKey(key, it.readSeq, RecordKind(0xFF)))
	it.skipToVisible(nil)
}

// Next advances to the next visible user key.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	prev := append([]byte(nil), it.key...)
	it.inner.Next()
	it.skipToVisible(prev)
}

// skipToVisible advances the inner iterator to the newest visible,
// non-deleted version of the next user key after skipKey.
func (it *Iterator) skipToVisible(skipKey []byte) {
	it.valid = false
	for it.inner.Valid() {
		uk, seq, kind := parseIKey(it.inner.Key())
		switch {
		case skipKey != nil && bytes.Equal(uk, skipKey):
			// Older version (or any version) of a key we already
			// surfaced or want to skip.
			it.inner.Next()
		case seq > it.readSeq:
			// Future version: not visible in this snapshot; try the
			// same user key at an older sequence.
			it.inner.Next()
		case kind == KindDelete:
			// Newest visible version is a tombstone: the key does not
			// exist; skip all its older versions.
			skipKey = append([]byte(nil), uk...)
			it.inner.Next()
		default:
			v, err := it.inner.Value()
			if err != nil {
				it.err = err
				return
			}
			it.key = append(it.key[:0], uk...)
			it.value = v
			it.valid = true
			return
		}
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key (valid until the next move).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (decrypted and integrity-checked).
func (it *Iterator) Value() []byte { return it.value }

// Err returns the first error the iterator hit (integrity failures
// surface here).
func (it *Iterator) Err() error { return it.err }
