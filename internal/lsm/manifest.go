package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"treaty/internal/enclave"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// numLevels is the depth of the LSM hierarchy.
const numLevels = 7

// The MANIFEST logs every change to the state of the persistent storage
// (§V-A): table additions/removals from compactions and flushes, WAL
// rotations and deletions, and sequence-number checkpoints. Entries are
// hash-chained and counter-bound like every Treaty log; recovery replays
// the MANIFEST first to rebuild the SSTable hierarchy and to learn the
// per-table index hashes used to verify table reads (§VI).

// versionEdit is one manifest record.
type versionEdit struct {
	addFiles    []fileMeta
	deleteFiles []struct {
		level  int
		number uint64
	}
	// logNumber, when non-zero, marks WALs below it obsolete.
	logNumber uint64
	// nextFile, when non-zero, persists the file-number allocator.
	nextFile uint64
	// lastSeq, when non-zero, checkpoints the sequence allocator.
	lastSeq uint64
	// deletedLogs names external logs (old WALs, Clogs) whose deletion
	// is being recorded (the paper: "Clog's deletions are also logged in
	// the MANIFEST").
	deletedLogs []string
}

// Edit record field tags.
const (
	tagAddFile = uint8(iota + 1)
	tagDeleteFile
	tagLogNumber
	tagNextFile
	tagLastSeq
	tagDeletedLog
)

// encode serializes the edit.
func (e *versionEdit) encode() []byte {
	var b []byte
	for _, f := range e.addFiles {
		b = append(b, tagAddFile)
		b = binary.AppendUvarint(b, uint64(f.level))
		b = binary.AppendUvarint(b, f.number)
		b = binary.AppendUvarint(b, f.size)
		b = binary.AppendUvarint(b, uint64(len(f.smallest)))
		b = append(b, f.smallest...)
		b = binary.AppendUvarint(b, uint64(len(f.largest)))
		b = append(b, f.largest...)
		b = append(b, f.footerHash[:]...)
	}
	for _, d := range e.deleteFiles {
		b = append(b, tagDeleteFile)
		b = binary.AppendUvarint(b, uint64(d.level))
		b = binary.AppendUvarint(b, d.number)
	}
	if e.logNumber != 0 {
		b = append(b, tagLogNumber)
		b = binary.AppendUvarint(b, e.logNumber)
	}
	if e.nextFile != 0 {
		b = append(b, tagNextFile)
		b = binary.AppendUvarint(b, e.nextFile)
	}
	if e.lastSeq != 0 {
		b = append(b, tagLastSeq)
		b = binary.AppendUvarint(b, e.lastSeq)
	}
	for _, name := range e.deletedLogs {
		b = append(b, tagDeletedLog)
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
	}
	return b
}

// errBadEdit indicates a manifest record that cannot be decoded.
var errBadEdit = errors.New("lsm: corrupt manifest edit")

// decodeEdit parses a manifest record.
func decodeEdit(data []byte) (*versionEdit, error) {
	e := &versionEdit{}
	off := 0
	u := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, errBadEdit
		}
		off += n
		return v, nil
	}
	bs := func() ([]byte, error) {
		n, err := u()
		if err != nil || off+int(n) > len(data) {
			return nil, errBadEdit
		}
		out := append([]byte(nil), data[off:off+int(n)]...)
		off += int(n)
		return out, nil
	}
	for off < len(data) {
		tag := data[off]
		off++
		switch tag {
		case tagAddFile:
			var f fileMeta
			lv, err := u()
			if err != nil {
				return nil, err
			}
			f.level = int(lv)
			if f.number, err = u(); err != nil {
				return nil, err
			}
			if f.size, err = u(); err != nil {
				return nil, err
			}
			if f.smallest, err = bs(); err != nil {
				return nil, err
			}
			if f.largest, err = bs(); err != nil {
				return nil, err
			}
			if off+seal.HashSize > len(data) {
				return nil, errBadEdit
			}
			copy(f.footerHash[:], data[off:])
			off += seal.HashSize
			e.addFiles = append(e.addFiles, f)
		case tagDeleteFile:
			lv, err := u()
			if err != nil {
				return nil, err
			}
			num, err := u()
			if err != nil {
				return nil, err
			}
			e.deleteFiles = append(e.deleteFiles, struct {
				level  int
				number uint64
			}{int(lv), num})
		case tagLogNumber:
			v, err := u()
			if err != nil {
				return nil, err
			}
			e.logNumber = v
		case tagNextFile:
			v, err := u()
			if err != nil {
				return nil, err
			}
			e.nextFile = v
		case tagLastSeq:
			v, err := u()
			if err != nil {
				return nil, err
			}
			e.lastSeq = v
		case tagDeletedLog:
			name, err := bs()
			if err != nil {
				return nil, err
			}
			e.deletedLogs = append(e.deletedLogs, string(name))
		default:
			return nil, fmt.Errorf("%w: tag %d", errBadEdit, tag)
		}
	}
	return e, nil
}

// version is an immutable snapshot of the table hierarchy.
type version struct {
	files [numLevels][]fileMeta
}

// clone deep-copies the level lists (metas are value types).
func (v *version) clone() *version {
	nv := &version{}
	for i := range v.files {
		nv.files[i] = append([]fileMeta(nil), v.files[i]...)
	}
	return nv
}

// apply folds an edit into the version.
func (v *version) apply(e *versionEdit) {
	for _, d := range e.deleteFiles {
		lst := v.files[d.level]
		for i := range lst {
			if lst[i].number == d.number {
				v.files[d.level] = append(lst[:i:i], lst[i+1:]...)
				break
			}
		}
	}
	for _, f := range e.addFiles {
		v.files[f.level] = append(v.files[f.level], f)
	}
	// Levels > 0 are kept sorted by smallest key and non-overlapping.
	for lv := 1; lv < numLevels; lv++ {
		sort.Slice(v.files[lv], func(i, j int) bool {
			return compareIKeys(v.files[lv][i].smallest, v.files[lv][j].smallest) < 0
		})
	}
}

// manifest is the open manifest log.
type manifest struct {
	f        vfs.File
	codec    *seal.LogCodec
	rt       *enclave.Runtime
	ctr      TrustedCounter
	path     string
	buf      []byte
	poisoned error
}

// manifestName builds the manifest path.
func manifestName(dir string) string { return filepath.Join(dir, "MANIFEST-000001") }

// createManifest creates a fresh manifest, durably (dir-fsynced).
func createManifest(fs vfs.FS, dir string, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime, ctr TrustedCounter) (*manifest, error) {
	path := manifestName(dir)
	codec, err := seal.NewLogCodec(level, key, filepath.Base(path), 1)
	if err != nil {
		return nil, fmt.Errorf("lsm: manifest codec: %w", err)
	}
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: creating manifest: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: syncing dir after manifest create: %w", err)
	}
	if rt != nil {
		rt.Syscall()
	}
	return &manifest{f: f, codec: codec, rt: rt, ctr: ctr, path: path}, nil
}

// append logs one edit, syncs, and stabilizes it; it returns the entry's
// counter value. Any write/sync failure poisons the manifest (the codec
// chain has advanced, and after a failed fsync the tail may be gone), and
// a counter that can no longer persist blocks acknowledgment too: an
// edit whose counter binding is lost would be discarded on restart.
func (m *manifest) append(e *versionEdit) (uint64, error) {
	if m.poisoned != nil {
		return 0, m.poisoned
	}
	m.buf = m.buf[:0]
	var ctr uint64
	m.buf, ctr = m.codec.AppendEntry(m.buf, 1, e.encode())
	if m.rt != nil {
		m.rt.Syscalls(2)
	}
	if _, err := m.f.Write(m.buf); err != nil {
		m.poisoned = fmt.Errorf("%w: manifest write: %v", ErrLogPoisoned, err)
		return 0, fmt.Errorf("lsm: manifest write: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		m.poisoned = fmt.Errorf("%w: manifest sync: %v", ErrLogPoisoned, err)
		return 0, fmt.Errorf("lsm: manifest sync: %w", err)
	}
	m.ctr.Stabilize(ctr)
	if fc, ok := m.ctr.(failableCounter); ok {
		if err := fc.Failed(); err != nil {
			m.poisoned = fmt.Errorf("%w: manifest counter: %v", ErrLogPoisoned, err)
			return 0, err
		}
	}
	return ctr, nil
}

// close closes the manifest file.
func (m *manifest) close() error { return m.f.Close() }

// openManifestForAppend re-opens an existing manifest after replaying it
// so the codec chain continues where it left off.
func openManifestForAppend(fs vfs.FS, dir string, codec *seal.LogCodec, rt *enclave.Runtime, ctr TrustedCounter) (*manifest, error) {
	path := manifestName(dir)
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopening manifest: %w", err)
	}
	if rt != nil {
		rt.Syscall()
	}
	return &manifest{f: f, codec: codec, rt: rt, ctr: ctr, path: path}, nil
}

// replayManifest reads every edit, verifying the chain and (at secure
// levels) freshness against maxStable (-1 skips). It returns the edits,
// the codec (positioned to continue appending), the number of bytes
// consumed — the caller truncates any unstabilized tail before reopening
// the file for append — and whether a crash-torn tail was dropped (see
// tolerableTear for the policy).
func replayManifest(fs vfs.FS, dir string, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime, maxStable int64) ([]*versionEdit, *seal.LogCodec, int64, bool, error) {
	path := manifestName(dir)
	codec, err := seal.NewLogCodec(level, key, filepath.Base(path), 1)
	if err != nil {
		return nil, nil, 0, false, err
	}
	if rt != nil {
		rt.Syscall()
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, nil, 0, false, fmt.Errorf("lsm: reading manifest: %w", err)
	}
	var edits []*versionEdit
	off := 0
	last := uint64(0)
	torn := false
	for off < len(data) {
		e, n, derr := codec.DecodeEntry(data[off:])
		if derr != nil {
			if tolerableTear(derr, level, last, maxStable) {
				torn = true
				break
			}
			return nil, nil, 0, false, fmt.Errorf("lsm: manifest entry at %d: %w", off, derr)
		}
		if maxStable >= 0 && e.Counter > uint64(maxStable) {
			break
		}
		edit, perr := decodeEdit(e.Payload)
		if perr != nil {
			return nil, nil, 0, false, perr
		}
		edits = append(edits, edit)
		last = e.Counter
		off += n
	}
	if maxStable > 0 && last < uint64(maxStable) {
		return nil, nil, 0, false, fmt.Errorf("%w: manifest ends at counter %d, trusted value is %d",
			ErrRollbackDetected, last, maxStable)
	}
	return edits, codec, int64(off), torn, nil
}
