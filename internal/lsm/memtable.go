package lsm

import (
	"fmt"
	"sync"

	"treaty/internal/enclave"
	"treaty/internal/seal"
)

// valueHandle locates one value for a skip-list entry. Following
// SPEICHER's MemTable design as adapted by Treaty (§V-B), keys (with their
// version) live in the enclave skip list while values live in untrusted
// host memory, encrypted; the handle keeps the pointer (arena offset) and
// the secure hash needed to prove the value's authenticity on access.
type valueHandle struct {
	// off/len locate the stored bytes in the MemTable's host arena.
	off, len int
	// hash authenticates the plaintext value (levels >= integrity).
	hash [seal.HashSize]byte
	// kind distinguishes puts from tombstones (tombstones carry no value).
	kind RecordKind
}

// memTable buffers recent writes: an enclave-resident concurrent skip
// list of internal keys pointing into a host-memory value arena.
type memTable struct {
	list  *skipList
	level seal.SecurityLevel
	rt    *enclave.Runtime
	ciph  *seal.Cipher

	// mu guards the arena only; skip-list inserts are lock-free.
	mu    sync.Mutex
	arena []byte

	logNumber uint64 // WAL file this memtable's entries are logged in

	// maxSeq is the largest sequence number inserted; it becomes the
	// manifest's lastSeq checkpoint when this memtable flushes, so WAL
	// replay after recovery re-derives identical sequence numbers.
	maxSeq uint64
}

// newMemTable creates a memtable. ciph may be nil below LevelEncrypted.
func newMemTable(level seal.SecurityLevel, rt *enclave.Runtime, ciph *seal.Cipher, logNumber uint64) *memTable {
	return &memTable{
		list:      newSkipList(),
		level:     level,
		rt:        rt,
		ciph:      ciph,
		logNumber: logNumber,
	}
}

// add inserts one record. Values are stored in the host arena (encrypted
// at LevelEncrypted); the skip list holds the key, version, value pointer
// and value hash inside the enclave.
func (m *memTable) add(seq uint64, kind RecordKind, userKey, value []byte) {
	h := valueHandle{kind: kind}
	if kind == KindSet {
		stored := value
		if m.level >= seal.LevelIntegrity {
			h.hash = seal.Hash(value)
		}
		if m.level == seal.LevelEncrypted {
			stored = m.ciph.Seal(value, nil)
		}
		m.mu.Lock()
		h.off = len(m.arena)
		h.len = len(stored)
		m.arena = append(m.arena, stored...)
		m.mu.Unlock()
		if m.rt != nil {
			m.rt.AllocHost(len(stored))
			// Keys and handles live in the enclave.
			m.rt.AllocEnclave(len(userKey) + 8 + 48)
		}
	} else if m.rt != nil {
		m.rt.AllocEnclave(len(userKey) + 8 + 48)
	}
	m.list.insert(makeIKey(userKey, seq, kind), h)
	m.mu.Lock()
	if seq > m.maxSeq {
		m.maxSeq = seq
	}
	m.mu.Unlock()
}

// resolve fetches, decrypts, and integrity-checks the value behind h.
func (m *memTable) resolve(h valueHandle) ([]byte, error) {
	if h.kind == KindDelete {
		return nil, nil
	}
	m.mu.Lock()
	stored := m.arena[h.off : h.off+h.len]
	m.mu.Unlock()
	value := stored
	if m.level == seal.LevelEncrypted {
		plain, err := m.ciph.Open(stored, nil)
		if err != nil {
			return nil, fmt.Errorf("lsm: memtable value: %w", err)
		}
		value = plain
	} else {
		value = append([]byte(nil), stored...)
	}
	if m.level >= seal.LevelIntegrity && seal.Hash(value) != h.hash {
		// The host arena was tampered with and (at LevelIntegrity)
		// encryption was not there to catch it.
		return nil, fmt.Errorf("lsm: memtable value: %w", seal.ErrIntegrity)
	}
	return value, nil
}

// get looks up the newest visible version of userKey at readSeq. It
// returns (value, seq, kind, true) when a record is visible.
func (m *memTable) get(userKey []byte, readSeq uint64) (value []byte, seq uint64, kind RecordKind, ok bool, err error) {
	node := m.list.seek(makeIKey(userKey, readSeq, RecordKind(0xFF)))
	if node == nil {
		return nil, 0, 0, false, nil
	}
	uk, s, k := parseIKey(node.key)
	if string(uk) != string(userKey) {
		return nil, 0, 0, false, nil
	}
	v, rerr := m.resolve(node.value)
	if rerr != nil {
		return nil, 0, 0, false, rerr
	}
	return v, s, k, true, nil
}

// approximateSize returns the combined footprint (enclave keys + host
// values) used for flush triggering.
func (m *memTable) approximateSize() int64 {
	m.mu.Lock()
	arena := int64(len(m.arena))
	m.mu.Unlock()
	return m.list.approximateSize() + arena
}

// entries returns the number of records.
func (m *memTable) entries() int64 { return m.list.entries() }

// release returns the memtable's accounted memory to the runtime.
func (m *memTable) release() {
	if m.rt == nil {
		return
	}
	m.mu.Lock()
	arena := len(m.arena)
	m.mu.Unlock()
	m.rt.FreeHost(arena)
	m.rt.FreeEnclave(int(m.list.approximateSize()))
}

// memIterator iterates a memtable in internal-key order, resolving
// values lazily.
type memIterator struct {
	m  *memTable
	it *slIterator
}

// newIterator returns an iterator over the memtable.
func (m *memTable) newIterator() *memIterator {
	return &memIterator{m: m, it: m.list.iterator()}
}

// SeekToFirst implements internalIterator.
func (it *memIterator) SeekToFirst() { it.it.SeekToFirst() }

// Seek implements internalIterator.
func (it *memIterator) Seek(ik []byte) { it.it.Seek(ik) }

// Valid implements internalIterator.
func (it *memIterator) Valid() bool { return it.it.Valid() }

// Next implements internalIterator.
func (it *memIterator) Next() { it.it.Next() }

// Key implements internalIterator.
func (it *memIterator) Key() []byte { return it.it.Key() }

// Value implements internalIterator; it resolves (decrypts + verifies)
// the value.
func (it *memIterator) Value() ([]byte, error) { return it.m.resolve(it.it.Value()) }
