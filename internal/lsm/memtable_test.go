package lsm

import (
	"bytes"
	"fmt"
	"testing"

	"treaty/internal/enclave"
	"treaty/internal/seal"
)

func newTestMemTable(t *testing.T, level seal.SecurityLevel, rt *enclave.Runtime) *memTable {
	t.Helper()
	var ciph *seal.Cipher
	if level == seal.LevelEncrypted {
		key := testKey(t)
		c, err := seal.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ciph = c
	}
	return newMemTable(level, rt, ciph, 1)
}

func TestMemTableGetVersions(t *testing.T) {
	m := newTestMemTable(t, seal.LevelEncrypted, nil)
	m.add(1, KindSet, []byte("k"), []byte("v1"))
	m.add(2, KindSet, []byte("k"), []byte("v2"))
	m.add(3, KindDelete, []byte("k"), nil)

	// Read at each snapshot.
	v, seq, kind, ok, err := m.get([]byte("k"), 1)
	if err != nil || !ok || seq != 1 || kind != KindSet || string(v) != "v1" {
		t.Errorf("at 1: %q seq=%d kind=%d ok=%v err=%v", v, seq, kind, ok, err)
	}
	v, seq, kind, ok, err = m.get([]byte("k"), 2)
	if err != nil || !ok || seq != 2 || string(v) != "v2" {
		t.Errorf("at 2: %q seq=%d kind=%d ok=%v err=%v", v, seq, kind, ok, err)
	}
	_, seq, kind, ok, err = m.get([]byte("k"), MaxSeq)
	if err != nil || !ok || seq != 3 || kind != KindDelete {
		t.Errorf("latest: seq=%d kind=%d ok=%v err=%v", seq, kind, ok, err)
	}
	// Unknown key.
	if _, _, _, ok, _ := m.get([]byte("zzz"), MaxSeq); ok {
		t.Error("phantom key")
	}
}

// TestMemTableKVSeparationAccounting pins the SPEICHER/Treaty memory
// layout: values land in host memory, keys + handles in enclave memory
// (§V-B, §VII-D).
func TestMemTableKVSeparationAccounting(t *testing.T) {
	rt := enclave.NewSconeRuntime()
	m := newTestMemTable(t, seal.LevelEncrypted, rt)
	value := bytes.Repeat([]byte("v"), 10_000)
	for i := 0; i < 20; i++ {
		m.add(uint64(i+1), KindSet, []byte(fmt.Sprintf("key-%02d", i)), value)
	}
	s := rt.Stats()
	if s.HostBytes < 20*10_000 {
		t.Errorf("HostBytes = %d, want >= %d (values in host memory)", s.HostBytes, 20*10_000)
	}
	if s.EnclaveBytes <= 0 {
		t.Error("keys and handles must be charged to enclave memory")
	}
	if s.EnclaveBytes >= s.HostBytes {
		t.Errorf("enclave footprint (%d) must be far below host footprint (%d)",
			s.EnclaveBytes, s.HostBytes)
	}
	m.release()
	s = rt.Stats()
	if s.HostBytes != 0 {
		t.Errorf("release must return host memory, HostBytes = %d", s.HostBytes)
	}
}

// TestMemTableValueTamperDetected flips a byte in the host arena; the
// enclave-held hash must expose it.
func TestMemTableValueTamperDetected(t *testing.T) {
	for _, level := range []seal.SecurityLevel{seal.LevelIntegrity, seal.LevelEncrypted} {
		t.Run(level.String(), func(t *testing.T) {
			m := newTestMemTable(t, level, nil)
			m.add(1, KindSet, []byte("k"), []byte("sensitive-value"))
			// The adversary controls host memory: corrupt the arena.
			m.mu.Lock()
			m.arena[len(m.arena)/2] ^= 0x01
			m.mu.Unlock()
			if _, _, _, _, err := m.get([]byte("k"), MaxSeq); err == nil {
				t.Error("tampered host value went undetected")
			}
		})
	}
}

func TestMemTableEncryptedArenaConfidential(t *testing.T) {
	m := newTestMemTable(t, seal.LevelEncrypted, nil)
	secret := []byte("do-not-leak-this-value-bytes")
	m.add(1, KindSet, []byte("k"), secret)
	m.mu.Lock()
	leak := bytes.Contains(m.arena, secret)
	m.mu.Unlock()
	if leak {
		t.Error("plaintext value in host arena at encrypted level")
	}
}

func TestMemTableIteratorOrder(t *testing.T) {
	m := newTestMemTable(t, seal.LevelEncrypted, nil)
	for i, k := range []string{"cherry", "apple", "banana"} {
		m.add(uint64(i+1), KindSet, []byte(k), []byte(k+"-v"))
	}
	it := m.newIterator()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		uk, _, _ := parseIKey(it.Key())
		v, err := it.Value()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(uk)+"="+string(v))
	}
	want := "[apple=apple-v banana=banana-v cherry=cherry-v]"
	if fmt.Sprint(got) != want {
		t.Errorf("iteration = %v, want %v", got, want)
	}
}
