package lsm

import (
	"fmt"
	"math/rand"
	"testing"

	"treaty/internal/seal"
)

// TestDBModelEquivalence drives the engine with a long random operation
// sequence (puts, deletes, overwrites, flushes, restarts) and checks the
// final state — via Get and via full iteration — against an in-memory
// model map.
func TestDBModelEquivalence(t *testing.T) {
	for _, level := range levelsUnderTest() {
		t.Run(level.String(), func(t *testing.T) {
			dir := t.TempDir()
			key := testKey(t)
			tc := newTestCounters()
			opt := Options{
				Dir: dir, Level: level, Key: key,
				Counters:     tc.factory,
				MemTableSize: 32 << 10, // frequent flushes
				L0Trigger:    2,
			}
			db, err := Open(opt)
			if err != nil {
				t.Fatal(err)
			}

			model := make(map[string]string)
			rng := rand.New(rand.NewSource(99))
			const ops = 3000
			for i := 0; i < ops; i++ {
				switch r := rng.Intn(100); {
				case r < 60: // put
					k := fmt.Sprintf("key-%03d", rng.Intn(300))
					v := fmt.Sprintf("val-%d-%d", i, rng.Intn(1000))
					b := NewBatch()
					b.Put([]byte(k), []byte(v))
					if _, _, err := db.Apply(b); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case r < 80: // delete
					k := fmt.Sprintf("key-%03d", rng.Intn(300))
					b := NewBatch()
					b.Delete([]byte(k))
					if _, _, err := db.Apply(b); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case r < 85: // batch of mixed ops
					b := NewBatch()
					for j := 0; j < 5; j++ {
						k := fmt.Sprintf("key-%03d", rng.Intn(300))
						if rng.Intn(2) == 0 {
							v := fmt.Sprintf("bval-%d-%d", i, j)
							b.Put([]byte(k), []byte(v))
							model[k] = v
						} else {
							b.Delete([]byte(k))
							delete(model, k)
						}
					}
					if _, _, err := db.Apply(b); err != nil {
						t.Fatal(err)
					}
				case r < 95: // point read against the model
					k := fmt.Sprintf("key-%03d", rng.Intn(300))
					v, _, found, err := db.Get([]byte(k), db.LatestSeq())
					if err != nil {
						t.Fatal(err)
					}
					want, ok := model[k]
					if ok != found || (found && string(v) != want) {
						t.Fatalf("op %d: Get(%s) = %q/%v, model %q/%v", i, k, v, found, want, ok)
					}
				case r < 98: // flush
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				default: // restart
					if err := db.Close(); err != nil {
						t.Fatal(err)
					}
					db, err = Open(opt)
					if err != nil {
						t.Fatalf("op %d: reopen: %v", i, err)
					}
				}
			}

			// Final check: every model key via Get.
			for k, want := range model {
				v, _, found, err := db.Get([]byte(k), db.LatestSeq())
				if err != nil || !found || string(v) != want {
					t.Fatalf("final Get(%s) = %q/%v/%v, want %q", k, v, found, err, want)
				}
			}
			// Full iteration matches the model exactly.
			it, err := db.NewIterator(db.LatestSeq())
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				want, ok := model[string(it.Key())]
				if !ok {
					t.Fatalf("iterator surfaced unknown key %q", it.Key())
				}
				if string(it.Value()) != want {
					t.Fatalf("iterator %q = %q, want %q", it.Key(), it.Value(), want)
				}
				seen++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if seen != len(model) {
				t.Fatalf("iterator saw %d keys, model has %d", seen, len(model))
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDBSnapshotIteratorIgnoresFutureWrites pins iterator snapshot
// semantics under concurrent-ish mutation.
func TestDBSnapshotIteratorIgnoresFutureWrites(t *testing.T) {
	db := openTestDB(t, t.TempDir(), seal.LevelEncrypted, testKey(t), nil)
	defer db.Close()
	for i := 0; i < 50; i++ {
		put(t, db, fmt.Sprintf("k%02d", i), "old")
	}
	snap := db.LatestSeq()
	for i := 0; i < 50; i++ {
		put(t, db, fmt.Sprintf("k%02d", i), "new")
	}
	it, err := db.NewIterator(snap)
	if err != nil {
		t.Fatal(err)
	}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Value()) != "old" {
			t.Fatalf("snapshot iterator saw %q for %q", it.Value(), it.Key())
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}
