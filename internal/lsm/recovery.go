package lsm

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// Recovery (§VI): the MANIFEST is replayed first — rebuilding the SSTable
// hierarchy and loading the per-table hashes used to verify reads — then
// all live WALs are replayed in order to restore the MemTables, and
// prepared-but-undecided transactions are collected for the 2PC layer to
// resolve with their coordinators. At secure levels every log is checked
// for freshness and state continuity against its trusted counter:
//
//   - entries beyond the counter's stable value are an unstabilized tail
//     (never acknowledged) and are discarded;
//   - a log ending before the stable value means rollback-protected
//     entries are missing: ErrRollbackDetected;
//   - hash-chain or counter-sequence violations mean splicing/reordering:
//     the corresponding codec errors surface.
func (db *DB) recover() error {
	secure := db.opt.Level >= seal.LevelIntegrity

	// 1. MANIFEST.
	mctr := db.opt.Counters("MANIFEST-000001")
	maxStable := int64(-1)
	if secure {
		maxStable = int64(mctr.StableValue())
	}
	edits, codec, consumed, mtorn, err := replayManifest(db.fs, db.opt.Dir, db.opt.Level, db.opt.Key, db.rt, maxStable)
	if err != nil {
		return err
	}
	if mtorn {
		db.corruptions.Add(1)
	}
	// Drop any unstabilized or crash-torn manifest tail before appending
	// again, and force the truncation: if it stayed volatile, a second
	// crash could resurrect the dropped bytes underneath freshly appended
	// edits and break the hash chain mid-file. (WAL torn tails need no
	// such fix — recovery never re-appends to an old WAL; it always
	// creates a fresh one.)
	if err := db.fs.Truncate(manifestName(db.opt.Dir), consumed); err != nil {
		return fmt.Errorf("lsm: truncating manifest: %w", err)
	}
	if err := vfs.SyncPath(db.fs, manifestName(db.opt.Dir)); err != nil {
		return fmt.Errorf("lsm: syncing truncated manifest: %w", err)
	}
	if err := db.fs.SyncDir(db.opt.Dir); err != nil {
		return fmt.Errorf("lsm: syncing dir after manifest truncate: %w", err)
	}

	v := &version{}
	var logNumber, lastSeq uint64
	for _, e := range edits {
		v.apply(e)
		if e.logNumber > logNumber {
			logNumber = e.logNumber
		}
		if e.nextFile > db.nextFile {
			db.nextFile = e.nextFile
		}
		if e.lastSeq > lastSeq {
			lastSeq = e.lastSeq
		}
	}
	db.current = v
	db.lastSeq.Store(lastSeq)

	m, err := openManifestForAppend(db.fs, db.opt.Dir, codec, db.rt, mctr)
	if err != nil {
		return err
	}
	db.manifest = m

	// Verify the recovered tables exist (their content hashes are checked
	// lazily on first read against the manifest-recorded index hash).
	for lv := range v.files {
		for _, f := range v.files[lv] {
			if _, err := db.fs.Stat(sstFileName(db.opt.Dir, f.number)); err != nil {
				return fmt.Errorf("%w: sstable %06d missing", ErrRollbackDetected, f.number)
			}
		}
	}

	// 2. Live WALs, in file-number order.
	walNums, err := listWALs(db.fs, db.opt.Dir)
	if err != nil {
		return err
	}
	// Never reuse an on-disk file number, even if the manifest checkpoint
	// is stale (crash between WAL rotation and the next manifest edit).
	for _, n := range walNums {
		if n >= db.nextFile {
			db.nextFile = n + 1
		}
	}

	type decided struct{ commit bool }
	preparedByID := make(map[TxID]*Batch)
	decisions := make(map[TxID]decided)

	for _, num := range walNums {
		if num < logNumber {
			// Obsolete WAL whose memtable was flushed; it survived only
			// because its deletion had not stabilized. Remove it now.
			db.obsolete = append(db.obsolete, obsoleteFile{path: walFileName(db.opt.Dir, num)})
			continue
		}
		name := filepath.Base(walFileName(db.opt.Dir, num))
		wctr := db.opt.Counters(name)
		walStable := int64(-1)
		if secure {
			walStable = int64(wctr.StableValue())
		}
		entries, wtorn, werr := readWAL(db.fs, walFileName(db.opt.Dir, num), db.opt.Level, db.opt.Key, db.rt, walStable)
		if werr != nil {
			return werr
		}
		if wtorn {
			db.corruptions.Add(1)
		}
		mem := newMemTable(db.opt.Level, db.rt, db.memCipher, num)
		for _, e := range entries {
			switch e.kind {
			case walKindBatch:
				recs, derr := decodeBatch(e.payload)
				if derr != nil {
					return derr
				}
				base := db.lastSeq.Load() + 1
				applyToMemTable(mem, base, recs)
				db.lastSeq.Store(base + uint64(len(recs)) - 1)
			case walKindPrepare:
				if len(e.payload) < 16 {
					return ErrCorruptBatch
				}
				var id TxID
				copy(id[:], e.payload[:16])
				b := NewBatch()
				recs, derr := decodeBatch(e.payload[16:])
				if derr != nil {
					return derr
				}
				for _, r := range recs {
					if r.kind == KindSet {
						b.Put(r.key, r.value)
					} else {
						b.Delete(r.key)
					}
				}
				preparedByID[id] = b
			case walKindTxDecision:
				if len(e.payload) < 17 {
					return ErrCorruptBatch
				}
				var id TxID
				copy(id[:], e.payload[:16])
				decisions[id] = decided{commit: e.payload[16] == 1}
			}
		}
		if mem.entries() > 0 {
			db.imm = append(db.imm, mem)
		} else {
			mem.release()
		}
	}

	// Prepared transactions without a decision must be re-initialized;
	// the 2PC layer asks their coordinators to commit or abort (§VI).
	for id, b := range preparedByID {
		if _, ok := decisions[id]; ok {
			continue
		}
		db.prepared = append(db.prepared, PreparedTx{ID: id, Batch: b})
	}
	sort.Slice(db.prepared, func(i, j int) bool {
		return string(db.prepared[i].ID[:]) < string(db.prepared[j].ID[:])
	})

	// 3. Fresh WAL for new writes.
	if err := db.newWALLocked(db.allocFileLocked()); err != nil {
		return err
	}
	if _, err := db.manifest.append(&versionEdit{
		logNumber: db.wal.number,
		nextFile:  db.nextFile,
	}); err != nil {
		return err
	}
	// Recovered memtables flush in the background.
	if len(db.imm) > 0 {
		defer db.scheduleBG()
	}
	return nil
}

// listWALs returns the wal file numbers in dir, ascending.
func listWALs(fs vfs.FS, dir string) ([]uint64, error) {
	des, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lsm: listing dir: %w", err)
	}
	var nums []uint64
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if perr != nil {
			continue
		}
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums, nil
}

// NewIterator returns a snapshot iterator over the whole database at
// readSeq (use LatestSeq for "now"). The iterator observes a consistent
// version of the table hierarchy.
func (db *DB) NewIterator(readSeq uint64) (*Iterator, error) {
	db.mu.Lock()
	mem := db.mem
	imms := append([]*memTable(nil), db.imm...)
	ver := db.current
	db.mu.Unlock()

	iters := []internalIterator{mem.newIterator()}
	for i := len(imms) - 1; i >= 0; i-- {
		iters = append(iters, imms[i].newIterator())
	}
	for lv := range ver.files {
		for _, f := range ver.files[lv] {
			r, err := db.reader(f)
			if err != nil {
				return nil, err
			}
			iters = append(iters, r.newIterator())
		}
	}
	return newIterator(newMergeIterator(iters), readSeq), nil
}
