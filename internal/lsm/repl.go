package lsm

import "fmt"

// Replication surface: the DB exposes the exact records it appends to
// the WAL — kind, log-codec counter, raw payload — to an optional Ship
// hook so a replication shipper can forward each fsynced group to a
// backup before the group's counters stabilize. The payloads are the
// WAL's own record payloads; a backup that mirrors them byte-for-byte
// can replay them through the same state machine recovery uses.

// Exported WAL record kinds, for replication consumers that replay
// mirrored records outside this package.
const (
	// WALKindBatch is a committed write batch (payload: encoded batch).
	WALKindBatch = walKindBatch
	// WALKindPrepare is a 2PC prepared transaction (payload: 16-byte
	// txid followed by the encoded batch).
	WALKindPrepare = walKindPrepare
	// WALKindTxDecision resolves a prepared transaction (payload:
	// 16-byte txid followed by a commit byte).
	WALKindTxDecision = walKindTxDecision
)

// ReplEntry is one staged log record handed to the Ship hook. Payload
// aliases the WAL's staging buffer and is valid only for the duration
// of the Ship call; implementations that retain it must copy.
type ReplEntry struct {
	Kind    uint8
	Counter uint64
	Payload []byte
}

// DecodeBatch rebuilds a Batch from its encoded form (the payload of a
// WALKindBatch record, or the tail of a WALKindPrepare record). The
// encoding is validated record by record.
func DecodeBatch(data []byte) (*Batch, error) {
	recs, err := decodeBatch(data)
	if err != nil {
		return nil, err
	}
	b := NewBatch()
	for _, r := range recs {
		switch r.kind {
		case KindSet:
			b.Put(r.key, r.value)
		case KindDelete:
			b.Delete(r.key)
		}
	}
	return b, nil
}

// DecodePreparePayload splits a WALKindPrepare payload into the
// transaction id and its write batch.
func DecodePreparePayload(payload []byte) (TxID, *Batch, error) {
	var id TxID
	if len(payload) < len(id) {
		return id, nil, fmt.Errorf("lsm: short prepare payload (%d bytes)", len(payload))
	}
	copy(id[:], payload)
	b, err := DecodeBatch(payload[len(id):])
	if err != nil {
		return id, nil, err
	}
	return id, b, nil
}

// DecodeDecisionPayload splits a WALKindTxDecision payload into the
// transaction id and the commit/abort verdict.
func DecodeDecisionPayload(payload []byte) (TxID, bool, error) {
	var id TxID
	if len(payload) != len(id)+1 {
		return id, false, fmt.Errorf("lsm: bad decision payload length %d", len(payload))
	}
	copy(id[:], payload)
	return id, payload[len(id)] != 0, nil
}
