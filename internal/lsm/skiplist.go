package lsm

import (
	"math/rand"
	"sync/atomic"
	"unsafe"
)

// skipList is a concurrent skip list over internal keys supporting
// lock-free reads and CAS-based parallel inserts — the paper's "MemTable
// skip list that supports parallel updates for concurrent Tx processing"
// (§VII-B). Keys are never deleted (the MemTable is immutable once
// flushed), which keeps the lock-free insert simple and correct.
type skipList struct {
	head   *slNode
	height atomic.Int32
	seed   atomic.Uint64
	// size tracks approximate memory footprint (keys + node overhead).
	size atomic.Int64
	// count tracks the number of entries.
	count atomic.Int64
}

const slMaxHeight = 16

// slNode is one skip-list node. value is the MemTable's ValueHandle,
// immutable after insert.
type slNode struct {
	key   []byte
	value valueHandle
	// next[i] is the next node at level i, accessed atomically.
	next []unsafe.Pointer
}

// loadNext atomically loads the successor at level h.
func (n *slNode) loadNext(h int) *slNode {
	return (*slNode)(atomic.LoadPointer(&n.next[h]))
}

// casNext atomically installs the successor at level h.
func (n *slNode) casNext(h int, old, new *slNode) bool {
	return atomic.CompareAndSwapPointer(&n.next[h], unsafe.Pointer(old), unsafe.Pointer(new))
}

// newSkipList creates an empty list.
func newSkipList() *skipList {
	sl := &skipList{
		head: &slNode{next: make([]unsafe.Pointer, slMaxHeight)},
	}
	sl.height.Store(1)
	sl.seed.Store(rand.Uint64() | 1)
	return sl
}

// randomHeight draws a geometric height (p = 1/4, like LevelDB).
func (sl *skipList) randomHeight() int {
	// xorshift64 on an atomic seed: fast and contention-tolerant.
	for {
		old := sl.seed.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if sl.seed.CompareAndSwap(old, x) {
			h := 1
			for h < slMaxHeight && x&3 == 0 {
				h++
				x >>= 2
			}
			return h
		}
	}
}

// findGreaterOrEqual returns the first node with key >= target and, if
// prev is non-nil, fills prev[i] with the rightmost node < target at each
// level.
func (sl *skipList) findGreaterOrEqual(target []byte, prev *[slMaxHeight]*slNode) *slNode {
	x := sl.head
	level := int(sl.height.Load()) - 1
	for {
		next := x.loadNext(level)
		if next != nil && compareIKeys(next.key, target) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// insert adds key (an internal key, unique by construction: every insert
// carries a fresh sequence number) with its value handle.
func (sl *skipList) insert(key []byte, value valueHandle) {
	h := sl.randomHeight()
	if cur := int(sl.height.Load()); h > cur {
		// Raise the list height; racing raisers are all fine because
		// extra height simply points from head.
		for {
			cur := sl.height.Load()
			if int(cur) >= h || sl.height.CompareAndSwap(cur, int32(h)) {
				break
			}
		}
	}
	node := &slNode{key: key, value: value, next: make([]unsafe.Pointer, h)}
	var prev [slMaxHeight]*slNode
	for level := 0; level < h; level++ {
		for {
			sl.findGreaterOrEqual(key, &prev)
			p := prev[level]
			if p == nil {
				p = sl.head
			}
			succ := p.loadNext(level)
			// Position node between p and succ at this level.
			atomic.StorePointer(&node.next[level], unsafe.Pointer(succ))
			if p.casNext(level, succ, node) {
				break
			}
			// Lost a race; recompute predecessors and retry this level.
		}
	}
	sl.size.Add(int64(len(key)) + 64)
	sl.count.Add(1)
}

// seek returns the first node with key >= target.
func (sl *skipList) seek(target []byte) *slNode {
	return sl.findGreaterOrEqual(target, nil)
}

// first returns the first node.
func (sl *skipList) first() *slNode { return sl.head.loadNext(0) }

// approximateSize returns the tracked memory footprint in bytes.
func (sl *skipList) approximateSize() int64 { return sl.size.Load() }

// entries returns the number of inserted entries.
func (sl *skipList) entries() int64 { return sl.count.Load() }

// slIterator walks a skip list in key order.
type slIterator struct {
	sl   *skipList
	node *slNode
}

// iterator returns a new iterator positioned before the first entry.
func (sl *skipList) iterator() *slIterator { return &slIterator{sl: sl} }

// SeekToFirst positions at the first entry.
func (it *slIterator) SeekToFirst() { it.node = it.sl.first() }

// Seek positions at the first entry with key >= target.
func (it *slIterator) Seek(target []byte) { it.node = it.sl.seek(target) }

// Valid reports whether the iterator is positioned at an entry.
func (it *slIterator) Valid() bool { return it.node != nil }

// Next advances the iterator.
func (it *slIterator) Next() { it.node = it.node.loadNext(0) }

// Key returns the current internal key.
func (it *slIterator) Key() []byte { return it.node.key }

// Value returns the current value handle.
func (it *slIterator) Value() valueHandle { return it.node.value }
