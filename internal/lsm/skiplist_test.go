package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestIKeyRoundTrip(t *testing.T) {
	f := func(key []byte, seq uint64) bool {
		seq %= MaxSeq
		for _, kind := range []RecordKind{KindSet, KindDelete} {
			ik := makeIKey(key, seq, kind)
			uk, s, k := parseIKey(ik)
			if !bytes.Equal(uk, key) || s != seq || k != kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIKeyOrdering(t *testing.T) {
	// Same user key: newer sequence sorts first.
	a := makeIKey([]byte("k"), 10, KindSet)
	b := makeIKey([]byte("k"), 5, KindSet)
	if compareIKeys(a, b) >= 0 {
		t.Error("newer version must sort before older")
	}
	// Different user keys: lexicographic.
	c := makeIKey([]byte("a"), 1, KindSet)
	d := makeIKey([]byte("b"), 100, KindSet)
	if compareIKeys(c, d) >= 0 {
		t.Error("user key order must dominate")
	}
	// Prefix keys: shorter first.
	e := makeIKey([]byte("ab"), 1, KindSet)
	f := makeIKey([]byte("abc"), 1, KindSet)
	if compareIKeys(e, f) >= 0 {
		t.Error("prefix must sort before extension")
	}
}

func TestSkipListInsertAndSeek(t *testing.T) {
	sl := newSkipList()
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		sl.insert(makeIKey([]byte(k), uint64(i+1), KindSet), valueHandle{off: i})
	}
	// In-order traversal must be sorted.
	it := sl.iterator()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		uk, _, _ := parseIKey(it.Key())
		got = append(got, string(uk))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("traversal = %v, want %v", got, want)
	}
	// Seek lands on the right key.
	node := sl.seek(makeIKey([]byte("bravo"), MaxSeq, RecordKind(0xFF)))
	if node == nil {
		t.Fatal("seek returned nil")
	}
	uk, _, _ := parseIKey(node.key)
	if string(uk) != "bravo" {
		t.Errorf("seek landed on %q", uk)
	}
}

func TestSkipListVersionOrdering(t *testing.T) {
	sl := newSkipList()
	for seq := uint64(1); seq <= 5; seq++ {
		sl.insert(makeIKey([]byte("key"), seq, KindSet), valueHandle{off: int(seq)})
	}
	// Seeking at read-seq 3 must find version 3 first.
	node := sl.seek(makeIKey([]byte("key"), 3, RecordKind(0xFF)))
	if node == nil {
		t.Fatal("seek returned nil")
	}
	_, seq, _ := parseIKey(node.key)
	if seq != 3 {
		t.Errorf("visible version = %d, want 3", seq)
	}
	// Seeking at MaxSeq finds the newest.
	node = sl.seek(makeIKey([]byte("key"), MaxSeq, RecordKind(0xFF)))
	_, seq, _ = parseIKey(node.key)
	if seq != 5 {
		t.Errorf("newest version = %d, want 5", seq)
	}
}

func TestSkipListConcurrentInserts(t *testing.T) {
	sl := newSkipList()
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("key-%04d", rng.Intn(10000))
				seq := uint64(w*perWriter + i + 1)
				sl.insert(makeIKey([]byte(key), seq, KindSet), valueHandle{})
			}
		}(w)
	}
	wg.Wait()
	if got := sl.entries(); got != writers*perWriter {
		t.Fatalf("entries = %d, want %d", got, writers*perWriter)
	}
	// Full traversal must be sorted and complete.
	it := sl.iterator()
	count := 0
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && compareIKeys(prev, it.Key()) >= 0 {
			t.Fatal("skip list out of order after concurrent inserts")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != writers*perWriter {
		t.Fatalf("traversed %d entries, want %d", count, writers*perWriter)
	}
}

func TestSkipListSeekBeyondEnd(t *testing.T) {
	sl := newSkipList()
	sl.insert(makeIKey([]byte("a"), 1, KindSet), valueHandle{})
	if node := sl.seek(makeIKey([]byte("z"), MaxSeq, RecordKind(0xFF))); node != nil {
		t.Error("seek past the end must return nil")
	}
}

func TestSkipListEmpty(t *testing.T) {
	sl := newSkipList()
	if sl.first() != nil {
		t.Error("empty list must have no first node")
	}
	it := sl.iterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Error("iterator over empty list must be invalid")
	}
}
