package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"

	"treaty/internal/enclave"
	"treaty/internal/lsm/blockcache"
	"treaty/internal/mempool"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// SSTable layout (SPEICHER-style authenticated table, §V-A):
//
//	[block 0][block 1]...[index][footer]
//
// Each data block holds sorted internal-key records, encrypted as a unit
// at LevelEncrypted. The index lists, per block: the offset, stored
// length, last internal key, and the SHA-256 of the *stored* block bytes
// ("a footer with the blocks' hash values"). The footer carries the
// index's offset/length and hash plus a magic. The MANIFEST records the
// footer hash of every live table, rooting the whole hierarchy's
// integrity in the (rollback-protected) manifest.

const (
	sstMagic          = 0x54524541_54590001 // "TREATY",v1
	sstFooterLen      = 8 + 8 + seal.HashSize + 8
	targetBlockSize   = 4096
	sstRecordOverhead = 2 * binary.MaxVarintLen32
)

// Errors returned by SSTable access.
var (
	// ErrSSTCorrupt indicates structural or integrity failure in a table.
	ErrSSTCorrupt = errors.New("lsm: sstable corrupt or tampered")
)

// sstFileName builds the table path for a file number.
func sstFileName(dir string, number uint64) string {
	return filepath.Join(dir, fmt.Sprintf("sst-%06d.sst", number))
}

// blockHandle locates one stored block.
type blockHandle struct {
	offset  uint64
	length  uint64
	lastKey []byte
	hash    [seal.HashSize]byte
	// crc is the CRC32 (IEEE) of the stored block bytes. The secure
	// levels verify the SHA-256 hash instead; below LevelIntegrity the
	// CRC is the corruption check (RocksDB-style block CRCs).
	crc uint32
}

// fileMeta describes one live SSTable.
type fileMeta struct {
	number     uint64
	level      int
	size       uint64
	smallest   []byte // internal keys
	largest    []byte
	footerHash [seal.HashSize]byte // hash of the index block (integrity root)
}

// sstWriter builds one table file.
type sstWriter struct {
	f      vfs.File
	fs     vfs.FS
	dir    string
	level  seal.SecurityLevel
	ciph   *seal.Cipher
	rt     *enclave.Runtime
	number uint64

	block    []byte // accumulating plaintext block records
	nblock   int
	offset   uint64
	handles  []blockHandle
	smallest []byte
	largest  []byte
	lastKey  []byte
	bloom    bloomBuilder
}

// newSSTWriter creates a table file for writing.
func newSSTWriter(fs vfs.FS, dir string, number uint64, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime) (*sstWriter, error) {
	f, err := fs.Create(sstFileName(dir, number))
	if err != nil {
		return nil, fmt.Errorf("lsm: creating sstable: %w", err)
	}
	w := &sstWriter{f: f, fs: fs, dir: dir, level: level, rt: rt, number: number}
	if level == seal.LevelEncrypted {
		ciph, err := seal.NewCipher(seal.DeriveKey(key, fmt.Sprintf("sst/%06d", number)))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("lsm: sstable cipher: %w", err)
		}
		w.ciph = ciph
	}
	if rt != nil {
		rt.Syscall()
	}
	return w, nil
}

// add appends a record; keys must arrive in strictly increasing
// internal-key order.
func (w *sstWriter) add(ikey, value []byte) error {
	if w.lastKey != nil && compareIKeys(ikey, w.lastKey) <= 0 {
		return fmt.Errorf("lsm: sstable keys out of order")
	}
	w.lastKey = append(w.lastKey[:0], ikey...)
	if w.smallest == nil {
		w.smallest = append([]byte(nil), ikey...)
	}
	w.largest = append(w.largest[:0], ikey...)
	w.bloom.add(userKeyOf(ikey))

	w.block = binary.AppendUvarint(w.block, uint64(len(ikey)))
	w.block = append(w.block, ikey...)
	w.block = binary.AppendUvarint(w.block, uint64(len(value)))
	w.block = append(w.block, value...)
	w.nblock++
	if len(w.block) >= targetBlockSize {
		return w.flushBlock()
	}
	return nil
}

// flushBlock seals and writes the accumulated block.
func (w *sstWriter) flushBlock() error {
	if w.nblock == 0 {
		return nil
	}
	stored := w.block
	if w.ciph != nil {
		stored = w.ciph.Seal(w.block, nil)
	}
	h := blockHandle{
		offset:  w.offset,
		length:  uint64(len(stored)),
		lastKey: append([]byte(nil), w.lastKey...),
		hash:    seal.Hash(stored),
		crc:     crc32.ChecksumIEEE(stored),
	}
	if w.rt != nil {
		w.rt.Syscall()
	}
	if _, err := w.f.Write(stored); err != nil {
		return fmt.Errorf("lsm: sstable block write: %w", err)
	}
	w.offset += uint64(len(stored))
	w.handles = append(w.handles, h)
	w.block = w.block[:0]
	w.nblock = 0
	return nil
}

// finish flushes the last block, writes index and footer, syncs, and
// returns the table's metadata.
func (w *sstWriter) finish() (fileMeta, error) {
	var meta fileMeta
	if err := w.flushBlock(); err != nil {
		return meta, err
	}
	// Index: count, then per block offset/length/keylen/key/hash/crc;
	// then the table's bloom filter (covered by the index hash).
	var idx []byte
	idx = binary.AppendUvarint(idx, uint64(len(w.handles)))
	for _, h := range w.handles {
		idx = binary.AppendUvarint(idx, h.offset)
		idx = binary.AppendUvarint(idx, h.length)
		idx = binary.AppendUvarint(idx, uint64(len(h.lastKey)))
		idx = append(idx, h.lastKey...)
		idx = append(idx, h.hash[:]...)
		idx = binary.LittleEndian.AppendUint32(idx, h.crc)
	}
	filter := w.bloom.build()
	idx = binary.AppendUvarint(idx, uint64(len(filter)))
	idx = append(idx, filter...)
	idxStored := idx
	if w.ciph != nil {
		idxStored = w.ciph.Seal(idx, nil)
	}
	idxHash := seal.Hash(idxStored)

	footer := make([]byte, sstFooterLen)
	binary.LittleEndian.PutUint64(footer[0:], w.offset)
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(idxStored)))
	copy(footer[16:], idxHash[:])
	binary.LittleEndian.PutUint64(footer[16+seal.HashSize:], sstMagic)

	if w.rt != nil {
		w.rt.Syscalls(2)
	}
	if _, err := w.f.Write(idxStored); err != nil {
		return meta, fmt.Errorf("lsm: sstable index write: %w", err)
	}
	if _, err := w.f.Write(footer); err != nil {
		return meta, fmt.Errorf("lsm: sstable footer write: %w", err)
	}
	if w.rt != nil {
		w.rt.Syscall()
	}
	if err := w.f.Sync(); err != nil {
		return meta, fmt.Errorf("lsm: sstable sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return meta, fmt.Errorf("lsm: sstable close: %w", err)
	}
	// Make the table's directory entry durable before the manifest edit
	// that references it can be written: a post-crash recovery must never
	// see a manifest pointing at a missing file.
	if err := w.fs.SyncDir(w.dir); err != nil {
		return meta, fmt.Errorf("lsm: syncing dir after sstable: %w", err)
	}
	meta = fileMeta{
		number:     w.number,
		size:       w.offset + uint64(len(idxStored)) + sstFooterLen,
		smallest:   w.smallest,
		largest:    w.largest,
		footerHash: idxHash,
	}
	return meta, nil
}

// entryCount returns the records added so far plus buffered.
func (w *sstWriter) empty() bool { return w.nblock == 0 && len(w.handles) == 0 }

// abort removes a partially written table.
func (w *sstWriter) abort() {
	w.f.Close()
	w.fs.Remove(sstFileName(w.dir, w.number))
}

// sstReader reads one table with integrity verification. Readers verify
// the index against the manifest-recorded hash at open, and every block
// against the index hash on access, inside the enclave.
type sstReader struct {
	f       vfs.File
	level   seal.SecurityLevel
	ciph    *seal.Cipher
	rt      *enclave.Runtime
	number  uint64
	handles []blockHandle
	filter  []byte

	// bloom hit-rate counters, shared across the DB's readers (set by
	// db.reader; nil-safe no-ops when metrics are off).
	bloomChecks    *obs.Counter
	bloomNegatives *obs.Counter

	// cache holds verified+decrypted block plaintext, shared across the
	// DB's readers (set by db.reader; nil = caching disabled, and every
	// method on it is nil-safe).
	cache *blockcache.Cache
	// pool recycles the ciphertext staging buffer of readBlock (set by
	// db.reader; nil = plain allocations).
	pool *mempool.Pool
}

// openSST opens a table and verifies its index against wantHash (from the
// MANIFEST). A zero wantHash skips the check (native mode).
func openSST(fs vfs.FS, dir string, number uint64, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime, wantHash [seal.HashSize]byte) (*sstReader, error) {
	f, err := fs.Open(sstFileName(dir, number))
	if err != nil {
		return nil, fmt.Errorf("lsm: opening sstable: %w", err)
	}
	r := &sstReader{f: f, level: level, rt: rt, number: number}
	if level == seal.LevelEncrypted {
		ciph, cerr := seal.NewCipher(seal.DeriveKey(key, fmt.Sprintf("sst/%06d", number)))
		if cerr != nil {
			f.Close()
			return nil, cerr
		}
		r.ciph = ciph
	}
	if err := r.readIndex(wantHash); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// readIndex loads and verifies the footer and index.
func (r *sstReader) readIndex(wantHash [seal.HashSize]byte) error {
	if r.rt != nil {
		r.rt.Syscalls(2)
	}
	st, err := r.f.Stat()
	if err != nil {
		return fmt.Errorf("lsm: sstable stat: %w", err)
	}
	if st.Size() < sstFooterLen {
		return fmt.Errorf("%w: too small", ErrSSTCorrupt)
	}
	footer := make([]byte, sstFooterLen)
	if _, err := r.f.ReadAt(footer, st.Size()-sstFooterLen); err != nil {
		return fmt.Errorf("lsm: sstable footer read: %w", err)
	}
	if binary.LittleEndian.Uint64(footer[16+seal.HashSize:]) != sstMagic {
		return fmt.Errorf("%w: bad magic", ErrSSTCorrupt)
	}
	idxOff := binary.LittleEndian.Uint64(footer[0:])
	idxLen := binary.LittleEndian.Uint64(footer[8:])
	var idxHash [seal.HashSize]byte
	copy(idxHash[:], footer[16:])
	if idxOff+idxLen+sstFooterLen != uint64(st.Size()) {
		return fmt.Errorf("%w: inconsistent footer", ErrSSTCorrupt)
	}

	idxStored := make([]byte, idxLen)
	if r.rt != nil {
		r.rt.Syscall()
	}
	if _, err := r.f.ReadAt(idxStored, int64(idxOff)); err != nil {
		return fmt.Errorf("lsm: sstable index read: %w", err)
	}
	if seal.Hash(idxStored) != idxHash {
		return fmt.Errorf("%w: index hash mismatch", ErrSSTCorrupt)
	}
	if wantHash != ([seal.HashSize]byte{}) && idxHash != wantHash {
		// The file's self-consistent index does not match what the
		// MANIFEST recorded: the whole table was substituted.
		return fmt.Errorf("%w: table %06d does not match manifest", ErrSSTCorrupt, r.number)
	}
	idx := idxStored
	if r.ciph != nil {
		plain, derr := r.ciph.Open(idxStored, nil)
		if derr != nil {
			return fmt.Errorf("%w: index decrypt", ErrSSTCorrupt)
		}
		idx = plain
	}

	// Parse the index.
	off := 0
	n, c := binary.Uvarint(idx[off:])
	if c <= 0 {
		return fmt.Errorf("%w: index count", ErrSSTCorrupt)
	}
	off += c
	handles := make([]blockHandle, 0, n)
	for i := uint64(0); i < n; i++ {
		var h blockHandle
		v, c := binary.Uvarint(idx[off:])
		if c <= 0 {
			return fmt.Errorf("%w: index entry", ErrSSTCorrupt)
		}
		h.offset = v
		off += c
		v, c = binary.Uvarint(idx[off:])
		if c <= 0 {
			return fmt.Errorf("%w: index entry", ErrSSTCorrupt)
		}
		h.length = v
		off += c
		klen, c := binary.Uvarint(idx[off:])
		if c <= 0 || off+c+int(klen)+seal.HashSize+4 > len(idx) {
			return fmt.Errorf("%w: index entry", ErrSSTCorrupt)
		}
		off += c
		h.lastKey = append([]byte(nil), idx[off:off+int(klen)]...)
		off += int(klen)
		copy(h.hash[:], idx[off:])
		off += seal.HashSize
		h.crc = binary.LittleEndian.Uint32(idx[off:])
		off += 4
		handles = append(handles, h)
	}
	r.handles = handles
	// Bloom filter (present in every table this engine writes).
	if off < len(idx) {
		flen, c := binary.Uvarint(idx[off:])
		if c <= 0 || off+c+int(flen) > len(idx) {
			return fmt.Errorf("%w: filter block", ErrSSTCorrupt)
		}
		off += c
		r.filter = append([]byte(nil), idx[off:off+int(flen)]...)
	}
	return nil
}

// readBlock loads, verifies, and decrypts block i from storage. The
// returned slice is freshly owned by the caller and never aliases the
// (recycled) staging buffer. For the cached path use block().
func (r *sstReader) readBlock(i int) ([]byte, error) {
	h := r.handles[i]
	// The on-disk bytes are untrusted media: stage them in a pooled
	// host-region buffer (ciphertext / unverified data needs no EPC
	// residency) instead of a fresh allocation per read.
	var staged *mempool.Buf
	var stored []byte
	if r.pool != nil {
		staged = r.pool.Alloc(int(h.length), mempool.RegionHost)
		stored = staged.Data
	} else {
		stored = make([]byte, h.length)
	}
	release := func() {
		if staged != nil {
			r.pool.Free(staged)
		}
	}
	if r.rt != nil {
		r.rt.Syscall()
	}
	if _, err := r.f.ReadAt(stored, int64(h.offset)); err != nil {
		release()
		return nil, fmt.Errorf("lsm: sstable block read: %w", err)
	}
	if r.level >= seal.LevelIntegrity {
		if seal.Hash(stored) != h.hash {
			release()
			return nil, fmt.Errorf("%w: block %d hash mismatch", ErrSSTCorrupt, i)
		}
	} else {
		// Native mode verifies the per-block CRC carried in the index,
		// mirroring RocksDB block checksums: corruption is detected, but
		// (unlike the secure levels) a forger who can rewrite the index
		// is not defended against.
		if crc32.ChecksumIEEE(stored) != h.crc {
			release()
			return nil, fmt.Errorf("%w: block %d crc mismatch", ErrSSTCorrupt, i)
		}
	}
	if r.ciph != nil {
		plain, err := r.ciph.Open(stored, nil)
		release()
		if err != nil {
			return nil, fmt.Errorf("%w: block %d decrypt", ErrSSTCorrupt, i)
		}
		return plain, nil
	}
	if staged != nil {
		// The staging buffer goes back to the pool: hand out a stable copy.
		plain := append([]byte(nil), stored...)
		release()
		return plain, nil
	}
	return stored, nil
}

// block returns the verified plaintext of block i, consulting the block
// cache first. fill controls insertion on miss: the point-lookup path
// fills (its reuse distance is what the cache exists for), while the
// scan paths (iterators, compaction) only take hits — a sequential scan
// would otherwise wipe the cache's working set and churn EPC accounting
// for blocks read exactly once. The returned slice is shared and
// immutable when it came from (or was inserted into) the cache: callers
// must treat it as read-only.
func (r *sstReader) block(i int, fill bool) ([]byte, error) {
	if data, ok := r.cache.Get(r.number, i); ok {
		return data, nil
	}
	data, err := r.readBlock(i)
	if err != nil {
		return nil, err
	}
	if fill {
		// Insert only after hash/CRC verification and decryption have
		// succeeded (readBlock returned): the cache holds authenticated
		// plaintext only. Put takes ownership; data is never written
		// after this point (blockIter and get only read it).
		r.cache.Put(r.number, i, data)
	}
	return data, nil
}

// get looks up the newest record with user key == userKey and seq <=
// readSeq in this table.
func (r *sstReader) get(userKey []byte, readSeq uint64) (value []byte, seq uint64, kind RecordKind, ok bool, err error) {
	if r.filter != nil {
		r.bloomChecks.Inc()
		if !bloomMayContain(r.filter, userKey) {
			r.bloomNegatives.Inc()
			return nil, 0, 0, false, nil // definitive negative, no I/O
		}
	}
	target := makeIKey(userKey, readSeq, RecordKind(0xFF))
	// Find the first block whose lastKey >= target.
	i := sort.Search(len(r.handles), func(i int) bool {
		return compareIKeys(r.handles[i].lastKey, target) >= 0
	})
	if i >= len(r.handles) {
		return nil, 0, 0, false, nil
	}
	block, err := r.block(i, true)
	if err != nil {
		return nil, 0, 0, false, err
	}
	var it blockIter
	it.reset(block)
	for it.next() {
		if compareIKeys(it.ikey, target) < 0 {
			continue
		}
		uk, s, k := parseIKey(it.ikey)
		if !bytes.Equal(uk, userKey) {
			return nil, 0, 0, false, nil
		}
		return append([]byte(nil), it.value...), s, k, true, nil
	}
	if it.err != nil {
		// The block passed its hash/CRC check but a record failed to
		// decode: structural corruption inside a verified block. Surface
		// it — the earlier code swallowed iterator errors here and went
		// on to read the next block.
		return nil, 0, 0, false, fmt.Errorf("%w: block %d record decode", ErrSSTCorrupt, i)
	}
	// A clean scan cannot end here without having seen a record >= target:
	// handles[i].lastKey is the exact internal key of block i's final
	// record, and sort.Search established lastKey >= target, so the final
	// record itself satisfies the comparison. (The earlier code read block
	// i+1 here "for sparse keys" — an unreachable case that cost a second
	// block read exactly when the block was corrupt.)
	return nil, 0, 0, false, nil
}

// close releases the reader.
func (r *sstReader) close() error { return r.f.Close() }

// blockIter walks one decoded block's records. It never mutates the
// block bytes, so it is safe over a shared cached block. The zero value
// is an exhausted iterator; reset() re-aims an existing one at a new
// block without allocating (the hot paths keep one per lookup/scan).
type blockIter struct {
	data  []byte
	off   int
	ikey  []byte
	value []byte
	err   error
}

// reset re-points the iterator at block, clearing all state.
func (it *blockIter) reset(block []byte) { *it = blockIter{data: block} }

// next advances to the next record; it returns false at the end or on a
// decode error (recorded in err).
func (it *blockIter) next() bool {
	if it.off >= len(it.data) {
		return false
	}
	klen, c := binary.Uvarint(it.data[it.off:])
	if c <= 0 || it.off+c+int(klen) > len(it.data) {
		it.err = ErrSSTCorrupt
		return false
	}
	it.off += c
	it.ikey = it.data[it.off : it.off+int(klen)]
	it.off += int(klen)
	vlen, c := binary.Uvarint(it.data[it.off:])
	if c <= 0 || it.off+c+int(vlen) > len(it.data) {
		it.err = ErrSSTCorrupt
		return false
	}
	it.off += c
	it.value = it.data[it.off : it.off+int(vlen)]
	it.off += int(vlen)
	return true
}

// sstIterator iterates a whole table in internal-key order. Scans read
// through the cache (hits allowed) but never fill it — see block().
type sstIterator struct {
	r     *sstReader
	block int
	it    blockIter
	valid bool
	err   error
}

// newIterator returns an iterator over the table.
func (r *sstReader) newIterator() *sstIterator {
	return &sstIterator{r: r, block: -1}
}

// SeekToFirst implements internalIterator.
func (it *sstIterator) SeekToFirst() {
	it.block = -1
	it.it.reset(nil)
	it.valid = false
	it.err = nil
	it.advanceBlock()
}

// advanceBlock loads the next block and positions at its first record.
func (it *sstIterator) advanceBlock() {
	for {
		it.block++
		if it.block >= len(it.r.handles) {
			it.valid = false
			return
		}
		data, err := it.r.block(it.block, false)
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		it.it.reset(data)
		if it.it.next() {
			it.valid = true
			return
		}
	}
}

// Seek implements internalIterator.
func (it *sstIterator) Seek(target []byte) {
	it.err = nil
	i := sort.Search(len(it.r.handles), func(i int) bool {
		return compareIKeys(it.r.handles[i].lastKey, target) >= 0
	})
	if i >= len(it.r.handles) {
		it.valid = false
		return
	}
	data, err := it.r.block(i, false)
	if err != nil {
		it.err = err
		it.valid = false
		return
	}
	it.block = i
	it.it.reset(data)
	for it.it.next() {
		if compareIKeys(it.it.ikey, target) >= 0 {
			it.valid = true
			return
		}
	}
	it.advanceBlock()
}

// Valid implements internalIterator.
func (it *sstIterator) Valid() bool { return it.valid }

// Next implements internalIterator.
func (it *sstIterator) Next() {
	if !it.valid {
		return
	}
	if it.it.next() {
		return
	}
	it.advanceBlock()
}

// Key implements internalIterator.
func (it *sstIterator) Key() []byte { return it.it.ikey }

// Value implements internalIterator.
func (it *sstIterator) Value() ([]byte, error) { return it.it.value, nil }

// Err returns any I/O or integrity error hit during iteration.
func (it *sstIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.it.err
}
