package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"treaty/internal/seal"
	"treaty/internal/vfs"
)

func buildTestSST(t *testing.T, dir string, level seal.SecurityLevel, key seal.Key, n int) fileMeta {
	t.Helper()
	w, err := newSSTWriter(vfs.Default, dir, 1, level, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ik := makeIKey([]byte(fmt.Sprintf("key-%06d", i)), uint64(i+1), KindSet)
		if err := w.add(ik, []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.finish()
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestSSTWriteReadAllLevels(t *testing.T) {
	for _, level := range levelsUnderTest() {
		t.Run(level.String(), func(t *testing.T) {
			dir := t.TempDir()
			key := testKey(t)
			meta := buildTestSST(t, dir, level, key, 1000)
			r, err := openSST(vfs.Default, dir, 1, level, key, nil, meta.footerHash)
			if err != nil {
				t.Fatal(err)
			}
			defer r.close()

			for _, i := range []int{0, 1, 499, 998, 999} {
				uk := []byte(fmt.Sprintf("key-%06d", i))
				v, seq, kind, ok, err := r.get(uk, MaxSeq)
				if err != nil || !ok {
					t.Fatalf("get %s: ok=%v err=%v", uk, ok, err)
				}
				if kind != KindSet || seq != uint64(i+1) {
					t.Errorf("get %s: seq=%d kind=%d", uk, seq, kind)
				}
				if want := fmt.Sprintf("value-%06d", i); string(v) != want {
					t.Errorf("get %s = %q, want %q", uk, v, want)
				}
			}
			// Missing keys.
			if _, _, _, ok, _ := r.get([]byte("key-999999"), MaxSeq); ok {
				t.Error("phantom key found")
			}
			if _, _, _, ok, _ := r.get([]byte("aaa"), MaxSeq); ok {
				t.Error("phantom key before range found")
			}
		})
	}
}

func levelsUnderTest() []seal.SecurityLevel {
	return []seal.SecurityLevel{seal.LevelNone, seal.LevelIntegrity, seal.LevelEncrypted}
}

func testKey(t *testing.T) seal.Key {
	t.Helper()
	k, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSSTIteratorFullScan(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	meta := buildTestSST(t, dir, seal.LevelEncrypted, key, 500)
	r, err := openSST(vfs.Default, dir, 1, seal.LevelEncrypted, key, nil, meta.footerHash)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()

	it := r.newIterator()
	count := 0
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && compareIKeys(prev, it.Key()) >= 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Errorf("scanned %d records, want 500", count)
	}
}

func TestSSTIteratorSeek(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	meta := buildTestSST(t, dir, seal.LevelIntegrity, key, 300)
	r, err := openSST(vfs.Default, dir, 1, seal.LevelIntegrity, key, nil, meta.footerHash)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()

	it := r.newIterator()
	it.Seek(makeIKey([]byte("key-000150"), MaxSeq, RecordKind(0xFF)))
	if !it.Valid() {
		t.Fatal("seek missed")
	}
	uk, _, _ := parseIKey(it.Key())
	if string(uk) != "key-000150" {
		t.Errorf("seek landed on %q", uk)
	}
	// Seek past the end.
	it.Seek(makeIKey([]byte("zzz"), MaxSeq, RecordKind(0xFF)))
	if it.Valid() {
		t.Error("seek past end must be invalid")
	}
}

func TestSSTTamperedBlockDetected(t *testing.T) {
	for _, level := range []seal.SecurityLevel{seal.LevelIntegrity, seal.LevelEncrypted} {
		t.Run(level.String(), func(t *testing.T) {
			dir := t.TempDir()
			key := testKey(t)
			meta := buildTestSST(t, dir, level, key, 1000)

			// Flip one byte in the first data block.
			path := sstFileName(dir, 1)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[100] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			r, err := openSST(vfs.Default, dir, 1, level, key, nil, meta.footerHash)
			if err != nil {
				t.Fatal(err) // index is intact; open succeeds
			}
			defer r.close()
			_, _, _, _, gerr := r.get([]byte("key-000000"), MaxSeq)
			if !errors.Is(gerr, ErrSSTCorrupt) {
				t.Errorf("tampered block read: got %v, want ErrSSTCorrupt", gerr)
			}
		})
	}
}

func TestSSTTamperedIndexDetected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	meta := buildTestSST(t, dir, seal.LevelEncrypted, key, 100)
	path := sstFileName(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the index region (just before the footer).
	data[len(data)-sstFooterLen-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSST(vfs.Default, dir, 1, seal.LevelEncrypted, key, nil, meta.footerHash); !errors.Is(err, ErrSSTCorrupt) {
		t.Errorf("got %v, want ErrSSTCorrupt", err)
	}
}

func TestSSTSubstitutedTableDetected(t *testing.T) {
	// Replace a whole table with another self-consistent one: the
	// manifest-recorded hash must expose the swap.
	dir := t.TempDir()
	key := testKey(t)
	metaA := buildTestSST(t, dir, seal.LevelEncrypted, key, 100)

	dirB := t.TempDir()
	w, err := newSSTWriter(vfs.Default, dirB, 1, seal.LevelEncrypted, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.add(makeIKey([]byte("evil"), 1, KindSet), []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.finish(); err != nil {
		t.Fatal(err)
	}
	// Swap B's file into A's place.
	if err := os.Rename(sstFileName(dirB, 1), sstFileName(dir, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := openSST(vfs.Default, dir, 1, seal.LevelEncrypted, key, nil, metaA.footerHash); !errors.Is(err, ErrSSTCorrupt) {
		t.Errorf("substituted table: got %v, want ErrSSTCorrupt", err)
	}
}

func TestSSTEncryptedConfidential(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	w, err := newSSTWriter(vfs.Default, dir, 1, seal.LevelEncrypted, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("super-secret-value-payload")
	if err := w.add(makeIKey([]byte("k"), 1, KindSet), secret); err != nil {
		t.Fatal(err)
	}
	if _, err := w.finish(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(sstFileName(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Error("plaintext value leaked into encrypted sstable")
	}
	if bytes.Contains(raw, []byte("k")) && len(raw) < 100 {
		t.Error("suspiciously small file")
	}
}

func TestSSTRejectsOutOfOrderKeys(t *testing.T) {
	dir := t.TempDir()
	w, err := newSSTWriter(vfs.Default, dir, 1, seal.LevelNone, seal.Key{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.add(makeIKey([]byte("b"), 1, KindSet), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.add(makeIKey([]byte("a"), 1, KindSet), nil); err == nil {
		t.Error("out-of-order add must fail")
	}
	w.abort()
}

func TestSSTMetaRange(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t)
	meta := buildTestSST(t, dir, seal.LevelEncrypted, key, 10)
	if uk := string(userKeyOf(meta.smallest)); uk != "key-000000" {
		t.Errorf("smallest = %q", uk)
	}
	if uk := string(userKeyOf(meta.largest)); uk != "key-000009" {
		t.Errorf("largest = %q", uk)
	}
	if meta.size == 0 {
		t.Error("size must be recorded")
	}
}
