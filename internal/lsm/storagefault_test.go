package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

func faultTestKey() seal.Key {
	var k seal.Key
	for i := range k {
		k[i] = byte(i*3 + 1)
	}
	return k
}

var allLevels = []struct {
	name  string
	level seal.SecurityLevel
}{
	{"none", seal.LevelNone},
	{"integrity", seal.LevelIntegrity},
	{"encrypted", seal.LevelEncrypted},
}

// TestWALTornTailRecovery is the torn-tail property test: a WAL holding
// N records is truncated at EVERY byte offset of its final record, and
// replay at every security level must either drop the torn record
// cleanly (recovering exactly N-1 intact entries) or — when the trusted
// counter proves the record was acknowledged — refuse recovery with
// ErrRollbackDetected. No truncation point may yield garbage entries or
// a spurious integrity error.
func TestWALTornTailRecovery(t *testing.T) {
	const n = 4
	for _, lv := range allLevels {
		lv := lv
		t.Run(lv.name, func(t *testing.T) {
			// Build the reference log once, recording each record's end
			// offset.
			fs := vfs.NewMemFS()
			if err := fs.MkdirAll("/w", 0o755); err != nil {
				t.Fatal(err)
			}
			w, err := createWAL(fs, "/w", 1, lv.level, faultTestKey(), nil, NewImmediateCounter())
			if err != nil {
				t.Fatal(err)
			}
			path := walFileName("/w", 1)
			payloads := make([][]byte, n)
			ends := make([]int, n)
			for i := 0; i < n; i++ {
				payloads[i] = []byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", 20+i)))
				if _, err := w.append(walKindBatch, payloads[i]); err != nil {
					t.Fatal(err)
				}
				full, err := fs.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				ends[i] = len(full)
			}
			if err := w.sync(); err != nil {
				t.Fatal(err)
			}
			full, _ := fs.ReadFile(path)

			secureStable := func(v int64) int64 {
				if lv.level == seal.LevelNone {
					return -1
				}
				return v
			}

			for cut := ends[n-2]; cut <= ends[n-1]; cut++ {
				img := vfs.NewMemFS()
				img.MkdirAll("/w", 0o755)
				f, _ := img.Create(path)
				f.Write(full[:cut])
				f.Sync()
				img.SyncDir("/w")

				// Counter stable at N-1: the final record was never
				// acknowledged, so any tear inside it must be dropped
				// cleanly.
				entries, torn, err := readWAL(img, path, lv.level, faultTestKey(), nil, secureStable(n-1))
				if err != nil {
					t.Fatalf("cut=%d: unexpected error: %v", cut, err)
				}
				// At secure levels maxStable=N-1 also bounds an INTACT log:
				// record N is an unstabilized tail and is dropped even when
				// every byte of it survived.
				wantEntries := n - 1
				if cut == ends[n-1] && lv.level == seal.LevelNone {
					wantEntries = n
				}
				if len(entries) != wantEntries {
					t.Fatalf("cut=%d: recovered %d entries, want %d", cut, len(entries), wantEntries)
				}
				if torn != (cut > ends[n-2] && cut < ends[n-1]) {
					t.Fatalf("cut=%d: torn=%v", cut, torn)
				}
				for i, e := range entries {
					if string(e.payload) != string(payloads[i]) {
						t.Fatalf("cut=%d: entry %d replayed as garbage", cut, i)
					}
				}

				// Counter stable at N: the final record was acknowledged;
				// losing any byte of it is a rollback, not a tear.
				if lv.level != seal.LevelNone && cut < ends[n-1] {
					_, _, err := readWAL(img, path, lv.level, faultTestKey(), nil, int64(n))
					if !errors.Is(err, ErrRollbackDetected) {
						t.Fatalf("cut=%d: acked tail loss not flagged: %v", cut, err)
					}
				}
			}

			// Garbage appended past the last synced record is a crash
			// artifact outside the protected region: dropped, flagged torn.
			img := vfs.NewMemFS()
			img.MkdirAll("/w", 0o755)
			f, _ := img.Create(path)
			f.Write(append(append([]byte(nil), full...), []byte("garbage-tail-NOT-a-record")...))
			f.Sync()
			img.SyncDir("/w")
			entries, torn, err := readWAL(img, path, lv.level, faultTestKey(), nil, secureStable(n))
			if err != nil {
				t.Fatalf("garbage tail: %v", err)
			}
			if len(entries) != n || !torn {
				t.Fatalf("garbage tail: %d entries, torn=%v", len(entries), torn)
			}
		})
	}
}

// TestWALSyncFailureFailStop is the fail-stop regression: after one
// injected fsync failure the engine must refuse every later commit with
// a sticky ErrLogPoisoned (retrying would splice the log across the
// dropped tail), and a reboot must recover exactly the pre-failure
// state.
func TestWALSyncFailureFailStop(t *testing.T) {
	mem := vfs.NewMemFS()
	ff := vfs.NewFaultFS(mem)
	db, err := Open(Options{Dir: "/db", FS: ff, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}

	good := NewBatch()
	good.Put([]byte("committed"), []byte("v1"))
	if _, _, err := db.Apply(good); err != nil {
		t.Fatal(err)
	}

	ff.FailNextSyncs(1)
	bad := NewBatch()
	bad.Put([]byte("lost"), []byte("v2"))
	if _, _, err := db.Apply(bad); err == nil {
		t.Fatal("commit acknowledged over a failed fsync")
	}

	// Faults are gone, but the handle is poisoned: no later commit may be
	// acknowledged, even though the device recovered.
	after := NewBatch()
	after.Put([]byte("after"), []byte("v3"))
	if _, _, err := db.Apply(after); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("post-failure commit error = %v, want ErrLogPoisoned", err)
	}
	_ = db.Close()

	// Reboot: the pre-failure commit is there, nothing after it is.
	db2, err := Open(Options{Dir: "/db", FS: ff, SyncWAL: true})
	if err != nil {
		t.Fatalf("reboot after poisoned wal: %v", err)
	}
	defer db2.Close()
	if _, _, found, err := db2.Get([]byte("committed"), db2.LatestSeq()); err != nil || !found {
		t.Fatalf("pre-failure commit lost: found=%v err=%v", found, err)
	}
	for _, k := range []string{"lost", "after"} {
		if _, _, found, _ := db2.Get([]byte(k), db2.LatestSeq()); found {
			t.Fatalf("unacknowledged key %q resurrected", k)
		}
	}
	b := NewBatch()
	b.Put([]byte("fresh"), []byte("v4"))
	if _, _, err := db2.Apply(b); err != nil {
		t.Fatalf("rebooted store rejects writes: %v", err)
	}
}

// TestCounterPersistFailureFailStop: a trusted counter that can no
// longer persist must fail-stop the commit path — acknowledging a commit
// whose counter binding is only in memory re-opens the lost-ack hole on
// the next reboot.
func TestCounterPersistFailureFailStop(t *testing.T) {
	mem := vfs.NewMemFS()
	ff := vfs.NewFaultFS(mem)
	if err := ff.MkdirAll("/ctr", 0o755); err != nil {
		t.Fatal(err)
	}
	counters := make(map[string]TrustedCounter)
	factory := func(name string) TrustedCounter {
		if c, ok := counters[name]; ok {
			return c
		}
		c, err := NewFileCounter(ff, filepath.Join("/ctr", name))
		if err != nil {
			t.Fatalf("counter %s: %v", name, err)
		}
		counters[name] = c
		return c
	}
	db, err := Open(Options{
		Dir: "/db", FS: ff, SyncWAL: true,
		Level: seal.LevelIntegrity, Key: faultTestKey(),
		Counters: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ok := NewBatch()
	ok.Put([]byte("k0"), []byte("v0"))
	if _, _, err := db.Apply(ok); err != nil {
		t.Fatal(err)
	}

	// Only counter-file syncs fail: the WAL itself stays healthy, so the
	// refusal below is attributable to the counter alone.
	ff.SetMatch(func(name string) bool { return strings.HasPrefix(name, "/ctr/") })
	ff.FailNextSyncs(1)
	bad := NewBatch()
	bad.Put([]byte("k1"), []byte("v1"))
	if _, _, err := db.Apply(bad); err == nil {
		t.Fatal("commit acknowledged with an unpersistable trusted counter")
	}
	// Sticky: the counter is permanently failed, commits stay refused.
	again := NewBatch()
	again.Put([]byte("k2"), []byte("v2"))
	if _, _, err := db.Apply(again); err == nil {
		t.Fatal("commit acknowledged after counter fail-stop")
	}
}

// TestNativeModeBlockCorruptionDetected: at LevelNone there are no hash
// chains, but per-block CRCs must still catch media corruption — the
// pre-fix check compared a fresh checksum against zero and could never
// fire. The damaged table must be quarantined with a sticky error and
// counted in the corruption metric.
func TestNativeModeBlockCorruptionDetected(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open(Options{Dir: "/db", FS: fs, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	for i := 0; i < 32; i++ {
		b.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(strings.Repeat("v", 64)))
	}
	if _, _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the first data block of the table.
	var sstPath string
	ents, err := fs.ReadDir("/db")
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), "sst-") {
			sstPath = "/db/" + de.Name()
		}
	}
	if sstPath == "" {
		t.Fatal("flush produced no sstable")
	}
	raw, err := fs.ReadFile(sstPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0x40
	f, err := fs.OpenFile(sstPath, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	db2, err := Open(Options{Dir: "/db", FS: fs, SyncWAL: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	_, _, _, gerr := db2.Get([]byte("key-000"), db2.LatestSeq())
	if !errors.Is(gerr, ErrSSTCorrupt) {
		t.Fatalf("native-mode read of corrupted block: err=%v, want ErrSSTCorrupt", gerr)
	}
	// Quarantined: the second read fails the same way without touching
	// the damaged file again.
	if _, _, _, gerr := db2.Get([]byte("key-000"), db2.LatestSeq()); !errors.Is(gerr, ErrSSTCorrupt) {
		t.Fatalf("quarantine not sticky: %v", gerr)
	}
	if got := reg.Snapshot().Counter("lsm.corruption.detected"); got == 0 {
		t.Fatal("corruption metric not incremented")
	}
}

// TestWarmCacheQuarantinePurge: bit rot detected under a WARM block
// cache must quarantine the table AND purge its cached blocks — a
// stale cached block must never serve reads for a quarantined table,
// not even through a reader handle grabbed before the quarantine.
func TestWarmCacheQuarantinePurge(t *testing.T) {
	for _, lv := range allLevels {
		lv := lv
		t.Run(lv.name, func(t *testing.T) {
			fs := vfs.NewMemFS()
			reg := obs.NewRegistry()
			db, err := Open(Options{
				Dir: "/db", FS: fs, SyncWAL: true, Metrics: reg,
				Level: lv.level, Key: faultTestKey(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			// Enough data for several 4 KiB blocks in one table.
			b := NewBatch()
			for i := 0; i < 64; i++ {
				b.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(strings.Repeat("v", 128)))
			}
			if _, _, err := db.Apply(b); err != nil {
				t.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}

			keyA, keyB := []byte("key-000"), []byte("key-063")
			// Warm the cache with keyA's block (first block of the table).
			if _, _, found, err := db.Get(keyA, db.LatestSeq()); err != nil || !found {
				t.Fatalf("warming get: found=%v err=%v", found, err)
			}
			if _, _, found, err := db.Get(keyA, db.LatestSeq()); err != nil || !found {
				t.Fatalf("warm get: found=%v err=%v", found, err)
			}
			if reg.Snapshot().Counter("lsm.cache.hits") == 0 {
				t.Fatal("cache not warm")
			}

			// Grab the live reader handle (models a concurrent reader that
			// opened the table before the corruption was noticed), then rot
			// one byte in the middle of EVERY data block on disk.
			db.mu.Lock()
			if len(db.readers) != 1 {
				db.mu.Unlock()
				t.Fatalf("expected 1 reader, have %d", len(db.readers))
			}
			var tableNum uint64
			var r *sstReader
			for num, rd := range db.readers {
				tableNum, r = num, rd
			}
			db.mu.Unlock()
			if len(r.handles) < 2 {
				t.Fatalf("need a multi-block table, got %d blocks", len(r.handles))
			}
			path := sstFileName("/db", tableNum)
			raw, err := fs.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range r.handles {
				raw[h.offset+h.length/2] ^= 0x40
			}
			f, err := fs.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(raw); err != nil {
				t.Fatal(err)
			}

			// A cold read (keyB's block is not cached) detects the rot and
			// quarantines the table.
			if _, _, _, gerr := db.Get(keyB, db.LatestSeq()); !errors.Is(gerr, ErrSSTCorrupt) {
				t.Fatalf("cold read of rotted block: err=%v, want ErrSSTCorrupt", gerr)
			}
			// keyA's block WAS warm: the quarantine must have purged it, so
			// the DB read fails instead of serving the stale cached block.
			if _, _, _, gerr := db.Get(keyA, db.LatestSeq()); !errors.Is(gerr, ErrSSTCorrupt) {
				t.Fatalf("warm key after quarantine: err=%v, want ErrSSTCorrupt", gerr)
			}
			// Even through the pre-quarantine reader handle: the purge means
			// the next access re-reads the rotted media and fails — it can
			// never observe the stale plaintext again.
			if _, _, _, _, gerr := r.get(keyA, db.LatestSeq()); !errors.Is(gerr, ErrSSTCorrupt) {
				t.Fatalf("held reader after quarantine: err=%v, want ErrSSTCorrupt", gerr)
			}

			s := reg.Snapshot()
			if got := s.Counter("lsm.quarantine.tables"); got != 1 {
				t.Fatalf("quarantine.tables = %d, want 1", got)
			}
			if got := s.Counter("lsm.cache.quarantine_purges"); got != 1 {
				t.Fatalf("cache.quarantine_purges = %d, want 1", got)
			}
			if got := s.Counter("lsm.corruption.detected"); got == 0 {
				t.Fatal("corruption metric not incremented")
			}
		})
	}
}
