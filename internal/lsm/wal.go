package lsm

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"treaty/internal/enclave"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// TrustedCounter is the asynchronous trusted-counter interface a log file
// binds its entries to (§VI). The LSM assigns deterministic, monotonic
// counter values itself (via the log codec); the trusted counter service
// is told about each appended value (Stabilize) and recovery compares the
// log's last value against the service's quorum-stable value to detect
// rollbacks. Implementations live in package counter; tests may use
// immediate fakes.
type TrustedCounter interface {
	// Stabilize asynchronously records that entries up to value v exist.
	Stabilize(v uint64)
	// WaitStable blocks (or cooperatively yields) until the service has
	// made v rollback-protected.
	WaitStable(v uint64) error
	// StableValue returns the current quorum-stable counter value.
	StableValue() uint64
}

// immediateCounter is a TrustedCounter for native (non-secure) builds and
// unit tests: everything is instantly stable.
type immediateCounter struct{ v atomic.Uint64 }

// Stabilize implements TrustedCounter.
func (c *immediateCounter) Stabilize(v uint64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WaitStable implements TrustedCounter.
func (c *immediateCounter) WaitStable(uint64) error { return nil }

// StableValue implements TrustedCounter.
func (c *immediateCounter) StableValue() uint64 { return c.v.Load() }

// NewImmediateCounter returns a TrustedCounter that stabilizes instantly
// (used for native baselines, where rollback protection is absent).
func NewImmediateCounter() TrustedCounter { return &immediateCounter{} }

// Entry kinds recorded in the WAL.
const (
	// walKindBatch is a committed write batch.
	walKindBatch uint8 = iota + 1
	// walKindPrepare is a 2PC prepared-transaction record (§V-A): the
	// participant's buffered writes plus the global transaction id.
	walKindPrepare
	// walKindTxDecision resolves a previously prepared transaction
	// (commit or abort), written at commit/abort time.
	walKindTxDecision
)

// ErrLogPoisoned indicates a log handle that hit a write or sync failure
// and fail-stopped. After a failed fsync the kernel may have dropped the
// dirty pages (fsyncgate), so the log's unsynced tail must be assumed
// lost; retrying appends past the hole would silently splice the log.
// The only safe continuation is a restart that re-runs recovery.
var ErrLogPoisoned = errors.New("lsm: log poisoned by earlier write/sync failure")

// wal is one write-ahead log file. Appends are serialized by the DB's
// commit path (group commit); Sync flushes to stable storage and
// Stabilize binds the tail to the trusted counter.
type wal struct {
	f        vfs.File
	codec    *seal.LogCodec
	rt       *enclave.Runtime
	ctr      TrustedCounter
	path     string
	number   uint64
	buf      []byte
	poisoned error
}

// walFileName builds the WAL path for a file number.
func walFileName(dir string, number uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", number))
}

// createWAL creates a fresh WAL file, durably (the creation is
// dir-fsynced so a post-crash recovery sees the file).
func createWAL(fs vfs.FS, dir string, number uint64, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime, ctr TrustedCounter) (*wal, error) {
	path := walFileName(dir, number)
	codec, err := seal.NewLogCodec(level, key, filepath.Base(path), 1)
	if err != nil {
		return nil, fmt.Errorf("lsm: creating wal codec: %w", err)
	}
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: creating wal: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: syncing dir after wal create: %w", err)
	}
	if rt != nil {
		rt.Syscall()
	}
	return &wal{f: f, codec: codec, rt: rt, ctr: ctr, path: path, number: number}, nil
}

// stage frames one entry into the group staging buffer without issuing
// any IO, returning its counter value; flushGroup writes every staged
// entry with a single syscall. Splitting framing from IO lets a commit
// group of N entries cross the enclave boundary once instead of N times.
func (w *wal) stage(kind uint8, payload []byte) (uint64, error) {
	if w.poisoned != nil {
		return 0, w.poisoned
	}
	var ctr uint64
	w.buf, ctr = w.codec.AppendEntry(w.buf, kind, payload)
	return ctr, nil
}

// flushGroup writes all staged entries with one write. A failed write
// poisons the handle and fails the whole group: the codec chain has
// already advanced past the lost entries, so no later append may succeed.
func (w *wal) flushGroup() error {
	if w.poisoned != nil {
		return w.poisoned
	}
	if len(w.buf) == 0 {
		return nil
	}
	if w.rt != nil {
		w.rt.Syscall()
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		w.poisoned = fmt.Errorf("%w: wal write: %v", ErrLogPoisoned, err)
		return fmt.Errorf("lsm: wal write: %w", err)
	}
	return nil
}

// append frames and writes one entry immediately (stage + flushGroup),
// returning its counter value. The write reaches the OS; durability needs
// sync, rollback protection needs stabilize.
func (w *wal) append(kind uint8, payload []byte) (uint64, error) {
	ctr, err := w.stage(kind, payload)
	if err != nil {
		return 0, err
	}
	if err := w.flushGroup(); err != nil {
		return 0, err
	}
	return ctr, nil
}

// sync flushes the file to stable storage. A failure poisons the handle
// (fsyncgate: the unsynced tail must be assumed lost, not retried).
func (w *wal) sync() error {
	if w.poisoned != nil {
		return w.poisoned
	}
	if w.rt != nil {
		w.rt.Syscall()
	}
	if err := w.f.Sync(); err != nil {
		w.poisoned = fmt.Errorf("%w: wal sync: %v", ErrLogPoisoned, err)
		return fmt.Errorf("lsm: wal sync: %w", err)
	}
	return nil
}

// stabilize asynchronously requests rollback protection up to v.
func (w *wal) stabilize(v uint64) { w.ctr.Stabilize(v) }

// lastCounter returns the counter value of the most recent entry (0 when
// empty).
func (w *wal) lastCounter() uint64 { return w.codec.NextCounter() - 1 }

// close closes the file.
func (w *wal) close() error {
	if w.rt != nil {
		w.rt.Syscall()
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("lsm: wal close: %w", err)
	}
	return nil
}

// walEntry is one recovered WAL record.
type walEntry struct {
	kind    uint8
	counter uint64
	payload []byte
}

// ErrRollbackDetected indicates recovery found persistent state that is
// stale or spliced relative to the trusted counter — a rollback or fork
// attack (§VI).
var ErrRollbackDetected = errors.New("lsm: rollback attack detected")

// readWAL replays a WAL file, verifying the hash chain, counter
// continuity, and — at secure levels — freshness against the trusted
// counter service:
//
//  1. Entries with counter value beyond the trusted stable value are an
//     unstabilized tail: discarded (they were never acknowledged).
//  2. A log that ends *before* the trusted stable value is missing
//     rollback-protected entries: ErrRollbackDetected.
//
// A decode failure at the tail is tolerated — reported via torn — when
// it is provably a crash artifact rather than an attack: a byte-level
// truncation (ErrTruncated) anywhere, any failure at LevelNone
// (RocksDB-style recovery stops at the tear), or any failure past the
// trusted stable point (those entries were never acknowledged). A
// non-truncation failure inside the rollback-protected region still
// surfaces as an error. maxStable < 0 skips freshness checks (native
// mode).
func readWAL(fs vfs.FS, path string, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime, maxStable int64) ([]walEntry, bool, error) {
	codec, err := seal.NewLogCodec(level, key, filepath.Base(path), 1)
	if err != nil {
		return nil, false, fmt.Errorf("lsm: wal codec: %w", err)
	}
	if rt != nil {
		rt.Syscall()
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("lsm: reading wal: %w", err)
	}
	var out []walEntry
	torn := false
	off := 0
	last := uint64(0)
	for off < len(data) {
		if rt != nil {
			// Each entry costs a (SCONE async) syscall to pull across
			// the enclave boundary for verification/decryption — small
			// log entries are the recovery worst case (§VIII-F: "more
			// syscalls, more decryption calls").
			rt.Syscall()
		}
		e, n, derr := codec.DecodeEntry(data[off:])
		if derr != nil {
			if tolerableTear(derr, level, last, maxStable) {
				torn = true
				break
			}
			return nil, false, fmt.Errorf("lsm: wal %s entry at %d: %w", filepath.Base(path), off, derr)
		}
		if maxStable >= 0 && e.Counter > uint64(maxStable) {
			// Unstabilized tail: ignore, it was never rollback-protected
			// and the client was never acknowledged.
			break
		}
		out = append(out, walEntry{kind: e.Kind, counter: e.Counter, payload: e.Payload})
		last = e.Counter
		off += n
	}
	if maxStable > 0 && last < uint64(maxStable) {
		return nil, false, fmt.Errorf("%w: wal %s ends at counter %d, trusted value is %d",
			ErrRollbackDetected, filepath.Base(path), last, maxStable)
	}
	return out, torn, nil
}

// tolerableTear decides whether a log decode failure after entry
// `last` may be treated as a crash-torn tail rather than tampering.
// Byte truncation is always a possible crash artifact (and if it cut
// into the rollback-protected region, the caller's freshness check
// still flags it); other failures (bad checksum, broken chain) are
// tolerable only where the log is unprotected: at LevelNone, when no
// freshness information exists, or strictly past the trusted stable
// point.
func tolerableTear(derr error, level seal.SecurityLevel, last uint64, maxStable int64) bool {
	if errors.Is(derr, seal.ErrTruncated) || level == seal.LevelNone {
		return true
	}
	return maxStable < 0 || last >= uint64(maxStable)
}
