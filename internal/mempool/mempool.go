// Package mempool implements Treaty's scalable memory allocator for
// transaction and network buffers (§VII-D). Buffers are drawn from
// size-class free lists grouped into multiple heaps; allocating goroutines
// are spread across heaps (the paper hashes the thread id) so concurrent
// transactions do not contend on one lock. Freed buffers are recycled,
// drastically reducing the amount of mapped memory.
//
// Each buffer lives in one of two regions:
//
//   - RegionEnclave: trusted enclave memory, charged against the EPC
//     budget of the owning enclave runtime (paging beyond ~94 MiB).
//   - RegionHost: untrusted host memory (the paper's hugepage-backed DMA
//     buffers), free of EPC pressure but requiring the caller to encrypt
//     contents before writing them.
//
// The region split is what lets Treaty keep message buffers and values
// outside the enclave, avoiding EPC paging at the cost of encryption.
package mempool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"treaty/internal/enclave"
)

// Region identifies which memory a buffer occupies.
type Region int

const (
	// RegionEnclave is trusted, EPC-limited enclave memory.
	RegionEnclave Region = iota + 1
	// RegionHost is untrusted host memory (encrypted contents only).
	RegionHost
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case RegionEnclave:
		return "enclave"
	case RegionHost:
		return "host"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Size classes: powers of two from 64 B to 4 MiB. Larger requests are
// allocated directly (and not recycled).
const (
	minClassShift = 6  // 64 B
	maxClassShift = 22 // 4 MiB
	numClasses    = maxClassShift - minClassShift + 1
)

// classFor returns the size-class index for n, or -1 if n is too large.
func classFor(n int) int {
	if n <= 0 {
		n = 1
	}
	for c, shift := 0, minClassShift; shift <= maxClassShift; c, shift = c+1, shift+1 {
		if n <= 1<<shift {
			return c
		}
	}
	return -1
}

// classSize returns the buffer size of class c.
func classSize(c int) int { return 1 << (minClassShift + c) }

// Buf is one allocated buffer. Data is the usable slice (capacity equals
// the size class); Region records where it lives. Return buffers with
// Pool.Free; a Buf must not be used after Free.
type Buf struct {
	// Data is the buffer contents, sized to the original request.
	Data []byte
	// Region is the memory region the buffer occupies.
	Region Region

	pool  *Pool
	class int // -1 for oversized direct allocations
}

// Full returns the full-capacity slice of the underlying buffer (useful
// when a caller wants to grow into the class capacity without realloc).
func (b *Buf) Full() []byte { return b.Data[:cap(b.Data)] }

// heap is one lockable set of free lists.
type heap struct {
	mu   sync.Mutex
	free [numClasses][]*Buf
}

// Stats reports allocator activity.
type Stats struct {
	// Allocs counts Alloc calls.
	Allocs uint64
	// Frees counts Free calls.
	Frees uint64
	// Recycled counts allocations served from a free list.
	Recycled uint64
	// Oversized counts direct (non-pooled) allocations.
	Oversized uint64
	// LiveBytes is the total bytes currently allocated (both regions).
	LiveBytes int64
}

// Pool is a multi-heap, size-classed allocator. The zero value is not
// usable; construct with New.
type Pool struct {
	rt    *enclave.Runtime
	heaps []heap
	next  atomic.Uint64 // heap assignment counter (stands in for thread-id hash)

	allocs    atomic.Uint64
	frees     atomic.Uint64
	recycled  atomic.Uint64
	oversized atomic.Uint64
	liveBytes atomic.Int64

	// maxCached bounds the free-list length per class per heap so the
	// pool releases memory under shrinking load.
	maxCached int
}

// New creates a pool with the given number of heaps (0 means 8, matching
// the paper's 8 application threads), charging region accounting to rt.
func New(rt *enclave.Runtime, heaps int) *Pool {
	if heaps <= 0 {
		heaps = 8
	}
	return &Pool{
		rt:        rt,
		heaps:     make([]heap, heaps),
		maxCached: 64,
	}
}

// Alloc returns a buffer of length n in the given region. The buffer's
// capacity is the size class's, so small growth is allocation-free.
func (p *Pool) Alloc(n int, region Region) *Buf {
	p.allocs.Add(1)
	c := classFor(n)
	if c < 0 {
		// Oversized: direct allocation, never recycled.
		p.oversized.Add(1)
		b := &Buf{Data: make([]byte, n), Region: region, pool: p, class: -1}
		p.charge(region, n)
		return b
	}

	h := &p.heaps[p.next.Add(1)%uint64(len(p.heaps))]
	h.mu.Lock()
	if lst := h.free[c]; len(lst) > 0 {
		b := lst[len(lst)-1]
		h.free[c] = lst[:len(lst)-1]
		h.mu.Unlock()
		p.recycled.Add(1)
		b.Data = b.Data[:cap(b.Data)][:n]
		clear(b.Data)
		b.Region = region
		p.charge(region, classSize(c))
		return b
	}
	h.mu.Unlock()

	b := &Buf{Data: make([]byte, classSize(c))[:n], Region: region, pool: p, class: c}
	p.charge(region, classSize(c))
	return b
}

// Free returns b to the pool. Double-frees are the caller's bug; the pool
// does not defend against them beyond clearing the slice on reuse.
func (p *Pool) Free(b *Buf) {
	if b == nil || b.pool != p {
		return
	}
	p.frees.Add(1)
	size := cap(b.Data)
	if b.class < 0 {
		size = len(b.Data)
	}
	p.discharge(b.Region, size)
	if b.class < 0 {
		return // oversized buffers go to the GC
	}
	h := &p.heaps[p.next.Add(1)%uint64(len(p.heaps))]
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.free[b.class]) < p.maxCached {
		h.free[b.class] = append(h.free[b.class], b)
	}
}

// charge records an allocation with the enclave runtime.
func (p *Pool) charge(region Region, n int) {
	p.liveBytes.Add(int64(n))
	if p.rt == nil {
		return
	}
	switch region {
	case RegionEnclave:
		p.rt.AllocEnclave(n)
	case RegionHost:
		p.rt.AllocHost(n)
	}
}

// discharge records a release with the enclave runtime.
func (p *Pool) discharge(region Region, n int) {
	p.liveBytes.Add(int64(-n))
	if p.rt == nil {
		return
	}
	switch region {
	case RegionEnclave:
		p.rt.FreeEnclave(n)
	case RegionHost:
		p.rt.FreeHost(n)
	}
}

// Stats returns a snapshot of allocator counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Allocs:    p.allocs.Load(),
		Frees:     p.frees.Load(),
		Recycled:  p.recycled.Load(),
		Oversized: p.oversized.Load(),
		LiveBytes: p.liveBytes.Load(),
	}
}

// Arena is a contiguous append-only byte buffer for a transaction's
// uncommitted writes (§VII-D: "a stream of bytes that allocate continuous
// memory to eliminate paging"). It grows geometrically in enclave memory
// and is released wholesale when the transaction ends.
type Arena struct {
	pool *Pool
	buf  *Buf
	len  int
}

// NewArena creates an arena with the given initial capacity.
func (p *Pool) NewArena(initial int) *Arena {
	if initial < 256 {
		initial = 256
	}
	b := p.Alloc(initial, RegionEnclave)
	b.Data = b.Data[:0]
	return &Arena{pool: p, buf: b}
}

// Append copies data into the arena and returns its offset.
func (a *Arena) Append(data []byte) int {
	off := a.len
	need := a.len + len(data)
	full := a.buf.Full()
	if need > len(full) {
		bigger := a.pool.Alloc(need*2, RegionEnclave)
		bigger.Data = bigger.Data[:a.len]
		copy(bigger.Data, full[:a.len])
		a.pool.Free(a.buf)
		a.buf = bigger
		full = a.buf.Full()
	}
	copy(full[a.len:], data)
	a.len = need
	a.buf.Data = full[:a.len]
	return off
}

// Bytes returns the arena contents (valid until Release).
func (a *Arena) Bytes() []byte { return a.buf.Data[:a.len] }

// Slice returns the sub-slice [off, off+n) of the arena.
func (a *Arena) Slice(off, n int) []byte { return a.buf.Data[off : off+n] }

// Len returns the number of bytes appended.
func (a *Arena) Len() int { return a.len }

// Reset discards the contents, retaining capacity.
func (a *Arena) Reset() {
	a.len = 0
	a.buf.Data = a.buf.Data[:0]
}

// Release returns the arena's memory to the pool. The arena must not be
// used afterwards.
func (a *Arena) Release() {
	if a.buf != nil {
		a.pool.Free(a.buf)
		a.buf = nil
	}
}
