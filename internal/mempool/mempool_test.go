package mempool

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"treaty/internal/enclave"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1},
		{4096, 6}, {4097, 7}, {4 << 20, numClasses - 1}, {4<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestAllocLenAndCapacity(t *testing.T) {
	p := New(nil, 4)
	for _, n := range []int{1, 64, 100, 4096, 1 << 20} {
		b := p.Alloc(n, RegionHost)
		if len(b.Data) != n {
			t.Errorf("Alloc(%d): len = %d", n, len(b.Data))
		}
		if cap(b.Data) < n {
			t.Errorf("Alloc(%d): cap = %d", n, cap(b.Data))
		}
		p.Free(b)
	}
}

func TestRecycling(t *testing.T) {
	p := New(nil, 1)
	b := p.Alloc(100, RegionHost)
	for i := range b.Data {
		b.Data[i] = 0xAB
	}
	p.Free(b)
	b2 := p.Alloc(70, RegionHost) // same size class (65..128)
	if p.Stats().Recycled != 1 {
		t.Errorf("Recycled = %d, want 1", p.Stats().Recycled)
	}
	// Recycled buffers must be zeroed — stale plaintext in a reused host
	// buffer would be a confidentiality leak.
	if !bytes.Equal(b2.Data, make([]byte, 70)) {
		t.Error("recycled buffer not cleared")
	}
}

func TestOversizedNotRecycled(t *testing.T) {
	p := New(nil, 1)
	b := p.Alloc(8<<20, RegionHost)
	p.Free(b)
	if p.Stats().Oversized != 1 {
		t.Errorf("Oversized = %d", p.Stats().Oversized)
	}
	b2 := p.Alloc(8<<20, RegionHost)
	if p.Stats().Recycled != 0 {
		t.Error("oversized buffers must not be recycled")
	}
	p.Free(b2)
	if got := p.Stats().LiveBytes; got != 0 {
		t.Errorf("LiveBytes = %d, want 0", got)
	}
}

func TestRegionAccountingReachesRuntime(t *testing.T) {
	rt := enclave.NewSconeRuntime()
	p := New(rt, 2)
	be := p.Alloc(1000, RegionEnclave)
	bh := p.Alloc(2000, RegionHost)
	s := rt.Stats()
	if s.EnclaveBytes <= 0 {
		t.Errorf("EnclaveBytes = %d, want > 0", s.EnclaveBytes)
	}
	if s.HostBytes <= 0 {
		t.Errorf("HostBytes = %d, want > 0", s.HostBytes)
	}
	p.Free(be)
	p.Free(bh)
	s = rt.Stats()
	if s.EnclaveBytes != 0 || s.HostBytes != 0 {
		t.Errorf("after free: %+v", s)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := New(nil, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := p.Alloc(64+i%4000, RegionHost)
				b.Data[0] = byte(i)
				p.Free(b)
			}
		}()
	}
	wg.Wait()
	if got := p.Stats().LiveBytes; got != 0 {
		t.Errorf("LiveBytes = %d after all frees", got)
	}
	if p.Stats().Allocs != 16000 || p.Stats().Frees != 16000 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestFreeForeignOrNilBufIgnored(t *testing.T) {
	p1 := New(nil, 1)
	p2 := New(nil, 1)
	b := p1.Alloc(10, RegionHost)
	p2.Free(b) // foreign: ignored
	p2.Free(nil)
	if p2.Stats().Frees != 0 {
		t.Error("foreign/nil frees must be ignored")
	}
	p1.Free(b)
}

func TestArenaAppendAndSlice(t *testing.T) {
	p := New(nil, 1)
	a := p.NewArena(16)
	defer a.Release()

	off1 := a.Append([]byte("hello"))
	off2 := a.Append([]byte("world!"))
	if off1 != 0 || off2 != 5 {
		t.Errorf("offsets = %d, %d", off1, off2)
	}
	if string(a.Slice(off2, 6)) != "world!" {
		t.Errorf("Slice = %q", a.Slice(off2, 6))
	}
	if string(a.Bytes()) != "helloworld!" {
		t.Errorf("Bytes = %q", a.Bytes())
	}
}

func TestArenaGrowthPreservesData(t *testing.T) {
	p := New(nil, 1)
	a := p.NewArena(256)
	defer a.Release()

	var offs []int
	for i := 0; i < 200; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 37)
		offs = append(offs, a.Append(chunk))
	}
	for i, off := range offs {
		got := a.Slice(off, 37)
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 37)) {
			t.Fatalf("chunk %d corrupted after growth", i)
		}
	}
	if a.Len() != 200*37 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestArenaReset(t *testing.T) {
	p := New(nil, 1)
	a := p.NewArena(64)
	defer a.Release()
	a.Append([]byte("data"))
	a.Reset()
	if a.Len() != 0 || len(a.Bytes()) != 0 {
		t.Error("Reset must clear length")
	}
	if off := a.Append([]byte("new")); off != 0 {
		t.Errorf("offset after reset = %d", off)
	}
}

func TestArenaProperty(t *testing.T) {
	p := New(nil, 2)
	f := func(chunks [][]byte) bool {
		a := p.NewArena(64)
		defer a.Release()
		type rec struct {
			off, n int
		}
		var recs []rec
		for _, c := range chunks {
			recs = append(recs, rec{a.Append(c), len(c)})
		}
		for i, r := range recs {
			if !bytes.Equal(a.Slice(r.off, r.n), chunks[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
