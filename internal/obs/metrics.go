// Package obs is Treaty's zero-dependency observability layer: a
// race-clean metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms with p50/p95/p99 snapshots) plus a per-transaction
// stage tracer for the 2PC lifecycle (trace.go).
//
// Design rules:
//
//   - Hot paths touch one atomic per event. Values that already live in
//     subsystem atomics (erpc stats, enclave event counts) are exported
//     through CounterFunc/GaugeFunc, evaluated only at snapshot time, so
//     instrumentation never double-books or adds per-event cost.
//   - Every method is nil-receiver safe, and every Registry accessor is
//     nil-safe, so call sites need no "if metrics != nil" guards: a nil
//     registry turns the whole layer into no-ops.
//   - Snapshot() is a plain JSON-marshalable struct; cross-process
//     tooling (cmd/treatystat, the chaos soak, bench reports) diffs it.
package obs

import (
	"encoding/json"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n events.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (in-flight requests, bytes
// resident, ...).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets. Bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i); bucket 0 counts zeros. 48 buckets cover every
// nanosecond duration up to ~3.2 days — more than any latency we record.
const histBuckets = 48

// Histogram is a fixed-bucket exponential histogram of non-negative
// values (latencies in nanoseconds, batch sizes, ...). Recording is one
// atomic add per observation plus count/sum/max bookkeeping; quantiles
// are estimated at snapshot time by log-linear interpolation inside the
// winning bucket, so they are exact to within the bucket's factor-of-two
// resolution.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Nanoseconds())
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Nanoseconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot summarizes a histogram at one instant.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// snapshot captures the histogram. Under concurrent Observe calls the
// bucket reads are not a single atomic cut, but count and every bucket
// are individually monotonic, so a snapshot never runs backwards
// relative to an earlier one.
func (h *Histogram) snapshot() HistSnapshot {
	var bk [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		bk[i] = h.buckets[i].Load()
		total += bk[i]
	}
	s := HistSnapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	if total == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(total)
	s.P50 = quantile(&bk, total, 0.50)
	s.P95 = quantile(&bk, total, 0.95)
	s.P99 = quantile(&bk, total, 0.99)
	return s
}

// quantile finds the bucket holding the q-th observation and linearly
// interpolates within its [2^(i-1), 2^i) span.
func quantile(bk *[histBuckets]uint64, total uint64, q float64) int64 {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range bk {
		if n == 0 {
			continue
		}
		if rank < seen+n {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			hi := int64(1) << i
			frac := float64(rank-seen) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += n
	}
	return 0 // unreachable when total > 0
}

// Snapshot is a JSON-marshalable cut of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Registry holds one process/node's metrics, keyed by dotted name
// ("twopc.tx.begun"). A nil *Registry is valid: every accessor returns a
// nil metric whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cfuncs   map[string]func() uint64
	gfuncs   map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		cfuncs:   make(map[string]func() uint64),
		gfuncs:   make(map[string]func() int64),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a lazily evaluated counter: fn runs at snapshot
// time only. Use it to export values a subsystem already maintains in
// its own atomics. fn must be safe to call concurrently and must be
// monotonic for conservation laws to hold across snapshots.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfuncs[name] = fn
}

// GaugeFunc registers a lazily evaluated gauge (see CounterFunc).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gfuncs[name] = fn
}

// Snapshot captures every metric. Registered funcs are called outside
// any hot path but while holding the registry lock; they must not call
// back into the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, fn := range r.cfuncs {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gfuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// MarshalJSONIndent renders the snapshot with stable key order (Go maps
// marshal sorted, so plain json.Marshal is already deterministic; this
// helper just adds indentation for human eyes).
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Names returns the sorted metric names present in the snapshot (handy
// for catalogue-style dumps).
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
