package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines and checks the totals are exact. Run under -race.
func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.events")
	g := reg.Gauge("test.level")
	const workers, per = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(3)
				g.Add(-2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter: got %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge: got %d, want %d", got, workers*per)
	}
	s := reg.Snapshot()
	if s.Counter("test.events") != workers*per || s.Gauge("test.level") != workers*per {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

// TestHistogramConcurrent hammers a histogram from many goroutines while
// a reader takes snapshots, asserting exact final totals and that
// observed counts are monotonic across snapshots.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.lat")
	const workers, per = 8, 5_000
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := reg.Snapshot().Histograms["test.lat"]
			if s.Count < last {
				snapErr = &monotonicErr{prev: last, got: s.Count}
				return
			}
			last = s.Count
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	s := h.snapshot()
	if s.Count != workers*per {
		t.Fatalf("count: got %d, want %d", s.Count, workers*per)
	}
	// Sum of 0..workers*per-1.
	n := int64(workers * per)
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Fatalf("sum: got %d, want %d", s.Sum, want)
	}
	if s.Max != n-1 {
		t.Fatalf("max: got %d, want %d", s.Max, n-1)
	}
	if s.P50 <= 0 || s.P50 >= s.Max || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}

type monotonicErr struct{ prev, got uint64 }

func (e *monotonicErr) Error() string { return "snapshot count went backwards" }

// TestHistogramQuantiles checks the log-linear estimates land inside the
// right factor-of-two bucket for a known distribution.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.snapshot()
	// True p50 = 500 (bucket [256,512)), p95 = 950, p99 = 990
	// (both in bucket [512,1024)).
	if s.P50 < 256 || s.P50 > 512 {
		t.Fatalf("p50 = %d, want within [256,512]", s.P50)
	}
	if s.P95 < 512 || s.P95 > 1024 {
		t.Fatalf("p95 = %d, want within [512,1024]", s.P95)
	}
	if s.P99 < s.P95 || s.P99 > 1024 {
		t.Fatalf("p99 = %d, want within [p95,1024]", s.P99)
	}
	if s.Mean < 490 || s.Mean > 510 {
		t.Fatalf("mean = %f, want ~500.5", s.Mean)
	}
}

// TestNilSafety: a nil registry and nil metrics must be no-ops, so
// uninstrumented deployments pay nothing and call sites need no guards.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x")
	c.Inc()
	c.Add(5)
	g.Add(1)
	g.Set(9)
	h.Observe(10)
	reg.CounterFunc("f", func() uint64 { return 1 })
	reg.GaugeFunc("f", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	s := reg.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var tr *Trace
	tr.Enter(StageCommit)
	tr.Finish(OutcomeCommitted, "")
	if tr.ID() != "" || tr.Total() != 0 || len(tr.Stages()) != 0 {
		t.Fatal("nil trace must be inert")
	}
	var tcr *Tracer
	if tcr.Begin("x", StageBegin) != nil || tcr.Recent() != nil {
		t.Fatal("nil tracer must mint nil traces")
	}
}

// TestSnapshotFuncsAndJSON covers CounterFunc/GaugeFunc evaluation and
// the JSON export shape.
func TestSnapshotFuncsAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(7)
	reg.Gauge("a.level").Set(-3)
	reg.Histogram("a.lat").Observe(100)
	var backing uint64 = 42
	reg.CounterFunc("b.lazy", func() uint64 { return backing })
	reg.GaugeFunc("b.depth", func() int64 { return 5 })
	s := reg.Snapshot()
	if s.Counter("b.lazy") != 42 || s.Gauge("b.depth") != 5 {
		t.Fatalf("funcs not evaluated: %+v", s)
	}
	backing = 43
	if reg.Snapshot().Counter("b.lazy") != 43 {
		t.Fatal("CounterFunc must re-evaluate per snapshot")
	}
	raw, err := s.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("a.count") != 7 || back.Gauge("a.level") != -3 {
		t.Fatalf("JSON round trip lost data: %s", raw)
	}
	if back.Histograms["a.lat"].Count != 1 {
		t.Fatalf("JSON round trip lost histogram: %s", raw)
	}
	names := s.Names()
	if len(names) != 5 {
		t.Fatalf("Names() = %v, want 5 entries", names)
	}
}
