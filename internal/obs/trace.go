package obs

import (
	"sync"
	"time"
)

// Stage names one step of the 2PC transaction lifecycle. Stages are
// free-form strings so other state machines (recovery, flush pipelines)
// can reuse the tracer, but the canonical 2PC sequence is:
//
//	begin → execute → prepare → log-force → counter-stabilize →
//	commit | abort → reclaim
//
// with "recover" prefixing replays driven by crash recovery.
type Stage string

// Canonical 2PC stages.
const (
	StageBegin     Stage = "begin"             // transaction registered at the coordinator
	StageExecute   Stage = "execute"           // client ops running against participants
	StagePrepare   Stage = "prepare"           // prepare logged + PREPARE broadcast, votes gathered
	StageLogForce  Stage = "log-force"         // decision record forced to the coordinator log
	StageStabilize Stage = "counter-stabilize" // waiting for the trusted counter to cover the decision
	StageCommit    Stage = "commit"            // COMMIT pushed to write participants
	StageAbort     Stage = "abort"             // ABORT pushed to participants
	StageReclaim   Stage = "reclaim"           // coordinator-side state reclaimed
	StageRecover   Stage = "recover"           // crash-recovery replay of a pending decision
)

// Outcomes recorded by Trace.Finish.
const (
	OutcomeCommitted = "committed"
	OutcomeAborted   = "aborted"
	OutcomeRecovered = "recovered"
)

// StageSpan is one completed stage with its wall-clock duration.
type StageSpan struct {
	Stage    Stage         `json:"stage"`
	Duration time.Duration `json:"duration"`
}

// tracerRetain is how many finished traces a Tracer keeps for
// inspection (tests, treatystat). Old traces are overwritten ring-style.
const tracerRetain = 64

// Tracer mints per-transaction traces and aggregates per-stage
// durations into histograms named "<prefix>.<stage>" in its registry.
// It works with a nil registry (durations are still recorded on the
// traces themselves, only the histograms vanish). Safe for concurrent
// use.
type Tracer struct {
	reg    *Registry
	prefix string
	now    func() time.Time // injectable clock for tests

	mu     sync.Mutex
	hists  map[Stage]*Histogram
	recent []*Trace // ring of finished traces
	next   int
}

// NewTracer creates a tracer whose stage histograms live under prefix
// (e.g. "twopc.stage") in reg.
func NewTracer(reg *Registry, prefix string) *Tracer {
	return &Tracer{
		reg:    reg,
		prefix: prefix,
		now:    time.Now,
		hists:  make(map[Stage]*Histogram),
	}
}

// stageHist returns the histogram for one stage, caching the lookup.
func (t *Tracer) stageHist(s Stage) *Histogram {
	if t.reg == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hists[s]
	if !ok {
		h = t.reg.Histogram(t.prefix + "." + string(s))
		t.hists[s] = h
	}
	return h
}

// retain stores a finished trace in the ring.
func (t *Tracer) retain(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recent) < tracerRetain {
		t.recent = append(t.recent, tr)
		return
	}
	t.recent[t.next] = tr
	t.next = (t.next + 1) % tracerRetain
}

// Recent returns the retained finished traces, oldest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.recent))
	for i := 0; i < len(t.recent); i++ {
		out = append(out, t.recent[(t.next+i)%len(t.recent)])
	}
	return out
}

// Begin starts a trace in stage at the current instant. A nil tracer
// returns a nil trace; every Trace method is nil-safe.
func (t *Tracer) Begin(id string, stage Stage) *Trace {
	if t == nil {
		return nil
	}
	now := t.now()
	return &Trace{t: t, id: id, cur: stage, curStart: now, start: now}
}

// Trace records one transaction's journey through the stage machine. A
// trace is owned by the fiber driving the transaction; Enter/Finish are
// not meant to be called concurrently with each other, but the mutex
// makes concurrent readers (Recent, Spans) race-clean.
type Trace struct {
	t  *Tracer
	id string

	mu       sync.Mutex
	start    time.Time
	cur      Stage
	curStart time.Time
	spans    []StageSpan
	done     bool
	outcome  string
	reason   string
	total    time.Duration
}

// ID returns the transaction id the trace was minted with.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Enter closes the current stage (recording its duration) and opens s.
// Re-entering the current stage is a no-op, so per-operation call sites
// (one Enter per Get/Put) collapse into a single span. Calls after
// Finish are ignored.
func (tr *Trace) Enter(s Stage) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done || tr.cur == s {
		tr.mu.Unlock()
		return
	}
	now := tr.t.now()
	closed := tr.cur
	d := now.Sub(tr.curStart)
	tr.spans = append(tr.spans, StageSpan{Stage: closed, Duration: d})
	tr.cur = s
	tr.curStart = now
	tr.mu.Unlock()
	tr.t.stageHist(closed).ObserveDuration(d)
}

// Finish closes the trace with an outcome (OutcomeCommitted/Aborted/
// Recovered) and an optional reason ("prepare_failed", "repush_commit",
// ...). The in-progress stage is closed and recorded, the trace enters
// the tracer's retention ring, and further Enter/Finish calls become
// no-ops.
func (tr *Trace) Finish(outcome, reason string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	now := tr.t.now()
	closed := tr.cur
	d := now.Sub(tr.curStart)
	tr.spans = append(tr.spans, StageSpan{Stage: closed, Duration: d})
	tr.done = true
	tr.outcome = outcome
	tr.reason = reason
	tr.total = now.Sub(tr.start)
	tr.mu.Unlock()
	tr.t.stageHist(closed).ObserveDuration(d)
	tr.t.retain(tr)
}

// Spans returns a copy of the completed stage spans, in order.
func (tr *Trace) Spans() []StageSpan {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]StageSpan, len(tr.spans))
	copy(out, tr.spans)
	return out
}

// Stages returns just the ordered stage names of the completed spans.
func (tr *Trace) Stages() []Stage {
	spans := tr.Spans()
	out := make([]Stage, len(spans))
	for i, sp := range spans {
		out[i] = sp.Stage
	}
	return out
}

// Outcome returns the recorded outcome and reason ("" until Finish).
func (tr *Trace) Outcome() (outcome, reason string) {
	if tr == nil {
		return "", ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.outcome, tr.reason
}

// Total returns the begin-to-finish wall time (0 until Finish).
func (tr *Trace) Total() time.Duration {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}
