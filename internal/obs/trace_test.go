package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a deterministic amount on every read, so stage
// durations are exact and the tests are schedule-independent.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *fakeClock) read() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func newTestTracer(reg *Registry, step time.Duration) *Tracer {
	tr := NewTracer(reg, "twopc.stage")
	clk := &fakeClock{now: time.Unix(1000, 0), step: step}
	tr.now = clk.read
	return tr
}

// TestTraceStageSequence scripts a committed transaction and checks the
// exact stage sequence, per-stage durations, and histogram feeding.
func TestTraceStageSequence(t *testing.T) {
	reg := NewRegistry()
	tc := newTestTracer(reg, time.Millisecond)
	tr := tc.Begin("tx-1", StageBegin)
	tr.Enter(StageExecute)
	tr.Enter(StageExecute) // per-op re-entry collapses
	tr.Enter(StageExecute)
	tr.Enter(StagePrepare)
	tr.Enter(StageLogForce)
	tr.Enter(StageStabilize)
	tr.Enter(StageCommit)
	tr.Enter(StageReclaim)
	tr.Finish(OutcomeCommitted, "")

	want := []Stage{StageBegin, StageExecute, StagePrepare, StageLogForce,
		StageStabilize, StageCommit, StageReclaim}
	got := tr.Stages()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for _, sp := range tr.Spans() {
		if sp.Duration <= 0 {
			t.Fatalf("stage %s has non-positive duration %v", sp.Stage, sp.Duration)
		}
	}
	if out, reason := tr.Outcome(); out != OutcomeCommitted || reason != "" {
		t.Fatalf("outcome = %q/%q", out, reason)
	}
	if tr.Total() <= 0 {
		t.Fatal("total duration must be positive")
	}
	s := reg.Snapshot()
	for _, st := range want {
		h, ok := s.Histograms["twopc.stage."+string(st)]
		if !ok || h.Count != 1 {
			t.Fatalf("stage histogram %s missing or wrong count: %+v", st, h)
		}
	}
	recent := tc.Recent()
	if len(recent) != 1 || recent[0].ID() != "tx-1" {
		t.Fatalf("recent = %v", recent)
	}
}

// TestTraceAbortAndRecovery checks an aborted transaction records its
// abort reason and a recovery replay records its recovery path.
func TestTraceAbortAndRecovery(t *testing.T) {
	reg := NewRegistry()
	tc := newTestTracer(reg, time.Millisecond)

	ab := tc.Begin("tx-2", StageBegin)
	ab.Enter(StageExecute)
	ab.Enter(StagePrepare)
	ab.Enter(StageAbort)
	ab.Finish(OutcomeAborted, "prepare_failed")
	if out, reason := ab.Outcome(); out != OutcomeAborted || reason != "prepare_failed" {
		t.Fatalf("abort outcome = %q/%q", out, reason)
	}
	wantAb := []Stage{StageBegin, StageExecute, StagePrepare, StageAbort}
	if fmt.Sprint(ab.Stages()) != fmt.Sprint(wantAb) {
		t.Fatalf("abort stages = %v, want %v", ab.Stages(), wantAb)
	}

	rec := tc.Begin("tx-3", StageRecover)
	rec.Enter(StageCommit)
	rec.Finish(OutcomeRecovered, "repush_commit")
	if out, reason := rec.Outcome(); out != OutcomeRecovered || reason != "repush_commit" {
		t.Fatalf("recovery outcome = %q/%q", out, reason)
	}
	s := reg.Snapshot()
	if s.Histograms["twopc.stage.abort"].Count != 1 {
		t.Fatal("abort stage not recorded")
	}
	if s.Histograms["twopc.stage.recover"].Count != 1 {
		t.Fatal("recover stage not recorded")
	}

	recent := tc.Recent()
	if len(recent) != 2 || recent[0].ID() != "tx-2" || recent[1].ID() != "tx-3" {
		t.Fatalf("recent order wrong: %v, %v", recent[0].ID(), recent[1].ID())
	}
}

// TestTraceAfterFinish: Enter/Finish after Finish are no-ops.
func TestTraceAfterFinish(t *testing.T) {
	tc := newTestTracer(NewRegistry(), time.Millisecond)
	tr := tc.Begin("tx-4", StageBegin)
	tr.Finish(OutcomeCommitted, "")
	n := len(tr.Spans())
	tr.Enter(StageCommit)
	tr.Finish(OutcomeAborted, "late")
	if len(tr.Spans()) != n {
		t.Fatal("Enter after Finish must not add spans")
	}
	if out, _ := tr.Outcome(); out != OutcomeCommitted {
		t.Fatal("Finish after Finish must not overwrite outcome")
	}
}

// TestTracerRetentionRing: the ring keeps only the newest tracerRetain
// traces, oldest first.
func TestTracerRetentionRing(t *testing.T) {
	tc := newTestTracer(NewRegistry(), time.Microsecond)
	total := tracerRetain + 10
	for i := 0; i < total; i++ {
		tr := tc.Begin(fmt.Sprintf("tx-%d", i), StageBegin)
		tr.Finish(OutcomeCommitted, "")
	}
	recent := tc.Recent()
	if len(recent) != tracerRetain {
		t.Fatalf("retained %d, want %d", len(recent), tracerRetain)
	}
	if recent[0].ID() != fmt.Sprintf("tx-%d", total-tracerRetain) {
		t.Fatalf("oldest retained = %s", recent[0].ID())
	}
	if recent[len(recent)-1].ID() != fmt.Sprintf("tx-%d", total-1) {
		t.Fatalf("newest retained = %s", recent[len(recent)-1].ID())
	}
}

// TestTracerConcurrent drives many traces from many goroutines under
// -race: the per-stage histograms must account for every trace.
func TestTracerConcurrent(t *testing.T) {
	reg := NewRegistry()
	tc := NewTracer(reg, "twopc.stage")
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr := tc.Begin(fmt.Sprintf("w%d-%d", w, i), StageBegin)
				tr.Enter(StageExecute)
				tr.Enter(StagePrepare)
				tr.Enter(StageCommit)
				tr.Finish(OutcomeCommitted, "")
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	for _, st := range []Stage{StageBegin, StageExecute, StagePrepare, StageCommit} {
		if got := s.Histograms["twopc.stage."+string(st)].Count; got != workers*per {
			t.Fatalf("stage %s count = %d, want %d", st, got, workers*per)
		}
	}
	if got := len(tc.Recent()); got != tracerRetain {
		t.Fatalf("recent = %d, want full ring %d", got, tracerRetain)
	}
}
