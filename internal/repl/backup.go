package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"treaty/internal/erpc"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// Backup receives ship requests and durably mirrors them. It does NOT
// apply the records to its own engine: a mirror is raw replicated
// history, applied exactly once — at promotion — through the same
// decode path crash recovery uses. (Applying eagerly would also ship
// the applied records back out through the backup's own Ship hook,
// an infinite echo in mutual-replication topologies.)
//
// The handler runs directly on the RPC poller, not on a worker fiber:
// a mirror append touches only the mirror file, never this node's own
// commit path, so it can make progress even when every worker fiber is
// parked waiting on a local commit group that is itself waiting on a
// ship ack from a peer — the cycle that would otherwise deadlock two
// nodes replicating to each other.
type Backup struct {
	dir     string
	fs      vfs.FS
	key     seal.Key
	mu      sync.Mutex
	streams map[witnessKey]*mirror

	groups   *obs.Counter
	acked    *obs.Counter
	rejected *obs.Counter
}

type witnessKey struct {
	primary uint64
	stream  uint8
}

// mirror is one (primary, stream) replicated prefix.
type mirror struct {
	f      vfs.File
	size   int64
	seq    uint64
	digest [seal.HashSize]byte
	// boundaries records the running digest after every group, so a
	// promotion request can present the digest at the CAS-witnessed
	// position even when the mirror is ahead of the witness.
	boundaries map[uint64][seal.HashSize]byte
	// frames is the mirrored history in order, payloads copied.
	frames []Frame
}

// BackupConfig configures a backup receiver.
type BackupConfig struct {
	// Dir is the node's database directory; mirrors live in Dir/repl.
	Dir string
	// FS is the filesystem (nil = real OS).
	FS vfs.FS
	// Key is the cluster network key (the proof key is derived).
	Key seal.Key
	// Metrics, when non-nil, exports the repl.recv_* counters.
	Metrics *obs.Registry
}

// NewBackup opens a backup receiver, replaying any mirror files left by
// a previous incarnation (torn tails are truncated, like the WAL's).
func NewBackup(cfg BackupConfig) (*Backup, error) {
	fs := cfg.FS
	if fs == nil {
		fs = vfs.OS{}
	}
	b := &Backup{
		dir:     filepath.Join(cfg.Dir, "repl"),
		fs:      fs,
		key:     KeyFor(cfg.Key),
		streams: make(map[witnessKey]*mirror),
	}
	if m := cfg.Metrics; m != nil {
		b.groups = m.Counter("repl.recv_groups")
		b.acked = m.Counter("repl.recv_acked")
		b.rejected = m.Counter("repl.recv_rejected")
	}
	if err := fs.MkdirAll(b.dir, 0o755); err != nil {
		return nil, fmt.Errorf("repl: mkdir %s: %w", b.dir, err)
	}
	ents, err := fs.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("repl: scan %s: %w", b.dir, err)
	}
	for _, e := range ents {
		var primary uint64
		var stream uint8
		if _, err := fmt.Sscanf(e.Name(), mirrorPattern, &primary, &stream); err != nil {
			continue
		}
		if _, err := b.openMirror(primary, stream); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// mirrorPattern names one (primary, stream) mirror file.
const mirrorPattern = "p%d-s%d.mirror"

// openMirror opens (or creates) and replays one mirror file. Caller
// need not hold b.mu (boot only); HandleShip takes it.
func (b *Backup) openMirror(primary uint64, stream uint8) (*mirror, error) {
	k := witnessKey{primary, stream}
	if m := b.streams[k]; m != nil {
		return m, nil
	}
	path := filepath.Join(b.dir, fmt.Sprintf(mirrorPattern, primary, stream))
	f, err := b.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repl: open mirror %s: %w", path, err)
	}
	// The creation must be durable before any group in this file is
	// acked: a synced mirror file that vanishes with its directory entry
	// on power cut would silently roll the replicated prefix back to
	// zero.
	if err := b.fs.SyncDir(b.dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("repl: syncing mirror dir %s: %w", b.dir, err)
	}
	m := &mirror{f: f, boundaries: make(map[uint64][seal.HashSize]byte)}
	data, err := b.fs.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("repl: read mirror %s: %w", path, err)
	}
	good := int64(0)
	for len(data) >= 4 {
		n := int(binary.LittleEndian.Uint32(data))
		if len(data) < 4+n {
			break // torn tail
		}
		req, err := DecodeShipRequest(data[4 : 4+n])
		if err != nil || !req.VerifySig(b.key) || req.Seq != m.seq+1 ||
			ChainDigest(m.digest, req.Frames) != req.Digest {
			break // torn/corrupt tail: everything after it is unusable
		}
		m.apply(req)
		good += int64(4 + n)
		data = data[4+n:]
	}
	if st, err := f.Stat(); err == nil && st.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("repl: truncating torn mirror %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("repl: syncing truncated mirror %s: %w", path, err)
		}
	}
	m.size = good
	b.streams[k] = m
	return m, nil
}

// apply folds one verified, contiguous group into the in-memory state.
func (m *mirror) apply(req *ShipRequest) {
	for _, f := range req.Frames {
		m.frames = append(m.frames, Frame{
			Kind:    f.Kind,
			Counter: f.Counter,
			Payload: append([]byte(nil), f.Payload...),
		})
	}
	m.seq = req.Seq
	m.digest = req.Digest
	m.boundaries[req.Seq] = req.Digest
}

// Handler returns the erpc handler for ReqReplShip. Register it
// directly (not via a fiber adapter): see the type comment.
func (b *Backup) Handler() erpc.Handler {
	return func(r *erpc.Request) { b.handleShip(r) }
}

// handleShip verifies and durably appends one shipped group, acking
// only after the mirror file is fsynced — the ack is the shipper's
// license to stabilize, so an unsynced ack would let the stable prefix
// outrun the mirror across a backup power cut.
func (b *Backup) handleShip(r *erpc.Request) {
	ack, errMsg := b.ingest(r.Payload)
	if errMsg != "" {
		r.ReplyError(errMsg)
		return
	}
	r.Reply(ack)
}

// Ingest verifies and durably appends one encoded ship request outside
// any transport, returning the ack payload. Crash harnesses and tools
// feed mirrors directly through it; the RPC handler wraps the same
// path.
func (b *Backup) Ingest(payload []byte) ([]byte, error) {
	ack, errMsg := b.ingest(payload)
	if errMsg != "" {
		return nil, errors.New(errMsg)
	}
	return ack, nil
}

// ingest is handleShip minus the transport: it verifies and durably
// appends one shipped group, returning the ack payload or the rejection
// message.
func (b *Backup) ingest(payload []byte) (ack []byte, errMsg string) {
	b.groups.Inc()
	req, err := DecodeShipRequest(payload)
	if err != nil {
		b.rejected.Inc()
		return nil, err.Error()
	}
	if !req.VerifySig(b.key) {
		b.rejected.Inc()
		return nil, "repl: bad ship proof signature"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m, err := b.openMirror(req.Primary, req.Stream)
	if err != nil {
		b.rejected.Inc()
		return nil, err.Error()
	}
	if req.Seq <= m.seq {
		// Duplicate of an already-mirrored group (a retried ship whose
		// ack was lost): idempotent ack iff it matches our history.
		if d, ok := m.boundaries[req.Seq]; ok && d == req.Digest {
			b.acked.Inc()
			return ackPayload(m.seq), ""
		}
		b.rejected.Inc()
		return nil, fmt.Sprintf("repl: divergent duplicate group %d", req.Seq)
	}
	if req.Seq != m.seq+1 {
		b.rejected.Inc()
		return nil, fmt.Sprintf("repl: group gap: have %d, got %d", m.seq, req.Seq)
	}
	if ChainDigest(m.digest, req.Frames) != req.Digest {
		b.rejected.Inc()
		return nil, fmt.Sprintf("repl: digest mismatch at group %d", req.Seq)
	}
	raw := req.Encode()
	rec := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(rec, uint32(len(raw)))
	copy(rec[4:], raw)
	if _, err := m.f.Write(rec); err != nil {
		b.rejected.Inc()
		return nil, fmt.Sprintf("repl: mirror write: %v", err)
	}
	if err := m.f.Sync(); err != nil {
		b.rejected.Inc()
		return nil, fmt.Sprintf("repl: mirror sync: %v", err)
	}
	m.size += int64(len(rec))
	m.apply(req)
	b.acked.Inc()
	return ackPayload(m.seq), ""
}

func ackPayload(seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, seq)
}

// StreamState returns the mirror's replicated prefix for one stream:
// the last contiguous group sequence and the digest at it.
func (b *Backup) StreamState(primary uint64, stream uint8) (seq uint64, digest [seal.HashSize]byte, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.streams[witnessKey{primary, stream}]
	if m == nil {
		return 0, digest, false
	}
	return m.seq, m.digest, true
}

// DigestAt returns the mirror's running digest right after group seq
// (false if the mirror has no boundary there — shorter, or the
// boundary fell inside a group, both fork/rollback symptoms).
func (b *Backup) DigestAt(primary uint64, stream uint8, seq uint64) ([seal.HashSize]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var zero [seal.HashSize]byte
	m := b.streams[witnessKey{primary, stream}]
	if m == nil {
		return zero, false
	}
	d, ok := m.boundaries[seq]
	return d, ok
}

// Frames returns the mirrored records of one stream in ship order
// (payloads are the mirror's own copies; callers must not mutate).
func (b *Backup) Frames(primary uint64, stream uint8) []Frame {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.streams[witnessKey{primary, stream}]
	if m == nil {
		return nil
	}
	return append([]Frame(nil), m.frames...)
}

// Close closes every mirror file.
func (b *Backup) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for _, m := range b.streams {
		if err := m.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	b.streams = make(map[witnessKey]*mirror)
	return first
}
