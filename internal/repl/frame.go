// Package repl implements Treaty's per-shard primary-backup
// replication: the primary ships every fsynced WAL/Clog commit group to
// an attested backup *before* the group's trusted counter stabilizes,
// so any counter value a verifier can observe as stable is covered by a
// prefix that is durable on at least two nodes. The backup mirrors the
// shipped records byte-for-byte (it does not apply them — application
// happens once, at promotion, through the same state machine crash
// recovery uses), and promotion is gated by the CAS: the shipper
// witnesses each replicated group to the CAS's trusted state, and a
// rolled-back or forked mirror fails the witness check exactly like a
// stale shard map.
package repl

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"treaty/internal/seal"
)

// Stream identifiers: each primary ships two independent streams, one
// per durable log.
const (
	// StreamWAL carries the storage engine's write-ahead log records.
	StreamWAL uint8 = 1
	// StreamClog carries the coordinator log records.
	StreamClog uint8 = 2
)

// frameVersion is the ship-request wire version.
const frameVersion = 1

// Decoding bounds: a malicious length prefix must not drive a huge
// allocation.
const (
	maxFramePayload = 1 << 20
	maxFrames       = 1 << 12
)

// ErrMalformedShip indicates an undecodable ship request.
var ErrMalformedShip = errors.New("repl: malformed ship request")

// Frame is one log record inside a shipped commit group: the record
// kind and counter from the source log's codec, and the raw payload —
// exactly what the source staged, so a mirror can be replayed through
// the same decoding path recovery uses.
type Frame struct {
	Kind    uint8
	Counter uint64
	Payload []byte
}

// ShipRequest is one replicated commit group. Seq numbers groups per
// (primary, stream) contiguously from 1 — the mirror's replicated
// prefix is "every group up to Seq" — and Digest is the running prefix
// digest after this group (chained per record, so two mirrors agreeing
// on (Seq, Digest) hold identical histories). Sig authenticates the
// proof fields under the cluster replication key.
type ShipRequest struct {
	Stream  uint8
	Primary uint64
	Frames  []Frame
	Seq     uint64
	Digest  [seal.HashSize]byte
	Sig     [seal.HashSize]byte
}

// KeyFor derives the replication proof key from the cluster network
// key.
func KeyFor(networkKey seal.Key) seal.Key {
	return seal.DeriveKey(networkKey, "treaty/repl")
}

// ChainDigest folds a group's frames into the running stream digest:
// d' = H(d ∥ kind ∥ counter ∥ payload) per frame. The chain makes the
// digest a commitment to the entire stream prefix, so a fork anywhere
// in history changes every later digest.
func ChainDigest(d [seal.HashSize]byte, frames []Frame) [seal.HashSize]byte {
	var ctr [8]byte
	for _, f := range frames {
		h := sha256.New()
		h.Write(d[:])
		h.Write([]byte{f.Kind})
		binary.LittleEndian.PutUint64(ctr[:], f.Counter)
		h.Write(ctr[:])
		h.Write(f.Payload)
		copy(d[:], h.Sum(nil))
	}
	return d
}

// signBody is the byte string the proof signature covers.
func (r *ShipRequest) signBody() []byte {
	b := make([]byte, 0, 2+8+8+seal.HashSize)
	b = append(b, frameVersion, r.Stream)
	b = binary.LittleEndian.AppendUint64(b, r.Primary)
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = append(b, r.Digest[:]...)
	return b
}

// Sign computes the proof signature under the replication key
// (HMAC-SHA256, like the shard map's signature).
func (r *ShipRequest) Sign(key seal.Key) {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.signBody())
	copy(r.Sig[:], mac.Sum(nil))
}

// VerifySig checks the proof signature.
func (r *ShipRequest) VerifySig(key seal.Key) bool {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.signBody())
	return hmac.Equal(mac.Sum(nil), r.Sig[:])
}

// Encode serializes a ship request.
func (r *ShipRequest) Encode() []byte {
	n := 1 + 1 + 8 + 2 + 8 + 2*seal.HashSize
	for _, f := range r.Frames {
		n += 1 + 8 + 4 + len(f.Payload)
	}
	b := make([]byte, 0, n)
	b = append(b, frameVersion, r.Stream)
	b = binary.LittleEndian.AppendUint64(b, r.Primary)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Frames)))
	for _, f := range r.Frames {
		b = append(b, f.Kind)
		b = binary.LittleEndian.AppendUint64(b, f.Counter)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Payload)))
		b = append(b, f.Payload...)
	}
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = append(b, r.Digest[:]...)
	b = append(b, r.Sig[:]...)
	return b
}

// DecodeShipRequest deserializes a ship request, bounds-checking every
// length. The signature is carried but NOT checked here — call
// VerifySig before trusting the proof fields.
func DecodeShipRequest(data []byte) (*ShipRequest, error) {
	if len(data) < 12 {
		return nil, ErrMalformedShip
	}
	if data[0] != frameVersion {
		return nil, fmt.Errorf("%w: version %d", ErrMalformedShip, data[0])
	}
	r := &ShipRequest{Stream: data[1], Primary: binary.LittleEndian.Uint64(data[2:])}
	if r.Stream != StreamWAL && r.Stream != StreamClog {
		return nil, fmt.Errorf("%w: stream %d", ErrMalformedShip, r.Stream)
	}
	count := int(binary.LittleEndian.Uint16(data[10:]))
	if count > maxFrames {
		return nil, ErrMalformedShip
	}
	rest := data[12:]
	r.Frames = make([]Frame, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 13 {
			return nil, ErrMalformedShip
		}
		f := Frame{Kind: rest[0], Counter: binary.LittleEndian.Uint64(rest[1:])}
		plen := int(binary.LittleEndian.Uint32(rest[9:]))
		rest = rest[13:]
		if plen > maxFramePayload || len(rest) < plen {
			return nil, ErrMalformedShip
		}
		f.Payload = rest[:plen:plen]
		rest = rest[plen:]
		r.Frames = append(r.Frames, f)
	}
	if len(rest) != 8+2*seal.HashSize {
		return nil, ErrMalformedShip
	}
	r.Seq = binary.LittleEndian.Uint64(rest)
	copy(r.Digest[:], rest[8:])
	copy(r.Sig[:], rest[8+seal.HashSize:])
	return r, nil
}
