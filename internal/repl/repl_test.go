package repl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"treaty/internal/erpc"
	"treaty/internal/lsm"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/simnet"
	"treaty/internal/vfs"
)

func testKey(t *testing.T) seal.Key {
	t.Helper()
	k, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func group(key seal.Key, prev [seal.HashSize]byte, seq uint64, frames ...Frame) *ShipRequest {
	r := &ShipRequest{Stream: StreamWAL, Primary: 7, Frames: frames, Seq: seq}
	r.Digest = ChainDigest(prev, frames)
	r.Sign(key)
	return r
}

func TestShipRequestRoundTrip(t *testing.T) {
	key := testKey(t)
	r := group(key, [seal.HashSize]byte{}, 1,
		Frame{Kind: 1, Counter: 10, Payload: []byte("hello")},
		Frame{Kind: 3, Counter: 11, Payload: nil},
		Frame{Kind: 2, Counter: 12, Payload: bytes.Repeat([]byte{0xAB}, 300)},
	)
	got, err := DecodeShipRequest(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != r.Stream || got.Primary != r.Primary || got.Seq != r.Seq ||
		got.Digest != r.Digest || got.Sig != r.Sig || len(got.Frames) != 3 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	for i := range r.Frames {
		if got.Frames[i].Kind != r.Frames[i].Kind ||
			got.Frames[i].Counter != r.Frames[i].Counter ||
			!bytes.Equal(got.Frames[i].Payload, r.Frames[i].Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if !got.VerifySig(key) {
		t.Fatal("signature did not survive the round trip")
	}
}

func TestDecodeShipRequestRejectsJunk(t *testing.T) {
	key := testKey(t)
	good := group(key, [seal.HashSize]byte{}, 1, Frame{Kind: 1, Counter: 5, Payload: []byte("x")}).Encode()
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:8],
		"bad version": append([]byte{99}, good[1:]...),
		"bad stream":  append([]byte{good[0], 77}, good[2:]...),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := DecodeShipRequest(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func newTestBackup(t *testing.T, fs vfs.FS, dir string, key seal.Key) (*Backup, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	b, err := NewBackup(BackupConfig{Dir: dir, FS: fs, Key: key, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return b, reg
}

// rawKey bypasses KeyFor so tests can hand groups the exact proof key
// the backup derived.
func signRaw(b *Backup, r *ShipRequest) { r.Sign(b.key) }

func TestBackupMirrorsAndSurvivesReopen(t *testing.T) {
	fs := vfs.NewMemFS()
	key := testKey(t)
	b, _ := newTestBackup(t, fs, "node", key)

	var prev [seal.HashSize]byte
	var reqs []*ShipRequest
	for seq := uint64(1); seq <= 3; seq++ {
		r := &ShipRequest{Stream: StreamWAL, Primary: 7, Seq: seq, Frames: []Frame{
			{Kind: 1, Counter: seq * 10, Payload: []byte{byte(seq)}},
		}}
		r.Digest = ChainDigest(prev, r.Frames)
		signRaw(b, r)
		if _, errMsg := b.ingest(r.Encode()); errMsg != "" {
			t.Fatalf("group %d rejected: %s", seq, errMsg)
		}
		prev = r.Digest
		reqs = append(reqs, r)
	}
	seq, digest, ok := b.StreamState(7, StreamWAL)
	if !ok || seq != 3 || digest != prev {
		t.Fatalf("stream state = (%d, ok=%v), want (3, true)", seq, ok)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened backup replays its mirror files to the same state.
	b2, _ := newTestBackup(t, fs, "node", key)
	seq, digest, ok = b2.StreamState(7, StreamWAL)
	if !ok || seq != 3 || digest != prev {
		t.Fatalf("reopened stream state = (%d, ok=%v), want (3, true)", seq, ok)
	}
	frames := b2.Frames(7, StreamWAL)
	if len(frames) != 3 || frames[2].Counter != 30 {
		t.Fatalf("reopened frames = %+v", frames)
	}
	for _, r := range reqs {
		if d, ok := b2.DigestAt(7, StreamWAL, r.Seq); !ok || d != r.Digest {
			t.Fatalf("boundary digest at %d lost across reopen", r.Seq)
		}
	}
}

func TestBackupTruncatesTornTail(t *testing.T) {
	fs := vfs.NewMemFS()
	key := testKey(t)
	b, _ := newTestBackup(t, fs, "node", key)
	r := &ShipRequest{Stream: StreamClog, Primary: 3, Seq: 1, Frames: []Frame{
		{Kind: 1, Counter: 1, Payload: []byte("entry")},
	}}
	r.Digest = ChainDigest([seal.HashSize]byte{}, r.Frames)
	signRaw(b, r)
	if _, errMsg := b.ingest(r.Encode()); errMsg != "" {
		t.Fatal(errMsg)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// A power cut mid-append leaves a torn record at the tail.
	path := filepath.Join("node", "repl", "p3-s2.mirror")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2, _ := newTestBackup(t, fs, "node", key)
	seq, _, ok := b2.StreamState(3, StreamClog)
	if !ok || seq != 1 {
		t.Fatalf("after torn tail: seq = %d, want 1", seq)
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+len(r.Encode()) {
		t.Fatalf("torn tail not truncated: %d bytes", len(data))
	}
}

func TestBackupRejectsBadGroups(t *testing.T) {
	fs := vfs.NewMemFS()
	key := testKey(t)
	b, reg := newTestBackup(t, fs, "node", key)
	mk := func(seq uint64, prev [seal.HashSize]byte, payload string) *ShipRequest {
		r := &ShipRequest{Stream: StreamWAL, Primary: 1, Seq: seq, Frames: []Frame{
			{Kind: 1, Counter: seq, Payload: []byte(payload)},
		}}
		r.Digest = ChainDigest(prev, r.Frames)
		signRaw(b, r)
		return r
	}
	first := mk(1, [seal.HashSize]byte{}, "a")
	if _, errMsg := b.ingest(first.Encode()); errMsg != "" {
		t.Fatal(errMsg)
	}

	// Retried duplicate of mirrored history: idempotent ack.
	if _, errMsg := b.ingest(first.Encode()); errMsg != "" {
		t.Fatalf("idempotent duplicate rejected: %s", errMsg)
	}
	// Duplicate seq with different content: a fork, rejected.
	if _, errMsg := b.ingest(mk(1, [seal.HashSize]byte{}, "FORK").Encode()); !strings.Contains(errMsg, "divergent duplicate") {
		t.Fatalf("divergent duplicate: got %q", errMsg)
	}
	// A gap (seq 3 after 1) would hide a lost group.
	if _, errMsg := b.ingest(mk(3, first.Digest, "c").Encode()); !strings.Contains(errMsg, "group gap") {
		t.Fatalf("gap: got %q", errMsg)
	}
	// A next group chained from the wrong prefix digest.
	if _, errMsg := b.ingest(mk(2, [seal.HashSize]byte{0xFF}, "b").Encode()); !strings.Contains(errMsg, "digest mismatch") {
		t.Fatalf("bad chain: got %q", errMsg)
	}
	// An unsigned (wrong-key) group.
	forged := mk(2, first.Digest, "b")
	forged.Sig[0] ^= 1
	if _, errMsg := b.ingest(forged.Encode()); !strings.Contains(errMsg, "proof signature") {
		t.Fatalf("bad sig: got %q", errMsg)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["repl.recv_rejected"]; got != 4 {
		t.Fatalf("recv_rejected = %d, want 4", got)
	}
	if got := snap.Counters["repl.recv_groups"]; got != 6 {
		t.Fatalf("recv_groups = %d, want 6", got)
	}
	if got := snap.Counters["repl.recv_acked"]; got != 2 {
		t.Fatalf("recv_acked = %d, want 2", got)
	}
}

// witnessRec is a test Witness recording every report.
type witnessRec struct {
	seqs     map[uint8]uint64
	digests  map[uint8][seal.HashSize]byte
	degraded map[uint8]bool
}

func newWitnessRec() *witnessRec {
	return &witnessRec{
		seqs:     make(map[uint8]uint64),
		digests:  make(map[uint8][seal.HashSize]byte),
		degraded: make(map[uint8]bool),
	}
}

func (w *witnessRec) ReplWitness(primary uint64, stream uint8, seq uint64, digest [seal.HashSize]byte) {
	w.seqs[stream] = seq
	w.digests[stream] = digest
}

func (w *witnessRec) ReplDegrade(primary uint64, stream uint8) { w.degraded[stream] = true }

// shipperRig is a live shipper→backup pair over a simulated network.
type shipperRig struct {
	shipper *Shipper
	backup  *Backup
	witness *witnessRec
	reg     *obs.Registry
}

func newShipperRig(t *testing.T, backupOf func() (uint64, bool)) *shipperRig {
	t.Helper()
	n := simnet.New(simnet.LinkConfig{}, 1)
	t.Cleanup(n.Close)
	key := testKey(t)
	mkEP := func(addr string, id uint64) *erpc.Endpoint {
		nep, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := erpc.NewEndpoint(erpc.Config{
			NodeID:     id,
			Transport:  erpc.NewSimTransport(nep, nil, erpc.KindDPDK),
			NetworkKey: key,
			Secure:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		p := erpc.StartPoller(ep)
		t.Cleanup(p.Stop)
		return ep
	}
	priEP := mkEP("primary", 1)
	bakEP := mkEP("backup", 2)

	reg := obs.NewRegistry()
	backup, err := NewBackup(BackupConfig{Dir: "bak", FS: vfs.NewMemFS(), Key: key, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backup.Close() })
	bakEP.Register(0x18, backup.Handler())

	if backupOf == nil {
		backupOf = func() (uint64, bool) { return 2, true }
	}
	w := newWitnessRec()
	shipper := NewShipper(ShipperConfig{
		Stream:   StreamWAL,
		Primary:  1,
		Endpoint: priEP,
		BackupOf: backupOf,
		AddrOf: func(id uint64) (string, bool) {
			if id == 2 {
				return "backup", true
			}
			return "", false
		},
		Witness: w,
		Key:     key,
		Timeout: 100 * time.Millisecond,
		Metrics: reg,
	})
	return &shipperRig{shipper: shipper, backup: backup, witness: w, reg: reg}
}

func TestShipperReplicatesAndWitnesses(t *testing.T) {
	rig := newShipperRig(t, nil)
	for i := 1; i <= 3; i++ {
		rig.shipper.Ship([]lsm.ReplEntry{
			{Kind: 1, Counter: uint64(i * 10), Payload: []byte{byte(i)}},
			{Kind: 1, Counter: uint64(i*10 + 1), Payload: []byte{byte(i), byte(i)}},
		})
	}
	if got := rig.shipper.Seq(); got != 3 {
		t.Fatalf("shipper seq = %d, want 3", got)
	}
	seq, digest, ok := rig.backup.StreamState(1, StreamWAL)
	if !ok || seq != 3 {
		t.Fatalf("backup state = (%d, %v)", seq, ok)
	}
	if rig.witness.seqs[StreamWAL] != 3 || rig.witness.digests[StreamWAL] != digest {
		t.Fatalf("witness = %d (digest match %v), want 3/true",
			rig.witness.seqs[StreamWAL], rig.witness.digests[StreamWAL] == digest)
	}
	if rig.witness.degraded[StreamWAL] {
		t.Fatal("stream degraded on the happy path")
	}
	frames := rig.backup.Frames(1, StreamWAL)
	if len(frames) != 6 {
		t.Fatalf("mirrored %d frames, want 6", len(frames))
	}
	snap := rig.reg.Snapshot()
	if snap.Counters["repl.ship_groups"] != 3 || snap.Counters["repl.ship_acked"] != 3 {
		t.Fatalf("ship counters: %+v", snap.Counters)
	}
}

func TestShipperDegradesWhenBackupUnreachable(t *testing.T) {
	rig := newShipperRig(t, nil)
	rig.shipper.Ship([]lsm.ReplEntry{{Kind: 1, Counter: 1, Payload: []byte("a")}})
	if rig.shipper.Seq() != 1 {
		t.Fatal("first group did not replicate")
	}
	// The backup dies: the mirror can no longer cover groups the
	// primary is about to stabilize, so the stream must degrade (and
	// stay degraded) rather than silently fall behind.
	rig.backup.Close()
	rig.shipper.cfg.AddrOf = func(uint64) (string, bool) { return "", false }
	rig.shipper.Ship([]lsm.ReplEntry{{Kind: 1, Counter: 2, Payload: []byte("b")}})
	if !rig.witness.degraded[StreamWAL] {
		t.Fatal("stream did not degrade after losing its backup")
	}
	rig.shipper.Ship([]lsm.ReplEntry{{Kind: 1, Counter: 3, Payload: []byte("c")}})
	snap := rig.reg.Snapshot()
	if snap.Counters["repl.ship_failed"] != 1 {
		t.Fatalf("ship_failed = %d, want 1", snap.Counters["repl.ship_failed"])
	}
	if snap.Counters["repl.ship_skipped"] != 1 {
		t.Fatalf("ship_skipped = %d, want 1 (degraded groups are skipped)", snap.Counters["repl.ship_skipped"])
	}
	if got := snap.Counters["repl.ship_groups"]; got != 3 {
		t.Fatalf("ship_groups = %d, want 3", got)
	}
}

func TestShipperStoppedIsSilent(t *testing.T) {
	rig := newShipperRig(t, nil)
	rig.shipper.Stop()
	rig.shipper.Ship([]lsm.ReplEntry{{Kind: 1, Counter: 1, Payload: []byte("a")}})
	if rig.witness.degraded[StreamWAL] {
		t.Fatal("teardown-time ship degraded the stream")
	}
	if len(rig.witness.seqs) != 0 {
		t.Fatal("teardown-time ship witnessed")
	}
	if got := rig.reg.Snapshot().Counters["repl.ship_groups"]; got != 0 {
		t.Fatalf("stopped ship counted: %d", got)
	}
}

func TestShipperUnassignedSkipsUntilBound(t *testing.T) {
	assigned := false
	rig := newShipperRig(t, nil)
	rig.shipper.cfg.BackupOf = func() (uint64, bool) { return 2, assigned }
	rig.shipper.Ship([]lsm.ReplEntry{{Kind: 1, Counter: 1, Payload: []byte("a")}})
	if rig.witness.degraded[StreamWAL] {
		t.Fatal("unbound stream degraded on missing assignment")
	}
	snap := rig.reg.Snapshot()
	if snap.Counters["repl.ship_unassigned"] != 1 || snap.Counters["repl.ship_skipped"] != 1 {
		t.Fatalf("unassigned counters: %+v", snap.Counters)
	}
	// Once bound, losing the assignment is a degrade: stabilized groups
	// would outrun the mirror.
	assigned = true
	rig.shipper.Ship([]lsm.ReplEntry{{Kind: 1, Counter: 2, Payload: []byte("b")}})
	if rig.shipper.Seq() != 1 {
		t.Fatal("bound ship did not replicate")
	}
	assigned = false
	rig.shipper.Ship([]lsm.ReplEntry{{Kind: 1, Counter: 3, Payload: []byte("c")}})
	if !rig.witness.degraded[StreamWAL] {
		t.Fatal("bound stream did not degrade on losing its assignment")
	}
}

func FuzzReplStreamDecode(f *testing.F) {
	var key seal.Key
	copy(key[:], bytes.Repeat([]byte{7}, len(key)))
	seed := group(key, [seal.HashSize]byte{}, 1,
		Frame{Kind: 1, Counter: 42, Payload: []byte("seed-payload")},
		Frame{Kind: 2, Counter: 43, Payload: []byte{}},
	)
	f.Add(seed.Encode())
	f.Add([]byte{})
	f.Add([]byte{frameVersion, StreamWAL})
	big := group(key, [seal.HashSize]byte{}, 9, Frame{Kind: 3, Counter: 1, Payload: bytes.Repeat([]byte{1}, 4096)})
	f.Add(big.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeShipRequest(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical bytes: the
		// mirror file stores raw requests and replays them through this
		// decoder, so decode/encode must be a faithful round trip.
		if !bytes.Equal(r.Encode(), data) {
			t.Fatalf("decode/encode not idempotent for %x", data)
		}
	})
}
