package repl

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"treaty/internal/erpc"
	"treaty/internal/lsm"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/twopc"
)

// debugShip logs teardown-window skips to stderr (TREATY_DEBUG_PROMOTE=1).
var debugShip = os.Getenv("TREATY_DEBUG_PROMOTE") != ""

// Witness is the trusted anchor the shipper reports to before letting a
// group stabilize: implemented by *attest.CAS. ReplWitness records a
// replicated group; ReplDegrade durably marks the stream unpromotable
// after a ship failure (the stable prefix is about to outrun the
// mirror).
type Witness interface {
	ReplWitness(primary uint64, stream uint8, seq uint64, digest [seal.HashSize]byte)
	ReplDegrade(primary uint64, stream uint8)
}

// ShipperConfig configures one stream's shipper.
type ShipperConfig struct {
	// Stream is StreamWAL or StreamClog.
	Stream uint8
	// Primary is this node's cluster id.
	Primary uint64
	// Endpoint sends the ship RPCs.
	Endpoint *erpc.Endpoint
	// BackupOf returns the current backup node id for this primary's
	// slots (false if unassigned). Consulted per group, so a promotion
	// that consumes the backup stops shipping cleanly.
	BackupOf func() (uint64, bool)
	// AddrOf resolves a node id to its RPC address through the current
	// shard map (id-keyed, never positional).
	AddrOf func(uint64) (string, bool)
	// Witness is the CAS anchor; required.
	Witness Witness
	// Key is the cluster network key (the proof key is derived).
	Key seal.Key
	// Timeout bounds one ship attempt (default 250ms).
	Timeout time.Duration
	// Attempts bounds ship retries per group (default 8, with
	// exponential backoff between attempts). The backup acks duplicate
	// sequence numbers idempotently, so retrying a timed-out group is
	// safe. The budget is the de-facto backup failure detector: a group
	// that exhausts it durably degrades the stream, so it must be
	// generous enough that transient packet loss practically never
	// burns a stream's promotability — one lost datagram costs a whole
	// attempt (erpc.Call does not retransmit within a timeout).
	Attempts int
	// Metrics, when non-nil, exports the repl.ship_* counters.
	Metrics *obs.Registry
}

// Shipper replicates one log stream. It is driven synchronously from
// the log's group-commit leader (the lsm committer or the Clog leader)
// via the Ship hook, so calls never overlap and the per-stream sequence
// is race-free.
type Shipper struct {
	cfg     ShipperConfig
	key     seal.Key
	seq     uint64
	digest  [seal.HashSize]byte
	target  uint64
	bound   bool
	stopped atomic.Bool

	// degraded latches after a ship failure: the stream's stable prefix
	// has outrun the mirror, so later groups are skipped (resync is out
	// of scope) and the witness carries a durable degrade mark.
	degraded bool

	opID atomic.Uint64

	groups    *obs.Counter
	acked     *obs.Counter
	failed    *obs.Counter
	skipped   *obs.Counter
	seqGauge  *obs.Gauge
	noBackups *obs.Counter
}

// NewShipper creates a shipper for one stream.
func NewShipper(cfg ShipperConfig) *Shipper {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 8
	}
	s := &Shipper{cfg: cfg, key: KeyFor(cfg.Key)}
	// Per-boot random OpID base, like the coordinator's: a restarted
	// shipper must not collide with its previous incarnation's ids in
	// the receiver's replay cache.
	var b [4]byte
	_, _ = rand.Read(b[:])
	s.opID.Store(uint64(binary.LittleEndian.Uint32(b[:])) << 16)
	if m := cfg.Metrics; m != nil {
		s.groups = m.Counter("repl.ship_groups")
		s.acked = m.Counter("repl.ship_acked")
		s.failed = m.Counter("repl.ship_failed")
		s.skipped = m.Counter("repl.ship_skipped")
		s.noBackups = m.Counter("repl.ship_unassigned")
		if cfg.Stream == StreamWAL {
			s.seqGauge = m.Gauge("repl.shipped_seq.wal")
		} else {
			s.seqGauge = m.Gauge("repl.shipped_seq.clog")
		}
	}
	return s
}

// Stop makes later Ship calls no-ops (teardown: the node is shutting
// down and its endpoint is about to close).
func (s *Shipper) Stop() { s.stopped.Store(true) }

// Seq returns the last acked group sequence.
func (s *Shipper) Seq() uint64 { return s.seq }

// Ship is the group-commit hook: it replicates one fsynced group to
// the backup and witnesses the ack to the CAS, returning only when the
// group is either replicated-and-witnessed or the stream is durably
// degraded. It runs on the log's leader goroutine — for the WAL, with
// the DB lock held — so everything here must stay off this node's own
// commit path.
func (s *Shipper) Ship(entries []lsm.ReplEntry) {
	if len(entries) == 0 {
		return
	}
	if s.stopped.Load() {
		if debugShip {
			fmt.Fprintf(os.Stderr, "[repl] primary=%d stream=%d SKIP(stopped-early) group seq=%d frames=%d\n",
				s.cfg.Primary, s.cfg.Stream, s.seq+1, len(entries))
		}
		return
	}
	s.groups.Inc()
	if s.degraded {
		s.skipped.Inc()
		return
	}
	id, ok := s.cfg.BackupOf()
	if !ok || id == s.cfg.Primary {
		if !s.bound {
			// Never had a backup (single node, replication-free slot
			// layout): nothing was ever witnessed, so nothing
			// constrains later promotion.
			s.noBackups.Inc()
			s.skipped.Inc()
			return
		}
		// The stream had a live mirror and lost its assignment (a
		// promotion consumed the backup): stabilized groups are about
		// to outrun that mirror, so it must not remain promotable.
		s.degrade()
		return
	}
	if s.bound && id != s.target {
		// The backup assignment changed mid-stream. The new target has
		// no mirror prefix to extend (resync is out of scope), so the
		// stream degrades rather than fork.
		s.degrade()
		return
	}
	addr, ok := s.cfg.AddrOf(id)
	if !ok {
		s.degrade()
		return
	}

	req := &ShipRequest{
		Stream:  s.cfg.Stream,
		Primary: s.cfg.Primary,
		Frames:  make([]Frame, len(entries)),
		Seq:     s.seq + 1,
	}
	for i, e := range entries {
		req.Frames[i] = Frame{Kind: e.Kind, Counter: e.Counter, Payload: e.Payload}
	}
	req.Digest = ChainDigest(s.digest, req.Frames)
	req.Sign(s.key)
	payload := req.Encode()

	backoff := 25 * time.Millisecond
	for attempt := 0; attempt < s.cfg.Attempts; attempt++ {
		if attempt > 0 {
			// Back off like erpc.CallRetry: under bursty loss or delay,
			// immediate re-sends tend to die the same death, and each
			// failed attempt here spends a full Timeout anyway.
			time.Sleep(backoff)
			if backoff *= 2; backoff > 200*time.Millisecond {
				backoff = 200 * time.Millisecond
			}
		}
		md := seal.MsgMetadata{OpID: s.opID.Add(1), OpType: uint32(twopc.ReqReplShip)}
		resp, err := erpc.Call(s.cfg.Endpoint, addr, twopc.ReqReplShip, md, payload, s.cfg.Timeout, nil)
		if err != nil {
			if s.stopped.Load() {
				break // teardown raced the ship; see the stopped check below
			}
			continue
		}
		if len(resp) != 8 || binary.LittleEndian.Uint64(resp) < req.Seq {
			continue
		}
		// Witness BEFORE returning: the caller stabilizes the group's
		// counter right after this hook, and the promotion gate is only
		// sound if the witness covers every stabilized group.
		s.cfg.Witness.ReplWitness(s.cfg.Primary, s.cfg.Stream, req.Seq, req.Digest)
		s.seq = req.Seq
		s.digest = req.Digest
		s.target, s.bound = id, true
		s.acked.Inc()
		s.seqGauge.Set(int64(s.seq))
		return
	}
	if s.stopped.Load() {
		// The node is tearing down: the failure is the teardown's, not
		// the stream's, and the group's ack can no longer reach anyone
		// (see Node.stopShippers for why skipping is sound here).
		if debugShip {
			fmt.Fprintf(os.Stderr, "[repl] primary=%d stream=%d SKIP(stopped-raced) group seq=%d frames=%d\n",
				s.cfg.Primary, s.cfg.Stream, s.seq+1, len(entries))
		}
		s.skipped.Inc()
		return
	}
	s.degrade()
}

// degrade durably marks the stream unpromotable before the caller
// stabilizes the unreplicated group.
func (s *Shipper) degrade() {
	s.degraded = true
	s.cfg.Witness.ReplDegrade(s.cfg.Primary, s.cfg.Stream)
	s.failed.Inc()
}
