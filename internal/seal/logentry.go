package seal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// SecurityLevel selects how much protection the storage and network codecs
// apply. The levels correspond to the system versions evaluated in the
// paper: a native RocksDB-like build (LevelNone), Treaty without encryption
// (LevelIntegrity: authenticated but plaintext), and full Treaty
// (LevelEncrypted: confidentiality + integrity + freshness).
type SecurityLevel int

const (
	// LevelNone applies only CRC32 checksums, like stock RocksDB.
	LevelNone SecurityLevel = iota + 1
	// LevelIntegrity adds SHA-256 hash chains and counter binding but
	// stores payloads in plaintext (Treaty w/o Enc).
	LevelIntegrity
	// LevelEncrypted additionally encrypts payloads with AES-256-GCM
	// (Treaty w/ Enc).
	LevelEncrypted
)

// String returns the human-readable name of the level.
func (l SecurityLevel) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelIntegrity:
		return "integrity"
	case LevelEncrypted:
		return "encrypted"
	default:
		return fmt.Sprintf("SecurityLevel(%d)", int(l))
	}
}

// Log-entry errors.
var (
	// ErrBadChecksum indicates a CRC mismatch on a LevelNone entry.
	ErrBadChecksum = errors.New("seal: log entry checksum mismatch")
	// ErrChainBroken indicates the hash chain was violated: an entry was
	// deleted, reordered, or tampered with (state-continuity violation).
	ErrChainBroken = errors.New("seal: log hash chain broken")
	// ErrCounterGap indicates log entry counter values are not
	// deterministically increasing — a rollback or splice attack.
	ErrCounterGap = errors.New("seal: log counter discontinuity")
)

// LogEntry is one authenticated record in a Treaty log file (WAL, Clog, or
// MANIFEST). Every entry carries a unique, monotonic, deterministically
// increasing trusted-counter value; recovery uses the counter and the hash
// chain to detect rollback and splicing (§VI).
type LogEntry struct {
	// Counter is the trusted-counter value bound to this entry.
	Counter uint64
	// Kind is an application tag (e.g. WAL put batch, Clog prepare).
	Kind uint8
	// Payload is the record body (decrypted if the log is encrypted).
	Payload []byte
}

// logEntryHeader is the fixed on-disk prefix of an entry:
// counter(8) kind(1) payloadLen(4).
const logEntryHeaderLen = 8 + 1 + 4

// LogCodec frames, authenticates, and (optionally) encrypts log entries.
// Entries are hash-chained: entry i's trailer is
// SHA-256(prevHash ∥ header ∥ storedPayload); the chain head is the file's
// genesis hash. At LevelNone the trailer is a CRC32 of the header+payload
// and no chaining is performed, matching a native RocksDB-style WAL.
//
// LogCodec is not safe for concurrent use; callers serialize appends (log
// files are written sequentially, §VI).
type LogCodec struct {
	level    SecurityLevel
	cipher   *Cipher
	prevHash [HashSize]byte
	nextCtr  uint64
}

// NewLogCodec creates a codec for one log file. key is ignored at levels
// below LevelEncrypted. genesis seeds the hash chain (use the file's
// identity so chains from different files are not interchangeable).
// firstCounter is the counter value expected for the first entry.
func NewLogCodec(level SecurityLevel, key Key, genesis string, firstCounter uint64) (*LogCodec, error) {
	lc := &LogCodec{
		level:    level,
		prevHash: Hash([]byte(genesis)),
		nextCtr:  firstCounter,
	}
	if level == LevelEncrypted {
		c, err := NewCipher(DeriveKey(key, "treaty/log/"+genesis))
		if err != nil {
			return nil, fmt.Errorf("seal: creating log cipher: %w", err)
		}
		lc.cipher = c
	}
	return lc, nil
}

// Level returns the codec's security level.
func (lc *LogCodec) Level() SecurityLevel { return lc.level }

// NextCounter returns the counter value the next appended entry will carry.
func (lc *LogCodec) NextCounter() uint64 { return lc.nextCtr }

// ChainHash returns the current head of the hash chain.
func (lc *LogCodec) ChainHash() [HashSize]byte { return lc.prevHash }

// AppendEntry frames payload as the next log entry and appends the encoded
// bytes to dst, returning the extended slice and the entry's counter value.
// The counter advances deterministically by one per entry.
func (lc *LogCodec) AppendEntry(dst []byte, kind uint8, payload []byte) ([]byte, uint64) {
	ctr := lc.nextCtr
	lc.nextCtr++

	stored := payload
	if lc.level == LevelEncrypted {
		stored = lc.cipher.Seal(payload, nil)
	}

	var hdr [logEntryHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:], ctr)
	hdr[8] = kind
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(stored)))

	dst = append(dst, hdr[:]...)
	dst = append(dst, stored...)

	switch lc.level {
	case LevelNone:
		crc := crc32.NewIEEE()
		crc.Write(hdr[:])
		crc.Write(stored)
		var tr [4]byte
		binary.LittleEndian.PutUint32(tr[:], crc.Sum32())
		dst = append(dst, tr[:]...)
	default:
		h := HashConcat(lc.prevHash[:], hdr[:], stored)
		lc.prevHash = h
		dst = append(dst, h[:]...)
	}
	return dst, ctr
}

// trailerLen returns the per-entry trailer size for the codec's level.
func (lc *LogCodec) trailerLen() int {
	if lc.level == LevelNone {
		return 4
	}
	return HashSize
}

// DecodeEntry parses and verifies the next entry from buf, which must begin
// at an entry boundary. It returns the entry, the number of bytes consumed,
// and an error. Verification enforces the checksum or hash chain and the
// deterministic counter sequence; violations return ErrBadChecksum,
// ErrChainBroken, or ErrCounterGap respectively.
func (lc *LogCodec) DecodeEntry(buf []byte) (LogEntry, int, error) {
	var e LogEntry
	if len(buf) < logEntryHeaderLen {
		return e, 0, ErrTruncated
	}
	ctr := binary.LittleEndian.Uint64(buf[0:])
	kind := buf[8]
	plen := int(binary.LittleEndian.Uint32(buf[9:]))
	total := logEntryHeaderLen + plen + lc.trailerLen()
	if plen < 0 || len(buf) < total {
		return e, 0, ErrTruncated
	}
	hdr := buf[:logEntryHeaderLen]
	stored := buf[logEntryHeaderLen : logEntryHeaderLen+plen]
	trailer := buf[logEntryHeaderLen+plen : total]

	switch lc.level {
	case LevelNone:
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		crc.Write(stored)
		if crc.Sum32() != binary.LittleEndian.Uint32(trailer) {
			return e, 0, ErrBadChecksum
		}
	default:
		h := HashConcat(lc.prevHash[:], hdr, stored)
		var got [HashSize]byte
		copy(got[:], trailer)
		if h != got {
			return e, 0, ErrChainBroken
		}
		if ctr != lc.nextCtr {
			return e, 0, fmt.Errorf("%w: want %d, got %d", ErrCounterGap, lc.nextCtr, ctr)
		}
		lc.prevHash = h
	}
	lc.nextCtr = ctr + 1

	payload := stored
	if lc.level == LevelEncrypted {
		p, err := lc.cipher.Open(stored, nil)
		if err != nil {
			return e, 0, err
		}
		payload = p
	} else {
		payload = make([]byte, plen)
		copy(payload, stored)
	}
	e = LogEntry{Counter: ctr, Kind: kind, Payload: payload}
	return e, total, nil
}

// EncodedLen returns the framed size of a payload of length n at the given
// level (including encryption expansion and trailer).
func EncodedLen(level SecurityLevel, n int) int {
	stored := n
	if level == LevelEncrypted {
		stored = SealedLen(n)
	}
	trailer := HashSize
	if level == LevelNone {
		trailer = 4
	}
	return logEntryHeaderLen + stored + trailer
}
