package seal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func levels() []SecurityLevel {
	return []SecurityLevel{LevelNone, LevelIntegrity, LevelEncrypted}
}

func newCodecPair(t *testing.T, level SecurityLevel, first uint64) (*LogCodec, *LogCodec) {
	t.Helper()
	k := mustKey(t)
	enc, err := NewLogCodec(level, k, "wal-000001", first)
	if err != nil {
		t.Fatalf("NewLogCodec(enc): %v", err)
	}
	dec, err := NewLogCodec(level, k, "wal-000001", first)
	if err != nil {
		t.Fatalf("NewLogCodec(dec): %v", err)
	}
	return enc, dec
}

func TestLogRoundTripAllLevels(t *testing.T) {
	for _, level := range levels() {
		t.Run(level.String(), func(t *testing.T) {
			enc, dec := newCodecPair(t, level, 10)
			var buf []byte
			payloads := [][]byte{[]byte("first"), {}, bytes.Repeat([]byte("p"), 500)}
			for i, p := range payloads {
				var ctr uint64
				buf, ctr = enc.AppendEntry(buf, uint8(i), p)
				if ctr != uint64(10+i) {
					t.Fatalf("entry %d counter = %d, want %d", i, ctr, 10+i)
				}
			}
			off := 0
			for i, want := range payloads {
				e, n, err := dec.DecodeEntry(buf[off:])
				if err != nil {
					t.Fatalf("DecodeEntry(%d): %v", i, err)
				}
				if e.Counter != uint64(10+i) || e.Kind != uint8(i) || !bytes.Equal(e.Payload, want) {
					t.Fatalf("entry %d mismatch: %+v", i, e)
				}
				off += n
			}
			if off != len(buf) {
				t.Errorf("consumed %d of %d bytes", off, len(buf))
			}
		})
	}
}

func TestLogEncryptedPayloadIsConfidential(t *testing.T) {
	enc, _ := newCodecPair(t, LevelEncrypted, 0)
	secret := []byte("very-secret-value-0123456789")
	buf, _ := enc.AppendEntry(nil, 1, secret)
	if bytes.Contains(buf, secret) {
		t.Error("plaintext leaked into encrypted log entry")
	}
}

func TestLogPlainLevelsExposePayload(t *testing.T) {
	enc, _ := newCodecPair(t, LevelIntegrity, 0)
	payload := []byte("public-but-authenticated")
	buf, _ := enc.AppendEntry(nil, 1, payload)
	if !bytes.Contains(buf, payload) {
		t.Error("integrity-level entries should store plaintext")
	}
}

func TestLogTamperDetection(t *testing.T) {
	for _, level := range []SecurityLevel{LevelIntegrity, LevelEncrypted} {
		t.Run(level.String(), func(t *testing.T) {
			enc, _ := newCodecPair(t, level, 0)
			buf, _ := enc.AppendEntry(nil, 1, []byte("payload-A"))
			for i := range buf {
				k := mustKeyDup(t, enc)
				dec, err := NewLogCodec(level, k, "wal-000001", 0)
				if err != nil {
					t.Fatal(err)
				}
				mutated := bytes.Clone(buf)
				mutated[i] ^= 0x01
				if _, _, err := dec.DecodeEntry(mutated); err == nil {
					t.Fatalf("flipping byte %d went undetected", i)
				}
			}
		})
	}
}

// mustKeyDup extracts no key (codecs don't expose keys); tamper tests that
// need a fresh decoder chain use a shared key captured at construction.
// Helper retained for clarity: tampering is detected regardless of key,
// because the hash chain covers the stored bytes.
func mustKeyDup(t *testing.T, _ *LogCodec) Key {
	t.Helper()
	return Key{} // any key: chain verification fails before decryption
}

func TestLogCRCDetectsCorruption(t *testing.T) {
	enc, dec := newCodecPair(t, LevelNone, 0)
	buf, _ := enc.AppendEntry(nil, 1, []byte("rocksdb-style"))
	mutated := bytes.Clone(buf)
	mutated[logEntryHeaderLen] ^= 0xFF
	if _, _, err := dec.DecodeEntry(mutated); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("got %v, want ErrBadChecksum", err)
	}
}

func TestLogDetectsReorder(t *testing.T) {
	enc, dec := newCodecPair(t, LevelIntegrity, 0)
	var buf []byte
	buf, _ = enc.AppendEntry(buf, 1, []byte("entry-0"))
	split := len(buf)
	buf, _ = enc.AppendEntry(buf, 1, []byte("entry-1"))
	// Present entry 1 before entry 0: the chain must break immediately.
	swapped := append(bytes.Clone(buf[split:]), buf[:split]...)
	if _, _, err := dec.DecodeEntry(swapped); !errors.Is(err, ErrChainBroken) {
		t.Errorf("got %v, want ErrChainBroken", err)
	}
}

func TestLogDetectsDeletion(t *testing.T) {
	enc, dec := newCodecPair(t, LevelIntegrity, 0)
	var buf []byte
	buf, _ = enc.AppendEntry(buf, 1, []byte("entry-0"))
	split := len(buf)
	buf, _ = enc.AppendEntry(buf, 1, []byte("entry-1"))
	// Drop entry 0 entirely — state continuity is violated.
	if _, _, err := dec.DecodeEntry(buf[split:]); !errors.Is(err, ErrChainBroken) {
		t.Errorf("got %v, want ErrChainBroken", err)
	}
}

func TestLogDetectsCrossFileSplice(t *testing.T) {
	k := mustKey(t)
	encA, err := NewLogCodec(LevelIntegrity, k, "wal-000001", 0)
	if err != nil {
		t.Fatal(err)
	}
	decB, err := NewLogCodec(LevelIntegrity, k, "wal-000002", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := encA.AppendEntry(nil, 1, []byte("belongs-to-A"))
	if _, _, err := decB.DecodeEntry(buf); !errors.Is(err, ErrChainBroken) {
		t.Errorf("splicing entry across files: got %v, want ErrChainBroken", err)
	}
}

func TestLogTruncatedEntry(t *testing.T) {
	enc, dec := newCodecPair(t, LevelIntegrity, 0)
	buf, _ := enc.AppendEntry(nil, 1, []byte("whole-entry"))
	for cut := 1; cut < len(buf); cut++ {
		fresh, err := NewLogCodec(LevelIntegrity, Key{}, "wal-000001", 0)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = fresh.DecodeEntry(buf[:cut])
		if err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
	// The intact buffer still decodes.
	if _, _, err := dec.DecodeEntry(buf); err != nil {
		t.Fatalf("intact entry: %v", err)
	}
}

func TestEncodedLen(t *testing.T) {
	for _, level := range levels() {
		enc, _ := newCodecPair(t, level, 0)
		for _, n := range []int{0, 1, 100, 4096} {
			buf, _ := enc.AppendEntry(nil, 1, make([]byte, n))
			if got := EncodedLen(level, n); got != len(buf) {
				t.Errorf("EncodedLen(%v, %d) = %d, want %d", level, n, got, len(buf))
			}
		}
	}
}

func TestLogCounterContinuesAcrossEntries(t *testing.T) {
	enc, dec := newCodecPair(t, LevelEncrypted, 100)
	var buf []byte
	for i := 0; i < 50; i++ {
		buf, _ = enc.AppendEntry(buf, 1, []byte(fmt.Sprintf("e%d", i)))
	}
	off := 0
	for i := 0; i < 50; i++ {
		e, n, err := dec.DecodeEntry(buf[off:])
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if e.Counter != uint64(100+i) {
			t.Fatalf("entry %d counter = %d, want %d", i, e.Counter, 100+i)
		}
		off += n
	}
	if dec.NextCounter() != 150 {
		t.Errorf("NextCounter = %d, want 150", dec.NextCounter())
	}
}
