package seal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Treaty's secure network message layout (§VII-A):
//
//	12 B IV ∥ 4 B pad (alignment) ∥ 80 B Tx metadata ∥ Tx data ∥ 16 B MAC
//
// Only the metadata and data are encrypted; the IV and MAC are in the
// clear, and any tampering with them causes the integrity check to fail.
// The metadata carries the coordinator node id, the transaction id
// (monotonically incremented at the coordinator) and an operation id that
// is unique per transaction request. The (node, tx, op) triple lets the
// recipient reject replayed or duplicated packets, giving at-most-once
// execution semantics for transaction operations.
const (
	// MetadataSize is the fixed size of the encrypted metadata block (80 B).
	MetadataSize = 80
	// padSize is the alignment pad between IV and ciphertext (4 B).
	padSize = 4
	// MsgOverhead is the total framing overhead of a secure message.
	MsgOverhead = IVSize + padSize + MetadataSize + MACSize
)

// ErrMalformedMessage indicates a secure message frame that cannot be parsed.
var ErrMalformedMessage = errors.New("seal: malformed secure message")

// MsgMetadata is the transaction metadata embedded (encrypted) in every
// secure message. The serialized form is exactly MetadataSize bytes.
type MsgMetadata struct {
	// NodeID identifies the coordinator node that created the transaction.
	NodeID uint64
	// TxID is the transaction id, monotonically incremented at the
	// coordinator; (NodeID, TxID) is globally unique.
	TxID uint64
	// OpID is unique per request within a transaction.
	OpID uint64
	// OpType is the operation kind (application-defined, e.g. Get/Put/
	// Prepare/Commit).
	OpType uint32
	// Flags carries protocol flags (e.g. response, error).
	Flags uint32
	// DataLen is the length of the transaction data section.
	DataLen uint32
	// KeyLen is the length of the key portion of the data section.
	KeyLen uint32
	// ValueLen is the length of the value portion of the data section.
	ValueLen uint32
	// Seq is a channel sequence number for freshness within a session.
	Seq uint64
	// Epoch stamps the shard-map epoch the sender routed under; a
	// participant whose current epoch differs rejects the operation with
	// a retriable "wrong epoch" error so the sender refetches the map.
	// Zero means unversioned (legacy frames and epoch-free protocols);
	// the field occupies previously-reserved metadata bytes, so the wire
	// format is unchanged and old frames decode with Epoch == 0.
	Epoch uint64
}

const metaEncodedLen = 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4 + 8 + 8 // 60 B used, rest reserved

// encode serializes m into a MetadataSize-byte block (reserved bytes zero).
func (m *MsgMetadata) encode(dst []byte) {
	_ = dst[MetadataSize-1]
	binary.LittleEndian.PutUint64(dst[0:], m.NodeID)
	binary.LittleEndian.PutUint64(dst[8:], m.TxID)
	binary.LittleEndian.PutUint64(dst[16:], m.OpID)
	binary.LittleEndian.PutUint32(dst[24:], m.OpType)
	binary.LittleEndian.PutUint32(dst[28:], m.Flags)
	binary.LittleEndian.PutUint32(dst[32:], m.DataLen)
	binary.LittleEndian.PutUint32(dst[36:], m.KeyLen)
	binary.LittleEndian.PutUint32(dst[40:], m.ValueLen)
	binary.LittleEndian.PutUint64(dst[44:], m.Seq)
	binary.LittleEndian.PutUint64(dst[52:], m.Epoch)
	for i := metaEncodedLen; i < MetadataSize; i++ {
		dst[i] = 0
	}
}

// decode deserializes m from a MetadataSize-byte block.
func (m *MsgMetadata) decode(src []byte) error {
	if len(src) < MetadataSize {
		return ErrMalformedMessage
	}
	m.NodeID = binary.LittleEndian.Uint64(src[0:])
	m.TxID = binary.LittleEndian.Uint64(src[8:])
	m.OpID = binary.LittleEndian.Uint64(src[16:])
	m.OpType = binary.LittleEndian.Uint32(src[24:])
	m.Flags = binary.LittleEndian.Uint32(src[28:])
	m.DataLen = binary.LittleEndian.Uint32(src[32:])
	m.KeyLen = binary.LittleEndian.Uint32(src[36:])
	m.ValueLen = binary.LittleEndian.Uint32(src[40:])
	m.Seq = binary.LittleEndian.Uint64(src[44:])
	m.Epoch = binary.LittleEndian.Uint64(src[52:])
	return nil
}

// EncodePlain serializes m into dst, which must be at least MetadataSize
// bytes. Used by the insecure ("w/o Enc") wire format ablation.
func (m *MsgMetadata) EncodePlain(dst []byte) { m.encode(dst) }

// DecodePlain deserializes m from src (at least MetadataSize bytes).
func (m *MsgMetadata) DecodePlain(src []byte) error { return m.decode(src) }

// MsgCodec seals and opens Treaty secure messages under the cluster
// network key. It is safe for concurrent use.
type MsgCodec struct {
	cipher *Cipher
}

// NewMsgCodec creates a codec for the given network key.
func NewMsgCodec(networkKey Key) (*MsgCodec, error) {
	c, err := NewCipher(DeriveKey(networkKey, "treaty/network"))
	if err != nil {
		return nil, fmt.Errorf("seal: creating message codec: %w", err)
	}
	return &MsgCodec{cipher: c}, nil
}

// SealMessage constructs the secure wire format for metadata md and payload
// data. The returned buffer is IV ∥ pad ∥ Enc(metadata ∥ data) ∥ MAC.
func (mc *MsgCodec) SealMessage(md *MsgMetadata, data []byte) []byte {
	md.DataLen = uint32(len(data))
	plain := make([]byte, MetadataSize+len(data))
	md.encode(plain[:MetadataSize])
	copy(plain[MetadataSize:], data)

	nonce := mc.cipher.nextNonce()
	out := make([]byte, IVSize+padSize, MsgOverhead+len(data))
	copy(out, nonce[:])
	// The 4-byte pad is authenticated as associated data so it cannot be
	// altered in flight.
	return mc.cipher.aead.Seal(out, nonce[:], plain, out[IVSize:IVSize+padSize])
}

// msgScratch recycles the plaintext staging buffer SealMessageInto
// assembles metadata ∥ data in before encryption; the ciphertext goes to
// the caller's buffer, so the scratch never escapes.
var msgScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// SealMessageInto is SealMessage appending into dst (which must have
// MsgWireLen(len(data)) capacity remaining to avoid reallocation —
// callers pass a pooled wire buffer and seal directly into it, keeping
// request frames off the heap). The returned slice is dst extended by
// exactly MsgWireLen(len(data)) bytes.
func (mc *MsgCodec) SealMessageInto(dst []byte, md *MsgMetadata, data []byte) []byte {
	md.DataLen = uint32(len(data))
	sp := msgScratch.Get().(*[]byte)
	plain := *sp
	if cap(plain) < MetadataSize+len(data) {
		plain = make([]byte, 0, MetadataSize+len(data))
	}
	plain = plain[:MetadataSize]
	md.encode(plain)
	plain = append(plain, data...)

	nonce := mc.cipher.nextNonce()
	base := len(dst)
	dst = append(dst, nonce[:]...)
	dst = append(dst, 0, 0, 0, 0) // authenticated alignment pad
	dst = mc.cipher.aead.Seal(dst, nonce[:], plain, dst[base+IVSize:base+IVSize+padSize])
	*sp = plain[:0]
	msgScratch.Put(sp)
	return dst
}

// OpenMessage verifies and decrypts a secure message, returning its
// metadata and payload. Returns ErrIntegrity on any tampering and
// ErrMalformedMessage if the frame is structurally invalid.
func (mc *MsgCodec) OpenMessage(wire []byte) (MsgMetadata, []byte, error) {
	var md MsgMetadata
	if len(wire) < MsgOverhead {
		return md, nil, ErrMalformedMessage
	}
	iv := wire[:IVSize]
	pad := wire[IVSize : IVSize+padSize]
	plain, err := mc.cipher.aead.Open(nil, iv, wire[IVSize+padSize:], pad)
	if err != nil {
		return md, nil, ErrIntegrity
	}
	if err := md.decode(plain); err != nil {
		return md, nil, err
	}
	data := plain[MetadataSize:]
	if int(md.DataLen) != len(data) {
		return md, nil, ErrMalformedMessage
	}
	return md, data, nil
}

// MsgWireLen returns the on-wire size of a secure message carrying a
// payload of length n.
func MsgWireLen(n int) int { return MsgOverhead + n }
