package seal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mustCodec(t *testing.T) *MsgCodec {
	t.Helper()
	mc, err := NewMsgCodec(mustKey(t))
	if err != nil {
		t.Fatalf("NewMsgCodec: %v", err)
	}
	return mc
}

func TestMessageRoundTrip(t *testing.T) {
	mc := mustCodec(t)
	md := MsgMetadata{
		NodeID: 7, TxID: 42, OpID: 3, OpType: 9, Flags: 1,
		KeyLen: 4, ValueLen: 8, Seq: 1234, Epoch: 3,
	}
	data := []byte("key1value999")
	wire := mc.SealMessage(&md, data)
	if len(wire) != MsgWireLen(len(data)) {
		t.Errorf("wire length %d, want %d", len(wire), MsgWireLen(len(data)))
	}
	got, payload, err := mc.OpenMessage(wire)
	if err != nil {
		t.Fatalf("OpenMessage: %v", err)
	}
	if got != md {
		t.Errorf("metadata mismatch: got %+v, want %+v", got, md)
	}
	if !bytes.Equal(payload, data) {
		t.Errorf("payload mismatch: %q", payload)
	}
}

func TestMessageEmptyPayload(t *testing.T) {
	mc := mustCodec(t)
	md := MsgMetadata{NodeID: 1, TxID: 1, OpID: 1}
	wire := mc.SealMessage(&md, nil)
	_, payload, err := mc.OpenMessage(wire)
	if err != nil {
		t.Fatalf("OpenMessage: %v", err)
	}
	if len(payload) != 0 {
		t.Errorf("want empty payload, got %d bytes", len(payload))
	}
}

func TestMessageTamperDetection(t *testing.T) {
	mc := mustCodec(t)
	md := MsgMetadata{NodeID: 1, TxID: 2, OpID: 3}
	wire := mc.SealMessage(&md, []byte("sensitive"))
	// Flip every byte position, including IV, pad, ciphertext and MAC —
	// all must be caught.
	for i := range wire {
		mutated := bytes.Clone(wire)
		mutated[i] ^= 0x80
		if _, _, err := mc.OpenMessage(mutated); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("flipping byte %d: got %v, want ErrIntegrity", i, err)
		}
	}
}

func TestMessageTooShort(t *testing.T) {
	mc := mustCodec(t)
	if _, _, err := mc.OpenMessage(make([]byte, MsgOverhead-1)); !errors.Is(err, ErrMalformedMessage) {
		t.Errorf("got %v, want ErrMalformedMessage", err)
	}
}

func TestMessageCrossCodecRejected(t *testing.T) {
	a := mustCodec(t)
	b := mustCodec(t)
	md := MsgMetadata{NodeID: 1}
	wire := a.SealMessage(&md, []byte("x"))
	if _, _, err := b.OpenMessage(wire); !errors.Is(err, ErrIntegrity) {
		t.Errorf("message under key A must not open under key B: %v", err)
	}
}

func TestMessageProperty(t *testing.T) {
	mc := mustCodec(t)
	f := func(node, tx, op uint64, data []byte) bool {
		md := MsgMetadata{NodeID: node, TxID: tx, OpID: op}
		gotMD, gotData, err := mc.OpenMessage(mc.SealMessage(&md, data))
		return err == nil &&
			gotMD.NodeID == node && gotMD.TxID == tx && gotMD.OpID == op &&
			bytes.Equal(gotData, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetadataEncodeDecodeAllFields(t *testing.T) {
	in := MsgMetadata{
		NodeID: ^uint64(0), TxID: 1<<63 + 5, OpID: 77,
		OpType: ^uint32(0), Flags: 0xDEADBEEF,
		DataLen: 123, KeyLen: 45, ValueLen: 78, Seq: 999,
		Epoch: 1<<40 + 6,
	}
	buf := make([]byte, MetadataSize)
	in.encode(buf)
	var out MsgMetadata
	if err := out.decode(buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if in != out {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}
