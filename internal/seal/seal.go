// Package seal provides the cryptographic primitives Treaty uses to extend
// enclave trust to untrusted storage and network: AES-256-GCM encryption,
// the secure on-wire message layout from the paper (§VII-A), authenticated
// log-entry framing with hash chaining, and key handling.
//
// All data that leaves the (simulated) enclave — values placed in host
// memory, WAL/Clog/MANIFEST entries, SSTable blocks, and RPC messages — is
// protected by this package. Integrity violations surface as
// ErrIntegrity; they are detected, never silently ignored.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// Sizes of the fixed fields in Treaty's secure formats.
const (
	// KeySize is the AES-256 key size in bytes.
	KeySize = 32
	// IVSize is the GCM nonce size (12 B per the paper's message layout).
	IVSize = 12
	// MACSize is the GCM authentication tag size (16 B).
	MACSize = 16
	// HashSize is the SHA-256 digest size used for integrity hashes.
	HashSize = sha256.Size
)

// Errors returned by this package.
var (
	// ErrIntegrity indicates an authentication/integrity check failed:
	// the ciphertext, MAC, IV, or associated data was tampered with.
	ErrIntegrity = errors.New("seal: integrity check failed")
	// ErrKeySize indicates a key of the wrong length was supplied.
	ErrKeySize = errors.New("seal: key must be 32 bytes")
	// ErrTruncated indicates a sealed buffer is too short to be valid.
	ErrTruncated = errors.New("seal: sealed data truncated")
)

// Key is a 256-bit symmetric key. Keys are provisioned to enclaves by the
// CAS after successful attestation and never leave enclave memory in
// plaintext.
type Key [KeySize]byte

// NewRandomKey generates a fresh key from the system CSPRNG.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("seal: generating key: %w", err)
	}
	return k, nil
}

// KeyFromBytes copies b into a Key. b must be exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, ErrKeySize
	}
	copy(k[:], b)
	return k, nil
}

// DeriveKey deterministically derives a sub-key from k for the given label
// (e.g. "wal", "sstable", "network"). Derivation is HMAC-SHA256(k, label),
// giving independent keys per subsystem from one provisioned master key.
func DeriveKey(k Key, label string) Key {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte(label))
	var out Key
	copy(out[:], mac.Sum(nil))
	return out
}

// Hash computes the SHA-256 digest of data.
func Hash(data []byte) [HashSize]byte {
	return sha256.Sum256(data)
}

// HashConcat computes SHA-256 over the concatenation of the given slices
// without allocating an intermediate buffer.
func HashConcat(parts ...[]byte) [HashSize]byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out [HashSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Cipher encrypts and authenticates data under a single key using
// AES-256-GCM. It is safe for concurrent use. Nonces are generated from a
// random 4-byte prefix plus a 64-bit atomic counter, guaranteeing uniqueness
// for up to 2^64 seals per Cipher without coordination.
type Cipher struct {
	aead        cipher.AEAD
	noncePrefix [4]byte
	nonceCtr    atomic.Uint64
}

// NewCipher constructs a Cipher from key.
func NewCipher(key Key) (*Cipher, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("seal: creating AES cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal: creating GCM: %w", err)
	}
	c := &Cipher{aead: aead}
	if _, err := rand.Read(c.noncePrefix[:]); err != nil {
		return nil, fmt.Errorf("seal: generating nonce prefix: %w", err)
	}
	return c, nil
}

// nextNonce produces a unique 12-byte nonce.
func (c *Cipher) nextNonce() [IVSize]byte {
	var n [IVSize]byte
	copy(n[:4], c.noncePrefix[:])
	binary.LittleEndian.PutUint64(n[4:], c.nonceCtr.Add(1))
	return n
}

// Seal encrypts plaintext with the given additional authenticated data and
// returns IV ∥ ciphertext ∥ MAC. The output is self-contained: Open needs
// only the same key and aad.
func (c *Cipher) Seal(plaintext, aad []byte) []byte {
	nonce := c.nextNonce()
	out := make([]byte, IVSize, IVSize+len(plaintext)+MACSize)
	copy(out, nonce[:])
	return c.aead.Seal(out, nonce[:], plaintext, aad)
}

// SealTo is like Seal but appends to dst, returning the extended slice.
// Useful for arena-style buffers that avoid per-record allocation.
func (c *Cipher) SealTo(dst, plaintext, aad []byte) []byte {
	nonce := c.nextNonce()
	dst = append(dst, nonce[:]...)
	return c.aead.Seal(dst, nonce[:], plaintext, aad)
}

// Open authenticates and decrypts a buffer produced by Seal. It returns
// ErrIntegrity if the data or aad was modified, and ErrTruncated if the
// buffer cannot possibly contain a valid sealed record.
func (c *Cipher) Open(sealed, aad []byte) ([]byte, error) {
	if len(sealed) < IVSize+MACSize {
		return nil, ErrTruncated
	}
	plaintext, err := c.aead.Open(nil, sealed[:IVSize], sealed[IVSize:], aad)
	if err != nil {
		return nil, ErrIntegrity
	}
	return plaintext, nil
}

// SealedLen returns the sealed size of a plaintext of length n.
func SealedLen(n int) int { return IVSize + n + MACSize }

// PlainLen returns the plaintext size of a sealed buffer of length n, or -1
// if n is too small to be a valid sealed buffer.
func PlainLen(n int) int {
	if n < IVSize+MACSize {
		return -1
	}
	return n - IVSize - MACSize
}
