package seal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mustKey(t *testing.T) Key {
	t.Helper()
	k, err := NewRandomKey()
	if err != nil {
		t.Fatalf("NewRandomKey: %v", err)
	}
	return k
}

func mustCipher(t *testing.T) *Cipher {
	t.Helper()
	c, err := NewCipher(mustKey(t))
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	return c
}

func TestKeyFromBytes(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, 16)); !errors.Is(err, ErrKeySize) {
		t.Errorf("short key: got %v, want ErrKeySize", err)
	}
	b := make([]byte, KeySize)
	for i := range b {
		b[i] = byte(i)
	}
	k, err := KeyFromBytes(b)
	if err != nil {
		t.Fatalf("KeyFromBytes: %v", err)
	}
	if !bytes.Equal(k[:], b) {
		t.Error("key bytes not copied")
	}
}

func TestDeriveKeyDistinctLabels(t *testing.T) {
	k := mustKey(t)
	a := DeriveKey(k, "wal")
	b := DeriveKey(k, "sstable")
	if a == b {
		t.Error("distinct labels must derive distinct keys")
	}
	if a != DeriveKey(k, "wal") {
		t.Error("derivation must be deterministic")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	c := mustCipher(t)
	cases := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("treaty"), 100)}
	for _, plain := range cases {
		sealed := c.Seal(plain, []byte("aad"))
		got, err := c.Open(sealed, []byte("aad"))
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", len(plain), err)
		}
		if !bytes.Equal(got, plain) {
			t.Errorf("round trip mismatch for %d-byte plaintext", len(plain))
		}
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	c := mustCipher(t)
	sealed := c.Seal([]byte("secret payload"), nil)
	for i := range sealed {
		mutated := bytes.Clone(sealed)
		mutated[i] ^= 0x01
		if _, err := c.Open(mutated, nil); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("flipping byte %d: got %v, want ErrIntegrity", i, err)
		}
	}
}

func TestOpenDetectsWrongAAD(t *testing.T) {
	c := mustCipher(t)
	sealed := c.Seal([]byte("payload"), []byte("context-a"))
	if _, err := c.Open(sealed, []byte("context-b")); !errors.Is(err, ErrIntegrity) {
		t.Errorf("wrong aad: got %v, want ErrIntegrity", err)
	}
}

func TestOpenTruncated(t *testing.T) {
	c := mustCipher(t)
	if _, err := c.Open(make([]byte, IVSize+MACSize-1), nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("got %v, want ErrTruncated", err)
	}
}

func TestOpenWrongKey(t *testing.T) {
	c1 := mustCipher(t)
	c2 := mustCipher(t)
	sealed := c1.Seal([]byte("payload"), nil)
	if _, err := c2.Open(sealed, nil); !errors.Is(err, ErrIntegrity) {
		t.Errorf("wrong key: got %v, want ErrIntegrity", err)
	}
}

func TestSealToAppends(t *testing.T) {
	c := mustCipher(t)
	prefix := []byte("prefix")
	out := c.SealTo(bytes.Clone(prefix), []byte("data"), nil)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("SealTo must preserve dst prefix")
	}
	got, err := c.Open(out[len(prefix):], nil)
	if err != nil || string(got) != "data" {
		t.Fatalf("Open after SealTo: %q, %v", got, err)
	}
}

func TestNonceUniqueness(t *testing.T) {
	c := mustCipher(t)
	seen := make(map[[IVSize]byte]bool, 1000)
	for i := 0; i < 1000; i++ {
		n := c.nextNonce()
		if seen[n] {
			t.Fatalf("nonce %x repeated at iteration %d", n, i)
		}
		seen[n] = true
	}
}

func TestSealedLenPlainLen(t *testing.T) {
	c := mustCipher(t)
	for _, n := range []int{0, 1, 100, 4096} {
		sealed := c.Seal(make([]byte, n), nil)
		if got := SealedLen(n); got != len(sealed) {
			t.Errorf("SealedLen(%d) = %d, want %d", n, got, len(sealed))
		}
		if got := PlainLen(len(sealed)); got != n {
			t.Errorf("PlainLen(%d) = %d, want %d", len(sealed), got, n)
		}
	}
	if PlainLen(IVSize+MACSize-1) != -1 {
		t.Error("PlainLen of impossible size must be -1")
	}
}

func TestSealOpenProperty(t *testing.T) {
	c := mustCipher(t)
	f := func(plain, aad []byte) bool {
		sealed := c.Seal(plain, aad)
		got, err := c.Open(sealed, aad)
		return err == nil && bytes.Equal(got, plain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashConcatMatchesHash(t *testing.T) {
	a, b := []byte("hello "), []byte("world")
	joined := Hash(append(bytes.Clone(a), b...))
	if HashConcat(a, b) != joined {
		t.Error("HashConcat must equal Hash of concatenation")
	}
}
