package shardmap

import (
	"bytes"
	"testing"

	"treaty/internal/seal"
)

// FuzzShardMapDecode drives the decode/verify path with arbitrary
// bytes: it must never panic, and anything that decodes and verifies
// must re-encode to the same bytes (a canonical-form check that keeps
// signature coverage total).
func FuzzShardMapDecode(f *testing.F) {
	var key seal.Key
	for i := range key {
		key[i] = byte(i * 7)
	}
	mapKey := KeyFor(key)

	good := Uniform([]Member{{ID: 0, Addr: "node-0"}, {ID: 1, Addr: "node-1"}, {ID: 2, Addr: "node-2"}})
	good.Sign(mapKey)
	f.Add(good.Encode())

	next := good.Clone()
	next.Epoch, next.Counter = 2, 2
	next.Slots[5] = 2
	next.Sign(mapKey)
	f.Add(next.Encode())

	// Mutants: truncated, member-count lies, flipped signature byte.
	enc := good.Encode()
	f.Add(enc[:len(enc)/2])
	lied := append([]byte(nil), enc...)
	lied[16] = 0xff
	lied[17] = 0x0f
	f.Add(lied)
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMap(data)
		if err != nil {
			return
		}
		if verr := m.Verify(mapKey, 0); verr != nil {
			return
		}
		// Verified maps are canonical: re-encoding reproduces the input.
		if !bytes.Equal(m.Encode(), data) {
			t.Fatalf("verified map is not canonical")
		}
		// And they route every key to a resolvable owner.
		if m.Owner([]byte("probe")) == "" {
			t.Fatalf("verified map routed to empty owner")
		}
	})
}
