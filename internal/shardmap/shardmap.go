// Package shardmap implements Treaty's versioned, attested shard map:
// the authoritative assignment of hash slots to cluster nodes.
//
// The key space is partitioned into NumSlots hash slots; every key maps
// to exactly one slot and every slot is owned by exactly one member at
// any epoch. The map is a piece of durable trust state exactly like the
// WAL or the Clog: the CAS signs each epoch under a key derived from
// the cluster network key and binds the epoch number to a trusted
// monotonic counter, so a rolled-back (replayed) map is detected on
// presentation — an attacker who re-serves epoch N after the cluster
// moved to N+1 cannot silently redirect keys to a stale owner (the
// rollback class of "TEE is not a Healer").
//
// Online resharding bumps the epoch: epoch N and N+1 differ only in the
// slots being migrated, and participants reject operations stamped with
// a different epoch than their current view ("wrong epoch", retriable),
// which forces clients and coordinators to refetch the map.
package shardmap

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"treaty/internal/seal"
)

// NumSlots is the number of hash slots the key space is divided into.
// Slots are the migration granule: small enough that moving one is
// cheap, large enough that the map stays tiny.
const NumSlots = 64

// Errors returned by map verification and decoding.
var (
	// ErrStaleEpoch indicates a map older than the trusted-counter
	// binding allows: a replayed (rolled-back) epoch.
	ErrStaleEpoch = errors.New("shardmap: stale epoch (rolled-back map rejected)")
	// ErrBadSignature indicates the CAS signature check failed.
	ErrBadSignature = errors.New("shardmap: bad signature")
	// ErrMalformed indicates an undecodable serialized map.
	ErrMalformed = errors.New("shardmap: malformed encoding")
)

// SlotOf maps a key to its hash slot (FNV-1a, the same hash family the
// static router used, mod NumSlots).
func SlotOf(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % NumSlots)
}

// Member is one cluster node in the map's membership table. The ID is
// the node's stable cluster id; resolution by explicit id (not list
// position) is what keeps address lookup correct as membership grows.
type Member struct {
	ID   uint64
	Addr string
}

// NoBackup is the sentinel backup ID for a slot with no replication
// backup assigned (single-node clusters, or slots orphaned by a
// promotion that consumed their backup).
const NoBackup = ^uint64(0)

// Map is one epoch of the shard map.
type Map struct {
	// Epoch is the map version, incremented by exactly one per change.
	Epoch uint64
	// Counter is the trusted-counter value bound at signing time; the
	// CAS stabilizes its shard-map counter to this value before the map
	// is released, and verification requires Counter == Epoch, so a
	// verifier holding the counter's stable value detects any older
	// epoch as a rollback.
	Counter uint64
	// Members is the membership table, ordered by ID.
	Members []Member
	// Slots assigns each hash slot to an owning member ID.
	Slots [NumSlots]uint64
	// Backups assigns each hash slot a replication backup member ID
	// (NoBackup if the slot is unreplicated). The backup is part of the
	// signed epoch: promotion flips ownership to the backup recorded
	// here, so which replica is allowed to take over is trust state,
	// not local configuration.
	Backups [NumSlots]uint64
	// Sig authenticates everything above under the CAS's map key.
	Sig [seal.HashSize]byte
}

// KeyFor derives the shard-map signing key from the cluster network
// key (provisioned only to attested enclaves and authenticated
// clients, so possession of it gates both signing and verification).
func KeyFor(networkKey seal.Key) seal.Key {
	return seal.DeriveKey(networkKey, "treaty/shardmap")
}

// SlotOwner returns the member ID owning a slot.
func (m *Map) SlotOwner(slot int) uint64 { return m.Slots[slot] }

// SlotBackup returns the replication backup of a slot and whether one
// is assigned. A backup equal to the owner counts as unassigned (the
// zero value of a hand-built map).
func (m *Map) SlotBackup(slot int) (uint64, bool) {
	b := m.Backups[slot]
	if b == NoBackup || b == m.Slots[slot] {
		return NoBackup, false
	}
	return b, true
}

// OwnerID returns the member ID owning a key.
func (m *Map) OwnerID(key []byte) uint64 { return m.Slots[SlotOf(key)] }

// Owner returns the RPC address of the node owning a key ("" if the
// owning ID is missing from the membership table — a malformed map).
func (m *Map) Owner(key []byte) string {
	addr, _ := m.Addr(m.OwnerID(key))
	return addr
}

// Addr resolves a member ID to its RPC address through the membership
// table. This is id-keyed, never positional: membership lists grow and
// a node's id is not its index.
func (m *Map) Addr(id uint64) (string, bool) {
	for _, mem := range m.Members {
		if mem.ID == id {
			return mem.Addr, true
		}
	}
	return "", false
}

// Clone returns a deep copy (maps are treated as immutable once
// signed; mutations go through a clone and a fresh signature).
func (m *Map) Clone() *Map {
	c := *m
	c.Members = append([]Member(nil), m.Members...)
	return &c
}

// Uniform builds the epoch-1 map: slots dealt round-robin across the
// members. This is the boot-time assignment the CAS signs for a fresh
// cluster.
func Uniform(members []Member) *Map {
	m := &Map{Epoch: 1, Counter: 1, Members: append([]Member(nil), members...)}
	for s := 0; s < NumSlots; s++ {
		m.Slots[s] = members[s%len(members)].ID
		if len(members) > 1 {
			m.Backups[s] = members[(s+1)%len(members)].ID
		} else {
			m.Backups[s] = NoBackup
		}
	}
	return m
}

// maxMembers bounds decoding (a malicious length prefix must not drive
// a huge allocation).
const maxMembers = 1 << 12

// encodeBody serializes everything covered by the signature.
func (m *Map) encodeBody() []byte {
	n := 8 + 8 + 2 + NumSlots*16
	for _, mem := range m.Members {
		n += 8 + 2 + len(mem.Addr)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint64(b, m.Counter)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Members)))
	for _, mem := range m.Members {
		b = binary.LittleEndian.AppendUint64(b, mem.ID)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(mem.Addr)))
		b = append(b, mem.Addr...)
	}
	for _, owner := range m.Slots {
		b = binary.LittleEndian.AppendUint64(b, owner)
	}
	for _, backup := range m.Backups {
		b = binary.LittleEndian.AppendUint64(b, backup)
	}
	return b
}

// Encode serializes the map including its signature.
func (m *Map) Encode() []byte {
	return append(m.encodeBody(), m.Sig[:]...)
}

// DecodeMap deserializes a map. The signature is carried but NOT
// checked here — call Verify with the map key and the trusted-counter
// floor before using the result.
func DecodeMap(data []byte) (*Map, error) {
	const fixed = 8 + 8 + 2
	if len(data) < fixed+NumSlots*16+seal.HashSize {
		return nil, ErrMalformed
	}
	m := &Map{
		Epoch:   binary.LittleEndian.Uint64(data[0:]),
		Counter: binary.LittleEndian.Uint64(data[8:]),
	}
	nm := int(binary.LittleEndian.Uint16(data[16:]))
	if nm > maxMembers {
		return nil, ErrMalformed
	}
	rest := data[fixed:]
	m.Members = make([]Member, 0, nm)
	for i := 0; i < nm; i++ {
		if len(rest) < 10 {
			return nil, ErrMalformed
		}
		id := binary.LittleEndian.Uint64(rest[0:])
		al := int(binary.LittleEndian.Uint16(rest[8:]))
		rest = rest[10:]
		if len(rest) < al {
			return nil, ErrMalformed
		}
		m.Members = append(m.Members, Member{ID: id, Addr: string(rest[:al])})
		rest = rest[al:]
	}
	if len(rest) != NumSlots*16+seal.HashSize {
		return nil, ErrMalformed
	}
	for s := 0; s < NumSlots; s++ {
		m.Slots[s] = binary.LittleEndian.Uint64(rest[s*8:])
		m.Backups[s] = binary.LittleEndian.Uint64(rest[(NumSlots+s)*8:])
	}
	copy(m.Sig[:], rest[NumSlots*16:])
	return m, nil
}

// Sign computes the map's signature under the CAS map key (HMAC-SHA256
// over the serialized body).
func (m *Map) Sign(key seal.Key) {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(m.encodeBody())
	copy(m.Sig[:], mac.Sum(nil))
}

// Verify checks the map's authenticity and freshness:
//
//   - the signature must verify under key,
//   - the counter binding must hold (Counter == Epoch: the CAS
//     stabilizes the shard-map counter to the epoch it signs),
//   - the epoch must be at least minEpoch, the verifier's trusted
//     floor (the counter service's stable value, or the verifier's
//     current view) — anything older is a replayed map.
//
// Structural invariants are checked too: every slot's owner must be a
// member, so a verified map always routes every key to a resolvable
// address.
func (m *Map) Verify(key seal.Key, minEpoch uint64) error {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(m.encodeBody())
	if !hmac.Equal(mac.Sum(nil), m.Sig[:]) {
		return ErrBadSignature
	}
	if m.Counter != m.Epoch {
		return fmt.Errorf("%w: counter %d != epoch %d", ErrStaleEpoch, m.Counter, m.Epoch)
	}
	if m.Epoch < minEpoch {
		return fmt.Errorf("%w: epoch %d < trusted floor %d", ErrStaleEpoch, m.Epoch, minEpoch)
	}
	if len(m.Members) == 0 {
		return fmt.Errorf("%w: no members", ErrMalformed)
	}
	ids := make(map[uint64]bool, len(m.Members))
	for _, mem := range m.Members {
		if ids[mem.ID] {
			return fmt.Errorf("%w: duplicate member id %d", ErrMalformed, mem.ID)
		}
		ids[mem.ID] = true
	}
	for s, owner := range m.Slots {
		if !ids[owner] {
			return fmt.Errorf("%w: slot %d owned by non-member %d", ErrMalformed, s, owner)
		}
	}
	for s, backup := range m.Backups {
		if backup != NoBackup && !ids[backup] {
			return fmt.Errorf("%w: slot %d backed up by non-member %d", ErrMalformed, s, backup)
		}
	}
	return nil
}

// Holder is an atomically swappable reference to the current map; it
// is the live routing table a node or client holds. It implements the
// coordinator's Router interface.
type Holder struct {
	m atomic.Pointer[Map]
}

// NewHolder creates a holder (optionally pre-seeded).
func NewHolder(m *Map) *Holder {
	h := &Holder{}
	if m != nil {
		h.m.Store(m)
	}
	return h
}

// View returns the current map (nil before the first Store).
func (h *Holder) View() *Map { return h.m.Load() }

// Store swaps in a new map. Callers must have verified it.
func (h *Holder) Store(m *Map) { h.m.Store(m) }
