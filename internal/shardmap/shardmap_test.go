package shardmap

import (
	"fmt"
	"testing"

	"treaty/internal/seal"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: uint64(i), Addr: fmt.Sprintf("node-%d", i)}
	}
	return ms
}

func testKey(t *testing.T) seal.Key {
	t.Helper()
	k, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	return KeyFor(k)
}

// Every key routes to exactly one owner at every epoch: the owning
// member is unique by construction (one Slots entry per slot), and the
// address resolution must never come back empty for a verified map.
func TestEveryKeyRoutesToExactlyOneOwner(t *testing.T) {
	key := testKey(t)
	m := Uniform(testMembers(5))
	m.Sign(key)
	if err := m.Verify(key, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		owner := m.Owner(k)
		if owner == "" {
			t.Fatalf("key %q routed to empty owner", k)
		}
		// Deterministic and single-valued.
		if again := m.Owner(k); again != owner {
			t.Fatalf("key %q routed to %q then %q", k, owner, again)
		}
		// The owner must be the member owning the key's slot — there is
		// no second route.
		if id := m.OwnerID(k); m.Slots[SlotOf(k)] != id {
			t.Fatalf("key %q: OwnerID %d != slot owner %d", k, id, m.Slots[SlotOf(k)])
		}
	}
}

// The uniform map spreads slots across every member.
func TestUniformCoversAllMembers(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9} {
		m := Uniform(testMembers(n))
		seen := map[uint64]bool{}
		for _, owner := range m.Slots {
			seen[owner] = true
		}
		if len(seen) != n {
			t.Errorf("n=%d: uniform map uses %d members", n, len(seen))
		}
	}
}

// Epoch N and N+1 differ only in the migrated slots.
func TestEpochSuccessorDiffersOnlyInMigratedSlots(t *testing.T) {
	key := testKey(t)
	prev := Uniform(testMembers(3))
	prev.Sign(key)
	migrated := map[int]bool{7: true, 13: true}
	next := prev.Clone()
	next.Epoch++
	next.Counter = next.Epoch
	for s := range migrated {
		next.Slots[s] = 2 // all to member 2
	}
	next.Sign(key)
	if err := next.Verify(key, prev.Epoch); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < NumSlots; s++ {
		if migrated[s] {
			continue
		}
		if prev.Slots[s] != next.Slots[s] {
			t.Fatalf("slot %d changed across epochs without migration: %d -> %d",
				s, prev.Slots[s], next.Slots[s])
		}
	}
	// And keys in unmigrated slots keep their owner.
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("stable-%d", i))
		if migrated[SlotOf(k)] {
			continue
		}
		if prev.Owner(k) != next.Owner(k) {
			t.Fatalf("key %q moved without its slot migrating", k)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	key := testKey(t)
	m := Uniform(testMembers(4))
	m.Epoch, m.Counter = 9, 9
	m.Sign(key)
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Counter != m.Counter || len(got.Members) != 4 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i, mem := range got.Members {
		if mem != m.Members[i] {
			t.Fatalf("member %d mismatch: %v vs %v", i, mem, m.Members[i])
		}
	}
	if got.Slots != m.Slots || got.Sig != m.Sig {
		t.Fatal("slots or signature did not round trip")
	}
	if err := got.Verify(key, 9); err != nil {
		t.Fatalf("decoded map failed verification: %v", err)
	}
}

// A replayed older epoch is rejected by the counter-binding floor even
// though its signature is genuine — the rollback-detection property.
func TestStaleEpochRejected(t *testing.T) {
	key := testKey(t)
	old := Uniform(testMembers(3))
	old.Sign(key)
	if err := old.Verify(key, old.Epoch+1); err == nil {
		t.Fatal("replayed old epoch passed verification")
	} else if !isStale(err) {
		t.Fatalf("want ErrStaleEpoch, got %v", err)
	}
	// An epoch whose counter binding was never stabilized (counter !=
	// epoch) is also a rollback artifact.
	forked := old.Clone()
	forked.Epoch = 5 // counter still 1
	forked.Sign(key)
	if err := forked.Verify(key, 0); err == nil || !isStale(err) {
		t.Fatalf("counter/epoch mismatch accepted: %v", err)
	}
}

func isStale(err error) bool {
	for e := err; e != nil; {
		if e == ErrStaleEpoch {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestTamperedMapRejected(t *testing.T) {
	key := testKey(t)
	m := Uniform(testMembers(3))
	m.Sign(key)
	tampered := m.Clone()
	tampered.Slots[0] = 1 // redirect a slot without re-signing
	if err := tampered.Verify(key, 0); err != ErrBadSignature {
		t.Fatalf("tampered map: want ErrBadSignature, got %v", err)
	}
	// Wrong key (an unattested party cannot mint maps).
	other := testKey(t)
	if err := m.Verify(other, 0); err != ErrBadSignature {
		t.Fatalf("wrong key: want ErrBadSignature, got %v", err)
	}
}

// A verified map never routes to an unresolvable owner: slots owned by
// non-members fail verification.
func TestVerifyRejectsNonMemberOwner(t *testing.T) {
	key := testKey(t)
	m := Uniform(testMembers(3))
	m.Slots[11] = 99
	m.Sign(key)
	if err := m.Verify(key, 0); err == nil {
		t.Fatal("slot owned by non-member passed verification")
	}
}

func TestAddrIsIDKeyedNotPositional(t *testing.T) {
	// Sparse, non-dense IDs: positional indexing would resolve these
	// wrongly (or not at all).
	m := &Map{
		Epoch: 1, Counter: 1,
		Members: []Member{{ID: 7, Addr: "node-7"}, {ID: 3, Addr: "node-3"}},
	}
	if a, ok := m.Addr(3); !ok || a != "node-3" {
		t.Fatalf("Addr(3) = %q, %v", a, ok)
	}
	if a, ok := m.Addr(7); !ok || a != "node-7" {
		t.Fatalf("Addr(7) = %q, %v", a, ok)
	}
	if _, ok := m.Addr(0); ok {
		t.Fatal("Addr(0) resolved for a non-member")
	}
}

func TestHolderSwap(t *testing.T) {
	h := NewHolder(nil)
	if h.View() != nil {
		t.Fatal("empty holder returned a map")
	}
	m1 := Uniform(testMembers(3))
	h.Store(m1)
	if h.View() != m1 {
		t.Fatal("holder did not return stored map")
	}
	m2 := m1.Clone()
	m2.Epoch = 2
	h.Store(m2)
	if h.View().Epoch != 2 {
		t.Fatal("holder did not swap")
	}
}
