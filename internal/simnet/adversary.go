package simnet

import (
	"math/rand"
	"sync"
	"time"
)

// FuncAdversary adapts a function to the Adversary interface.
type FuncAdversary func(pkt Packet) Verdict

// Interpose implements Adversary.
func (f FuncAdversary) Interpose(pkt Packet) Verdict { return f(pkt) }

var _ Adversary = (FuncAdversary)(nil)

// Recorder is an adversary that passively records traffic for later
// replay. It is the building block for replay attacks: capture a packet,
// then re-inject it with Replay.
type Recorder struct {
	mu       sync.Mutex
	captured []Packet
	// Filter selects which packets to capture; nil captures everything.
	Filter func(Packet) bool
	// Limit caps how many packets are captured (0 = unbounded); soaks
	// set it so a capture round cannot hold a whole round of traffic in
	// memory.
	Limit int
}

// Interpose implements Adversary: record and pass through.
func (r *Recorder) Interpose(pkt Packet) Verdict {
	if r.Filter == nil || r.Filter(pkt) {
		r.mu.Lock()
		if r.Limit <= 0 || len(r.captured) < r.Limit {
			r.captured = append(r.captured, Packet{
				From: pkt.From,
				To:   pkt.To,
				Data: append([]byte(nil), pkt.Data...),
			})
		}
		r.mu.Unlock()
	}
	return Verdict{}
}

// Captured returns a snapshot of the recorded packets.
func (r *Recorder) Captured() []Packet {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Packet, len(r.captured))
	copy(out, r.captured)
	return out
}

// Replay re-injects every captured packet into the network, impersonating
// the original senders — the classic duplication attack Treaty's
// (node, tx, op) dedup must reject.
func (r *Recorder) Replay(n *Network) error {
	for _, pkt := range r.Captured() {
		if err := n.send(pkt); err != nil {
			return err
		}
	}
	return nil
}

var _ Adversary = (*Recorder)(nil)

// Corrupter flips bits in a random payload byte of matching packets with
// the given probability.
type Corrupter struct {
	// Probability is the chance a matching packet is corrupted.
	Probability float64
	// Filter selects target packets; nil matches everything.
	Filter func(Packet) bool

	mu  sync.Mutex
	rng *rand.Rand
}

// NewCorrupter creates a corrupter with a seeded RNG.
func NewCorrupter(probability float64, seed int64) *Corrupter {
	return &Corrupter{Probability: probability, rng: rand.New(rand.NewSource(seed))}
}

// Interpose implements Adversary.
func (c *Corrupter) Interpose(pkt Packet) Verdict {
	if c.Filter != nil && !c.Filter(pkt) {
		return Verdict{}
	}
	c.mu.Lock()
	hit := c.rng.Float64() < c.Probability
	var pos int
	if hit && len(pkt.Data) > 0 {
		pos = c.rng.Intn(len(pkt.Data))
	}
	c.mu.Unlock()
	if !hit || len(pkt.Data) == 0 {
		return Verdict{}
	}
	return Verdict{Mutate: func(b []byte) []byte {
		out := append([]byte(nil), b...)
		out[pos] ^= 0xFF
		return out
	}}
}

var _ Adversary = (*Corrupter)(nil)

// Delayer adds fixed delay to matching packets (e.g. to force 2PC
// timeouts without dropping traffic).
type Delayer struct {
	// Delay is the extra latency added.
	Delay time.Duration
	// Filter selects target packets; nil matches everything.
	Filter func(Packet) bool
}

// Interpose implements Adversary.
func (d *Delayer) Interpose(pkt Packet) Verdict {
	if d.Filter != nil && !d.Filter(pkt) {
		return Verdict{}
	}
	return Verdict{Delay: d.Delay}
}

var _ Adversary = (*Delayer)(nil)

// Holder is a thread-safe swappable adversary slot: the network keeps a
// stable Adversary reference while soak scripts swap the inner one per
// round (a Recorder this round, a Corrupter the next). A nil inner
// adversary passes traffic through untouched.
type Holder struct {
	mu    sync.RWMutex
	inner Adversary
}

// Set swaps the inner adversary (nil clears it).
func (h *Holder) Set(a Adversary) {
	h.mu.Lock()
	h.inner = a
	h.mu.Unlock()
}

// Interpose implements Adversary.
func (h *Holder) Interpose(pkt Packet) Verdict {
	h.mu.RLock()
	a := h.inner
	h.mu.RUnlock()
	if a == nil {
		return Verdict{}
	}
	return a.Interpose(pkt)
}

var _ Adversary = (*Holder)(nil)

// Chain composes adversaries; the first verdict that takes any action
// wins (drop beats mutate beats delay beats duplicate, evaluated in
// order of the chain).
type Chain []Adversary

// Interpose implements Adversary.
func (c Chain) Interpose(pkt Packet) Verdict {
	var out Verdict
	for _, a := range c {
		v := a.Interpose(pkt)
		if v.Drop {
			return v
		}
		if v.Mutate != nil && out.Mutate == nil {
			out.Mutate = v.Mutate
		}
		out.Delay += v.Delay
		out.Duplicates += v.Duplicates
	}
	return out
}

var _ Adversary = (Chain)(nil)
