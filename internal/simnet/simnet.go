// Package simnet provides the in-process network substrate Treaty's nodes
// communicate over. It stands in for the paper's 40 GbE testbed fabric and
// plays two roles:
//
//   - A performance model: per-link latency, bandwidth serialization, MTU
//     (datagrams over the MTU are dropped, as the paper observes for UDP),
//     and random loss, so network benchmarks exhibit realistic shape.
//   - The adversary from the threat model (§III): an interposition hook
//     that can drop, delay, corrupt, duplicate, or replay any packet, plus
//     partitions. Treaty must *detect* all of these (integrity/freshness
//     violations) — simnet is how the tests and the adversary example
//     mount the attacks.
//
// Endpoints exchange datagrams; reliability, ordering, and security are
// the job of the layers above (package erpc).
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by this package.
var (
	// ErrAddrInUse indicates a Listen on an already-bound address.
	ErrAddrInUse = errors.New("simnet: address already in use")
	// ErrUnknownAddr indicates a send to an unbound address.
	ErrUnknownAddr = errors.New("simnet: unknown address")
	// ErrClosed indicates use of a closed endpoint or network.
	ErrClosed = errors.New("simnet: closed")
)

// Packet is one datagram in flight.
type Packet struct {
	// From is the sender address.
	From string
	// To is the destination address.
	To string
	// Data is the payload. Receivers own the slice.
	Data []byte
	// buf is the pooled backing array of Data, nil when Data came from
	// the GC heap (hand-built packets, duplicated copies).
	buf *[]byte
}

// Release returns the packet's pooled receive buffer for reuse. Call it
// at most once, after Data is no longer referenced; packets without
// pooled backing ignore it, so consumers that never Release (or can't,
// because they keep the slice) simply fall back to the GC.
func (p Packet) Release() {
	if p.buf != nil {
		pktBufPool.Put(p.buf)
	}
}

// Buf exposes the packet's pooled backing, nil when Data is GC-owned.
// Release-aware receivers that cannot afford a per-packet closure carry
// this pointer instead and hand it to RecycleBuf; doing both (Release
// and RecycleBuf) double-frees.
func (p Packet) Buf() *[]byte { return p.buf }

// RecycleBuf returns a pooled backing obtained from Packet.Buf. Nil-safe.
func RecycleBuf(buf *[]byte) {
	if buf != nil {
		pktBufPool.Put(buf)
	}
}

// pktBufPool recycles send-side payload copies. Every Endpoint.Send
// copies its payload (the caller may reuse its slice immediately); at
// RPC rates those copies dominate the fabric's allocation profile, so
// release-aware receivers hand them back here.
var pktBufPool sync.Pool

// pooledCopy copies data into a pooled buffer.
func pooledCopy(data []byte) ([]byte, *[]byte) {
	buf, _ := pktBufPool.Get().(*[]byte)
	if buf == nil || cap(*buf) < len(data) {
		b := make([]byte, len(data))
		buf = &b
	}
	d := (*buf)[:len(data)]
	copy(d, data)
	return d, buf
}

// Verdict is an adversary's decision about a packet.
type Verdict struct {
	// Drop discards the packet silently.
	Drop bool
	// Delay adds extra in-flight latency.
	Delay time.Duration
	// Mutate, if non-nil, replaces the payload (tampering).
	Mutate func([]byte) []byte
	// Duplicates is the number of extra copies to deliver (replay).
	Duplicates int
}

// Adversary inspects every packet before delivery and returns a verdict.
// A nil adversary passes everything through. Implementations must be safe
// for concurrent use.
type Adversary interface {
	Interpose(pkt Packet) Verdict
}

// LinkConfig models one direction of a network path.
type LinkConfig struct {
	// Latency is the propagation delay.
	Latency time.Duration
	// BandwidthBps is the link bandwidth in bytes per second; zero means
	// unlimited.
	BandwidthBps int64
	// MTU is the maximum datagram size; packets larger than MTU are
	// dropped when DropOversized is set (UDP-like), otherwise delivered
	// (the transport is assumed to segment, TCP-like). Zero means no MTU.
	MTU int
	// DropOversized selects drop (true, UDP) vs deliver (false, TCP
	// with segmentation) behaviour for over-MTU packets. When false and
	// MTU > 0, bandwidth cost still accounts per-segment overhead.
	DropOversized bool
	// LossRate is the probability in [0,1) that a packet is dropped.
	LossRate float64
}

// Stats counts network activity.
type Stats struct {
	// Sent counts packets accepted for transmission.
	Sent uint64
	// Delivered counts packets handed to receivers.
	Delivered uint64
	// DroppedMTU counts packets dropped for exceeding the MTU.
	DroppedMTU uint64
	// DroppedLoss counts packets dropped by random loss.
	DroppedLoss uint64
	// DroppedAdversary counts packets dropped by the adversary.
	DroppedAdversary uint64
	// DroppedPartition counts packets dropped by partitions.
	DroppedPartition uint64
	// BytesDelivered counts delivered payload bytes.
	BytesDelivered uint64
}

// Network is a set of endpoints connected by configurable links.
type Network struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	links     map[[2]string]*link
	defaults  LinkConfig
	adversary Adversary
	parts     map[[2]string]bool
	closed    bool
	quit      chan struct{}
	drainers  sync.WaitGroup
	rng       *rand.Rand
	rngMu     sync.Mutex

	sent             atomic.Uint64
	delivered        atomic.Uint64
	droppedMTU       atomic.Uint64
	droppedLoss      atomic.Uint64
	droppedAdversary atomic.Uint64
	droppedPartition atomic.Uint64
	bytesDelivered   atomic.Uint64
}

// link carries the per-direction bandwidth serialization state and the
// delivery queue: one drainer goroutine per link delivers packets in
// FIFO order at their scheduled times (modelling an in-order pipe
// without per-packet goroutines).
type link struct {
	cfg LinkConfig
	mu  sync.Mutex
	// busyUntil is when the link's transmitter becomes free.
	busyUntil time.Time

	once sync.Once
	q    chan scheduledPkt
}

// scheduledPkt is one in-flight packet.
type scheduledPkt struct {
	pkt Packet
	at  time.Time
	dst *Endpoint
}

// enqueue schedules delivery, starting the drainer on first use. A full
// queue drops the packet (pipe overrun).
func (l *link) enqueue(n *Network, s scheduledPkt) {
	l.once.Do(func() {
		l.q = make(chan scheduledPkt, 8192)
		n.drainers.Add(1)
		go l.drain(n)
	})
	select {
	case l.q <- s:
	default:
	}
}

// drain delivers scheduled packets in order until the network closes.
func (l *link) drain(n *Network) {
	defer n.drainers.Done()
	for {
		select {
		case <-n.quit:
			return
		case s := <-l.q:
			// OS timers cannot resolve below ~100 µs reliably; waiting on
			// them would add a millisecond to every packet. Sub-50 µs
			// remainders are delivered immediately — the scheduling delay
			// to the receiver supplies at least that much latency anyway.
			if d := time.Until(s.at); d > 50*time.Microsecond {
				select {
				case <-n.quit:
					return
				case <-time.After(d):
				}
			}
			s.dst.deliver(s.pkt, n)
		}
	}
}

// New creates a network whose links default to cfg. seed makes loss and
// adversarial randomness reproducible.
func New(cfg LinkConfig, seed int64) *Network {
	return &Network{
		endpoints: make(map[string]*Endpoint),
		links:     make(map[[2]string]*link),
		defaults:  cfg,
		parts:     make(map[[2]string]bool),
		quit:      make(chan struct{}),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// SetAdversary installs (or clears, with nil) the packet interposer.
func (n *Network) SetAdversary(a Adversary) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.adversary = a
}

// SetLink overrides the link configuration for the from→to direction.
func (n *Network) SetLink(from, to string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{from, to}] = &link{cfg: cfg}
}

// Partition cuts both directions between a and b.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[[2]string{a, b}] = true
	n.parts[[2]string{b, a}] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, [2]string{a, b})
	delete(n.parts, [2]string{b, a})
}

// Listen binds addr and returns its endpoint.
func (n *Network) Listen(addr string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	ep := &Endpoint{
		net:   n,
		addr:  addr,
		inbox: make(chan Packet, 4096),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

// Close shuts the network down; all endpoints stop receiving and the
// link drainers exit.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.quit)
	for _, ep := range n.endpoints {
		ep.close()
	}
	n.mu.Unlock()
	n.drainers.Wait()
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:             n.sent.Load(),
		Delivered:        n.delivered.Load(),
		DroppedMTU:       n.droppedMTU.Load(),
		DroppedLoss:      n.droppedLoss.Load(),
		DroppedAdversary: n.droppedAdversary.Load(),
		DroppedPartition: n.droppedPartition.Load(),
		BytesDelivered:   n.bytesDelivered.Load(),
	}
}

// linkFor returns the (possibly default) link for from→to.
func (n *Network) linkFor(from, to string) *link {
	key := [2]string{from, to}
	n.mu.RLock()
	l, ok := n.links[key]
	n.mu.RUnlock()
	if ok {
		return l
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok = n.links[key]; ok {
		return l
	}
	l = &link{cfg: n.defaults}
	n.links[key] = l
	return l
}

// chance samples the seeded RNG.
func (n *Network) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < p
}

// send transmits pkt, applying partition, adversary, MTU, loss, latency,
// and bandwidth in that order.
func (n *Network) send(pkt Packet) error {
	n.mu.RLock()
	closed := n.closed
	dst, ok := n.endpoints[pkt.To]
	partitioned := n.parts[[2]string{pkt.From, pkt.To}]
	adv := n.adversary
	n.mu.RUnlock()

	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAddr, pkt.To)
	}
	n.sent.Add(1)

	if partitioned {
		n.droppedPartition.Add(1)
		pkt.Release() // dropped frames must not leak their pooled buffer
		return nil    // silent, like a real partition
	}

	copies := 1
	delay := time.Duration(0)
	if adv != nil {
		v := adv.Interpose(pkt)
		if v.Drop {
			n.droppedAdversary.Add(1)
			pkt.Release()
			return nil
		}
		if v.Mutate != nil {
			pkt.Data = v.Mutate(pkt.Data)
		}
		delay += v.Delay
		copies += v.Duplicates
	}

	l := n.linkFor(pkt.From, pkt.To)
	cfg := l.cfg
	if cfg.MTU > 0 && cfg.DropOversized && len(pkt.Data) > cfg.MTU {
		n.droppedMTU.Add(1)
		pkt.Release()
		return nil
	}
	if n.chance(cfg.LossRate) {
		n.droppedLoss.Add(1)
		pkt.Release()
		return nil
	}

	// Bandwidth: serialize transmissions on the link.
	var queueDelay time.Duration
	if cfg.BandwidthBps > 0 {
		txTime := time.Duration(float64(len(pkt.Data)) / float64(cfg.BandwidthBps) * float64(time.Second))
		l.mu.Lock()
		now := time.Now()
		if l.busyUntil.Before(now) {
			l.busyUntil = now
		}
		l.busyUntil = l.busyUntil.Add(txTime)
		queueDelay = l.busyUntil.Sub(now)
		l.mu.Unlock()
	}

	total := cfg.Latency + queueDelay + delay
	for i := 0; i < copies; i++ {
		p := pkt
		if copies > 1 {
			// Duplicated copies each get unshared heap data: exactly one
			// receiver may Release a pooled buffer.
			p.Data = append([]byte(nil), pkt.Data...)
			p.buf = nil
		}
		if total <= 0 {
			dst.deliver(p, n)
			continue
		}
		l.enqueue(n, scheduledPkt{pkt: p, at: time.Now().Add(total), dst: dst})
	}
	if copies > 1 {
		pkt.Release() // the original backing was replaced by heap copies
	}
	return nil
}

// Endpoint is one bound network address.
type Endpoint struct {
	net   *Network
	addr  string
	inbox chan Packet
	// closeMu serializes deliveries against close: deliver holds the
	// read side while sending on inbox, Close holds the write side while
	// closing it.
	closeMu sync.RWMutex
	closed  atomic.Bool
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() string { return e.addr }

// Send transmits data to the given address. The payload is copied; the
// caller may reuse data immediately. The copy lives in a pooled buffer
// that release-aware receivers recycle via Packet.Release.
func (e *Endpoint) Send(to string, data []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	d, buf := pooledCopy(data)
	return e.net.send(Packet{From: e.addr, To: to, Data: d, buf: buf})
}

// Recv blocks until a packet arrives or the endpoint closes.
func (e *Endpoint) Recv() (Packet, error) {
	pkt, ok := <-e.inbox
	if !ok {
		return Packet{}, ErrClosed
	}
	return pkt, nil
}

// RecvCh exposes the receive ring as a channel so event loops can block
// on packet arrival instead of sleep-polling (essential on low-core
// hosts). The channel closes when the endpoint closes.
func (e *Endpoint) RecvCh() <-chan Packet { return e.inbox }

// Poll returns a packet if one is immediately available. This is the
// polling receive used by the kernel-bypass RPC event loop (no blocking,
// no syscalls).
func (e *Endpoint) Poll() (Packet, bool) {
	select {
	case pkt, ok := <-e.inbox:
		if !ok {
			return Packet{}, false
		}
		return pkt, true
	default:
		return Packet{}, false
	}
}

// RecvTimeout blocks up to d for a packet.
func (e *Endpoint) RecvTimeout(d time.Duration) (Packet, error) {
	select {
	case pkt, ok := <-e.inbox:
		if !ok {
			return Packet{}, ErrClosed
		}
		return pkt, nil
	case <-time.After(d):
		return Packet{}, errors.New("simnet: receive timeout")
	}
}

// deliver hands a packet to the endpoint unless it is closed or full
// (receiver overrun drops, like a NIC ring).
func (e *Endpoint) deliver(pkt Packet, n *Network) {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		pkt.Release()
		return
	}
	select {
	case e.inbox <- pkt:
		n.delivered.Add(1)
		n.bytesDelivered.Add(uint64(len(pkt.Data)))
	default:
		// Receiver overrun: drop, as a NIC would.
		pkt.Release()
	}
}

// close shuts the endpoint down (called with the network lock held).
func (e *Endpoint) close() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed.Swap(true) {
		return
	}
	close(e.inbox)
}

// Close unbinds the endpoint from the network.
func (e *Endpoint) Close() {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if !e.closed.Load() {
		delete(e.net.endpoints, e.addr)
		e.close()
	}
}
