package simnet

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func pair(t *testing.T, cfg LinkConfig) (*Network, *Endpoint, *Endpoint) {
	t.Helper()
	n := New(cfg, 1)
	a, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, a, b
}

func TestSendRecv(t *testing.T) {
	_, a, b := pair(t, LinkConfig{})
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	pkt, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if pkt.From != "a" || pkt.To != "b" || string(pkt.Data) != "hello" {
		t.Errorf("pkt = %+v", pkt)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, a, b := pair(t, LinkConfig{})
	data := []byte("original")
	if err := a.Send("b", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // mutate after send
	pkt, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt.Data) != "original" {
		t.Error("payload must be copied at send time")
	}
}

func TestUnknownAddr(t *testing.T) {
	_, a, _ := pair(t, LinkConfig{})
	if err := a.Send("nope", []byte("x")); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("got %v, want ErrUnknownAddr", err)
	}
}

func TestDuplicateListen(t *testing.T) {
	n := New(LinkConfig{}, 1)
	defer n.Close()
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("got %v, want ErrAddrInUse", err)
	}
}

func TestLatency(t *testing.T) {
	_, a, b := pair(t, LinkConfig{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("delivered after %v, want >= 30ms", elapsed)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	// 1 MiB/s link, two 100 KiB packets: second arrives ~200ms in.
	_, a, b := pair(t, LinkConfig{BandwidthBps: 1 << 20})
	payload := make([]byte, 100<<10)
	start := time.Now()
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("two packets in %v; bandwidth not serialized", elapsed)
	}
}

func TestMTUDropUDPStyle(t *testing.T) {
	n, a, b := pair(t, LinkConfig{MTU: 1460, DropOversized: true})
	if err := a.Send("b", make([]byte, 2000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Poll(); ok {
		t.Error("over-MTU datagram must be dropped")
	}
	if n.Stats().DroppedMTU != 1 {
		t.Errorf("DroppedMTU = %d", n.Stats().DroppedMTU)
	}
	// Under the MTU passes.
	if err := a.Send("b", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestMTUSegmentingTCPStyle(t *testing.T) {
	_, a, b := pair(t, LinkConfig{MTU: 1460, DropOversized: false})
	if err := a.Send("b", make([]byte, 4000)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err) // TCP-like links deliver over-MTU payloads
	}
}

func TestLoss(t *testing.T) {
	n, a, b := pair(t, LinkConfig{LossRate: 1.0})
	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := b.Poll(); ok {
		t.Error("100% loss must drop everything")
	}
	if n.Stats().DroppedLoss != 10 {
		t.Errorf("DroppedLoss = %d", n.Stats().DroppedLoss)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	n.Partition("a", "b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err) // partitions are silent
	}
	if _, ok := b.Poll(); ok {
		t.Error("partitioned packet delivered")
	}
	n.Heal("a", "b")
	if err := a.Send("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestAdversaryDrop(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	n.SetAdversary(FuncAdversary(func(Packet) Verdict { return Verdict{Drop: true} }))
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Poll(); ok {
		t.Error("adversary-dropped packet delivered")
	}
	if n.Stats().DroppedAdversary != 1 {
		t.Errorf("DroppedAdversary = %d", n.Stats().DroppedAdversary)
	}
}

func TestAdversaryMutate(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	n.SetAdversary(FuncAdversary(func(Packet) Verdict {
		return Verdict{Mutate: func(d []byte) []byte {
			out := bytes.Clone(d)
			out[0] ^= 0xFF
			return out
		}}
	}))
	if err := a.Send("b", []byte{0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	pkt, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Data[0] != 0xFF {
		t.Error("mutation not applied")
	}
}

func TestAdversaryDuplicate(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	n.SetAdversary(FuncAdversary(func(Packet) Verdict { return Verdict{Duplicates: 2} }))
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
	}
}

func TestRecorderReplay(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	rec := &Recorder{}
	n.SetAdversary(rec)
	if err := a.Send("b", []byte("secret-op")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	n.SetAdversary(nil) // stop recording, then replay the capture
	if err := rec.Replay(n); err != nil {
		t.Fatal(err)
	}
	pkt, err := b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt.Data) != "secret-op" || pkt.From != "a" {
		t.Errorf("replayed pkt = %+v", pkt)
	}
}

func TestRecorderLimit(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	rec := &Recorder{Limit: 2}
	n.SetAdversary(rec)
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(rec.Captured()); got != 2 {
		t.Errorf("captured %d packets, want Limit=2", got)
	}
}

func TestHolderSwap(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	hold := &Holder{}
	n.SetAdversary(hold)

	// Empty holder passes through.
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}

	// Swap in a dropper without touching the network's adversary.
	hold.Set(FuncAdversary(func(Packet) Verdict { return Verdict{Drop: true} }))
	if err := a.Send("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(50 * time.Millisecond); err == nil {
		t.Fatal("holder-installed dropper did not drop")
	}

	// Clear and traffic flows again.
	hold.Set(nil)
	if err := a.Send("b", []byte("z")); err != nil {
		t.Fatal(err)
	}
	pkt, err := b.RecvTimeout(time.Second)
	if err != nil || string(pkt.Data) != "z" {
		t.Fatalf("after clear: pkt=%v err=%v", pkt, err)
	}
}

func TestCorrupterAlwaysCorrupts(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	n.SetAdversary(NewCorrupter(1.0, 7))
	orig := []byte("payload-bytes")
	if err := a.Send("b", orig); err != nil {
		t.Fatal(err)
	}
	pkt, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pkt.Data, orig) {
		t.Error("corrupter must modify the payload")
	}
}

func TestChainComposition(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	rec := &Recorder{}
	n.SetAdversary(Chain{rec, &Delayer{Delay: 5 * time.Millisecond}})
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("chained delayer not applied")
	}
	if len(rec.Captured()) != 1 {
		t.Error("chained recorder missed the packet")
	}
}

func TestPollNonBlocking(t *testing.T) {
	_, _, b := pair(t, LinkConfig{})
	done := make(chan struct{})
	var got atomic.Bool
	go func() {
		_, ok := b.Poll()
		got.Store(ok)
		close(done)
	}()
	select {
	case <-done:
		if got.Load() {
			t.Error("Poll returned a phantom packet")
		}
	case <-time.After(time.Second):
		t.Error("Poll blocked")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	n, _, b := pair(t, LinkConfig{})
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	n.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Error("Recv not unblocked by Close")
	}
}

func TestEndpointCloseFreesAddress(t *testing.T) {
	n := New(LinkConfig{}, 1)
	defer n.Close()
	a, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := n.Listen("x"); err != nil {
		t.Errorf("address not freed after Close: %v", err)
	}
}

func TestStatsDelivered(t *testing.T) {
	n, a, b := pair(t, LinkConfig{})
	for i := 0; i < 5; i++ {
		if err := a.Send("b", make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	s := n.Stats()
	if s.Sent != 5 || s.Delivered != 5 || s.BytesDelivered != 500 {
		t.Errorf("stats = %+v", s)
	}
}
