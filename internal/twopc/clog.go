// Package twopc implements Treaty's secure two-phase commit protocol for
// distributed transactions (§V) and its stabilization-integrated recovery
// (§VI). A transaction coordinator (TxC) drives each global transaction:
// it routes operations to participant nodes over the secure RPC layer,
// logs 2PC state transitions to the Clog with trusted-counter binding,
// and commits only after every participant's prepare entry — and its own
// decision entry — are rollback-protected.
package twopc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"treaty/internal/enclave"
	"treaty/internal/lsm"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// Clog entry kinds.
const (
	// clogPrepare records that the coordinator started the prepare phase
	// for a transaction with the listed participants (Fig. 2 step 5).
	clogPrepare uint8 = iota + 1
	// clogDecision records the commit/abort decision (step 6-7); it must
	// be stabilized before the transaction commits.
	clogDecision
)

// Exported record kinds for harnesses that drive Append directly (the
// crash-point harness appends synthetic coordinator records).
const (
	ClogKindPrepare  = clogPrepare
	ClogKindDecision = clogDecision
)

// ClogEntry is one recovered coordinator-log record.
type ClogEntry struct {
	// Kind is clogPrepare or clogDecision.
	Kind uint8
	// TxID is the global transaction id.
	TxID lsm.TxID
	// Commit is the decision (valid for clogDecision).
	Commit bool
	// Participants lists the involved node addresses (clogPrepare).
	Participants []string
	// Counter is the entry's trusted counter value.
	Counter uint64
}

// encodeClogPayload serializes an entry body.
func encodeClogPayload(txID lsm.TxID, commit bool, participants []string) []byte {
	out := make([]byte, 0, 32)
	out = append(out, txID[:]...)
	if commit {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, byte(len(participants)))
	for _, p := range participants {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(p)))
		out = append(out, p...)
	}
	return out
}

// decodeClogPayload parses an entry body.
func decodeClogPayload(data []byte) (txID lsm.TxID, commit bool, participants []string, err error) {
	if len(data) < 18 {
		err = errors.New("twopc: short clog entry")
		return
	}
	copy(txID[:], data)
	commit = data[16] == 1
	n := int(data[17])
	off := 18
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			err = errors.New("twopc: truncated clog entry")
			return
		}
		l := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+l > len(data) {
			err = errors.New("twopc: truncated clog entry")
			return
		}
		participants = append(participants, string(data[off:off+l]))
		off += l
	}
	return
}

// Clog is the coordinator log: it keeps the 2PC protocol state with the
// same framing, hash chaining, and trusted-counter binding as the WAL and
// MANIFEST. It is thread-safe; coordinator fibers append independently.
type Clog struct {
	mu    sync.Mutex
	f     vfs.File
	codec *seal.LogCodec
	rt    *enclave.Runtime
	ctr   lsm.TrustedCounter
	buf   []byte
	// syncEvery fsyncs per append when set. Off by default: the crash
	// model loses process state, not the OS page cache, and durability
	// ordering against the trusted counter is what recovery checks. Real
	// deployments that fear power loss call EnableSync; the chaos and
	// crash-point harnesses enable it so disk faults are exercised.
	syncEvery bool
	// poisoned is the sticky fail-stop error after a write/sync failure
	// (fsyncgate: the unsynced tail must be assumed lost, not retried).
	poisoned error
	// tornDropped records that opening found and dropped a crash-torn
	// tail.
	tornDropped bool
}

// clogName builds the Clog path.
func clogName(dir string) string { return filepath.Join(dir, "CLOG-000001") }

// OpenClog creates or re-opens the coordinator log. Existing entries are
// replayed (verifying chain, counters, and freshness against maxStable;
// pass -1 to skip freshness) and returned for coordinator recovery.
//
// A decode failure at the tail is tolerated — and the tail truncated —
// when it is provably a crash artifact rather than an attack: a
// byte-level truncation anywhere, any failure at LevelNone, or any
// failure past the trusted stable point (those entries were never
// acknowledged). fs nil uses the real filesystem.
func OpenClog(fs vfs.FS, dir string, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime, ctr lsm.TrustedCounter, maxStable int64) (*Clog, []ClogEntry, error) {
	if fs == nil {
		fs = vfs.Default
	}
	path := clogName(dir)
	codec, err := seal.NewLogCodec(level, key, filepath.Base(path), 1)
	if err != nil {
		return nil, nil, err
	}
	var entries []ClogEntry
	torn := false
	existed := true
	data, err := fs.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		existed = false // fresh log
	case err != nil:
		return nil, nil, fmt.Errorf("twopc: reading clog: %w", err)
	default:
		off := 0
		last := uint64(0)
		for off < len(data) {
			e, n, derr := codec.DecodeEntry(data[off:])
			if derr != nil {
				tolerable := errors.Is(derr, seal.ErrTruncated) || level == seal.LevelNone ||
					maxStable < 0 || last >= uint64(maxStable)
				if tolerable {
					torn = true
					break
				}
				return nil, nil, fmt.Errorf("twopc: clog entry at %d: %w", off, derr)
			}
			if maxStable >= 0 && e.Counter > uint64(maxStable) {
				break // unstabilized tail
			}
			txID, commit, parts, perr := decodeClogPayload(e.Payload)
			if perr != nil {
				return nil, nil, perr
			}
			entries = append(entries, ClogEntry{
				Kind: e.Kind, TxID: txID, Commit: commit,
				Participants: parts, Counter: e.Counter,
			})
			last = e.Counter
			off += n
		}
		if maxStable > 0 && last < uint64(maxStable) {
			return nil, nil, fmt.Errorf("%w: clog ends at counter %d, trusted value is %d",
				lsm.ErrRollbackDetected, last, maxStable)
		}
		if err := fs.Truncate(path, int64(off)); err != nil {
			return nil, nil, fmt.Errorf("twopc: truncating clog: %w", err)
		}
	}

	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("twopc: opening clog: %w", err)
	}
	if !existed {
		// Make the log's directory entry durable so a post-crash recovery
		// sees the (possibly empty) file.
		if err := fs.SyncDir(dir); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("twopc: syncing dir after clog create: %w", err)
		}
	}
	if rt != nil {
		rt.Syscall()
	}
	return &Clog{f: f, codec: codec, rt: rt, ctr: ctr, tornDropped: torn}, entries, nil
}

// TornTailDropped reports whether opening dropped a crash-torn tail (a
// detected-corruption event for the observability layer).
func (c *Clog) TornTailDropped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tornDropped
}

// Append logs one entry, syncs, and starts stabilizing it; it returns a
// token the caller can wait on ("Every Tx/operation is logged to Clog
// with its own unique trusted counter value"). The Clog is fail-stop: a
// write or sync failure poisons it — the codec chain has advanced past
// the lost entry (and after a failed fsync the tail may be gone), so
// continuing to append would silently splice the protocol log. A
// counter that can no longer persist poisons it too.
func (c *Clog) Append(kind uint8, txID lsm.TxID, commit bool, participants []string) (lsm.StableToken, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.poisoned != nil {
		return lsm.StableToken{}, c.poisoned
	}
	c.buf = c.buf[:0]
	var ctr uint64
	c.buf, ctr = c.codec.AppendEntry(c.buf, kind, encodeClogPayload(txID, commit, participants))
	if c.rt != nil {
		c.rt.Syscall()
	}
	if _, err := c.f.Write(c.buf); err != nil {
		c.poisoned = fmt.Errorf("%w: clog write: %v", lsm.ErrLogPoisoned, err)
		return lsm.StableToken{}, fmt.Errorf("twopc: clog write: %w", err)
	}
	if c.syncEvery {
		if c.rt != nil {
			c.rt.Syscall()
		}
		if err := c.f.Sync(); err != nil {
			c.poisoned = fmt.Errorf("%w: clog sync: %v", lsm.ErrLogPoisoned, err)
			return lsm.StableToken{}, fmt.Errorf("twopc: clog sync: %w", err)
		}
	}
	c.ctr.Stabilize(ctr)
	if fc, ok := c.ctr.(interface{ Failed() error }); ok {
		if err := fc.Failed(); err != nil {
			c.poisoned = fmt.Errorf("%w: clog counter: %v", lsm.ErrLogPoisoned, err)
			return lsm.StableToken{}, err
		}
	}
	return lsm.NewStableToken(c.ctr, ctr), nil
}

// EnableSync turns on per-append fsync (power-loss durability).
func (c *Clog) EnableSync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEvery = true
}

// Close closes the log file.
func (c *Clog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// LastCounter returns the counter value of the most recent entry.
func (c *Clog) LastCounter() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codec.NextCounter() - 1
}

// Stable reports whether every appended entry is rollback-protected —
// one of the two preconditions for Clog truncation (§VI: "The Clog is
// deleted as long as there are no unstable entries and does not contain
// any unfinished prepared transaction entry"). The other precondition —
// no unfinished prepared transactions — is the coordinator's to check.
func (c *Clog) Stable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctr.StableValue() >= c.codec.NextCounter()-1
}
