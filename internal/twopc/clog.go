// Package twopc implements Treaty's secure two-phase commit protocol for
// distributed transactions (§V) and its stabilization-integrated recovery
// (§VI). A transaction coordinator (TxC) drives each global transaction:
// it routes operations to participant nodes over the secure RPC layer,
// logs 2PC state transitions to the Clog with trusted-counter binding,
// and commits only after every participant's prepare entry — and its own
// decision entry — are rollback-protected.
package twopc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/enclave"
	"treaty/internal/lsm"
	"treaty/internal/mempool"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// Clog entry kinds.
const (
	// clogPrepare records that the coordinator started the prepare phase
	// for a transaction with the listed participants (Fig. 2 step 5).
	clogPrepare uint8 = iota + 1
	// clogDecision records the commit/abort decision (step 6-7); it must
	// be stabilized before the transaction commits.
	clogDecision
)

// Exported record kinds for harnesses that drive Append directly (the
// crash-point harness appends synthetic coordinator records).
const (
	ClogKindPrepare  = clogPrepare
	ClogKindDecision = clogDecision
)

// ErrClogClosed indicates an append against a closed coordinator log.
var ErrClogClosed = errors.New("twopc: clog closed")

// ClogEntry is one recovered coordinator-log record.
type ClogEntry struct {
	// Kind is clogPrepare or clogDecision.
	Kind uint8
	// TxID is the global transaction id.
	TxID lsm.TxID
	// Commit is the decision (valid for clogDecision).
	Commit bool
	// Participants lists the involved node addresses (clogPrepare).
	Participants []string
	// Counter is the entry's trusted counter value.
	Counter uint64
}

// DecodeClogRecord rebuilds a ClogEntry from a shipped (kind, counter,
// payload) triple — the form replication mirrors Clog records in.
func DecodeClogRecord(kind uint8, counter uint64, payload []byte) (ClogEntry, error) {
	if kind != clogPrepare && kind != clogDecision {
		return ClogEntry{}, fmt.Errorf("twopc: unknown clog record kind %d", kind)
	}
	txID, commit, parts, err := decodeClogPayload(payload)
	if err != nil {
		return ClogEntry{}, err
	}
	return ClogEntry{Kind: kind, TxID: txID, Commit: commit, Participants: parts, Counter: counter}, nil
}

// encodeClogPayload serializes an entry body.
func encodeClogPayload(txID lsm.TxID, commit bool, participants []string) []byte {
	out := make([]byte, 0, 32)
	out = append(out, txID[:]...)
	if commit {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, byte(len(participants)))
	for _, p := range participants {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(p)))
		out = append(out, p...)
	}
	return out
}

// decodeClogPayload parses an entry body.
func decodeClogPayload(data []byte) (txID lsm.TxID, commit bool, participants []string, err error) {
	if len(data) < 18 {
		err = errors.New("twopc: short clog entry")
		return
	}
	copy(txID[:], data)
	commit = data[16] == 1
	n := int(data[17])
	off := 18
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			err = errors.New("twopc: truncated clog entry")
			return
		}
		l := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+l > len(data) {
			err = errors.New("twopc: truncated clog entry")
			return
		}
		participants = append(participants, string(data[off:off+l]))
		off += l
	}
	return
}

// clogRes completes one waiter of a commit group.
type clogRes struct {
	token lsm.StableToken
	err   error
}

// clogReq is one entry enqueued for the group-commit leader.
type clogReq struct {
	kind    uint8
	payload []byte
	ctr     uint64
	done    chan clogRes
}

// defaultClogGroup bounds entries per commit group (matching the storage
// engine's MaxGroupCommit default).
const defaultClogGroup = 64

// Clog is the coordinator log: it keeps the 2PC protocol state with the
// same framing, hash chaining, and trusted-counter binding as the WAL and
// MANIFEST. Appends from concurrent coordinator fibers are group-
// committed: callers enqueue encoded entries, one leader goroutine drains
// the queue, writes the whole group with a single file write, forces it
// with a single fsync, and issues a single Stabilize at the group's
// maximum counter value. Stabilization therefore always follows the force
// of the entire group — the trusted counter can never run ahead of the
// log's synced prefix, so a power cut cannot manifest as a false-positive
// ErrRollbackDetected at recovery.
type Clog struct {
	f     vfs.File
	codec *seal.LogCodec
	rt    *enclave.Runtime
	ctr   lsm.TrustedCounter

	// Group-commit tuning; set by Configure before the first Append.
	maxGroup int
	noGroup  bool
	pool     *mempool.Pool
	ship     func([]lsm.ReplEntry)

	appendCh chan *clogReq
	closedMu sync.RWMutex
	closed   atomic.Bool
	wg       sync.WaitGroup

	// mu guards the cross-goroutine mutable state below (the leader is
	// the only writer of poisoned; Append's fast-fail path and Close read
	// it).
	mu sync.Mutex
	// poisoned is the sticky fail-stop error after a write/sync failure
	// (fsyncgate: the unsynced tail must be assumed lost, not retried).
	poisoned error
	// tornDropped records that opening found and dropped a crash-torn
	// tail.
	tornDropped bool

	// lastCtr is the highest counter value assigned to an appended entry;
	// synced is the highest value known forced to stable storage. The
	// leader maintains synced ≤ lastCtr and never stabilizes past synced.
	lastCtr atomic.Uint64
	synced  atomic.Uint64

	// buf is the leader's group staging buffer: all entries of a group
	// are framed into it and written with one syscall. When a mempool is
	// configured it is backed by a pooled host-region buffer (the frames
	// leave the enclave for the untrusted log).
	buf      []byte
	groupBuf *mempool.Buf

	// metrics (nil-safe no-ops without a registry)
	groupSizes  *obs.Histogram
	appends     *obs.Counter
	syncs       *obs.Counter
	syncLatency *obs.Histogram
}

// clogName builds the Clog path.
func clogName(dir string) string { return filepath.Join(dir, "CLOG-000001") }

// OpenClog creates or re-opens the coordinator log. Existing entries are
// replayed (verifying chain, counters, and freshness against maxStable;
// pass -1 to skip freshness) and returned for coordinator recovery.
//
// A decode failure at the tail is tolerated — and the tail truncated —
// when it is provably a crash artifact rather than an attack: a
// byte-level truncation anywhere, any failure at LevelNone, or any
// failure past the trusted stable point (those entries were never
// acknowledged). fs nil uses the real filesystem.
func OpenClog(fs vfs.FS, dir string, level seal.SecurityLevel, key seal.Key, rt *enclave.Runtime, ctr lsm.TrustedCounter, maxStable int64) (*Clog, []ClogEntry, error) {
	if fs == nil {
		fs = vfs.Default
	}
	path := clogName(dir)
	codec, err := seal.NewLogCodec(level, key, filepath.Base(path), 1)
	if err != nil {
		return nil, nil, err
	}
	var entries []ClogEntry
	torn := false
	existed := true
	data, err := fs.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		existed = false // fresh log
	case err != nil:
		return nil, nil, fmt.Errorf("twopc: reading clog: %w", err)
	default:
		off := 0
		last := uint64(0)
		for off < len(data) {
			e, n, derr := codec.DecodeEntry(data[off:])
			if derr != nil {
				tolerable := errors.Is(derr, seal.ErrTruncated) || level == seal.LevelNone ||
					maxStable < 0 || last >= uint64(maxStable)
				if tolerable {
					torn = true
					break
				}
				return nil, nil, fmt.Errorf("twopc: clog entry at %d: %w", off, derr)
			}
			if maxStable >= 0 && e.Counter > uint64(maxStable) {
				break // unstabilized tail
			}
			txID, commit, parts, perr := decodeClogPayload(e.Payload)
			if perr != nil {
				return nil, nil, perr
			}
			entries = append(entries, ClogEntry{
				Kind: e.Kind, TxID: txID, Commit: commit,
				Participants: parts, Counter: e.Counter,
			})
			last = e.Counter
			off += n
		}
		if maxStable > 0 && last < uint64(maxStable) {
			return nil, nil, fmt.Errorf("%w: clog ends at counter %d, trusted value is %d",
				lsm.ErrRollbackDetected, last, maxStable)
		}
		if off < len(data) {
			// Dropping a tail must itself be durable before appending
			// resumes: without the force a second crash could resurrect
			// the truncated bytes under freshly appended frames, splicing
			// the hash chain mid-file.
			if err := fs.Truncate(path, int64(off)); err != nil {
				return nil, nil, fmt.Errorf("twopc: truncating clog: %w", err)
			}
			if err := vfs.SyncPath(fs, path); err != nil {
				return nil, nil, fmt.Errorf("twopc: syncing truncated clog: %w", err)
			}
			if err := fs.SyncDir(dir); err != nil {
				return nil, nil, fmt.Errorf("twopc: syncing dir after clog truncate: %w", err)
			}
		}
	}

	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("twopc: opening clog: %w", err)
	}
	if !existed {
		// Make the log's directory entry durable so a post-crash recovery
		// sees the (possibly empty) file.
		if err := fs.SyncDir(dir); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("twopc: syncing dir after clog create: %w", err)
		}
	}
	if rt != nil {
		rt.Syscall()
	}
	c := &Clog{
		f:        f,
		codec:    codec,
		rt:       rt,
		ctr:      ctr,
		maxGroup: defaultClogGroup,
		appendCh: make(chan *clogReq, defaultClogGroup),

		tornDropped: torn,
	}
	c.lastCtr.Store(codec.NextCounter() - 1)
	c.synced.Store(codec.NextCounter() - 1)
	c.wg.Add(1)
	go c.leader()
	return c, entries, nil
}

// ClogTuning adjusts the group-commit leader.
type ClogTuning struct {
	// MaxGroup bounds entries per commit group (0 = 64).
	MaxGroup int
	// DisableGroupCommit makes every append write, force, and stabilize
	// alone (the group-commit ablation).
	DisableGroupCommit bool
	// Metrics, when non-nil, exports the append/sync counters and the
	// "twopc.clog.group_size" histogram.
	Metrics *obs.Registry
	// Pool, when non-nil, backs the group staging buffer with pooled
	// host-region memory (the framed bytes leave the enclave).
	Pool *mempool.Pool
	// Ship, when non-nil, is called once per commit group after the
	// group's fsync succeeded and before its counters stabilize (same
	// contract as lsm.Options.Ship): the replication ack — or a durable
	// degrade mark — must precede the trusted-counter advance. Entries
	// alias per-request payloads owned by the leader; copy to retain.
	Ship func([]lsm.ReplEntry)
}

// Configure applies tuning. It must be called before the first Append:
// the leader only reads this state while processing a request, so the
// channel send in Append is what publishes it.
func (c *Clog) Configure(t ClogTuning) {
	if t.MaxGroup > 0 {
		c.maxGroup = t.MaxGroup
	}
	c.noGroup = t.DisableGroupCommit
	c.pool = t.Pool
	c.ship = t.Ship
	if t.Metrics != nil {
		c.groupSizes = t.Metrics.Histogram("twopc.clog.group_size")
		c.appends = t.Metrics.Counter("twopc.clog.appends")
		c.syncs = t.Metrics.Counter("twopc.clog.syncs")
		c.syncLatency = t.Metrics.Histogram("twopc.clog.sync.latency_ns")
	}
}

// TornTailDropped reports whether opening dropped a crash-torn tail (a
// detected-corruption event for the observability layer).
func (c *Clog) TornTailDropped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tornDropped
}

// Append logs one entry via the group-commit leader and returns a token
// the caller can wait on ("Every Tx/operation is logged to Clog with its
// own unique trusted counter value"). The call returns once the entry's
// group has been written AND forced — an acknowledged append is durable —
// and its stabilization has started. The Clog is fail-stop: a write or
// sync failure poisons it and fails the whole unacknowledged cohort — the
// codec chain has advanced past the lost entries (and after a failed
// fsync the tail may be gone), so continuing to append would silently
// splice the protocol log. A counter that can no longer persist poisons
// it too.
func (c *Clog) Append(kind uint8, txID lsm.TxID, commit bool, participants []string) (lsm.StableToken, error) {
	req := &clogReq{
		kind:    kind,
		payload: encodeClogPayload(txID, commit, participants),
		done:    make(chan clogRes, 1),
	}
	c.closedMu.RLock()
	if c.closed.Load() {
		c.closedMu.RUnlock()
		c.mu.Lock()
		err := c.poisoned
		c.mu.Unlock()
		if err == nil {
			err = ErrClogClosed
		}
		return lsm.StableToken{}, err
	}
	c.appendCh <- req
	c.closedMu.RUnlock()
	res := <-req.done
	return res.token, res.err
}

// leader is the group-commit loop: it drains a group of pending appends
// and commits them with one write, one force, and one counter
// stabilization (mirroring the storage engine's committer, §VII-B).
func (c *Clog) leader() {
	defer c.wg.Done()
	for req := range c.appendCh {
		group := []*clogReq{req}
		if !c.noGroup {
		drain:
			for len(group) < c.maxGroup {
				select {
				case r2, ok := <-c.appendCh:
					if !ok {
						break drain
					}
					group = append(group, r2)
				default:
					break drain
				}
			}
		}
		c.commitGroup(group)
	}
}

// failGroup completes every waiter of a group with err.
func failGroup(group []*clogReq, err error) {
	for _, req := range group {
		req.done <- clogRes{err: err}
	}
}

// poison records the sticky fail-stop error (leader only).
func (c *Clog) poison(err error) {
	c.mu.Lock()
	if c.poisoned == nil {
		c.poisoned = err
	}
	c.mu.Unlock()
}

// commitGroup writes, forces, and stabilizes one group. The ordering
// invariant lives here: Stabilize is called only after the group's sync
// succeeded, and only up to the synced watermark, so the trusted
// counter's persisted value can never exceed the log's durable prefix.
func (c *Clog) commitGroup(group []*clogReq) {
	c.groupSizes.Observe(int64(len(group)))
	c.mu.Lock()
	if err := c.poisoned; err != nil {
		c.mu.Unlock()
		failGroup(group, err)
		return
	}
	c.mu.Unlock()

	// Pooled batch encode: every entry of the group is framed into one
	// staging buffer, paying one write and one enclave-boundary crossing
	// for the whole group.
	buf := c.stagingBuf()
	var maxCtr uint64
	for _, req := range group {
		buf, req.ctr = c.codec.AppendEntry(buf, req.kind, req.payload)
		maxCtr = req.ctr
		c.appends.Inc()
	}
	c.lastCtr.Store(maxCtr)
	c.retainStaging(buf)
	if c.rt != nil {
		c.rt.Syscall()
	}
	if _, err := c.f.Write(buf); err != nil {
		c.poison(fmt.Errorf("%w: clog write: %v", lsm.ErrLogPoisoned, err))
		failGroup(group, fmt.Errorf("twopc: clog write: %w", err))
		return
	}
	if c.rt != nil {
		c.rt.Syscall()
	}
	syncStart := time.Now()
	err := c.f.Sync()
	c.syncs.Inc()
	c.syncLatency.ObserveSince(syncStart)
	if err != nil {
		// The group's durability is unknown (fsyncgate: the tail may be
		// gone). Never stabilize it — advancing the trusted counter past
		// a lost tail would turn the loss into a false rollback alarm at
		// the next boot — and fail exactly this unacknowledged cohort.
		c.poison(fmt.Errorf("%w: clog sync: %v", lsm.ErrLogPoisoned, err))
		failGroup(group, fmt.Errorf("twopc: clog sync: %w", err))
		return
	}
	c.synced.Store(maxCtr)

	// Replicate before stabilizing: the backup's ack (or a durable
	// degrade mark) must exist before the trusted counter pins this
	// group, so a promoted replica provably holds every stabilized
	// entry.
	if c.ship != nil {
		shipped := make([]lsm.ReplEntry, len(group))
		for i, req := range group {
			shipped[i] = lsm.ReplEntry{Kind: req.kind, Counter: req.ctr, Payload: req.payload}
		}
		c.ship(shipped)
	}

	// Clamp stabilization to the synced prefix. By construction maxCtr ==
	// synced here; the clamp is the structural guard against ever
	// reintroducing the stabilize-before-durable ordering bug.
	stable := maxCtr
	if s := c.synced.Load(); s < stable {
		stable = s
	}
	c.ctr.Stabilize(stable)
	if fc, ok := c.ctr.(interface{ Failed() error }); ok {
		if cerr := fc.Failed(); cerr != nil {
			// The counter cannot persist: a restart's freshness check
			// would discard these entries as an unstabilized tail, so
			// they must not be acknowledged.
			c.poison(fmt.Errorf("%w: clog counter: %v", lsm.ErrLogPoisoned, cerr))
			failGroup(group, cerr)
			return
		}
	}
	for _, req := range group {
		req.done <- clogRes{token: lsm.NewStableToken(c.ctr, req.ctr)}
	}
}

// stagingBuf returns the empty group staging buffer, pool-backed when a
// mempool is configured.
func (c *Clog) stagingBuf() []byte {
	if c.pool == nil {
		return c.buf[:0]
	}
	if c.groupBuf == nil {
		c.groupBuf = c.pool.Alloc(4096, mempool.RegionHost)
	}
	return c.groupBuf.Full()[:0]
}

// retainStaging keeps the (possibly grown) staging buffer for the next
// group. A group that outgrew a pooled buffer escaped to the heap; the
// pooled backing is re-sized so the next group stays pooled.
func (c *Clog) retainStaging(buf []byte) {
	if c.pool == nil {
		c.buf = buf
		return
	}
	if cap(buf) > cap(c.groupBuf.Full()) {
		c.pool.Free(c.groupBuf)
		c.groupBuf = c.pool.Alloc(cap(buf), mempool.RegionHost)
	}
}

// EnableSync is retained for compatibility: the group-commit leader
// forces every group before stabilizing it, so per-append durability is
// unconditional and this is a no-op.
func (c *Clog) EnableSync() {}

// Abandon crash-stops the log: queued and future appends fail without
// touching the file, and the call returns only after the leader exits,
// so no write can reach the file afterwards. Crash teardown needs this
// barrier because coordinator appends run on client goroutines that no
// scheduler stop can freeze — without it, an abort decision raced by a
// simulated crash keeps writing into a file the restarted instance now
// owns, splicing the hash chain mid-log. The file stays open (a crash
// does not get a clean close), and the poison mark makes a later Close
// report the teardown instead of a clean shutdown.
func (c *Clog) Abandon() {
	c.poison(fmt.Errorf("%w: clog abandoned by crash teardown", lsm.ErrLogPoisoned))
	if c.closed.Swap(true) {
		return
	}
	c.closedMu.Lock()
	close(c.appendCh)
	c.closedMu.Unlock()
	c.wg.Wait()
}

// Close drains the leader and closes the log file. A poisoned log never
// reports a clean close: its tail durability is unknown, and pretending
// otherwise would let a shutdown path mask an acknowledged-loss bug.
func (c *Clog) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.closedMu.Lock()
	close(c.appendCh)
	c.closedMu.Unlock()
	c.wg.Wait()
	if c.rt != nil {
		c.rt.Syscall()
	}
	cerr := c.f.Close()
	if c.groupBuf != nil {
		c.pool.Free(c.groupBuf)
		c.groupBuf = nil
	}
	c.mu.Lock()
	p := c.poisoned
	c.mu.Unlock()
	if p != nil {
		return p
	}
	if cerr != nil {
		return fmt.Errorf("twopc: clog close: %w", cerr)
	}
	return nil
}

// LastCounter returns the counter value of the most recent entry.
func (c *Clog) LastCounter() uint64 { return c.lastCtr.Load() }

// SyncedCounter returns the highest counter value known forced to stable
// storage (test hook for the ordering invariant: acknowledged tokens
// never exceed it).
func (c *Clog) SyncedCounter() uint64 { return c.synced.Load() }

// Stable reports whether every appended entry is rollback-protected —
// one of the two preconditions for Clog truncation (§VI: "The Clog is
// deleted as long as there are no unstable entries and does not contain
// any unfinished prepared transaction entry"). The other precondition —
// no unfinished prepared transactions — is the coordinator's to check.
func (c *Clog) Stable() bool {
	return c.ctr.StableValue() >= c.lastCtr.Load()
}
