package twopc

import (
	"errors"
	"testing"

	"treaty/internal/lsm"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// TestClogSyncFailureFailStop is the coordinator-log fail-stop
// regression: one injected fsync failure (fsyncgate semantics — the
// unsynced tail is dropped by the fault layer) must poison the Clog so
// every later Append is refused with a sticky ErrLogPoisoned, and a
// reopen must recover exactly the pre-failure entries.
func TestClogSyncFailureFailStop(t *testing.T) {
	mem := vfs.NewMemFS()
	ff := vfs.NewFaultFS(mem)
	if err := ff.MkdirAll("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	ctr := &fakeCounter{}
	clog, recovered, err := OpenClog(ff, "/c", seal.LevelEncrypted, key, nil, ctr, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatal("fresh clog must be empty")
	}
	clog.EnableSync()

	okID := globalTxID(1, 1)
	if _, err := clog.Append(clogPrepare, okID, false, []string{"node-1"}); err != nil {
		t.Fatal(err)
	}

	ff.FailNextSyncs(1)
	lostID := globalTxID(1, 2)
	if _, err := clog.Append(clogDecision, lostID, true, nil); err == nil {
		t.Fatal("append acknowledged over a failed fsync")
	}

	// The device is healthy again, but the handle must stay poisoned: the
	// codec chain has advanced past the dropped entry, so appending would
	// splice the protocol log across the hole.
	if _, err := clog.Append(clogDecision, lostID, true, nil); !errors.Is(err, lsm.ErrLogPoisoned) {
		t.Fatalf("post-failure append error = %v, want ErrLogPoisoned", err)
	}
	_ = clog.Close()

	// Reopen: only the pre-failure entry survives, and the log accepts
	// appends again (a restart re-ran recovery, clearing the fail-stop).
	clog2, entries, err := OpenClog(ff, "/c", seal.LevelEncrypted, key, nil, ctr, int64(ctr.StableValue()))
	if err != nil {
		t.Fatalf("reopen after poisoned clog: %v", err)
	}
	defer clog2.Close()
	if len(entries) != 1 || entries[0].Kind != clogPrepare || entries[0].TxID != okID {
		t.Fatalf("recovered entries = %+v, want the single pre-failure prepare", entries)
	}
	clog2.EnableSync()
	if _, err := clog2.Append(clogDecision, okID, true, nil); err != nil {
		t.Fatalf("reopened clog rejects appends: %v", err)
	}
}
