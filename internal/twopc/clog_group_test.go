package twopc

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"treaty/internal/lsm"
	"treaty/internal/seal"
	"treaty/internal/vfs"
)

// TestClogGroupCommitOrdering is the stabilize-before-durable regression
// at every security level: with many coordinator goroutines appending
// concurrently through the group-commit leader, every acknowledged
// token's counter value must already lie within the log's synced prefix
// when Append returns, and the trusted counter must never run ahead of
// that prefix. (The pre-fix Clog stabilized each entry before any fsync,
// so a power cut could persist the counter past the log and trip a
// false-positive ErrRollbackDetected at reboot.)
func TestClogGroupCommitOrdering(t *testing.T) {
	for _, level := range []seal.SecurityLevel{seal.LevelNone, seal.LevelIntegrity, seal.LevelEncrypted} {
		t.Run(level.String(), func(t *testing.T) {
			fs := vfs.NewMemFS()
			if err := fs.MkdirAll("/c", 0o755); err != nil {
				t.Fatal(err)
			}
			key, err := seal.NewRandomKey()
			if err != nil {
				t.Fatal(err)
			}
			ctr := &fakeCounter{}
			clog, _, err := OpenClog(fs, "/c", level, key, nil, ctr, -1)
			if err != nil {
				t.Fatal(err)
			}
			defer clog.Close()

			const fibers, appendsPer = 8, 40
			var wg sync.WaitGroup
			errCh := make(chan error, fibers)
			for g := 0; g < fibers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < appendsPer; i++ {
						id := globalTxID(uint64(g+1), uint64(i+1))
						token, err := clog.Append(clogDecision, id, true, nil)
						if err != nil {
							errCh <- err
							return
						}
						// Read order matters: synced is monotonic, so a
						// synced value read *after* the ack that is still
						// below the token proves the ack outran the fsync.
						if synced := clog.SyncedCounter(); token.Value() > synced {
							errCh <- fmt.Errorf("acked token %d > synced prefix %d", token.Value(), synced)
							return
						}
						if stable := ctr.StableValue(); stable > clog.SyncedCounter() {
							errCh <- fmt.Errorf("trusted counter %d ran ahead of synced prefix %d", stable, clog.SyncedCounter())
							return
						}
						if !token.Ready() {
							// The group's Stabilize covers its max value,
							// which covers every member.
							errCh <- fmt.Errorf("acked token %d not stable after group commit", token.Value())
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if got, want := clog.LastCounter(), uint64(fibers*appendsPer); got != want {
				t.Fatalf("LastCounter = %d, want %d", got, want)
			}
			if !clog.Stable() {
				t.Fatal("clog not Stable after all appends acked")
			}
		})
	}
}

// TestClogPowerCutNoFalseRollback pins the ordering bugfix end to end: at
// sync-disabled settings (no EnableSync; the leader's per-group force is
// the only durability), a power cut immediately after a burst of acked
// appends must reboot cleanly — with every acked entry recovered — rather
// than refusing to boot with ErrRollbackDetected because the persisted
// trusted counter outran the log.
func TestClogPowerCutNoFalseRollback(t *testing.T) {
	fs := vfs.NewMemFS()
	for _, d := range []string{"/c", "/ctr"} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	// A persistent counter: its Stabilize fsyncs the value, which is
	// exactly what made the old bug a boot refusal — the counter survived
	// the power cut, the unsynced log tail did not.
	ctr, err := lsm.NewFileCounter(fs, "/ctr/CLOG-000001")
	if err != nil {
		t.Fatal(err)
	}
	clog, _, err := OpenClog(fs, "/c", seal.LevelEncrypted, key, nil, ctr, -1)
	if err != nil {
		t.Fatal(err)
	}
	const appends = 25
	for i := 1; i <= appends; i++ {
		if _, err := clog.Append(clogPrepare, globalTxID(7, uint64(i)), false, []string{"node-1", "node-2"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Power cut: all volatile (unsynced) state is dropped. No Close.
	dead := fs.CloneCrash(0)

	ctr2, err := lsm.NewFileCounter(dead, "/ctr/CLOG-000001")
	if err != nil {
		t.Fatalf("counter after power cut: %v", err)
	}
	clog2, entries, err := OpenClog(dead, "/c", seal.LevelEncrypted, key, nil, ctr2, int64(ctr2.StableValue()))
	if err != nil {
		t.Fatalf("reboot after power cut refused (the stabilize-before-durable bug): %v", err)
	}
	defer clog2.Close()
	if len(entries) != appends {
		t.Fatalf("recovered %d entries after power cut, want all %d acked", len(entries), appends)
	}
	if _, err := clog2.Append(clogDecision, globalTxID(7, 1), true, nil); err != nil {
		t.Fatalf("rebooted clog rejects appends: %v", err)
	}
}

// TestClogGroupFsyncPoisonsCohort injects a failure into the *group*
// fsync: every append of the failed group errors (nothing in it was
// acked), the log is poisoned for all later appends, the trusted counter
// never advances past the synced prefix, and a reboot recovers exactly
// the pre-failure acked entries.
func TestClogGroupFsyncPoisonsCohort(t *testing.T) {
	mem := vfs.NewMemFS()
	ff := vfs.NewFaultFS(mem)
	if err := ff.MkdirAll("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	ctr := &fakeCounter{}
	clog, _, err := OpenClog(ff, "/c", seal.LevelEncrypted, key, nil, ctr, -1)
	if err != nil {
		t.Fatal(err)
	}

	// A healthy first group.
	okID := globalTxID(1, 1)
	if _, err := clog.Append(clogPrepare, okID, false, []string{"node-1"}); err != nil {
		t.Fatal(err)
	}
	ackedBefore := ctr.StableValue()

	// Arm one fsync failure and race a cohort of appends into the leader;
	// however they group, the first group's sync fails and poisons the
	// log, so NONE of them may ack.
	ff.FailNextSyncs(1)
	const cohort = 6
	var wg sync.WaitGroup
	failed := make([]error, cohort)
	for i := 0; i < cohort; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, failed[i] = clog.Append(clogDecision, globalTxID(2, uint64(i+1)), true, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range failed {
		if err == nil {
			t.Fatalf("cohort append %d acked across a failed group fsync", i)
		}
	}
	if stable := ctr.StableValue(); stable != ackedBefore {
		t.Fatalf("counter advanced to %d over a failed group fsync (synced prefix %d)", stable, ackedBefore)
	}
	// Sticky: the device is healthy again but the chain has a hole.
	if _, err := clog.Append(clogDecision, okID, true, nil); !errors.Is(err, lsm.ErrLogPoisoned) {
		t.Fatalf("post-failure append error = %v, want ErrLogPoisoned", err)
	}
	// A poisoned log must refuse to report a clean close.
	if err := clog.Close(); !errors.Is(err, lsm.ErrLogPoisoned) {
		t.Fatalf("poisoned clog Close = %v, want ErrLogPoisoned", err)
	}

	// Reboot: exactly the acked prefix survives.
	clog2, entries, err := OpenClog(ff, "/c", seal.LevelEncrypted, key, nil, ctr, int64(ctr.StableValue()))
	if err != nil {
		t.Fatalf("reopen after poisoned clog: %v", err)
	}
	defer clog2.Close()
	if len(entries) != 1 || entries[0].TxID != okID {
		t.Fatalf("recovered entries = %+v, want the single acked prepare", entries)
	}
}

// TestClogConcurrentAppendHammer is the -race exerciser for coordinator
// fibers vs the group-commit leader: appends, readiness polls, metadata
// reads, and the closed-path all interleave. Run under `go test -race`
// (the Makefile's test-race target includes this package).
func TestClogConcurrentAppendHammer(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := fs.MkdirAll("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	key, err := seal.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	ctr := &fakeCounter{}
	clog, _, err := OpenClog(fs, "/c", seal.LevelIntegrity, key, nil, ctr, -1)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = clog.LastCounter()
				_ = clog.SyncedCounter()
				_ = clog.Stable()
				_ = clog.TornTailDropped()
			}
		}
	}()
	const fibers, appendsPer = 12, 50
	var wg sync.WaitGroup
	for g := 0; g < fibers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < appendsPer; i++ {
				token, err := clog.Append(clogPrepare, globalTxID(uint64(g+1), uint64(i+1)), false, []string{"a", "b"})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				for !token.Ready() {
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if err := clog.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Appends against the closed log fail cleanly instead of racing the
	// leader shutdown.
	if _, err := clog.Append(clogDecision, globalTxID(1, 1), true, nil); !errors.Is(err, ErrClogClosed) {
		t.Fatalf("append after close = %v, want ErrClogClosed", err)
	}
}
