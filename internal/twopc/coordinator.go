package twopc

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treaty/internal/erpc"
	"treaty/internal/lsm"
	"treaty/internal/obs"
	"treaty/internal/seal"
	"treaty/internal/shardmap"
)

// debugAdopt dumps adoption/resolution decisions to stderr
// (TREATY_DEBUG_PROMOTE=1), for debugging failover soak audits.
var debugAdopt = os.Getenv("TREATY_DEBUG_PROMOTE") != ""

func debugAdoptf(format string, args ...any) {
	if debugAdopt {
		fmt.Fprintf(os.Stderr, "[twopc] "+format+"\n", args...)
	}
}

// Errors returned by the coordinator.
var (
	// ErrAborted indicates the transaction was aborted (a participant
	// voted no, timed out, or Rollback was called).
	ErrAborted = errors.New("twopc: transaction aborted")
	// ErrTxnFinished indicates use of a finished distributed transaction.
	ErrTxnFinished = errors.New("twopc: transaction already finished")
	// ErrStabilizeTimeout indicates the trusted counter service did not
	// stabilize a decision within the deadline; the transaction aborts
	// instead of spinning its fiber forever on a dead counter service.
	ErrStabilizeTimeout = errors.New("twopc: decision stabilization timed out")
	// ErrNoShardMap indicates the coordinator has no routing view yet
	// (boot wiring incomplete).
	ErrNoShardMap = errors.New("twopc: no shard map view")
)

// Router supplies the coordinator's routing view: the current epoch of
// the attested shard map. A transaction pins one view at Begin and
// routes every operation through it, stamping the view's epoch into the
// message metadata — the whole transaction executes at a single epoch,
// and participants whose epoch differs reject with ErrWrongEpoch.
//
// shardmap.Holder implements this directly.
type Router interface {
	// View returns the current shard map (nil only before boot wiring).
	View() *shardmap.Map
}

// wrongEpochMsg is the participant's retriable rejection of an
// operation carrying a different shard-map epoch than its own view (or
// routed to a node that does not own the key's slot). Coordinators and
// clients react by refetching the map and retrying the transaction.
const wrongEpochMsg = "twopc: wrong epoch"

// slotFencedMsg rejects new operations on a slot frozen for migration;
// like wrong-epoch it is retriable — the fence lifts when the slot's
// epoch flip completes (or the migration aborts).
const slotFencedMsg = "twopc: slot fenced for migration"

// IsWrongEpoch reports whether an operation failed because the
// receiving participant's shard-map epoch differed from the sender's
// (the error crosses the wire as an erpc remote error, so the check is
// by message). Callers should refresh their shard map and retry the
// transaction.
func IsWrongEpoch(err error) bool {
	return err != nil && strings.Contains(err.Error(), wrongEpochMsg)
}

// IsSlotFenced reports whether an operation was rejected by a
// migration fence (retriable after the migration completes).
func IsSlotFenced(err error) bool {
	return err != nil && strings.Contains(err.Error(), slotFencedMsg)
}

// Coordinator drives distributed transactions from one node (the TxC).
// Every node runs one; clients pick any node as their coordinator.
type Coordinator struct {
	nodeID      uint64
	ep          *erpc.Endpoint
	clog        *Clog
	router      Router
	refresh     func()
	timeout     time.Duration
	stabTimeout time.Duration

	nextTx atomic.Uint64
	nextOp atomic.Uint64

	// decisions records known outcomes for status queries (seeded from
	// Clog recovery, extended by live traffic).
	mu        sync.Mutex
	decisions map[lsm.TxID]bool
	prepared  map[lsm.TxID][]string // prepare logged, no decision yet
	// decidedParts keeps the participant lists of decided-but-possibly-
	// unpushed transactions recovered from the Clog, so RecoverPending
	// can re-instruct them.
	decidedParts map[lsm.TxID][]string

	tracer *obs.Tracer
	met    coordMetrics
}

// coordMetrics aggregates the coordinator's counters. All fields are
// nil-safe no-ops when no registry is configured. The transaction
// counters obey the conservation law the chaos soak asserts:
//
//	begun == committed + aborted + inflight
//
// Recovery-driven replays (RecoverPending) deliberately touch none of
// these: they re-drive transactions that were already counted (or that
// belonged to a previous boot's registry), so counting them again would
// break the law. They are visible through the recover.* counters and
// the "recover" stage traces instead.
type coordMetrics struct {
	begun, committed, aborted *obs.Counter
	inflight                  *obs.Gauge

	// aborts by reason
	abortPrepareFailed *obs.Counter // a participant voted no or timed out
	abortLogAppend     *obs.Counter // Clog append failed
	abortStabilize     *obs.Counter // decision never became rollback-protected
	abortClient        *obs.Counter // explicit Rollback

	// recovery resolutions
	recoverRedo         *obs.Counter // prepare re-executed after crash
	recoverRepushCommit *obs.Counter
	recoverRepushAbort  *obs.Counter
	recoverAdopted      *obs.Counter // dead peer's Clog entries adopted at promotion

	stabilizeWait *obs.Histogram // time spent in waitToken
}

func newCoordMetrics(m *obs.Registry) coordMetrics {
	return coordMetrics{
		begun:               m.Counter("twopc.tx.begun"),
		committed:           m.Counter("twopc.tx.committed"),
		aborted:             m.Counter("twopc.tx.aborted"),
		inflight:            m.Gauge("twopc.tx.inflight"),
		abortPrepareFailed:  m.Counter("twopc.abort.prepare_failed"),
		abortLogAppend:      m.Counter("twopc.abort.log_append"),
		abortStabilize:      m.Counter("twopc.abort.stabilize_timeout"),
		abortClient:         m.Counter("twopc.abort.client_rollback"),
		recoverRedo:         m.Counter("twopc.recover.redo_prepare"),
		recoverRepushCommit: m.Counter("twopc.recover.repush_commit"),
		recoverRepushAbort:  m.Counter("twopc.recover.repush_abort"),
		recoverAdopted:      m.Counter("twopc.recover.adopted"),
		stabilizeWait:       m.Histogram("twopc.stabilize.wait_ns"),
	}
}

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// NodeID is this node's cluster id.
	NodeID uint64
	// Endpoint sends protocol messages (its event loop must be driven).
	Endpoint *erpc.Endpoint
	// Clog is the coordinator log.
	Clog *Clog
	// Router supplies the shard-map view that maps keys to owners.
	Router Router
	// Refresh, when non-nil, is invoked after a wrong-epoch rejection so
	// the node refetches the shard map from the CAS before the client
	// retries (may be nil; tests and single-node rigs skip it).
	Refresh func()
	// Timeout bounds each remote operation (0 = 2s).
	Timeout time.Duration
	// StabilizeTimeout bounds the wait for a decision's rollback
	// protection (0 = 4 × Timeout). A dead counter service then aborts
	// the transaction instead of hanging it.
	StabilizeTimeout time.Duration
	// Recovered seeds protocol state from Clog replay (may be nil).
	Recovered []ClogEntry
	// Metrics, when non-nil, exports transaction counters under
	// "twopc.*" and per-stage 2PC latency histograms under
	// "twopc.stage.*".
	Metrics *obs.Registry
}

// NewCoordinator creates a coordinator and registers its status handler.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		nodeID:       cfg.NodeID,
		ep:           cfg.Endpoint,
		clog:         cfg.Clog,
		router:       cfg.Router,
		refresh:      cfg.Refresh,
		timeout:      cfg.Timeout,
		decisions:    make(map[lsm.TxID]bool),
		prepared:     make(map[lsm.TxID][]string),
		decidedParts: make(map[lsm.TxID][]string),
		tracer:       obs.NewTracer(cfg.Metrics, "twopc.stage"),
		met:          newCoordMetrics(cfg.Metrics),
	}
	cfg.Metrics.GaugeFunc("twopc.coord.prepared", func() int64 {
		return int64(c.PreparedCount())
	})
	if c.timeout == 0 {
		c.timeout = 2 * time.Second
	}
	c.stabTimeout = cfg.StabilizeTimeout
	if c.stabTimeout == 0 {
		c.stabTimeout = 4 * c.timeout
	}
	// Operation ids start at a per-boot random offset so a recovered
	// coordinator's retry messages never collide with pre-crash tuples
	// still held in participants' replay caches.
	var opSeed [4]byte
	if _, err := rand.Read(opSeed[:]); err == nil {
		c.nextOp.Store(uint64(binary.LittleEndian.Uint32(opSeed[:])) << 16)
	}
	var maxSeq uint64
	for _, e := range cfg.Recovered {
		switch e.Kind {
		case clogPrepare:
			c.prepared[e.TxID] = e.Participants
		case clogDecision:
			c.decisions[e.TxID] = e.Commit
			c.decidedParts[e.TxID] = e.Participants
			delete(c.prepared, e.TxID)
		}
		if node, seq := splitTxID(e.TxID); node == cfg.NodeID && seq > maxSeq {
			maxSeq = seq
		}
	}
	c.nextTx.Store(maxSeq)
	c.ep.Register(ReqTxStatus, c.handleStatus)
	return c
}

// handleStatus answers participant recovery queries: the global tx id is
// carried in the payload (16 bytes).
func (c *Coordinator) handleStatus(req *erpc.Request) {
	if len(req.Payload) < 16 {
		req.ReplyError("twopc: short status query")
		return
	}
	var id lsm.TxID
	copy(id[:], req.Payload)
	c.mu.Lock()
	commit, decided := c.decisions[id]
	_, pending := c.prepared[id]
	c.mu.Unlock()
	switch {
	case decided && commit:
		req.Reply([]byte{StatusCommit})
	case decided:
		req.Reply([]byte{StatusAbort})
	case pending:
		req.Reply([]byte{StatusPending})
	default:
		// Never prepared from this coordinator's perspective: the
		// decision is abort (presumed abort).
		req.Reply([]byte{StatusAbort})
	}
}

// DistTxn is one distributed transaction driven by a coordinator on
// behalf of a client. Not safe for concurrent use (one client, one
// transaction, one fiber — "Each RPC is strictly owned by one thread").
type DistTxn struct {
	c    *Coordinator
	id   lsm.TxID
	seq  uint64
	// view is the shard map pinned at Begin: the whole transaction
	// routes and epoch-stamps through one consistent view, so a
	// concurrent epoch flip surfaces as a retriable wrong-epoch
	// rejection rather than a torn route. Nil only for recovery
	// replays, which broadcast control messages and never route keys.
	view  *shardmap.Map
	parts map[string]bool
	yield func()
	done  bool
	// outcome is the client-visible classification, set once by finish.
	outcome TxnOutcome
	// trace follows the transaction through the 2PC stage machine. Nil
	// for recovery replays — those must not feed the tx.* conservation
	// counters either (see coordMetrics).
	trace *obs.Trace
}

// TxnOutcome classifies how a distributed transaction ended from the
// client's point of view. The distinction between TxnAborted and
// TxnIndeterminate is a durability argument, not a convenience: once
// Commit has appended a prepare record, a coordinator crash can leave
// that record behind and RecoverPending will re-drive the decision — a
// transaction whose Commit returned an error may still commit later.
// Only the Rollback path (no prepare record can exist) and transactions
// that never reached Commit are definite aborts. History auditors rely
// on this classification being sound.
type TxnOutcome uint8

const (
	// TxnPending: the transaction has not finished.
	TxnPending TxnOutcome = iota
	// TxnCommitted: Commit returned success.
	TxnCommitted
	// TxnAborted: the transaction definitely did not and cannot commit.
	TxnAborted
	// TxnIndeterminate: Commit failed from the client's view, but a
	// prepare record may exist and recovery may still commit it.
	TxnIndeterminate
)

// Outcome returns the client-visible outcome (TxnPending until Commit
// or Rollback returns).
func (t *DistTxn) Outcome() TxnOutcome { return t.outcome }

// Begin starts a distributed transaction. yield is invoked while waiting
// for remote replies (fiber cooperation); may be nil.
func (c *Coordinator) Begin(yield func()) *DistTxn {
	seq := c.nextTx.Add(1)
	c.met.begun.Inc()
	c.met.inflight.Add(1)
	id := globalTxID(c.nodeID, seq)
	var view *shardmap.Map
	if c.router != nil {
		view = c.router.View()
	}
	return &DistTxn{
		c:     c,
		id:    id,
		seq:   seq,
		view:  view,
		parts: make(map[string]bool),
		yield: yield,
		trace: c.tracer.Begin(txTraceID(id), obs.StageBegin),
	}
}

// Epoch reports the shard-map epoch the transaction is pinned to
// (0 when no view is bound).
func (t *DistTxn) Epoch() uint64 {
	if t.view == nil {
		return 0
	}
	return t.view.Epoch
}

// ownerAddr resolves key's owner under the pinned view.
func (t *DistTxn) ownerAddr(key []byte) (string, error) {
	if t.view == nil {
		return "", ErrNoShardMap
	}
	addr := t.view.Owner(key)
	if addr == "" {
		return "", fmt.Errorf("twopc: slot %d unowned at epoch %d",
			shardmap.SlotOf(key), t.view.Epoch)
	}
	return addr, nil
}

// noteWrongEpoch triggers a shard-map refresh after a wrong-epoch
// rejection, so the node's view catches up before the client retries.
func (c *Coordinator) noteWrongEpoch(err error) {
	if IsWrongEpoch(err) && c.refresh != nil {
		c.refresh()
	}
}

// txTraceID renders a global transaction id as "node.seq" for traces.
func txTraceID(id lsm.TxID) string {
	node, seq := splitTxID(id)
	return fmt.Sprintf("%d.%d", node, seq)
}

// Tracer exposes the coordinator's stage tracer (tests and treatystat
// read the recent traces).
func (c *Coordinator) Tracer() *obs.Tracer { return c.tracer }

// finish settles the transaction's outcome in the conservation counters
// and closes its trace. Called exactly once per client-begun transaction
// (Commit or Rollback); recovery replays never reach it.
func (t *DistTxn) finish(committed bool, reason string) {
	t.c.met.inflight.Add(-1)
	switch {
	case committed:
		t.outcome = TxnCommitted
	case reason == "client_rollback":
		// Rollback never logs a prepare record, so recovery can never
		// resurrect this transaction: a definite abort.
		t.outcome = TxnAborted
	default:
		// Every failed Commit path is indeterminate: the prepare record
		// (and possibly the decision) may be durable, and RecoverPending
		// is entitled to commit it after the fact.
		t.outcome = TxnIndeterminate
	}
	if committed {
		t.c.met.committed.Inc()
		t.trace.Finish(obs.OutcomeCommitted, reason)
	} else {
		t.c.met.aborted.Inc()
		t.trace.Finish(obs.OutcomeAborted, reason)
	}
}

// ID returns the global transaction id.
func (t *DistTxn) ID() lsm.TxID { return t.id }

// SetYield rebinds the cooperative-wait callback. Server-side client
// sessions execute each client request on its own fiber, so the current
// fiber's yield must be bound before every operation.
func (t *DistTxn) SetYield(yield func()) { t.yield = yield }

// call performs one remote operation against the key's owner.
func (t *DistTxn) call(addr string, reqType uint8, key, value []byte) ([]byte, error) {
	md := seal.MsgMetadata{
		TxID:     t.seq,
		OpID:     t.c.nextOp.Add(1),
		OpType:   uint32(reqType),
		KeyLen:   uint32(len(key)),
		ValueLen: uint32(len(value)),
		Epoch:    t.Epoch(),
	}
	payload := make([]byte, 0, len(key)+len(value))
	payload = append(payload, key...)
	payload = append(payload, value...)
	t.parts[addr] = true
	t.trace.Enter(obs.StageExecute) // collapses across per-op calls
	return erpc.Call(t.c.ep, addr, reqType, md, payload, t.c.timeout, t.yield)
}

// Get reads key through the owning participant.
func (t *DistTxn) Get(key []byte) ([]byte, bool, error) {
	if t.done {
		return nil, false, ErrTxnFinished
	}
	addr, err := t.ownerAddr(key)
	if err != nil {
		return nil, false, err
	}
	resp, err := t.call(addr, ReqTxnGet, key, nil)
	if err != nil {
		t.c.noteWrongEpoch(err)
		return nil, false, err
	}
	if len(resp) == 0 || resp[0] == getNotFound {
		return nil, false, nil
	}
	return resp[1:], true, nil
}

// Put writes key through the owning participant.
func (t *DistTxn) Put(key, value []byte) error {
	if t.done {
		return ErrTxnFinished
	}
	addr, err := t.ownerAddr(key)
	if err != nil {
		return err
	}
	_, err = t.call(addr, ReqTxnPut, key, value)
	t.c.noteWrongEpoch(err)
	return err
}

// Delete removes key through the owning participant.
func (t *DistTxn) Delete(key []byte) error {
	if t.done {
		return ErrTxnFinished
	}
	addr, err := t.ownerAddr(key)
	if err != nil {
		return err
	}
	_, err = t.call(addr, ReqTxnDelete, key, nil)
	t.c.noteWrongEpoch(err)
	return err
}

// bcastResult is one participant's outcome in a broadcast.
type bcastResult struct {
	resp []byte
	err  error
}

// broadcast sends reqType to every participant in parallel (enqueue all,
// then poll) and waits for all replies; it returns the per-participant
// results and the first error. Participants that do not answer within
// the timeout are abandoned — their pending entries are deregistered so
// the endpoint's pending map cannot grow across lost messages.
func (t *DistTxn) broadcast(reqType uint8, participants []string) ([]bcastResult, error) {
	pendings := make([]*erpc.Pending, len(participants))
	for i, addr := range participants {
		md := seal.MsgMetadata{
			TxID:   t.seq,
			OpID:   t.c.nextOp.Add(1),
			OpType: uint32(reqType),
		}
		pendings[i] = t.c.ep.Enqueue(addr, reqType, md, nil, nil)
	}
	deadline := time.Now().Add(t.c.timeout)
	results := make([]bcastResult, len(pendings))
	var firstErr error
	spins := 0
	for i, p := range pendings {
		if t.yield == nil {
			select {
			case <-p.Ch():
			case <-time.After(time.Until(deadline)):
			}
		} else {
			for !p.Done() && time.Now().Before(deadline) {
				t.yield()
				if spins++; spins%64 == 0 {
					time.Sleep(20 * time.Microsecond)
				}
			}
		}
		if !p.Done() {
			if t.c.ep.Abandon(p) {
				results[i].err = fmt.Errorf("%w: %s", erpc.ErrTimeout, "2pc broadcast")
				if firstErr == nil {
					firstErr = results[i].err
				}
				continue
			}
			// The response won the race against the deadline; wait out
			// the (imminent) completion and use it.
			<-p.Ch()
		}
		results[i] = bcastResult{resp: p.Response(), err: p.Err()}
		if p.Err() != nil && firstErr == nil {
			firstErr = p.Err()
		}
	}
	return results, firstErr
}

// broadcastRetry re-sends an idempotent control message (commit/abort
// decision push) to the participants that did not answer, with bounded
// exponential backoff. A lost decision push is always safe — recovery
// re-derives it — but re-pushing promptly releases prepared participants
// without waiting for a restart. It returns the last timeout error if
// some participant never answered.
func (t *DistTxn) broadcastRetry(reqType uint8, participants []string, attempts int) error {
	remaining := append([]string(nil), participants...)
	backoff := 25 * time.Millisecond
	var lastErr error
	for try := 0; try < attempts && len(remaining) > 0; try++ {
		if try > 0 {
			erpc.SleepYield(backoff, t.yield)
			if backoff *= 2; backoff > 400*time.Millisecond {
				backoff = 400 * time.Millisecond
			}
		}
		results, _ := t.broadcast(reqType, remaining)
		var unanswered []string
		for i, r := range results {
			if r.err != nil && errors.Is(r.err, erpc.ErrTimeout) {
				unanswered = append(unanswered, remaining[i])
				lastErr = r.err
			}
		}
		remaining = unanswered
	}
	if len(remaining) > 0 {
		return lastErr
	}
	return nil
}

// participants returns the involved addresses, sorted (determinism).
func (t *DistTxn) participants() []string {
	out := make([]string, 0, len(t.parts))
	for a := range t.parts {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Commit runs the two-phase commit (Fig. 2):
//
//  5. Log the prepare start to the Clog (counter-bound) and send
//     TxnPrepare to every participant; each prepares its local
//     transaction and ACKs only after its prepare entry is stabilized.
//  6. Log the commit decision to the Clog and wait until it is
//     rollback-protected ("The TxC, before committing/aborting, also
//     stabilizes the prepare's phase decision on the Clog").
//  7. Send TxnCommit to all participants. The commit entries need not be
//     stable before acknowledging the client: after a crash the same
//     decision re-derives from the stabilized Clog.
//
// Any prepare failure aborts everywhere and returns ErrAborted.
func (t *DistTxn) Commit() error {
	if t.done {
		return ErrTxnFinished
	}
	t.done = true
	participants := t.participants()
	if len(participants) == 0 {
		t.finish(true, "empty")
		return nil // no operations
	}

	// Step 5: prepare phase.
	t.trace.Enter(obs.StagePrepare)
	if _, err := t.c.clog.Append(clogPrepare, t.id, false, participants); err != nil {
		t.c.met.abortLogAppend.Inc()
		t.finish(false, "prepare_log_failed")
		return err
	}
	t.c.mu.Lock()
	t.c.prepared[t.id] = participants
	t.c.mu.Unlock()

	votes, err := t.broadcast(ReqPrepare, participants)
	if err != nil {
		t.trace.Enter(obs.StageAbort)
		t.decide(false, participants)
		t.c.met.abortPrepareFailed.Inc()
		t.finish(false, "prepare_failed")
		return fmt.Errorf("%w: prepare failed: %v", ErrAborted, err)
	}
	// Read-only participants voted and released at prepare; only writers
	// need the decision (the read-only 2PC optimization).
	writers := make([]string, 0, len(participants))
	for i, addr := range participants {
		if len(votes[i].resp) == 0 || votes[i].resp[0] != voteReadOnly {
			writers = append(writers, addr)
		}
	}
	if len(writers) == 0 {
		// Fully read-only transaction: nothing to decide or make
		// durable; record the outcome locally for status queries.
		t.c.mu.Lock()
		t.c.decisions[t.id] = true
		delete(t.c.prepared, t.id)
		t.c.mu.Unlock()
		t.finish(true, "readonly")
		return nil
	}

	// Steps 6-7: decide commit, stabilize the decision, then commit.
	// Append enqueues into the Clog's group-commit leader and returns
	// once the whole group is forced, so the log-force stage measures
	// group formation plus one fsync amortized across every transaction
	// deciding concurrently.
	t.trace.Enter(obs.StageLogForce)
	token, err := t.c.clog.Append(clogDecision, t.id, true, writers)
	if err != nil {
		t.trace.Enter(obs.StageAbort)
		t.decide(false, writers)
		t.c.met.abortLogAppend.Inc()
		t.finish(false, "decision_log_failed")
		return fmt.Errorf("%w: decision log failed: %v", ErrAborted, err)
	}
	t.trace.Enter(obs.StageStabilize)
	if err := t.waitToken(token); err != nil {
		t.trace.Enter(obs.StageAbort)
		t.decide(false, writers)
		t.c.met.abortStabilize.Inc()
		t.finish(false, "stabilize_timeout")
		return fmt.Errorf("%w: decision stabilization failed: %v", ErrAborted, err)
	}
	t.c.mu.Lock()
	t.c.decisions[t.id] = true
	delete(t.c.prepared, t.id)
	t.c.mu.Unlock()

	// The decision is stable: the transaction IS committed even if a
	// commit message is lost; such a participant resolves at recovery.
	// Retrying lost pushes here just releases participant locks sooner.
	t.trace.Enter(obs.StageCommit)
	_ = t.broadcastRetry(ReqCommit, writers, 3)
	t.trace.Enter(obs.StageReclaim)
	t.finish(true, "")
	return nil
}

// waitToken waits for a stable token, yielding if configured, up to the
// coordinator's stabilization deadline — a dead counter service must
// abort the transaction, not spin the fiber forever. The final Wait is
// non-blocking once Ready reports true; it surfaces a permanent
// counter-service failure as an error.
func (t *DistTxn) waitToken(token lsm.StableToken) error {
	start := time.Now()
	defer t.c.met.stabilizeWait.ObserveSince(start)
	deadline := start.Add(t.c.stabTimeout)
	spins := 0
	for !token.Ready() {
		if time.Now().After(deadline) {
			return ErrStabilizeTimeout
		}
		if t.yield == nil {
			time.Sleep(20 * time.Microsecond)
			continue
		}
		t.yield()
		if spins++; spins%64 == 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
	return token.Wait()
}

// decide logs and pushes an abort decision.
func (t *DistTxn) decide(commit bool, participants []string) {
	if _, err := t.c.clog.Append(clogDecision, t.id, commit, participants); err == nil {
		t.c.mu.Lock()
		t.c.decisions[t.id] = commit
		delete(t.c.prepared, t.id)
		t.c.mu.Unlock()
	}
	_, _ = t.broadcast(ReqAbort, participants)
}

// Rollback aborts the transaction everywhere.
func (t *DistTxn) Rollback() error {
	if t.done {
		return ErrTxnFinished
	}
	t.done = true
	t.c.met.abortClient.Inc()
	participants := t.participants()
	if len(participants) == 0 {
		t.finish(false, "client_rollback")
		return nil
	}
	t.trace.Enter(obs.StageAbort)
	t.decide(false, participants)
	t.finish(false, "client_rollback")
	return nil
}

// RecoverPending finishes transactions the coordinator left in flight at
// a crash (§VI): for a logged decision the participants are re-
// instructed; for a prepare without decision the prepare phase is
// re-executed — participants still holding the prepared transaction
// re-ACK, and the transaction commits; otherwise it aborts.
func (c *Coordinator) RecoverPending(yield func()) error {
	c.mu.Lock()
	type pending struct {
		id     lsm.TxID
		parts  []string
		commit bool
		redo   bool
	}
	var work []pending
	for id, parts := range c.prepared {
		work = append(work, pending{id: id, parts: parts, redo: true})
	}
	for id, parts := range c.decidedParts {
		work = append(work, pending{id: id, parts: parts, commit: c.decisions[id]})
	}
	c.decidedParts = make(map[lsm.TxID][]string)
	c.mu.Unlock()
	sort.Slice(work, func(i, j int) bool { return string(work[i].id[:]) < string(work[j].id[:]) })

	for _, w := range work {
		_, seq := splitTxID(w.id)
		// Recovery replays intentionally carry no DistTxn trace and never
		// touch the tx.* conservation counters (coordMetrics); their paths
		// are recorded via recover.* counters and standalone traces.
		t := &DistTxn{c: c, id: w.id, seq: seq, parts: map[string]bool{}, yield: yield}
		tr := c.tracer.Begin(txTraceID(w.id), obs.StageRecover)
		switch {
		case w.redo:
			// Re-execute the prepare phase.
			c.met.recoverRedo.Inc()
			if _, err := t.broadcast(ReqPrepare, w.parts); err != nil {
				t.decide(false, w.parts)
				tr.Finish(obs.OutcomeRecovered, "redo_prepare_aborted")
				continue
			}
			token, err := c.clog.Append(clogDecision, w.id, true, w.parts)
			if err != nil {
				return err
			}
			if err := t.waitToken(token); err != nil {
				return err
			}
			c.mu.Lock()
			c.decisions[w.id] = true
			delete(c.prepared, w.id)
			c.mu.Unlock()
			_ = t.broadcastRetry(ReqCommit, w.parts, 4)
			tr.Finish(obs.OutcomeRecovered, "redo_prepare")
		case w.commit:
			// Re-push commits for decided transactions; participants that
			// already committed ignore the message.
			c.met.recoverRepushCommit.Inc()
			_ = t.broadcastRetry(ReqCommit, w.parts, 4)
			tr.Finish(obs.OutcomeRecovered, "repush_commit")
		default:
			// Decided abort: re-push aborts (also idempotent).
			c.met.recoverRepushAbort.Inc()
			_ = t.broadcastRetry(ReqAbort, w.parts, 4)
			tr.Finish(obs.OutcomeRecovered, "repush_abort")
		}
	}
	return nil
}

// AdoptRecovered folds a dead peer coordinator's replicated Clog
// entries into this coordinator and resolves them, exactly as
// RecoverPending resolves this node's own log after a crash: decided
// transactions are re-pushed to their participants, undecided prepares
// are re-driven (participants still holding the prepare re-ACK and the
// transaction commits; otherwise it aborts — presumed abort is sound
// because a decision absent from the replicated prefix was never
// stabilized, hence never acknowledged to anyone). rewrite, when
// non-nil, maps participant addresses recorded by the dead peer to
// their current holders (the promoted successor answers for the dead
// primary's address). Adopted decisions also seed the status table, so
// participants probing the dead coordinator's transactions get answers
// from the successor.
func (c *Coordinator) AdoptRecovered(entries []ClogEntry, rewrite func(string) string, yield func()) error {
	if rewrite == nil {
		rewrite = func(a string) string { return a }
	}
	type pending struct {
		id     lsm.TxID
		parts  []string
		commit bool
		redo   bool
	}
	byID := make(map[lsm.TxID]*pending)
	var order []lsm.TxID
	for _, e := range entries {
		parts := make([]string, len(e.Participants))
		for i, a := range e.Participants {
			parts[i] = rewrite(a)
		}
		p := byID[e.TxID]
		if p == nil {
			p = &pending{id: e.TxID, redo: true}
			byID[e.TxID] = p
			order = append(order, e.TxID)
		}
		switch e.Kind {
		case clogPrepare:
			p.parts = parts
		case clogDecision:
			p.parts = parts
			p.commit = e.Commit
			p.redo = false
		}
	}
	sort.Slice(order, func(i, j int) bool { return string(order[i][:]) < string(order[j][:]) })

	for _, id := range order {
		w := byID[id]
		c.mu.Lock()
		_, known := c.decisions[id]
		if !known && w.redo {
			c.prepared[id] = w.parts
		}
		c.mu.Unlock()
		debugAdoptf("adopt tx=%x redo=%v commit=%v known=%v parts=%v", id, w.redo, w.commit, known, w.parts)
		if known {
			continue // this coordinator already resolved it
		}
		c.met.recoverAdopted.Inc()
		_, seq := splitTxID(w.id)
		// Like RecoverPending: adopted replays carry no DistTxn trace and
		// never touch the tx.* conservation counters.
		t := &DistTxn{c: c, id: w.id, seq: seq, parts: map[string]bool{}, yield: yield}
		tr := c.tracer.Begin(txTraceID(w.id), obs.StageRecover)
		switch {
		case w.redo:
			c.met.recoverRedo.Inc()
			if _, err := t.broadcast(ReqPrepare, w.parts); err != nil {
				debugAdoptf("adopt tx=%x redo prepare failed: %v -> abort", id, err)
				t.decide(false, w.parts)
				tr.Finish(obs.OutcomeRecovered, "adopt_prepare_aborted")
				continue
			}
			token, err := c.clog.Append(clogDecision, w.id, true, w.parts)
			if err != nil {
				return err
			}
			if err := t.waitToken(token); err != nil {
				return err
			}
			c.mu.Lock()
			c.decisions[w.id] = true
			delete(c.prepared, w.id)
			c.mu.Unlock()
			_ = t.broadcastRetry(ReqCommit, w.parts, 4)
			tr.Finish(obs.OutcomeRecovered, "adopt_redo_prepare")
		case w.commit:
			c.mu.Lock()
			c.decisions[w.id] = true
			c.mu.Unlock()
			c.met.recoverRepushCommit.Inc()
			if err := t.broadcastRetry(ReqCommit, w.parts, 4); err != nil {
				debugAdoptf("adopt tx=%x commit re-push failed: %v", id, err)
			}
			tr.Finish(obs.OutcomeRecovered, "adopt_repush_commit")
		default:
			c.mu.Lock()
			c.decisions[w.id] = false
			c.mu.Unlock()
			c.met.recoverRepushAbort.Inc()
			_ = t.broadcastRetry(ReqAbort, w.parts, 4)
			tr.Finish(obs.OutcomeRecovered, "adopt_repush_abort")
		}
	}
	return nil
}

// Decision reports a transaction's outcome (test hook).
func (c *Coordinator) Decision(id lsm.TxID) (commit, decided bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	commit, decided = c.decisions[id]
	return
}

// PreparedCount reports prepare-logged transactions still awaiting a
// decision (the chaos harness asserts this drains to zero at quiesce).
func (c *Coordinator) PreparedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.prepared)
}
