package twopc

import (
	"encoding/binary"
	"testing"
	"time"

	"treaty/internal/erpc"
	"treaty/internal/fibers"
	"treaty/internal/lsm"
	"treaty/internal/seal"
	"treaty/internal/shardmap"
	"treaty/internal/txn"
)

// fuzzSink is a Transport that swallows every outbound packet: the fuzz
// harness injects frames directly via HandlePacket, and nothing useful
// comes back out of a single-node stack talking to a fuzzer.
type fuzzSink struct{ addr string }

func (s *fuzzSink) Send(string, []byte) error    { return nil }
func (s *fuzzSink) Poll() (string, []byte, bool) { return "", nil, false }
func (s *fuzzSink) LocalAddr() string            { return s.addr }
func (s *fuzzSink) Close() error                 { return nil }

// fuzzFrame hand-builds a plaintext erpc frame carrying a 2PC protocol
// message: 12-byte header (version, reqType, flags, reqID) followed by
// the 80-byte plaintext metadata block and the payload. Keeping the
// builder local (rather than using erpc's encoder) means the corpus
// stays valid even if internals move, and the fuzzer can mutate every
// byte including the header.
func fuzzFrame(reqType uint8, reqID uint64, md seal.MsgMetadata, payload []byte) []byte {
	md.DataLen = uint32(len(payload))
	body := make([]byte, seal.MetadataSize+len(payload))
	md.EncodePlain(body)
	copy(body[seal.MetadataSize:], payload)
	wire := make([]byte, 12+len(body))
	wire[0] = 1      // erpc wire version
	wire[1] = reqType
	wire[2] = 1 << 2 // plaintext flag
	binary.LittleEndian.PutUint64(wire[4:], reqID)
	copy(wire[12:], body)
	return wire
}

// FuzzProtocolMessages feeds arbitrary frames into a full single-node
// 2PC stack — endpoint decode, replay cache, participant and coordinator
// handlers, transaction manager, storage engine. The endpoint runs in
// plaintext mode so fuzzer bytes actually reach the protocol handlers
// (on a secure endpoint everything unauthenticated dies at the MAC
// check, which FuzzFrameDecode in internal/erpc already covers). The
// property is purely "malformed input is an error, never a panic":
// handlers run on fibers, so any panic crashes the fuzz process and is
// reported with the crashing input.
func FuzzProtocolMessages(f *testing.F) {
	const addr = "fz-node"
	key, err := seal.NewRandomKey()
	if err != nil {
		f.Fatal(err)
	}
	ep, err := erpc.NewEndpoint(erpc.Config{
		NodeID:    1,
		Transport: &fuzzSink{addr: addr},
	})
	if err != nil {
		f.Fatal(err)
	}
	db, err := lsm.Open(lsm.Options{
		Dir: f.TempDir(), Level: seal.LevelEncrypted, Key: key,
		Counters: func(string) lsm.TrustedCounter { return lsm.NewImmediateCounter() },
	})
	if err != nil {
		f.Fatal(err)
	}
	// Short timeouts: garbage transactions opened by fuzzer-invented
	// (node, tx) ids must not pile up lock waits or pin memory for the
	// whole run.
	mgr := txn.NewManager(txn.Config{DB: db, LockTimeout: 25 * time.Millisecond, WaitStable: true})
	sched := fibers.New(4, nil)
	part := NewParticipant(ParticipantConfig{
		Manager: mgr, Endpoint: ep, Scheduler: sched,
		IdleTimeout: 250 * time.Millisecond,
	})
	clogCtr := lsm.NewImmediateCounter()
	clog, recovered, err := OpenClog(nil, f.TempDir(), seal.LevelEncrypted, key, nil, clogCtr, int64(clogCtr.StableValue()))
	if err != nil {
		f.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorConfig{
		NodeID: 1, Endpoint: ep, Clog: clog,
		Router:  shardmap.NewHolder(shardmap.Uniform([]shardmap.Member{{ID: 1, Addr: addr}})),
		Timeout: 50 * time.Millisecond, Recovered: recovered,
	})
	_ = coord
	f.Cleanup(func() {
		part.Close()
		sched.Stop()
		clog.Close()
		db.Close()
		ep.Close()
	})

	// Seed corpus: one well-formed frame per protocol request type, so
	// the fuzzer starts from inputs that reach deep into each handler.
	md := seal.MsgMetadata{NodeID: 7, TxID: 3, OpID: 1, KeyLen: 3, ValueLen: 5, Seq: 1}
	f.Add(fuzzFrame(ReqTxnGet, 1, md, []byte("key")))
	put := md
	put.OpID = 2
	f.Add(fuzzFrame(ReqTxnPut, 2, put, []byte("keyvalue")))
	del := md
	del.OpID = 3
	f.Add(fuzzFrame(ReqTxnDelete, 3, del, []byte("key")))
	prep := md
	prep.OpID, prep.KeyLen, prep.ValueLen = 4, 0, 0
	f.Add(fuzzFrame(ReqPrepare, 4, prep, nil))
	f.Add(fuzzFrame(ReqCommit, 5, prep, nil))
	f.Add(fuzzFrame(ReqAbort, 6, prep, nil))
	var txid lsm.TxID
	binary.LittleEndian.PutUint64(txid[:8], 7)
	binary.LittleEndian.PutUint64(txid[8:], 3)
	f.Add(fuzzFrame(ReqTxStatus, 7, prep, txid[:]))
	// Lying sizes: KeyLen/ValueLen pointing past the payload.
	lie := md
	lie.KeyLen, lie.ValueLen = 1000, 1000
	f.Add(fuzzFrame(ReqTxnPut, 8, lie, []byte("tiny")))
	// Slot-ingest chunks: a well-formed one, a lying entry count, junk.
	ing := prep
	ing.OpID = 12
	f.Add(fuzzFrame(ReqSlotIngest, 12, ing, encodeSlotChunk(3, true, []slotEntry{{key: []byte("k"), value: []byte("v")}})))
	f.Add(fuzzFrame(ReqSlotIngest, 13, ing, []byte{1, 3, 0, 255, 255, 255, 255}))
	f.Add(fuzzFrame(ReqSlotIngest, 14, ing, []byte("x")))
	// Unknown request type, short status query, raw junk, truncations.
	f.Add(fuzzFrame(0xEE, 9, md, []byte("junk")))
	f.Add(fuzzFrame(ReqTxStatus, 10, prep, []byte("short")))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(fuzzFrame(ReqTxnGet, 11, md, []byte("key"))[:20])

	f.Fuzz(func(t *testing.T, data []byte) {
		ep.HandlePacket("fz-client", data)
	})
}
