package twopc

import (
	"fmt"
	"testing"

	"treaty/internal/obs"
)

// stagesEqual compares an observed stage sequence with the expected one.
func stagesEqual(got []obs.Stage, want []obs.Stage) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestMetricsConservationCleanRun drives a mix of committed, rolled-back
// and read-only transactions and checks the coordinator conservation law
// on a quiesced cluster:
//
//	twopc.tx.begun == twopc.tx.committed + twopc.tx.aborted
//	twopc.tx.inflight == 0
func TestMetricsConservationCleanRun(t *testing.T) {
	tc := newTestCluster(t, 3)
	coord := tc.nodes[0].coord

	const commits, rollbacks = 5, 2
	for n := 0; n < commits; n++ {
		tx := coord.Begin(nil)
		for i := 0; i < 6; i++ {
			if err := tx.Put([]byte(fmt.Sprintf("law-%d-%d", n, i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < rollbacks; n++ {
		tx := coord.Begin(nil)
		if err := tx.Put([]byte(fmt.Sprintf("law-rb-%d", n)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
	}
	// Read-only transaction: commits via the readonly optimization.
	ro := coord.Begin(nil)
	if _, ok := distGet(t, ro, "law-0-0"); !ok {
		t.Fatal("law-0-0 missing")
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := tc.nodes[0].reg.Snapshot()
	begun := snap.Counter("twopc.tx.begun")
	committed := snap.Counter("twopc.tx.committed")
	aborted := snap.Counter("twopc.tx.aborted")
	inflight := snap.Gauge("twopc.tx.inflight")
	if begun != commits+rollbacks+1 {
		t.Errorf("begun = %d, want %d", begun, commits+rollbacks+1)
	}
	if begun != committed+aborted {
		t.Errorf("conservation violated: begun %d != committed %d + aborted %d",
			begun, committed, aborted)
	}
	if inflight != 0 {
		t.Errorf("inflight = %d after quiesce, want 0", inflight)
	}
	if got := snap.Counter("twopc.abort.client_rollback"); got != rollbacks {
		t.Errorf("abort.client_rollback = %d, want %d", got, rollbacks)
	}

	// Every committed read-write transaction must have passed through the
	// full stage machine: the per-stage histograms are non-empty and the
	// stabilization wait was measured.
	for _, stage := range []string{
		"twopc.stage.begin", "twopc.stage.execute", "twopc.stage.prepare",
		"twopc.stage.log-force", "twopc.stage.counter-stabilize",
		"twopc.stage.commit", "twopc.stage.reclaim",
	} {
		h, ok := snap.Histograms[stage]
		if !ok || h.Count < commits {
			t.Errorf("histogram %s count = %d, want >= %d", stage, h.Count, commits)
		}
	}
	if h := snap.Histograms["twopc.stabilize.wait_ns"]; h.Count < commits {
		t.Errorf("stabilize.wait_ns count = %d, want >= %d", h.Count, commits)
	}

	// Participant side: every prepare was resolved once the cluster
	// quiesced. ABORT also lands on participants that executed ops but
	// never voted (client rollback), so aborts can exceed prepares-noes:
	// the invariant is commits + aborts >= prepares, not equality.
	var prepares, pCommits, pAborts, roVotes uint64
	for _, nd := range tc.nodes {
		s := nd.reg.Snapshot()
		prepares += s.Counter("twopc.part.prepares")
		pCommits += s.Counter("twopc.part.commits")
		pAborts += s.Counter("twopc.part.aborts")
		roVotes += s.Counter("twopc.part.readonly_votes")
	}
	if prepares == 0 || pCommits == 0 {
		t.Errorf("participant prepares/commits = %d/%d, want > 0", prepares, pCommits)
	}
	if pCommits+pAborts < prepares {
		t.Errorf("unresolved prepares: prepares %d > commits %d + aborts %d",
			prepares, pCommits, pAborts)
	}
	if roVotes == 0 {
		t.Errorf("readonly_votes = 0, want > 0 (read-only txn ran)")
	}
}

// TestStageTraceSequences checks the exact stage sequences recorded by
// the coordinator's tracer for a committed and a rolled-back transaction.
func TestStageTraceSequences(t *testing.T) {
	tc := newTestCluster(t, 3)
	coord := tc.nodes[0].coord

	tx := coord.Begin(nil)
	for i := 0; i < 12; i++ {
		if err := tx.Put([]byte(fmt.Sprintf("tr-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rb := coord.Begin(nil)
	if err := rb.Put([]byte("tr-rb"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := rb.Rollback(); err != nil {
		t.Fatal(err)
	}

	recent := coord.Tracer().Recent()
	if len(recent) != 2 {
		t.Fatalf("Recent() len = %d, want 2", len(recent))
	}
	commitTr, abortTr := recent[0], recent[1]

	wantCommit := []obs.Stage{
		obs.StageBegin, obs.StageExecute, obs.StagePrepare,
		obs.StageLogForce, obs.StageStabilize, obs.StageCommit,
		obs.StageReclaim,
	}
	if got := commitTr.Stages(); !stagesEqual(got, wantCommit) {
		t.Errorf("commit stages = %v, want %v", got, wantCommit)
	}
	if outcome, reason := commitTr.Outcome(); outcome != obs.OutcomeCommitted || reason != "" {
		t.Errorf("commit outcome = %q/%q, want committed", outcome, reason)
	}

	wantAbort := []obs.Stage{obs.StageBegin, obs.StageExecute, obs.StageAbort}
	if got := abortTr.Stages(); !stagesEqual(got, wantAbort) {
		t.Errorf("abort stages = %v, want %v", got, wantAbort)
	}
	if outcome, reason := abortTr.Outcome(); outcome != obs.OutcomeAborted || reason != "client_rollback" {
		t.Errorf("abort outcome = %q/%q, want aborted/client_rollback", outcome, reason)
	}
}

// TestRecoveryMetricsExcludedFromTxLaw crashes a coordinator after a
// committed transaction and checks that recovery work is visible through
// twopc.recover.* counters and "recover" traces, but never re-enters the
// tx.begun/committed/aborted conservation law (the transaction already
// counted on the crashed incarnation).
func TestRecoveryMetricsExcludedFromTxLaw(t *testing.T) {
	tc := newTestCluster(t, 3)
	coordNode := tc.nodes[0]

	tx := coordNode.coord.Begin(nil)
	for i := 0; i < 9; i++ {
		if err := tx.Put([]byte(fmt.Sprintf("recm-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	addr, dir := coordNode.addr, coordNode.dir
	tc.crashNode(0)

	nd := tc.restartNode(0, addr, dir)
	if err := nd.coord.RecoverPending(nil); err != nil {
		t.Fatal(err)
	}

	snap := nd.reg.Snapshot()
	if got := snap.Counter("twopc.recover.repush_commit"); got != 1 {
		t.Errorf("recover.repush_commit = %d, want 1", got)
	}
	// Fresh incarnation, no new client transactions: the tx law counters
	// must all be untouched by the recovery replay.
	for _, name := range []string{"twopc.tx.begun", "twopc.tx.committed", "twopc.tx.aborted"} {
		if got := snap.Counter(name); got != 0 {
			t.Errorf("%s = %d after recovery-only boot, want 0", name, got)
		}
	}

	recent := nd.coord.Tracer().Recent()
	if len(recent) != 1 {
		t.Fatalf("Recent() len = %d, want 1 recovery trace", len(recent))
	}
	if outcome, reason := recent[0].Outcome(); outcome != obs.OutcomeRecovered || reason != "repush_commit" {
		t.Errorf("recovery trace outcome = %q/%q, want recovered/repush_commit", outcome, reason)
	}
	if got := recent[0].Stages(); !stagesEqual(got, []obs.Stage{obs.StageRecover}) {
		t.Errorf("recovery trace stages = %v, want [recover]", got)
	}
}
