package twopc

import (
	"encoding/binary"
	"fmt"
	"time"

	"treaty/internal/erpc"
	"treaty/internal/fibers"
	"treaty/internal/lsm"
	"treaty/internal/seal"
	"treaty/internal/shardmap"
)

// Slot migration moves one hash slot's key range from its owning node
// (the source) to a destination, under live 2PC traffic:
//
//  1. The source fences the slot (FreezeSlot): new keyed operations on
//     it are rejected retriably while in-flight transactions drain.
//  2. Once SlotActive reaches zero, the source snapshots the slot at
//     LatestSeq and streams it to the destination in ReqSlotIngest
//     chunks. The first chunk carries a purge flag: the destination
//     deletes any keys it holds in the slot before applying, so debris
//     from an earlier aborted migration attempt cannot resurrect.
//  3. The destination applies each chunk through its engine and replies
//     only after the chunk's batch is stable — when the epoch flips,
//     the moved data is already rollback-protected on the new owner.
//  4. The orchestrator (core.Cluster.MigrateSlot) installs the next
//     epoch at the CAS, refreshes every node, and lifts the fence.
//
// A crash anywhere before step 4 leaves the map unchanged: the source
// still owns the slot, the destination holds inert (unrouted) copies,
// and a retry re-streams from scratch.

// slotChunkFirst marks the first chunk of a migration stream (the
// destination purges its copy of the slot before applying it).
const slotChunkFirst byte = 1

// maxChunkEntries bounds a decoded chunk (malformed frames must not
// drive huge allocations).
const maxChunkEntries = 1 << 20

// slotEntry is one key/value pair in a migration chunk.
type slotEntry struct {
	key, value []byte
}

// encodeSlotChunk frames: flags(1) ∥ slot(2) ∥ count(4) ∥ entries,
// each keyLen(2) ∥ valLen(4) ∥ key ∥ value.
func encodeSlotChunk(slot int, first bool, entries []slotEntry) []byte {
	n := 7
	for _, e := range entries {
		n += 6 + len(e.key) + len(e.value)
	}
	out := make([]byte, 0, n)
	flags := byte(0)
	if first {
		flags = slotChunkFirst
	}
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint16(out, uint16(slot))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(e.key)))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(e.value)))
		out = append(out, e.key...)
		out = append(out, e.value...)
	}
	return out
}

// decodeSlotChunk parses a migration chunk.
func decodeSlotChunk(b []byte) (slot int, first bool, entries []slotEntry, err error) {
	if len(b) < 7 {
		return 0, false, nil, fmt.Errorf("twopc: short slot chunk (%d bytes)", len(b))
	}
	first = b[0]&slotChunkFirst != 0
	slot = int(binary.LittleEndian.Uint16(b[1:3]))
	count := binary.LittleEndian.Uint32(b[3:7])
	if slot >= shardmap.NumSlots {
		return 0, false, nil, fmt.Errorf("twopc: slot %d out of range", slot)
	}
	if count > maxChunkEntries {
		return 0, false, nil, fmt.Errorf("twopc: chunk claims %d entries", count)
	}
	b = b[7:]
	entries = make([]slotEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 6 {
			return 0, false, nil, fmt.Errorf("twopc: truncated chunk entry %d", i)
		}
		kl := int(binary.LittleEndian.Uint16(b[0:2]))
		vl := int(binary.LittleEndian.Uint32(b[2:6]))
		b = b[6:]
		if len(b) < kl+vl {
			return 0, false, nil, fmt.Errorf("twopc: truncated chunk entry %d body", i)
		}
		entries = append(entries, slotEntry{key: b[:kl], value: b[kl : kl+vl]})
		b = b[kl+vl:]
	}
	return slot, first, entries, nil
}

// StreamSlot snapshots the slot's key range at the engine's latest
// sequence and streams it to dst in chunks of at most chunkSize
// entries. At least one chunk is always sent — an empty slot still
// needs its purge flag delivered so stale destination copies die.
// onChunk, when non-nil, is invoked before each send (chaos tests kill
// the source mid-stream through it). Returns the number of keys moved.
//
// The caller must have fenced and drained the slot first; the snapshot
// is only migration-consistent once no in-flight transaction can still
// write the slot here.
func (p *Participant) StreamSlot(dst string, slot, chunkSize int, epoch uint64, yield func(), onChunk func(chunk int)) (int, error) {
	if chunkSize <= 0 {
		chunkSize = 256
	}
	db := p.mgr.DB()
	it, err := db.NewIterator(db.LatestSeq())
	if err != nil {
		return 0, err
	}
	var entries []slotEntry
	moved := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if shardmap.SlotOf(it.Key()) != slot {
			continue
		}
		k := append([]byte(nil), it.Key()...)
		v := append([]byte(nil), it.Value()...)
		entries = append(entries, slotEntry{key: k, value: v})
		moved++
	}
	if err := it.Err(); err != nil {
		return 0, err
	}
	chunk := 0
	for sent := 0; sent < len(entries) || chunk == 0; chunk++ {
		end := sent + chunkSize
		if end > len(entries) {
			end = len(entries)
		}
		payload := encodeSlotChunk(slot, chunk == 0, entries[sent:end])
		if onChunk != nil {
			onChunk(chunk)
		}
		md := seal.MsgMetadata{
			OpID:   p.migOp.Add(1),
			OpType: uint32(ReqSlotIngest),
			Epoch:  epoch,
		}
		if _, err := erpc.Call(p.ep, dst, ReqSlotIngest, md, payload, 10*time.Second, yield); err != nil {
			return moved, fmt.Errorf("twopc: slot %d chunk %d to %s: %w", slot, chunk, dst, err)
		}
		sent = end
	}
	return moved, nil
}

// handleSlotIngest applies one migration chunk on the destination. The
// first chunk purges the destination's copy of the slot (stale debris
// from aborted attempts must not resurrect); every chunk's batch is
// stabilized before the reply, so an acknowledged stream is durable and
// rollback-protected before the epoch ever flips.
func (p *Participant) handleSlotIngest(f *fibers.Fiber, req *erpc.Request) {
	slot, first, entries, err := decodeSlotChunk(req.Payload)
	if err != nil {
		req.ReplyError(err.Error())
		return
	}
	db := p.mgr.DB()
	batch := lsm.NewBatch()
	if first {
		it, err := db.NewIterator(db.LatestSeq())
		if err != nil {
			req.ReplyError(err.Error())
			return
		}
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if shardmap.SlotOf(it.Key()) == slot {
				batch.Delete(append([]byte(nil), it.Key()...))
			}
		}
		if err := it.Err(); err != nil {
			req.ReplyError(err.Error())
			return
		}
	}
	for _, e := range entries {
		batch.Put(e.key, e.value)
	}
	if batch.Count() == 0 {
		req.Reply(nil)
		return
	}
	token, _, err := db.Apply(batch)
	if err != nil {
		req.ReplyError(err.Error())
		return
	}
	spins := 0
	for !token.Ready() {
		f.Yield()
		if spins++; spins%64 == 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
	if err := token.Wait(); err != nil {
		req.ReplyError(err.Error())
		return
	}
	p.met.ingestChunks.Inc()
	req.Reply(nil)
}
